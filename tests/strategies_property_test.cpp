// Property tests for the migration strategies (paper §3.3, §4.4): for
// random reconfigurations, every strategy's batch sequence covers every
// move exactly once, kOptimized batches never repeat a source or
// destination worker, and an empty diff yields zero batches.
//
// Plus the end-to-end property of the chunked state path: for RANDOM
// migration schedules (random strategies, epochs, and target
// assignments), the deterministic count workload must produce
// byte-identical output digests at every --chunk-bytes setting —
// monolithic and chunked, single-process and across a 2-process TCP mesh.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <set>
#include <system_error>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "harness/harness.hpp"
#include "harness/launcher.hpp"
#include "megaphone/strategies.hpp"

namespace megaphone {
namespace {

constexpr MigrationStrategy kAllStrategies[] = {
    MigrationStrategy::kAllAtOnce,
    MigrationStrategy::kFluid,
    MigrationStrategy::kBatched,
    MigrationStrategy::kOptimized,
};

Assignment RandomAssignment(Xoshiro256& rng, uint32_t num_bins,
                            uint32_t workers) {
  Assignment a(num_bins);
  for (auto& w : a) w = static_cast<uint32_t>(rng.NextBelow(workers));
  return a;
}

// Canonical form for "covers every move exactly once": moves are unique
// per bin, so sorting by bin suffices.
std::vector<ControlInst> SortedByBin(std::vector<ControlInst> moves) {
  std::sort(moves.begin(), moves.end(),
            [](const ControlInst& a, const ControlInst& b) {
              return a.bin < b.bin;
            });
  return moves;
}

std::vector<ControlInst> Flatten(
    const std::deque<std::vector<ControlInst>>& batches) {
  std::vector<ControlInst> flat;
  for (const auto& b : batches) {
    flat.insert(flat.end(), b.begin(), b.end());
  }
  return flat;
}

TEST(StrategiesProperty, EveryMoveExactlyOnce) {
  Xoshiro256 rng(21);
  for (int round = 0; round < 50; ++round) {
    uint32_t workers = 2 + static_cast<uint32_t>(rng.NextBelow(7));
    uint32_t num_bins = 1u << (2 + rng.NextBelow(7));  // 4..512
    Assignment from = RandomAssignment(rng, num_bins, workers);
    Assignment to = RandomAssignment(rng, num_bins, workers);
    auto moves = DiffAssignments(from, to);
    size_t batch_size = 1 + rng.NextBelow(32);

    for (MigrationStrategy s : kAllStrategies) {
      auto batches = PlanBatches(s, moves, from, batch_size);
      EXPECT_EQ(SortedByBin(Flatten(batches)), SortedByBin(moves))
          << StrategyName(s) << " bins=" << num_bins << " W=" << workers;
      // No strategy emits a batch with nothing in it.
      for (const auto& b : batches) {
        EXPECT_FALSE(b.empty()) << StrategyName(s);
      }
    }
  }
}

TEST(StrategiesProperty, EmptyDiffYieldsZeroBatches) {
  Xoshiro256 rng(22);
  for (int round = 0; round < 10; ++round) {
    uint32_t workers = 2 + static_cast<uint32_t>(rng.NextBelow(7));
    uint32_t num_bins = 1u << (2 + rng.NextBelow(7));
    Assignment from = RandomAssignment(rng, num_bins, workers);
    auto moves = DiffAssignments(from, from);
    EXPECT_TRUE(moves.empty());
    for (MigrationStrategy s : kAllStrategies) {
      EXPECT_TRUE(PlanBatches(s, moves, from, 8).empty()) << StrategyName(s);
    }
  }
}

TEST(StrategiesProperty, BatchSizesMatchStrategy) {
  Xoshiro256 rng(23);
  for (int round = 0; round < 20; ++round) {
    uint32_t workers = 2 + static_cast<uint32_t>(rng.NextBelow(7));
    uint32_t num_bins = 1u << (3 + rng.NextBelow(6));
    Assignment from = RandomAssignment(rng, num_bins, workers);
    Assignment to = RandomAssignment(rng, num_bins, workers);
    auto moves = DiffAssignments(from, to);
    if (moves.empty()) continue;
    size_t batch_size = 1 + rng.NextBelow(16);

    auto all = PlanBatches(MigrationStrategy::kAllAtOnce, moves, from, 0);
    EXPECT_EQ(all.size(), 1u);

    auto fluid = PlanBatches(MigrationStrategy::kFluid, moves, from, 0);
    EXPECT_EQ(fluid.size(), moves.size());
    for (const auto& b : fluid) EXPECT_EQ(b.size(), 1u);

    auto batched =
        PlanBatches(MigrationStrategy::kBatched, moves, from, batch_size);
    EXPECT_EQ(batched.size(),
              (moves.size() + batch_size - 1) / batch_size);
    for (size_t i = 0; i < batched.size(); ++i) {
      if (i + 1 < batched.size()) {
        EXPECT_EQ(batched[i].size(), batch_size);
      } else {
        EXPECT_LE(batched[i].size(), batch_size);
      }
    }
  }
}

// kOptimized invariant (§4.4): within one batch no worker appears twice
// as a source or twice as a destination — sources computed against the
// assignment as it stands when the batch is issued.
TEST(StrategiesProperty, OptimizedBatchesNeverRepeatSourceOrDestination) {
  Xoshiro256 rng(24);
  for (int round = 0; round < 50; ++round) {
    uint32_t workers = 2 + static_cast<uint32_t>(rng.NextBelow(15));
    uint32_t num_bins = 1u << (2 + rng.NextBelow(8));
    Assignment from = RandomAssignment(rng, num_bins, workers);
    Assignment to = RandomAssignment(rng, num_bins, workers);
    auto moves = DiffAssignments(from, to);

    auto batches = PlanBatches(MigrationStrategy::kOptimized, moves, from, 0);
    Assignment current = from;
    for (const auto& batch : batches) {
      std::set<uint32_t> sources;
      std::set<uint32_t> destinations;
      for (const auto& m : batch) {
        uint32_t src = current[m.bin];
        EXPECT_TRUE(sources.insert(src).second)
            << "batch repeats source worker " << src;
        EXPECT_TRUE(destinations.insert(m.worker).second)
            << "batch repeats destination worker " << m.worker;
      }
      for (const auto& m : batch) current[m.bin] = m.worker;
    }
    EXPECT_EQ(current, to);
  }
}

// ---------------------------------------------------------------------
// Chunked ≡ monolithic digest equality under random migration schedules.

constexpr MigrationStrategy kScheduleStrategies[] = {
    MigrationStrategy::kAllAtOnce,
    MigrationStrategy::kFluid,
    MigrationStrategy::kBatched,
    MigrationStrategy::kOptimized,
};

/// A random migration schedule: 1-3 reconfigurations at distinct random
/// epochs, each to a uniformly random assignment.
std::vector<std::pair<uint64_t, Assignment>> RandomSchedule(
    Xoshiro256& rng, uint32_t num_bins, uint32_t workers, uint64_t epochs) {
  std::set<uint64_t> at;
  size_t n = 1 + rng.NextBelow(3);
  while (at.size() < n) at.insert(1 + rng.NextBelow(epochs - 1));
  std::vector<std::pair<uint64_t, Assignment>> schedule;
  for (uint64_t e : at) {
    schedule.emplace_back(e, RandomAssignment(rng, num_bins, workers));
  }
  return schedule;
}

DetCountConfig RandomScheduleConfig(Xoshiro256& rng) {
  DetCountConfig cfg;
  cfg.total_workers = 4;
  cfg.num_bins = 32;
  cfg.domain = 1 << 10;
  cfg.records_per_epoch = 1024;
  cfg.epochs = 8;
  cfg.strategy = kScheduleStrategies[rng.NextBelow(4)];
  cfg.batch_size = 1 + rng.NextBelow(8);
  cfg.seed = rng.Next();
  cfg.schedule =
      RandomSchedule(rng, cfg.num_bins, cfg.total_workers, cfg.epochs);
  return cfg;
}

TEST(StrategiesProperty, ChunkedDigestsMatchMonolithicUnderRandomSchedules) {
  Xoshiro256 rng(31);
  timely::Config single;
  single.workers = 4;
  for (int round = 0; round < 4; ++round) {
    DetCountConfig cfg = RandomScheduleConfig(rng);
    cfg.chunk_bytes = 0;  // monolithic reference
    DetCountResult ref = RunDeterministicCount(cfg, single);
    ASSERT_TRUE(ref.root);
    ASSERT_FALSE(ref.digest.empty());

    for (uint64_t chunk_bytes : {48ull, 256ull, 4096ull}) {
      DetCountConfig chunked = cfg;
      chunked.chunk_bytes = chunk_bytes;
      // Tight budget: at most ~two chunks per worker step, so the flow
      // control genuinely interleaves chunks with data processing.
      chunked.chunk_bytes_per_step = 2 * chunk_bytes;
      DetCountResult r = RunDeterministicCount(chunked, single);
      ASSERT_TRUE(r.root);
      EXPECT_EQ(r.digest, ref.digest)
          << "round " << round << " strategy " << StrategyName(cfg.strategy)
          << " chunk_bytes " << chunk_bytes;
      EXPECT_EQ(r.completed_batches, ref.completed_batches);
    }
  }
}

// The spill backend joins the same matrix: under random schedules the
// log-structured LogState bins — with a memtable small enough that most
// state lives in segment files and migration streams from disk — must
// produce digests byte-identical to the in-memory reference at every
// chunk bound, monolithic included.
TEST(StrategiesProperty, LogStateDigestsMatchMapStateUnderRandomSchedules) {
  Xoshiro256 rng(35);
  timely::Config single;
  single.workers = 4;
  char tmpl[] = "/tmp/mega_lsprop_XXXXXX";
  ASSERT_NE(mkdtemp(tmpl), nullptr);
  for (int round = 0; round < 2; ++round) {
    DetCountConfig cfg = RandomScheduleConfig(rng);
    cfg.chunk_bytes = 0;  // in-memory monolithic reference
    DetCountResult ref = RunDeterministicCount(cfg, single);
    ASSERT_TRUE(ref.root);
    ASSERT_FALSE(ref.digest.empty());

    for (uint64_t chunk_bytes : {0ull, 48ull, 256ull, 4096ull}) {
      DetCountConfig lg = cfg;
      lg.backend = DetCountConfig::Backend::kLog;
      lg.state_dir = tmpl;
      lg.spill_memtable_bytes = 256;  // force segment traffic
      lg.chunk_bytes = chunk_bytes;
      lg.chunk_bytes_per_step = chunk_bytes ? 2 * chunk_bytes : 0;
      DetCountResult r = RunDeterministicCount(lg, single);
      ASSERT_TRUE(r.root);
      EXPECT_EQ(r.digest, ref.digest)
          << "round " << round << " strategy " << StrategyName(cfg.strategy)
          << " chunk_bytes " << chunk_bytes;
      EXPECT_EQ(r.completed_batches, ref.completed_batches);
    }
  }
  std::error_code ec;
  std::filesystem::remove_all(tmpl, ec);
}

// The same digest equality must hold when the chunked run is distributed:
// 2 processes x 2 workers over the TCP mesh, chunk frames crossing the
// wire, against the single-process monolithic reference. (The fork
// pattern follows multiprocess_test: the peer exits before gtest's
// epilogue; this test runs RUN_SERIAL under ctest.)
TEST(StrategiesProperty, ChunkedDigestsMatchAcrossTwoProcesses) {
  Xoshiro256 rng(33);
  DetCountConfig cfg = RandomScheduleConfig(rng);

  timely::Config single;
  single.workers = 4;
  cfg.chunk_bytes = 0;
  DetCountResult ref = RunDeterministicCount(cfg, single);
  ASSERT_TRUE(ref.root);

  cfg.chunk_bytes = 64;
  cfg.chunk_bytes_per_step = 128;
  MultiProcess mp = LaunchLoopbackProcesses(/*processes=*/2,
                                            /*workers_per_process=*/2);
  if (!mp.IsRoot()) {
    RunDeterministicCount(cfg, mp.config);
    _exit(0);
  }
  DetCountResult dist = RunDeterministicCount(cfg, mp.config);
  EXPECT_EQ(WaitForChildren(mp.children), 0) << "peer process failed";
  ASSERT_TRUE(dist.root);
  EXPECT_EQ(dist.digest, ref.digest)
      << "distributed chunked run diverged from monolithic reference";
  EXPECT_EQ(dist.completed_batches, ref.completed_batches);
}

// The paper's evaluation reconfiguration keeps its defining shape.
TEST(StrategiesProperty, ImbalancedAssignmentMovesQuarterOfBins) {
  for (uint32_t workers : {2u, 4u, 8u}) {
    uint32_t num_bins = 256;
    auto from = MakeInitialAssignment(num_bins, workers);
    auto to = MakeImbalancedAssignment(num_bins, workers);
    auto moves = DiffAssignments(from, to);
    EXPECT_EQ(moves.size(), num_bins / 4);  // 25% of state moves
    for (const auto& m : moves) {
      EXPECT_LT(from[m.bin], workers / 2);          // from lower half
      EXPECT_EQ(m.worker, from[m.bin] + workers / 2);  // to its counterpart
    }
  }
}

}  // namespace
}  // namespace megaphone
