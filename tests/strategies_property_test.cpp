// Property tests for the migration strategies (paper §3.3, §4.4): for
// random reconfigurations, every strategy's batch sequence covers every
// move exactly once, kOptimized batches never repeat a source or
// destination worker, and an empty diff yields zero batches.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "megaphone/strategies.hpp"

namespace megaphone {
namespace {

constexpr MigrationStrategy kAllStrategies[] = {
    MigrationStrategy::kAllAtOnce,
    MigrationStrategy::kFluid,
    MigrationStrategy::kBatched,
    MigrationStrategy::kOptimized,
};

Assignment RandomAssignment(Xoshiro256& rng, uint32_t num_bins,
                            uint32_t workers) {
  Assignment a(num_bins);
  for (auto& w : a) w = static_cast<uint32_t>(rng.NextBelow(workers));
  return a;
}

// Canonical form for "covers every move exactly once": moves are unique
// per bin, so sorting by bin suffices.
std::vector<ControlInst> SortedByBin(std::vector<ControlInst> moves) {
  std::sort(moves.begin(), moves.end(),
            [](const ControlInst& a, const ControlInst& b) {
              return a.bin < b.bin;
            });
  return moves;
}

std::vector<ControlInst> Flatten(
    const std::deque<std::vector<ControlInst>>& batches) {
  std::vector<ControlInst> flat;
  for (const auto& b : batches) {
    flat.insert(flat.end(), b.begin(), b.end());
  }
  return flat;
}

TEST(StrategiesProperty, EveryMoveExactlyOnce) {
  Xoshiro256 rng(21);
  for (int round = 0; round < 50; ++round) {
    uint32_t workers = 2 + static_cast<uint32_t>(rng.NextBelow(7));
    uint32_t num_bins = 1u << (2 + rng.NextBelow(7));  // 4..512
    Assignment from = RandomAssignment(rng, num_bins, workers);
    Assignment to = RandomAssignment(rng, num_bins, workers);
    auto moves = DiffAssignments(from, to);
    size_t batch_size = 1 + rng.NextBelow(32);

    for (MigrationStrategy s : kAllStrategies) {
      auto batches = PlanBatches(s, moves, from, batch_size);
      EXPECT_EQ(SortedByBin(Flatten(batches)), SortedByBin(moves))
          << StrategyName(s) << " bins=" << num_bins << " W=" << workers;
      // No strategy emits a batch with nothing in it.
      for (const auto& b : batches) {
        EXPECT_FALSE(b.empty()) << StrategyName(s);
      }
    }
  }
}

TEST(StrategiesProperty, EmptyDiffYieldsZeroBatches) {
  Xoshiro256 rng(22);
  for (int round = 0; round < 10; ++round) {
    uint32_t workers = 2 + static_cast<uint32_t>(rng.NextBelow(7));
    uint32_t num_bins = 1u << (2 + rng.NextBelow(7));
    Assignment from = RandomAssignment(rng, num_bins, workers);
    auto moves = DiffAssignments(from, from);
    EXPECT_TRUE(moves.empty());
    for (MigrationStrategy s : kAllStrategies) {
      EXPECT_TRUE(PlanBatches(s, moves, from, 8).empty()) << StrategyName(s);
    }
  }
}

TEST(StrategiesProperty, BatchSizesMatchStrategy) {
  Xoshiro256 rng(23);
  for (int round = 0; round < 20; ++round) {
    uint32_t workers = 2 + static_cast<uint32_t>(rng.NextBelow(7));
    uint32_t num_bins = 1u << (3 + rng.NextBelow(6));
    Assignment from = RandomAssignment(rng, num_bins, workers);
    Assignment to = RandomAssignment(rng, num_bins, workers);
    auto moves = DiffAssignments(from, to);
    if (moves.empty()) continue;
    size_t batch_size = 1 + rng.NextBelow(16);

    auto all = PlanBatches(MigrationStrategy::kAllAtOnce, moves, from, 0);
    EXPECT_EQ(all.size(), 1u);

    auto fluid = PlanBatches(MigrationStrategy::kFluid, moves, from, 0);
    EXPECT_EQ(fluid.size(), moves.size());
    for (const auto& b : fluid) EXPECT_EQ(b.size(), 1u);

    auto batched =
        PlanBatches(MigrationStrategy::kBatched, moves, from, batch_size);
    EXPECT_EQ(batched.size(),
              (moves.size() + batch_size - 1) / batch_size);
    for (size_t i = 0; i < batched.size(); ++i) {
      if (i + 1 < batched.size()) {
        EXPECT_EQ(batched[i].size(), batch_size);
      } else {
        EXPECT_LE(batched[i].size(), batch_size);
      }
    }
  }
}

// kOptimized invariant (§4.4): within one batch no worker appears twice
// as a source or twice as a destination — sources computed against the
// assignment as it stands when the batch is issued.
TEST(StrategiesProperty, OptimizedBatchesNeverRepeatSourceOrDestination) {
  Xoshiro256 rng(24);
  for (int round = 0; round < 50; ++round) {
    uint32_t workers = 2 + static_cast<uint32_t>(rng.NextBelow(15));
    uint32_t num_bins = 1u << (2 + rng.NextBelow(8));
    Assignment from = RandomAssignment(rng, num_bins, workers);
    Assignment to = RandomAssignment(rng, num_bins, workers);
    auto moves = DiffAssignments(from, to);

    auto batches = PlanBatches(MigrationStrategy::kOptimized, moves, from, 0);
    Assignment current = from;
    for (const auto& batch : batches) {
      std::set<uint32_t> sources;
      std::set<uint32_t> destinations;
      for (const auto& m : batch) {
        uint32_t src = current[m.bin];
        EXPECT_TRUE(sources.insert(src).second)
            << "batch repeats source worker " << src;
        EXPECT_TRUE(destinations.insert(m.worker).second)
            << "batch repeats destination worker " << m.worker;
      }
      for (const auto& m : batch) current[m.bin] = m.worker;
    }
    EXPECT_EQ(current, to);
  }
}

// The paper's evaluation reconfiguration keeps its defining shape.
TEST(StrategiesProperty, ImbalancedAssignmentMovesQuarterOfBins) {
  for (uint32_t workers : {2u, 4u, 8u}) {
    uint32_t num_bins = 256;
    auto from = MakeInitialAssignment(num_bins, workers);
    auto to = MakeImbalancedAssignment(num_bins, workers);
    auto moves = DiffAssignments(from, to);
    EXPECT_EQ(moves.size(), num_bins / 4);  // 25% of state moves
    for (const auto& m : moves) {
      EXPECT_LT(from[m.bin], workers / 2);          // from lower half
      EXPECT_EQ(m.worker, from[m.bin] + workers / 2);  // to its counterpart
    }
  }
}

}  // namespace
}  // namespace megaphone
