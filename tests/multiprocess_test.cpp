// Multi-process integration: the deterministic count workload, run as
// 2 processes x 2 workers over the TCP mesh, must agree byte-for-byte
// with the same workload run as 1 process x 4 worker threads — the same
// final per-key counts and the same number of completed migration
// batches — while a fluid migration moves a quarter of the bins
// mid-stream (so routed records, migrating BinaryBin payloads, and
// progress batches all genuinely cross the wire).
//
// The test forks: LaunchLoopbackProcesses binds kernel-assigned loopback
// listeners, forks the peer before any thread exists, and the child
// _exits straight after its workers finish (it must not run the gtest
// epilogue). Worker 0 lives in the parent, which owns all assertions.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <vector>

#include "harness/harness.hpp"
#include "harness/launcher.hpp"

namespace megaphone {
namespace {

DetCountConfig TestConfig() {
  DetCountConfig cfg;
  cfg.total_workers = 4;
  cfg.num_bins = 32;
  cfg.domain = 1 << 10;
  cfg.records_per_epoch = 2048;
  cfg.epochs = 6;
  cfg.migrate_at_epoch = 2;
  cfg.strategy = MigrationStrategy::kFluid;
  cfg.seed = 42;
  return cfg;
}

TEST(MultiProcess, TwoByTwoMatchesSingleProcessExactly) {
  DetCountConfig cfg = TestConfig();

  // Reference: 1 process x 4 workers, the classic thread runtime.
  timely::Config single;
  single.workers = 4;
  DetCountResult ref = RunDeterministicCount(cfg, single);
  ASSERT_TRUE(ref.root);
  ASSERT_FALSE(ref.digest.empty());
  ASSERT_GT(ref.completed_batches, 0u) << "migration never ran";
  // A fluid migration issues one batch per moved bin: 25% of the bins.
  EXPECT_EQ(ref.completed_batches, cfg.num_bins / 4);

  // Same workload, 2 processes x 2 workers over TCP. Fork happens while
  // this process is single-threaded (the reference run's threads joined
  // inside Execute).
  MultiProcess mp = LaunchLoopbackProcesses(/*processes=*/2,
                                            /*workers_per_process=*/2);
  if (!mp.IsRoot()) {
    // Child: run workers, then leave without touching gtest state. A
    // failed CHECK aborts with nonzero status, which the parent surfaces
    // through WaitForChildren.
    RunDeterministicCount(cfg, mp.config);
    _exit(0);
  }
  DetCountResult dist = RunDeterministicCount(cfg, mp.config);
  EXPECT_EQ(WaitForChildren(mp.children), 0) << "peer process failed";

  ASSERT_TRUE(dist.root);
  EXPECT_EQ(dist.distinct_keys, ref.distinct_keys);
  EXPECT_EQ(dist.completed_batches, ref.completed_batches);
  EXPECT_EQ(dist.digest, ref.digest)
      << "distributed run diverged from the single-process run";
}

// The split dimension itself must not matter: 4 processes x 1 worker
// agrees with the reference too (every F->S hop crosses the wire).
TEST(MultiProcess, FourByOneMatchesSingleProcessExactly) {
  DetCountConfig cfg = TestConfig();

  timely::Config single;
  single.workers = 4;
  DetCountResult ref = RunDeterministicCount(cfg, single);
  ASSERT_TRUE(ref.root);

  MultiProcess mp = LaunchLoopbackProcesses(/*processes=*/4,
                                            /*workers_per_process=*/1);
  if (!mp.IsRoot()) {
    RunDeterministicCount(cfg, mp.config);
    _exit(0);
  }
  DetCountResult dist = RunDeterministicCount(cfg, mp.config);
  EXPECT_EQ(WaitForChildren(mp.children), 0) << "peer process failed";

  ASSERT_TRUE(dist.root);
  EXPECT_EQ(dist.completed_batches, ref.completed_batches);
  EXPECT_EQ(dist.digest, ref.digest);
}

// The open-loop bench harness over the mesh: a short 2x2 key-count run
// with a mid-run batched migration must merge a report shard from BOTH
// processes (wire serde for timelines/histograms plus the shard channel)
// into one timeline, and the per-window migration stats must be present.
TEST(MultiProcess, CountBenchMergesShardsFromBothProcesses) {
  CountBenchConfig cfg;
  cfg.workers = 4;
  cfg.num_bins = 32;
  cfg.domain = 1 << 12;
  cfg.rate = 40'000;
  cfg.duration_ms = 600;
  cfg.mode = CountMode::kKeyCount;
  cfg.strategy = MigrationStrategy::kBatched;
  cfg.batch_size = 4;
  cfg.migrations.push_back({200, MakeImbalancedAssignment(32, 4)});

  MultiProcess mp = LaunchLoopbackProcesses(/*processes=*/2,
                                            /*workers_per_process=*/2);
  if (!mp.IsRoot()) {
    CountBenchResult r = RunCountBench(cfg, mp.config);
    // Peers run workers only; their result must say so.
    if (r.root) _exit(7);
    _exit(0);
  }
  CountBenchResult r = RunCountBench(cfg, mp.config);
  EXPECT_EQ(WaitForChildren(mp.children), 0) << "peer process failed";

  ASSERT_TRUE(r.root);
  ASSERT_EQ(r.shards.size(), 2u) << "expected one shard per process";
  EXPECT_EQ(r.shards[0].process_index, 0u);
  EXPECT_EQ(r.shards[1].process_index, 1u);
  EXPECT_GT(r.records_sent, 0u);
  // Both processes' local roots recorded epoch acks; the merged timeline
  // must hold the sum of their samples.
  uint64_t merged_samples = 0;
  for (const auto& row : r.timeline.Rows()) merged_samples += row.samples;
  uint64_t shard_samples = 0;
  for (const auto& s : r.shards) {
    for (const auto& row : s.timeline.Rows()) shard_samples += row.samples;
  }
  EXPECT_GT(merged_samples, 0u);
  EXPECT_EQ(merged_samples, shard_samples);
  ASSERT_FALSE(r.migrations.empty()) << "migration never observed";
  EXPECT_GT(r.migrations[0].batches, 0u);
}

// Without any migration the distributed exchange path alone must already
// be exact (isolates transport bugs from migration bugs).
TEST(MultiProcess, NoMigrationStillExact) {
  DetCountConfig cfg = TestConfig();
  cfg.migrate_at_epoch = cfg.epochs;  // disables migration
  cfg.epochs = 4;

  timely::Config single;
  single.workers = 4;
  DetCountResult ref = RunDeterministicCount(cfg, single);
  ASSERT_TRUE(ref.root);
  EXPECT_EQ(ref.completed_batches, 0u);

  MultiProcess mp = LaunchLoopbackProcesses(2, 2);
  if (!mp.IsRoot()) {
    RunDeterministicCount(cfg, mp.config);
    _exit(0);
  }
  DetCountResult dist = RunDeterministicCount(cfg, mp.config);
  EXPECT_EQ(WaitForChildren(mp.children), 0) << "peer process failed";
  EXPECT_EQ(dist.completed_batches, 0u);
  EXPECT_EQ(dist.digest, ref.digest);
}

}  // namespace
}  // namespace megaphone
