// Tests for antichains and counted timestamp multisets (paper Def. 1/2).
#include <gtest/gtest.h>

#include <cstdint>

#include "timely/antichain.hpp"
#include "timely/timestamp.hpp"

namespace timely {
namespace {

using P = Product<uint64_t, uint64_t>;

TEST(Timestamp, IntegerTraits) {
  EXPECT_TRUE(TimestampTraits<uint64_t>::LessEqual(3, 5));
  EXPECT_TRUE(TimestampTraits<uint64_t>::LessEqual(5, 5));
  EXPECT_FALSE(TimestampTraits<uint64_t>::LessEqual(6, 5));
  EXPECT_EQ(TimestampTraits<uint64_t>::Minimum(), 0u);
}

TEST(Timestamp, InAdvanceOfMatchesPaperExample) {
  // "a time 6 is in advance of 5" (paper §3.2).
  EXPECT_TRUE(InAdvanceOf<uint64_t>(6, 5));
  EXPECT_TRUE(InAdvanceOf<uint64_t>(5, 5));
  EXPECT_FALSE(InAdvanceOf<uint64_t>(4, 5));
}

TEST(Timestamp, ProductIsPartiallyOrdered) {
  using Tr = TimestampTraits<P>;
  EXPECT_TRUE(Tr::LessEqual(P{1, 1}, P{2, 2}));
  EXPECT_FALSE(Tr::LessEqual(P{1, 3}, P{2, 2}));  // incomparable
  EXPECT_FALSE(Tr::LessEqual(P{2, 2}, P{1, 3}));  // incomparable
  EXPECT_EQ(Tr::Minimum(), (P{0, 0}));
}

TEST(Antichain, InsertKeepsMinimalElements) {
  Antichain<uint64_t> f;
  EXPECT_TRUE(f.Insert(5));
  EXPECT_FALSE(f.Insert(7));  // dominated
  EXPECT_FALSE(f.Insert(5));  // duplicate
  EXPECT_TRUE(f.Insert(3));   // dominates 5
  ASSERT_EQ(f.elements().size(), 1u);
  EXPECT_EQ(f.elements()[0], 3u);
}

TEST(Antichain, LessEqualAndLessThan) {
  Antichain<uint64_t> f;
  f.Insert(10);
  EXPECT_TRUE(f.LessEqual(10));
  EXPECT_TRUE(f.LessEqual(11));
  EXPECT_FALSE(f.LessEqual(9));
  EXPECT_FALSE(f.LessThan(10));
  EXPECT_TRUE(f.LessThan(11));
}

TEST(Antichain, EmptyFrontierMeansComplete) {
  Antichain<uint64_t> f;
  EXPECT_TRUE(f.empty());
  EXPECT_FALSE(f.LessEqual(0));
  EXPECT_FALSE(f.LessThan(~uint64_t{0}));
}

TEST(Antichain, PartialOrderHoldsMultipleElements) {
  // With partially ordered timestamps a frontier is genuinely set-valued
  // (paper §3.1: "a frontier must be set-valued rather than a single
  // timestamp").
  Antichain<P> f;
  EXPECT_TRUE(f.Insert(P{1, 5}));
  EXPECT_TRUE(f.Insert(P{5, 1}));  // incomparable with {1,5}
  EXPECT_EQ(f.elements().size(), 2u);
  EXPECT_FALSE(f.Insert(P{5, 5}));  // dominated by both
  EXPECT_TRUE(f.LessEqual(P{1, 7}));
  EXPECT_TRUE(f.LessEqual(P{7, 1}));
  EXPECT_FALSE(f.LessEqual(P{0, 0}));
  EXPECT_TRUE(f.Insert(P{0, 0}));  // dominates everything
  EXPECT_EQ(f.elements().size(), 1u);
}

TEST(Antichain, EqualityIsSetEquality) {
  Antichain<P> a, b;
  a.Insert(P{1, 5});
  a.Insert(P{5, 1});
  b.Insert(P{5, 1});
  b.Insert(P{1, 5});
  EXPECT_TRUE(a == b);
  b.Insert(P{0, 9});
  EXPECT_FALSE(a == b);
}

TEST(MutableAntichain, FrontierTracksPositiveCounts) {
  MutableAntichain<uint64_t> m;
  EXPECT_TRUE(m.Empty());
  m.Update(5, 2);
  m.Update(7, 1);
  auto f = m.Frontier();
  ASSERT_EQ(f.elements().size(), 1u);
  EXPECT_EQ(f.elements()[0], 5u);
  m.Update(5, -2);
  f = m.Frontier();
  ASSERT_EQ(f.elements().size(), 1u);
  EXPECT_EQ(f.elements()[0], 7u);
  m.Update(7, -1);
  EXPECT_TRUE(m.Empty());
  EXPECT_TRUE(m.AllZero());
}

TEST(MutableAntichain, UpdateReportsPossibleFrontierChange) {
  MutableAntichain<uint64_t> m;
  EXPECT_TRUE(m.Update(5, 1));    // support gained 5
  EXPECT_FALSE(m.Update(5, 1));   // still positive
  EXPECT_FALSE(m.Update(5, -1));  // still positive
  EXPECT_TRUE(m.Update(5, -1));   // support lost 5
}

TEST(MutableAntichain, ToleratesTransientNegativeCounts) {
  MutableAntichain<uint64_t> m;
  m.Update(4, -1);  // consumption seen before production
  EXPECT_TRUE(m.Empty());
  EXPECT_FALSE(m.AllZero());
  EXPECT_EQ(m.CountOf(4), -1);
  m.Update(4, +1);
  EXPECT_TRUE(m.AllZero());
}

TEST(MutableAntichain, PartialOrderFrontier) {
  MutableAntichain<P> m;
  m.Update(P{1, 5}, 1);
  m.Update(P{5, 1}, 1);
  m.Update(P{9, 9}, 3);
  auto f = m.Frontier();
  EXPECT_EQ(f.elements().size(), 2u);
  EXPECT_TRUE(f.LessEqual(P{9, 9}));
}

}  // namespace
}  // namespace timely
