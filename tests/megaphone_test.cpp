// Integration tests for Megaphone's migratable operators: correctness
// (Property 1), migration placement (Property 2), and completion
// (Property 3) under all-at-once, fluid, batched, and optimized strategies.
//
// The central technique: run a stateful computation while migrating its
// bins at various times and granularities, and require the output multiset
// to equal that of a migration-free single-threaded reference.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "common/hash.hpp"
#include "megaphone/megaphone.hpp"
#include "timely/timely.hpp"

namespace megaphone {
namespace {

using timely::Execute;
using timely::NewInput;
using timely::Probe;
using timely::Scope;
using timely::Sink;
using timely::Worker;

using BinState = std::unordered_map<uint64_t, uint64_t>;
using Row = std::array<uint64_t, 3>;  // (time, key, count)

uint64_t GenKey(uint64_t seed, uint64_t epoch, uint64_t i, uint64_t num_keys) {
  return HashMix64(seed ^ (epoch * 1000003 + i * 7919)) % num_keys;
}

/// Migration-free reference for the counting workload.
std::vector<Row> ReferenceCounts(uint64_t seed, uint64_t epochs,
                                 uint64_t recs_per_epoch, uint64_t num_keys) {
  std::map<uint64_t, uint64_t> counts;
  std::vector<Row> rows;
  for (uint64_t e = 0; e < epochs; ++e) {
    for (uint64_t i = 0; i < recs_per_epoch; ++i) {
      uint64_t k = GenKey(seed, e, i, num_keys);
      rows.push_back(Row{e, k, ++counts[k]});
    }
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

struct MigSpec {
  uint64_t at_epoch;
  Assignment to;
};

struct RunResult {
  std::vector<Row> rows;                              // sorted outputs
  std::vector<std::pair<uint64_t, uint32_t>> owners;  // (time, sink worker)
  size_t completed_batches = 0;                       // on worker 0
};

RunResult RunMigratingWordCount(uint32_t workers, uint32_t num_bins,
                                MigrationStrategy strategy, size_t batch_size,
                                uint64_t gap, uint64_t epochs,
                                uint64_t recs_per_epoch, uint64_t num_keys,
                                uint64_t seed, std::vector<MigSpec> migs,
                                uint64_t chunk_bytes = 0,
                                uint64_t chunk_step = 0) {
  RunResult result;
  std::mutex mu;
  Execute(timely::Config{workers}, [&](Worker& w) {
    auto handles = w.Dataflow<uint64_t>([&](Scope<uint64_t>& s) {
      auto [ctrl_in, ctrl_stream] = NewInput<ControlInst>(s);
      auto [data_in, data_stream] = NewInput<uint64_t>(s);
      Config cfg;
      cfg.num_bins = num_bins;
      cfg.chunk_bytes = chunk_bytes;
      cfg.chunk_bytes_per_step = chunk_step;
      cfg.name = "WordCount";
      auto out = Unary<BinState, std::pair<uint64_t, uint64_t>>(
          ctrl_stream, data_stream,
          [](const uint64_t& k) { return HashMix64(k); },
          [](const uint64_t&, BinState& state, std::vector<uint64_t>& recs,
             auto emit, auto&) {
            for (uint64_t k : recs) {
              emit(std::make_pair(k, ++state[k]));
            }
          },
          cfg);
      uint32_t me = s.worker();
      Sink(out.stream,
           [&, me](const uint64_t& t,
                   std::vector<std::pair<uint64_t, uint64_t>>& data) {
             std::lock_guard<std::mutex> lock(mu);
             for (auto& [k, c] : data) {
               result.rows.push_back(Row{t, k, c});
               result.owners.emplace_back(t, me);
             }
           });
      return std::make_tuple(ctrl_in, data_in, out.probe);
    });
    auto& [ctrl_in, data_in, probe] = handles;

    typename MigrationController<uint64_t>::Options opts;
    opts.strategy = strategy;
    opts.batch_size = batch_size;
    opts.gap = gap;
    MigrationController<uint64_t> controller(ctrl_in, probe, w.index(), opts);

    Assignment current = MakeInitialAssignment(num_bins, workers);
    size_t next_mig = 0;
    for (uint64_t e = 0; e < epochs; ++e) {
      if (next_mig < migs.size() && migs[next_mig].at_epoch == e) {
        controller.MigrateTo(current, migs[next_mig].to);
        current = migs[next_mig].to;
        next_mig++;
      }
      controller.Advance(e, e + 1);
      for (uint64_t i = 0; i < recs_per_epoch; ++i) {
        if (i % workers == w.index()) {
          data_in->Send(GenKey(seed, e, i, num_keys));
        }
      }
      data_in->AdvanceTo(e + 1);
      // Pace the driver: keep the dataflow within two epochs of the input.
      uint64_t lag = e >= 2 ? e - 2 : 0;
      w.StepUntil([&] { return !probe.LessThan(lag); });
    }
    controller.Close(epochs);
    data_in->Close();
    if (w.index() == 0) {
      // Recorded after the run drains (worker epilogue steps to completion);
      // completed_batches only grows, so read it at the end via StepUntil.
      w.StepUntil([&] { return probe.Done(); });
      std::lock_guard<std::mutex> lock(mu);
      result.completed_batches = controller.completed_batches();
    }
  });
  std::sort(result.rows.begin(), result.rows.end());
  return result;
}

class MegaphoneMatrix
    : public ::testing::TestWithParam<
          std::tuple<uint32_t, uint32_t, MigrationStrategy>> {};

TEST_P(MegaphoneMatrix, OutputsMatchReferenceUnderRebalanceMigrations) {
  auto [workers, num_bins, strategy] = GetParam();
  const uint64_t epochs = 40, recs = 64, keys = 256, seed = 42;

  auto imbalanced = MakeImbalancedAssignment(num_bins, workers);
  auto balanced = MakeInitialAssignment(num_bins, workers);
  auto result = RunMigratingWordCount(
      workers, num_bins, strategy, /*batch_size=*/3, /*gap=*/0, epochs, recs,
      keys, seed,
      {MigSpec{10, imbalanced}, MigSpec{25, balanced}});

  auto expected = ReferenceCounts(seed, epochs, recs, keys);
  ASSERT_EQ(result.rows.size(), expected.size());
  EXPECT_EQ(result.rows, expected);
  if (workers > 1) {
    EXPECT_GE(result.completed_batches, 1u) << "no migration ever completed";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, MegaphoneMatrix,
    ::testing::Combine(::testing::Values(2u, 4u), ::testing::Values(8u, 64u),
                       ::testing::Values(MigrationStrategy::kAllAtOnce,
                                         MigrationStrategy::kFluid,
                                         MigrationStrategy::kBatched,
                                         MigrationStrategy::kOptimized)),
    [](const auto& info) {
      std::string strat;
      switch (std::get<2>(info.param)) {
        case MigrationStrategy::kAllAtOnce: strat = "AllAtOnce"; break;
        case MigrationStrategy::kFluid: strat = "Fluid"; break;
        case MigrationStrategy::kBatched: strat = "Batched"; break;
        case MigrationStrategy::kOptimized: strat = "Optimized"; break;
      }
      return "w" + std::to_string(std::get<0>(info.param)) + "_b" +
             std::to_string(std::get<1>(info.param)) + "_" + strat;
    });

// Chunked, flow-controlled migration (tiny chunks, a budget of barely two
// chunks per step) must be output-identical to the monolithic path, under
// every strategy and across a rebalance-and-back schedule.
TEST(Megaphone, ChunkedMigrationMatchesReference) {
  const uint64_t epochs = 40, recs = 64, keys = 256, seed = 42;
  const uint32_t workers = 4, bins = 16;
  auto imbalanced = MakeImbalancedAssignment(bins, workers);
  auto balanced = MakeInitialAssignment(bins, workers);
  auto expected = ReferenceCounts(seed, epochs, recs, keys);
  for (MigrationStrategy strategy :
       {MigrationStrategy::kAllAtOnce, MigrationStrategy::kFluid,
        MigrationStrategy::kBatched}) {
    auto result = RunMigratingWordCount(
        workers, bins, strategy, /*batch_size=*/3, /*gap=*/0, epochs, recs,
        keys, seed, {MigSpec{10, imbalanced}, MigSpec{25, balanced}},
        /*chunk_bytes=*/64, /*chunk_step=*/160);
    EXPECT_EQ(result.rows, expected)
        << "chunked run diverged, strategy " << StrategyName(strategy);
    EXPECT_GE(result.completed_batches, 1u);
  }
}

TEST(Megaphone, SingleWorkerNoMigration) {
  const uint64_t epochs = 10, recs = 32, keys = 64, seed = 7;
  auto result = RunMigratingWordCount(1, 16, MigrationStrategy::kAllAtOnce, 1,
                                      0, epochs, recs, keys, seed, {});
  EXPECT_EQ(result.rows, ReferenceCounts(seed, epochs, recs, keys));
}

TEST(Megaphone, SingleBin) {
  const uint64_t epochs = 12, recs = 16, keys = 32, seed = 3;
  Assignment to_one(1, 1);  // the single bin moves to worker 1
  auto result =
      RunMigratingWordCount(2, 1, MigrationStrategy::kAllAtOnce, 1, 0, epochs,
                            recs, keys, seed, {MigSpec{4, to_one}});
  EXPECT_EQ(result.rows, ReferenceCounts(seed, epochs, recs, keys));
}

TEST(Megaphone, GapBetweenBatchesPreservesCorrectness) {
  const uint64_t epochs = 60, recs = 32, keys = 128, seed = 11;
  const uint32_t workers = 4, bins = 32;
  auto result = RunMigratingWordCount(
      workers, bins, MigrationStrategy::kFluid, 1, /*gap=*/2, epochs, recs,
      keys, seed, {MigSpec{5, MakeImbalancedAssignment(bins, workers)}});
  EXPECT_EQ(result.rows, ReferenceCounts(seed, epochs, recs, keys));
}

TEST(Megaphone, MigrationMovesOwnershipToTargetWorkers) {
  // Move every bin to worker 0; outputs at times comfortably after the
  // migration must be produced exclusively by worker 0's sink instance
  // (Property 2: updates happen at configuration(time, key)).
  const uint32_t workers = 4, bins = 16;
  const uint64_t epochs = 40, recs = 64, keys = 128, seed = 9;
  Assignment all_zero(bins, 0);
  auto result =
      RunMigratingWordCount(workers, bins, MigrationStrategy::kAllAtOnce, 1, 0,
                            epochs, recs, keys, seed, {MigSpec{10, all_zero}});
  EXPECT_EQ(result.rows, ReferenceCounts(seed, epochs, recs, keys));
  bool saw_late_rows = false;
  for (auto& [t, worker] : result.owners) {
    if (t >= 20) {
      saw_late_rows = true;
      EXPECT_EQ(worker, 0u) << "record applied on wrong worker at time " << t;
    }
  }
  EXPECT_TRUE(saw_late_rows);
}

TEST(Megaphone, CompletionWhenInputsCloseMidMigration) {
  // Property 3 (liveness): schedule a migration and immediately close both
  // inputs; the dataflow must still drain and Execute must return.
  const uint32_t workers = 4, bins = 16;
  std::atomic<uint64_t> outputs{0};
  Execute(timely::Config{workers}, [&](Worker& w) {
    auto handles = w.Dataflow<uint64_t>([&](Scope<uint64_t>& s) {
      auto [ctrl_in, ctrl_stream] = NewInput<ControlInst>(s);
      auto [data_in, data_stream] = NewInput<uint64_t>(s);
      Config cfg;
      cfg.num_bins = bins;
      auto out = Unary<BinState, uint64_t>(
          ctrl_stream, data_stream,
          [](const uint64_t& k) { return HashMix64(k); },
          [](const uint64_t&, BinState& state, std::vector<uint64_t>& recs,
             auto emit, auto&) {
            for (uint64_t k : recs) emit(++state[k]);
          },
          cfg);
      Sink(out.stream, [&](const uint64_t&, std::vector<uint64_t>& d) {
        outputs += d.size();
      });
      return std::make_pair(ctrl_in, data_in);
    });
    auto& [ctrl_in, data_in] = handles;
    // Worker 0 publishes a migration of every bin, then everything closes
    // without waiting for completion.
    for (uint64_t k = w.index(); k < 64; k += workers) data_in->Send(k);
    if (w.index() == 0) {
      for (BinId b = 0; b < bins; ++b) {
        ctrl_in->Send(ControlInst{b, (b + 1) % workers});
      }
    }
    ctrl_in->Close();
    data_in->Close();
  });
  EXPECT_EQ(outputs.load(), 64u);
}

// The operator schedules an "echo" of each key three epochs after first
// sight. Bins migrate in between; every echo must still fire exactly
// once, at the right time, from the bin's new home (paper §3.4: migrated
// state includes "the list of pending (val, time) records"). With
// `chunk_bytes` set, the pending records travel as chunk sections.
void RunPostDatedEchoTest(uint64_t chunk_bytes) {
  using Rec = std::pair<uint64_t, uint64_t>;  // (key, is_echo)
  using Out = std::tuple<uint64_t, uint64_t, uint64_t>;  // (key, echo, time)
  const uint32_t workers = 4, bins = 16;
  const uint64_t kKeys = 64;
  std::mutex mu;
  std::vector<Out> outs;

  Execute(timely::Config{workers}, [&](Worker& w) {
    auto handles = w.Dataflow<uint64_t>([&](Scope<uint64_t>& s) {
      auto [ctrl_in, ctrl_stream] = NewInput<ControlInst>(s);
      auto [data_in, data_stream] = NewInput<Rec>(s);
      Config cfg;
      cfg.num_bins = bins;
      cfg.chunk_bytes = chunk_bytes;
      cfg.chunk_bytes_per_step = chunk_bytes * 2;
      auto out = Unary<BinState, Out>(
          ctrl_stream, data_stream,
          [](const Rec& r) { return HashMix64(r.first); },
          [](const uint64_t& t, BinState& state, std::vector<Rec>& recs,
             auto emit, auto& sched) {
            for (auto& [k, echo] : recs) {
              emit(Out{k, echo, t});
              if (!echo && state[k]++ == 0) {
                sched.ScheduleAt(t + 3, Rec{k, 1});
              }
            }
          },
          cfg);
      Sink(out.stream, [&](const uint64_t&, std::vector<Out>& d) {
        std::lock_guard<std::mutex> lock(mu);
        for (auto& o : d) outs.push_back(o);
      });
      return std::make_tuple(ctrl_in, data_in, out.probe);
    });
    auto& [ctrl_in, data_in, probe] = handles;

    typename MigrationController<uint64_t>::Options opts;
    opts.strategy = MigrationStrategy::kFluid;
    opts.batch_size = 1;
    MigrationController<uint64_t> controller(ctrl_in, probe, w.index(), opts);
    Assignment init = MakeInitialAssignment(bins, workers);

    for (uint64_t e = 0; e < 30; ++e) {
      if (e == 1) {
        // While echoes for epoch 0 are pending at time 3, rotate every
        // bin's ownership.
        Assignment rotated = init;
        for (auto& o : rotated) o = (o + 1) % workers;
        controller.MigrateTo(init, rotated);
      }
      controller.Advance(e, e + 1);
      if (e == 0) {
        for (uint64_t k = w.index(); k < kKeys; k += workers) {
          data_in->Send(Rec{k, 0});
        }
      }
      data_in->AdvanceTo(e + 1);
      uint64_t lag = e >= 2 ? e - 2 : 0;
      w.StepUntil([&] { return !probe.LessThan(lag); });
    }
    controller.Close(30);
    data_in->Close();
  });

  std::vector<Out> echoes;
  for (auto& o : outs) {
    if (std::get<1>(o) == 1) echoes.push_back(o);
  }
  std::sort(echoes.begin(), echoes.end());
  ASSERT_EQ(echoes.size(), kKeys) << "each key must echo exactly once";
  for (uint64_t k = 0; k < kKeys; ++k) {
    EXPECT_EQ(echoes[k], (Out{k, 1, 3}));  // scheduled at 0, fires at 3
  }
}

TEST(Megaphone, PostDatedRecordsMigrateWithTheirBin) {
  RunPostDatedEchoTest(/*chunk_bytes=*/0);
}

TEST(Megaphone, PostDatedRecordsMigrateChunked) {
  RunPostDatedEchoTest(/*chunk_bytes=*/48);
}

// Symmetric hash join keyed by k; outputs every (a, b) pair exactly once
// at max(time(a), time(b)), across two migrations.
void RunBinaryJoinTest(uint64_t chunk_bytes) {
  using A = std::pair<uint64_t, uint64_t>;  // (key, a-value)
  using B = std::pair<uint64_t, uint64_t>;  // (key, b-value)
  using Out = std::tuple<uint64_t, uint64_t, uint64_t, uint64_t>;
  using JoinState =
      std::unordered_map<uint64_t,
                         std::pair<std::vector<uint64_t>, std::vector<uint64_t>>>;
  const uint32_t workers = 4, bins = 16;
  const uint64_t epochs = 30, keys = 32, seed = 17;
  std::mutex mu;
  std::vector<Out> outs;

  Execute(timely::Config{workers}, [&](Worker& w) {
    auto handles = w.Dataflow<uint64_t>([&](Scope<uint64_t>& s) {
      auto [ctrl_in, ctrl_stream] = NewInput<ControlInst>(s);
      auto [a_in, a_stream] = NewInput<A>(s);
      auto [b_in, b_stream] = NewInput<B>(s);
      Config cfg;
      cfg.num_bins = bins;
      cfg.chunk_bytes = chunk_bytes;
      cfg.name = "Join";
      auto out = Binary<JoinState, Out>(
          ctrl_stream, a_stream, b_stream,
          [](const A& a) { return HashMix64(a.first); },
          [](const B& b) { return HashMix64(b.first); },
          [](const uint64_t& t, JoinState& state, std::vector<A>& as,
             std::vector<B>& bs, auto emit, auto&) {
            for (auto& [k, a] : as) {
              for (uint64_t b : state[k].second) emit(Out{k, a, b, t});
              state[k].first.push_back(a);
            }
            for (auto& [k, b] : bs) {
              for (uint64_t a : state[k].first) emit(Out{k, a, b, t});
              state[k].second.push_back(b);
            }
          },
          cfg);
      Sink(out.stream, [&](const uint64_t&, std::vector<Out>& d) {
        std::lock_guard<std::mutex> lock(mu);
        for (auto& o : d) outs.push_back(o);
      });
      return std::make_tuple(ctrl_in, a_in, b_in, out.probe);
    });
    auto& [ctrl_in, a_in, b_in, probe] = handles;

    typename MigrationController<uint64_t>::Options opts;
    opts.strategy = MigrationStrategy::kBatched;
    opts.batch_size = 4;
    MigrationController<uint64_t> controller(ctrl_in, probe, w.index(), opts);
    Assignment balanced = MakeInitialAssignment(bins, workers);
    Assignment imbalanced = MakeImbalancedAssignment(bins, workers);

    for (uint64_t e = 0; e < epochs; ++e) {
      if (e == 8) controller.MigrateTo(balanced, imbalanced);
      if (e == 18) controller.MigrateTo(imbalanced, balanced);
      controller.Advance(e, e + 1);
      // Two a-records and one b-record per epoch, partitioned by worker.
      for (uint64_t i = 0; i < 2; ++i) {
        if ((e + i) % workers == w.index()) {
          a_in->Send(A{GenKey(seed, e, i, keys), 1000 * e + i});
        }
      }
      if (e % workers == w.index()) {
        b_in->Send(B{GenKey(seed + 1, e, 0, keys), 5000 + e});
      }
      a_in->AdvanceTo(e + 1);
      b_in->AdvanceTo(e + 1);
      uint64_t lag = e >= 2 ? e - 2 : 0;
      w.StepUntil([&] { return !probe.LessThan(lag); });
    }
    controller.Close(epochs);
    a_in->Close();
    b_in->Close();
  });

  // Single-threaded reference.
  std::vector<Out> expected;
  {
    std::map<uint64_t, std::vector<std::pair<uint64_t, uint64_t>>> as, bs;
    for (uint64_t e = 0; e < epochs; ++e) {
      for (uint64_t i = 0; i < 2; ++i) {
        as[GenKey(seed, e, i, keys)].push_back({1000 * e + i, e});
      }
      bs[GenKey(seed + 1, e, 0, keys)].push_back({5000 + e, e});
    }
    for (auto& [k, avec] : as) {
      for (auto& [a, ta] : avec) {
        for (auto& [b, tb] : bs[k]) {
          expected.push_back(Out{k, a, b, std::max(ta, tb)});
        }
      }
    }
  }
  std::sort(outs.begin(), outs.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(outs, expected);
}

TEST(Megaphone, BinaryJoinUnderMigration) {
  RunBinaryJoinTest(/*chunk_bytes=*/0);
}

TEST(Megaphone, BinaryJoinUnderChunkedMigration) {
  RunBinaryJoinTest(/*chunk_bytes=*/96);
}

TEST(Megaphone, StateMachineInterface) {
  // The paper's simplest interface (Listing 1): word count over string
  // keys, with per-key state and migration mid-stream.
  using KV = std::pair<std::string, uint64_t>;
  using Out = std::pair<std::string, uint64_t>;
  const uint32_t workers = 4, bins = 8;
  std::mutex mu;
  std::map<std::string, uint64_t> final_counts;

  Execute(timely::Config{workers}, [&](Worker& w) {
    auto handles = w.Dataflow<uint64_t>([&](Scope<uint64_t>& s) {
      auto [ctrl_in, ctrl_stream] = NewInput<ControlInst>(s);
      auto [data_in, data_stream] = NewInput<KV>(s);
      Config cfg;
      cfg.num_bins = bins;
      auto out = StateMachine<uint64_t, Out, std::string, uint64_t>(
          ctrl_stream, data_stream,
          [](const std::string& k) { return HashBytes(k); },
          [](const std::string& k, uint64_t diff, uint64_t& count,
             auto emit) {
            count += diff;
            emit(Out{k, count});
          },
          cfg);
      Sink(out.stream, [&](const uint64_t&, std::vector<Out>& d) {
        std::lock_guard<std::mutex> lock(mu);
        for (auto& [k, c] : d) {
          auto& slot = final_counts[k];
          slot = std::max(slot, c);
        }
      });
      return std::make_tuple(ctrl_in, data_in, out.probe);
    });
    auto& [ctrl_in, data_in, probe] = handles;

    typename MigrationController<uint64_t>::Options opts;
    opts.strategy = MigrationStrategy::kFluid;
    MigrationController<uint64_t> controller(ctrl_in, probe, w.index(), opts);
    Assignment init = MakeInitialAssignment(bins, workers);
    Assignment all_to_last(bins, workers - 1);

    const std::vector<std::string> words = {"auction", "bid", "person",
                                            "seller", "query"};
    for (uint64_t e = 0; e < 20; ++e) {
      if (e == 5) controller.MigrateTo(init, all_to_last);
      controller.Advance(e, e + 1);
      for (size_t i = 0; i < words.size(); ++i) {
        if (i % workers == w.index()) data_in->Send(KV{words[i], 1});
      }
      data_in->AdvanceTo(e + 1);
      uint64_t lag = e >= 2 ? e - 2 : 0;
      w.StepUntil([&] { return !probe.LessThan(lag); });
    }
    controller.Close(20);
    data_in->Close();
  });

  for (const auto& w : {"auction", "bid", "person", "seller", "query"}) {
    EXPECT_EQ(final_counts[w], 20u) << w;
  }
}

TEST(Megaphone, ThrottledStateChannelStillCorrect) {
  // A tight bandwidth throttle on the state channel delays migrations but
  // must not affect correctness or completion.
  const uint64_t epochs = 25, recs = 48, keys = 128, seed = 23;
  const uint32_t workers = 4, bins = 16;
  std::mutex mu;
  std::vector<Row> rows;
  Execute(timely::Config{workers}, [&](Worker& w) {
    auto handles = w.Dataflow<uint64_t>([&](Scope<uint64_t>& s) {
      auto [ctrl_in, ctrl_stream] = NewInput<ControlInst>(s);
      auto [data_in, data_stream] = NewInput<uint64_t>(s);
      Config cfg;
      cfg.num_bins = bins;
      cfg.state_bytes_per_sec = 64 * 1024;  // deliberately slow
      auto out = Unary<BinState, std::pair<uint64_t, uint64_t>>(
          ctrl_stream, data_stream,
          [](const uint64_t& k) { return HashMix64(k); },
          [](const uint64_t&, BinState& state, std::vector<uint64_t>& recs,
             auto emit, auto&) {
            for (uint64_t k : recs) emit(std::make_pair(k, ++state[k]));
          },
          cfg);
      Sink(out.stream,
           [&](const uint64_t& t,
               std::vector<std::pair<uint64_t, uint64_t>>& data) {
             std::lock_guard<std::mutex> lock(mu);
             for (auto& [k, c] : data) rows.push_back(Row{t, k, c});
           });
      return std::make_tuple(ctrl_in, data_in, out.probe);
    });
    auto& [ctrl_in, data_in, probe] = handles;
    typename MigrationController<uint64_t>::Options opts;
    opts.strategy = MigrationStrategy::kAllAtOnce;
    MigrationController<uint64_t> controller(ctrl_in, probe, w.index(), opts);
    for (uint64_t e = 0; e < epochs; ++e) {
      if (e == 6) {
        controller.MigrateTo(MakeInitialAssignment(bins, workers),
                             MakeImbalancedAssignment(bins, workers));
      }
      controller.Advance(e, e + 1);
      for (uint64_t i = 0; i < recs; ++i) {
        if (i % workers == w.index()) {
          data_in->Send(GenKey(seed, e, i, keys));
        }
      }
      data_in->AdvanceTo(e + 1);
      w.Step();
    }
    controller.Close(epochs);
    data_in->Close();
  });
  std::sort(rows.begin(), rows.end());
  EXPECT_EQ(rows, ReferenceCounts(seed, epochs, recs, keys));
}

}  // namespace
}  // namespace megaphone
