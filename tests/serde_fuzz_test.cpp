// Property tests for the wire serde: random values of every type that
// crosses a process boundary survive encode/decode unchanged, and every
// malformed buffer — any strict prefix of a valid encoding, and length
// prefixes pointing past the end — fails with a clean SerdeError instead
// of an out-of-bounds read or a multi-gigabyte allocation.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/serde.hpp"
#include "fault/fault.hpp"
#include "harness/histogram.hpp"
#include "megaphone/bin.hpp"
#include "megaphone/control.hpp"
#include "net/frame.hpp"
#include "state/checkpoint.hpp"
#include "state/log_state.hpp"
#include "timely/channel.hpp"
#include "timely/progress.hpp"

namespace megaphone {
namespace {

using timely::Bundle;
using timely::Change;

// --- random generators ----------------------------------------------------

std::vector<uint64_t> RandomU64s(Xoshiro256& rng, size_t max_len) {
  std::vector<uint64_t> v(rng.NextBelow(max_len + 1));
  for (auto& x : v) x = rng.Next();
  return v;
}

std::string RandomString(Xoshiro256& rng, size_t max_len) {
  std::string s(rng.NextBelow(max_len + 1), '\0');
  for (auto& c : s) c = static_cast<char>(rng.NextBelow(256));
  return s;
}

Bundle<uint64_t, uint64_t> RandomBundle(Xoshiro256& rng) {
  Bundle<uint64_t, uint64_t> b;
  b.time = rng.Next();
  b.data = RandomU64s(rng, 64);
  return b;
}

std::vector<ControlInst> RandomControlBatch(Xoshiro256& rng) {
  std::vector<ControlInst> batch(rng.NextBelow(32));
  for (auto& c : batch) {
    c.bin = static_cast<BinId>(rng.NextBelow(1 << 12));
    c.worker = static_cast<uint32_t>(rng.NextBelow(64));
  }
  return batch;
}

std::vector<Change<uint64_t>> RandomChangeBatch(Xoshiro256& rng) {
  std::vector<Change<uint64_t>> batch(rng.NextBelow(32));
  for (auto& c : batch) {
    c.loc = static_cast<uint32_t>(rng.NextBelow(256));
    c.time = rng.Next();
    c.delta = static_cast<int64_t>(rng.Next()) >> 32;  // signed
  }
  return batch;
}

using WireBinaryBin =
    BinaryBin<std::unordered_map<uint64_t, uint64_t>, uint64_t,
              std::pair<uint64_t, std::string>, uint64_t>;

WireBinaryBin RandomBinaryBin(Xoshiro256& rng) {
  WireBinaryBin bin;
  for (size_t i = rng.NextBelow(32); i > 0; --i) {
    bin.state[rng.Next()] = rng.Next();
  }
  for (size_t i = rng.NextBelow(4); i > 0; --i) {
    bin.pending1[rng.Next()] = RandomU64s(rng, 8);
  }
  for (size_t i = rng.NextBelow(4); i > 0; --i) {
    auto& slot = bin.pending2[rng.Next()];
    for (size_t j = rng.NextBelow(4); j > 0; --j) {
      slot.emplace_back(rng.Next(), RandomString(rng, 12));
    }
  }
  return bin;
}

net::HeartbeatBody RandomHeartbeat(Xoshiro256& rng) {
  net::HeartbeatBody hb;
  hb.next_seq = rng.Next();
  hb.ack = rng.Next();
  return hb;
}

fault::FaultSpec RandomFaultSpec(Xoshiro256& rng) {
  fault::FaultSpec f;
  f.seed = rng.Next();
  // Probabilities as exact dyadic rationals so ToString/Parse aside,
  // the serde round-trip is bit-exact trivially.
  f.drop_p = static_cast<double>(rng.NextBelow(1024)) / 1024.0;
  f.dup_p = static_cast<double>(rng.NextBelow(1024)) / 1024.0;
  f.delay_p = static_cast<double>(rng.NextBelow(1024)) / 1024.0;
  f.delay_us = rng.NextBelow(10'000);
  f.corrupt_p = static_cast<double>(rng.NextBelow(1024)) / 1024.0;
  f.partition_after = rng.Next();
  f.kill_after = rng.Next();
  return f;
}

Histogram RandomHistogram(Xoshiro256& rng) {
  Histogram h;
  for (size_t i = rng.NextBelow(64); i > 0; --i) {
    h.Add(rng.Next() >> rng.NextBelow(64), 1 + rng.NextBelow(8));
  }
  return h;
}

state::CheckpointSegment RandomSegment(Xoshiro256& rng) {
  state::CheckpointSegment seg;
  seg.epoch = rng.Next();
  seg.assignment.resize(rng.NextBelow(64));
  for (auto& w : seg.assignment) w = static_cast<uint32_t>(rng.NextBelow(16));
  for (size_t i = rng.NextBelow(4); i > 0; --i) {
    auto& bins = seg.workers[static_cast<uint32_t>(rng.NextBelow(8))];
    for (size_t j = rng.NextBelow(4); j > 0; --j) {
      std::vector<uint8_t> bytes(rng.NextBelow(32));
      for (auto& b : bytes) b = static_cast<uint8_t>(rng.NextBelow(256));
      bins.emplace_back(static_cast<uint32_t>(rng.NextBelow(1 << 12)),
                        std::move(bytes));
    }
  }
  seg.collector.resize(rng.NextBelow(48));
  for (auto& b : seg.collector) b = static_cast<uint8_t>(rng.NextBelow(256));
  return seg;
}

// --- comparators (BinaryBin has no operator==) ----------------------------

template <typename T>
void ExpectEqual(const T& a, const T& b) {
  EXPECT_EQ(a, b);
}

void ExpectEqual(const Bundle<uint64_t, uint64_t>& a,
                 const Bundle<uint64_t, uint64_t>& b) {
  EXPECT_EQ(a.time, b.time);
  EXPECT_EQ(a.data, b.data);
}

void ExpectEqual(const Change<uint64_t>& a, const Change<uint64_t>& b) {
  EXPECT_EQ(a.loc, b.loc);
  EXPECT_EQ(a.time, b.time);
  EXPECT_EQ(a.delta, b.delta);
}

void ExpectEqual(const std::vector<Change<uint64_t>>& a,
                 const std::vector<Change<uint64_t>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) ExpectEqual(a[i], b[i]);
}

void ExpectEqual(const WireBinaryBin& a, const WireBinaryBin& b) {
  EXPECT_EQ(a.state, b.state);
  EXPECT_EQ(a.pending1, b.pending1);
  EXPECT_EQ(a.pending2, b.pending2);
}

void ExpectEqual(const BinChunk& a, const BinChunk& b) {
  EXPECT_EQ(a.target, b.target);
  EXPECT_EQ(a.bin, b.bin);
  EXPECT_EQ(a.seq, b.seq);
  EXPECT_EQ(a.last, b.last);
  EXPECT_EQ(a.bytes, b.bytes);
}

void ExpectEqual(const net::HeartbeatBody& a, const net::HeartbeatBody& b) {
  EXPECT_EQ(a.next_seq, b.next_seq);
  EXPECT_EQ(a.ack, b.ack);
}

void ExpectEqual(const fault::FaultSpec& a, const fault::FaultSpec& b) {
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.drop_p, b.drop_p);
  EXPECT_EQ(a.dup_p, b.dup_p);
  EXPECT_EQ(a.delay_p, b.delay_p);
  EXPECT_EQ(a.delay_us, b.delay_us);
  EXPECT_EQ(a.corrupt_p, b.corrupt_p);
  EXPECT_EQ(a.partition_after, b.partition_after);
  EXPECT_EQ(a.kill_after, b.kill_after);
}

void ExpectEqual(const Histogram& a, const Histogram& b) {
  EXPECT_EQ(a.total(), b.total());
  EXPECT_EQ(a.max(), b.max());
  EXPECT_EQ(EncodeToBytes(a), EncodeToBytes(b));
}

void ExpectEqual(const state::CheckpointSegment& a,
                 const state::CheckpointSegment& b) {
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.workers, b.workers);
  EXPECT_EQ(a.collector, b.collector);
}

void ExpectEqual(const state::LogManifest& a, const state::LogManifest& b) {
  EXPECT_EQ(a.dir, b.dir);
  EXPECT_EQ(a.delta, b.delta);
  ASSERT_EQ(a.segments.size(), b.segments.size());
  for (size_t i = 0; i < a.segments.size(); ++i) {
    EXPECT_EQ(a.segments[i].segment, b.segments[i].segment);
    EXPECT_EQ(a.segments[i].file, b.segments[i].file);
    EXPECT_EQ(a.segments[i].bytes, b.segments[i].bytes);
  }
}

// The shared property: round-trips exactly, and every strict prefix of
// the encoding throws SerdeError (a truncated frame can never decode).
template <typename T>
void CheckRoundTripAndTruncation(const T& value, bool check_all_prefixes) {
  std::vector<uint8_t> bytes = EncodeToBytes(value);
  ExpectEqual(DecodeFromBytes<T>(bytes), value);
  size_t step = check_all_prefixes ? 1 : std::max<size_t>(1, bytes.size() / 7);
  for (size_t cut = 0; cut < bytes.size(); cut += step) {
    std::vector<uint8_t> truncated(bytes.begin(),
                                   bytes.begin() + static_cast<long>(cut));
    EXPECT_THROW(DecodeFromBytes<T>(truncated), SerdeError)
        << "prefix of " << cut << "/" << bytes.size()
        << " bytes decoded without error";
  }
}

TEST(SerdeFuzz, BundleRoundTripAndTruncation) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 200; ++i) {
    CheckRoundTripAndTruncation(RandomBundle(rng), i < 50);
  }
}

TEST(SerdeFuzz, ControlBatchRoundTripAndTruncation) {
  Xoshiro256 rng(8);
  for (int i = 0; i < 200; ++i) {
    CheckRoundTripAndTruncation(RandomControlBatch(rng), i < 50);
  }
}

TEST(SerdeFuzz, ProgressChangeBatchRoundTripAndTruncation) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 200; ++i) {
    CheckRoundTripAndTruncation(RandomChangeBatch(rng), i < 50);
  }
}

TEST(SerdeFuzz, BinaryBinRoundTripAndTruncation) {
  Xoshiro256 rng(10);
  for (int i = 0; i < 60; ++i) {
    CheckRoundTripAndTruncation(RandomBinaryBin(rng), i < 10);
  }
}

TEST(SerdeFuzz, BinChunkRoundTripAndTruncation) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 100; ++i) {
    BinChunk m;
    m.target = static_cast<uint32_t>(rng.NextBelow(64));
    m.bin = static_cast<BinId>(rng.NextBelow(1 << 12));
    m.seq = static_cast<uint32_t>(rng.NextBelow(128));
    m.last = static_cast<uint8_t>(rng.NextBelow(2));
    auto payload = RandomU64s(rng, 32);
    m.bytes = EncodeToBytes(payload);
    CheckRoundTripAndTruncation(m, i < 25);
  }
}

TEST(SerdeFuzz, HeartbeatBodyRoundTripAndTruncation) {
  Xoshiro256 rng(17);
  for (int i = 0; i < 100; ++i) {
    CheckRoundTripAndTruncation(RandomHeartbeat(rng), true);
  }
}

TEST(SerdeFuzz, FaultSpecRoundTripAndTruncation) {
  Xoshiro256 rng(19);
  for (int i = 0; i < 100; ++i) {
    CheckRoundTripAndTruncation(RandomFaultSpec(rng), i < 25);
  }
}

TEST(SerdeFuzz, CheckpointSegmentRoundTripAndTruncation) {
  Xoshiro256 rng(23);
  for (int i = 0; i < 60; ++i) {
    CheckRoundTripAndTruncation(RandomSegment(rng), i < 15);
  }
}

TEST(SerdeFuzz, HistogramRoundTripAndTruncation) {
  Xoshiro256 rng(29);
  for (int i = 0; i < 100; ++i) {
    CheckRoundTripAndTruncation(RandomHistogram(rng), i < 25);
  }
}

// Histogram shards cross process boundaries; a corrupt shard must fail
// loudly instead of yielding silently wrong quantiles. The encodings below
// are hand-built around the sparse (index, count)* total max wire format.
TEST(SerdeFuzz, HistogramRejectsInconsistentEncodings) {
  auto encode = [](std::vector<std::pair<uint32_t, uint64_t>> entries,
                   uint64_t total, uint64_t max) {
    Writer w;
    Encode<uint64_t>(w, entries.size());
    for (auto& [idx, count] : entries) {
      Encode(w, idx);
      Encode(w, count);
    }
    Encode(w, total);
    Encode(w, max);
    return w.Take();
  };

  // A well-formed encoding still decodes.
  auto ok = encode({{3, 5}, {10, 7}}, 12, 100);
  Histogram h = DecodeFromBytes<Histogram>(ok);
  EXPECT_EQ(h.total(), 12u);
  EXPECT_EQ(h.max(), 100u);

  // Duplicate bucket index.
  EXPECT_THROW(DecodeFromBytes<Histogram>(encode({{3, 5}, {3, 7}}, 12, 100)),
               SerdeError);
  // Unsorted (decreasing) bucket indices.
  EXPECT_THROW(DecodeFromBytes<Histogram>(encode({{10, 7}, {3, 5}}, 12, 100)),
               SerdeError);
  // Decoded total disagrees with the sum of the counts.
  EXPECT_THROW(DecodeFromBytes<Histogram>(encode({{3, 5}, {10, 7}}, 13, 100)),
               SerdeError);
  // Bucket index out of range.
  EXPECT_THROW(
      DecodeFromBytes<Histogram>(
          encode({{static_cast<uint32_t>(Histogram::kBuckets), 5}}, 5, 100)),
      SerdeError);
}

// Chunked extraction/absorption of a randomized BinaryBin must rebuild an
// identical bin at every chunk size, and a corrupted chunk payload must
// fail with SerdeError rather than UB (S decodes chunks from the wire).
TEST(SerdeFuzz, ChunkedBinaryBinRebuildAndCorruption) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 60; ++i) {
    auto bin = RandomBinaryBin(rng);
    for (size_t chunk_bytes : {size_t{0}, size_t{1}, size_t{64},
                               size_t{1} << 12}) {
      std::vector<std::vector<uint8_t>> payloads;
      bin.DrainChunks(chunk_bytes, payloads);
      WireBinaryBin back;
      for (size_t c = 0; c < payloads.size(); ++c) {
        Reader r(payloads[c]);
        back.AbsorbChunk(r, c + 1 == payloads.size());
      }
      ExpectEqual(back, bin);
    }
    std::vector<std::vector<uint8_t>> payloads;
    bin.DrainChunks(48, payloads);
    if (payloads.empty()) continue;  // empty bin: nothing to corrupt
    auto& bytes = payloads[rng.NextBelow(payloads.size())];
    if (bytes.empty()) continue;
    bytes[rng.NextBelow(bytes.size())] = static_cast<uint8_t>(rng.Next());
    try {
      WireBinaryBin back;
      for (size_t c = 0; c < payloads.size(); ++c) {
        Reader r(payloads[c]);
        back.AbsorbChunk(r, c + 1 == payloads.size());
      }
    } catch (const SerdeError&) {
      // clean failure; fine
    }
  }
}

// --- segment log on-disk format (state/segment_log.hpp) -------------------
// Segment files survive process crashes and feed checkpoint restore, so
// their records get the same hostile-input treatment as network frames:
// truncation anywhere and flipped bytes must raise SerdeError, never UB.

std::vector<uint8_t> RandomBytes(Xoshiro256& rng, size_t max_len) {
  std::vector<uint8_t> v(rng.NextBelow(max_len + 1));
  for (auto& b : v) b = static_cast<uint8_t>(rng.NextBelow(256));
  return v;
}

TEST(SerdeFuzz, SegmentRecordRoundTripTruncationAndCorruption) {
  Xoshiro256 rng(37);
  for (int i = 0; i < 200; ++i) {
    bool tomb = rng.NextBelow(4) == 0;
    auto key = RandomBytes(rng, 32);
    auto value = tomb ? std::vector<uint8_t>{} : RandomBytes(rng, 64);
    std::vector<uint8_t> buf;
    state::AppendSegmentRecord(
        buf,
        tomb ? state::kSegmentRecordTombstone : state::kSegmentRecordPut,
        key, value);

    Reader r(buf);
    state::SegmentRecord rec = state::DecodeSegmentRecord(r);
    EXPECT_TRUE(r.AtEnd());
    EXPECT_EQ(rec.type, tomb ? state::kSegmentRecordTombstone
                             : state::kSegmentRecordPut);
    EXPECT_EQ(rec.key, key);
    EXPECT_EQ(rec.value, value);

    // Every strict prefix is a torn write: SerdeError.
    size_t step = i < 50 ? 1 : std::max<size_t>(1, buf.size() / 7);
    for (size_t cut = 0; cut < buf.size(); cut += step) {
      Reader rr(buf.data(), cut);
      EXPECT_THROW(state::DecodeSegmentRecord(rr), SerdeError)
          << "prefix of " << cut << "/" << buf.size() << " bytes decoded";
    }

    // A guaranteed-changed byte anywhere fails magic, type, length
    // sanity, or the CRC — one of them always trips.
    auto corrupt = buf;
    size_t pos = rng.NextBelow(corrupt.size());
    corrupt[pos] ^= static_cast<uint8_t>(1 + rng.NextBelow(255));
    Reader rc(corrupt);
    EXPECT_THROW(
        {
          state::DecodeSegmentRecord(rc);
          // Length corruption can leave trailing bytes; a clean decode of
          // mutated input with nothing left over would be a missed CRC.
          if (!rc.AtEnd()) throw SerdeError("trailing bytes");
        },
        SerdeError)
        << "flipped byte at " << pos << " decoded cleanly";
  }
}

TEST(SerdeFuzz, SegmentFileScanRejectsTruncationAnywhere) {
  Xoshiro256 rng(41);
  std::vector<uint8_t> file(state::kSegmentFileHeaderBytes);
  std::memcpy(file.data(), &state::kSegmentFileMagic, 8);
  std::set<size_t> record_boundaries;  // cuts here are valid shorter files
  record_boundaries.insert(file.size());
  for (int i = 0; i < 5; ++i) {
    state::AppendSegmentRecord(file, state::kSegmentRecordPut,
                               RandomBytes(rng, 16), RandomBytes(rng, 24));
    record_boundaries.insert(file.size());
  }

  size_t records = 0;
  state::ForEachSegmentRecord(file, [&](const state::SegmentRecord&,
                                        uint64_t) { ++records; });
  EXPECT_EQ(records, 5u);

  for (size_t cut = 0; cut < file.size(); ++cut) {
    if (record_boundaries.count(cut)) continue;  // not torn, just shorter
    std::vector<uint8_t> prefix(file.begin(),
                                file.begin() + static_cast<long>(cut));
    EXPECT_THROW(state::ForEachSegmentRecord(
                     prefix, [](const state::SegmentRecord&, uint64_t) {}),
                 SerdeError)
        << "prefix of " << cut << "/" << file.size() << " bytes scanned";
  }

  auto bad_magic = file;
  bad_magic[0] ^= 0xff;
  EXPECT_THROW(state::ForEachSegmentRecord(
                   bad_magic, [](const state::SegmentRecord&, uint64_t) {}),
               SerdeError);
}

state::LogManifest RandomManifest(Xoshiro256& rng) {
  state::LogManifest m;
  m.dir = "/tmp/ck_" + RandomString(rng, 12);
  m.segments.resize(rng.NextBelow(6));
  for (auto& e : m.segments) {
    e.segment = rng.Next();
    e.file = "seg_" + RandomString(rng, 8);
    e.bytes = rng.Next();
  }
  m.delta = RandomBytes(rng, 48);
  return m;
}

TEST(SerdeFuzz, LogManifestRoundTripAndTruncation) {
  Xoshiro256 rng(43);
  for (int i = 0; i < 100; ++i) {
    CheckRoundTripAndTruncation(RandomManifest(rng), i < 25);
  }
}

// Chunked migration of a spilled LogState bin: every chunk bound rebuilds
// an identical bin, and a corrupted chunk payload fails with SerdeError
// rather than UB (the absorb path appends decoded records to disk).
TEST(SerdeFuzz, LogStateChunkRebuildAndCorruption) {
  Xoshiro256 rng(47);
  state::LogStateOptions opts;
  opts.memtable_bytes = 256;  // force segment traffic at test scale
  for (int i = 0; i < 8; ++i) {
    state::LogState<uint64_t, uint64_t> src(opts);
    std::map<uint64_t, uint64_t> ref;
    for (size_t n = 20 + rng.NextBelow(120); n > 0; --n) {
      uint64_t k = rng.NextBelow(256);
      src[k] = rng.Next();
      ref[k] = src.Get(k).value();
    }
    for (size_t chunk_bytes :
         {size_t{0}, size_t{1}, size_t{64}, size_t{1} << 12}) {
      std::vector<std::vector<uint8_t>> payloads;
      src.EnumerateChunks(chunk_bytes, [&](std::vector<uint8_t>&& c) {
        payloads.push_back(std::move(c));
      });
      state::LogState<uint64_t, uint64_t> back(opts);
      for (auto& p : payloads) {
        Reader r(p);
        back.AbsorbChunk(r);
      }
      back.FinishAbsorb();
      EXPECT_EQ(back.Snapshot(), ref) << "chunk_bytes=" << chunk_bytes;
    }

    std::vector<std::vector<uint8_t>> payloads;
    src.EnumerateChunks(48, [&](std::vector<uint8_t>&& c) {
      payloads.push_back(std::move(c));
    });
    if (payloads.empty()) continue;
    auto& bytes = payloads[rng.NextBelow(payloads.size())];
    if (bytes.empty()) continue;
    bytes[rng.NextBelow(bytes.size())] ^=
        static_cast<uint8_t>(1 + rng.NextBelow(255));
    try {
      state::LogState<uint64_t, uint64_t> back(opts);
      for (auto& p : payloads) {
        Reader r(p);
        back.AbsorbChunk(r);
      }
      back.FinishAbsorb();
    } catch (const SerdeError&) {
      // clean failure; fine
    }
  }
}

// A corrupted length prefix must not drive a giant allocation: the decode
// throws before reserving anything close to the claimed size.
TEST(SerdeFuzz, HugeLengthPrefixFailsCleanly) {
  Writer w;
  Encode<uint64_t>(w, ~uint64_t{0});  // vector length 2^64-1
  auto bytes = w.Take();
  EXPECT_THROW(DecodeFromBytes<std::vector<uint64_t>>(bytes), SerdeError);
  EXPECT_THROW(DecodeFromBytes<std::string>(bytes), SerdeError);
  EXPECT_THROW((DecodeFromBytes<std::map<uint64_t, uint64_t>>(bytes)),
               SerdeError);
  EXPECT_THROW(
      (DecodeFromBytes<std::unordered_map<uint64_t, uint64_t>>(bytes)),
      SerdeError);
}

// Random corruption of a length byte inside a valid encoding either still
// decodes (the mutated length happened to stay consistent) or fails with
// SerdeError — never UB, never abort.
TEST(SerdeFuzz, RandomLengthCorruptionNeverCrashes) {
  Xoshiro256 rng(12);
  for (int i = 0; i < 300; ++i) {
    auto bin = RandomBinaryBin(rng);
    auto bytes = EncodeToBytes(bin);
    if (bytes.empty()) continue;
    size_t pos = rng.NextBelow(bytes.size());
    bytes[pos] = static_cast<uint8_t>(rng.Next());
    try {
      auto decoded = DecodeFromBytes<WireBinaryBin>(bytes);
      (void)decoded;  // consistent mutation; fine
    } catch (const SerdeError&) {
      // clean failure; fine
    }
  }
}

}  // namespace
}  // namespace megaphone
