// Unit tests for the migratable-state layer (src/state/): every backend
// must round-trip through whole-value serde AND through chunked
// enumerate/absorb at any chunk size, chunks must respect the byte bound
// (up to one entry of slack), and the backend-selection trait must pick
// the right backend for user-declared state types.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "state/state.hpp"

namespace megaphone {
namespace state {
namespace {

/// Rebuilds a backend from its chunk stream at the given bound.
template <typename S>
S ChunkRoundTrip(const S& src, size_t max_bytes,
                 size_t* num_chunks = nullptr) {
  std::vector<std::vector<uint8_t>> chunks;
  src.EnumerateChunks(max_bytes, [&](std::vector<uint8_t>&& c) {
    chunks.push_back(std::move(c));
  });
  if (num_chunks != nullptr) *num_chunks = chunks.size();
  S out;
  for (auto& c : chunks) {
    Reader r(c);
    out.AbsorbChunk(r);
    EXPECT_TRUE(r.AtEnd()) << "chunk not fully absorbed";
  }
  out.FinishAbsorb();
  return out;
}

TEST(MapState, SerdeAndChunkRoundTripAtEveryBound) {
  Xoshiro256 rng(1);
  MapState<uint64_t, std::string> m;
  for (int i = 0; i < 700; ++i) {
    m[rng.Next()] = std::string(rng.NextBelow(20), 'x');
  }
  EXPECT_EQ(DecodeFromBytes<decltype(m)>(EncodeToBytes(m)), m);
  for (size_t bound : {size_t{0}, size_t{1}, size_t{128}, size_t{1} << 16}) {
    EXPECT_EQ(ChunkRoundTrip(m, bound), m) << "bound=" << bound;
  }
  size_t chunks = 0;
  ChunkRoundTrip(m, 256, &chunks);
  EXPECT_GT(chunks, 10u) << "700 entries must split at a 256-byte bound";
}

TEST(MapState, EmptyStateYieldsNoChunks) {
  MapState<uint64_t, uint64_t> m;
  size_t chunks = ~size_t{0};
  EXPECT_EQ(ChunkRoundTrip(m, 64, &chunks), m);
  EXPECT_EQ(chunks, 0u);
}

TEST(SortedState, ChunksAreSortedRunsAndAbsorbInOrder) {
  Xoshiro256 rng(2);
  SortedState<uint64_t, uint64_t> s;
  for (int i = 0; i < 500; ++i) s[rng.Next()] = rng.Next();
  EXPECT_EQ(DecodeFromBytes<decltype(s)>(EncodeToBytes(s)), s);

  std::vector<std::vector<uint8_t>> chunks;
  s.EnumerateChunks(128, [&](std::vector<uint8_t>&& c) {
    chunks.push_back(std::move(c));
  });
  ASSERT_GT(chunks.size(), 4u);
  // Each chunk is a sorted run, and runs ascend across chunks: the first
  // key of chunk i+1 exceeds the last key of chunk i.
  uint64_t prev = 0;
  bool first = true;
  for (auto& c : chunks) {
    Reader r(c);
    while (!r.AtEnd()) {
      uint64_t k = Decode<uint64_t>(r);
      (void)Decode<uint64_t>(r);
      if (!first) {
        EXPECT_GT(k, prev) << "keys not globally sorted";
      }
      prev = k;
      first = false;
    }
  }
  EXPECT_EQ(ChunkRoundTrip(s, 128), s);
}

TEST(DenseState, OffsetChunksRebuildInPlace) {
  DenseState<uint64_t> d;
  d.resize(10'000);
  for (size_t i = 0; i < d.size(); ++i) d[i] = i * 7;
  EXPECT_EQ(DecodeFromBytes<decltype(d)>(EncodeToBytes(d)), d);
  for (size_t bound : {size_t{0}, size_t{64}, size_t{4096}}) {
    EXPECT_EQ(ChunkRoundTrip(d, bound), d) << "bound=" << bound;
  }
  size_t chunks = 0;
  ChunkRoundTrip(d, 1 << 12, &chunks);
  EXPECT_GE(chunks, 10'000 * 8 / (1 << 12)) << "80 KB at 4 KB chunks";
}

TEST(DenseState, ChunkGapIsASerdeError) {
  DenseState<uint64_t> src;
  src.resize(100);
  std::vector<std::vector<uint8_t>> chunks;
  src.EnumerateChunks(64, [&](std::vector<uint8_t>&& c) {
    chunks.push_back(std::move(c));
  });
  ASSERT_GT(chunks.size(), 1u);
  DenseState<uint64_t> out;
  Reader r(chunks[1]);  // skipping chunk 0 leaves a gap
  EXPECT_THROW(out.AbsorbChunk(r), SerdeError);
}

TEST(BlobState, SlicesAndReassemblesAnySerdeType) {
  BlobState<std::map<std::string, std::vector<uint64_t>>> b;
  Xoshiro256 rng(3);
  for (int i = 0; i < 60; ++i) {
    b.value[std::to_string(rng.Next())] = {rng.Next(), rng.Next()};
  }
  auto bytes = EncodeToBytes(b);
  EXPECT_EQ(DecodeFromBytes<decltype(b)>(bytes).value, b.value);

  size_t chunks = 0;
  auto back = ChunkRoundTrip(b, 100, &chunks);
  EXPECT_EQ(back.value, b.value);
  EXPECT_GT(chunks, 2u) << "blob must slice at small bounds";
  // Every chunk except the final one is exactly the bound (pure slices).
  std::vector<std::vector<uint8_t>> cs;
  b.EnumerateChunks(100, [&](std::vector<uint8_t>&& c) {
    cs.push_back(std::move(c));
  });
  for (size_t i = 0; i + 1 < cs.size(); ++i) {
    EXPECT_EQ(cs[i].size(), 100u);
  }
}

TEST(ChunkBuilder, SectionsRespectTheFrameBound) {
  std::vector<std::vector<uint8_t>> frames;
  ChunkBuilder cb(64, &frames);
  std::vector<uint8_t> sec(20, 0xab);
  for (int i = 0; i < 10; ++i) cb.AddSection(1, sec);
  cb.Finish();
  ASSERT_GT(frames.size(), 2u);
  size_t total_sections = 0;
  for (auto& f : frames) {
    EXPECT_LE(f.size(), 64 + 20 + ChunkBuilder::kSectionHeader)
        << "frame far above the bound";
    Reader r(f);
    ForEachSection(r, [&](uint8_t tag, Reader& s) {
      EXPECT_EQ(tag, 1);
      EXPECT_EQ(s.remaining(), 20u);
      ++total_sections;
    });
  }
  EXPECT_EQ(total_sections, 10u);
}

TEST(BackendSelection, MapsDeclaredTypesToBackends) {
  using M = BackendFor<std::unordered_map<uint64_t, uint64_t>>;
  using S = BackendFor<std::map<uint64_t, uint64_t>>;
  using D = BackendFor<std::vector<uint64_t>>;
  using Explicit = BackendFor<MapState<uint64_t, uint64_t>>;
  struct Custom {
    uint64_t x = 0;
    MEGA_SERDE_FIELDS(Custom, x)
  };
  using B = BackendFor<Custom>;
  static_assert(std::is_same_v<M, MapState<uint64_t, uint64_t>>);
  static_assert(std::is_same_v<S, SortedState<uint64_t, uint64_t>>);
  static_assert(std::is_same_v<D, DenseState<uint64_t>>);
  static_assert(std::is_same_v<Explicit, MapState<uint64_t, uint64_t>>);
  static_assert(std::is_same_v<B, BlobState<Custom>>);

  // The user-reference accessor hands back the declared type.
  M m;
  std::unordered_map<uint64_t, uint64_t>& raw =
      BackendSel<std::unordered_map<uint64_t, uint64_t>>::user(m);
  raw[3] = 4;
  EXPECT_EQ(m.raw().at(3), 4u);
}

TEST(SerdeFieldsMacro, EncodesInDeclarationOrder) {
  struct Pod {
    uint64_t a = 0;
    std::string b;
    std::vector<uint32_t> c;
    MEGA_SERDE_FIELDS(Pod, a, b, c)
  };
  Pod p;
  p.a = 99;
  p.b = "megaphone";
  p.c = {1, 2, 3};
  Pod q = DecodeFromBytes<Pod>(EncodeToBytes(p));
  EXPECT_EQ(q.a, p.a);
  EXPECT_EQ(q.b, p.b);
  EXPECT_EQ(q.c, p.c);

  // Field order is the declared order: a's 8 bytes lead the encoding.
  auto bytes = EncodeToBytes(p);
  Reader r(bytes);
  EXPECT_EQ(Decode<uint64_t>(r), 99u);
}

}  // namespace
}  // namespace state
}  // namespace megaphone
