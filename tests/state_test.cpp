// Unit tests for the migratable-state layer (src/state/): every backend
// must round-trip through whole-value serde AND through chunked
// enumerate/absorb at any chunk size, chunks must respect the byte bound
// (up to one entry of slack), and the backend-selection trait must pick
// the right backend for user-declared state types.
#include <gtest/gtest.h>
#include <stdlib.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "state/checkpoint.hpp"
#include "state/state.hpp"

namespace megaphone {
namespace state {
namespace {

/// Rebuilds a backend from its chunk stream at the given bound.
template <typename S>
S ChunkRoundTrip(const S& src, size_t max_bytes,
                 size_t* num_chunks = nullptr) {
  std::vector<std::vector<uint8_t>> chunks;
  src.EnumerateChunks(max_bytes, [&](std::vector<uint8_t>&& c) {
    chunks.push_back(std::move(c));
  });
  if (num_chunks != nullptr) *num_chunks = chunks.size();
  S out;
  for (auto& c : chunks) {
    Reader r(c);
    out.AbsorbChunk(r);
    EXPECT_TRUE(r.AtEnd()) << "chunk not fully absorbed";
  }
  out.FinishAbsorb();
  return out;
}

TEST(MapState, SerdeAndChunkRoundTripAtEveryBound) {
  Xoshiro256 rng(1);
  MapState<uint64_t, std::string> m;
  for (int i = 0; i < 700; ++i) {
    m[rng.Next()] = std::string(rng.NextBelow(20), 'x');
  }
  EXPECT_EQ(DecodeFromBytes<decltype(m)>(EncodeToBytes(m)), m);
  for (size_t bound : {size_t{0}, size_t{1}, size_t{128}, size_t{1} << 16}) {
    EXPECT_EQ(ChunkRoundTrip(m, bound), m) << "bound=" << bound;
  }
  size_t chunks = 0;
  ChunkRoundTrip(m, 256, &chunks);
  EXPECT_GT(chunks, 10u) << "700 entries must split at a 256-byte bound";
}

TEST(MapState, EmptyStateYieldsNoChunks) {
  MapState<uint64_t, uint64_t> m;
  size_t chunks = ~size_t{0};
  EXPECT_EQ(ChunkRoundTrip(m, 64, &chunks), m);
  EXPECT_EQ(chunks, 0u);
}

TEST(SortedState, ChunksAreSortedRunsAndAbsorbInOrder) {
  Xoshiro256 rng(2);
  SortedState<uint64_t, uint64_t> s;
  for (int i = 0; i < 500; ++i) s[rng.Next()] = rng.Next();
  EXPECT_EQ(DecodeFromBytes<decltype(s)>(EncodeToBytes(s)), s);

  std::vector<std::vector<uint8_t>> chunks;
  s.EnumerateChunks(128, [&](std::vector<uint8_t>&& c) {
    chunks.push_back(std::move(c));
  });
  ASSERT_GT(chunks.size(), 4u);
  // Each chunk is a sorted run, and runs ascend across chunks: the first
  // key of chunk i+1 exceeds the last key of chunk i.
  uint64_t prev = 0;
  bool first = true;
  for (auto& c : chunks) {
    Reader r(c);
    while (!r.AtEnd()) {
      uint64_t k = Decode<uint64_t>(r);
      (void)Decode<uint64_t>(r);
      if (!first) {
        EXPECT_GT(k, prev) << "keys not globally sorted";
      }
      prev = k;
      first = false;
    }
  }
  EXPECT_EQ(ChunkRoundTrip(s, 128), s);
}

TEST(DenseState, OffsetChunksRebuildInPlace) {
  DenseState<uint64_t> d;
  d.resize(10'000);
  for (size_t i = 0; i < d.size(); ++i) d[i] = i * 7;
  EXPECT_EQ(DecodeFromBytes<decltype(d)>(EncodeToBytes(d)), d);
  for (size_t bound : {size_t{0}, size_t{64}, size_t{4096}}) {
    EXPECT_EQ(ChunkRoundTrip(d, bound), d) << "bound=" << bound;
  }
  size_t chunks = 0;
  ChunkRoundTrip(d, 1 << 12, &chunks);
  EXPECT_GE(chunks, 10'000 * 8 / (1 << 12)) << "80 KB at 4 KB chunks";
}

TEST(DenseState, ChunkGapIsASerdeError) {
  DenseState<uint64_t> src;
  src.resize(100);
  std::vector<std::vector<uint8_t>> chunks;
  src.EnumerateChunks(64, [&](std::vector<uint8_t>&& c) {
    chunks.push_back(std::move(c));
  });
  ASSERT_GT(chunks.size(), 1u);
  DenseState<uint64_t> out;
  Reader r(chunks[1]);  // skipping chunk 0 leaves a gap
  EXPECT_THROW(out.AbsorbChunk(r), SerdeError);
}

TEST(BlobState, SlicesAndReassemblesAnySerdeType) {
  BlobState<std::map<std::string, std::vector<uint64_t>>> b;
  Xoshiro256 rng(3);
  for (int i = 0; i < 60; ++i) {
    b.value[std::to_string(rng.Next())] = {rng.Next(), rng.Next()};
  }
  auto bytes = EncodeToBytes(b);
  EXPECT_EQ(DecodeFromBytes<decltype(b)>(bytes).value, b.value);

  size_t chunks = 0;
  auto back = ChunkRoundTrip(b, 100, &chunks);
  EXPECT_EQ(back.value, b.value);
  EXPECT_GT(chunks, 2u) << "blob must slice at small bounds";
  // Every chunk except the final one is exactly the bound (pure slices).
  std::vector<std::vector<uint8_t>> cs;
  b.EnumerateChunks(100, [&](std::vector<uint8_t>&& c) {
    cs.push_back(std::move(c));
  });
  for (size_t i = 0; i + 1 < cs.size(); ++i) {
    EXPECT_EQ(cs[i].size(), 100u);
  }
}

TEST(ChunkBuilder, SectionsRespectTheFrameBound) {
  std::vector<std::vector<uint8_t>> frames;
  ChunkBuilder cb(64, &frames);
  std::vector<uint8_t> sec(20, 0xab);
  for (int i = 0; i < 10; ++i) cb.AddSection(1, sec);
  cb.Finish();
  ASSERT_GT(frames.size(), 2u);
  size_t total_sections = 0;
  for (auto& f : frames) {
    EXPECT_LE(f.size(), 64 + 20 + ChunkBuilder::kSectionHeader)
        << "frame far above the bound";
    Reader r(f);
    ForEachSection(r, [&](uint8_t tag, Reader& s) {
      EXPECT_EQ(tag, 1);
      EXPECT_EQ(s.remaining(), 20u);
      ++total_sections;
    });
  }
  EXPECT_EQ(total_sections, 10u);
}

TEST(BackendSelection, MapsDeclaredTypesToBackends) {
  using M = BackendFor<std::unordered_map<uint64_t, uint64_t>>;
  using S = BackendFor<std::map<uint64_t, uint64_t>>;
  using D = BackendFor<std::vector<uint64_t>>;
  using Explicit = BackendFor<MapState<uint64_t, uint64_t>>;
  struct Custom {
    uint64_t x = 0;
    MEGA_SERDE_FIELDS(Custom, x)
  };
  using B = BackendFor<Custom>;
  static_assert(std::is_same_v<M, MapState<uint64_t, uint64_t>>);
  static_assert(std::is_same_v<S, SortedState<uint64_t, uint64_t>>);
  static_assert(std::is_same_v<D, DenseState<uint64_t>>);
  static_assert(std::is_same_v<Explicit, MapState<uint64_t, uint64_t>>);
  static_assert(std::is_same_v<B, BlobState<Custom>>);

  // The user-reference accessor hands back the declared type.
  M m;
  std::unordered_map<uint64_t, uint64_t>& raw =
      BackendSel<std::unordered_map<uint64_t, uint64_t>>::user(m);
  raw[3] = 4;
  EXPECT_EQ(m.raw().at(3), 4u);
}

// ------------------------------------------------------------- LogState

/// Options that force disk traffic at test scale: a few hundred bytes of
/// memtable, 4 KiB segments, and automatic compaction disabled
/// (compact_min_bytes out of reach) so tests trigger CompactNow
/// deliberately.
LogStateOptions SmallLogOpts(uint64_t memtable_bytes = 512) {
  LogStateOptions o;
  o.memtable_bytes = memtable_bytes;
  o.segment_bytes = 4ull << 10;
  o.compact_min_bytes = 1ull << 40;
  return o;
}

TEST(LogState, SpillsAndServesReadsFromDisk) {
  LogState<uint64_t, std::string> s(SmallLogOpts());
  std::map<uint64_t, std::string> ref;
  Xoshiro256 rng(51);
  for (int i = 0; i < 400; ++i) {
    uint64_t k = rng.NextBelow(300);  // overwrites generate garbage
    std::string v(1 + rng.NextBelow(24), static_cast<char>('a' + (k % 26)));
    s[k] = v;
    ref[k] = v;
  }
  EXPECT_GT(s.segment_count(), 0u) << "400 writes never spilled";
  EXPECT_LT(s.memtable_entries(), ref.size())
      << "everything still resident; the memtable bound did nothing";
  EXPECT_EQ(s.size(), ref.size());
  EXPECT_EQ(s.Snapshot(), ref);
  for (auto& [k, v] : ref) {
    EXPECT_TRUE(s.contains(k));
    auto got = s.Get(k);
    ASSERT_TRUE(got.has_value()) << "key " << k;
    EXPECT_EQ(*got, v);
  }
  EXPECT_FALSE(s.Get(1'000'000).has_value());
  EXPECT_FALSE(s.contains(1'000'000));
}

TEST(LogState, EraseTombstonesAndRevival) {
  LogState<uint64_t, uint64_t> s(SmallLogOpts());
  std::map<uint64_t, uint64_t> ref;
  for (uint64_t k = 0; k < 200; ++k) {
    s[k] = k * 3;
    ref[k] = k * 3;
  }
  s.FlushNow();  // push everything to disk so erase must tombstone
  for (uint64_t k = 0; k < 200; k += 2) {
    EXPECT_EQ(s.erase(k), 1u);
    ref.erase(k);
  }
  EXPECT_EQ(s.erase(7777), 0u);  // never present
  EXPECT_EQ(s.size(), ref.size());
  EXPECT_FALSE(s.contains(42));
  EXPECT_FALSE(s.Get(42).has_value());
  s[42] = 999;  // revive an erased, spilled key
  ref[42] = 999;
  EXPECT_EQ(s.Get(42).value(), 999u);
  EXPECT_EQ(s.Snapshot(), ref);
}

TEST(LogState, CompactionShrinksDiskAndPreservesContents) {
  LogState<uint64_t, uint64_t> s(SmallLogOpts(256));
  for (uint64_t k = 0; k < 300; ++k) s[k] = k;
  for (uint64_t k = 0; k < 300; ++k) s[k] = k + 1;  // 50% garbage
  s.FlushNow();
  ASSERT_GT(s.garbage_bytes(), 0u);
  auto before_snapshot = s.Snapshot();
  uint64_t before_disk = s.disk_bytes();
  s.CompactNow();
  EXPECT_LT(s.disk_bytes(), before_disk)
      << "rewriting live records did not drop the dead ones";
  EXPECT_EQ(s.garbage_bytes(), 0u);
  EXPECT_EQ(s.Snapshot(), before_snapshot);
  EXPECT_GT(s.segment_count(), 0u);
}

TEST(LogState, ChunkRoundTripAtEveryBound) {
  using S = LogState<uint64_t, std::string>;
  S src(SmallLogOpts());
  Xoshiro256 rng(53);
  for (int i = 0; i < 250; ++i) {
    src[rng.NextBelow(400)] = std::string(rng.NextBelow(20), 'x');
  }
  for (uint64_t k = 0; k < 400; k += 5) src.erase(k);  // tombstones too
  for (int i = 0; i < 8; ++i) src[1000 + i] = "delta";  // fresh memtable tail
  auto ref = src.Snapshot();
  ASSERT_GT(src.segment_count(), 0u);
  for (size_t bound : {size_t{0}, size_t{1}, size_t{128}, size_t{1} << 16}) {
    EXPECT_EQ(ChunkRoundTrip(src, bound).Snapshot(), ref)
        << "bound=" << bound;
  }
  size_t chunks = 0;
  ChunkRoundTrip(src, 256, &chunks);
  EXPECT_GT(chunks, 4u) << "spilled state must split at a 256-byte bound";

  // Chunks stream the live range in globally ascending key order, the
  // same sorted-run contract SortedState honors.
  std::vector<std::vector<uint8_t>> cs;
  src.EnumerateChunks(128, [&](std::vector<uint8_t>&& c) {
    cs.push_back(std::move(c));
  });
  uint64_t prev = 0;
  bool first = true;
  for (auto& c : cs) {
    Reader r(c);
    while (!r.AtEnd()) {
      uint64_t k = Decode<uint64_t>(r);
      (void)Decode<std::string>(r);
      if (!first) {
        EXPECT_GT(k, prev) << "keys not globally sorted";
      }
      prev = k;
      first = false;
    }
  }
}

TEST(LogState, WholeValueSerdeRoundTripsInline) {
  // Without a CheckpointDirScope the encoding is self-contained (tag 0):
  // it must decode in a process that shares no filesystem state.
  LogState<uint64_t, std::string> s(SmallLogOpts());
  for (uint64_t k = 0; k < 150; ++k) s[k] = std::string(k % 17, 'y');
  s.erase(3);
  s.erase(99);
  auto back = DecodeFromBytes<LogState<uint64_t, std::string>>(
      EncodeToBytes(s));
  EXPECT_EQ(back.Snapshot(), s.Snapshot());
  EXPECT_EQ(back.size(), s.size());
}

TEST(LogState, MoveTransfersSegmentOwnership) {
  auto make = [] {
    LogState<uint64_t, uint64_t> src(SmallLogOpts());
    for (uint64_t k = 0; k < 200; ++k) src[k] = k * 7;
    src.FlushNow();
    EXPECT_GT(src.segment_count(), 0u);
    return src;  // moves out; the source dtor must not delete the files
  };
  LogState<uint64_t, uint64_t> dst = make();
  EXPECT_GT(dst.segment_count(), 0u);
  for (uint64_t k = 0; k < 200; ++k) {
    auto got = dst.Get(k);
    ASSERT_TRUE(got.has_value()) << "key " << k << " lost across the move";
    EXPECT_EQ(*got, k * 7);
  }
}

TEST(LogState, ManifestCheckpointRestoresAndRejectsTornSegment) {
  char tmpl[] = "/tmp/mega_lsck_test_XXXXXX";
  ASSERT_NE(mkdtemp(tmpl), nullptr);
  std::string ckdir = tmpl;

  LogState<uint64_t, std::string> s(SmallLogOpts());
  std::map<uint64_t, std::string> ref;
  for (uint64_t k = 0; k < 180; ++k) {
    std::string v(1 + (k % 13), 'z');
    s[k] = v;
    ref[k] = v;
  }
  s.FlushNow();
  for (uint64_t k = 500; k < 510; ++k) {  // memtable delta rides the manifest
    s[k] = "delta";
    ref[k] = "delta";
  }
  ASSERT_GT(s.segment_count(), 0u);

  std::vector<uint8_t> bytes;
  {
    CheckpointDirScope scope(ckdir);
    bytes = EncodeToBytes(s);
  }

  // Restore outside the scope: the manifest carries its own directory.
  auto back = DecodeFromBytes<LogState<uint64_t, std::string>>(bytes);
  EXPECT_EQ(back.Snapshot(), ref);

  // Find the largest published segment file under the checkpoint dir.
  std::filesystem::path victim;
  uintmax_t victim_size = 0;
  for (auto& e : std::filesystem::recursive_directory_iterator(ckdir)) {
    if (e.is_regular_file() && e.file_size() > victim_size) {
      victim = e.path();
      victim_size = e.file_size();
    }
  }
  ASSERT_FALSE(victim.empty()) << "checkpoint published no segment files";
  std::vector<uint8_t> original = ReadSegmentBytes(victim.string());

  auto rewrite = [&](const std::vector<uint8_t>& content) {
    std::filesystem::remove(victim);
    std::ofstream out(victim, std::ios::binary);
    out.write(reinterpret_cast<const char*>(content.data()),
              static_cast<std::streamsize>(content.size()));
  };

  // A flipped byte inside a record fails the CRC at restore.
  {
    auto corrupt = original;
    corrupt[corrupt.size() / 2] ^= 0x40;
    rewrite(corrupt);
    EXPECT_THROW(
        (DecodeFromBytes<LogState<uint64_t, std::string>>(bytes)),
        SerdeError);
    rewrite(original);
  }

  // A crash mid-compaction leaves stray .tmp files; restore only reads
  // what the manifest lists, so the leftover is ignored.
  {
    std::ofstream stray(victim.string() + ".junk.tmp", std::ios::binary);
    stray << "half-written compaction output";
    stray.close();
    auto ok = DecodeFromBytes<LogState<uint64_t, std::string>>(bytes);
    EXPECT_EQ(ok.Snapshot(), ref);
  }

  // A truncated (torn) segment fails the manifest size check outright —
  // no silent replay of a prefix.
  {
    auto torn = original;
    torn.resize(torn.size() - 5);
    rewrite(torn);
    EXPECT_THROW(
        (DecodeFromBytes<LogState<uint64_t, std::string>>(bytes)),
        SerdeError);
  }

  std::error_code ec;
  std::filesystem::remove_all(ckdir, ec);
}

TEST(SerdeFieldsMacro, EncodesInDeclarationOrder) {
  struct Pod {
    uint64_t a = 0;
    std::string b;
    std::vector<uint32_t> c;
    MEGA_SERDE_FIELDS(Pod, a, b, c)
  };
  Pod p;
  p.a = 99;
  p.b = "megaphone";
  p.c = {1, 2, 3};
  Pod q = DecodeFromBytes<Pod>(EncodeToBytes(p));
  EXPECT_EQ(q.a, p.a);
  EXPECT_EQ(q.b, p.b);
  EXPECT_EQ(q.c, p.c);

  // Field order is the declared order: a's 8 bytes lead the encoding.
  auto bytes = EncodeToBytes(p);
  Reader r(bytes);
  EXPECT_EQ(Decode<uint64_t>(r), 99u);
}

}  // namespace
}  // namespace state
}  // namespace megaphone
