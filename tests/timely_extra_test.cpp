// Additional engine tests: batching, throttled outputs, routing pacts,
// frontier monotonicity, channel registry, and input-handle misuse.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "common/hash.hpp"
#include "timely/timely.hpp"

namespace timely {
namespace {

using megaphone::HashMix64;

TEST(TimelyExtra, LargeBatchesFlushCompletely) {
  // More records per epoch than the output batch size (1024) exercises
  // mid-logic buffer flushes.
  std::atomic<uint64_t> count{0};
  Execute(Config{2}, [&](Worker& w) {
    auto input = w.Dataflow<uint64_t>([&](Scope<uint64_t>& s) {
      auto [in, stream] = NewInput<uint64_t>(s);
      auto ex = Exchange(stream, [](const uint64_t& x) { return x; });
      Sink(ex, [&](const uint64_t&, std::vector<uint64_t>& d) {
        count += d.size();
      });
      return in;
    });
    std::vector<uint64_t> batch;
    for (uint64_t i = 0; i < 10000; ++i) batch.push_back(i);
    input->SendBatch(std::move(batch));
    input->Close();
  });
  EXPECT_EQ(count.load(), 20000u);
}

TEST(TimelyExtra, RoutePactDeliversToNamedWorker) {
  const uint32_t workers = 4;
  std::mutex mu;
  std::map<uint32_t, std::set<uint64_t>> seen;
  Execute(Config{workers}, [&](Worker& w) {
    auto input = w.Dataflow<uint64_t>([&](Scope<uint64_t>& s) {
      auto [in, stream] = NewInput<uint64_t>(s);
      OperatorBuilder<uint64_t> b(s, "RouteSink");
      auto* h = b.AddInput(stream, Pact<uint64_t>::Route([](const uint64_t& x) {
        return static_cast<uint32_t>(x % 3);  // explicit target worker
      }));
      uint32_t me = s.worker();
      b.Build([h, me, &mu, &seen](OpCtx<uint64_t>&) {
        h->ForEach([&](const uint64_t&, std::vector<uint64_t>& d) {
          std::lock_guard<std::mutex> lock(mu);
          for (auto x : d) seen[me].insert(x);
        });
      });
      return in;
    });
    if (w.index() == 0) {
      for (uint64_t i = 0; i < 30; ++i) input->Send(i);
    }
    input->Close();
  });
  for (auto& [worker, xs] : seen) {
    for (uint64_t x : xs) EXPECT_EQ(x % 3, worker);
  }
  EXPECT_EQ(seen[0].size() + seen[1].size() + seen[2].size(), 30u);
  EXPECT_TRUE(seen[3].empty());
}

TEST(TimelyExtra, ThrottledOutputDelaysButDeliversAll) {
  // A throttled output handle models network bandwidth: everything still
  // arrives, and sender-side pending bytes eventually drain.
  std::atomic<uint64_t> received{0};
  Execute(Config{1}, [&](Worker& w) {
    auto handles = w.Dataflow<uint64_t>([&](Scope<uint64_t>& s) {
      auto [in, stream] = NewInput<uint64_t>(s);
      OperatorBuilder<uint64_t> b(s, "Throttled");
      auto* h = b.AddInput(stream, Pact<uint64_t>::Pipeline());
      auto [out, out_stream] = b.AddOutput<uint64_t>();
      out->SetThrottle(64 * 1024,  // 64 KiB/s
                       [](const uint64_t&) { return size_t{1024}; });
      b.Build([h, out](OpCtx<uint64_t>&) {
        h->ForEach([&](const uint64_t& t, std::vector<uint64_t>& d) {
          out->SendBatch(t, std::move(d));
        });
      });
      Sink(out_stream, [&](const uint64_t&, std::vector<uint64_t>& d) {
        received += d.size();
      });
      return std::make_pair(in, Probe(out_stream));
    });
    auto& [input, probe] = handles;
    for (uint64_t i = 0; i < 64; ++i) input->Send(i);  // 64 KiB of "bytes"
    input->Close();
    w.StepUntil([&] { return probe.Done(); });
  });
  EXPECT_EQ(received.load(), 64u);
}

TEST(TimelyExtra, FrontiersAreMonotone) {
  // Property: the frontier an operator observes never regresses.
  std::atomic<bool> regressed{false};
  Execute(Config{4}, [&](Worker& w) {
    auto input = w.Dataflow<uint64_t>([&](Scope<uint64_t>& s) {
      auto [in, stream] = NewInput<uint64_t>(s);
      auto ex = Exchange(stream, [](const uint64_t& x) { return x; });
      OperatorBuilder<uint64_t> b(s, "MonotoneCheck");
      auto* h = b.AddInput(ex, Pact<uint64_t>::Pipeline());
      auto last = std::make_shared<Antichain<uint64_t>>();
      b.Build([h, last, &regressed](OpCtx<uint64_t>&) {
        h->ForEach([](const uint64_t&, std::vector<uint64_t>&) {});
        const auto& f = h->frontier();
        // Monotone advance: every element of the new frontier must be in
        // advance of the previous frontier.
        if (!last->empty()) {
          for (const auto& n : f.elements()) {
            if (!last->LessEqual(n)) regressed = true;
          }
        }
        *last = f;
      });
      return in;
    });
    for (uint64_t e = 0; e < 50; ++e) {
      input->Send(e * 4 + w.index());
      input->AdvanceTo(e + 1);
      w.Step();
    }
    input->Close();
  });
  EXPECT_FALSE(regressed.load());
}

TEST(TimelyExtra, AdvanceToSameEpochIsNoOp) {
  Execute(Config{1}, [&](Worker& w) {
    auto input = w.Dataflow<uint64_t>([&](Scope<uint64_t>& s) {
      auto [in, stream] = NewInput<uint64_t>(s);
      Sink(stream, [](const uint64_t&, std::vector<uint64_t>&) {});
      return in;
    });
    input->AdvanceTo(5);
    input->AdvanceTo(5);  // no-op
    EXPECT_EQ(input->epoch(), 5u);
    input->Close();
  });
}

TEST(TimelyExtra, SendOnClosedInputAborts) {
  EXPECT_DEATH(
      {
        Execute(Config{1}, [&](Worker& w) {
          auto input = w.Dataflow<uint64_t>([&](Scope<uint64_t>& s) {
            auto [in, stream] = NewInput<uint64_t>(s);
            Sink(stream, [](const uint64_t&, std::vector<uint64_t>&) {});
            return in;
          });
          input->Close();
          input->Send(1);
        });
      },
      "closed input");
}

TEST(TimelyExtra, BackwardsAdvanceAborts) {
  EXPECT_DEATH(
      {
        Execute(Config{1}, [&](Worker& w) {
          auto input = w.Dataflow<uint64_t>([&](Scope<uint64_t>& s) {
            auto [in, stream] = NewInput<uint64_t>(s);
            Sink(stream, [](const uint64_t&, std::vector<uint64_t>&) {});
            return in;
          });
          input->AdvanceTo(10);
          input->AdvanceTo(4);
        });
      },
      "monotone");
}

TEST(TimelyExtra, DeepPipelineAcrossWorkers) {
  // A ten-stage pipeline alternating maps and exchanges.
  std::atomic<uint64_t> sum{0};
  constexpr uint64_t kRecords = 1000;
  Execute(Config{4}, [&](Worker& w) {
    auto input = w.Dataflow<uint64_t>([&](Scope<uint64_t>& s) {
      auto [in, stream] = NewInput<uint64_t>(s);
      Stream<uint64_t, uint64_t> cur = stream;
      for (int stage = 0; stage < 5; ++stage) {
        cur = Map(cur, [](uint64_t x) { return x + 1; });
        cur = Exchange(cur, [stage](const uint64_t& x) {
          return HashMix64(x + stage);
        });
      }
      Sink(cur, [&](const uint64_t&, std::vector<uint64_t>& d) {
        for (auto x : d) sum += x;
      });
      return in;
    });
    for (uint64_t i = w.index(); i < kRecords; i += w.peers()) {
      input->Send(i);
    }
    input->Close();
  });
  // Each record gains +5 over the pipeline.
  EXPECT_EQ(sum.load(), kRecords * (kRecords - 1) / 2 + 5 * kRecords);
}

TEST(TimelyExtra, ProbeSemanticsOnEmptyFrontier) {
  Execute(Config{2}, [&](Worker& w) {
    auto handles = w.Dataflow<uint64_t>([&](Scope<uint64_t>& s) {
      auto [in, stream] = NewInput<uint64_t>(s);
      return std::make_pair(in, Probe(stream));
    });
    auto& [input, probe] = handles;
    EXPECT_TRUE(probe.LessEqual(0));
    EXPECT_FALSE(probe.LessThan(0));
    EXPECT_TRUE(probe.LessThan(100));
    input->Close();
    w.StepUntil([&] { return probe.Done(); });
    // Empty frontier: nothing may still arrive.
    EXPECT_FALSE(probe.LessEqual(0));
    EXPECT_FALSE(probe.LessThan(~uint64_t{0}));
  });
}

TEST(TimelyExtra, PerSenderFifoThroughExchange) {
  // Records from one sender to one receiver preserve order within a time.
  const uint32_t workers = 4;
  std::mutex mu;
  std::map<uint64_t, std::vector<uint64_t>> per_sender;  // sender -> seq
  Execute(Config{workers}, [&](Worker& w) {
    auto input = w.Dataflow<uint64_t>([&](Scope<uint64_t>& s) {
      auto [in, stream] = NewInput<std::pair<uint64_t, uint64_t>>(s);
      // All records to worker 0.
      OperatorBuilder<uint64_t> b(s, "FifoSink");
      auto* h = b.AddInput(
          stream, Pact<std::pair<uint64_t, uint64_t>>::Route(
                      [](const auto&) { return 0u; }));
      b.Build([h, &mu, &per_sender](OpCtx<uint64_t>&) {
        h->ForEach([&](const uint64_t&, auto& d) {
          std::lock_guard<std::mutex> lock(mu);
          for (auto& [sender, seq] : d) per_sender[sender].push_back(seq);
        });
      });
      return in;
    });
    for (uint64_t seq = 0; seq < 2000; ++seq) {
      input->Send({w.index(), seq});
    }
    input->Close();
  });
  ASSERT_EQ(per_sender.size(), workers);
  for (auto& [sender, seqs] : per_sender) {
    ASSERT_EQ(seqs.size(), 2000u);
    for (uint64_t i = 0; i < seqs.size(); ++i) {
      ASSERT_EQ(seqs[i], i) << "sender " << sender;
    }
  }
}

TEST(TimelyExtra, NotificationOrderAcrossManyEpochsUnderLoad) {
  // Per-worker delivery order of notifications is by timestamp even when
  // many epochs are in flight simultaneously.
  const uint32_t workers = 2;
  std::mutex mu;
  std::map<uint32_t, std::vector<uint64_t>> delivered;
  Execute(Config{workers}, [&](Worker& w) {
    auto input = w.Dataflow<uint64_t>([&](Scope<uint64_t>& s) {
      auto [in, stream] = NewInput<uint64_t>(s);
      OperatorBuilder<uint64_t> b(s, "ManyEpochs");
      auto* h = b.AddInput(stream, Pact<uint64_t>::Exchange(
                                       [](const uint64_t& x) { return x; }));
      auto notif = std::make_shared<FrontierNotificator<uint64_t>>();
      uint32_t me = s.worker();
      b.Build([h, notif, me, &mu, &delivered](OpCtx<uint64_t>& ctx) {
        h->ForEach([&](const uint64_t& t, std::vector<uint64_t>&) {
          notif->NotifyAt(ctx, t);
        });
        notif->ForEachReady(ctx, {&h->frontier()}, [&](const uint64_t& t) {
          std::lock_guard<std::mutex> lock(mu);
          delivered[me].push_back(t);
        });
      });
      return in;
    });
    // Send 100 epochs without stepping in between (all in flight at once).
    for (uint64_t e = 0; e < 100; ++e) {
      input->Send(w.index());
      input->Send(1 - w.index());
      input->AdvanceTo(e + 1);
    }
    input->Close();
  });
  for (auto& [worker, times] : delivered) {
    ASSERT_EQ(times.size(), 100u);
    for (size_t i = 1; i < times.size(); ++i) {
      EXPECT_LT(times[i - 1], times[i]) << "worker " << worker;
    }
  }
}

}  // namespace
}  // namespace timely
