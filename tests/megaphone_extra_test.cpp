// Additional Megaphone tests: coordinated multi-operator migration,
// migration stress (ping-pong), controller pacing (drain gap), bin
// container accounting, and misuse checks.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.hpp"
#include "megaphone/megaphone.hpp"
#include "timely/timely.hpp"

namespace megaphone {
namespace {

using timely::Execute;
using timely::NewInput;
using timely::Scope;
using timely::Sink;
using timely::Worker;
using BinState = std::unordered_map<uint64_t, uint64_t>;

TEST(MegaphoneExtra, NonPowerOfTwoBinsRejected) {
  EXPECT_DEATH(
      {
        Execute(timely::Config{1}, [&](Worker& w) {
          w.Dataflow<uint64_t>([&](Scope<uint64_t>& s) {
            auto [ctrl_in, ctrl] = NewInput<ControlInst>(s);
            auto [data_in, data] = NewInput<uint64_t>(s);
            Config cfg;
            cfg.num_bins = 3;
            auto out = Unary<BinState, uint64_t>(
                ctrl, data, [](const uint64_t& k) { return k; },
                [](const uint64_t&, BinState&, std::vector<uint64_t>&, auto,
                   auto&) {},
                cfg);
            (void)out;
            ctrl_in->Close();
            data_in->Close();
          });
        });
      },
      "power of two");
}

// Two chained Megaphone operators sharing one control stream migrate in a
// coordinated manner (paper §3.4: "re-using the same configuration update
// stream").
TEST(MegaphoneExtra, CoordinatedMigrationOfChainedOperators) {
  const uint32_t workers = 4, bins = 16;
  const uint64_t epochs = 30, recs = 32, keys = 64;
  std::mutex mu;
  std::map<uint64_t, uint64_t> sums;  // parity -> max running sum

  Execute(timely::Config{workers}, [&](Worker& w) {
    auto handles = w.Dataflow<uint64_t>([&](Scope<uint64_t>& s) {
      auto [ctrl_in, ctrl] = NewInput<ControlInst>(s);
      auto [data_in, data] = NewInput<uint64_t>(s);
      Config cfg;
      cfg.num_bins = bins;
      // Stage 1: per-key counts, emitting (key, count).
      auto counts = Unary<BinState, std::pair<uint64_t, uint64_t>>(
          ctrl, data, [](const uint64_t& k) { return HashMix64(k); },
          [](const uint64_t&, BinState& st, std::vector<uint64_t>& rs,
             auto emit, auto&) {
            for (uint64_t k : rs) emit(std::make_pair(k, ++st[k]));
          },
          cfg);
      // Stage 2: re-keyed by key parity, running sum of counts. Shares the
      // SAME control stream, so both stages migrate together.
      auto sums_out = Unary<BinState, std::pair<uint64_t, uint64_t>>(
          ctrl, counts.stream,
          [](const std::pair<uint64_t, uint64_t>& kc) {
            return HashMix64(kc.first % 2);
          },
          [](const uint64_t&, BinState& st,
             std::vector<std::pair<uint64_t, uint64_t>>& rs, auto emit,
             auto&) {
            for (auto& [k, c] : rs) {
              st[k % 2] += 1;
              emit(std::make_pair(k % 2, st[k % 2]));
            }
          },
          cfg);
      Sink(sums_out.stream,
           [&](const uint64_t&, std::vector<std::pair<uint64_t, uint64_t>>& d) {
             std::lock_guard<std::mutex> lock(mu);
             for (auto& [p, v] : d) sums[p] = std::max(sums[p], v);
           });
      return std::make_tuple(ctrl_in, data_in, sums_out.probe);
    });
    auto& [ctrl_in, data_in, probe] = handles;

    typename MigrationController<uint64_t>::Options opts;
    opts.strategy = MigrationStrategy::kBatched;
    opts.batch_size = 4;
    MigrationController<uint64_t> controller(ctrl_in, probe, w.index(), opts);

    for (uint64_t e = 0; e < epochs; ++e) {
      if (e == 8) {
        controller.MigrateTo(MakeInitialAssignment(bins, workers),
                             MakeImbalancedAssignment(bins, workers));
      }
      controller.Advance(e, e + 1);
      for (uint64_t i = 0; i < recs; ++i) {
        if (i % workers == w.index()) {
          data_in->Send(HashMix64(e * recs + i) % keys);
        }
      }
      data_in->AdvanceTo(e + 1);
      uint64_t lag = e >= 2 ? e - 2 : 0;
      w.StepUntil([&] { return !probe.LessThan(lag); });
    }
    controller.Close(epochs);
    data_in->Close();
  });

  // Every record contributes exactly one stage-2 increment: final sums
  // partition the total record count by key parity.
  EXPECT_EQ(sums[0] + sums[1], epochs * recs);
}

// Ten back-and-forth migrations; outputs still match the reference.
TEST(MegaphoneExtra, PingPongMigrationStress) {
  const uint32_t workers = 4, bins = 32;
  const uint64_t epochs = 60, recs = 32, keys = 128;
  std::mutex mu;
  std::vector<std::array<uint64_t, 3>> rows;

  Execute(timely::Config{workers}, [&](Worker& w) {
    auto handles = w.Dataflow<uint64_t>([&](Scope<uint64_t>& s) {
      auto [ctrl_in, ctrl] = NewInput<ControlInst>(s);
      auto [data_in, data] = NewInput<uint64_t>(s);
      Config cfg;
      cfg.num_bins = bins;
      auto out = Unary<BinState, std::pair<uint64_t, uint64_t>>(
          ctrl, data, [](const uint64_t& k) { return HashMix64(k); },
          [](const uint64_t&, BinState& st, std::vector<uint64_t>& rs,
             auto emit, auto&) {
            for (uint64_t k : rs) emit(std::make_pair(k, ++st[k]));
          },
          cfg);
      Sink(out.stream,
           [&](const uint64_t& t,
               std::vector<std::pair<uint64_t, uint64_t>>& d) {
             std::lock_guard<std::mutex> lock(mu);
             for (auto& [k, c] : d) rows.push_back({t, k, c});
           });
      return std::make_tuple(ctrl_in, data_in, out.probe);
    });
    auto& [ctrl_in, data_in, probe] = handles;

    typename MigrationController<uint64_t>::Options opts;
    opts.strategy = MigrationStrategy::kAllAtOnce;
    MigrationController<uint64_t> controller(ctrl_in, probe, w.index(), opts);
    auto a = MakeInitialAssignment(bins, workers);
    auto b = MakeImbalancedAssignment(bins, workers);

    for (uint64_t e = 0; e < epochs; ++e) {
      if (e >= 5 && e % 5 == 0) {
        controller.MigrateTo(e % 10 == 0 ? b : a, e % 10 == 0 ? a : b);
      }
      controller.Advance(e, e + 1);
      for (uint64_t i = 0; i < recs; ++i) {
        if (i % workers == w.index()) {
          data_in->Send(HashMix64(7 ^ (e * 1000 + i)) % keys);
        }
      }
      data_in->AdvanceTo(e + 1);
      uint64_t lag = e >= 2 ? e - 2 : 0;
      w.StepUntil([&] { return !probe.LessThan(lag); });
    }
    controller.Close(epochs);
    data_in->Close();
  });

  // Reference.
  std::map<uint64_t, uint64_t> counts;
  std::vector<std::array<uint64_t, 3>> expected;
  for (uint64_t e = 0; e < epochs; ++e) {
    for (uint64_t i = 0; i < recs; ++i) {
      uint64_t k = HashMix64(7 ^ (e * 1000 + i)) % keys;
      expected.push_back({e, k, ++counts[k]});
    }
  }
  std::sort(rows.begin(), rows.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(rows, expected);
}

// Configuration updates that do not change a bin's owner must not ship
// state or disturb outputs.
TEST(MegaphoneExtra, SelfMovesAreNoOps) {
  const uint32_t workers = 2, bins = 8;
  std::atomic<uint64_t> outputs{0};
  Execute(timely::Config{workers}, [&](Worker& w) {
    auto handles = w.Dataflow<uint64_t>([&](Scope<uint64_t>& s) {
      auto [ctrl_in, ctrl] = NewInput<ControlInst>(s);
      auto [data_in, data] = NewInput<uint64_t>(s);
      Config cfg;
      cfg.num_bins = bins;
      auto out = Unary<BinState, uint64_t>(
          ctrl, data, [](const uint64_t& k) { return HashMix64(k); },
          [](const uint64_t&, BinState& st, std::vector<uint64_t>& rs,
             auto emit, auto&) {
            for (uint64_t k : rs) emit(++st[k]);
          },
          cfg);
      Sink(out.stream, [&](const uint64_t&, std::vector<uint64_t>& d) {
        outputs += d.size();
      });
      return std::make_tuple(ctrl_in, data_in, out.probe);
    });
    auto& [ctrl_in, data_in, probe] = handles;
    for (uint64_t e = 0; e < 10; ++e) {
      if (e == 3 && w.index() == 0) {
        // Reassign every bin to its current owner.
        for (BinId b = 0; b < bins; ++b) {
          ctrl_in->Send(ControlInst{b, InitialOwner(b, workers)});
        }
      }
      ctrl_in->AdvanceTo(e + 1);
      for (uint64_t i = w.index(); i < 16; i += workers) {
        data_in->Send(i);
      }
      data_in->AdvanceTo(e + 1);
      w.StepUntil([&] { return !probe.LessThan(e >= 1 ? e - 1 : 0); });
    }
    ctrl_in->Close();
    data_in->Close();
  });
  EXPECT_EQ(outputs.load(), 10u * 16u);
}

// The drain gap (§4.4) spaces fluid batches at least `gap` epochs apart.
TEST(MegaphoneExtra, GapSlowsBatchIssueRate) {
  const uint32_t workers = 2, bins = 8;  // imbalanced diff: 2 moves
  std::mutex mu;
  std::vector<uint64_t> completion_epochs;

  Execute(timely::Config{workers}, [&](Worker& w) {
    auto handles = w.Dataflow<uint64_t>([&](Scope<uint64_t>& s) {
      auto [ctrl_in, ctrl] = NewInput<ControlInst>(s);
      auto [data_in, data] = NewInput<uint64_t>(s);
      Config cfg;
      cfg.num_bins = bins;
      auto out = Unary<BinState, uint64_t>(
          ctrl, data, [](const uint64_t& k) { return HashMix64(k); },
          [](const uint64_t&, BinState& st, std::vector<uint64_t>& rs,
             auto emit, auto&) {
            for (uint64_t k : rs) emit(++st[k]);
          },
          cfg);
      Sink(out.stream, [](const uint64_t&, std::vector<uint64_t>&) {});
      return std::make_tuple(ctrl_in, data_in, out.probe);
    });
    auto& [ctrl_in, data_in, probe] = handles;

    typename MigrationController<uint64_t>::Options opts;
    opts.strategy = MigrationStrategy::kFluid;
    opts.gap = 4;
    MigrationController<uint64_t> controller(ctrl_in, probe, w.index(), opts);

    size_t seen = 0;
    for (uint64_t e = 0; e < 80; ++e) {
      if (e == 5) {
        controller.MigrateTo(MakeInitialAssignment(bins, workers),
                             MakeImbalancedAssignment(bins, workers));
      }
      controller.Advance(e, e + 1);
      if (w.index() == 0 && controller.completed_batches() > seen) {
        std::lock_guard<std::mutex> lock(mu);
        completion_epochs.push_back(e);
        seen = controller.completed_batches();
      }
      for (uint64_t i = w.index(); i < 8; i += workers) data_in->Send(i);
      data_in->AdvanceTo(e + 1);
      uint64_t lag = e >= 2 ? e - 2 : 0;
      w.StepUntil([&] { return !probe.LessThan(lag); });
    }
    controller.Close(80);
    data_in->Close();
  });

  // bins=8, workers=2 -> imbalanced moves 2 bins; fluid = 2 batches.
  ASSERT_EQ(completion_epochs.size(), 2u);
  // The second batch may not be issued until gap epochs after the first
  // completed, so completions are at least `gap` epochs apart.
  EXPECT_GE(completion_epochs[1] - completion_epochs[0], 4u);
}

TEST(MegaphoneExtra, BinsSharedAccounting) {
  using BinT = Bin<uint64_t, uint64_t, uint64_t>;
  BinsShared<BinT, uint64_t> shared(4);
  EXPECT_EQ(shared.ResidentBins(), 0u);
  shared.bins[1] = std::make_unique<BinT>();
  shared.bins[1]->user_state() = 99;
  shared.bins[1]->pending[7].push_back(42);
  shared.bins[3] = std::make_unique<BinT>();
  EXPECT_EQ(shared.ResidentBins(), 2u);

  EXPECT_TRUE(shared.RegisterPending(7, 1));   // new time
  EXPECT_FALSE(shared.RegisterPending(7, 3));  // known time, new bin

  // Extracting a bin unregisters its pending times and clears the slot.
  // chunk_bytes == 0: the monolithic path, exactly one frame.
  auto frames = detail::ExtractBinChunks(shared, 1, /*target=*/2,
                                         /*chunk_bytes=*/0);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].target, 2u);
  EXPECT_EQ(frames[0].bin, 1u);
  EXPECT_EQ(frames[0].seq, 0u);
  EXPECT_NE(frames[0].last, 0);
  EXPECT_EQ(shared.ResidentBins(), 1u);
  EXPECT_FALSE(shared.bins[1]);
  EXPECT_EQ(shared.pending_bins[7].count(1), 0u);
  EXPECT_EQ(shared.pending_bins[7].count(3), 1u);

  // The shipped bin round-trips with state and pending records.
  BinT back;
  Reader r(frames[0].bytes);
  back.AbsorbChunk(r, /*last=*/true);
  EXPECT_EQ(back.user_state(), 99u);
  ASSERT_EQ(back.pending[7].size(), 1u);
  EXPECT_EQ(back.pending[7][0], 42u);

  // Extracting a non-resident bin yields nothing to ship.
  EXPECT_TRUE(detail::ExtractBinChunks(shared, 0, 2, 0).empty());
}

TEST(MegaphoneExtra, ChunkedExtractionRebuildsTheSameBin) {
  using BinT = Bin<std::unordered_map<uint64_t, uint64_t>, uint64_t, uint64_t>;
  BinsShared<BinT, uint64_t> shared(2);
  shared.bins[0] = std::make_unique<BinT>();
  auto& st = shared.bins[0]->user_state();
  for (uint64_t k = 0; k < 500; ++k) st[k] = k * 3;
  shared.bins[0]->pending[11] = {1, 2, 3};
  shared.bins[0]->pending[12] = {4};
  shared.RegisterPending(11, 0);
  shared.RegisterPending(12, 0);

  auto frames = detail::ExtractBinChunks(shared, 0, /*target=*/1,
                                         /*chunk_bytes=*/256);
  ASSERT_GT(frames.size(), 2u) << "500 entries at 256-byte chunks";
  for (size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(frames[i].seq, i);
    EXPECT_EQ(frames[i].last != 0, i + 1 == frames.size());
    if (i + 1 < frames.size()) {
      EXPECT_LE(frames[i].bytes.size(),
                256 + 64u) << "chunk far above the byte bound";
    }
  }

  BinT back;
  for (auto& f : frames) {
    Reader r(f.bytes);
    back.AbsorbChunk(r, f.last != 0);
  }
  EXPECT_EQ(back.user_state().size(), 500u);
  EXPECT_EQ(back.user_state()[123], 369u);
  EXPECT_EQ(back.pending, (std::map<uint64_t, std::vector<uint64_t>>{
                              {11, {1, 2, 3}}, {12, {4}}}));
}

TEST(MegaphoneExtra, PlanBatchesEmptyDiff) {
  auto a = MakeInitialAssignment(8, 4);
  for (auto strat :
       {MigrationStrategy::kAllAtOnce, MigrationStrategy::kFluid,
        MigrationStrategy::kBatched, MigrationStrategy::kOptimized}) {
    auto batches = PlanBatches(strat, {}, a, 4);
    EXPECT_TRUE(batches.empty()) << StrategyName(strat);
  }
}

// A self-perpetuating post-dated chain (each firing schedules the next)
// survives repeated migrations: exactly one firing per period.
TEST(MegaphoneExtra, PeriodicTimerChainSurvivesMigrations) {
  const uint32_t workers = 4, bins = 8;
  const uint64_t kPeriod = 3, kKeys = 8, epochs = 40;
  using Rec = std::pair<uint64_t, uint64_t>;  // (key, is_timer)
  std::mutex mu;
  std::map<uint64_t, std::vector<uint64_t>> firings;  // key -> times

  Execute(timely::Config{workers}, [&](Worker& w) {
    auto handles = w.Dataflow<uint64_t>([&](Scope<uint64_t>& s) {
      auto [ctrl_in, ctrl] = NewInput<ControlInst>(s);
      auto [data_in, data] = NewInput<Rec>(s);
      Config cfg;
      cfg.num_bins = bins;
      auto out = Unary<BinState, Rec>(
          ctrl, data, [](const Rec& r) { return HashMix64(r.first); },
          [kPeriod, epochs](const uint64_t& t, BinState&,
                            std::vector<Rec>& rs, auto emit, auto& sched) {
            for (auto& [k, timer] : rs) {
              if (timer) emit(Rec{k, t});
              if (t + kPeriod < epochs) {
                sched.ScheduleAt(t + kPeriod, Rec{k, 1});
              }
            }
          },
          cfg);
      Sink(out.stream, [&](const uint64_t&, std::vector<Rec>& d) {
        std::lock_guard<std::mutex> lock(mu);
        for (auto& [k, t] : d) firings[k].push_back(t);
      });
      return std::make_tuple(ctrl_in, data_in, out.probe);
    });
    auto& [ctrl_in, data_in, probe] = handles;

    typename MigrationController<uint64_t>::Options opts;
    opts.strategy = MigrationStrategy::kFluid;
    MigrationController<uint64_t> controller(ctrl_in, probe, w.index(), opts);
    auto a = MakeInitialAssignment(bins, workers);

    for (uint64_t e = 0; e < epochs; ++e) {
      if (e == 7 || e == 17 || e == 27) {
        auto b = a;
        for (auto& o : b) o = (o + 1) % workers;
        controller.MigrateTo(a, b);
        a = b;
      }
      controller.Advance(e, e + 1);
      if (e == 0) {
        for (uint64_t k = w.index(); k < kKeys; k += workers) {
          data_in->Send(Rec{k, 0});  // seed the chain
        }
      }
      data_in->AdvanceTo(e + 1);
      uint64_t lag = e >= 2 ? e - 2 : 0;
      w.StepUntil([&] { return !probe.LessThan(lag); });
    }
    controller.Close(epochs);
    data_in->Close();
  });

  for (uint64_t k = 0; k < kKeys; ++k) {
    auto& times = firings[k];
    std::sort(times.begin(), times.end());
    // Seeded at 0, fires at 3, 6, 9, ..., < epochs.
    ASSERT_EQ(times.size(), (epochs - 1) / kPeriod) << "key " << k;
    for (size_t i = 0; i < times.size(); ++i) {
      EXPECT_EQ(times[i], (i + 1) * kPeriod) << "key " << k;
    }
  }
}

}  // namespace
}  // namespace megaphone
