// Checkpoint/restore recovery: frontier-aligned per-bin checkpoints must
// (a) not perturb a run that never crashes, (b) allow a fresh process set
// to resume from the latest complete checkpoint with a byte-identical
// final digest, and (c) recover a 2x2 distributed run after one process
// is SIGKILLed mid-stream — the survivor reports a clean PeerDownError
// (no hang), and the re-launched run's digest equals the fault-free
// reference exactly.
#include <gtest/gtest.h>

#include <stdlib.h>
#include <unistd.h>

#include <cstdint>
#include <string>

#include "harness/harness.hpp"
#include "harness/launcher.hpp"
#include "state/checkpoint.hpp"

namespace megaphone {
namespace {

// A config whose single batched migration completes quickly, so the
// checkpoint boundaries after it are quiescent (checkpoints are skipped
// while a migration is in flight).
DetCountConfig RecoveryConfig() {
  DetCountConfig cfg;
  cfg.total_workers = 4;
  cfg.num_bins = 32;
  cfg.domain = 1 << 10;
  cfg.records_per_epoch = 2048;
  cfg.epochs = 8;
  cfg.migrate_at_epoch = 2;
  cfg.strategy = MigrationStrategy::kBatched;
  cfg.batch_size = 32;  // whole plan in one batch
  cfg.seed = 42;
  return cfg;
}

std::string MakeCheckpointDir() {
  char tmpl[] = "/tmp/mega_ckpt_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  MEGA_CHECK(dir != nullptr) << "mkdtemp failed";
  return std::string(dir);
}

timely::Config FastFailure(timely::Config tc) {
  tc.heartbeat_ms = 50;
  tc.peer_deadline_ms = 2000;
  return tc;
}

// Checkpointing must be observation-only: the digest of a run with
// checkpoints enabled equals the digest without them, and a restore from
// the final checkpoint replays the tail to the same digest.
TEST(Recovery, SingleProcessCheckpointAndResume) {
  DetCountConfig cfg = RecoveryConfig();
  timely::Config single;
  single.workers = 4;

  DetCountResult plain = RunDeterministicCount(cfg, single);
  ASSERT_TRUE(plain.root);
  ASSERT_FALSE(plain.digest.empty());

  cfg.checkpoint_dir = MakeCheckpointDir();
  cfg.checkpoint_every = 2;
  DetCountResult checked = RunDeterministicCount(cfg, single);
  ASSERT_TRUE(checked.root);
  EXPECT_EQ(checked.digest, plain.digest)
      << "checkpointing perturbed the computation";
  EXPECT_EQ(checked.completed_batches, plain.completed_batches);

  // Boundaries land at epochs 2, 4, 6 (8 is the end and is not written);
  // 2 is skipped only if the migration is still in flight there.
  uint64_t latest = state::LatestCompleteEpoch(cfg.checkpoint_dir, 1);
  EXPECT_EQ(latest, 6u);

  DetCountConfig resume = cfg;
  resume.restore = true;
  DetCountResult resumed = RunDeterministicCount(resume, single);
  ASSERT_TRUE(resumed.root);
  EXPECT_EQ(resumed.start_epoch, latest);
  EXPECT_EQ(resumed.digest, plain.digest)
      << "resumed run diverged from the fault-free run";
}

// Restore on an empty directory degrades to a fresh run.
TEST(Recovery, RestoreWithoutCheckpointStartsFresh) {
  DetCountConfig cfg = RecoveryConfig();
  timely::Config single;
  single.workers = 4;
  DetCountResult ref = RunDeterministicCount(cfg, single);

  cfg.checkpoint_dir = MakeCheckpointDir();
  cfg.restore = true;
  DetCountResult out = RunDeterministicCount(cfg, single);
  ASSERT_TRUE(out.root);
  EXPECT_EQ(out.start_epoch, 0u);
  EXPECT_EQ(out.digest, ref.digest);
}

// The headline drill: 2 processes x 2 workers, process 1 SIGKILLs itself
// at the top of epoch 5 (after the epoch-4 checkpoint is complete). The
// surviving process must abort with PeerDownError instead of hanging in
// the lockstep wait, and a fresh 2x2 launch with restore=true must land
// on the exact digest of a run that never crashed.
TEST(Recovery, KillOneProcessRecoversByteIdentical) {
  DetCountConfig cfg = RecoveryConfig();

  timely::Config single;
  single.workers = 4;
  DetCountResult ref = RunDeterministicCount(cfg, single);
  ASSERT_TRUE(ref.root);
  ASSERT_GT(ref.completed_batches, 0u) << "migration never ran";

  cfg.checkpoint_dir = MakeCheckpointDir();
  cfg.checkpoint_every = 2;

  // --- crash run -----------------------------------------------------
  {
    DetCountConfig crash = cfg;
    crash.die_at_epoch = 5;
    crash.die_process = 1;
    MultiProcess mp = LaunchLoopbackProcesses(2, 2);
    if (!mp.IsRoot()) {
      // The child is the process that dies; it never returns from the
      // raise(SIGKILL) inside the epoch loop. Reaching _exit(0) would
      // mean the kill did not happen — report that as a failure.
      RunDeterministicCount(crash, FastFailure(mp.config));
      ::_exit(9);
    }
    bool aborted = false;
    std::string reason;
    try {
      RunDeterministicCount(crash, FastFailure(mp.config));
    } catch (const timely::PeerDownError& e) {
      aborted = true;
      reason = e.what();
    }
    EXPECT_TRUE(aborted) << "survivor must report the dead peer";
    EXPECT_FALSE(reason.empty());
    EXPECT_NE(WaitForChildren(mp.children), 0)
        << "the child was SIGKILLed; a clean exit means the kill is broken";
  }

  uint64_t latest = state::LatestCompleteEpoch(cfg.checkpoint_dir, 2);
  ASSERT_GE(latest, 4u) << "epoch-4 checkpoint must exist before the crash";
  ASSERT_LT(latest, cfg.epochs);

  // --- recovery run --------------------------------------------------
  DetCountConfig rec = cfg;
  rec.restore = true;
  DetCountResult out = RunForked(2, 2, [&](const timely::Config& tc) {
    return RunDeterministicCount(rec, tc);
  });
  ASSERT_TRUE(out.root);
  EXPECT_EQ(out.start_epoch, latest);
  EXPECT_EQ(out.digest, ref.digest)
      << "post-recovery digest diverged from the fault-free run";
  EXPECT_EQ(out.distinct_keys, ref.distinct_keys);
}

// Segment files must be atomically published: a torn write (simulated by
// a stray .tmp and a truncated file) never counts as a checkpoint, and a
// truncated segment fails with SerdeError, not UB.
TEST(Recovery, TornSegmentsAreRejected) {
  std::string dir = MakeCheckpointDir();

  state::CheckpointSegment seg;
  seg.epoch = 4;
  seg.assignment = {0, 1, 2, 3};
  seg.workers[0].emplace_back(7, std::vector<uint8_t>{1, 2, 3});
  state::WriteSegment(dir, /*process=*/0, seg);
  EXPECT_EQ(state::LatestCompleteEpoch(dir, 1), 4u);

  // A .tmp leftover for a later epoch is not a checkpoint.
  { FILE* f = fopen((dir + "/ckpt_e6_p0.bin.tmp").c_str(), "wb"); fclose(f); }
  EXPECT_EQ(state::LatestCompleteEpoch(dir, 1), 4u);

  // With 2 processes required, one segment is incomplete.
  EXPECT_EQ(state::LatestCompleteEpoch(dir, 2), 0u);

  // Truncating the valid segment makes it unloadable — cleanly.
  std::string path = state::SegmentPath(dir, 4, 0);
  EXPECT_EQ(truncate(path.c_str(), 10), 0);
  EXPECT_THROW(state::LoadSegment(path), SerdeError);
}

}  // namespace
}  // namespace megaphone
