// Edge cases of the MigrationController protocol: a stalled probe must
// never double-issue the in-flight batch, the configured gap must be
// enforced between batches, and Close with batches still queued must
// flush every remaining batch into the control stream.
//
// The probe is simulated: it watches an auxiliary input stream whose
// epoch the test advances by hand, which is exactly what the controller
// sees from the S output frontier in a real dataflow.
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <vector>

#include "megaphone/megaphone.hpp"
#include "timely/timely.hpp"

namespace megaphone {
namespace {

using timely::OpCtx;
using timely::Pact;
using timely::Scope;
using timely::Worker;
using T = uint64_t;

struct Rig {
  timely::Input<ControlInst, T> ctrl;
  timely::Input<uint64_t, T> sim;  // drives the simulated S frontier
  timely::ProbeHandle<T> probe;
  std::shared_ptr<uint64_t> ctrl_records;  // records seen on ctrl stream
};

Rig BuildRig(Scope<T>& s) {
  auto [ctrl_in, ctrl_stream] = timely::NewInput<ControlInst>(s);
  auto [sim_in, sim_stream] = timely::NewInput<uint64_t>(s);
  auto probe = timely::Probe(sim_stream);
  auto seen = std::make_shared<uint64_t>(0);
  timely::OperatorBuilder<T> b(s, "CtrlSink");
  auto* in = b.AddInput(ctrl_stream, Pact<ControlInst>::Pipeline());
  b.Build([in, seen](OpCtx<T>&) {
    in->ForEach([&](const T&, std::vector<ControlInst>& us) {
      *seen += us.size();
    });
  });
  return Rig{ctrl_in, sim_in, probe, seen};
}

std::deque<std::vector<ControlInst>> FluidBatches(size_t n) {
  std::deque<std::vector<ControlInst>> batches;
  for (size_t i = 0; i < n; ++i) {
    batches.push_back({ControlInst{static_cast<BinId>(i), 0}});
  }
  return batches;
}

TEST(ControllerEdge, StalledProbeNeverDoubleIssues) {
  std::shared_ptr<uint64_t> seen;  // read after Execute fully drains
  timely::Execute(timely::Config{1}, [&](Worker& w) {
    auto rig = w.Dataflow<T>(BuildRig);
    MigrationController<T> controller(rig.ctrl, rig.probe, w.index(), {});
    controller.Migrate(FluidBatches(2));

    controller.Advance(0, 1);  // issues batch 0 at time 0
    EXPECT_EQ(controller.queued_batches(), 1u);
    ASSERT_TRUE(controller.in_flight_time().has_value());
    EXPECT_EQ(*controller.in_flight_time(), 0u);

    // The probe never moves: many more rounds must not issue anything.
    for (uint64_t e = 1; e <= 20; ++e) {
      controller.Advance(e, e + 1);
      w.Step();
      EXPECT_EQ(controller.queued_batches(), 1u);
      EXPECT_EQ(controller.completed_batches(), 0u);
      ASSERT_TRUE(controller.in_flight_time().has_value());
      EXPECT_EQ(*controller.in_flight_time(), 0u);  // the original issue
    }

    // Unstall: the batch completes, and the next one is issued.
    rig.sim->AdvanceTo(1);
    controller.Advance(21, 22);
    EXPECT_EQ(controller.completed_batches(), 1u);
    EXPECT_EQ(controller.queued_batches(), 0u);
    ASSERT_TRUE(controller.in_flight_time().has_value());
    EXPECT_EQ(*controller.in_flight_time(), 21u);

    rig.sim->AdvanceTo(22);
    controller.Advance(22, 23);
    EXPECT_EQ(controller.completed_batches(), 2u);
    EXPECT_FALSE(controller.Migrating());

    controller.Close(23);
    rig.sim->Close();
    seen = rig.ctrl_records;
  });
  EXPECT_EQ(*seen, 2u);  // each batch's single record, sent once
}

TEST(ControllerEdge, GapIsEnforcedBetweenBatches) {
  timely::Execute(timely::Config{1}, [&](Worker& w) {
    typename MigrationController<T>::Options opts;
    opts.gap = 3;
    auto rig = w.Dataflow<T>(BuildRig);
    MigrationController<T> controller(rig.ctrl, rig.probe, w.index(), opts);
    controller.Migrate(FluidBatches(2));

    controller.Advance(0, 1);  // issues batch 0
    EXPECT_EQ(controller.queued_batches(), 1u);

    rig.sim->AdvanceTo(1);     // batch 0 completes...
    controller.Advance(1, 2);  // ...detected here; not_before_ = 1 + 3
    EXPECT_EQ(controller.completed_batches(), 1u);
    EXPECT_EQ(controller.queued_batches(), 1u) << "issued inside the gap";
    EXPECT_FALSE(controller.in_flight_time().has_value());

    for (uint64_t e = 2; e < 4; ++e) {  // still inside the gap
      controller.Advance(e, e + 1);
      w.Step();
      EXPECT_EQ(controller.queued_batches(), 1u) << "issued at epoch " << e;
      EXPECT_FALSE(controller.in_flight_time().has_value());
    }

    controller.Advance(4, 5);  // gap over: 4 >= 1 + 3
    EXPECT_EQ(controller.queued_batches(), 0u);
    ASSERT_TRUE(controller.in_flight_time().has_value());
    EXPECT_EQ(*controller.in_flight_time(), 4u);

    rig.sim->AdvanceTo(5);
    controller.Advance(5, 6);
    EXPECT_EQ(controller.completed_batches(), 2u);
    controller.Close(6);
    rig.sim->Close();
  });
}

TEST(ControllerEdge, HugeGapSaturatesInsteadOfWrapping) {
  // A gap near the epoch type's max must pin not_before_ at max — the old
  // `now + gap` wrapped around, making the next batch due immediately.
  std::shared_ptr<uint64_t> seen;  // read after Execute fully drains
  timely::Execute(timely::Config{1}, [&](Worker& w) {
    typename MigrationController<T>::Options opts;
    opts.gap = std::numeric_limits<T>::max() - 1;
    auto rig = w.Dataflow<T>(BuildRig);
    MigrationController<T> controller(rig.ctrl, rig.probe, w.index(), opts);
    controller.Migrate(FluidBatches(2));

    controller.Advance(0, 1);  // issues batch 0
    EXPECT_EQ(controller.queued_batches(), 1u);

    rig.sim->AdvanceTo(3);     // batch 0 completes...
    controller.Advance(3, 4);  // ...3 + (max-1) must saturate, not wrap
    EXPECT_EQ(controller.completed_batches(), 1u);
    EXPECT_EQ(controller.queued_batches(), 1u);
    EXPECT_FALSE(controller.in_flight_time().has_value());

    for (uint64_t e = 4; e <= 24; ++e) {  // the gap never elapses
      controller.Advance(e, e + 1);
      w.Step();
      EXPECT_EQ(controller.queued_batches(), 1u)
          << "gap wrapped: batch issued at epoch " << e;
      EXPECT_FALSE(controller.in_flight_time().has_value());
    }

    controller.Close(25);  // the held-back batch still flushes on Close
    EXPECT_EQ(controller.queued_batches(), 0u);
    rig.sim->Close();
    seen = rig.ctrl_records;
  });
  EXPECT_EQ(*seen, 2u);
}

TEST(ControllerEdge, CloseFlushesQueuedBatches) {
  std::shared_ptr<uint64_t> seen;  // read after Execute fully drains
  timely::Execute(timely::Config{1}, [&](Worker& w) {
    auto rig = w.Dataflow<T>(BuildRig);
    MigrationController<T> controller(rig.ctrl, rig.probe, w.index(), {});
    controller.Migrate(FluidBatches(3));

    controller.Advance(0, 1);  // issues batch 0; probe stalls forever
    EXPECT_EQ(controller.queued_batches(), 2u);

    // Close with two batches still queued: they are all flushed into the
    // control stream at the final epoch.
    controller.Close(1);
    EXPECT_EQ(controller.queued_batches(), 0u);

    rig.sim->Close();
    seen = rig.ctrl_records;
  });
  // All three batches' records reached the control stream exactly once.
  EXPECT_EQ(*seen, 3u);
}

}  // namespace
}  // namespace megaphone
