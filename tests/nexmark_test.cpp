// NEXMark tests: generator properties, and for every query Q1-Q8 the
// equivalence of three executions on identical input:
//   (a) the native timely implementation,
//   (b) the Megaphone implementation without migration,
//   (c) the Megaphone implementation with two live migrations mid-stream.
// (b) == (a) validates the operator interface; (c) == (a) validates that
// migration preserves Property 1 (correctness) on realistic queries.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "nexmark/nexmark.hpp"
#include "timely/timely.hpp"

namespace nexmark {
namespace {

using megaphone::Assignment;
using megaphone::ControlInst;
using megaphone::MakeImbalancedAssignment;
using megaphone::MakeInitialAssignment;
using megaphone::MigrationController;
using megaphone::MigrationStrategy;
using T = uint64_t;

// ---------------------------------------------------------------- generator

TEST(Generator, DeterministicByIndex) {
  Generator g1, g2;
  for (uint64_t i = 0; i < 1000; ++i) {
    Event a = g1.At(i), b = g2.At(i);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.time_ms(), b.time_ms());
    if (a.kind == Event::Kind::kBid) {
      EXPECT_EQ(a.bid, b.bid);
    }
  }
}

TEST(Generator, ProportionsAre1To3To46) {
  Generator g;
  uint64_t persons = 0, auctions = 0, bids = 0;
  for (uint64_t i = 0; i < 5000; ++i) {
    switch (g.At(i).kind) {
      case Event::Kind::kPerson: persons++; break;
      case Event::Kind::kAuction: auctions++; break;
      case Event::Kind::kBid: bids++; break;
    }
  }
  EXPECT_EQ(persons, 100u);
  EXPECT_EQ(auctions, 300u);
  EXPECT_EQ(bids, 4600u);
}

TEST(Generator, CountsBeforeMatchEnumeration) {
  Generator g;
  uint64_t persons = 0, auctions = 0;
  for (uint64_t i = 0; i < 2000; ++i) {
    EXPECT_EQ(Generator::PersonsBefore(i), persons) << i;
    EXPECT_EQ(Generator::AuctionsBefore(i), auctions) << i;
    Event e = g.At(i);
    if (e.kind == Event::Kind::kPerson) {
      EXPECT_EQ(e.person.id, persons);
      persons++;
    } else if (e.kind == Event::Kind::kAuction) {
      EXPECT_EQ(e.auction.id, auctions);
      auctions++;
    }
  }
}

TEST(Generator, TimesAreMonotone) {
  Generator g;
  uint64_t prev = 0;
  for (uint64_t i = 0; i < 10000; ++i) {
    uint64_t t = g.TimeOf(i);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(Generator, ReferencesExistOnArrival) {
  Generator g;
  for (uint64_t i = 0; i < 5000; ++i) {
    Event e = g.At(i);
    if (e.kind == Event::Kind::kBid) {
      EXPECT_LT(e.bid.auction, Generator::AuctionsBefore(i));
      EXPECT_LT(e.bid.bidder, Generator::PersonsBefore(i));
    } else if (e.kind == Event::Kind::kAuction) {
      EXPECT_LT(e.auction.seller, Generator::PersonsBefore(i));
      EXPECT_EQ(e.auction.expires,
                e.auction.date_time + g.config().auction_duration_ms);
    }
  }
}

TEST(Generator, SerdeRoundTripsEventPayloads) {
  Generator g;
  for (uint64_t i = 0; i < 200; ++i) {
    Event e = g.At(i);
    if (e.kind == Event::Kind::kPerson) {
      auto bytes = megaphone::EncodeToBytes(e.person);
      EXPECT_EQ(megaphone::DecodeFromBytes<Person>(bytes), e.person);
    } else if (e.kind == Event::Kind::kAuction) {
      auto bytes = megaphone::EncodeToBytes(e.auction);
      EXPECT_EQ(megaphone::DecodeFromBytes<Auction>(bytes), e.auction);
    }
  }
}

TEST(QueryState, SerdeRoundTrips) {
  Q5PerAuction q5;
  q5.slots = {{3, 7}, {9, 1}};
  q5.next_flush = 800;
  auto b1 = megaphone::EncodeToBytes(q5);
  auto q5b = megaphone::DecodeFromBytes<Q5PerAuction>(b1);
  EXPECT_EQ(q5b.slots, q5.slots);
  EXPECT_EQ(q5b.next_flush, q5.next_flush);

  Q8PerPerson q8;
  q8.window = 4;
  q8.name = "person-99";
  q8.emitted = 4;
  auto b2 = megaphone::EncodeToBytes(q8);
  auto q8b = megaphone::DecodeFromBytes<Q8PerPerson>(b2);
  EXPECT_EQ(q8b.window, q8.window);
  EXPECT_EQ(q8b.name, q8.name);
  EXPECT_EQ(q8b.emitted, q8.emitted);
}

// ------------------------------------------------------------ query driver

using Emit = std::function<void(const T&, std::string)>;
using BuildFn = std::function<timely::ProbeHandle<T>(
    timely::Scope<T>&, timely::Stream<ControlInst, T>, NexmarkStreams<T>&,
    Emit)>;

/// Runs `build` on `num_events` generated events over `workers` workers,
/// optionally migrating 25% of bins out at 1/3 of the stream and back at
/// 2/3. Returns the sorted formatted outputs, prefixed with the emission
/// epoch when `with_time` (arrival-driven joins like Q3/Q8 emit at
/// whichever epoch completes the join — that epoch depends on delivery
/// interleaving in native and Megaphone alike, so it is excluded from
/// their equivalence check).
std::vector<std::string> RunQuery(uint32_t workers, uint64_t num_events,
                                  const GeneratorConfig& gcfg,
                                  bool migrate, uint32_t num_bins,
                                  BuildFn build, bool with_time = true) {
  std::vector<std::string> rows;
  std::mutex mu;
  Generator gen(gcfg);
  const uint64_t span = gen.TimeOf(num_events) + 1;

  timely::Execute(timely::Config{workers}, [&](timely::Worker& w) {
    struct Handles {
      timely::Input<ControlInst, T> ctrl;
      timely::Input<Person, T> persons;
      timely::Input<Auction, T> auctions;
      timely::Input<Bid, T> bids;
      timely::ProbeHandle<T> probe;
    };
    auto handles = w.Dataflow<T>([&](timely::Scope<T>& s) -> Handles {
      auto [ctrl_in, ctrl_stream] = timely::NewInput<ControlInst>(s);
      auto [p_in, p_stream] = timely::NewInput<Person>(s);
      auto [a_in, a_stream] = timely::NewInput<Auction>(s);
      auto [b_in, b_stream] = timely::NewInput<Bid>(s);
      NexmarkStreams<T> streams{p_stream, a_stream, b_stream};
      auto probe = build(s, ctrl_stream, streams,
                         [&](const T& t, std::string row) {
                           std::lock_guard<std::mutex> lock(mu);
                           rows.push_back(with_time
                                              ? std::to_string(t) + "@" +
                                                    std::move(row)
                                              : std::move(row));
                         });
      return Handles{ctrl_in, p_in, a_in, b_in, probe};
    });
    auto& [ctrl_in, p_in, a_in, b_in, probe] = handles;

    typename MigrationController<T>::Options opts;
    opts.strategy = MigrationStrategy::kBatched;
    opts.batch_size = 4;
    MigrationController<T> controller(ctrl_in, probe, w.index(), opts);

    Assignment balanced = MakeInitialAssignment(num_bins, workers);
    Assignment imbalanced = MakeImbalancedAssignment(num_bins, workers);
    const uint64_t mig1 = span / 3, mig2 = 2 * span / 3;
    bool did1 = false, did2 = false;

    uint64_t cur = 0;
    controller.Advance(0, 1);
    for (uint64_t i = w.index(); i < num_events; i += workers) {
      uint64_t t = gen.TimeOf(i);
      if (t > cur) {
        if (migrate && !did1 && t >= mig1) {
          controller.MigrateTo(balanced, imbalanced);
          did1 = true;
        }
        if (migrate && !did2 && t >= mig2) {
          controller.MigrateTo(imbalanced, balanced);
          did2 = true;
        }
        controller.Advance(t, t + 1);
        p_in->AdvanceTo(t);
        a_in->AdvanceTo(t);
        b_in->AdvanceTo(t);
        cur = t;
        w.Step();
        std::this_thread::yield();
      }
      Event e = gen.At(i);
      switch (e.kind) {
        case Event::Kind::kPerson: p_in->Send(std::move(e.person)); break;
        case Event::Kind::kAuction: a_in->Send(std::move(e.auction)); break;
        case Event::Kind::kBid: b_in->Send(std::move(e.bid)); break;
      }
      if (i % 512 == 0) w.Step();
    }
    controller.Close(span + 1);
    p_in->Close();
    a_in->Close();
    b_in->Close();
  });

  std::sort(rows.begin(), rows.end());
  return rows;
}

GeneratorConfig TestGenConfig() {
  GeneratorConfig g;
  g.events_per_sec = 5000;
  g.auction_duration_ms = 500;
  g.active_people = 200;
  g.in_flight_auctions = 50;
  return g;
}

QueryConfig TestQueryConfig() {
  QueryConfig q;
  q.num_bins = 32;
  q.q5_slide_ms = 100;
  q.q5_slices = 5;
  q.q7_window_ms = 400;
  q.q8_window_ms = 800;
  return q;
}

/// Builds the three variants of query `q` and checks (b) == (a), (c) == (a).
void CheckQueryEquivalence(int q) {
  const uint32_t workers = 4;
  const uint64_t num_events = 25'000;
  GeneratorConfig gcfg = TestGenConfig();
  QueryConfig qcfg = TestQueryConfig();

  auto native = [&](timely::Scope<T>&, timely::Stream<ControlInst, T>,
                    NexmarkStreams<T>& in, Emit emit) {
    switch (q) {
      case 1: {
        auto out = Q1Native(in, qcfg);
        timely::Sink(out, [emit](const T& t, std::vector<Q1Out>& d) {
          for (auto& b : d) {
            emit(t, std::to_string(b.auction) + "|" + std::to_string(b.price));
          }
        });
        return timely::Probe(out);
      }
      case 2: {
        auto out = Q2Native(in, qcfg);
        timely::Sink(out, [emit](const T& t, std::vector<Q2Out>& d) {
          for (auto& [a, p] : d) {
            emit(t, std::to_string(a) + "|" + std::to_string(p));
          }
        });
        return timely::Probe(out);
      }
      case 3: {
        auto out = Q3Native(in, qcfg);
        timely::Sink(out, [emit](const T& t, std::vector<Q3Out>& d) {
          for (auto& [name, city, state, auction] : d) {
            emit(t, name + "|" + city + "|" + state + "|" +
                        std::to_string(auction));
          }
        });
        return timely::Probe(out);
      }
      case 4: {
        auto out = Q4Native(in, qcfg);
        timely::Sink(out, [emit](const T& t, std::vector<Q4Out>& d) {
          for (auto& [cat, avg] : d) {
            emit(t, std::to_string(cat) + "|" + std::to_string(avg));
          }
        });
        return timely::Probe(out);
      }
      case 5: {
        auto out = Q5Native(in, qcfg);
        timely::Sink(out, [emit](const T& t, std::vector<Q5Out>& d) {
          for (auto& [end, auction] : d) {
            emit(t, std::to_string(end) + "|" + std::to_string(auction));
          }
        });
        return timely::Probe(out);
      }
      case 6: {
        auto out = Q6Native(in, qcfg);
        timely::Sink(out, [emit](const T& t, std::vector<Q6Out>& d) {
          for (auto& [seller, avg] : d) {
            emit(t, std::to_string(seller) + "|" + std::to_string(avg));
          }
        });
        return timely::Probe(out);
      }
      case 7: {
        auto out = Q7Native(in, qcfg);
        timely::Sink(out, [emit](const T& t, std::vector<Q7Out>& d) {
          for (auto& [end, price] : d) {
            emit(t, std::to_string(end) + "|" + std::to_string(price));
          }
        });
        return timely::Probe(out);
      }
      case 8: {
        auto out = Q8Native(in, qcfg);
        timely::Sink(out, [emit](const T& t, std::vector<Q8Out>& d) {
          for (auto& [id, name] : d) {
            emit(t, std::to_string(id) + "|" + name);
          }
        });
        return timely::Probe(out);
      }
    }
    MEGA_CHECK(false);
    return timely::ProbeHandle<T>();
  };

  auto mega = [&](timely::Scope<T>&, timely::Stream<ControlInst, T> ctrl,
                  NexmarkStreams<T>& in, Emit emit) {
    switch (q) {
      case 1: {
        auto out = Q1Mega(ctrl, in, qcfg);
        timely::Sink(out.stream, [emit](const T& t, std::vector<Q1Out>& d) {
          for (auto& b : d) {
            emit(t, std::to_string(b.auction) + "|" + std::to_string(b.price));
          }
        });
        return out.probe;
      }
      case 2: {
        auto out = Q2Mega(ctrl, in, qcfg);
        timely::Sink(out.stream, [emit](const T& t, std::vector<Q2Out>& d) {
          for (auto& [a, p] : d) {
            emit(t, std::to_string(a) + "|" + std::to_string(p));
          }
        });
        return out.probe;
      }
      case 3: {
        auto out = Q3Mega(ctrl, in, qcfg);
        timely::Sink(out.stream, [emit](const T& t, std::vector<Q3Out>& d) {
          for (auto& [name, city, state, auction] : d) {
            emit(t, name + "|" + city + "|" + state + "|" +
                        std::to_string(auction));
          }
        });
        return out.probe;
      }
      case 4: {
        auto out = Q4Mega(ctrl, in, qcfg);
        timely::Sink(out.stream, [emit](const T& t, std::vector<Q4Out>& d) {
          for (auto& [cat, avg] : d) {
            emit(t, std::to_string(cat) + "|" + std::to_string(avg));
          }
        });
        return out.probe;
      }
      case 5: {
        auto out = Q5Mega(ctrl, in, qcfg);
        timely::Sink(out.stream, [emit](const T& t, std::vector<Q5Out>& d) {
          for (auto& [end, auction] : d) {
            emit(t, std::to_string(end) + "|" + std::to_string(auction));
          }
        });
        return out.probe;
      }
      case 6: {
        auto out = Q6Mega(ctrl, in, qcfg);
        timely::Sink(out.stream, [emit](const T& t, std::vector<Q6Out>& d) {
          for (auto& [seller, avg] : d) {
            emit(t, std::to_string(seller) + "|" + std::to_string(avg));
          }
        });
        return out.probe;
      }
      case 7: {
        auto out = Q7Mega(ctrl, in, qcfg);
        timely::Sink(out.stream, [emit](const T& t, std::vector<Q7Out>& d) {
          for (auto& [end, price] : d) {
            emit(t, std::to_string(end) + "|" + std::to_string(price));
          }
        });
        return out.probe;
      }
      case 8: {
        auto out = Q8Mega(ctrl, in, qcfg);
        timely::Sink(out.stream, [emit](const T& t, std::vector<Q8Out>& d) {
          for (auto& [id, name] : d) {
            emit(t, std::to_string(id) + "|" + name);
          }
        });
        return out.probe;
      }
    }
    MEGA_CHECK(false);
    return timely::ProbeHandle<T>();
  };

  // Q3 and Q8 are arrival-driven joins: the epoch a result is emitted at
  // depends on which side's bundle lands second, which delivery timing
  // decides in native and Megaphone alike. Their equivalence is over the
  // output multiset; every other query also pins emission times.
  const bool with_time = q != 3 && q != 8;

  auto expected = RunQuery(workers, num_events, gcfg, false, qcfg.num_bins,
                           native, with_time);
  ASSERT_FALSE(expected.empty()) << "query produced no output";

  auto mega_plain = RunQuery(workers, num_events, gcfg, false,
                             qcfg.num_bins, mega, with_time);
  EXPECT_EQ(mega_plain, expected) << "megaphone (no migration) differs";

  auto mega_migrated = RunQuery(workers, num_events, gcfg, true,
                                qcfg.num_bins, mega, with_time);
  EXPECT_EQ(mega_migrated, expected) << "megaphone (migrating) differs";
}

class NexmarkQuery : public ::testing::TestWithParam<int> {};

TEST_P(NexmarkQuery, NativeAndMegaphoneAgreeUnderMigration) {
  CheckQueryEquivalence(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Queries, NexmarkQuery,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                         [](const auto& info) {
                           return "Q" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace nexmark
