// Wire serde and merge semantics of the bench report shards: Histogram
// and Timeline must round-trip exactly (the distributed figure reports
// are only as good as these), and MergeShardsInto must pool samples and
// recompute migration maxima over the merged timeline.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "harness/bench_shard.hpp"
#include "harness/histogram.hpp"

namespace megaphone {
namespace {

TEST(BenchShardSerde, HistogramRoundTripsExactly) {
  Histogram h;
  h.Add(0);
  h.Add(17, 3);
  h.Add(1'000'000, 5);
  h.Add(123'456'789);
  h.Add(~uint64_t{0} >> 1);

  Histogram back = DecodeFromBytes<Histogram>(EncodeToBytes(h));
  EXPECT_EQ(back.total(), h.total());
  EXPECT_EQ(back.max(), h.max());
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(back.Quantile(q), h.Quantile(q)) << "quantile " << q;
  }
  EXPECT_EQ(back.Ccdf(), h.Ccdf());
}

TEST(BenchShardSerde, HistogramRejectsCorruptBucketIndex) {
  Histogram h;
  h.Add(42);
  auto bytes = EncodeToBytes(h);
  // First nonzero entry's bucket index sits right after the u64 count.
  bytes[8] = 0xff;
  bytes[9] = 0xff;
  EXPECT_THROW(DecodeFromBytes<Histogram>(bytes), SerdeError);
}

TEST(BenchShardSerde, TimelineRoundTripAndMerge) {
  Timeline a(250'000'000);
  a.Add(100'000'000, 5'000'000);        // bucket 0
  a.Add(600'000'000, 9'000'000, 2);     // bucket 2

  Timeline back = DecodeFromBytes<Timeline>(EncodeToBytes(a));
  EXPECT_EQ(back.bucket_ns(), a.bucket_ns());
  ASSERT_EQ(back.Rows().size(), a.Rows().size());
  EXPECT_EQ(back.MaxIn(0, ~uint64_t{0}), a.MaxIn(0, ~uint64_t{0}));

  Timeline b(250'000'000);
  b.Add(600'000'000, 50'000'000);       // same bucket, larger latency
  b.Add(1'300'000'000, 1'000'000);      // bucket 5, extends the vector
  back.Merge(b);
  auto rows = back.Rows();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(back.MaxIn(500'000'000, 750'000'000), 50'000'000u);
  EXPECT_EQ(rows[1].samples, 3u);  // 2 from a + 1 from b
}

TEST(BenchShardSerde, BenchShardRoundTrip) {
  BenchShard s;
  s.process_index = 3;
  s.timeline.Add(10'000'000, 2'000'000);
  s.per_record.Add(1'000);
  s.steady.Add(2'000, 7);
  s.migrations.push_back(MigrationStats{0.5, 1.25, 42.5, 16});
  s.outputs = 1234;
  s.records_sent = 99;
  s.duration_sec = 3.5;

  BenchShard back = DecodeFromBytes<BenchShard>(EncodeToBytes(s));
  EXPECT_EQ(back.process_index, 3u);
  EXPECT_EQ(back.steady.total(), 7u);
  ASSERT_EQ(back.migrations.size(), 1u);
  EXPECT_DOUBLE_EQ(back.migrations[0].end_sec, 1.25);
  EXPECT_EQ(back.migrations[0].batches, 16u);
  EXPECT_EQ(back.outputs, 1234u);
  EXPECT_EQ(back.records_sent, 99u);
  EXPECT_DOUBLE_EQ(back.duration_sec, 3.5);
}

TEST(BenchShardMerge, PoolsAcrossProcessesAndRecomputesMigrationMax) {
  // Process 1 saw the migration spike; process 0 owns the windows.
  BenchShard p0, p1;
  p0.process_index = 0;
  p0.timeline.Add(300'000'000, 4'000'000);
  p0.steady.Add(1'000'000, 10);
  p0.records_sent = 100;
  p0.duration_sec = 1.0;
  p0.migrations.push_back(MigrationStats{0.25, 0.5, 4.0, 8});
  p1.process_index = 1;
  p1.timeline.Add(300'000'000, 90'000'000);  // the remote spike
  p1.steady.Add(2'000'000, 10);
  p1.records_sent = 100;
  p1.duration_sec = 1.5;

  std::vector<BenchShard> shards = {p1, p0};  // arrival order scrambled
  Timeline merged(250'000'000);
  Histogram steady;
  std::vector<MigrationStats> migs;
  uint64_t records = 0;
  double duration = 0;
  detail::MergeShardsInto(shards, &merged, nullptr, &steady, &migs,
                          &records, nullptr, &duration);

  EXPECT_EQ(shards[0].process_index, 0u);  // sorted
  EXPECT_EQ(steady.total(), 20u);
  EXPECT_EQ(records, 200u);
  EXPECT_DOUBLE_EQ(duration, 1.5);
  ASSERT_EQ(migs.size(), 1u);
  // The window max must reflect the merged timeline, not just process 0.
  EXPECT_DOUBLE_EQ(migs[0].max_ms, 90.0);
}

}  // namespace
}  // namespace megaphone
