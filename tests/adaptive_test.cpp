// The closed-loop adaptive controller, proven deterministic.
//
// Three properties anchor the design (see megaphone/adaptive.hpp):
//   1. Convergence — under a seeded hot-key skew the policy emits at
//      least one plan, and the final assignment carries strictly less
//      load on the hottest worker than the initial one (checked against
//      an independent replay of the harness keygen).
//   2. Replay equivalence — the plans the controller emitted, replayed
//      as a fixed schedule, reproduce the digest byte-for-byte; and the
//      same adaptive run split across two processes emits the same plans
//      and the same digest. (The P=2 case forks; this test runs
//      RUN_SERIAL under ctest, like the other forking tests.)
//   3. Stability — hysteresis and the cooldown keep the policy from
//      thrashing: within the cooldown even heavy skew must not replan,
//      and oscillation inside the imbalance threshold never replans,
//      while a genuine reversed skew after the cooldown still does.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <utility>
#include <vector>

#include "harness/count_workload.hpp"
#include "harness/launcher.hpp"

namespace megaphone {
namespace {

DetCountConfig SkewedConfig() {
  DetCountConfig cfg;
  cfg.total_workers = 4;
  cfg.num_bins = 32;
  cfg.domain = 1 << 11;
  cfg.records_per_epoch = 2048;
  cfg.epochs = 12;
  cfg.adaptive = true;
  cfg.adaptive_opts.cooldown_epochs = 3;
  cfg.skew_from_epoch = 2;
  cfg.skew_worker = 0;
  cfg.skew_prob_pct = 90;
  return cfg;
}

// Independent replay of the harness keygen: per-bin record counts over
// the skewed phase, the load the policy was reacting to.
std::vector<uint64_t> SkewedBinLoads(const DetCountConfig& cfg) {
  std::vector<uint64_t> loads(cfg.num_bins, 0);
  for (uint64_t idx = cfg.skew_from_epoch * cfg.records_per_epoch;
       idx < cfg.epochs * cfg.records_per_epoch; ++idx) {
    uint64_t k =
        detail::SkewedRecord(cfg.seed, idx, cfg.skew_prob_pct)
            ? detail::HotHashKey(cfg.seed, idx, cfg.domain, cfg.num_bins,
                                 cfg.total_workers, cfg.skew_worker)
            : detail::CountKey(cfg.seed, idx, cfg.domain);
    loads[BinOf(HashMix64(k), cfg.num_bins)]++;
  }
  return loads;
}

uint64_t MaxWorkerLoad(const std::vector<uint64_t>& loads,
                       const Assignment& a, uint32_t workers) {
  std::vector<uint64_t> wl(workers, 0);
  for (size_t b = 0; b < a.size(); ++b) wl[a[b]] += loads[b];
  return *std::max_element(wl.begin(), wl.end());
}

TEST(Adaptive, ConvergesUnderSeededSkew) {
  DetCountConfig cfg = SkewedConfig();
  timely::Config tcfg;
  tcfg.workers = cfg.total_workers;
  DetCountResult r = RunDeterministicCount(cfg, tcfg);
  ASSERT_TRUE(r.root);
  ASSERT_FALSE(r.emitted_plans.empty()) << "policy never reacted to skew";

  auto loads = SkewedBinLoads(cfg);
  uint64_t total = std::accumulate(loads.begin(), loads.end(), uint64_t{0});
  auto initial = MakeInitialAssignment(cfg.num_bins, cfg.total_workers);
  uint64_t before = MaxWorkerLoad(loads, initial, cfg.total_workers);
  uint64_t after =
      MaxWorkerLoad(loads, r.final_assignment, cfg.total_workers);
  EXPECT_LT(after, before) << "rebalance did not reduce the hot worker";
  // 90% of traffic targeted one of four workers; the final assignment
  // must spread it well below a majority share (perfect split = 25%).
  EXPECT_LE(after * 100, total * 55)
      << "final assignment still concentrates the load";
}

TEST(Adaptive, ReplayingEmittedPlansReproducesDigest) {
  DetCountConfig cfg = SkewedConfig();
  timely::Config tcfg;
  tcfg.workers = cfg.total_workers;
  DetCountResult live = RunDeterministicCount(cfg, tcfg);
  ASSERT_TRUE(live.root);
  ASSERT_FALSE(live.emitted_plans.empty());

  DetCountConfig replay = cfg;
  replay.adaptive = false;
  replay.skew_from_epoch = cfg.skew_from_epoch;  // identical input stream
  replay.schedule = live.emitted_plans;
  DetCountResult rep = RunDeterministicCount(replay, tcfg);
  ASSERT_TRUE(rep.root);
  EXPECT_EQ(rep.digest, live.digest)
      << "replaying the emitted plans diverged from the live run";
  EXPECT_EQ(rep.distinct_keys, live.distinct_keys);
  EXPECT_EQ(rep.completed_batches, live.completed_batches);
}

// (The fork pattern follows multiprocess_test: the peer exits before
// gtest's epilogue; RUN_SERIAL under ctest.)
TEST(Adaptive, PlansAndDigestIdenticalAcrossTwoProcesses) {
  DetCountConfig cfg = SkewedConfig();
  timely::Config single;
  single.workers = cfg.total_workers;
  DetCountResult ref = RunDeterministicCount(cfg, single);
  ASSERT_TRUE(ref.root);
  ASSERT_FALSE(ref.emitted_plans.empty());

  MultiProcess mp = LaunchLoopbackProcesses(/*processes=*/2,
                                            /*workers_per_process=*/2);
  if (!mp.IsRoot()) {
    RunDeterministicCount(cfg, mp.config);
    _exit(0);
  }
  DetCountResult dist = RunDeterministicCount(cfg, mp.config);
  EXPECT_EQ(WaitForChildren(mp.children), 0) << "peer process failed";
  ASSERT_TRUE(dist.root);
  EXPECT_EQ(dist.emitted_plans, ref.emitted_plans)
      << "the policy decided differently across the process split";
  EXPECT_EQ(dist.digest, ref.digest);
  EXPECT_EQ(dist.completed_batches, ref.completed_batches);
}

// ------------------------------------------------------- policy (unit)

void Feed(AdaptivePolicy& p, std::vector<uint64_t> records) {
  BinStatsReport rep;
  rep.records = std::move(records);
  p.Ingest(rep);
}

TEST(Adaptive, HysteresisAndCooldownPreventThrash) {
  AdaptiveOptions opts;
  opts.cooldown_epochs = 2;
  AdaptivePolicy p(4, 2, opts);
  Assignment cur{0, 0, 1, 1};

  // Sustained skew onto worker 0's bins: exactly one plan.
  Feed(p, {50, 50, 1, 1});
  auto plan = p.Decide(1, cur);
  ASSERT_TRUE(plan.has_value());
  Assignment a = *plan;
  EXPECT_NE(a, cur);

  // Within the cooldown even heavy skew must not replan.
  Feed(p, {50, 50, 1, 1});
  EXPECT_FALSE(p.Decide(2, a).has_value());

  // Mild oscillation inside the imbalance threshold: never replans.
  for (uint64_t e = 3; e < 10; ++e) {
    if (e % 2 == 0) {
      Feed(p, {26, 25, 25, 26});
    } else {
      Feed(p, {25, 26, 26, 25});
    }
    EXPECT_FALSE(p.Decide(e, a).has_value())
        << "thrashed at epoch " << e;
  }

  // A genuine reversed skew after the cooldown still replans.
  Feed(p, {50, 1, 1, 50});
  Feed(p, {50, 1, 1, 50});
  EXPECT_TRUE(p.Decide(10, a).has_value());
}

TEST(Adaptive, IngestIsAdditiveAcrossSplitReports) {
  AdaptiveOptions opts;
  AdaptivePolicy whole(4, 2, opts);
  AdaptivePolicy split(4, 2, opts);
  Assignment cur{0, 0, 1, 1};

  Feed(whole, {40, 40, 2, 2});
  Feed(split, {40, 0, 2, 0});   // the same totals, split across two
  Feed(split, {0, 40, 0, 2});   // reports arriving in any order
  auto a = whole.Decide(1, cur);
  auto b = split.Decide(1, cur);
  ASSERT_EQ(a.has_value(), b.has_value());
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, *b);
}

TEST(Adaptive, BalancedLoadNeverPlans) {
  AdaptivePolicy p(4, 2, {});
  Assignment cur{0, 1, 0, 1};
  for (uint64_t e = 1; e < 6; ++e) {
    Feed(p, {25, 25, 25, 25});
    EXPECT_FALSE(p.Decide(e, cur).has_value());
  }
  // And no traffic at all never plans either.
  AdaptivePolicy idle(4, 2, {});
  EXPECT_FALSE(idle.Decide(1, cur).has_value());
}

// The move-cost knob: pricing a bin's migration at move_cost_per_byte
// per byte of resident state vetoes shipping huge bins whose load gain
// cannot pay for the transfer, without muting the policy entirely.
TEST(Adaptive, MoveCostVetoesExpensiveBins) {
  // Bins {0,1} carry the load and both sit on worker 0; either one
  // moving rebalances, so the knob decides which. (Bin 0 must not be so
  // dominant that moving it only swaps the hot worker — hysteresis would
  // then veto every plan regardless of cost.)
  auto feed = [](AdaptivePolicy& p, std::vector<uint64_t> state_bytes) {
    BinStatsReport rep;
    rep.records = {50, 40, 1, 1};
    rep.state_bytes = std::move(state_bytes);
    rep.resident = {1, 1, 1, 1};
    p.Ingest(rep);
  };
  Assignment cur{0, 0, 1, 1};
  const uint64_t kHuge = 1ull << 30;  // cost 1e-6/byte prices this at ~1073

  // Cost off (the default): the heavy bin moves, as always.
  AdaptivePolicy free_policy(4, 2, {});
  feed(free_policy, {kHuge, 64, 64, 64});
  auto plan = free_policy.Decide(1, cur);
  ASSERT_TRUE(plan.has_value());
  EXPECT_NE((*plan)[0], cur[0]) << "the hot bin should have moved";

  // With a cost, the gigabyte bin stays put — its ~25 units of smoothed
  // load cannot pay ~1073 units of transfer — but rebalancing continues
  // with the cheap bin 1 on the overloaded worker.
  AdaptiveOptions priced;
  priced.move_cost_per_byte = 1e-6;
  AdaptivePolicy costly(4, 2, priced);
  feed(costly, {kHuge, 64, 64, 64});
  auto capped = costly.Decide(1, cur);
  ASSERT_TRUE(capped.has_value());
  EXPECT_EQ((*capped)[0], cur[0]) << "the priced-out bin moved anyway";
  EXPECT_NE(*capped, cur) << "no cheap bin moved at all";

  // When every bin is that expensive, no move is worth it: silence.
  AdaptivePolicy muted(4, 2, priced);
  feed(muted, {kHuge, kHuge, kHuge, kHuge});
  EXPECT_FALSE(muted.Decide(1, cur).has_value());
}

TEST(Adaptive, BinStatsReportRoundTrips) {
  BinStatsReport rep;
  rep.worker = 3;
  rep.epoch = 17;
  rep.records = {5, 0, 9};
  rep.state_bytes = {40, 0, 72};
  rep.resident = {1, 0, 1};
  auto back = DecodeFromBytes<BinStatsReport>(EncodeToBytes(rep));
  EXPECT_EQ(back.worker, rep.worker);
  EXPECT_EQ(back.epoch, rep.epoch);
  EXPECT_EQ(back.records, rep.records);
  EXPECT_EQ(back.state_bytes, rep.state_bytes);
  EXPECT_EQ(back.resident, rep.resident);
}

}  // namespace
}  // namespace megaphone
