// Unit tests for the process mesh: frame/handshake round trips, data and
// progress delivery with per-peer FIFO ordering, buffering of frames that
// arrive before their handler registers, and clean goodbye shutdown.
// Two NetMesh instances (process 0 and 1) run inside this one test
// process, connected over real loopback sockets.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/net.hpp"

namespace megaphone {
namespace net {
namespace {

TEST(NetFrame, HeaderRoundTrip) {
  FrameHeader h;
  h.kind = static_cast<uint32_t>(FrameKind::kData);
  h.target = 7;
  h.key = DataKey(3, 12);
  h.payload_len = 4096;
  uint8_t buf[kFrameHeaderBytes];
  EncodeFrameHeader(buf, h);
  FrameHeader back = DecodeFrameHeader(buf);
  EXPECT_EQ(back.kind, h.kind);
  EXPECT_EQ(back.target, 7u);
  EXPECT_EQ(back.key, (uint64_t{3} << 32) | 12);
  EXPECT_EQ(back.payload_len, 4096u);
}

TEST(NetFrame, HandshakeRoundTrip) {
  Handshake h;
  h.process = 5;
  uint8_t buf[kHandshakeBytes];
  EncodeHandshake(buf, h);
  Handshake back = DecodeHandshake(buf);
  EXPECT_EQ(back.magic, kHandshakeMagic);
  EXPECT_EQ(back.version, kProtocolVersion);
  EXPECT_EQ(back.process, 5u);
}

TEST(NetFrame, BuildFrameLayout) {
  std::vector<uint8_t> payload{1, 2, 3};
  auto frame = BuildFrame(FrameKind::kProgress, 0, 9, payload);
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + 3);
  FrameHeader h = DecodeFrameHeader(frame.data());
  EXPECT_EQ(h.kind, static_cast<uint32_t>(FrameKind::kProgress));
  EXPECT_EQ(h.key, 9u);
  EXPECT_EQ(h.payload_len, 3u);
  EXPECT_EQ(frame[kFrameHeaderBytes + 2], 3u);
}

// v2 header: sequence number and payload checksum round-trip, and the
// header CRC rejects any single corrupted byte instead of delivering a
// desynchronized frame.
TEST(NetFrame, SequencedHeaderRoundTripAndCrc) {
  std::vector<uint8_t> payload{9, 8, 7, 6};
  auto frame = BuildFrame(FrameKind::kData, 3, DataKey(1, 2), payload,
                          /*seq=*/12345);
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + 4);
  FrameHeader h;
  ASSERT_TRUE(TryDecodeFrameHeader(frame.data(), &h));
  EXPECT_EQ(h.seq, 12345u);
  EXPECT_EQ(h.payload_crc, FrameChecksum(payload.data(), payload.size()));
  EXPECT_TRUE(IsSequencedKind(h.kind));

  for (size_t i = 0; i < kFrameHeaderBytes; ++i) {
    std::vector<uint8_t> bad = frame;
    bad[i] ^= 0x40;
    FrameHeader dummy;
    EXPECT_FALSE(TryDecodeFrameHeader(bad.data(), &dummy))
        << "corrupted header byte " << i << " passed the crc";
  }
}

TEST(NetFrame, ProtocolFramesAreUnsequenced) {
  std::vector<uint8_t> empty;
  auto frame = BuildFrame(FrameKind::kHeartbeat, 0, 0, empty);
  FrameHeader h;
  ASSERT_TRUE(TryDecodeFrameHeader(frame.data(), &h));
  EXPECT_EQ(h.seq, 0u);
  EXPECT_FALSE(IsSequencedKind(h.kind));
  EXPECT_FALSE(IsSequencedKind(static_cast<uint32_t>(FrameKind::kAck)));
  EXPECT_FALSE(IsSequencedKind(static_cast<uint32_t>(FrameKind::kNack)));
  EXPECT_FALSE(IsSequencedKind(static_cast<uint32_t>(FrameKind::kGoodbye)));
  EXPECT_TRUE(IsSequencedKind(static_cast<uint32_t>(FrameKind::kProgress)));
}

// Builds a connected 2-process mesh on kernel-assigned loopback ports.
// Constructors handshake with each other, so they run concurrently.
struct MeshPair {
  std::unique_ptr<NetMesh> m0;
  std::unique_ptr<NetMesh> m1;

  explicit MeshPair(uint32_t workers_per_process = 2) {
    int l0 = BindListener("127.0.0.1", 0, 2);
    int l1 = BindListener("127.0.0.1", 0, 2);
    std::vector<std::string> addresses = {
        "127.0.0.1:" + std::to_string(ListenerPort(l0)),
        "127.0.0.1:" + std::to_string(ListenerPort(l1)),
    };
    auto opts = [&](uint32_t index, int fd) {
      MeshOptions o;
      o.processes = 2;
      o.process_index = index;
      o.workers_per_process = workers_per_process;
      o.addresses = addresses;
      o.listen_fd = fd;
      return o;
    };
    std::thread t1([&] { m1 = std::make_unique<NetMesh>(opts(1, l1)); });
    m0 = std::make_unique<NetMesh>(opts(0, l0));
    t1.join();
  }

  void Shutdown() {
    // Each side's shutdown waits for the peer's goodbye; run both.
    std::thread t([&] { m1->Shutdown(); });
    m0->Shutdown();
    t.join();
  }
};

TEST(NetMesh, TopologyAccessors) {
  MeshPair pair(3);
  EXPECT_EQ(pair.m0->processes(), 2u);
  EXPECT_EQ(pair.m0->workers_per_process(), 3u);
  EXPECT_TRUE(pair.m0->IsLocalWorker(2));
  EXPECT_FALSE(pair.m0->IsLocalWorker(3));
  EXPECT_EQ(pair.m1->ProcessOfWorker(5), 1u);
  EXPECT_TRUE(pair.m1->IsLocalWorker(5));
  pair.Shutdown();
}

TEST(NetMesh, DataFramesArriveInOrderWithTargets) {
  MeshPair pair;
  std::mutex mu;
  std::vector<std::pair<uint32_t, uint64_t>> received;  // (target, value)

  pair.m1->RegisterDataHandler(
      /*dataflow=*/0, /*channel=*/4,
      [&](uint32_t target, Reader& r) {
        std::lock_guard<std::mutex> lock(mu);
        received.emplace_back(target, Decode<uint64_t>(r));
      });

  for (uint64_t i = 0; i < 100; ++i) {
    pair.m0->SendData(0, 4, /*target=*/2 + (i % 2), EncodeToBytes(i));
  }
  // Delivery is asynchronous; the goodbye exchange in Shutdown flushes
  // everything first, so after it the full sequence has been dispatched.
  pair.Shutdown();

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(received.size(), 100u);
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(received[i].first, 2 + (i % 2));
    EXPECT_EQ(received[i].second, i);
  }
}

TEST(NetMesh, FramesBeforeRegistrationAreBufferedAndReplayedInOrder) {
  MeshPair pair;

  // Send both data and progress before any handler exists on the peer.
  for (uint64_t i = 0; i < 10; ++i) {
    pair.m0->SendData(1, 2, /*target=*/3, EncodeToBytes(i));
    pair.m0->BroadcastProgress(1, EncodeToBytes(uint64_t{100 + i}));
  }
  // Block until the peer has definitely received them: round-trip a frame
  // on a side channel whose handler is already registered.
  std::atomic<bool> marker{false};
  pair.m1->RegisterDataHandler(9, 9, [&](uint32_t, Reader&) {
    marker.store(true);
  });
  pair.m0->SendData(9, 9, /*target=*/2, {});
  while (!marker.load()) std::this_thread::yield();

  std::vector<uint64_t> data_seen;
  std::vector<uint64_t> progress_seen;
  pair.m1->RegisterDataHandler(1, 2, [&](uint32_t target, Reader& r) {
    EXPECT_EQ(target, 3u);
    data_seen.push_back(Decode<uint64_t>(r));  // replay is synchronous
  });
  pair.m1->RegisterProgressHandler(1, [&](Reader& r) {
    progress_seen.push_back(Decode<uint64_t>(r));
  });

  ASSERT_EQ(data_seen.size(), 10u);
  ASSERT_EQ(progress_seen.size(), 10u);
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(data_seen[i], i);
    EXPECT_EQ(progress_seen[i], 100 + i);
  }
  pair.Shutdown();
}

TEST(NetMesh, ProgressBroadcastReachesEveryPeerBothWays) {
  MeshPair pair;
  std::atomic<uint64_t> at_m0{0};
  std::atomic<uint64_t> at_m1{0};
  pair.m0->RegisterProgressHandler(7, [&](Reader& r) {
    at_m0 += Decode<uint64_t>(r);
  });
  pair.m1->RegisterProgressHandler(7, [&](Reader& r) {
    at_m1 += Decode<uint64_t>(r);
  });
  for (uint64_t i = 1; i <= 10; ++i) {
    pair.m0->BroadcastProgress(7, EncodeToBytes(i));
    pair.m1->BroadcastProgress(7, EncodeToBytes(i * 100));
  }
  pair.Shutdown();
  EXPECT_EQ(at_m1.load(), 55u);
  EXPECT_EQ(at_m0.load(), 5500u);
}

}  // namespace
}  // namespace net
}  // namespace megaphone
