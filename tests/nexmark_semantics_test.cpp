// Hand-crafted NEXMark semantics tests: precise window boundaries, expiry
// handling, tie-breaking, and filters, with exact expected outputs. These
// pin down the query semantics that the native-vs-Megaphone equivalence
// suite (nexmark_test.cpp) compares.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "nexmark/nexmark.hpp"
#include "timely/timely.hpp"

namespace nexmark {
namespace {

using megaphone::ControlInst;
using T = uint64_t;

/// Runs a single-worker dataflow: `build` wires a query off manually fed
/// inputs, `feed` drives them ((persons, auctions, bids) handles plus an
/// epoch-advance callback).
struct ManualRunner {
  template <typename BuildFn, typename FeedFn>
  static void Run(BuildFn build, FeedFn feed) {
    timely::Execute(timely::Config{1}, [&](timely::Worker& w) {
      struct Handles {
        timely::Input<ControlInst, T> ctrl;
        timely::Input<Person, T> persons;
        timely::Input<Auction, T> auctions;
        timely::Input<Bid, T> bids;
      };
      auto handles = w.Dataflow<T>([&](timely::Scope<T>& s) -> Handles {
        auto [ctrl_in, ctrl_stream] = timely::NewInput<ControlInst>(s);
        auto [p_in, p_stream] = timely::NewInput<Person>(s);
        auto [a_in, a_stream] = timely::NewInput<Auction>(s);
        auto [b_in, b_stream] = timely::NewInput<Bid>(s);
        NexmarkStreams<T> streams{p_stream, a_stream, b_stream};
        build(ctrl_stream, streams);
        return Handles{ctrl_in, p_in, a_in, b_in};
      });
      auto& [ctrl_in, p_in, a_in, b_in] = handles;
      auto advance = [&](uint64_t t) {
        ctrl_in->AdvanceTo(t + 1);  // control stays ahead of data
        p_in->AdvanceTo(t);
        a_in->AdvanceTo(t);
        b_in->AdvanceTo(t);
        w.Step();
      };
      feed(p_in, a_in, b_in, advance);
      ctrl_in->Close();
      p_in->Close();
      a_in->Close();
      b_in->Close();
    });
  }
};

Auction MakeAuction(uint64_t id, uint64_t seller, uint32_t category,
                    uint64_t t, uint64_t expires) {
  Auction a;
  a.id = id;
  a.seller = seller;
  a.category = category;
  a.date_time = t;
  a.expires = expires;
  return a;
}

Bid MakeBid(uint64_t auction, uint64_t price, uint64_t t) {
  Bid b;
  b.auction = auction;
  b.price = price;
  b.date_time = t;
  return b;
}

TEST(NexmarkSemantics, Q1ConvertsPrices) {
  EXPECT_EQ(ToEuros(1000), 908u);
  EXPECT_EQ(ToEuros(0), 0u);
  EXPECT_EQ(ToEuros(1), 0u);  // integer conversion truncates
}

TEST(NexmarkSemantics, ClosedAuctionIncludesBidAtExpiryExcludesLater) {
  std::mutex mu;
  std::vector<std::tuple<uint64_t, uint64_t, uint64_t>> closed;
  QueryConfig qcfg;
  qcfg.num_bins = 4;
  ManualRunner::Run(
      [&](timely::Stream<ControlInst, T> ctrl, NexmarkStreams<T>& in) {
        auto out = ClosedAuctionsMega(ctrl, in, qcfg);
        timely::Sink(out.stream,
                     [&](const T& t, std::vector<ClosedAuction>& d) {
                       std::lock_guard<std::mutex> lock(mu);
                       for (auto& c : d) closed.push_back({t, c.auction,
                                                           c.price});
                     });
      },
      [&](auto&, auto& a_in, auto& b_in, auto advance) {
        a_in->Send(MakeAuction(1, 0, 0, /*t=*/1, /*expires=*/10));
        advance(2);
        b_in->Send(MakeBid(1, 100, 2));  // early bid
        advance(10);
        b_in->Send(MakeBid(1, 300, 10));  // bid AT expiry: included
        advance(11);
        b_in->Send(MakeBid(1, 900, 11));  // after expiry: dropped
        advance(12);
      });
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0], (std::tuple<uint64_t, uint64_t, uint64_t>{10, 1, 300}));
}

TEST(NexmarkSemantics, AuctionWithoutBidsClosesAtZero) {
  std::mutex mu;
  std::vector<uint64_t> prices;
  QueryConfig qcfg;
  qcfg.num_bins = 4;
  ManualRunner::Run(
      [&](timely::Stream<ControlInst, T> ctrl, NexmarkStreams<T>& in) {
        auto out = ClosedAuctionsMega(ctrl, in, qcfg);
        timely::Sink(out.stream,
                     [&](const T&, std::vector<ClosedAuction>& d) {
                       std::lock_guard<std::mutex> lock(mu);
                       for (auto& c : d) prices.push_back(c.price);
                     });
      },
      [&](auto&, auto& a_in, auto&, auto advance) {
        a_in->Send(MakeAuction(5, 0, 0, 1, 4));
        advance(6);
      });
  ASSERT_EQ(prices.size(), 1u);
  EXPECT_EQ(prices[0], 0u);
}

TEST(NexmarkSemantics, Q5WindowExcludesBoundarySlice) {
  // slide=10, slices=2 -> window [f-20, f). A bid at exactly t=20 must not
  // count toward the window ending at 20, but toward the one ending at 30.
  std::mutex mu;
  std::vector<std::pair<uint64_t, uint64_t>> hot;  // (window end, auction)
  QueryConfig qcfg;
  qcfg.num_bins = 4;
  qcfg.q5_slide_ms = 10;
  qcfg.q5_slices = 2;
  ManualRunner::Run(
      [&](timely::Stream<ControlInst, T> ctrl, NexmarkStreams<T>& in) {
        auto out = Q5Mega(ctrl, in, qcfg);
        timely::Sink(out.stream, [&](const T&, std::vector<Q5Out>& d) {
          std::lock_guard<std::mutex> lock(mu);
          for (auto& o : d) hot.push_back(o);
        });
      },
      [&](auto&, auto&, auto& b_in, auto advance) {
        b_in->Send(MakeBid(1, 5, 5));  // slice [0,10): windows @10, @20
        advance(20);
        b_in->Send(MakeBid(2, 5, 20));  // slice [20,30): windows @30, @40
        b_in->Send(MakeBid(2, 5, 20));
        advance(60);
      });
  std::sort(hot.begin(), hot.end());
  // @10 and @20: auction 1 (1 bid). @30 and @40: auction 2 (2 bids).
  std::vector<std::pair<uint64_t, uint64_t>> expected = {
      {10, 1}, {20, 1}, {30, 2}, {40, 2}};
  EXPECT_EQ(hot, expected);
}

TEST(NexmarkSemantics, Q5TieBreaksToLowestAuction) {
  std::mutex mu;
  std::vector<std::pair<uint64_t, uint64_t>> hot;
  QueryConfig qcfg;
  qcfg.num_bins = 4;
  qcfg.q5_slide_ms = 10;
  qcfg.q5_slices = 1;
  ManualRunner::Run(
      [&](timely::Stream<ControlInst, T> ctrl, NexmarkStreams<T>& in) {
        auto out = Q5Mega(ctrl, in, qcfg);
        timely::Sink(out.stream, [&](const T&, std::vector<Q5Out>& d) {
          std::lock_guard<std::mutex> lock(mu);
          for (auto& o : d) hot.push_back(o);
        });
      },
      [&](auto&, auto&, auto& b_in, auto advance) {
        b_in->Send(MakeBid(7, 1, 3));
        b_in->Send(MakeBid(4, 1, 4));  // tie: auction 4 < 7 wins
        advance(30);
      });
  ASSERT_EQ(hot.size(), 1u);
  EXPECT_EQ(hot[0], (std::pair<uint64_t, uint64_t>{10, 4}));
}

TEST(NexmarkSemantics, Q7WindowMaxima) {
  std::mutex mu;
  std::vector<Q7Out> maxima;
  QueryConfig qcfg;
  qcfg.num_bins = 4;
  qcfg.q7_window_ms = 10;
  ManualRunner::Run(
      [&](timely::Stream<ControlInst, T> ctrl, NexmarkStreams<T>& in) {
        auto out = Q7Mega(ctrl, in, qcfg);
        timely::Sink(out.stream, [&](const T&, std::vector<Q7Out>& d) {
          std::lock_guard<std::mutex> lock(mu);
          for (auto& o : d) maxima.push_back(o);
        });
      },
      [&](auto&, auto&, auto& b_in, auto advance) {
        b_in->Send(MakeBid(1, 50, 2));
        b_in->Send(MakeBid(2, 90, 7));
        advance(10);  // window [0,10) -> 90
        // [10,20): no bids -> no output.
        advance(20);
        b_in->Send(MakeBid(3, 10, 25));
        advance(40);  // window [20,30) -> 10
      });
  std::sort(maxima.begin(), maxima.end());
  std::vector<Q7Out> expected = {{10, 90}, {30, 10}};
  EXPECT_EQ(maxima, expected);
}

TEST(NexmarkSemantics, Q8SameWindowOnlyAndOnce) {
  std::mutex mu;
  std::vector<Q8Out> out_rows;
  QueryConfig qcfg;
  qcfg.num_bins = 4;
  qcfg.q8_window_ms = 10;
  ManualRunner::Run(
      [&](timely::Stream<ControlInst, T> ctrl, NexmarkStreams<T>& in) {
        auto out = Q8Mega(ctrl, in, qcfg);
        timely::Sink(out.stream, [&](const T&, std::vector<Q8Out>& d) {
          std::lock_guard<std::mutex> lock(mu);
          for (auto& o : d) out_rows.push_back(o);
        });
      },
      [&](auto& p_in, auto& a_in, auto&, auto advance) {
        Person p;
        p.id = 1;
        p.name = "person-1";
        p.date_time = 2;  // window [0,10)
        p_in->Send(std::move(p));
        advance(3);
        a_in->Send(MakeAuction(10, 1, 0, 3, 100));  // same window: emits
        a_in->Send(MakeAuction(11, 1, 0, 4, 100));  // same window: deduped
        advance(12);
        a_in->Send(MakeAuction(12, 1, 0, 12, 100));  // next window: no emit
        advance(30);
      });
  ASSERT_EQ(out_rows.size(), 1u);
  EXPECT_EQ(out_rows[0], (Q8Out{1, "person-1"}));
}

TEST(NexmarkSemantics, Q3FiltersStateAndCategory) {
  std::mutex mu;
  std::vector<Q3Out> joined;
  QueryConfig qcfg;
  qcfg.num_bins = 4;
  qcfg.q3_category = 7;
  ManualRunner::Run(
      [&](timely::Stream<ControlInst, T> ctrl, NexmarkStreams<T>& in) {
        auto out = Q3Mega(ctrl, in, qcfg);
        timely::Sink(out.stream, [&](const T&, std::vector<Q3Out>& d) {
          std::lock_guard<std::mutex> lock(mu);
          for (auto& o : d) joined.push_back(o);
        });
      },
      [&](auto& p_in, auto& a_in, auto&, auto advance) {
        Person oregon;
        oregon.id = 1;
        oregon.name = "person-1";
        oregon.city = "Portland";
        oregon.state = "OR";
        oregon.date_time = 1;
        Person texas;
        texas.id = 2;
        texas.name = "person-2";
        texas.city = "Austin";
        texas.state = "TX";  // filtered out
        texas.date_time = 1;
        p_in->Send(std::move(oregon));
        p_in->Send(std::move(texas));
        advance(2);
        a_in->Send(MakeAuction(100, 1, 7, 3, 50));   // joins
        a_in->Send(MakeAuction(101, 1, 3, 3, 50));   // wrong category
        a_in->Send(MakeAuction(102, 2, 7, 3, 50));   // TX person filtered
        advance(10);
      });
  ASSERT_EQ(joined.size(), 1u);
  EXPECT_EQ(std::get<0>(joined[0]), "person-1");
  EXPECT_EQ(std::get<3>(joined[0]), 100u);
}

TEST(NexmarkSemantics, Q4RunningAverageIsCumulative) {
  std::mutex mu;
  std::vector<Q4Out> avgs;
  QueryConfig qcfg;
  qcfg.num_bins = 4;
  ManualRunner::Run(
      [&](timely::Stream<ControlInst, T> ctrl, NexmarkStreams<T>& in) {
        auto out = Q4Mega(ctrl, in, qcfg);
        timely::Sink(out.stream, [&](const T&, std::vector<Q4Out>& d) {
          std::lock_guard<std::mutex> lock(mu);
          for (auto& o : d) avgs.push_back(o);
        });
      },
      [&](auto&, auto& a_in, auto& b_in, auto advance) {
        a_in->Send(MakeAuction(1, 0, 2, 1, 5));
        a_in->Send(MakeAuction(2, 0, 2, 1, 8));
        advance(2);
        b_in->Send(MakeBid(1, 100, 2));
        b_in->Send(MakeBid(2, 200, 2));
        advance(20);
      });
  // Auction 1 closes @5 (price 100): avg 100. Auction 2 closes @8
  // (price 200): cumulative avg (100+200)/2 = 150.
  ASSERT_EQ(avgs.size(), 2u);
  EXPECT_EQ(avgs[0], (Q4Out{2, 100}));
  EXPECT_EQ(avgs[1], (Q4Out{2, 150}));
}

TEST(NexmarkSemantics, Q6KeepsLastTenOnly) {
  std::mutex mu;
  std::vector<Q6Out> avgs;
  QueryConfig qcfg;
  qcfg.num_bins = 4;
  ManualRunner::Run(
      [&](timely::Stream<ControlInst, T> ctrl, NexmarkStreams<T>& in) {
        auto out = Q6Mega(ctrl, in, qcfg);
        timely::Sink(out.stream, [&](const T&, std::vector<Q6Out>& d) {
          std::lock_guard<std::mutex> lock(mu);
          for (auto& o : d) avgs.push_back(o);
        });
      },
      [&](auto&, auto& a_in, auto& b_in, auto advance) {
        // Twelve auctions by seller 9, each closing at a distinct time
        // with price = auction id * 10.
        for (uint64_t id = 1; id <= 12; ++id) {
          a_in->Send(MakeAuction(id, 9, 0, id, id + 20));
          b_in->Send(MakeBid(id, id * 10, id));
          advance(id + 1);
        }
        advance(40);
      });
  ASSERT_EQ(avgs.size(), 12u);
  // After the 12th closure, the ring holds prices 30..120: avg = 75.
  EXPECT_EQ(avgs.back(), (Q6Out{9, 75}));
  // After the 10th closure, ring holds 10..100: avg = 55.
  EXPECT_EQ(avgs[9], (Q6Out{9, 55}));
}

}  // namespace
}  // namespace nexmark
