// Tests for control-plane pieces: bin mapping, the time-versioned routing
// table, assignment planning, and strategy batch generation.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "common/hash.hpp"
#include "megaphone/control.hpp"
#include "megaphone/strategies.hpp"

namespace megaphone {
namespace {

TEST(BinOf, UsesMostSignificantBits) {
  EXPECT_EQ(BinOf(0, 1), 0u);
  EXPECT_EQ(BinOf(~uint64_t{0}, 1), 0u);
  // With 4 bins, the top 2 bits select the bin.
  EXPECT_EQ(BinOf(0x0000000000000000ULL, 4), 0u);
  EXPECT_EQ(BinOf(0x4000000000000000ULL, 4), 1u);
  EXPECT_EQ(BinOf(0x8000000000000000ULL, 4), 2u);
  EXPECT_EQ(BinOf(0xC000000000000000ULL, 4), 3u);
  EXPECT_EQ(BinOf(0xFFFFFFFFFFFFFFFFULL, 4), 3u);
}

TEST(BinOf, CoversAllBinsUnderMixedHash) {
  std::set<BinId> seen;
  for (uint64_t k = 0; k < 4096; ++k) seen.insert(BinOf(HashMix64(k), 64));
  EXPECT_EQ(seen.size(), 64u);
}

TEST(RoutingTable, InitialAssignmentIsModulo) {
  RoutingTable<uint64_t> rt(8, 4);
  for (BinId b = 0; b < 8; ++b) {
    EXPECT_EQ(rt.WorkerAt(0, b), b % 4);
    EXPECT_EQ(rt.WorkerAt(1000, b), b % 4);
  }
}

TEST(RoutingTable, VersionsTakeEffectAtTheirTime) {
  RoutingTable<uint64_t> rt(4, 2);
  rt.Apply(10, 1, 0);  // bin 1: worker 1 -> worker 0 at t=10
  EXPECT_EQ(rt.WorkerAt(9, 1), 1u);
  EXPECT_EQ(rt.WorkerAt(10, 1), 0u);
  EXPECT_EQ(rt.WorkerAt(11, 1), 0u);
  rt.Apply(20, 1, 1);
  EXPECT_EQ(rt.WorkerAt(15, 1), 0u);
  EXPECT_EQ(rt.WorkerAt(20, 1), 1u);
}

TEST(RoutingTable, OwnerBeforeIsStrict) {
  RoutingTable<uint64_t> rt(4, 2);
  rt.Apply(10, 1, 0);
  EXPECT_EQ(rt.OwnerBefore(10, 1), 1u);  // before the t=10 update
  EXPECT_EQ(rt.OwnerBefore(11, 1), 0u);
  rt.Apply(20, 1, 1);
  EXPECT_EQ(rt.OwnerBefore(20, 1), 0u);
}

TEST(RoutingTable, LastUpdateAtSameTimeWins) {
  RoutingTable<uint64_t> rt(4, 4);
  rt.Apply(10, 2, 0);
  rt.Apply(10, 2, 3);
  EXPECT_EQ(rt.WorkerAt(10, 2), 3u);
}

TEST(RoutingTable, FlatFastPathDisabledForIncomparableVersionTimes) {
  // With a partially ordered timestamp, versions on different bins can be
  // applied at mutually incomparable times; no single time then bounds
  // every version, so the flat owner array must not answer queries that
  // are ≥ one version but not the other (regression: the fast path used
  // to return bin 0's (2,0) owner for a query at (1,3)).
  using P = timely::Product<uint64_t, uint64_t>;
  RoutingTable<P> rt(4, 2);
  rt.Apply(P{2, 0}, 0, 1);  // bin 0: new owner at (2,0)
  rt.Apply(P{0, 3}, 1, 0);  // bin 1: incomparable version time (0,3)
  // (1,3) is ≥ (0,3) but NOT ≥ (2,0): bin 0 must still answer with its
  // initial owner, bin 1 with its new one.
  EXPECT_EQ(rt.WorkerAt(P{1, 3}, 0), 0u);
  EXPECT_EQ(rt.WorkerAt(P{1, 3}, 1), 0u);
  EXPECT_EQ(rt.FlatOwnersAt(P{9, 9}), nullptr);
  // A query past both versions still answers correctly via history.
  EXPECT_EQ(rt.WorkerAt(P{9, 9}, 0), 1u);
  EXPECT_EQ(rt.WorkerAt(P{9, 9}, 1), 0u);
}

TEST(RoutingTable, FlatFastPathServesSteadyStateQueries) {
  RoutingTable<uint64_t> rt(4, 2);
  EXPECT_NE(rt.FlatOwnersAt(0), nullptr);  // initial assignment is flat
  rt.Apply(10, 1, 0);
  EXPECT_EQ(rt.FlatOwnersAt(9), nullptr);   // 9 predates the t=10 version
  const uint32_t* flat = rt.FlatOwnersAt(10);
  ASSERT_NE(flat, nullptr);
  for (BinId b = 0; b < 4; ++b) EXPECT_EQ(flat[b], rt.WorkerAt(10, b));
}

TEST(RoutingTable, OutOfOrderVersionsRejected) {
  RoutingTable<uint64_t> rt(4, 2);
  rt.Apply(10, 1, 0);
  EXPECT_DEATH(rt.Apply(5, 1, 1), "time order");
}

TEST(RoutingTable, CompactKeepsQueryableHistory) {
  RoutingTable<uint64_t> rt(2, 2);
  rt.Apply(10, 0, 1);
  rt.Apply(20, 0, 0);
  rt.Apply(30, 0, 1);
  EXPECT_EQ(rt.TotalVersions(), 5u);  // 2 initial + 3
  rt.Compact(25);                     // frontier passed 25
  // Queries at times >= 25 still answer correctly.
  EXPECT_EQ(rt.WorkerAt(25, 0), 0u);
  EXPECT_EQ(rt.WorkerAt(30, 0), 1u);
  EXPECT_EQ(rt.WorkerAt(40, 0), 1u);
  EXPECT_LT(rt.TotalVersions(), 5u);
}

TEST(RoutingTable, NonPowerOfTwoBinsRejected) {
  EXPECT_DEATH(RoutingTable<uint64_t>(3, 2), "power of two");
}

TEST(Assignments, ImbalancedMovesQuarterOfBins) {
  const uint32_t bins = 64, workers = 4;
  auto init = MakeInitialAssignment(bins, workers);
  auto imb = MakeImbalancedAssignment(bins, workers);
  auto moves = DiffAssignments(init, imb);
  // Half of the bins of half of the workers move: 25% of all bins.
  EXPECT_EQ(moves.size(), bins / 4);
  for (const auto& m : moves) {
    EXPECT_LT(init[m.bin], workers / 2);       // source in lower half
    EXPECT_GE(m.worker, workers / 2);          // destination in upper half
    EXPECT_EQ(m.worker, init[m.bin] + workers / 2);
  }
}

TEST(Assignments, DiffIsEmptyForIdenticalAssignments) {
  auto a = MakeInitialAssignment(16, 4);
  EXPECT_TRUE(DiffAssignments(a, a).empty());
}

TEST(Strategies, AllAtOnceIsOneBatch) {
  auto from = MakeInitialAssignment(16, 4);
  auto to = MakeImbalancedAssignment(16, 4);
  auto moves = DiffAssignments(from, to);
  auto batches = PlanBatches(MigrationStrategy::kAllAtOnce, moves, from, 0);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].size(), moves.size());
}

TEST(Strategies, FluidIsOneBinPerBatch) {
  auto from = MakeInitialAssignment(16, 4);
  auto to = MakeImbalancedAssignment(16, 4);
  auto moves = DiffAssignments(from, to);
  auto batches = PlanBatches(MigrationStrategy::kFluid, moves, from, 0);
  EXPECT_EQ(batches.size(), moves.size());
  for (const auto& b : batches) EXPECT_EQ(b.size(), 1u);
}

TEST(Strategies, BatchedRespectsBatchSize) {
  auto from = MakeInitialAssignment(64, 4);
  auto to = MakeImbalancedAssignment(64, 4);
  auto moves = DiffAssignments(from, to);  // 16 moves
  auto batches = PlanBatches(MigrationStrategy::kBatched, moves, from, 5);
  ASSERT_EQ(batches.size(), 4u);  // ceil(16/5)
  size_t total = 0;
  for (const auto& b : batches) {
    EXPECT_LE(b.size(), 5u);
    total += b.size();
  }
  EXPECT_EQ(total, moves.size());
}

TEST(Strategies, OptimizedBatchesNeverShareEndpoints) {
  // Scatter bins across 8 workers, then rebalance to a rotation; verify
  // that within each optimized batch no worker is used twice as source or
  // destination, and that every move is emitted exactly once.
  const uint32_t bins = 64, workers = 8;
  auto from = MakeInitialAssignment(bins, workers);
  Assignment to = from;
  for (uint32_t b = 0; b < bins; ++b) to[b] = (from[b] + 1 + b % 3) % workers;
  auto moves = DiffAssignments(from, to);
  auto batches = PlanBatches(MigrationStrategy::kOptimized, moves, from, 0);

  Assignment current = from;
  size_t total = 0;
  for (const auto& batch : batches) {
    std::set<uint32_t> srcs, dsts;
    for (const auto& m : batch) {
      EXPECT_TRUE(srcs.insert(current[m.bin]).second)
          << "source worker reused within a batch";
      EXPECT_TRUE(dsts.insert(m.worker).second)
          << "destination worker reused within a batch";
    }
    for (const auto& m : batch) current[m.bin] = m.worker;
    total += batch.size();
  }
  EXPECT_EQ(total, moves.size());
  EXPECT_EQ(current, to);
  // Matching should need far fewer steps than fluid.
  EXPECT_LT(batches.size(), moves.size());
}

}  // namespace
}  // namespace megaphone
