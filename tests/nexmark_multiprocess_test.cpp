// Distributed NEXMark correctness: the deterministic Q3 harness, run as
// 2 processes x 2 workers over the TCP mesh with a fluid reconfiguration
// issued mid-run, must produce exactly the same multiset of join outputs
// as the 1-process x 4-worker run — person/auction events, routed
// records, migrating join-state bins, and control instructions all
// genuinely cross the wire.
//
// Same forking pattern as multiprocess_test: listeners are bound before
// the fork, the child runs its workers and _exits without touching gtest
// state, and the parent (process 0, hosting global worker 0) owns all
// assertions.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <vector>

#include "harness/harness.hpp"
#include "harness/launcher.hpp"
#include "harness/nexmark_workload.hpp"

namespace megaphone {
namespace {

DetNexmarkConfig TestConfig() {
  DetNexmarkConfig cfg;
  cfg.total_workers = 4;
  cfg.num_bins = 32;
  cfg.events_per_epoch = 2500;
  cfg.epochs = 6;
  cfg.migrate_at_epoch = 2;
  cfg.strategy = MigrationStrategy::kFluid;
  cfg.batch_size = 1;
  return cfg;
}

TEST(NexmarkMultiProcess, Q3FluidMigrationMatchesSingleProcess) {
  DetNexmarkConfig cfg = TestConfig();

  // Reference: 1 process x 4 workers, the classic thread runtime.
  timely::Config single;
  single.workers = 4;
  DetNexmarkResult ref = RunDeterministicNexmarkQ3(cfg, single);
  ASSERT_TRUE(ref.root);
  ASSERT_FALSE(ref.digest.empty());
  ASSERT_GT(ref.outputs, 0u) << "Q3 never joined";
  ASSERT_GT(ref.completed_batches, 0u) << "migration never ran";
  // A fluid migration issues one batch per moved bin: 25% of the bins.
  EXPECT_EQ(ref.completed_batches, cfg.num_bins / 4);

  // Same workload, 2 processes x 2 workers over TCP. Fork happens while
  // this process is single-threaded (the reference run's threads joined
  // inside Execute).
  MultiProcess mp = LaunchLoopbackProcesses(/*processes=*/2,
                                            /*workers_per_process=*/2);
  if (!mp.IsRoot()) {
    RunDeterministicNexmarkQ3(cfg, mp.config);
    _exit(0);
  }
  DetNexmarkResult dist = RunDeterministicNexmarkQ3(cfg, mp.config);
  EXPECT_EQ(WaitForChildren(mp.children), 0) << "peer process failed";

  ASSERT_TRUE(dist.root);
  EXPECT_EQ(dist.outputs, ref.outputs);
  EXPECT_EQ(dist.completed_batches, ref.completed_batches);
  EXPECT_EQ(dist.digest, ref.digest)
      << "distributed Q3 run diverged from the single-process run";
}

// Chunked state movement over the wire: the same Q3 run with join-state
// bins shipped as small flow-controlled chunk frames (MapState entry runs
// crossing the TCP mesh) must agree byte-for-byte with the 1-process
// monolithic reference.
TEST(NexmarkMultiProcess, Q3ChunkedMigrationMatchesMonolithic) {
  DetNexmarkConfig cfg = TestConfig();

  timely::Config single;
  single.workers = 4;
  DetNexmarkResult ref = RunDeterministicNexmarkQ3(cfg, single);
  ASSERT_TRUE(ref.root);

  cfg.chunk_bytes = 128;
  cfg.chunk_bytes_per_step = 256;
  MultiProcess mp = LaunchLoopbackProcesses(/*processes=*/2,
                                            /*workers_per_process=*/2);
  if (!mp.IsRoot()) {
    RunDeterministicNexmarkQ3(cfg, mp.config);
    _exit(0);
  }
  DetNexmarkResult dist = RunDeterministicNexmarkQ3(cfg, mp.config);
  EXPECT_EQ(WaitForChildren(mp.children), 0) << "peer process failed";

  ASSERT_TRUE(dist.root);
  EXPECT_EQ(dist.outputs, ref.outputs);
  EXPECT_EQ(dist.completed_batches, ref.completed_batches);
  EXPECT_EQ(dist.digest, ref.digest)
      << "chunked distributed Q3 diverged from the monolithic reference";
}

// Without the migration the distributed join alone must already agree
// (isolates transport bugs from migration bugs).
TEST(NexmarkMultiProcess, Q3NoMigrationStillExact) {
  DetNexmarkConfig cfg = TestConfig();
  cfg.migrate_at_epoch = cfg.epochs;  // disables migration
  cfg.epochs = 4;

  timely::Config single;
  single.workers = 4;
  DetNexmarkResult ref = RunDeterministicNexmarkQ3(cfg, single);
  ASSERT_TRUE(ref.root);
  EXPECT_EQ(ref.completed_batches, 0u);

  MultiProcess mp = LaunchLoopbackProcesses(2, 2);
  if (!mp.IsRoot()) {
    RunDeterministicNexmarkQ3(cfg, mp.config);
    _exit(0);
  }
  DetNexmarkResult dist = RunDeterministicNexmarkQ3(cfg, mp.config);
  EXPECT_EQ(WaitForChildren(mp.children), 0) << "peer process failed";
  EXPECT_EQ(dist.completed_batches, 0u);
  EXPECT_EQ(dist.digest, ref.digest);
}

}  // namespace
}  // namespace megaphone
