// Tests for src/common: hashing, RNG, serde, pacing, throttling.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.hpp"
#include "common/rate_limiter.hpp"
#include "common/rng.hpp"
#include "common/serde.hpp"

namespace megaphone {
namespace {

TEST(Hash, Mix64IsDeterministic) {
  EXPECT_EQ(HashMix64(42), HashMix64(42));
  EXPECT_NE(HashMix64(42), HashMix64(43));
}

TEST(Hash, HighBitsAreWellDistributed) {
  // Megaphone bins by the MOST significant bits (paper §4.2): sequential
  // keys must spread across bins.
  constexpr int kLogBins = 8;
  std::vector<int> counts(1 << kLogBins, 0);
  constexpr int kKeys = 1 << 16;
  for (uint64_t k = 0; k < kKeys; ++k) {
    uint64_t bin = HashMix64(k) >> (64 - kLogBins);
    counts[bin]++;
  }
  int expected = kKeys / (1 << kLogBins);
  for (int c : counts) {
    EXPECT_GT(c, expected / 2);
    EXPECT_LT(c, expected * 2);
  }
}

TEST(Hash, BytesDiffersByContent) {
  EXPECT_NE(HashBytes("hello"), HashBytes("hellp"));
  EXPECT_EQ(HashBytes("hello"), HashBytes("hello"));
}

TEST(Rng, SplitMixDeterministic) {
  SplitMix64 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, XoshiroDeterministicPerSeed) {
  Xoshiro256 a(1), b(1), c(2);
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    uint64_t x = a.Next();
    EXPECT_EQ(x, b.Next());
    if (x != c.Next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, NextBelowRespectsBound) {
  Xoshiro256 rng(3);
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextBelow(bound), bound);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, RoughlyUniform) {
  Xoshiro256 rng(11);
  std::vector<int> buckets(10, 0);
  for (int i = 0; i < 100000; ++i) buckets[rng.NextBelow(10)]++;
  for (int b : buckets) {
    EXPECT_GT(b, 9000);
    EXPECT_LT(b, 11000);
  }
}

template <typename T>
void RoundTrip(const T& v) {
  auto bytes = EncodeToBytes(v);
  T back = DecodeFromBytes<T>(bytes);
  EXPECT_EQ(v, back);
}

TEST(Serde, Scalars) {
  RoundTrip<uint64_t>(0);
  RoundTrip<uint64_t>(~uint64_t{0});
  RoundTrip<int32_t>(-17);
  RoundTrip<double>(3.25);
  RoundTrip<char>('x');
  RoundTrip<bool>(true);
}

TEST(Serde, Strings) {
  RoundTrip(std::string());
  RoundTrip(std::string("megaphone"));
  RoundTrip(std::string(10000, 'z'));
  RoundTrip(std::string("embedded\0null", 13));
}

TEST(Serde, PairsAndOptionals) {
  RoundTrip(std::pair<int, std::string>{4, "four"});
  RoundTrip(std::optional<int>{});
  RoundTrip(std::optional<int>{9});
  RoundTrip(std::optional<std::string>{"opt"});
}

TEST(Serde, Vectors) {
  RoundTrip(std::vector<uint64_t>{});
  RoundTrip(std::vector<uint64_t>{1, 2, 3});
  RoundTrip(std::vector<std::string>{"a", "", "ccc"});
  RoundTrip(std::vector<std::vector<int>>{{1}, {}, {2, 3}});
}

TEST(Serde, Maps) {
  RoundTrip(std::map<uint64_t, uint64_t>{{1, 10}, {2, 20}});
  RoundTrip(std::map<std::string, std::vector<int>>{{"k", {1, 2}}});
  std::unordered_map<uint64_t, std::string> um{{5, "five"}, {6, "six"}};
  auto bytes = EncodeToBytes(um);
  auto back = DecodeFromBytes<std::unordered_map<uint64_t, std::string>>(bytes);
  EXPECT_EQ(um, back);
}

struct CustomState {
  uint64_t count = 0;
  std::string tag;
  std::vector<uint32_t> history;

  bool operator==(const CustomState&) const = default;

  void Serialize(Writer& w) const {
    Encode(w, count);
    Encode(w, tag);
    Encode(w, history);
  }
  static CustomState Deserialize(Reader& r) {
    CustomState s;
    s.count = Decode<uint64_t>(r);
    s.tag = Decode<std::string>(r);
    s.history = Decode<std::vector<uint32_t>>(r);
    return s;
  }
};

TEST(Serde, CustomTypeMemberSerde) {
  CustomState s{42, "bin-7", {1, 2, 3}};
  RoundTrip(s);
  RoundTrip(std::vector<CustomState>{s, {}, s});
  RoundTrip(std::map<uint64_t, CustomState>{{3, s}});
}

TEST(Serde, PropertyRandomRoundTrips) {
  Xoshiro256 rng(1234);
  for (int iter = 0; iter < 200; ++iter) {
    std::map<uint64_t, std::vector<std::pair<uint64_t, std::string>>> m;
    int keys = static_cast<int>(rng.NextBelow(8));
    for (int k = 0; k < keys; ++k) {
      auto& v = m[rng.Next()];
      int items = static_cast<int>(rng.NextBelow(5));
      for (int i = 0; i < items; ++i) {
        v.emplace_back(rng.Next(),
                       std::string(rng.NextBelow(16), 'a' + (k % 26)));
      }
    }
    RoundTrip(m);
  }
}

TEST(Serde, DecodeChecksTrailingBytes) {
  auto bytes = EncodeToBytes<uint64_t>(7);
  bytes.push_back(0);
  EXPECT_THROW(DecodeFromBytes<uint64_t>(bytes), SerdeError);
}

TEST(Serde, DecodePastEndThrows) {
  std::vector<uint8_t> bytes{1, 2};
  EXPECT_THROW(DecodeFromBytes<uint64_t>(bytes), SerdeError);
}

TEST(Pacer, DeadlinesAreEvenlySpaced) {
  OpenLoopPacer p(1e6, 1000);  // 1M rec/s, 1us per record
  EXPECT_EQ(p.DeadlineFor(0), 1000u);
  EXPECT_EQ(p.DeadlineFor(1), 2000u);
  EXPECT_EQ(p.DeadlineFor(1000), 1001000u);
}

TEST(Pacer, RecordsDueIsOpenLoop) {
  OpenLoopPacer p(1000.0, 0);  // 1ms per record
  EXPECT_EQ(p.RecordsDueBy(0), 1u);          // record 0's deadline is t=0
  EXPECT_EQ(p.RecordsDueBy(1'000'000), 2u);  // records 0 and 1 due
  // A stall does not reduce the due count: the backlog accumulates.
  EXPECT_EQ(p.RecordsDueBy(10'000'000), 11u);
}

TEST(Pacer, FirstRecordDueExactlyAtStart) {
  // DeadlineFor(0) == start, so the due count must flip 0 -> 1 exactly at
  // the start instant, not one poll later.
  OpenLoopPacer p(1000.0, 5'000'000);
  EXPECT_EQ(p.RecordsDueBy(4'999'999), 0u);
  EXPECT_EQ(p.RecordsDueBy(5'000'000), 1u);
  EXPECT_EQ(p.RecordsDueBy(5'000'001), 1u);
  EXPECT_EQ(p.DeadlineFor(0), p.start_nanos());
}

TEST(Throttle, DisabledAdmitsEverything) {
  ByteThrottle t(0);
  EXPECT_TRUE(t.Admit(1 << 30, 0));
  EXPECT_TRUE(t.Admit(1 << 30, 0));
}

TEST(Throttle, EnforcesRate) {
  ByteThrottle t(1000);  // 1000 B/s
  uint64_t now = 1;
  EXPECT_TRUE(t.Admit(600, now));   // bucket starts full: 1000 B of credit
  EXPECT_FALSE(t.Admit(600, now));  // only 400 left
  now += 500'000'000;               // +0.5s -> 400 + 500 = 900 bytes
  EXPECT_TRUE(t.Admit(600, now));
  now += 200'000'000;               // +0.2s -> 300 + 200 = 500 bytes
  EXPECT_FALSE(t.Admit(600, now));
}

TEST(Throttle, FirstAdmitAtTimeZeroGetsFullBucket) {
  // Clocks may legitimately start at 0: the first Admit must still see a
  // full bucket (the old sentinel conflated now==0 with "never refilled").
  ByteThrottle t(1000);
  EXPECT_TRUE(t.Admit(1000, 0));
  EXPECT_FALSE(t.Admit(1, 0));  // drained, and no time has passed
  EXPECT_TRUE(t.Admit(1, 1'000'000));  // 1 ms -> 1 byte of credit
}

TEST(Throttle, CreditCapsAtOneSecond) {
  ByteThrottle t(1000);
  uint64_t now = 1;
  EXPECT_TRUE(t.Admit(1000, now));  // drain the initial full bucket
  now += 60ULL * 1'000'000'000;  // one minute idle
  EXPECT_TRUE(t.Admit(1000, now));
  EXPECT_FALSE(t.Admit(500, now));  // cap was 1s worth, not 60s
}

}  // namespace
}  // namespace megaphone
