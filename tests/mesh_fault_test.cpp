// Mesh robustness under injected transport faults and dead peers.
//
// The go-back-N reliability layer must heal seeded drop / duplicate /
// delay / corrupt faults transparently (frames arrive exactly once, in
// order, intact); a partitioned or killed peer must trip the heartbeat
// deadline and surface as PeerFailed / PeerDownError on the survivor —
// never as a hang in the lockstep wait or the goodbye barrier.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.hpp"
#include "harness/harness.hpp"
#include "harness/launcher.hpp"
#include "net/net.hpp"

namespace megaphone {
namespace {

using net::BindListener;
using net::ListenerPort;
using net::MeshOptions;
using net::NetMesh;

// Two connected meshes in this process, with per-side option tweaks.
struct FaultyMeshPair {
  std::unique_ptr<NetMesh> m0;
  std::unique_ptr<NetMesh> m1;

  FaultyMeshPair(const fault::FaultSpec& fault0, const fault::FaultSpec& fault1,
                 uint64_t heartbeat_ms = 25, uint64_t peer_deadline_ms = 10'000) {
    int l0 = BindListener("127.0.0.1", 0, 2);
    int l1 = BindListener("127.0.0.1", 0, 2);
    std::vector<std::string> addresses = {
        "127.0.0.1:" + std::to_string(ListenerPort(l0)),
        "127.0.0.1:" + std::to_string(ListenerPort(l1)),
    };
    auto opts = [&](uint32_t index, int fd, const fault::FaultSpec& f) {
      MeshOptions o;
      o.processes = 2;
      o.process_index = index;
      o.workers_per_process = 2;
      o.addresses = addresses;
      o.listen_fd = fd;
      o.heartbeat_ms = heartbeat_ms;
      o.peer_deadline_ms = peer_deadline_ms;
      o.fault = f;
      return o;
    };
    std::thread t1([&] { m1 = std::make_unique<NetMesh>(opts(1, l1, fault1)); });
    m0 = std::make_unique<NetMesh>(opts(0, l0, fault0));
    t1.join();
  }

  void Shutdown(bool force = false) {
    std::thread t([&] { m1->Shutdown(force); });
    m0->Shutdown(force);
    t.join();
  }
};

TEST(MeshFault, FaultSpecParseAndFormat) {
  fault::FaultSpec f = fault::FaultSpec::Parse(
      "seed=7,drop=0.125,dup=0.25,delay=0.5,delay-us=50,corrupt=0.0625,"
      "partition=100,kill=200");
  EXPECT_EQ(f.seed, 7u);
  EXPECT_EQ(f.drop_p, 0.125);
  EXPECT_EQ(f.dup_p, 0.25);
  EXPECT_EQ(f.delay_p, 0.5);
  EXPECT_EQ(f.delay_us, 50u);
  EXPECT_EQ(f.corrupt_p, 0.0625);
  EXPECT_EQ(f.partition_after, 100u);
  EXPECT_EQ(f.kill_after, 200u);
  EXPECT_TRUE(f.Enabled());
  EXPECT_FALSE(fault::FaultSpec{}.Enabled());
  // ToString -> Parse is the identity on every knob.
  fault::FaultSpec back = fault::FaultSpec::Parse(f.ToString());
  EXPECT_EQ(back.seed, f.seed);
  EXPECT_EQ(back.drop_p, f.drop_p);
  EXPECT_EQ(back.kill_after, f.kill_after);
}

// Seeded drop + dup + delay + corrupt on both directions: every data and
// progress frame still arrives exactly once, in order, with its original
// bytes. (Retransmits and protocol frames are exempt from injection, so
// healing is guaranteed to converge.)
TEST(MeshFault, ReliabilityHealsDropDupCorruptDelay) {
  fault::FaultSpec f;
  f.seed = 3;
  f.drop_p = 0.08;
  f.dup_p = 0.08;
  f.delay_p = 0.05;
  f.delay_us = 100;
  f.corrupt_p = 0.05;
  FaultyMeshPair pair(f, f);

  std::mutex mu;
  std::vector<uint64_t> at_m1;
  std::vector<uint64_t> at_m0;
  pair.m1->RegisterDataHandler(0, 4, [&](uint32_t target, Reader& r) {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_EQ(target, 2u);
    at_m1.push_back(Decode<uint64_t>(r));
  });
  pair.m0->RegisterProgressHandler(1, [&](Reader& r) {
    std::lock_guard<std::mutex> lock(mu);
    at_m0.push_back(Decode<uint64_t>(r));
  });

  constexpr uint64_t kFrames = 300;
  for (uint64_t i = 0; i < kFrames; ++i) {
    pair.m0->SendData(0, 4, /*target=*/2, EncodeToBytes(i));
    pair.m1->BroadcastProgress(1, EncodeToBytes(i * 3));
  }
  // The goodbye exchange retransmits any outstanding tail before the
  // final acks, so after Shutdown the streams are complete.
  pair.Shutdown();

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(at_m1.size(), kFrames);
  ASSERT_EQ(at_m0.size(), kFrames);
  for (uint64_t i = 0; i < kFrames; ++i) {
    EXPECT_EQ(at_m1[i], i);
    EXPECT_EQ(at_m0[i], i * 3);
  }
  EXPECT_FALSE(pair.m0->PeerFailed());
  EXPECT_FALSE(pair.m1->PeerFailed());
}

// After `partition_after` frames every write from m0 (heartbeats
// included) is blackholed; both sides must conclude the link is dead
// within the peer deadline — m1 by rx silence, m0 because the dead m1
// stops talking back.
TEST(MeshFault, PartitionTripsDeadlineBothSides) {
  fault::FaultSpec f;
  f.partition_after = 20;
  FaultyMeshPair pair(f, fault::FaultSpec{}, /*heartbeat_ms=*/25,
                      /*peer_deadline_ms=*/300);

  for (uint64_t i = 0; i < 40; ++i) {
    pair.m0->SendData(0, 1, /*target=*/2, EncodeToBytes(i));
  }
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while ((!pair.m0->PeerFailed() || !pair.m1->PeerFailed()) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(pair.m1->PeerFailed()) << "rx-silent peer not detected";
  EXPECT_TRUE(pair.m0->PeerFailed()) << "mute peer not detected";
  EXPECT_FALSE(pair.m1->FailureReason().empty());
  pair.Shutdown(/*force=*/true);
}

// Satellite regression: a peer that is SIGKILLed mid-run (no goodbye, no
// flush) must produce a clean PeerDownError on the survivor — the mesh
// shutdown used to hang waiting for the goodbye barrier.
TEST(MeshFault, KilledPeerSurfacesPeerDownErrorNotHang) {
  DetCountConfig cfg;
  cfg.total_workers = 4;
  cfg.num_bins = 32;
  cfg.domain = 1 << 10;
  cfg.records_per_epoch = 1024;
  cfg.epochs = 8;
  cfg.migrate_at_epoch = cfg.epochs;  // no migration; isolate the mesh
  cfg.die_at_epoch = 3;
  cfg.die_process = 1;

  MultiProcess mp = LaunchLoopbackProcesses(2, 2);
  mp.config.heartbeat_ms = 50;
  mp.config.peer_deadline_ms = 2000;
  if (!mp.IsRoot()) {
    RunDeterministicCount(cfg, mp.config);
    ::_exit(9);  // unreachable: the child dies inside the epoch loop
  }
  bool aborted = false;
  try {
    RunDeterministicCount(cfg, mp.config);
  } catch (const timely::PeerDownError&) {
    aborted = true;
  }
  EXPECT_TRUE(aborted) << "survivor completed against a dead mesh";
  EXPECT_NE(WaitForChildren(mp.children), 0);
}

// kill_after: the injector SIGKILLs the process from inside the transport
// write path — the crash lands at an arbitrary frame boundary, unlike the
// epoch-aligned die_at_epoch. The survivor still reports cleanly.
TEST(MeshFault, KillAfterFramesInjection) {
  DetCountConfig cfg;
  cfg.total_workers = 4;
  cfg.num_bins = 32;
  cfg.domain = 1 << 10;
  cfg.records_per_epoch = 1024;
  cfg.epochs = 10;
  cfg.migrate_at_epoch = cfg.epochs;

  MultiProcess mp = LaunchLoopbackProcesses(2, 2);
  mp.config.heartbeat_ms = 50;
  mp.config.peer_deadline_ms = 2000;
  if (!mp.IsRoot()) {
    mp.config.fault.kill_after = 100;
    RunDeterministicCount(cfg, mp.config);
    ::_exit(9);  // unreachable
  }
  bool aborted = false;
  try {
    RunDeterministicCount(cfg, mp.config);
  } catch (const timely::PeerDownError&) {
    aborted = true;
  }
  EXPECT_TRUE(aborted);
  EXPECT_NE(WaitForChildren(mp.children), 0);
}

}  // namespace
}  // namespace megaphone
