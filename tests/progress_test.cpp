// Tests for the progress tracker: graph construction, reachability, and
// frontier propagation under pointstamp count changes.
#include <gtest/gtest.h>

#include <cstdint>

#include "timely/progress.hpp"

namespace timely {
namespace {

// Builds a 3-node chain: Input(1 out) -> Op(1 in, 1 out) -> Sink(1 in).
struct Chain {
  GraphSpec spec;
  uint32_t input_out, op_in, op_out, sink_in;

  Chain() {
    uint32_t input = spec.AddNode("input");
    input_out = spec.AddOutputPort(input);
    uint32_t op = spec.AddNode("op");
    op_in = spec.AddInputPort(op);
    op_out = spec.AddOutputPort(op);
    uint32_t sink = spec.AddNode("sink");
    sink_in = spec.AddInputPort(sink);
    spec.AddEdge(input_out, op_in);
    spec.AddEdge(op_out, sink_in);
  }
};

TEST(GraphSpec, LocationsAreDense) {
  Chain c;
  EXPECT_EQ(c.input_out, 0u);
  EXPECT_EQ(c.op_in, 1u);
  EXPECT_EQ(c.op_out, 2u);
  EXPECT_EQ(c.sink_in, 3u);
  EXPECT_EQ(c.spec.num_locations(), 4u);
  EXPECT_FALSE(c.spec.IsInputLoc(c.input_out));
  EXPECT_TRUE(c.spec.IsInputLoc(c.op_in));
  EXPECT_TRUE(c.spec.IsInputLoc(c.sink_in));
}

TEST(GraphSpec, InputsBeforeOutputsEnforced) {
  GraphSpec spec;
  uint32_t n = spec.AddNode("bad");
  spec.AddOutputPort(n);
  EXPECT_DEATH(spec.AddInputPort(n), "inputs must be added before");
}

TEST(Progress, CapabilityAtSourceHoldsDownstreamFrontiers) {
  Chain c;
  ProgressTracker<uint64_t> t;
  t.Finalize(c.spec);
  t.ApplyOne(c.input_out, 0, +1);  // input capability at epoch 0

  auto f_op = t.FrontierAt(c.op_in);
  ASSERT_EQ(f_op.elements().size(), 1u);
  EXPECT_EQ(f_op.elements()[0], 0u);
  auto f_sink = t.FrontierAt(c.sink_in);
  ASSERT_EQ(f_sink.elements().size(), 1u);
  EXPECT_EQ(f_sink.elements()[0], 0u);
}

TEST(Progress, CapabilityDowngradeAdvancesFrontier) {
  Chain c;
  ProgressTracker<uint64_t> t;
  t.Finalize(c.spec);
  t.ApplyOne(c.input_out, 0, +1);
  Change<uint64_t> ch[2] = {{c.input_out, 5, +1}, {c.input_out, 0, -1}};
  t.Apply(std::span<const Change<uint64_t>>(ch, 2));
  EXPECT_EQ(t.FrontierAt(c.sink_in).elements()[0], 5u);
}

TEST(Progress, QueuedMessageHoldsFrontierAtItsOwnPort) {
  Chain c;
  ProgressTracker<uint64_t> t;
  t.Finalize(c.spec);
  t.ApplyOne(c.input_out, 10, +1);  // source at 10
  t.ApplyOne(c.op_in, 3, +2);       // two queued messages at time 3

  // The op's input frontier is held at 3 by its own queue.
  EXPECT_EQ(t.FrontierAt(c.op_in).elements()[0], 3u);
  // The sink's frontier is also held at 3: those messages may produce
  // output at time >= 3 when processed.
  EXPECT_EQ(t.FrontierAt(c.sink_in).elements()[0], 3u);

  t.ApplyOne(c.op_in, 3, -2);  // consumed
  EXPECT_EQ(t.FrontierAt(c.op_in).elements()[0], 10u);
  EXPECT_EQ(t.FrontierAt(c.sink_in).elements()[0], 10u);
}

TEST(Progress, MessageAtDownstreamDoesNotHoldUpstream) {
  Chain c;
  ProgressTracker<uint64_t> t;
  t.Finalize(c.spec);
  t.ApplyOne(c.input_out, 10, +1);
  t.ApplyOne(c.sink_in, 3, +1);  // message queued at the sink only
  // The op input frontier is NOT affected by downstream pointstamps.
  EXPECT_EQ(t.FrontierAt(c.op_in).elements()[0], 10u);
  EXPECT_EQ(t.FrontierAt(c.sink_in).elements()[0], 3u);
  t.ApplyOne(c.sink_in, 3, -1);
}

TEST(Progress, OperatorCapabilityHoldsOnlyDownstream) {
  Chain c;
  ProgressTracker<uint64_t> t;
  t.Finalize(c.spec);
  t.ApplyOne(c.input_out, 10, +1);
  t.ApplyOne(c.op_out, 4, +1);  // op retained a capability at 4
  EXPECT_EQ(t.FrontierAt(c.op_in).elements()[0], 10u);
  EXPECT_EQ(t.FrontierAt(c.sink_in).elements()[0], 4u);
  t.ApplyOne(c.op_out, 4, -1);
  EXPECT_EQ(t.FrontierAt(c.sink_in).elements()[0], 10u);
}

TEST(Progress, CompletionWhenAllCountsDrain) {
  Chain c;
  ProgressTracker<uint64_t> t;
  t.Finalize(c.spec);
  EXPECT_TRUE(t.Complete());  // vacuously complete before any capability
  t.ApplyOne(c.input_out, 0, +1);
  EXPECT_FALSE(t.Complete());
  t.ApplyOne(c.op_in, 0, +5);
  t.ApplyOne(c.input_out, 0, -1);
  EXPECT_FALSE(t.Complete());
  t.ApplyOne(c.op_in, 0, -5);
  EXPECT_TRUE(t.Complete());
  // Empty frontiers everywhere once complete.
  EXPECT_TRUE(t.FrontierAt(c.sink_in).empty());
}

TEST(Progress, VersionBumpsOnlyOnFrontierChanges) {
  Chain c;
  ProgressTracker<uint64_t> t;
  t.Finalize(c.spec);
  t.ApplyOne(c.input_out, 0, +1);
  uint64_t v1 = t.version();
  t.ApplyOne(c.op_in, 5, +1);  // time 5 queued; frontiers still at 0
  EXPECT_EQ(t.version(), v1);
  t.ApplyOne(c.op_in, 5, -1);
  EXPECT_EQ(t.version(), v1);
}

TEST(Progress, SnapshotMatchesPerPortQueries) {
  Chain c;
  ProgressTracker<uint64_t> t;
  t.Finalize(c.spec);
  t.ApplyOne(c.input_out, 7, +1);
  std::vector<Antichain<uint64_t>> snap;
  t.SnapshotFrontiers(snap);
  ASSERT_EQ(snap.size(), 2u);  // two input ports: op_in, sink_in
  EXPECT_TRUE(snap[static_cast<size_t>(t.PortIndexOf(c.op_in))] ==
              t.FrontierAt(c.op_in));
  EXPECT_TRUE(snap[static_cast<size_t>(t.PortIndexOf(c.sink_in))] ==
              t.FrontierAt(c.sink_in));
}

TEST(Progress, DiamondReachability) {
  // Input -> A, Input -> B, A -> Join, B -> Join.
  GraphSpec spec;
  uint32_t input = spec.AddNode("input");
  uint32_t input_out = spec.AddOutputPort(input);
  uint32_t a = spec.AddNode("A");
  uint32_t a_in = spec.AddInputPort(a);
  uint32_t a_out = spec.AddOutputPort(a);
  uint32_t b = spec.AddNode("B");
  uint32_t b_in = spec.AddInputPort(b);
  uint32_t b_out = spec.AddOutputPort(b);
  uint32_t join = spec.AddNode("join");
  uint32_t join_in1 = spec.AddInputPort(join);
  uint32_t join_in2 = spec.AddInputPort(join);
  spec.AddEdge(input_out, a_in);
  spec.AddEdge(input_out, b_in);
  spec.AddEdge(a_out, join_in1);
  spec.AddEdge(b_out, join_in2);

  ProgressTracker<uint64_t> t;
  t.Finalize(spec);
  t.ApplyOne(input_out, 2, +1);
  t.ApplyOne(a_out, 9, +1);  // A holds a capability at 9

  // join_in1 sees min(2 via input->A, 9) = 2; join_in2 sees 2.
  EXPECT_EQ(t.FrontierAt(join_in1).elements()[0], 2u);
  EXPECT_EQ(t.FrontierAt(join_in2).elements()[0], 2u);

  // Downgrade input past A's capability: join_in1 held at 9 by A, while
  // join_in2 advances with the input.
  Change<uint64_t> ch[2] = {{input_out, 20, +1}, {input_out, 2, -1}};
  t.Apply(std::span<const Change<uint64_t>>(ch, 2));
  EXPECT_EQ(t.FrontierAt(join_in1).elements()[0], 9u);
  EXPECT_EQ(t.FrontierAt(join_in2).elements()[0], 20u);
}

TEST(Progress, CyclicGraphRejected) {
  GraphSpec spec;
  uint32_t a = spec.AddNode("A");
  uint32_t a_in = spec.AddInputPort(a);
  uint32_t a_out = spec.AddOutputPort(a);
  uint32_t b = spec.AddNode("B");
  uint32_t b_in = spec.AddInputPort(b);
  uint32_t b_out = spec.AddOutputPort(b);
  spec.AddEdge(a_out, b_in);
  spec.AddEdge(b_out, a_in);
  ProgressTracker<uint64_t> t;
  EXPECT_DEATH(t.Finalize(spec), "acyclic");
}

TEST(Progress, MismatchedSpecsRejected) {
  Chain c;
  ProgressTracker<uint64_t> t;
  t.Finalize(c.spec);
  GraphSpec other;
  uint32_t n = other.AddNode("solo");
  other.AddOutputPort(n);
  EXPECT_DEATH(t.Finalize(other), "structurally different");
}

// --- change-batch consolidation ------------------------------------------

TEST(Consolidate, MergesByLocAndTimeAndDropsZeros) {
  std::vector<Change<uint64_t>> batch = {
      {2, 5, +3}, {1, 5, +1}, {2, 5, -1}, {2, 7, +4},
      {1, 5, -1}, {2, 7, -4}, {0, 1, +2},
  };
  ConsolidateChanges(batch);
  // Expected survivors, sorted by (loc, time): (0,1,+2), (2,5,+2).
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].loc, 0u);
  EXPECT_EQ(batch[0].time, 1u);
  EXPECT_EQ(batch[0].delta, 2);
  EXPECT_EQ(batch[1].loc, 2u);
  EXPECT_EQ(batch[1].time, 5u);
  EXPECT_EQ(batch[1].delta, 2);
}

TEST(Consolidate, FullyNettingBatchBecomesEmpty) {
  std::vector<Change<uint64_t>> batch = {
      {3, 9, +7}, {3, 9, -4}, {3, 9, -3}, {5, 2, +1}, {5, 2, -1},
  };
  ConsolidateChanges(batch);
  EXPECT_TRUE(batch.empty());
  std::vector<Change<uint64_t>> single = {{0, 0, 0}};
  ConsolidateChanges(single);
  EXPECT_TRUE(single.empty());
}

TEST(Consolidate, BatchedApplyMatchesUnbatchedFrontiers) {
  // The same change sequence applied one at a time and as one
  // consolidated batch must produce identical frontiers everywhere.
  std::vector<Change<uint64_t>> changes = {
      {0, 3, +1}, {0, 5, +2}, {1, 3, +4}, {0, 5, -2},
      {1, 3, -4}, {1, 4, +1}, {2, 4, +2}, {2, 4, -1},
  };
  Chain a_chain, b_chain;
  ProgressTracker<uint64_t> unbatched, batched;
  unbatched.Finalize(a_chain.spec);
  batched.Finalize(b_chain.spec);
  for (const auto& c : changes) unbatched.ApplyOne(c.loc, c.time, c.delta);
  std::vector<Change<uint64_t>> batch = changes;
  ConsolidateChanges(batch);
  EXPECT_LT(batch.size(), changes.size());
  batched.Apply(std::span<const Change<uint64_t>>(batch.data(), batch.size()));
  for (uint32_t loc : {a_chain.op_in, a_chain.sink_in}) {
    EXPECT_EQ(unbatched.FrontierAt(loc) == batched.FrontierAt(loc), true)
        << "port frontiers diverge at loc " << loc;
  }
  EXPECT_EQ(unbatched.Complete(), batched.Complete());
}

}  // namespace
}  // namespace timely
