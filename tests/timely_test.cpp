// End-to-end tests of the timely dataflow engine: operators, exchange,
// probes, notifications, capabilities, and termination.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "timely/timely.hpp"

namespace timely {
namespace {

using megaphone::HashMix64;

TEST(Timely, MapPipelineSingleWorker) {
  std::vector<uint64_t> results;
  std::mutex mu;
  Execute(Config{1}, [&](Worker& w) {
    auto handles = w.Dataflow<uint64_t>([&](Scope<uint64_t>& s) {
      auto [in, stream] = NewInput<uint64_t>(s);
      auto doubled = Map(stream, [](uint64_t x) { return 2 * x; });
      Sink(doubled, [&](const uint64_t&, std::vector<uint64_t>& data) {
        std::lock_guard<std::mutex> lock(mu);
        for (auto d : data) results.push_back(d);
      });
      return std::make_pair(in, Probe(doubled));
    });
    auto& [input, probe] = handles;
    for (uint64_t i = 0; i < 100; ++i) input->Send(i);
    input->AdvanceTo(1);
    w.StepUntil([&] { return !probe.LessThan(1); });
    input->Close();
  });
  ASSERT_EQ(results.size(), 100u);
  for (size_t i = 0; i < results.size(); ++i) EXPECT_EQ(results[i], 2 * i);
}

TEST(Timely, FilterDropsRecords) {
  std::atomic<uint64_t> count{0};
  Execute(Config{1}, [&](Worker& w) {
    auto input = w.Dataflow<uint64_t>([&](Scope<uint64_t>& s) {
      auto [in, stream] = NewInput<uint64_t>(s);
      auto evens = Filter(stream, [](const uint64_t& x) { return x % 2 == 0; });
      Sink(evens, [&](const uint64_t&, std::vector<uint64_t>& data) {
        count += data.size();
      });
      return in;
    });
    for (uint64_t i = 0; i < 1000; ++i) input->Send(i);
    input->Close();
  });
  EXPECT_EQ(count.load(), 500u);
}

TEST(Timely, FlatMapExpandsRecords) {
  std::atomic<uint64_t> sum{0};
  Execute(Config{1}, [&](Worker& w) {
    auto input = w.Dataflow<uint64_t>([&](Scope<uint64_t>& s) {
      auto [in, stream] = NewInput<uint64_t>(s);
      auto out = FlatMap<uint64_t>(stream, [](uint64_t x, auto emit) {
        emit(x);
        emit(x + 1);
      });
      Sink(out, [&](const uint64_t&, std::vector<uint64_t>& data) {
        for (auto d : data) sum += d;
      });
      return in;
    });
    input->Send(10);
    input->Send(20);
    input->Close();
  });
  EXPECT_EQ(sum.load(), 10u + 11u + 20u + 21u);
}

TEST(Timely, PipelinePreservesOrderSingleWorker) {
  std::vector<uint64_t> results;
  std::mutex mu;
  Execute(Config{1}, [&](Worker& w) {
    auto input = w.Dataflow<uint64_t>([&](Scope<uint64_t>& s) {
      auto [in, stream] = NewInput<uint64_t>(s);
      Sink(stream, [&](const uint64_t&, std::vector<uint64_t>& data) {
        std::lock_guard<std::mutex> lock(mu);
        for (auto d : data) results.push_back(d);
      });
      return in;
    });
    for (uint64_t i = 0; i < 5000; ++i) input->Send(i);
    input->Close();
  });
  ASSERT_EQ(results.size(), 5000u);
  for (size_t i = 0; i < results.size(); ++i) EXPECT_EQ(results[i], i);
}

class TimelyWorkers : public ::testing::TestWithParam<uint32_t> {};

TEST_P(TimelyWorkers, ExchangePartitionsByKey) {
  const uint32_t workers = GetParam();
  constexpr uint64_t kKeys = 1000;
  std::mutex mu;
  std::map<uint64_t, std::set<uint32_t>> seen_on;  // key -> workers
  std::map<uint64_t, int> count;

  Execute(Config{workers}, [&](Worker& w) {
    auto input = w.Dataflow<uint64_t>([&](Scope<uint64_t>& s) {
      auto [in, stream] = NewInput<uint64_t>(s);
      auto exchanged =
          Exchange(stream, [](const uint64_t& x) { return HashMix64(x); });
      uint32_t me = s.worker();
      Sink(exchanged, [&, me](const uint64_t&, std::vector<uint64_t>& data) {
        std::lock_guard<std::mutex> lock(mu);
        for (auto d : data) {
          seen_on[d].insert(me);
          count[d]++;
        }
      });
      return in;
    });
    // Each worker injects a disjoint share of the keys.
    for (uint64_t i = w.index(); i < kKeys; i += w.peers()) input->Send(i);
    input->Close();
  });

  ASSERT_EQ(count.size(), kKeys);
  for (auto& [key, workers_seen] : seen_on) {
    EXPECT_EQ(workers_seen.size(), 1u) << "key on multiple workers";
    EXPECT_EQ(*workers_seen.begin(), HashMix64(key) % workers);
    EXPECT_EQ(count[key], 1);
  }
}

TEST_P(TimelyWorkers, BroadcastReachesAllWorkers) {
  const uint32_t workers = GetParam();
  std::atomic<uint64_t> received{0};
  Execute(Config{workers}, [&](Worker& w) {
    auto input = w.Dataflow<uint64_t>([&](Scope<uint64_t>& s) {
      auto [in, stream] = NewInput<uint64_t>(s);
      OperatorBuilder<uint64_t> b(s, "BroadcastSink");
      auto* h = b.AddInput(stream, Pact<uint64_t>::Broadcast());
      b.Build([h, &received](OpCtx<uint64_t>&) {
        h->ForEach([&](const uint64_t&, std::vector<uint64_t>& data) {
          received += data.size();
        });
      });
      return in;
    });
    if (w.index() == 0) {
      for (int i = 0; i < 10; ++i) input->Send(i);
    }
    input->Close();
  });
  EXPECT_EQ(received.load(), 10u * workers);
}

TEST_P(TimelyWorkers, SumInvariantUnderDoubleExchange) {
  const uint32_t workers = GetParam();
  constexpr uint64_t kRecords = 20000;
  std::atomic<uint64_t> sum{0};
  Execute(Config{workers}, [&](Worker& w) {
    auto input = w.Dataflow<uint64_t>([&](Scope<uint64_t>& s) {
      auto [in, stream] = NewInput<uint64_t>(s);
      auto once =
          Exchange(stream, [](const uint64_t& x) { return HashMix64(x); });
      auto twice =
          Exchange(once, [](const uint64_t& x) { return HashMix64(x + 1); });
      Sink(twice, [&](const uint64_t&, std::vector<uint64_t>& data) {
        for (auto d : data) sum += d;
      });
      return in;
    });
    for (uint64_t i = w.index(); i < kRecords; i += w.peers()) {
      input->Send(i);
      if (i % 1024 == 0) w.Step();  // interleave stepping with sending
    }
    input->Close();
  });
  EXPECT_EQ(sum.load(), kRecords * (kRecords - 1) / 2);
}

TEST_P(TimelyWorkers, ProbeTracksEpochs) {
  const uint32_t workers = GetParam();
  Execute(Config{workers}, [&](Worker& w) {
    auto handles = w.Dataflow<uint64_t>([&](Scope<uint64_t>& s) {
      auto [in, stream] = NewInput<uint64_t>(s);
      auto ex = Exchange(stream, [](const uint64_t& x) { return x; });
      return std::make_pair(in, Probe(ex));
    });
    auto& [input, probe] = handles;
    for (uint64_t epoch = 0; epoch < 10; ++epoch) {
      EXPECT_TRUE(probe.LessThan(epoch + 1));
      input->Send(epoch * 100 + w.index());
      input->AdvanceTo(epoch + 1);
      w.StepUntil([&] { return !probe.LessThan(epoch + 1); });
      // All data at times < epoch+1 is now fully processed.
      EXPECT_FALSE(probe.LessThan(epoch + 1));
    }
    input->Close();
    w.StepUntil([&] { return probe.Done(); });
  });
}

TEST_P(TimelyWorkers, NotificationsFireInTimestampOrder) {
  const uint32_t workers = GetParam();
  std::mutex mu;
  std::map<uint64_t, uint64_t> sums;          // time -> global sum
  std::vector<uint64_t> delivery_order;       // times as delivered on w0

  Execute(Config{workers}, [&](Worker& w) {
    auto input = w.Dataflow<uint64_t>([&](Scope<uint64_t>& s) {
      auto [in, stream] = NewInput<uint64_t>(s);
      OperatorBuilder<uint64_t> b(s, "BatchSum");
      // Route everything to worker 0 for a global per-time sum.
      auto* h = b.AddInput(stream,
                           Pact<uint64_t>::Route([](const uint64_t&) {
                             return 0u;
                           }));
      auto frontier_ptr = h;
      auto notif = std::make_shared<FrontierNotificator<uint64_t>>();
      auto pending = std::make_shared<std::map<uint64_t, uint64_t>>();
      b.Build([=, &mu, &sums, &delivery_order](OpCtx<uint64_t>& ctx) {
        frontier_ptr->ForEach([&](const uint64_t& t,
                                  std::vector<uint64_t>& data) {
          for (auto d : data) (*pending)[t] += d;
          notif->NotifyAt(ctx, t);
        });
        notif->ForEachReady(ctx, {&frontier_ptr->frontier()},
                            [&](const uint64_t& t) {
                              std::lock_guard<std::mutex> lock(mu);
                              sums[t] = (*pending)[t];
                              delivery_order.push_back(t);
                              pending->erase(t);
                            });
      });
      return in;
    });
    for (uint64_t epoch = 0; epoch < 5; ++epoch) {
      for (int i = 0; i < 10; ++i) input->Send(epoch + 1);
      input->AdvanceTo(epoch + 1);
      w.Step();
    }
    input->Close();
  });

  ASSERT_EQ(sums.size(), 5u);
  for (uint64_t epoch = 0; epoch < 5; ++epoch) {
    // 10 records of value epoch+1 per worker.
    EXPECT_EQ(sums[epoch], (epoch + 1) * 10 * workers);
  }
  // Notifications were delivered in increasing timestamp order.
  for (size_t i = 1; i < delivery_order.size(); ++i) {
    EXPECT_LT(delivery_order[i - 1], delivery_order[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, TimelyWorkers,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(Timely, StatefulUnaryWordCount) {
  std::mutex mu;
  std::map<std::string, uint64_t> final_counts;
  using Word = std::pair<std::string, uint64_t>;  // (word, diff)
  Execute(Config{4}, [&](Worker& w) {
    auto input = w.Dataflow<uint64_t>([&](Scope<uint64_t>& s) {
      auto [in, stream] = NewInput<Word>(s);
      auto counts = StatefulUnary<std::map<std::string, uint64_t>, Word>(
          stream, "WordCount",
          [](const Word& w_) { return megaphone::HashBytes(w_.first); },
          [](const uint64_t& t, std::vector<Word>& data,
             std::map<std::string, uint64_t>& state, OpCtx<uint64_t>&,
             OutputHandle<Word, uint64_t>& out) {
            for (auto& [word, diff] : data) {
              state[word] += diff;
              out.Send(t, Word{word, state[word]});
            }
          });
      Sink(counts, [&](const uint64_t&, std::vector<Word>& data) {
        std::lock_guard<std::mutex> lock(mu);
        for (auto& [word, count] : data) {
          auto& c = final_counts[word];
          c = std::max(c, count);
        }
      });
      return in;
    });
    if (w.index() == 0) {
      for (int i = 0; i < 7; ++i) input->Send({"apple", 1});
      for (int i = 0; i < 3; ++i) input->Send({"banana", 1});
    } else if (w.index() == 1) {
      for (int i = 0; i < 5; ++i) input->Send({"apple", 1});
    }
    input->Close();
  });
  EXPECT_EQ(final_counts["apple"], 12u);
  EXPECT_EQ(final_counts["banana"], 3u);
}

TEST(Timely, ConcatMergesStreams) {
  std::atomic<uint64_t> total{0};
  Execute(Config{2}, [&](Worker& w) {
    auto inputs = w.Dataflow<uint64_t>([&](Scope<uint64_t>& s) {
      auto [in1, s1] = NewInput<uint64_t>(s);
      auto [in2, s2] = NewInput<uint64_t>(s);
      auto merged = Concat(s1, s2);
      Sink(merged, [&](const uint64_t&, std::vector<uint64_t>& data) {
        total += data.size();
      });
      return std::make_pair(in1, in2);
    });
    auto& [in1, in2] = inputs;
    for (int i = 0; i < 10; ++i) in1->Send(i);
    for (int i = 0; i < 20; ++i) in2->Send(i);
    in1->Close();
    in2->Close();
  });
  EXPECT_EQ(total.load(), 2u * (10 + 20));
}

TEST(Timely, MultipleDataflowsRunIndependently) {
  std::atomic<uint64_t> a{0}, b{0};
  Execute(Config{2}, [&](Worker& w) {
    auto in_a = w.Dataflow<uint64_t>([&](Scope<uint64_t>& s) {
      auto [in, stream] = NewInput<uint64_t>(s);
      Sink(stream, [&](const uint64_t&, std::vector<uint64_t>& d) {
        a += d.size();
      });
      return in;
    });
    auto in_b = w.Dataflow<uint64_t>([&](Scope<uint64_t>& s) {
      auto [in, stream] = NewInput<uint64_t>(s);
      Sink(stream, [&](const uint64_t&, std::vector<uint64_t>& d) {
        b += d.size();
      });
      return in;
    });
    in_a->Send(1);
    in_b->Send(1);
    in_b->Send(2);
    in_a->Close();
    in_b->Close();
  });
  EXPECT_EQ(a.load(), 2u);
  EXPECT_EQ(b.load(), 4u);
}

TEST(Timely, EmptyDataflowTerminates) {
  Execute(Config{4}, [&](Worker& w) {
    auto input = w.Dataflow<uint64_t>([&](Scope<uint64_t>& s) {
      auto [in, stream] = NewInput<uint64_t>(s);
      Sink(stream, [](const uint64_t&, std::vector<uint64_t>&) {});
      return in;
    });
    input->Close();
  });
  SUCCEED();
}

TEST(Timely, InputHandleClosesOnDrop) {
  // Dropping the handle (without explicit Close) must release the
  // capability so the dataflow can complete.
  Execute(Config{2}, [&](Worker& w) {
    auto input = w.Dataflow<uint64_t>([&](Scope<uint64_t>& s) {
      auto [in, stream] = NewInput<uint64_t>(s);
      Sink(stream, [](const uint64_t&, std::vector<uint64_t>&) {});
      return in;
    });
    input->Send(3);
    input.reset();  // drop
  });
  SUCCEED();
}

TEST(Timely, ProductTimestampsFlowThroughEngine) {
  using P = Product<uint64_t, uint64_t>;
  std::atomic<uint64_t> count{0};
  Execute(Config{2}, [&](Worker& w) {
    auto handles = w.Dataflow<P>([&](Scope<P>& s) {
      auto [in, stream] = NewInput<uint64_t, P>(s);
      auto ex = Exchange(stream, [](const uint64_t& x) { return x; });
      Sink(ex, [&](const P&, std::vector<uint64_t>& data) {
        count += data.size();
      });
      return std::make_pair(in, Probe(ex));
    });
    auto& [input, probe] = handles;
    input->Send(w.index());
    input->AdvanceTo(P{1, 0});
    input->Send(100 + w.index());
    input->AdvanceTo(P{1, 1});
    w.StepUntil([&] { return !probe.LessThan(P{1, 1}); });
    input->Close();
  });
  EXPECT_EQ(count.load(), 4u);
}

TEST(Timely, CapabilityRetainHoldsDownstreamFrontier) {
  // An operator that retains a capability and releases it later delays
  // downstream notification until the release.
  std::atomic<bool> released{false};
  std::atomic<bool> fired_before_release{false};
  Execute(Config{1}, [&](Worker& w) {
    auto handles = w.Dataflow<uint64_t>([&](Scope<uint64_t>& s) {
      auto [in, stream] = NewInput<uint64_t>(s);
      OperatorBuilder<uint64_t> b(s, "Holder");
      auto* h = b.AddInput(stream, Pact<uint64_t>::Pipeline());
      auto [out, held] = b.AddOutput<uint64_t>();
      auto got = std::make_shared<bool>(false);
      auto release_count = std::make_shared<int>(0);
      b.Build([=, &released](OpCtx<uint64_t>& ctx) {
        h->ForEach([&](const uint64_t& t, std::vector<uint64_t>& data) {
          if (!*got) {
            ctx.Retain(t);  // hold the frontier at t
            *got = true;
          }
          out->SendBatch(t, std::move(data));
        });
        if (*got && released.load() && *release_count == 0) {
          ctx.Release(0);
          (*release_count)++;
        }
      });
      return std::make_pair(in, Probe(held));
    });
    auto& [input, probe] = handles;
    input->Send(42);
    input->AdvanceTo(5);
    for (int i = 0; i < 100; ++i) w.Step();
    // Frontier must still be held at 0 by the retained capability.
    if (!probe.LessThan(5)) fired_before_release = true;
    released = true;
    w.StepUntil([&] { return !probe.LessThan(5); });
    input->Close();
  });
  EXPECT_FALSE(fired_before_release.load());
}

// --- batch channel APIs --------------------------------------------------

TEST(Channel, PullAllDrainsInFifoOrderPerWorker) {
  Channel<uint64_t, uint64_t> chan(2);
  for (uint64_t i = 0; i < 5; ++i) {
    Bundle<uint64_t, uint64_t> b;
    b.time = i;
    b.data = {i * 10, i * 10 + 1};
    chan.Push(0, std::move(b));
  }
  Bundle<uint64_t, uint64_t> other;
  other.time = 99;
  other.data = {99};
  chan.Push(1, std::move(other));

  std::deque<Bundle<uint64_t, uint64_t>> drained;
  EXPECT_EQ(chan.PullAll(0, drained), 5u);
  ASSERT_EQ(drained.size(), 5u);
  for (uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(drained[i].time, i);
    EXPECT_EQ(drained[i].data, (std::vector<uint64_t>{i * 10, i * 10 + 1}));
  }
  // Worker 0's queue is now empty; worker 1's bundle was untouched.
  drained.clear();
  EXPECT_EQ(chan.PullAll(0, drained), 0u);
  EXPECT_EQ(chan.PullAll(1, drained), 1u);
  EXPECT_EQ(drained.front().time, 99u);
}

TEST(Channel, PullAllAppendsWhenOutNonEmpty) {
  Channel<uint64_t, uint64_t> chan(1);
  std::deque<Bundle<uint64_t, uint64_t>> drained;
  Bundle<uint64_t, uint64_t> b1;
  b1.time = 1;
  chan.Push(0, std::move(b1));
  EXPECT_EQ(chan.PullAll(0, drained), 1u);
  Bundle<uint64_t, uint64_t> b2;
  b2.time = 2;
  chan.Push(0, std::move(b2));
  // Drain without clearing: the new bundle appends after the old one.
  EXPECT_EQ(chan.PullAll(0, drained), 1u);
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].time, 1u);
  EXPECT_EQ(drained[1].time, 2u);
}

TEST(Channel, PushManyPreservesOrderAndInterleavesWithPush) {
  Channel<uint64_t, uint64_t> chan(1);
  Bundle<uint64_t, uint64_t> first;
  first.time = 1;
  chan.Push(0, std::move(first));
  std::deque<Bundle<uint64_t, uint64_t>> batch;
  for (uint64_t t = 2; t <= 4; ++t) {
    Bundle<uint64_t, uint64_t> b;
    b.time = t;
    batch.push_back(std::move(b));
  }
  chan.PushMany(0, batch);
  EXPECT_TRUE(batch.empty());
  std::deque<Bundle<uint64_t, uint64_t>> drained;
  EXPECT_EQ(chan.PullAll(0, drained), 4u);
  for (uint64_t t = 1; t <= 4; ++t) EXPECT_EQ(drained[t - 1].time, t);
}

TEST(Channel, BufferPoolRecyclesCapacity) {
  Channel<uint64_t, uint64_t> chan(1);
  // A dry pool yields an empty buffer.
  std::vector<uint64_t> fresh = chan.AcquireBuffer(0);
  EXPECT_EQ(fresh.capacity(), 0u);

  std::vector<uint64_t> buf;
  buf.reserve(1024);
  buf.push_back(7);
  const uint64_t* data = buf.data();
  chan.RecycleBuffer(std::move(buf), 0);
  EXPECT_EQ(chan.PooledBuffers(), 1u);

  std::vector<uint64_t> reused = chan.AcquireBuffer(0);
  EXPECT_TRUE(reused.empty());            // recycled buffers come back clean
  EXPECT_GE(reused.capacity(), 1024u);    // with their capacity intact
  EXPECT_EQ(reused.data(), data);         // and it is the same allocation
  EXPECT_EQ(chan.PooledBuffers(), 0u);

  // Capacity-less buffers are dropped rather than pooled.
  chan.RecycleBuffer(std::vector<uint64_t>{}, 0);
  EXPECT_EQ(chan.PooledBuffers(), 0u);
}

TEST(Channel, BufferPoolFlowsFromReceiverBackToSender) {
  // End to end: drained bundle buffers flow back through the channel pool
  // to the sender. SendBatch adopts the caller's vector as the bundle and
  // hands back a pooled buffer in its place, so once the receiver has
  // drained and recycled round N's buffer, round N+1's SendBatch must
  // return a buffer with that capacity (a dry pool returns capacity 0).
  std::atomic<uint64_t> seen{0};
  std::atomic<uint64_t> pooled_rounds{0};
  Execute(Config{1}, [&](Worker& w) {
    auto handles = w.Dataflow<uint64_t>([&](Scope<uint64_t>& s) {
      auto [in, stream] = NewInput<uint64_t>(s);
      Sink(stream, [&](const uint64_t&, std::vector<uint64_t>& data) {
        seen += data.size();
      });
      return std::make_pair(in, Probe(stream));
    });
    auto& [input, probe] = handles;
    std::vector<uint64_t> batch;
    for (int round = 0; round < 4; ++round) {
      batch.assign(2048, 1);
      input->SendBatch(std::move(batch));
      if (round > 0 && batch.capacity() >= 2048) pooled_rounds++;
      w.Step();
    }
    input->Close();
  });
  EXPECT_EQ(seen.load(), 4u * 2048u);
  // Every round after the first must have been served from the pool.
  EXPECT_EQ(pooled_rounds.load(), 3u);
}

}  // namespace
}  // namespace timely
