// Injected-fault soak: with seeded drop / duplicate / delay / corrupt
// faults on every link, the reliability layer must make the distributed
// runs produce digests byte-identical to their fault-free references —
// for the deterministic count workload and for NEXMark Q3, both with an
// in-process dual mesh (two meshes in one test process) and with real
// forked processes.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.hpp"
#include "harness/harness.hpp"
#include "harness/launcher.hpp"
#include "harness/nexmark_workload.hpp"
#include "net/net.hpp"

namespace megaphone {
namespace {

fault::FaultSpec SoakFaults() {
  fault::FaultSpec f;
  f.seed = 11;
  f.drop_p = 0.02;
  f.dup_p = 0.02;
  f.delay_p = 0.02;
  f.delay_us = 100;
  f.corrupt_p = 0.01;
  return f;
}

DetCountConfig SoakCountConfig() {
  DetCountConfig cfg;
  cfg.total_workers = 4;
  cfg.num_bins = 32;
  cfg.domain = 1 << 10;
  cfg.records_per_epoch = 2048;
  cfg.epochs = 6;
  cfg.migrate_at_epoch = 2;
  cfg.strategy = MigrationStrategy::kFluid;
  cfg.seed = 42;
  return cfg;
}

// Two meshes inside this test process (no fork): both "processes" run the
// full count workload concurrently on threads, with faults injected on
// every link. ASan/TSan see this variant, unlike the forked ones.
TEST(FaultSoak, CountDigestUnchangedUnderFaultsInProcessMesh) {
  DetCountConfig cfg = SoakCountConfig();
  timely::Config single;
  single.workers = 4;
  DetCountResult ref = RunDeterministicCount(cfg, single);
  ASSERT_TRUE(ref.root);

  int l0 = net::BindListener("127.0.0.1", 0, 2);
  int l1 = net::BindListener("127.0.0.1", 0, 2);
  std::vector<std::string> addresses = {
      "127.0.0.1:" + std::to_string(net::ListenerPort(l0)),
      "127.0.0.1:" + std::to_string(net::ListenerPort(l1)),
  };
  auto tcfg = [&](uint32_t index, int fd) {
    timely::Config tc;
    tc.workers = 2;
    tc.processes = 2;
    tc.process_index = index;
    tc.addresses = addresses;
    tc.listen_fd = fd;
    tc.fault = SoakFaults();
    return tc;
  };
  DetCountResult r1;
  std::thread peer([&] { r1 = RunDeterministicCount(cfg, tcfg(1, l1)); });
  DetCountResult r0 = RunDeterministicCount(cfg, tcfg(0, l0));
  peer.join();

  ASSERT_TRUE(r0.root);
  EXPECT_EQ(r0.digest, ref.digest)
      << "faulty transport changed the count digest";
  EXPECT_EQ(r0.distinct_keys, ref.distinct_keys);
}

TEST(FaultSoak, CountDigestUnchangedUnderFaultsForked) {
  DetCountConfig cfg = SoakCountConfig();
  timely::Config single;
  single.workers = 4;
  DetCountResult ref = RunDeterministicCount(cfg, single);
  ASSERT_TRUE(ref.root);

  DetCountResult out = RunForked(2, 2, [&](timely::Config tc) {
    tc.fault = SoakFaults();
    return RunDeterministicCount(cfg, tc);
  });
  ASSERT_TRUE(out.root);
  EXPECT_EQ(out.digest, ref.digest);
  EXPECT_EQ(out.distinct_keys, ref.distinct_keys);
}

TEST(FaultSoak, NexmarkQ3DigestUnchangedUnderFaultsForked) {
  DetNexmarkConfig cfg;
  cfg.total_workers = 4;
  cfg.num_bins = 32;
  cfg.events_per_epoch = 2000;
  cfg.epochs = 5;
  cfg.migrate_at_epoch = 2;
  cfg.strategy = MigrationStrategy::kFluid;

  timely::Config single;
  single.workers = 4;
  DetNexmarkResult ref = RunDeterministicNexmarkQ3(cfg, single);
  ASSERT_TRUE(ref.root);

  DetNexmarkResult out = RunForked(2, 2, [&](timely::Config tc) {
    tc.fault = SoakFaults();
    return RunDeterministicNexmarkQ3(cfg, tc);
  });
  ASSERT_TRUE(out.root);
  EXPECT_EQ(out.digest, ref.digest)
      << "faulty transport changed the NEXMark Q3 digest";
  EXPECT_EQ(out.outputs, ref.outputs);
}

}  // namespace
}  // namespace megaphone
