// Tests for the benchmark harness: histograms, timelines, RSS, and the
// open-loop counting workload driver.
#include <gtest/gtest.h>

#include <cstdint>

#include "harness/harness.hpp"

namespace megaphone {
namespace {

TEST(Histogram, SmallValuesAreExact) {
  Histogram h;
  for (uint64_t v = 0; v < 16; ++v) h.Add(v);
  EXPECT_EQ(h.total(), 16u);
  EXPECT_EQ(h.max(), 15u);
  EXPECT_EQ(h.Quantile(0.0), 0u);
  EXPECT_EQ(h.Quantile(1.0), 15u);
}

TEST(Histogram, BucketsAreMonotone) {
  int prev = -1;
  for (uint64_t v = 0; v < 1 << 20; v = v * 3 / 2 + 1) {
    int b = Histogram::BucketOf(v);
    EXPECT_GE(b, prev);
    prev = b;
  }
}

TEST(Histogram, BucketEdgeContainsValue) {
  for (uint64_t v : {0ULL, 1ULL, 15ULL, 16ULL, 17ULL, 1000ULL, 123456789ULL,
                     ~0ULL >> 8}) {
    int b = Histogram::BucketOf(v);
    EXPECT_GE(Histogram::BucketUpperEdge(b), v);
    if (b > 0) {
      EXPECT_LT(Histogram::BucketUpperEdge(b - 1), v);
    }
  }
}

TEST(Histogram, RelativeErrorBounded) {
  // Log-bins with 16 sub-buckets: representative value within ~7% above.
  for (uint64_t v = 100; v < 1'000'000'000; v = v * 7 / 5) {
    uint64_t rep = Histogram::BucketUpperEdge(Histogram::BucketOf(v));
    EXPECT_GE(rep, v);
    EXPECT_LT(static_cast<double>(rep - v), 0.07 * static_cast<double>(v));
  }
}

TEST(Histogram, QuantilesOfUniform) {
  Histogram h;
  for (uint64_t v = 1; v <= 10000; ++v) h.Add(v * 1000);  // 1k..10M
  double p50 = static_cast<double>(h.Quantile(0.50));
  double p99 = static_cast<double>(h.Quantile(0.99));
  EXPECT_NEAR(p50, 5'000'000, 0.1 * 5'000'000);
  EXPECT_NEAR(p99, 9'900'000, 0.1 * 9'900'000);
  EXPECT_EQ(h.max(), 10'000'000u);
}

TEST(Histogram, WeightedAdd) {
  Histogram h;
  h.Add(100, 99);
  h.Add(1'000'000, 1);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_LE(h.Quantile(0.5), 200u);
  EXPECT_GT(h.Quantile(0.995), 500'000u);
}

TEST(Histogram, MergeCombines) {
  Histogram a, b;
  a.Add(10);
  b.Add(1000);
  a.Merge(b);
  EXPECT_EQ(a.total(), 2u);
  EXPECT_EQ(a.max(), 1000u);
}

TEST(Histogram, CcdfIsDecreasingFromOne) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Add(v * 997);
  auto rows = h.Ccdf();
  ASSERT_FALSE(rows.empty());
  double prev = 1.0;
  for (auto& [ns, frac] : rows) {
    EXPECT_LE(frac, prev);
    prev = frac;
  }
  EXPECT_DOUBLE_EQ(rows.back().second, 0.0);
}

TEST(Timeline, BucketsByWallClock) {
  Timeline tl(250'000'000);
  tl.Add(0, 5'000'000);            // t=0, 5ms
  tl.Add(100'000'000, 10'000'000); // t=0.1s, 10ms
  tl.Add(600'000'000, 50'000'000); // t=0.6s, 50ms
  auto rows = tl.Rows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0].t_sec, 0.0);
  EXPECT_NEAR(rows[0].max_ms, 10.0, 1.0);
  EXPECT_EQ(rows[0].samples, 2u);
  EXPECT_NEAR(rows[1].t_sec, 0.5, 1e-9);
  EXPECT_NEAR(rows[1].max_ms, 50.0, 4.0);
}

TEST(Timeline, MaxInWindow) {
  Timeline tl(250'000'000);
  tl.Add(0, 1000);
  tl.Add(500'000'000, 9999);
  tl.Add(1'000'000'000, 777);
  EXPECT_EQ(tl.MaxIn(0, 250'000'000), 1000u);
  EXPECT_EQ(tl.MaxIn(0, 2'000'000'000), 9999u);
  EXPECT_EQ(tl.MaxIn(900'000'000, 2'000'000'000), 777u);
}

TEST(Rss, ReportsPlausibleValue) {
  uint64_t rss = CurrentRssBytes();
  EXPECT_GT(rss, 1u << 20);   // more than 1 MiB
  EXPECT_LT(rss, 1ULL << 40); // less than 1 TiB
}

TEST(Flags, ParsesKeyValueForms) {
  const char* argv[] = {"bench", "--rate=1000", "--workers", "8", "--rss"};
  Flags f(5, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(f.GetDouble("rate", 0), 1000.0);
  EXPECT_EQ(f.GetInt("workers", 0), 8u);
  EXPECT_TRUE(f.GetBool("rss", false));
  EXPECT_EQ(f.GetInt("missing", 17), 17u);
}

TEST(CountBench, SmokeRunNoMigration) {
  CountBenchConfig cfg;
  cfg.workers = 2;
  cfg.num_bins = 16;
  cfg.domain = 1 << 12;
  cfg.rate = 20'000;
  cfg.duration_ms = 500;
  cfg.mode = CountMode::kKeyCount;
  auto result = RunCountBench(cfg);
  EXPECT_GT(result.records_sent, 5'000u);
  EXPECT_GT(result.per_record.total(), 0u);
  EXPECT_TRUE(result.migrations.empty());
  EXPECT_FALSE(result.timeline.Rows().empty());
}

class CountBenchModes : public ::testing::TestWithParam<CountMode> {};

TEST_P(CountBenchModes, SmokeRunWithMigration) {
  CountBenchConfig cfg;
  cfg.workers = 2;
  cfg.num_bins = 16;
  cfg.domain = 1 << 12;
  cfg.rate = 20'000;
  cfg.duration_ms = 800;
  cfg.mode = GetParam();
  const bool is_native = cfg.mode == CountMode::kNativeHash ||
                         cfg.mode == CountMode::kNativeKey;
  if (!is_native) {
    cfg.migrations.push_back(
        {200, MakeImbalancedAssignment(cfg.num_bins, cfg.workers)});
    cfg.strategy = MigrationStrategy::kFluid;
  }
  auto result = RunCountBench(cfg);
  EXPECT_GT(result.records_sent, 0u);
  if (!is_native) {
    ASSERT_EQ(result.migrations.size(), 1u);
    EXPECT_GT(result.migrations[0].end_sec, result.migrations[0].start_sec);
    EXPECT_GE(result.migrations[0].batches, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, CountBenchModes,
                         ::testing::Values(CountMode::kHashCount,
                                           CountMode::kKeyCount,
                                           CountMode::kNativeHash,
                                           CountMode::kNativeKey,
                                           CountMode::kPadCount,
                                           CountMode::kSpillCount),
                         [](const auto& info) {
                           switch (info.param) {
                             case CountMode::kHashCount: return "HashCount";
                             case CountMode::kKeyCount: return "KeyCount";
                             case CountMode::kNativeHash: return "NativeHash";
                             case CountMode::kNativeKey: return "NativeKey";
                             case CountMode::kPadCount: return "MapState";
                             case CountMode::kSpillCount: return "LogState";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace megaphone
