// Windowed state migrates with its timers.
//
// The subtlest part of live migration is in-flight *future* work: windows
// that have opened but not yet closed. Megaphone stores post-dated records
// inside the bin (paper §3.4), so a migrating bin carries its pending
// timers. This example opens 5-epoch tumbling windows of per-sensor sums,
// migrates every bin while windows are open, and shows that each window
// still fires exactly once, at the right time, with the right sum.
//
//   build/examples/windowed_migration
#include <cstdio>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/hash.hpp"
#include "megaphone/megaphone.hpp"
#include "timely/timely.hpp"

using namespace megaphone;

int main() {
  const uint32_t workers = 4;
  const uint32_t num_bins = 16;
  const uint64_t kWindow = 5;
  const uint64_t kSensors = 12;
  using Reading = std::pair<uint64_t, uint64_t>;   // (sensor, value)
  using WindowOut = std::tuple<uint64_t, uint64_t, uint64_t>;
  // (sensor, window end, sum)

  std::mutex mu;
  std::vector<WindowOut> fired;

  struct PerSensor {
    uint64_t sum = 0;
    uint64_t window_end = 0;  // 0: no window open
    void Serialize(Writer& w) const {
      Encode(w, sum);
      Encode(w, window_end);
    }
    static PerSensor Deserialize(Reader& r) {
      PerSensor s;
      s.sum = Decode<uint64_t>(r);
      s.window_end = Decode<uint64_t>(r);
      return s;
    }
  };
  constexpr uint64_t kFlush = ~uint64_t{0};

  timely::Execute(timely::Config{workers}, [&](timely::Worker& w) {
    auto handles = w.Dataflow<uint64_t>([&](timely::Scope<uint64_t>& s) {
      auto [ctrl_in, ctrl] = timely::NewInput<ControlInst>(s);
      auto [data_in, data] = timely::NewInput<Reading>(s);
      Config cfg;
      cfg.num_bins = num_bins;
      cfg.name = "Windows";
      using BinState = std::unordered_map<uint64_t, PerSensor>;
      auto out = Unary<BinState, WindowOut>(
          ctrl, data, [](const Reading& r) { return HashMix64(r.first); },
          [kWindow, kFlush](const uint64_t& t, BinState& state,
                            std::vector<Reading>& recs, auto emit,
                            auto& sched) {
            for (auto& [sensor, value] : recs) {
              auto& ps = state[sensor];
              if (value == kFlush) {  // the window timer fires
                emit(WindowOut{sensor, t, ps.sum});
                ps.sum = 0;
                ps.window_end = 0;
                continue;
              }
              ps.sum += value;
              if (ps.window_end == 0) {
                // Open a window: post-date a flush record. It lives in the
                // bin and migrates with it.
                ps.window_end = (t / kWindow + 1) * kWindow;
                sched.ScheduleAt(ps.window_end, Reading{sensor, kFlush});
              }
            }
          },
          cfg);
      timely::Sink(out.stream, [&](const uint64_t&,
                                   std::vector<WindowOut>& d) {
        std::lock_guard<std::mutex> lock(mu);
        for (auto& o : d) fired.push_back(o);
      });
      return std::make_tuple(ctrl_in, data_in, out.probe);
    });
    auto& [ctrl_in, data_in, probe] = handles;

    typename MigrationController<uint64_t>::Options opts;
    opts.strategy = MigrationStrategy::kAllAtOnce;
    MigrationController<uint64_t> controller(ctrl_in, probe, w.index(), opts);
    Assignment init = MakeInitialAssignment(num_bins, workers);
    Assignment rotated = init;
    for (auto& o : rotated) o = (o + 1) % workers;

    for (uint64_t e = 0; e < 20; ++e) {
      if (e == 2) {
        // Windows opened at epoch 1 are pending until epoch 5 — migrate
        // everything right in the middle.
        controller.MigrateTo(init, rotated);
      }
      controller.Advance(e, e + 1);
      if (e == 1 || e == 3 || e == 8) {
        for (uint64_t sensor = w.index(); sensor < kSensors;
             sensor += workers) {
          data_in->Send(Reading{sensor, 100 + e});
        }
      }
      data_in->AdvanceTo(e + 1);
      w.StepUntil([&] { return !probe.LessThan(e > 2 ? e - 2 : 0); });
    }
    controller.Close(20);
    data_in->Close();
  });

  std::printf("windows fired (sensor, window end, sum):\n");
  std::map<uint64_t, int> per_sensor;
  for (auto& [sensor, end, sum] : fired) {
    std::printf("  sensor %2llu  window@%2llu  sum=%llu\n",
                static_cast<unsigned long long>(sensor),
                static_cast<unsigned long long>(end),
                static_cast<unsigned long long>(sum));
    per_sensor[sensor]++;
  }
  std::printf("\n%zu window firings; every sensor fired its epoch-5 window "
              "(sum 204+103) after migrating mid-window,\nand its epoch-10 "
              "window (sum 108) at the new owner.\n",
              fired.size());
  return 0;
}
