// Quickstart: a migratable word-count (the paper's running example,
// Listing 2), with a live migration mid-stream.
//
//   build/examples/quickstart
//
// Builds a 4-worker dataflow, counts words arriving on an input stream,
// then — without pausing the computation — moves every bin from its
// initial owner to the next worker and keeps counting. The counts are
// unaffected; only the placement changes.
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.hpp"
#include "megaphone/megaphone.hpp"
#include "timely/timely.hpp"

using namespace megaphone;
using Word = std::pair<std::string, int64_t>;  // (word, diff)

int main() {
  const uint32_t workers = 4;
  const uint32_t num_bins = 16;
  std::mutex mu;
  std::map<std::string, int64_t> counts;
  std::map<std::string, uint32_t> last_owner;

  timely::Execute(timely::Config{workers}, [&](timely::Worker& w) {
    // Build the dataflow: a control input for configuration updates and a
    // text input of (word, diff) pairs feeding a migratable counting
    // operator (paper Listing 2).
    auto handles = w.Dataflow<uint64_t>([&](timely::Scope<uint64_t>& s) {
      auto [ctrl_in, ctrl] = timely::NewInput<ControlInst>(s);
      auto [text_in, text] = timely::NewInput<Word>(s);

      Config cfg;
      cfg.num_bins = num_bins;
      cfg.name = "WordCount";
      using BinState = std::unordered_map<std::string, int64_t>;
      auto out = Unary<BinState, Word>(
          ctrl, text, [](const Word& wd) { return HashBytes(wd.first); },
          [](const uint64_t&, BinState& state, std::vector<Word>& words,
             auto emit, auto&) {
            for (auto& [word, diff] : words) {
              state[word] += diff;
              emit(Word{word, state[word]});
            }
          },
          cfg);

      uint32_t me = s.worker();
      timely::Sink(out.stream, [&, me](const uint64_t&,
                                       std::vector<Word>& data) {
        std::lock_guard<std::mutex> lock(mu);
        for (auto& [word, count] : data) {
          counts[word] = count;
          last_owner[word] = me;
        }
      });
      return std::make_tuple(ctrl_in, text_in, out.probe);
    });
    auto& [ctrl_in, text_in, probe] = handles;

    // A controller per worker drives the control stream; only worker 0's
    // instance actually emits configuration updates.
    typename MigrationController<uint64_t>::Options opts;
    opts.strategy = MigrationStrategy::kFluid;
    MigrationController<uint64_t> controller(ctrl_in, probe, w.index(), opts);

    const std::vector<std::string> words = {"stream", "state",   "migrate",
                                            "frontier", "bin",   "worker",
                                            "latency",  "probe"};
    Assignment initial = MakeInitialAssignment(num_bins, workers);
    Assignment rotated = initial;
    for (auto& owner : rotated) owner = (owner + 1) % workers;

    for (uint64_t epoch = 0; epoch < 60; ++epoch) {
      if (epoch == 20 && w.index() == 0) {
        std::printf("[epoch %2llu] starting fluid migration of %u bins\n",
                    static_cast<unsigned long long>(epoch), num_bins);
      }
      if (epoch == 20) controller.MigrateTo(initial, rotated);
      controller.Advance(epoch, epoch + 1);
      // Every worker contributes a share of the words each epoch.
      for (size_t i = w.index(); i < words.size(); i += workers) {
        text_in->Send(Word{words[i], 1});
      }
      text_in->AdvanceTo(epoch + 1);
      w.StepUntil([&] { return !probe.LessThan(epoch > 2 ? epoch - 2 : 0); });
    }
    controller.Close(60);
    text_in->Close();
  });

  std::printf("\nfinal counts (each word appeared once per epoch):\n");
  for (auto& [word, count] : counts) {
    std::printf("  %-10s %3lld  (last applied on worker %u)\n", word.c_str(),
                static_cast<long long>(count), last_owner[word]);
  }
  std::printf("\nall words were counted 60 times across a live migration.\n");
  return 0;
}
