// NEXMark Q3 with live migration: runs the incremental person⋈auction
// join under an open-loop event stream, rebalances its state twice with
// the batched strategy, and prints the latency timeline — a miniature of
// the paper's Figure 7 experiment, as a library user would run it.
//
// With --processes=P the binary self-forks into a P-process TCP mesh:
// join state migrates across OS processes mid-stream and each process
// contributes its own latency shard to the printed (merged) timeline.
//
//   build/example_nexmark_q3_live [--rate N] [--duration_ms N]
//                                 [--processes P] [--workers W]
#include <cstdio>

#include "harness/launcher.hpp"
#include "harness/nexmark_workload.hpp"

using namespace megaphone;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint32_t processes =
      static_cast<uint32_t>(flags.GetInt("processes", 1));
  const uint32_t workers = static_cast<uint32_t>(flags.GetInt("workers",
                                                              4));
  NexmarkBenchConfig cfg;
  cfg.query = 3;
  cfg.use_megaphone = true;
  cfg.workers = processes * workers;
  cfg.rate = flags.GetDouble("rate", 40'000);
  cfg.duration_ms = flags.GetInt("duration_ms", 4000);
  cfg.qcfg.num_bins = static_cast<uint32_t>(flags.GetInt("bins", 256));
  cfg.strategy = MigrationStrategy::kBatched;
  cfg.batch_size = 16;

  auto imbalanced =
      MakeImbalancedAssignment(cfg.qcfg.num_bins, cfg.workers);
  auto balanced = MakeInitialAssignment(cfg.qcfg.num_bins, cfg.workers);
  cfg.migrations = {{cfg.duration_ms * 2 / 5, imbalanced},
                    {cfg.duration_ms * 7 / 10, balanced}};

  std::printf("NEXMark Q3 (megaphone) at %.0f events/s on %u workers "
              "(%u process(es));\n"
              "batched migrations at %llu ms (25%% of bins out) and %llu ms "
              "(back).\n\n",
              cfg.rate, cfg.workers, processes,
              static_cast<unsigned long long>(cfg.migrations[0].at_ms),
              static_cast<unsigned long long>(cfg.migrations[1].at_ms));

  auto r = RunForked(processes, workers, [&](const timely::Config& tc) {
    return RunNexmarkBench(cfg, tc);
  });
  PrintTimeline("q3-live", r.timeline);
  std::printf("\nquery produced %llu join results (events from %zu "
              "process shards); %zu migrations:\n",
              static_cast<unsigned long long>(r.outputs), r.shards.size(),
              r.migrations.size());
  for (size_t i = 0; i < r.migrations.size(); ++i) {
    std::printf("  migration %zu: %.2fs..%.2fs (%zu batches), max latency "
                "%.2f ms\n",
                i, r.migrations[i].start_sec, r.migrations[i].end_sec,
                r.migrations[i].batches, r.migrations[i].max_ms);
  }
  std::printf("\nthe join kept answering throughout: no pause, no restart.\n");
  return 0;
}
