// Elastic rescaling driven by a load-watching controller.
//
// The paper positions Megaphone as the *mechanism* under controllers like
// DS2 or Dhalion (§4.4): the controller decides when and what to move and
// simply writes configuration updates into the control stream. This
// example plays that role end to end:
//
//   1. Start a 4-worker counting dataflow whose bins are all concentrated
//      on workers {0, 1} — a deliberately bad placement.
//   2. A controller on worker 0 watches per-worker record counts; when it
//      sees the imbalance exceed 2x it computes a balanced assignment and
//      migrates to it with the fluid strategy, one bin at a time, while
//      input keeps flowing.
//   3. Print the per-worker load before and after.
//
//   build/examples/rescale_controller
#include <array>
#include <atomic>
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "common/hash.hpp"
#include "megaphone/megaphone.hpp"
#include "timely/timely.hpp"

using namespace megaphone;

int main() {
  const uint32_t workers = 4;
  const uint32_t num_bins = 32;
  const uint64_t epochs = 120;
  std::array<std::atomic<uint64_t>, 8> applied{};  // records per worker
  std::atomic<uint64_t> rebalanced_at{0};

  timely::Execute(timely::Config{workers}, [&](timely::Worker& w) {
    auto handles = w.Dataflow<uint64_t>([&](timely::Scope<uint64_t>& s) {
      auto [ctrl_in, ctrl] = timely::NewInput<ControlInst>(s);
      auto [data_in, data] = timely::NewInput<uint64_t>(s);
      Config cfg;
      cfg.num_bins = num_bins;
      cfg.name = "Rescale";
      using BinState = std::unordered_map<uint64_t, uint64_t>;
      auto out = Unary<BinState, uint64_t>(
          ctrl, data, [](const uint64_t& k) { return HashMix64(k); },
          [](const uint64_t&, BinState& state, std::vector<uint64_t>& recs,
             auto emit, auto&) {
            for (uint64_t k : recs) emit(++state[k]);
          },
          cfg);
      uint32_t me = s.worker();
      timely::Sink(out.stream,
                   [&, me](const uint64_t&, std::vector<uint64_t>& d) {
                     applied[me] += d.size();
                   });
      return std::make_tuple(ctrl_in, data_in, out.probe);
    });
    auto& [ctrl_in, data_in, probe] = handles;

    typename MigrationController<uint64_t>::Options opts;
    opts.strategy = MigrationStrategy::kFluid;
    MigrationController<uint64_t> controller(ctrl_in, probe, w.index(), opts);

    // Deliberately bad initial placement: move everything to workers 0/1
    // right away (the initial engine assignment is balanced).
    Assignment cramped(num_bins, 0);
    for (uint32_t b = 0; b < num_bins; ++b) cramped[b] = b % 2;
    controller.MigrateTo(MakeInitialAssignment(num_bins, workers), cramped);

    bool rebalanced = false;
    for (uint64_t e = 0; e < epochs; ++e) {
      // The "DS2 role": worker 0 watches the load counters and reacts.
      if (w.index() == 0 && !rebalanced && e > 30) {
        uint64_t lo = ~uint64_t{0}, hi = 0;
        for (uint32_t i = 0; i < workers; ++i) {
          lo = std::min(lo, applied[i].load());
          hi = std::max(hi, applied[i].load());
        }
        if (hi > 2 * (lo + 1)) {
          std::printf("[epoch %3llu] imbalance detected (max=%llu min=%llu): "
                      "rebalancing fluidly\n",
                      static_cast<unsigned long long>(e),
                      static_cast<unsigned long long>(hi),
                      static_cast<unsigned long long>(lo));
          rebalanced_at = e;
          rebalanced = true;
        }
      }
      // All workers must issue the same migration; they key off the
      // epoch recorded by worker 0.
      if (rebalanced_at.load() != 0 && e == rebalanced_at.load() + 2) {
        controller.MigrateTo(cramped,
                             MakeInitialAssignment(num_bins, workers));
      }
      controller.Advance(e, e + 1);
      for (uint64_t i = 0; i < 64; ++i) {
        if (i % workers == w.index()) data_in->Send(HashMix64(e * 64 + i));
      }
      data_in->AdvanceTo(e + 1);
      w.StepUntil([&] { return !probe.LessThan(e > 2 ? e - 2 : 0); });
    }
    controller.Close(epochs);
    data_in->Close();
  });

  std::printf("\nrecords applied per worker (whole run):\n");
  for (uint32_t i = 0; i < workers; ++i) {
    std::printf("  worker %u: %llu\n", i,
                static_cast<unsigned long long>(applied[i].load()));
  }
  std::printf("\nafter the controller's fluid rebalance, workers 2/3 share "
              "the load again.\n");
  return 0;
}
