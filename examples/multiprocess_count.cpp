// Quickstart for the multi-process runtime: run the deterministic count
// workload with W workers split across P OS processes connected by TCP,
// migrate a quarter of the state mid-stream with the fluid strategy, and
// print the result fingerprint. The fingerprint is independent of the
// process split — try it:
//
//   ./example_multiprocess_count --processes=1 --workers=4
//   ./example_multiprocess_count --processes=2 --workers=2
//   ./example_multiprocess_count --processes=4 --workers=1
//
// All three print the same digest and the same completed-batch count;
// only the transport under them changes. The binary self-forks: the
// parent binds one loopback listener per process (kernel-assigned ports),
// forks the peers, and becomes process 0. To drive processes by hand
// (e.g. one per terminal), start each with an explicit index instead:
//
//   terminal 1: ./example_multiprocess_count --processes=2 --workers=2
//               --process-index=0 --base-port=41000
//   terminal 2: ./example_multiprocess_count --processes=2 --workers=2
//               --process-index=1 --base-port=41000
#include <cstdio>

#include "harness/harness.hpp"
#include "harness/launcher.hpp"

int main(int argc, char** argv) {
  using namespace megaphone;
  Flags flags(argc, argv);

  MultiProcess mp = SetupProcessesFromFlags(flags, /*default_workers=*/2);

  DetCountConfig cfg;
  cfg.total_workers = mp.config.workers * mp.config.processes;
  cfg.num_bins = static_cast<uint32_t>(flags.GetInt("bins", 64));
  cfg.domain = flags.GetInt("domain", 1 << 12);
  cfg.records_per_epoch = flags.GetInt("records-per-epoch", 4096);
  cfg.epochs = flags.GetInt("epochs", 8);
  cfg.migrate_at_epoch = flags.GetInt("migrate-at", 3);
  cfg.strategy = MigrationStrategy::kFluid;

  DetCountResult r = RunDeterministicCount(cfg, mp.config);

  int rc = WaitForChildren(mp.children);
  if (!r.root) return rc;  // non-root processes: workers only, no report

  uint64_t digest = 1469598103934665603ull;  // FNV-1a over the count map
  for (uint8_t b : r.digest) digest = (digest ^ b) * 1099511628211ull;
  std::printf(
      "processes=%u workers_per_process=%u total_workers=%u\n"
      "records=%llu distinct_keys=%llu completed_batches=%zu\n"
      "count_digest=%016llx\n",
      mp.config.processes, mp.config.workers, cfg.total_workers,
      static_cast<unsigned long long>(cfg.records_per_epoch * cfg.epochs),
      static_cast<unsigned long long>(r.distinct_keys), r.completed_batches,
      static_cast<unsigned long long>(digest));
  return rc;
}
