// Figure 20: thin stub over the unified driver; megabench --fig=20 is
// the same bench (and adds --processes for distributed runs).
#include "harness/bench_driver.hpp"

int main(int argc, char** argv) {
  return megaphone::BenchDriverMain(argc, argv, 20);
}
