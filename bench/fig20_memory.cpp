// Figure 20: resident set size over time per migration strategy.
// Expected shape: all-at-once serializes every migrating bin at once and
// queues the bytes behind the (throttled) state channel, producing a
// memory spike at each migration; fluid and batched migrate one step at a
// time — a built-in form of flow control — and stay flat.
#include <cstdio>
#include <vector>

#include "harness/harness.hpp"

using namespace megaphone;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  CountBenchConfig base;
  base.workers = static_cast<uint32_t>(flags.GetInt("workers", 4));
  base.num_bins = static_cast<uint32_t>(flags.GetInt("bins", 1024));
  base.domain = flags.GetInt("domain", 1 << 24);
  base.rate = flags.GetDouble("rate", 100'000);
  base.duration_ms = flags.GetInt("duration_ms", 4000);
  base.mode = CountMode::kKeyCount;
  base.sample_rss = true;
  base.batch_size = 64;
  // Model the network bottleneck: serialized state leaves the sender at a
  // bounded rate, as in the paper's cluster (see DESIGN.md).
  base.state_bytes_per_sec = flags.GetInt("state_bw", 64ull << 20);

  std::printf("# Figure 20: RSS over time; domain=%llu (~%llu MB state), "
              "state_bw=%llu MB/s\n",
              static_cast<unsigned long long>(base.domain),
              static_cast<unsigned long long>(base.domain * 8 >> 20),
              static_cast<unsigned long long>(base.state_bytes_per_sec >> 20));

  const MigrationStrategy strategies[] = {MigrationStrategy::kAllAtOnce,
                                          MigrationStrategy::kBatched,
                                          MigrationStrategy::kFluid};
  for (auto strat : strategies) {
    CountBenchConfig cfg = base;
    cfg.strategy = strat;
    cfg.migrations.push_back(
        {1000, MakeImbalancedAssignment(cfg.num_bins, cfg.workers)});
    cfg.migrations.push_back(
        {2500, MakeInitialAssignment(cfg.num_bins, cfg.workers)});
    auto r = RunCountBench(cfg);
    std::printf("# rss %s\n%10s %14s\n", StrategyName(strat), "time_s",
                "rss_mb");
    uint64_t peak = 0, baseline = 0;
    for (auto& [t, rss] : r.rss_samples) {
      std::printf("%10.2f %14.1f\n", t, static_cast<double>(rss) / 1048576.0);
      peak = std::max(peak, rss);
      if (baseline == 0) baseline = rss;
    }
    std::printf("# %s: baseline=%.1f MB peak=%.1f MB spike=%.1f MB\n\n",
                StrategyName(strat), baseline / 1048576.0, peak / 1048576.0,
                (peak - baseline) / 1048576.0);
  }
  return 0;
}
