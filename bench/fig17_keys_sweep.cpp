// Figure 17: migration max-latency vs duration as the key domain grows,
// for a fixed bin count. Expected shape: all strategies' durations grow
// with the state size; all-at-once max latency grows proportionally, fluid
// lowest latency / highest duration, batched in between.
#include <cstdio>
#include <vector>

#include "harness/harness.hpp"

using namespace megaphone;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  CountBenchConfig base;
  base.workers = static_cast<uint32_t>(flags.GetInt("workers", 4));
  base.num_bins = static_cast<uint32_t>(flags.GetInt("bins", 1024));
  base.rate = flags.GetDouble("rate", 150'000);
  base.duration_ms = flags.GetInt("duration_ms", 4000);
  base.mode = CountMode::kKeyCount;
  base.batch_size = flags.GetInt("batch_size", 64);
  const uint64_t migrate_at = flags.GetInt("migrate_at_ms", 700);

  std::vector<uint64_t> domains = {1 << 20, 1 << 22, 1 << 24};
  if (flags.GetBool("full", false)) {
    domains = {1 << 20, 1 << 21, 1 << 22, 1 << 23, 1 << 24, 1 << 25};
  }

  std::printf("# Figure 17: latency vs duration, varying domain; bins=%u "
              "rate=%.0f\n",
              base.num_bins, base.rate);

  const MigrationStrategy strategies[] = {MigrationStrategy::kAllAtOnce,
                                          MigrationStrategy::kFluid,
                                          MigrationStrategy::kBatched};
  for (auto strat : strategies) {
    for (uint64_t domain : domains) {
      CountBenchConfig cfg = base;
      cfg.domain = domain;
      cfg.strategy = strat;
      cfg.migrations.push_back(
          {migrate_at, MakeImbalancedAssignment(cfg.num_bins, cfg.workers)});
      auto r = RunCountBench(cfg);
      PrintMigrationSummary(StrategyName(strat), domain, "domain",
                            r.migrations);
    }
  }
  return 0;
}
