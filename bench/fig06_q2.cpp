// Figure 6: NEXMark Q2 latency timeline with two reconfigurations. Q2 is
// stateless, so no latency spike should occur during migration.
#include "harness/nexmark_workload.hpp"

int main(int argc, char** argv) {
  return megaphone::NexmarkFigureMain(2, /*with_native=*/false, argc, argv);
}
