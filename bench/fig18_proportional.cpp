// Figure 18: keys and bins grow proportionally (fixed state per bin).
// Expected shape: fluid and batched max latencies stay flat (the migration
// granularity is constant) while every strategy's duration grows;
// all-at-once max latency keeps growing with total state.
#include <cstdio>
#include <vector>

#include "harness/harness.hpp"

using namespace megaphone;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  CountBenchConfig base;
  base.workers = static_cast<uint32_t>(flags.GetInt("workers", 4));
  base.rate = flags.GetDouble("rate", 150'000);
  base.duration_ms = flags.GetInt("duration_ms", 4000);
  base.mode = CountMode::kKeyCount;
  const uint64_t keys_per_bin = flags.GetInt("keys_per_bin", 1 << 12);
  const uint64_t migrate_at = flags.GetInt("migrate_at_ms", 700);

  std::vector<uint32_t> bins = {256, 1024, 4096};
  if (flags.GetBool("full", false)) bins = {64, 256, 1024, 4096, 8192};

  std::printf("# Figure 18: fixed state per bin (%llu keys/bin), growing "
              "domain; rate=%.0f\n",
              static_cast<unsigned long long>(keys_per_bin), base.rate);

  const MigrationStrategy strategies[] = {MigrationStrategy::kAllAtOnce,
                                          MigrationStrategy::kFluid,
                                          MigrationStrategy::kBatched};
  for (auto strat : strategies) {
    for (uint32_t nb : bins) {
      CountBenchConfig cfg = base;
      cfg.num_bins = nb;
      cfg.domain = keys_per_bin * nb;
      cfg.strategy = strat;
      cfg.batch_size = 16;
      cfg.migrations.push_back(
          {migrate_at, MakeImbalancedAssignment(nb, cfg.workers)});
      auto r = RunCountBench(cfg);
      PrintMigrationSummary(StrategyName(strat), nb, "bins", r.migrations);
    }
  }
  return 0;
}
