// Figure 5: NEXMark Q1 latency timeline with two reconfigurations. Q1 is
// stateless, so no latency spike should occur during migration.
#include "harness/nexmark_workload.hpp"

int main(int argc, char** argv) {
  return megaphone::NexmarkFigureMain(1, /*with_native=*/false, argc, argv);
}
