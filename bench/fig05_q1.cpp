// Figure 5: NEXMark Q1 latency timeline with two reconfigurations.
// Thin stub over the unified driver; megabench --fig=5 (--query=1) is
// the same bench (and adds --processes for distributed runs).
#include "harness/bench_driver.hpp"

int main(int argc, char** argv) {
  return megaphone::BenchDriverMain(argc, argv, 5);
}
