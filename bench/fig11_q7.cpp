// Figure 11: NEXMark Q7 (windowed global maximum; minimal state) — with
// so little state, all-at-once and batched migration are indistinguishable.
#include "harness/nexmark_workload.hpp"

int main(int argc, char** argv) {
  return megaphone::NexmarkFigureMain(7, /*with_native=*/false, argc, argv);
}
