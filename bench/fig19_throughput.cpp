// Figure 19: offered load vs maximum latency for the four configurations
// (non-migrating, all-at-once, batched, fluid). Expected shape: latency is
// throughput-invariant until the system saturates; fluid and batched
// sustain latency targets 10-100x below all-at-once at the same load.
#include <cstdio>
#include <vector>

#include "harness/harness.hpp"

using namespace megaphone;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  CountBenchConfig base;
  base.workers = static_cast<uint32_t>(flags.GetInt("workers", 4));
  base.num_bins = static_cast<uint32_t>(flags.GetInt("bins", 1024));
  base.domain = flags.GetInt("domain", 1 << 22);
  base.duration_ms = flags.GetInt("duration_ms", 2500);
  base.mode = CountMode::kKeyCount;
  base.batch_size = 64;
  const uint64_t migrate_at = flags.GetInt("migrate_at_ms", 700);

  std::vector<double> rates = {50'000, 100'000, 200'000, 400'000};
  if (flags.GetBool("full", false)) {
    rates = {25'000, 50'000, 100'000, 200'000, 400'000, 800'000, 1'600'000};
  }

  std::printf("# Figure 19: offered load vs max latency; domain=%llu bins=%u\n",
              static_cast<unsigned long long>(base.domain), base.num_bins);
  std::printf("%12s %14s %14s\n", "strategy", "rate_per_s", "max_latency_s");

  struct V {
    const char* label;
    bool migrate;
    MigrationStrategy strategy;
  };
  const V variants[] = {
      {"non-migrating", false, MigrationStrategy::kAllAtOnce},
      {"all-at-once", true, MigrationStrategy::kAllAtOnce},
      {"batched", true, MigrationStrategy::kBatched},
      {"fluid", true, MigrationStrategy::kFluid},
  };
  for (const auto& v : variants) {
    for (double rate : rates) {
      CountBenchConfig cfg = base;
      cfg.rate = rate;
      cfg.strategy = v.strategy;
      if (v.migrate) {
        cfg.migrations.push_back(
            {migrate_at,
             MakeImbalancedAssignment(cfg.num_bins, cfg.workers)});
      }
      auto r = RunCountBench(cfg);
      double max_s = static_cast<double>(r.timeline.MaxIn(
                         0, ~uint64_t{0})) * 1e-9;
      std::printf("%12s %14.0f %14.4f\n", v.label, rate, max_s);
    }
  }
  return 0;
}
