// Figure 12: NEXMark Q8 (tumbling-window person⋈seller join; the window is
// dilated, standing in for the paper's twelve-hour window) — all-at-once
// vs batched migration.
#include "harness/nexmark_workload.hpp"

int main(int argc, char** argv) {
  return megaphone::NexmarkFigureMain(8, /*with_native=*/false, argc, argv);
}
