// Figure 12: NEXMark Q8 latency timeline with two reconfigurations.
// Thin stub over the unified driver; megabench --fig=12 (--query=8) is
// the same bench (and adds --processes for distributed runs).
#include "harness/bench_driver.hpp"

int main(int argc, char** argv) {
  return megaphone::BenchDriverMain(argc, argv, 12);
}
