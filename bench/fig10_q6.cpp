// Figure 10: NEXMark Q6 (per-seller closing-price averages; state grows
// with the set of sellers) — all-at-once vs batched migration.
#include "harness/nexmark_workload.hpp"

int main(int argc, char** argv) {
  return megaphone::NexmarkFigureMain(6, /*with_native=*/false, argc, argv);
}
