// Figure 16: migration max-latency vs duration as the number of bins
// varies, for a fixed key domain. Expected shape: more bins lower the
// maximum latency of fluid and batched migration without increasing the
// duration; all-at-once is unaffected by granularity.
//
// --gap N ablates the drain gap between batches (§4.4).
#include <cstdio>
#include <vector>

#include "harness/harness.hpp"

using namespace megaphone;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  CountBenchConfig base;
  base.workers = static_cast<uint32_t>(flags.GetInt("workers", 4));
  base.domain = flags.GetInt("domain", 1 << 22);
  base.rate = flags.GetDouble("rate", 150'000);
  base.duration_ms = flags.GetInt("duration_ms", 4000);
  base.mode = CountMode::kKeyCount;
  base.gap_ms = flags.GetInt("gap", 0);
  const uint64_t migrate_at = flags.GetInt("migrate_at_ms", 700);

  std::vector<uint32_t> bins = {16, 256, 4096};
  if (flags.GetBool("full", false)) bins = {16, 64, 256, 1024, 4096, 16384};

  std::printf("# Figure 16: latency vs duration, varying bins; domain=%llu "
              "rate=%.0f gap=%llums\n",
              static_cast<unsigned long long>(base.domain), base.rate,
              static_cast<unsigned long long>(base.gap_ms));

  const MigrationStrategy strategies[] = {MigrationStrategy::kAllAtOnce,
                                          MigrationStrategy::kFluid,
                                          MigrationStrategy::kBatched};
  for (auto strat : strategies) {
    for (uint32_t nb : bins) {
      CountBenchConfig cfg = base;
      cfg.num_bins = nb;
      cfg.strategy = strat;
      cfg.batch_size = nb / 16 == 0 ? 1 : nb / 16;
      cfg.migrations.push_back(
          {migrate_at, MakeImbalancedAssignment(nb, cfg.workers)});
      auto r = RunCountBench(cfg);
      PrintMigrationSummary(StrategyName(strat), nb, "bins", r.migrations);
    }
  }
  return 0;
}
