// Figure 8: NEXMark Q4 (closing-price averages; bounded state held by the
// fixed number of in-flight auctions) — all-at-once vs batched migration.
#include "harness/nexmark_workload.hpp"

int main(int argc, char** argv) {
  return megaphone::NexmarkFigureMain(4, /*with_native=*/false, argc, argv);
}
