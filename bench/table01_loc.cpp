// Table 1: lines of code of the NEXMark query implementations, native vs
// Megaphone. Counted from the marked regions in queries_native.hpp and
// queries_megaphone.hpp (non-blank lines, excluding the marker comments).
// As in the paper, the shared closed-auction sub-plan of Q4/Q6 is counted
// into both queries.
#include <cstdio>
#include <fstream>
#include <string>

#ifndef MEGA_SOURCE_DIR
#define MEGA_SOURCE_DIR "."
#endif

namespace {

int CountRegion(const std::string& path, const std::string& begin,
                const std::string& end) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return -1;
  }
  std::string line;
  bool in_region = false;
  int count = 0;
  while (std::getline(f, line)) {
    if (line.find(begin) != std::string::npos) {
      in_region = true;
      continue;
    }
    if (line.find(end) != std::string::npos) in_region = false;
    if (!in_region) continue;
    // Count non-blank lines.
    if (line.find_first_not_of(" \t") != std::string::npos) count++;
  }
  return count;
}

}  // namespace

int main() {
  const std::string dir = std::string(MEGA_SOURCE_DIR) + "/src/nexmark/";
  const std::string native = dir + "queries_native.hpp";
  const std::string mega = dir + "queries_megaphone.hpp";

  int shared_native = CountRegion(native, "[ClosedAuctions-native-begin]",
                                  "[ClosedAuctions-native-end]");
  int shared_mega = CountRegion(mega, "[ClosedAuctions-mega-begin]",
                                "[ClosedAuctions-mega-end]");

  std::printf("# Table 1: NEXMark query implementations, lines of code\n");
  std::printf("# (Q4/Q6 include the shared closed-auctions sub-plan, as in "
              "the paper)\n");
  std::printf("%8s %8s %10s\n", "query", "native", "megaphone");
  for (int q = 1; q <= 8; ++q) {
    std::string nb = "[Q" + std::to_string(q) + "-native-begin]";
    std::string ne = "[Q" + std::to_string(q) + "-native-end]";
    std::string mb = "[Q" + std::to_string(q) + "-mega-begin]";
    std::string me = "[Q" + std::to_string(q) + "-mega-end]";
    int n = CountRegion(native, nb, ne);
    int m = CountRegion(mega, mb, me);
    if (q == 4 || q == 6) {
      n += shared_native;
      m += shared_mega;
    }
    std::printf("%8s %8d %10d\n", ("Q" + std::to_string(q)).c_str(), n, m);
  }
  return 0;
}
