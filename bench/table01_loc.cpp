// Table 1: lines of code of the NEXMark query implementations, native vs
// Megaphone. Thin stub over the unified driver; megabench --fig=21 is
// the same table.
#include "harness/bench_driver.hpp"

int main(int argc, char** argv) {
  return megaphone::BenchDriverMain(argc, argv, megaphone::kFigTable1);
}
