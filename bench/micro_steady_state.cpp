// Google-benchmark micro suite: the per-record and per-migration costs
// underlying the macro experiments, including the serialize-vs-move
// ablation called out in DESIGN.md (state-channel serialization is what
// makes migration cost scale with state size).
//
// Beyond the google-benchmark micro benches, `--steady` runs the
// steady-state throughput suite (full multi-worker dataflows, native and
// Megaphone paths) and emits machine-readable JSON for BENCH_*.json files:
//
//   micro_steady_state --steady [--records=N] [--epochs=E] [--bins=B]
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <deque>
#include <map>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/hash.hpp"
#include "common/serde.hpp"
#include "common/time_util.hpp"
#include "harness/histogram.hpp"
#include "harness/report.hpp"
#include "harness/steady_workload.hpp"
#include "megaphone/megaphone.hpp"
#include "timely/timely.hpp"

namespace {

using namespace megaphone;

void BM_HashMix64(benchmark::State& state) {
  uint64_t x = 12345;
  for (auto _ : state) {
    x = HashMix64(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_HashMix64);

void BM_BinOf(benchmark::State& state) {
  uint64_t x = 0;
  const uint32_t bins = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BinOf(HashMix64(x++), bins));
  }
}
BENCHMARK(BM_BinOf)->Arg(16)->Arg(4096)->Arg(1 << 20);

// Routing-table lookup: the extra work every Megaphone record pays over a
// native exchange (Figs. 13-15's overhead source).
void BM_RoutingLookupClean(benchmark::State& state) {
  RoutingTable<uint64_t> rt(static_cast<uint32_t>(state.range(0)), 4);
  uint64_t k = 0;
  for (auto _ : state) {
    BinId b = BinOf(HashMix64(k++), rt.num_bins());
    benchmark::DoNotOptimize(rt.WorkerAt(100, b));
  }
}
BENCHMARK(BM_RoutingLookupClean)->Arg(256)->Arg(4096)->Arg(1 << 16);

void BM_RoutingLookupAfterMigrations(benchmark::State& state) {
  const uint32_t bins = 4096;
  RoutingTable<uint64_t> rt(bins, 4);
  // Ten full reconfigurations of history per bin.
  for (uint64_t v = 1; v <= 10; ++v) {
    for (BinId b = 0; b < bins; ++b) rt.Apply(v * 10, b, (b + v) % 4);
  }
  uint64_t k = 0;
  for (auto _ : state) {
    BinId b = BinOf(HashMix64(k++), bins);
    benchmark::DoNotOptimize(rt.WorkerAt(105, b));
  }
}
BENCHMARK(BM_RoutingLookupAfterMigrations);

void BM_RoutingCompact(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    RoutingTable<uint64_t> rt(4096, 4);
    for (uint64_t v = 1; v <= 10; ++v) {
      for (BinId b = 0; b < 4096; ++b) rt.Apply(v * 10, b, (b + v) % 4);
    }
    state.ResumeTiming();
    rt.Compact(95);
    benchmark::DoNotOptimize(rt.TotalVersions());
  }
}
BENCHMARK(BM_RoutingCompact);

// Serialize-vs-move ablation for a bin of N counters.
using CountBin = Bin<std::vector<uint64_t>, uint64_t, uint64_t>;

CountBin MakeBin(size_t n) {
  CountBin b;
  b.state.resize(n);
  for (size_t i = 0; i < n; ++i) b.state[i] = i;
  return b;
}

void BM_BinMigrateSerialize(benchmark::State& state) {
  CountBin bin = MakeBin(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto bytes = EncodeToBytes(bin);
    auto back = DecodeFromBytes<CountBin>(bytes);
    benchmark::DoNotOptimize(back.state.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 8);
}
BENCHMARK(BM_BinMigrateSerialize)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_BinMigrateMove(benchmark::State& state) {
  CountBin bin = MakeBin(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    CountBin moved = std::move(bin);
    benchmark::DoNotOptimize(moved.state.data());
    bin = std::move(moved);  // restore for the next iteration
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 8);
}
BENCHMARK(BM_BinMigrateMove)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_HashBinSerialize(benchmark::State& state) {
  Bin<std::unordered_map<uint64_t, uint64_t>, uint64_t, uint64_t> bin;
  for (int64_t i = 0; i < state.range(0); ++i) bin.state[HashMix64(i)] = i;
  for (auto _ : state) {
    auto bytes = EncodeToBytes(bin);
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 16);
}
BENCHMARK(BM_HashBinSerialize)->Arg(1 << 10)->Arg(1 << 14);

void BM_HistogramAdd(benchmark::State& state) {
  Histogram h;
  uint64_t v = 1;
  for (auto _ : state) {
    h.Add(v);
    v = v * 6364136223846793005ULL + 1442695040888963407ULL;
    v >>= 32;
  }
  benchmark::DoNotOptimize(h.total());
}
BENCHMARK(BM_HistogramAdd);

void BM_MutableAntichainUpdate(benchmark::State& state) {
  timely::MutableAntichain<uint64_t> m;
  uint64_t t = 0;
  for (auto _ : state) {
    m.Update(t, +1);
    if (t >= 4) m.Update(t - 4, -1);
    t++;
  }
  benchmark::DoNotOptimize(m.Empty());
}
BENCHMARK(BM_MutableAntichainUpdate);

void BM_ChannelPushPull(benchmark::State& state) {
  timely::Channel<uint64_t, uint64_t> chan(4);
  timely::Bundle<uint64_t, uint64_t> bundle;
  bundle.data.resize(1024, 7);
  for (auto _ : state) {
    timely::Bundle<uint64_t, uint64_t> b = bundle;
    chan.Push(1, std::move(b));
    timely::Bundle<uint64_t, uint64_t> out;
    chan.Pull(1, out);
    benchmark::DoNotOptimize(out.data.size());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_ChannelPushPull);

// Channel drain: popping N queued bundles one lock at a time vs draining
// the whole queue with one PullAll swap.
void BM_ChannelPullEach(benchmark::State& state) {
  const size_t n = 64;
  timely::Channel<uint64_t, uint64_t> chan(2);
  for (auto _ : state) {
    state.PauseTiming();
    for (size_t i = 0; i < n; ++i) {
      timely::Bundle<uint64_t, uint64_t> b;
      b.time = i;
      b.data.resize(256, i);
      chan.Push(0, std::move(b));
    }
    state.ResumeTiming();
    timely::Bundle<uint64_t, uint64_t> out;
    size_t got = 0;
    while (chan.Pull(0, out)) got++;
    benchmark::DoNotOptimize(got);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_ChannelPullEach);

void BM_ChannelPullAll(benchmark::State& state) {
  const size_t n = 64;
  timely::Channel<uint64_t, uint64_t> chan(2);
  std::deque<timely::Bundle<uint64_t, uint64_t>> drained;
  for (auto _ : state) {
    state.PauseTiming();
    for (size_t i = 0; i < n; ++i) {
      timely::Bundle<uint64_t, uint64_t> b;
      b.time = i;
      b.data.resize(256, i);
      chan.Push(0, std::move(b));
    }
    state.ResumeTiming();
    size_t got = chan.PullAll(0, drained);
    benchmark::DoNotOptimize(got);
    drained.clear();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_ChannelPullAll);

// Bundle-buffer pool: recycling capacity through the channel vs growing a
// fresh vector per bundle (the pre-batching behavior).
void BM_BundleBufferFresh(benchmark::State& state) {
  for (auto _ : state) {
    std::vector<uint64_t> buf;
    for (size_t i = 0; i < 1024; ++i) buf.push_back(i);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * 1024));
}
BENCHMARK(BM_BundleBufferFresh);

void BM_BundleBufferPooled(benchmark::State& state) {
  timely::Channel<uint64_t, uint64_t> chan(1);
  for (auto _ : state) {
    std::vector<uint64_t> buf = chan.AcquireBuffer();
    for (size_t i = 0; i < 1024; ++i) buf.push_back(i);
    benchmark::DoNotOptimize(buf.data());
    chan.RecycleBuffer(std::move(buf));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * 1024));
}
BENCHMARK(BM_BundleBufferPooled);

// Routing dispatch: one type-erased call per record (the pre-batching
// hot path) vs one batch_targets call computing every target.
void BM_RoutePerRecordDispatch(benchmark::State& state) {
  auto pact = timely::Pact<uint64_t>::Exchange(
      [](const uint64_t& k) { return HashMix64(k); });
  std::vector<uint64_t> recs(1024);
  for (size_t i = 0; i < recs.size(); ++i) recs[i] = i;
  uint32_t peers = 4;
  benchmark::DoNotOptimize(peers);  // runtime divisor, as in the engine
  uint64_t acc = 0;
  for (auto _ : state) {
    for (const auto& r : recs) acc += pact.hash(r) % peers;
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * recs.size()));
}
BENCHMARK(BM_RoutePerRecordDispatch);

void BM_RouteBatchDispatch(benchmark::State& state) {
  auto pact = timely::Pact<uint64_t>::Exchange(
      [](const uint64_t& k) { return HashMix64(k); });
  std::vector<uint64_t> recs(1024);
  for (size_t i = 0; i < recs.size(); ++i) recs[i] = i;
  std::vector<uint32_t> targets(recs.size());
  for (auto _ : state) {
    pact.batch_targets(recs.data(), recs.size(), 4, targets.data());
    benchmark::DoNotOptimize(targets.data());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * recs.size()));
}
BENCHMARK(BM_RouteBatchDispatch);

// Progress-batch consolidation: a typical step's change batch collapses
// to a handful of applied deltas.
void BM_ConsolidateChanges(benchmark::State& state) {
  std::vector<timely::Change<uint64_t>> batch;
  for (auto _ : state) {
    state.PauseTiming();
    batch.clear();
    for (uint32_t i = 0; i < 64; ++i) {
      batch.push_back({i % 4, 100 + i % 2, i % 8 == 0 ? +8 : -1});
    }
    state.ResumeTiming();
    timely::ConsolidateChanges(batch);
    benchmark::DoNotOptimize(batch.data());
  }
}
BENCHMARK(BM_ConsolidateChanges);

void BM_PlanOptimizedBatches(benchmark::State& state) {
  const uint32_t bins = static_cast<uint32_t>(state.range(0));
  auto from = MakeInitialAssignment(bins, 8);
  Assignment to = from;
  for (uint32_t b = 0; b < bins; ++b) to[b] = (from[b] + 1 + b % 3) % 8;
  auto moves = DiffAssignments(from, to);
  for (auto _ : state) {
    auto batches =
        PlanBatches(MigrationStrategy::kOptimized, moves, from, 0);
    benchmark::DoNotOptimize(batches.size());
  }
}
BENCHMARK(BM_PlanOptimizedBatches)->Arg(256)->Arg(4096);

// ---------------------------------------------------------------------
// The closed-loop steady-state throughput suite lives in
// harness/steady_workload.hpp (shared with `megabench --steady`); this
// binary keeps its historical `--steady` entry point.

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--steady", 8) == 0) {
      megaphone::Flags flags(argc, argv);
      return megaphone::RunSteadySuite(flags);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
