// Google-benchmark micro suite: the per-record and per-migration costs
// underlying the macro experiments, including the serialize-vs-move
// ablation called out in DESIGN.md (state-channel serialization is what
// makes migration cost scale with state size).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/hash.hpp"
#include "common/serde.hpp"
#include "harness/histogram.hpp"
#include "megaphone/bin.hpp"
#include "megaphone/control.hpp"
#include "megaphone/strategies.hpp"
#include "timely/antichain.hpp"
#include "timely/channel.hpp"

namespace {

using namespace megaphone;

void BM_HashMix64(benchmark::State& state) {
  uint64_t x = 12345;
  for (auto _ : state) {
    x = HashMix64(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_HashMix64);

void BM_BinOf(benchmark::State& state) {
  uint64_t x = 0;
  const uint32_t bins = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BinOf(HashMix64(x++), bins));
  }
}
BENCHMARK(BM_BinOf)->Arg(16)->Arg(4096)->Arg(1 << 20);

// Routing-table lookup: the extra work every Megaphone record pays over a
// native exchange (Figs. 13-15's overhead source).
void BM_RoutingLookupClean(benchmark::State& state) {
  RoutingTable<uint64_t> rt(static_cast<uint32_t>(state.range(0)), 4);
  uint64_t k = 0;
  for (auto _ : state) {
    BinId b = BinOf(HashMix64(k++), rt.num_bins());
    benchmark::DoNotOptimize(rt.WorkerAt(100, b));
  }
}
BENCHMARK(BM_RoutingLookupClean)->Arg(256)->Arg(4096)->Arg(1 << 16);

void BM_RoutingLookupAfterMigrations(benchmark::State& state) {
  const uint32_t bins = 4096;
  RoutingTable<uint64_t> rt(bins, 4);
  // Ten full reconfigurations of history per bin.
  for (uint64_t v = 1; v <= 10; ++v) {
    for (BinId b = 0; b < bins; ++b) rt.Apply(v * 10, b, (b + v) % 4);
  }
  uint64_t k = 0;
  for (auto _ : state) {
    BinId b = BinOf(HashMix64(k++), bins);
    benchmark::DoNotOptimize(rt.WorkerAt(105, b));
  }
}
BENCHMARK(BM_RoutingLookupAfterMigrations);

void BM_RoutingCompact(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    RoutingTable<uint64_t> rt(4096, 4);
    for (uint64_t v = 1; v <= 10; ++v) {
      for (BinId b = 0; b < 4096; ++b) rt.Apply(v * 10, b, (b + v) % 4);
    }
    state.ResumeTiming();
    rt.Compact(95);
    benchmark::DoNotOptimize(rt.TotalVersions());
  }
}
BENCHMARK(BM_RoutingCompact);

// Serialize-vs-move ablation for a bin of N counters.
using CountBin = Bin<std::vector<uint64_t>, uint64_t, uint64_t>;

CountBin MakeBin(size_t n) {
  CountBin b;
  b.state.resize(n);
  for (size_t i = 0; i < n; ++i) b.state[i] = i;
  return b;
}

void BM_BinMigrateSerialize(benchmark::State& state) {
  CountBin bin = MakeBin(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto bytes = EncodeToBytes(bin);
    auto back = DecodeFromBytes<CountBin>(bytes);
    benchmark::DoNotOptimize(back.state.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 8);
}
BENCHMARK(BM_BinMigrateSerialize)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_BinMigrateMove(benchmark::State& state) {
  CountBin bin = MakeBin(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    CountBin moved = std::move(bin);
    benchmark::DoNotOptimize(moved.state.data());
    bin = std::move(moved);  // restore for the next iteration
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 8);
}
BENCHMARK(BM_BinMigrateMove)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_HashBinSerialize(benchmark::State& state) {
  Bin<std::unordered_map<uint64_t, uint64_t>, uint64_t, uint64_t> bin;
  for (int64_t i = 0; i < state.range(0); ++i) bin.state[HashMix64(i)] = i;
  for (auto _ : state) {
    auto bytes = EncodeToBytes(bin);
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 16);
}
BENCHMARK(BM_HashBinSerialize)->Arg(1 << 10)->Arg(1 << 14);

void BM_HistogramAdd(benchmark::State& state) {
  Histogram h;
  uint64_t v = 1;
  for (auto _ : state) {
    h.Add(v);
    v = v * 6364136223846793005ULL + 1442695040888963407ULL;
    v >>= 32;
  }
  benchmark::DoNotOptimize(h.total());
}
BENCHMARK(BM_HistogramAdd);

void BM_MutableAntichainUpdate(benchmark::State& state) {
  timely::MutableAntichain<uint64_t> m;
  uint64_t t = 0;
  for (auto _ : state) {
    m.Update(t, +1);
    if (t >= 4) m.Update(t - 4, -1);
    t++;
  }
  benchmark::DoNotOptimize(m.Empty());
}
BENCHMARK(BM_MutableAntichainUpdate);

void BM_ChannelPushPull(benchmark::State& state) {
  timely::Channel<uint64_t, uint64_t> chan(4);
  timely::Bundle<uint64_t, uint64_t> bundle;
  bundle.data.resize(1024, 7);
  for (auto _ : state) {
    timely::Bundle<uint64_t, uint64_t> b = bundle;
    chan.Push(1, std::move(b));
    timely::Bundle<uint64_t, uint64_t> out;
    chan.Pull(1, out);
    benchmark::DoNotOptimize(out.data.size());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_ChannelPushPull);

void BM_PlanOptimizedBatches(benchmark::State& state) {
  const uint32_t bins = static_cast<uint32_t>(state.range(0));
  auto from = MakeInitialAssignment(bins, 8);
  Assignment to = from;
  for (uint32_t b = 0; b < bins; ++b) to[b] = (from[b] + 1 + b % 3) % 8;
  auto moves = DiffAssignments(from, to);
  for (auto _ : state) {
    auto batches =
        PlanBatches(MigrationStrategy::kOptimized, moves, from, 0);
    benchmark::DoNotOptimize(batches.size());
  }
}
BENCHMARK(BM_PlanOptimizedBatches)->Arg(256)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
