// Google-benchmark micro suite: the per-record and per-migration costs
// underlying the macro experiments, including the serialize-vs-move
// ablation called out in DESIGN.md (state-channel serialization is what
// makes migration cost scale with state size).
//
// Beyond the google-benchmark micro benches, `--steady` runs the
// steady-state throughput suite (full multi-worker dataflows, native and
// Megaphone paths) and emits machine-readable JSON for BENCH_*.json files:
//
//   micro_steady_state --steady [--records=N] [--epochs=E] [--bins=B]
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <deque>
#include <map>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/hash.hpp"
#include "common/serde.hpp"
#include "common/time_util.hpp"
#include "harness/histogram.hpp"
#include "harness/report.hpp"
#include "megaphone/megaphone.hpp"
#include "timely/timely.hpp"

namespace {

using namespace megaphone;

void BM_HashMix64(benchmark::State& state) {
  uint64_t x = 12345;
  for (auto _ : state) {
    x = HashMix64(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_HashMix64);

void BM_BinOf(benchmark::State& state) {
  uint64_t x = 0;
  const uint32_t bins = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BinOf(HashMix64(x++), bins));
  }
}
BENCHMARK(BM_BinOf)->Arg(16)->Arg(4096)->Arg(1 << 20);

// Routing-table lookup: the extra work every Megaphone record pays over a
// native exchange (Figs. 13-15's overhead source).
void BM_RoutingLookupClean(benchmark::State& state) {
  RoutingTable<uint64_t> rt(static_cast<uint32_t>(state.range(0)), 4);
  uint64_t k = 0;
  for (auto _ : state) {
    BinId b = BinOf(HashMix64(k++), rt.num_bins());
    benchmark::DoNotOptimize(rt.WorkerAt(100, b));
  }
}
BENCHMARK(BM_RoutingLookupClean)->Arg(256)->Arg(4096)->Arg(1 << 16);

void BM_RoutingLookupAfterMigrations(benchmark::State& state) {
  const uint32_t bins = 4096;
  RoutingTable<uint64_t> rt(bins, 4);
  // Ten full reconfigurations of history per bin.
  for (uint64_t v = 1; v <= 10; ++v) {
    for (BinId b = 0; b < bins; ++b) rt.Apply(v * 10, b, (b + v) % 4);
  }
  uint64_t k = 0;
  for (auto _ : state) {
    BinId b = BinOf(HashMix64(k++), bins);
    benchmark::DoNotOptimize(rt.WorkerAt(105, b));
  }
}
BENCHMARK(BM_RoutingLookupAfterMigrations);

void BM_RoutingCompact(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    RoutingTable<uint64_t> rt(4096, 4);
    for (uint64_t v = 1; v <= 10; ++v) {
      for (BinId b = 0; b < 4096; ++b) rt.Apply(v * 10, b, (b + v) % 4);
    }
    state.ResumeTiming();
    rt.Compact(95);
    benchmark::DoNotOptimize(rt.TotalVersions());
  }
}
BENCHMARK(BM_RoutingCompact);

// Serialize-vs-move ablation for a bin of N counters.
using CountBin = Bin<std::vector<uint64_t>, uint64_t, uint64_t>;

CountBin MakeBin(size_t n) {
  CountBin b;
  b.state.resize(n);
  for (size_t i = 0; i < n; ++i) b.state[i] = i;
  return b;
}

void BM_BinMigrateSerialize(benchmark::State& state) {
  CountBin bin = MakeBin(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto bytes = EncodeToBytes(bin);
    auto back = DecodeFromBytes<CountBin>(bytes);
    benchmark::DoNotOptimize(back.state.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 8);
}
BENCHMARK(BM_BinMigrateSerialize)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_BinMigrateMove(benchmark::State& state) {
  CountBin bin = MakeBin(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    CountBin moved = std::move(bin);
    benchmark::DoNotOptimize(moved.state.data());
    bin = std::move(moved);  // restore for the next iteration
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 8);
}
BENCHMARK(BM_BinMigrateMove)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_HashBinSerialize(benchmark::State& state) {
  Bin<std::unordered_map<uint64_t, uint64_t>, uint64_t, uint64_t> bin;
  for (int64_t i = 0; i < state.range(0); ++i) bin.state[HashMix64(i)] = i;
  for (auto _ : state) {
    auto bytes = EncodeToBytes(bin);
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 16);
}
BENCHMARK(BM_HashBinSerialize)->Arg(1 << 10)->Arg(1 << 14);

void BM_HistogramAdd(benchmark::State& state) {
  Histogram h;
  uint64_t v = 1;
  for (auto _ : state) {
    h.Add(v);
    v = v * 6364136223846793005ULL + 1442695040888963407ULL;
    v >>= 32;
  }
  benchmark::DoNotOptimize(h.total());
}
BENCHMARK(BM_HistogramAdd);

void BM_MutableAntichainUpdate(benchmark::State& state) {
  timely::MutableAntichain<uint64_t> m;
  uint64_t t = 0;
  for (auto _ : state) {
    m.Update(t, +1);
    if (t >= 4) m.Update(t - 4, -1);
    t++;
  }
  benchmark::DoNotOptimize(m.Empty());
}
BENCHMARK(BM_MutableAntichainUpdate);

void BM_ChannelPushPull(benchmark::State& state) {
  timely::Channel<uint64_t, uint64_t> chan(4);
  timely::Bundle<uint64_t, uint64_t> bundle;
  bundle.data.resize(1024, 7);
  for (auto _ : state) {
    timely::Bundle<uint64_t, uint64_t> b = bundle;
    chan.Push(1, std::move(b));
    timely::Bundle<uint64_t, uint64_t> out;
    chan.Pull(1, out);
    benchmark::DoNotOptimize(out.data.size());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_ChannelPushPull);

// Channel drain: popping N queued bundles one lock at a time vs draining
// the whole queue with one PullAll swap.
void BM_ChannelPullEach(benchmark::State& state) {
  const size_t n = 64;
  timely::Channel<uint64_t, uint64_t> chan(2);
  for (auto _ : state) {
    state.PauseTiming();
    for (size_t i = 0; i < n; ++i) {
      timely::Bundle<uint64_t, uint64_t> b;
      b.time = i;
      b.data.resize(256, i);
      chan.Push(0, std::move(b));
    }
    state.ResumeTiming();
    timely::Bundle<uint64_t, uint64_t> out;
    size_t got = 0;
    while (chan.Pull(0, out)) got++;
    benchmark::DoNotOptimize(got);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_ChannelPullEach);

void BM_ChannelPullAll(benchmark::State& state) {
  const size_t n = 64;
  timely::Channel<uint64_t, uint64_t> chan(2);
  std::deque<timely::Bundle<uint64_t, uint64_t>> drained;
  for (auto _ : state) {
    state.PauseTiming();
    for (size_t i = 0; i < n; ++i) {
      timely::Bundle<uint64_t, uint64_t> b;
      b.time = i;
      b.data.resize(256, i);
      chan.Push(0, std::move(b));
    }
    state.ResumeTiming();
    size_t got = chan.PullAll(0, drained);
    benchmark::DoNotOptimize(got);
    drained.clear();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_ChannelPullAll);

// Bundle-buffer pool: recycling capacity through the channel vs growing a
// fresh vector per bundle (the pre-batching behavior).
void BM_BundleBufferFresh(benchmark::State& state) {
  for (auto _ : state) {
    std::vector<uint64_t> buf;
    for (size_t i = 0; i < 1024; ++i) buf.push_back(i);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * 1024));
}
BENCHMARK(BM_BundleBufferFresh);

void BM_BundleBufferPooled(benchmark::State& state) {
  timely::Channel<uint64_t, uint64_t> chan(1);
  for (auto _ : state) {
    std::vector<uint64_t> buf = chan.AcquireBuffer();
    for (size_t i = 0; i < 1024; ++i) buf.push_back(i);
    benchmark::DoNotOptimize(buf.data());
    chan.RecycleBuffer(std::move(buf));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * 1024));
}
BENCHMARK(BM_BundleBufferPooled);

// Routing dispatch: one type-erased call per record (the pre-batching
// hot path) vs one batch_targets call computing every target.
void BM_RoutePerRecordDispatch(benchmark::State& state) {
  auto pact = timely::Pact<uint64_t>::Exchange(
      [](const uint64_t& k) { return HashMix64(k); });
  std::vector<uint64_t> recs(1024);
  for (size_t i = 0; i < recs.size(); ++i) recs[i] = i;
  uint32_t peers = 4;
  benchmark::DoNotOptimize(peers);  // runtime divisor, as in the engine
  uint64_t acc = 0;
  for (auto _ : state) {
    for (const auto& r : recs) acc += pact.hash(r) % peers;
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * recs.size()));
}
BENCHMARK(BM_RoutePerRecordDispatch);

void BM_RouteBatchDispatch(benchmark::State& state) {
  auto pact = timely::Pact<uint64_t>::Exchange(
      [](const uint64_t& k) { return HashMix64(k); });
  std::vector<uint64_t> recs(1024);
  for (size_t i = 0; i < recs.size(); ++i) recs[i] = i;
  std::vector<uint32_t> targets(recs.size());
  for (auto _ : state) {
    pact.batch_targets(recs.data(), recs.size(), 4, targets.data());
    benchmark::DoNotOptimize(targets.data());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * recs.size()));
}
BENCHMARK(BM_RouteBatchDispatch);

// Progress-batch consolidation: a typical step's change batch collapses
// to a handful of applied deltas.
void BM_ConsolidateChanges(benchmark::State& state) {
  std::vector<timely::Change<uint64_t>> batch;
  for (auto _ : state) {
    state.PauseTiming();
    batch.clear();
    for (uint32_t i = 0; i < 64; ++i) {
      batch.push_back({i % 4, 100 + i % 2, i % 8 == 0 ? +8 : -1});
    }
    state.ResumeTiming();
    timely::ConsolidateChanges(batch);
    benchmark::DoNotOptimize(batch.data());
  }
}
BENCHMARK(BM_ConsolidateChanges);

void BM_PlanOptimizedBatches(benchmark::State& state) {
  const uint32_t bins = static_cast<uint32_t>(state.range(0));
  auto from = MakeInitialAssignment(bins, 8);
  Assignment to = from;
  for (uint32_t b = 0; b < bins; ++b) to[b] = (from[b] + 1 + b % 3) % 8;
  auto moves = DiffAssignments(from, to);
  for (auto _ : state) {
    auto batches =
        PlanBatches(MigrationStrategy::kOptimized, moves, from, 0);
    benchmark::DoNotOptimize(batches.size());
  }
}
BENCHMARK(BM_PlanOptimizedBatches)->Arg(256)->Arg(4096);

// ---------------------------------------------------------------------
// Steady-state throughput suite: full dataflows, closed loop. Each worker
// injects its share of records (dense per-key counting state, so the
// workload itself is nearly free and the runtime hot path dominates),
// advancing epochs as it goes; throughput is records over the wall time
// from spawn to full drain.

struct SteadyConfig {
  std::string name;
  uint32_t workers = 4;
  uint64_t records_per_worker = 1 << 18;
  uint64_t epochs = 8;
  uint32_t num_bins = 4096;   // megaphone path only; the paper's §4.2 pick
  bool use_megaphone = true;  // false: native exchange + stateful unary
};

struct SteadyResult {
  double seconds = 0;
  uint64_t records = 0;
  double recs_per_sec = 0;
};

constexpr uint64_t kSteadyDomain = 1 << 16;  // distinct keys, power of two

SteadyResult RunSteadyThroughput(const SteadyConfig& cfg) {
  using T = uint64_t;
  using timely::OpCtx;
  using timely::Scope;
  using timely::Worker;

  const int log_domain = 63 - __builtin_clzll(kSteadyDomain);
  const uint64_t keys_per_bin = kSteadyDomain / cfg.num_bins;
  // Keys are pre-generated per worker and timing starts once every worker
  // is ready to inject, so the measurement covers the dataflow, not the
  // load generator.
  std::atomic<uint32_t> ready{0};
  std::atomic<uint64_t> t_begin{0};

  timely::Execute(timely::Config{cfg.workers}, [&](Worker& w) {
    struct Handles {
      timely::Input<ControlInst, T> ctrl;
      timely::Input<uint64_t, T> data;
      timely::ProbeHandle<T> probe;
    };
    auto handles = w.Dataflow<T>([&](Scope<T>& s) -> Handles {
      auto [ctrl_in, ctrl_stream] = timely::NewInput<ControlInst>(s);
      auto [data_in, data_stream] = timely::NewInput<uint64_t>(s);
      timely::ProbeHandle<T> probe;
      if (cfg.use_megaphone) {
        struct DenseBin {
          std::vector<uint64_t> counts;
          void Serialize(Writer& wr) const { Encode(wr, counts); }
          static DenseBin Deserialize(Reader& r) {
            return DenseBin{Decode<std::vector<uint64_t>>(r)};
          }
        };
        Config mcfg;
        mcfg.num_bins = cfg.num_bins;
        mcfg.name = "SteadyCount";
        const int shift = 64 - log_domain;
        const uint64_t slot_mask = keys_per_bin - 1;
        auto out = Unary<DenseBin, uint64_t>(
            ctrl_stream, data_stream,
            [shift](const uint64_t& k) { return k << shift; },
            [keys_per_bin, slot_mask](const T&, DenseBin& state,
                                      std::vector<uint64_t>& recs, auto,
                                      auto&) {
              if (state.counts.empty()) state.counts.resize(keys_per_bin);
              for (uint64_t k : recs) state.counts[k & slot_mask]++;
            },
            mcfg);
        probe = out.probe;
      } else {
        struct State {
          std::vector<uint64_t> counts;
        };
        const uint32_t workers = s.peers();
        auto out = timely::StatefulUnary<State, uint64_t>(
            data_stream, "NativeCount",
            [](const uint64_t& k) { return k; },  // worker = key % W
            [workers](const T&, std::vector<uint64_t>& recs, State& state,
                      OpCtx<T>&, timely::OutputHandle<uint64_t, T>&) {
              if (state.counts.empty()) {
                state.counts.resize(kSteadyDomain / workers + 1);
              }
              for (uint64_t k : recs) state.counts[k / workers]++;
            });
        probe = timely::Probe(out);
      }
      return Handles{ctrl_in, data_in, probe};
    });
    auto& [ctrl_in, data_in, probe] = handles;

    const uint64_t chunk = 4096;
    const uint64_t per_epoch =
        (cfg.records_per_worker + cfg.epochs - 1) / cfg.epochs;
    std::vector<uint64_t> keys(per_epoch * cfg.epochs);
    uint64_t idx = w.index();
    for (auto& k : keys) {
      k = HashMix64(idx) & (kSteadyDomain - 1);
      idx += cfg.workers;
    }

    // Sense barrier: measurement starts when every worker is ready.
    ready.fetch_add(1);
    while (ready.load() < cfg.workers) std::this_thread::yield();
    uint64_t expected = 0;
    t_begin.compare_exchange_strong(expected, NowNanos());

    std::vector<uint64_t> batch;
    batch.reserve(chunk);
    size_t next = 0;
    uint64_t chunks = 0;
    for (uint64_t e = 0; e < cfg.epochs; ++e) {
      for (uint64_t i = 0; i < per_epoch; i += chunk) {
        uint64_t n = std::min(chunk, per_epoch - i);
        batch.assign(keys.begin() + next, keys.begin() + next + n);
        next += n;
        data_in->SendBatch(std::move(batch));
        w.Step();
        // Rotate oversubscribed workers at a coarse grain: a yield per
        // chunk costs a context switch each, which dominates at high
        // throughput.
        if ((++chunks & 7) == 0) std::this_thread::yield();
      }
      ctrl_in->AdvanceTo(e + 1);
      data_in->AdvanceTo(e + 1);
    }
    ctrl_in->Close();
    data_in->Close();
    (void)probe;
  });

  SteadyResult r;
  r.seconds = static_cast<double>(NowNanos() - t_begin.load()) * 1e-9;
  const uint64_t per_epoch =
      (cfg.records_per_worker + cfg.epochs - 1) / cfg.epochs;
  r.records = per_epoch * cfg.epochs * cfg.workers;
  r.recs_per_sec = static_cast<double>(r.records) / r.seconds;
  return r;
}

int RunSteadySuite(const Flags& flags) {
  const uint64_t records =
      flags.GetInt("records", (1 << 18) * 4ull);  // total, all workers
  const uint64_t epochs = flags.GetInt("epochs", 8);
  const uint32_t bins = static_cast<uint32_t>(flags.GetInt("bins", 4096));
  MEGA_CHECK(bins > 0 && bins <= kSteadyDomain)
      << "--bins must be in [1, " << kSteadyDomain
      << "] (the key domain) so every bin holds at least one key";

  std::vector<SteadyConfig> configs;
  for (uint32_t workers : {1u, 4u}) {
    for (bool mega : {false, true}) {
      SteadyConfig c;
      c.name = std::string(mega ? "megaphone" : "native") + "-count-w" +
               std::to_string(workers);
      c.workers = workers;
      c.records_per_worker = records / workers;
      c.epochs = epochs;
      c.num_bins = bins;
      c.use_megaphone = mega;
      configs.push_back(c);
    }
  }

  JsonWriter json;
  json.BeginObject();
  json.Key("bench").Value("micro_steady_state");
  json.Key("suite").Value("steady_throughput");
  json.Key("steady").BeginArray();
  for (const auto& c : configs) {
    SteadyResult r = RunSteadyThroughput(c);
    std::printf("%-24s workers=%u records=%llu seconds=%.3f recs_per_sec=%.0f\n",
                c.name.c_str(), c.workers,
                static_cast<unsigned long long>(r.records), r.seconds,
                r.recs_per_sec);
    std::fflush(stdout);
    json.BeginObject();
    json.Key("name").Value(c.name);
    json.Key("workers").Value(static_cast<uint64_t>(c.workers));
    json.Key("records").Value(r.records);
    json.Key("seconds").Value(r.seconds);
    json.Key("recs_per_sec").Value(r.recs_per_sec);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  std::printf("# json\n%s\n", json.Str().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--steady", 8) == 0) {
      megaphone::Flags flags(argc, argv);
      return RunSteadySuite(flags);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
