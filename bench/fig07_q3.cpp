// Figure 7: NEXMark Q3 (incremental join, unbounded state) — all-at-once
// vs Megaphone batched migration, plus the native implementation panel.
#include "harness/nexmark_workload.hpp"

int main(int argc, char** argv) {
  return megaphone::NexmarkFigureMain(3, /*with_native=*/true, argc, argv);
}
