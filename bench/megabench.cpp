// megabench: the unified paper-figure bench driver. One binary subsumes
// every fig* main:
//
//   megabench --fig=1                       Figure 1 count timelines
//   megabench --fig=7        (or --query=3) NEXMark Q3 timelines
//   megabench --fig=5 --processes=2 --workers=2 --records=20000
//                                           distributed run over the TCP
//                                           mesh, merged JSON report
//   megabench --steady --out=steady.json    closed-loop throughput suite
//
// See --help for the full flag surface and README "Reproducing the
// figures" for the JSON report schema.
#include "harness/bench_driver.hpp"

int main(int argc, char** argv) {
  return megaphone::BenchDriverMain(argc, argv);
}
