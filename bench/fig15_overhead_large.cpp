// Figure 15: key-count overhead at a larger key domain (paper: 8192e6
// keys; scaled by default, raise with --domain). Shape to reproduce: small
// bin counts track native closely; very large bin counts degrade.
#include <cstdio>
#include <string>
#include <vector>

#include "harness/harness.hpp"

using namespace megaphone;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  CountBenchConfig base;
  base.workers = static_cast<uint32_t>(flags.GetInt("workers", 4));
  base.domain = flags.GetInt("domain", 1 << 23);
  base.rate = flags.GetDouble("rate", 100'000);
  base.duration_ms = flags.GetInt("duration_ms", 2000);
  base.mode = CountMode::kKeyCount;

  std::vector<uint32_t> log_bins = {4, 8, 12, 16, 20};

  std::printf("# Figure 15: key-count overhead (large domain=%llu) rate=%.0f\n",
              static_cast<unsigned long long>(base.domain), base.rate);
  struct Row {
    std::string name;
    Histogram hist;
  };
  std::vector<Row> rows;
  for (uint32_t lb : log_bins) {
    CountBenchConfig cfg = base;
    cfg.num_bins = 1u << lb;
    if (cfg.num_bins > cfg.domain) continue;
    auto r = RunCountBench(cfg);
    rows.push_back(Row{std::to_string(lb), std::move(r.per_record)});
  }
  {
    CountBenchConfig cfg = base;
    cfg.mode = CountMode::kNativeKey;
    auto r = RunCountBench(cfg);
    rows.push_back(Row{"Native", std::move(r.per_record)});
  }

  PrintPercentileHeader();
  for (auto& row : rows) PrintPercentileRow(row.name, row.hist);
  std::printf("\n");
  if (flags.GetBool("ccdf", false)) {
    for (auto& row : rows) PrintCcdf(row.name.c_str(), row.hist);
  }
  return 0;
}
