// Figure 1: service latency during migration — all-at-once (prior work)
// vs Megaphone's fluid and optimized strategies, on the key-count workload.
//
// The paper migrates one billion keys (8 GB) on a 4-machine cluster; the
// default here is scaled to run on one machine in seconds (override with
// --domain/--rate/--duration_ms). The expected *shape* is unchanged:
// all-at-once produces a latency spike orders of magnitude above steady
// state and proportional to the state moved, while fluid and optimized
// migrations bound the spike at per-bin granularity.
#include <cstdio>

#include "harness/harness.hpp"

using namespace megaphone;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  CountBenchConfig base;
  base.workers = static_cast<uint32_t>(flags.GetInt("workers", 4));
  base.num_bins = static_cast<uint32_t>(flags.GetInt("bins", 1024));
  base.domain = flags.GetInt("domain", 1 << 23);
  base.rate = flags.GetDouble("rate", 400'000);
  base.duration_ms = flags.GetInt("duration_ms", 6000);
  base.mode = CountMode::kKeyCount;
  base.batch_size = flags.GetInt("batch_size", 64);
  const uint64_t migrate_at = flags.GetInt("migrate_at_ms", 2000);

  std::printf(
      "# Figure 1: migration latency timelines, key-count, domain=%llu "
      "rate=%.0f workers=%u bins=%u\n",
      static_cast<unsigned long long>(base.domain), base.rate, base.workers,
      base.num_bins);

  struct Variant {
    const char* label;
    MigrationStrategy strategy;
  };
  const Variant variants[] = {
      {"all-at-once", MigrationStrategy::kAllAtOnce},
      {"fluid", MigrationStrategy::kFluid},
      {"optimized", MigrationStrategy::kOptimized},
  };

  double max_ms[3] = {0, 0, 0};
  double steady_p99[3] = {0, 0, 0};
  int i = 0;
  for (const auto& v : variants) {
    CountBenchConfig cfg = base;
    cfg.strategy = v.strategy;
    cfg.migrations.push_back(
        {migrate_at, MakeImbalancedAssignment(cfg.num_bins, cfg.workers)});
    auto result = RunCountBench(cfg);
    PrintTimeline(v.label, result.timeline);
    if (!result.migrations.empty()) {
      max_ms[i] = result.migrations[0].max_ms;
      PrintMigrationSummary(v.label, cfg.num_bins, "bins", result.migrations);
    }
    steady_p99[i] =
        static_cast<double>(result.steady.Quantile(0.99)) * 1e-6;
    std::printf("# %s: steady p99 = %.3f ms\n\n", v.label, steady_p99[i]);
    i++;
  }

  std::printf("# summary (max latency during migration, ms)\n");
  std::printf("%-14s %12.3f\n", "all-at-once", max_ms[0]);
  std::printf("%-14s %12.3f\n", "fluid", max_ms[1]);
  std::printf("%-14s %12.3f\n", "optimized", max_ms[2]);
  if (max_ms[1] > 0) {
    std::printf("# all-at-once / fluid max-latency ratio: %.1fx\n",
                max_ms[0] / max_ms[1]);
  }
  return 0;
}
