// Figure 1: service latency during migration — all-at-once (prior work)
// vs Megaphone's fluid and optimized strategies, on the key-count
// workload. Thin stub over the unified driver; megabench --fig=1 is the
// same bench (and adds --processes for distributed runs).
#include "harness/bench_driver.hpp"

int main(int argc, char** argv) {
  return megaphone::BenchDriverMain(argc, argv, 1);
}
