// Figure 9: NEXMark Q5 (hot items, sliding window with dilated time) —
// all-at-once vs batched migration.
#include "harness/nexmark_workload.hpp"

int main(int argc, char** argv) {
  return megaphone::NexmarkFigureMain(5, /*with_native=*/false, argc, argv);
}
