// Figure 9: NEXMark Q5 latency timeline with two reconfigurations.
// Thin stub over the unified driver; megabench --fig=9 (--query=5) is
// the same bench (and adds --processes for distributed runs).
#include "harness/bench_driver.hpp"

int main(int argc, char** argv) {
  return megaphone::BenchDriverMain(argc, argv, 9);
}
