// Shared types and configuration for the NEXMark query implementations.
#pragma once

#include <cstdint>
#include <string>
#include <tuple>
#include <utility>

#include "nexmark/event.hpp"
#include "timely/stream.hpp"

namespace nexmark {

/// The three demultiplexed event streams every query consumes.
template <typename T>
struct NexmarkStreams {
  timely::Stream<Person, T> persons;
  timely::Stream<Auction, T> auctions;
  timely::Stream<Bid, T> bids;
};

/// Per-query parameters. Windows are in event-time milliseconds and encode
/// the paper's time dilation (§5.1: Q5's sixty-minute window reported per
/// second, Q8's twelve-hour window dilated by 79x) as directly
/// configurable sizes.
struct QueryConfig {
  uint32_t num_bins = 256;
  uint64_t state_bytes_per_sec = 0;
  /// State-chunk frame bound and per-step flow-control budget for the
  /// query's stateful operators (0 = monolithic single-frame migration).
  uint64_t chunk_bytes = 0;
  uint64_t chunk_bytes_per_step = 0;

  uint32_t q3_category = 0;      // auction category to join on
  uint64_t q5_slide_ms = 200;    // Q5 slide ("report every second", dilated)
  uint64_t q5_slices = 10;       // Q5 window = slide * slices
  uint64_t q7_window_ms = 1000;  // Q7 tumbling window ("each minute", dilated)
  uint64_t q8_window_ms = 5000;  // Q8 tumbling window ("twelve hours", dilated)
};

// Query output types.
using Q1Out = Bid;                                   // price in EUR
using Q2Out = std::pair<uint64_t, uint64_t>;         // (auction, price)
using Q3Out = std::tuple<std::string, std::string, std::string, uint64_t>;
// (name, city, state, auction)
struct ClosedAuction {  // intermediate for Q4/Q6
  uint64_t auction = 0;
  uint64_t seller = 0;
  uint32_t category = 0;
  uint64_t price = 0;
  friend bool operator==(const ClosedAuction&, const ClosedAuction&) = default;
  friend bool operator<(const ClosedAuction& a, const ClosedAuction& b) {
    return a.auction < b.auction;
  }
};
using Q4Out = std::pair<uint32_t, uint64_t>;  // (category, running avg)
using Q5Out = std::pair<uint64_t, uint64_t>;  // (window end, hottest auction)
using Q6Out = std::pair<uint64_t, uint64_t>;  // (seller, avg of last 10)
using Q7Out = std::pair<uint64_t, uint64_t>;  // (window end, highest bid)
using Q8Out = std::pair<uint64_t, std::string>;  // (person id, name)

/// Q3's person filter (paper: "recommend local auctions to individuals").
inline bool Q3StateFilter(const Person& p) {
  return p.state == "OR" || p.state == "ID" || p.state == "CA";
}

/// Q2's auction filter.
inline bool Q2AuctionFilter(const Bid& b) { return b.auction % 8 == 0; }

/// Q1's currency conversion (USD -> EUR at the paper-era rate 0.908).
inline uint64_t ToEuros(uint64_t usd) { return usd * 908 / 1000; }

}  // namespace nexmark
