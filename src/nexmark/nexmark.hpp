// Umbrella header for the NEXMark benchmark substrate.
#pragma once

#include "nexmark/event.hpp"              // IWYU pragma: export
#include "nexmark/generator.hpp"          // IWYU pragma: export
#include "nexmark/queries_common.hpp"     // IWYU pragma: export
#include "nexmark/queries_megaphone.hpp"  // IWYU pragma: export
#include "nexmark/queries_native.hpp"     // IWYU pragma: export
