// Native (hand-tuned timely, non-migratable) implementations of the eight
// NEXMark queries — the paper's "Native" baseline (Table 1, Figs. 5-12).
// State lives in operator closures partitioned by worker; it cannot move.
//
// The `// [Qn-native-begin/end]` markers delimit each query's
// implementation for the Table 1 lines-of-code comparison.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/hash.hpp"
#include "nexmark/queries_common.hpp"
#include "timely/timely.hpp"

namespace nexmark {

using megaphone::HashMix64;

// [Q1-native-begin]
/// Q1: convert every bid's price to euros (stateless map).
template <typename T>
timely::Stream<Q1Out, T> Q1Native(NexmarkStreams<T>& in, const QueryConfig&) {
  return timely::Map(in.bids, [](Bid b) {
    b.price = ToEuros(b.price);
    return b;
  });
}
// [Q1-native-end]

// [Q2-native-begin]
/// Q2: bids on a selected set of auctions (stateless filter + project).
template <typename T>
timely::Stream<Q2Out, T> Q2Native(NexmarkStreams<T>& in, const QueryConfig&) {
  auto filtered = timely::Filter(in.bids, Q2AuctionFilter);
  return timely::Map(filtered,
                     [](Bid b) { return Q2Out{b.auction, b.price}; });
}
// [Q2-native-end]

// [Q3-native-begin]
/// Q3: incremental join of local people (OR/ID/CA) with their category-X
/// auctions, keyed by person id == auction seller.
template <typename T>
timely::Stream<Q3Out, T> Q3Native(NexmarkStreams<T>& in,
                                  const QueryConfig& cfg) {
  auto people = timely::Filter(in.persons, Q3StateFilter);
  auto auctions = timely::Filter(in.auctions, [cfg](const Auction& a) {
    return a.category == cfg.q3_category;
  });
  timely::OperatorBuilder<T> b(*in.persons.scope(), "Q3NativeJoin");
  auto* p_in = b.AddInput(
      people, timely::Pact<Person>::Exchange(
                  [](const Person& p) { return HashMix64(p.id); }));
  auto* a_in = b.AddInput(
      auctions, timely::Pact<Auction>::Exchange(
                    [](const Auction& a) { return HashMix64(a.seller); }));
  auto [out, stream] = b.template AddOutput<Q3Out>();
  auto people_state = std::make_shared<std::unordered_map<uint64_t, Person>>();
  auto pending = std::make_shared<
      std::unordered_map<uint64_t, std::vector<uint64_t>>>();
  b.Build([=](timely::OpCtx<T>&) {
    p_in->ForEach([&](const T& t, std::vector<Person>& ps) {
      for (auto& p : ps) {
        auto it = pending->find(p.id);
        if (it != pending->end()) {
          for (uint64_t auction : it->second) {
            out->Send(t, Q3Out{p.name, p.city, p.state, auction});
          }
          pending->erase(it);
        }
        (*people_state)[p.id] = std::move(p);
      }
    });
    a_in->ForEach([&](const T& t, std::vector<Auction>& as) {
      for (auto& a : as) {
        auto it = people_state->find(a.seller);
        if (it != people_state->end()) {
          const Person& p = it->second;
          out->Send(t, Q3Out{p.name, p.city, p.state, a.id});
        } else {
          (*pending)[a.seller].push_back(a.id);
        }
      }
    });
  });
  return stream;
}
// [Q3-native-end]

// [ClosedAuctions-native-begin]
/// Shared Q4/Q6 sub-plan: auctions joined with their bids, keyed by
/// auction id; at each auction's expiry the highest bid received by then
/// is emitted as the closing price.
template <typename T>
timely::Stream<ClosedAuction, T> ClosedAuctionsNative(
    NexmarkStreams<T>& in, const QueryConfig&) {
  timely::OperatorBuilder<T> b(*in.auctions.scope(), "Q46NativeClosed");
  auto* a_in = b.AddInput(
      in.auctions, timely::Pact<Auction>::Exchange(
                       [](const Auction& a) { return HashMix64(a.id); }));
  auto* b_in = b.AddInput(
      in.bids, timely::Pact<Bid>::Exchange(
                   [](const Bid& bd) { return HashMix64(bd.auction); }));
  auto [out, stream] = b.template AddOutput<ClosedAuction>();
  struct State {
    std::unordered_map<uint64_t, Auction> open;
    std::unordered_map<uint64_t, uint64_t> best;
    std::unordered_map<uint64_t, std::vector<Bid>> early;  // bid before
                                                           // auction (ties)
    std::map<T, std::vector<uint64_t>> closing;
    timely::FrontierNotificator<T> notif;
  };
  auto st = std::make_shared<State>();
  b.Build([=](timely::OpCtx<T>& ctx) {
    a_in->ForEach([&](const T&, std::vector<Auction>& as) {
      for (auto& a : as) {
        st->closing[a.expires].push_back(a.id);
        st->notif.NotifyAt(ctx, a.expires);
        auto early = st->early.find(a.id);
        if (early != st->early.end()) {
          for (const Bid& bd : early->second) {
            if (bd.date_time <= a.expires) {
              auto& best = st->best[a.id];
              best = std::max(best, bd.price);
            }
          }
          st->early.erase(early);
        }
        st->open.emplace(a.id, std::move(a));
      }
    });
    b_in->ForEach([&](const T&, std::vector<Bid>& bs) {
      for (auto& bd : bs) {
        auto it = st->open.find(bd.auction);
        if (it != st->open.end()) {
          if (bd.date_time <= it->second.expires) {
            auto& best = st->best[bd.auction];
            best = std::max(best, bd.price);
          }
        } else {
          st->early[bd.auction].push_back(bd);  // same-time arrival race
        }
      }
    });
    st->notif.ForEachReady(
        ctx, {&a_in->frontier(), &b_in->frontier()}, [&](const T& t) {
          auto it = st->closing.find(t);
          if (it == st->closing.end()) return;
          for (uint64_t id : it->second) {
            const Auction& a = st->open.at(id);
            uint64_t price = 0;
            auto best = st->best.find(id);
            if (best != st->best.end()) price = best->second;
            out->Send(t, ClosedAuction{a.id, a.seller, a.category, price});
            st->best.erase(id);
            st->open.erase(id);
          }
          st->closing.erase(it);
        });
  });
  return stream;
}
// [ClosedAuctions-native-end]

// [Q4-native-begin]
/// Q4: running average closing price per category.
template <typename T>
timely::Stream<Q4Out, T> Q4Native(NexmarkStreams<T>& in,
                                  const QueryConfig& cfg) {
  auto closed = ClosedAuctionsNative(in, cfg);
  timely::OperatorBuilder<T> b(*in.auctions.scope(), "Q4NativeAvg");
  auto* c_in = b.AddInput(
      closed, timely::Pact<ClosedAuction>::Exchange(
                  [](const ClosedAuction& c) { return HashMix64(c.category); }));
  auto [out, stream] = b.template AddOutput<Q4Out>();
  struct State {
    std::unordered_map<uint32_t, std::pair<uint64_t, uint64_t>> sums;
    std::map<T, std::map<uint32_t, std::vector<uint64_t>>> stash;
    timely::FrontierNotificator<T> notif;
  };
  auto st = std::make_shared<State>();
  b.Build([=](timely::OpCtx<T>& ctx) {
    c_in->ForEach([&](const T& t, std::vector<ClosedAuction>& cs) {
      for (auto& c : cs) st->stash[t][c.category].push_back(c.price);
      st->notif.NotifyAt(ctx, t);
    });
    st->notif.ForEachReady(ctx, {&c_in->frontier()}, [&](const T& t) {
      auto it = st->stash.find(t);
      if (it == st->stash.end()) return;
      for (auto& [cat, prices] : it->second) {
        auto& [sum, count] = st->sums[cat];
        for (uint64_t p : prices) sum += p;
        count += prices.size();
        out->Send(t, Q4Out{cat, sum / count});
      }
      st->stash.erase(it);
    });
  });
  return stream;
}
// [Q4-native-end]

// [Q5-native-begin]
/// Q5: hot items — per sliding window, the auction with the most bids.
template <typename T>
timely::Stream<Q5Out, T> Q5Native(NexmarkStreams<T>& in,
                                  const QueryConfig& cfg) {
  const uint64_t slide = cfg.q5_slide_ms, slices = cfg.q5_slices;
  using Partial = std::tuple<uint64_t, uint64_t, uint64_t>;  // (end, auction,
                                                             // count)
  // Stage 1: per-auction bid counts in sliding-window slices.
  timely::OperatorBuilder<T> b1(*in.bids.scope(), "Q5NativeCount");
  auto* b_in = b1.AddInput(
      in.bids, timely::Pact<Bid>::Exchange(
                   [](const Bid& bd) { return HashMix64(bd.auction); }));
  auto [p_out, partials] = b1.template AddOutput<Partial>();
  struct S1 {
    std::unordered_map<uint64_t, std::map<uint64_t, uint64_t>> slots;
    std::map<T, std::set<uint64_t>> flush;  // boundary -> auctions
    timely::FrontierNotificator<T> notif;
  };
  auto s1 = std::make_shared<S1>();
  b1.Build([=](timely::OpCtx<T>& ctx) {
    b_in->ForEach([&](const T&, std::vector<Bid>& bs) {
      for (auto& bd : bs) {
        uint64_t slot = bd.date_time / slide;
        s1->slots[bd.auction][slot]++;
        T boundary = (slot + 1) * slide;
        if (s1->flush[boundary].insert(bd.auction).second) {
          s1->notif.NotifyAt(ctx, boundary);
        }
      }
    });
    s1->notif.ForEachReady(ctx, {&b_in->frontier()}, [&](const T& f) {
      auto it = s1->flush.find(f);
      if (it == s1->flush.end()) return;
      uint64_t first_slot = f / slide >= slices ? f / slide - slices : 0;
      for (uint64_t auction : it->second) {
        auto& slots = s1->slots[auction];
        while (!slots.empty() && slots.begin()->first < first_slot) {
          slots.erase(slots.begin());
        }
        // The window [f - slide*slices, f) excludes the slice starting at
        // f itself (bids at exactly f belong to the next window).
        uint64_t count = 0;
        for (auto& [slot, c] : slots) {
          if (slot < f / slide) count += c;
        }
        if (count > 0) p_out->Send(f, Partial{f, auction, count});
        if (!slots.empty()) {
          if (s1->flush[f + slide].insert(auction).second) {
            s1->notif.NotifyAt(ctx, f + slide);
          }
        } else {
          s1->slots.erase(auction);
        }
      }
      s1->flush.erase(it);
    });
  });
  // Stage 2: global argmax per window.
  timely::OperatorBuilder<T> b2(*in.bids.scope(), "Q5NativeMax");
  auto* part_in = b2.AddInput(
      partials, timely::Pact<Partial>::Exchange(
                    [](const Partial& p) { return HashMix64(std::get<0>(p)); }));
  auto [out, stream] = b2.template AddOutput<Q5Out>();
  struct S2 {
    std::map<T, std::pair<uint64_t, uint64_t>> best;  // window -> (cnt, id)
    timely::FrontierNotificator<T> notif;
  };
  auto s2 = std::make_shared<S2>();
  b2.Build([=](timely::OpCtx<T>& ctx) {
    part_in->ForEach([&](const T& t, std::vector<Partial>& ps) {
      for (auto& [end, auction, count] : ps) {
        auto [it, inserted] = s2->best.emplace(
            end, std::pair<uint64_t, uint64_t>{count, auction});
        if (!inserted) {
          // Higher count wins; lowest auction id breaks ties.
          auto cand = std::pair<uint64_t, uint64_t>{count, auction};
          if (cand.first > it->second.first ||
              (cand.first == it->second.first &&
               cand.second < it->second.second)) {
            it->second = cand;
          }
        }
      }
      s2->notif.NotifyAt(ctx, t);
    });
    s2->notif.ForEachReady(ctx, {&part_in->frontier()}, [&](const T& f) {
      auto it = s2->best.find(f);
      if (it == s2->best.end()) return;
      out->Send(f, Q5Out{f, it->second.second});
      s2->best.erase(it);
    });
  });
  return stream;
}
// [Q5-native-end]

// [Q6-native-begin]
/// Q6: average closing price of each seller's last ten auctions.
template <typename T>
timely::Stream<Q6Out, T> Q6Native(NexmarkStreams<T>& in,
                                  const QueryConfig& cfg) {
  auto closed = ClosedAuctionsNative(in, cfg);
  timely::OperatorBuilder<T> b(*in.auctions.scope(), "Q6NativeAvg");
  auto* c_in = b.AddInput(
      closed, timely::Pact<ClosedAuction>::Exchange(
                  [](const ClosedAuction& c) { return HashMix64(c.seller); }));
  auto [out, stream] = b.template AddOutput<Q6Out>();
  struct State {
    std::unordered_map<uint64_t, std::vector<uint64_t>> last10;
    std::map<T, std::map<uint64_t, std::vector<ClosedAuction>>> stash;
    timely::FrontierNotificator<T> notif;
  };
  auto st = std::make_shared<State>();
  b.Build([=](timely::OpCtx<T>& ctx) {
    c_in->ForEach([&](const T& t, std::vector<ClosedAuction>& cs) {
      for (auto& c : cs) st->stash[t][c.seller].push_back(c);
      st->notif.NotifyAt(ctx, t);
    });
    st->notif.ForEachReady(ctx, {&c_in->frontier()}, [&](const T& t) {
      auto it = st->stash.find(t);
      if (it == st->stash.end()) return;
      for (auto& [seller, closures] : it->second) {
        std::sort(closures.begin(), closures.end());  // by auction id
        auto& ring = st->last10[seller];
        for (auto& c : closures) {
          ring.push_back(c.price);
          if (ring.size() > 10) ring.erase(ring.begin());
        }
        uint64_t sum = 0;
        for (uint64_t p : ring) sum += p;
        out->Send(t, Q6Out{seller, sum / ring.size()});
      }
      st->stash.erase(it);
    });
  });
  return stream;
}
// [Q6-native-end]

// [Q7-native-begin]
/// Q7: highest bid per tumbling window, with worker-local pre-aggregation
/// before the global exchange.
template <typename T>
timely::Stream<Q7Out, T> Q7Native(NexmarkStreams<T>& in,
                                  const QueryConfig& cfg) {
  const uint64_t window = cfg.q7_window_ms;
  // Stage 1: worker-local window maxima (Pipeline: no exchange).
  timely::OperatorBuilder<T> b1(*in.bids.scope(), "Q7NativeLocal");
  auto* b_in = b1.AddInput(in.bids, timely::Pact<Bid>::Pipeline());
  auto [p_out, partials] = b1.template AddOutput<Q7Out>();
  struct S1 {
    std::map<T, uint64_t> local_max;  // window end -> max price
    timely::FrontierNotificator<T> notif;
  };
  auto s1 = std::make_shared<S1>();
  b1.Build([=](timely::OpCtx<T>& ctx) {
    b_in->ForEach([&](const T&, std::vector<Bid>& bs) {
      for (auto& bd : bs) {
        T end = (bd.date_time / window + 1) * window;
        auto [it, inserted] = s1->local_max.emplace(end, bd.price);
        if (!inserted) it->second = std::max(it->second, bd.price);
        if (inserted) s1->notif.NotifyAt(ctx, end);
      }
    });
    s1->notif.ForEachReady(ctx, {&b_in->frontier()}, [&](const T& end) {
      auto it = s1->local_max.find(end);
      if (it == s1->local_max.end()) return;
      p_out->Send(end, Q7Out{end, it->second});
      s1->local_max.erase(it);
    });
  });
  // Stage 2: global maximum across workers.
  timely::OperatorBuilder<T> b2(*in.bids.scope(), "Q7NativeGlobal");
  auto* part_in = b2.AddInput(
      partials, timely::Pact<Q7Out>::Exchange(
                    [](const Q7Out& p) { return HashMix64(p.first); }));
  auto [out, stream] = b2.template AddOutput<Q7Out>();
  auto s2 = std::make_shared<S1>();
  b2.Build([=](timely::OpCtx<T>& ctx) {
    part_in->ForEach([&](const T&, std::vector<Q7Out>& ps) {
      for (auto& [end, price] : ps) {
        auto [it, inserted] = s2->local_max.emplace(end, price);
        if (!inserted) it->second = std::max(it->second, price);
        if (inserted) s2->notif.NotifyAt(ctx, end);
      }
    });
    s2->notif.ForEachReady(ctx, {&part_in->frontier()}, [&](const T& end) {
      auto it = s2->local_max.find(end);
      if (it == s2->local_max.end()) return;
      out->Send(end, Q7Out{end, it->second});
      s2->local_max.erase(it);
    });
  });
  return stream;
}
// [Q7-native-end]

// [Q8-native-begin]
/// Q8: persons who both registered and sold something in the same
/// tumbling window.
template <typename T>
timely::Stream<Q8Out, T> Q8Native(NexmarkStreams<T>& in,
                                  const QueryConfig& cfg) {
  const uint64_t window = cfg.q8_window_ms;
  timely::OperatorBuilder<T> b(*in.persons.scope(), "Q8NativeJoin");
  auto* p_in = b.AddInput(
      in.persons, timely::Pact<Person>::Exchange(
                      [](const Person& p) { return HashMix64(p.id); }));
  auto* a_in = b.AddInput(
      in.auctions, timely::Pact<Auction>::Exchange(
                       [](const Auction& a) { return HashMix64(a.seller); }));
  auto [out, stream] = b.template AddOutput<Q8Out>();
  struct PerPerson {
    uint64_t window = ~uint64_t{0};
    std::string name;
    uint64_t emitted_window = ~uint64_t{0};
    std::vector<uint64_t> pending_auction_windows;
  };
  auto st = std::make_shared<std::unordered_map<uint64_t, PerPerson>>();
  b.Build([=](timely::OpCtx<T>&) {
    p_in->ForEach([&](const T& t, std::vector<Person>& ps) {
      for (auto& p : ps) {
        auto& s = (*st)[p.id];
        s.window = p.date_time / window;
        s.name = p.name;
        for (uint64_t w : s.pending_auction_windows) {
          if (w == s.window && s.emitted_window != w) {
            out->Send(t, Q8Out{p.id, s.name});
            s.emitted_window = w;
          }
        }
        s.pending_auction_windows.clear();
      }
    });
    a_in->ForEach([&](const T& t, std::vector<Auction>& as) {
      for (auto& a : as) {
        auto& s = (*st)[a.seller];
        uint64_t w = a.date_time / window;
        if (s.window == w) {
          if (s.emitted_window != w) {
            out->Send(t, Q8Out{a.seller, s.name});
            s.emitted_window = w;
          }
        } else if (s.window == ~uint64_t{0}) {
          s.pending_auction_windows.push_back(w);  // same-time race
        }
      }
    });
  });
  return stream;
}
// [Q8-native-end]

}  // namespace nexmark
