// Deterministic NEXMark event generator.
//
// Events are a pure function of their global index, so any worker can
// generate any stride of the stream independently and two runs with the
// same configuration produce identical event sequences — the property the
// correctness tests (native vs Megaphone implementations) rely on.
//
// Proportions follow the reference generator: out of every 50 events,
// 1 is a new person, 3 are new auctions, and 46 are bids (so the number of
// "active" auctions stays roughly constant, as the paper notes in §5.1).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

#include "common/check.hpp"
#include "common/hash.hpp"
#include "nexmark/event.hpp"

namespace nexmark {

struct GeneratorConfig {
  uint64_t seed = 42;
  /// Out of each 50 consecutive events: 1 person, 3 auctions, 46 bids.
  static constexpr uint64_t kPersonsPerEpoch = 1;
  static constexpr uint64_t kAuctionsPerEpoch = 3;
  static constexpr uint64_t kBidsPerEpoch = 46;
  static constexpr uint64_t kEpoch = 50;

  /// Bids and sellers are drawn from the most recent `active` entities,
  /// modelling the benchmark's hot working set.
  uint64_t active_people = 1000;
  uint64_t in_flight_auctions = 100;
  /// Auction lifetime in event-time ms; the dilation knob for Q4/Q6.
  uint64_t auction_duration_ms = 2000;
  uint32_t num_categories = 10;
  /// Event-time ms advance per event: time(i) = i * 1000 / events_per_sec.
  uint64_t events_per_sec = 10'000;
};

/// US states, with OR/ID/CA first (the Q3 filter set).
inline const char* kStates[] = {"OR", "ID", "CA", "WA", "NV", "AZ", "UT", "NM"};
inline const char* kCities[] = {"Portland", "Boise",   "Sacramento",
                                "Seattle",  "Reno",    "Phoenix",
                                "SaltLake", "Santa Fe"};

class Generator {
 public:
  explicit Generator(GeneratorConfig cfg = {}) : cfg_(cfg) {}

  const GeneratorConfig& config() const { return cfg_; }

  /// Event time of event index `i`, in ms.
  uint64_t TimeOf(uint64_t i) const {
    return i * 1000 / cfg_.events_per_sec;
  }

  /// Number of person events among indices [0, i).
  static uint64_t PersonsBefore(uint64_t i) {
    uint64_t full = i / GeneratorConfig::kEpoch;
    uint64_t off = i % GeneratorConfig::kEpoch;
    return full + std::min<uint64_t>(off, GeneratorConfig::kPersonsPerEpoch);
  }

  /// Number of auction events among indices [0, i).
  static uint64_t AuctionsBefore(uint64_t i) {
    uint64_t full = i / GeneratorConfig::kEpoch;
    uint64_t off = i % GeneratorConfig::kEpoch;
    uint64_t extra =
        off <= GeneratorConfig::kPersonsPerEpoch
            ? 0
            : std::min(off - GeneratorConfig::kPersonsPerEpoch,
                       GeneratorConfig::kAuctionsPerEpoch);
    return full * GeneratorConfig::kAuctionsPerEpoch + extra;
  }

  /// The event at global index `i` (pure function).
  Event At(uint64_t i) const {
    uint64_t off = i % GeneratorConfig::kEpoch;
    uint64_t t = TimeOf(i);
    uint64_t h = megaphone::HashMix64(cfg_.seed ^ (i * 0x2545F4914F6CDD1DULL));
    Event e;
    if (off < GeneratorConfig::kPersonsPerEpoch) {
      uint64_t id = PersonsBefore(i);
      e.kind = Event::Kind::kPerson;
      e.person.id = id;
      e.person.name = "person-" + std::to_string(id);
      e.person.state = kStates[h % 8];
      e.person.city = kCities[h % 8];
      e.person.date_time = t;
    } else if (off < GeneratorConfig::kPersonsPerEpoch +
                         GeneratorConfig::kAuctionsPerEpoch) {
      uint64_t id = AuctionsBefore(i);
      e.kind = Event::Kind::kAuction;
      e.auction.id = id;
      e.auction.seller = PickRecent(h, PersonsBefore(i), cfg_.active_people);
      e.auction.category = static_cast<uint32_t>((h >> 8) % cfg_.num_categories);
      e.auction.initial_bid = 1 + (h >> 16) % 1000;
      e.auction.reserve = e.auction.initial_bid + (h >> 24) % 1000;
      e.auction.date_time = t;
      e.auction.expires = t + cfg_.auction_duration_ms;
    } else {
      e.kind = Event::Kind::kBid;
      e.bid.auction = PickRecent(h, AuctionsBefore(i), cfg_.in_flight_auctions);
      e.bid.bidder = PickRecent(h >> 4, PersonsBefore(i), cfg_.active_people);
      e.bid.price = 1 + (h >> 20) % 10'000;
      e.bid.date_time = t;
    }
    return e;
  }

 private:
  /// Picks uniformly among the most recent `window` ids below `count`
  /// (count is always ≥ 1: event 0 is a person, event 1 an auction).
  static uint64_t PickRecent(uint64_t h, uint64_t count, uint64_t window) {
    MEGA_CHECK_GT(count, 0u);
    uint64_t lo = count > window ? count - window : 0;
    return lo + h % (count - lo);
  }

  GeneratorConfig cfg_;
};

}  // namespace nexmark
