// Megaphone implementations of the eight NEXMark queries (paper §5.1):
// the same query logic as queries_native.hpp, expressed through the
// migratable stateful operator interface. State lives in bins on the
// migratable-state layer (src/state/): keyed join/aggregate state is a
// state::MapState, small ordered aggregates (categories, sellers) use
// state::SortedState — so every query migrates as size-bounded chunks
// absorbed incrementally, with no per-query serde or bin plumbing (plain
// aggregate per-key values declare their fields with MEGA_SERDE_FIELDS).
// Window triggers are post-dated records that migrate with their bin.
//
// The `// [Qn-mega-begin/end]` markers delimit each query's implementation
// for the Table 1 lines-of-code comparison.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/hash.hpp"
#include "megaphone/megaphone.hpp"
#include "nexmark/queries_common.hpp"
#include "nexmark/queries_native.hpp"
#include "timely/timely.hpp"

namespace nexmark {

using megaphone::Config;
using megaphone::ControlInst;
using megaphone::StatefulOutput;

/// Trivial bin state for stateless queries routed through Megaphone.
struct NoState {};

namespace detail {
template <typename T>
Config MegaConfig(const QueryConfig& cfg, const char* name) {
  Config m;
  m.num_bins = cfg.num_bins;
  m.state_bytes_per_sec = cfg.state_bytes_per_sec;
  m.chunk_bytes = cfg.chunk_bytes;
  m.chunk_bytes_per_step = cfg.chunk_bytes_per_step;
  m.name = name;
  (void)sizeof(T);
  return m;
}
}  // namespace detail

// [Q1-mega-begin]
/// Q1: currency conversion through the Megaphone interface (no state, so
/// migrations move nothing — the Figs. 5/6 baseline).
template <typename T>
StatefulOutput<Q1Out, T> Q1Mega(timely::Stream<ControlInst, T> control,
                                NexmarkStreams<T>& in,
                                const QueryConfig& cfg) {
  return megaphone::Unary<NoState, Q1Out>(
      control, in.bids, [](const Bid& b) { return HashMix64(b.auction); },
      [](const T&, NoState&, std::vector<Bid>& bids, auto emit, auto&) {
        for (auto& b : bids) {
          b.price = ToEuros(b.price);
          emit(std::move(b));
        }
      },
      detail::MegaConfig<T>(cfg, "Q1"));
}
// [Q1-mega-end]

// [Q2-mega-begin]
/// Q2: selection through the Megaphone interface.
template <typename T>
StatefulOutput<Q2Out, T> Q2Mega(timely::Stream<ControlInst, T> control,
                                NexmarkStreams<T>& in,
                                const QueryConfig& cfg) {
  return megaphone::Unary<NoState, Q2Out>(
      control, in.bids, [](const Bid& b) { return HashMix64(b.auction); },
      [](const T&, NoState&, std::vector<Bid>& bids, auto emit, auto&) {
        for (auto& b : bids) {
          if (Q2AuctionFilter(b)) emit(Q2Out{b.auction, b.price});
        }
      },
      detail::MegaConfig<T>(cfg, "Q2"));
}
// [Q2-mega-end]

// [Q3-mega-begin]
/// Q3: incremental person⋈auction join with migratable per-key state.
template <typename T>
StatefulOutput<Q3Out, T> Q3Mega(timely::Stream<ControlInst, T> control,
                                NexmarkStreams<T>& in,
                                const QueryConfig& cfg) {
  auto people = timely::Filter(in.persons, Q3StateFilter);
  auto auctions = timely::Filter(in.auctions, [cfg](const Auction& a) {
    return a.category == cfg.q3_category;
  });
  using State = megaphone::state::MapState<
      uint64_t, std::pair<std::optional<Person>, std::vector<uint64_t>>>;
  return megaphone::Binary<State, Q3Out>(
      control, people, auctions,
      [](const Person& p) { return HashMix64(p.id); },
      [](const Auction& a) { return HashMix64(a.seller); },
      [](const T&, State& state, std::vector<Person>& ps,
         std::vector<Auction>& as, auto emit, auto&) {
        for (auto& p : ps) {
          auto& [person, pending] = state[p.id];
          for (uint64_t auction : pending) {
            emit(Q3Out{p.name, p.city, p.state, auction});
          }
          pending.clear();
          person = std::move(p);
        }
        for (auto& a : as) {
          auto& [person, pending] = state[a.seller];
          if (person) {
            emit(Q3Out{person->name, person->city, person->state, a.id});
          } else {
            pending.push_back(a.id);
          }
        }
      },
      detail::MegaConfig<T>(cfg, "Q3"));
}
// [Q3-mega-end]

// [ClosedAuctions-mega-begin]
/// Shared Q4/Q6 sub-plan: migratable auction⋈bid join keyed by auction id.
/// Each auction schedules a post-dated "close" marker at its expiry; the
/// marker migrates with the bin, so in-flight windows survive migration.
struct Q46Open {
  Auction auction;
  uint64_t best = 0;
};
template <typename T>
StatefulOutput<ClosedAuction, T> ClosedAuctionsMega(
    timely::Stream<ControlInst, T> control, NexmarkStreams<T>& in,
    const QueryConfig& cfg) {
  constexpr uint64_t kClose = ~uint64_t{0};  // marker: initial_bid = kClose
  using State = megaphone::state::MapState<uint64_t, Q46Open>;
  return megaphone::Binary<State, ClosedAuction>(
      control, in.auctions, in.bids,
      [](const Auction& a) { return HashMix64(a.id); },
      [](const Bid& b) { return HashMix64(b.auction); },
      [](const T& t, State& state, std::vector<Auction>& as,
         std::vector<Bid>& bs, auto emit, auto& sched) {
        std::vector<uint64_t> closing;
        for (auto& a : as) {
          if (a.initial_bid == kClose) {
            closing.push_back(a.id);  // close after same-time bids apply
            continue;
          }
          Auction marker = a;
          marker.initial_bid = kClose;
          sched.Schedule1(a.expires, std::move(marker));
          state.emplace(a.id, Q46Open{std::move(a), 0});
        }
        for (auto& b : bs) {
          auto it = state.find(b.auction);
          if (it != state.end() && b.date_time <= it->second.auction.expires) {
            it->second.best = std::max(it->second.best, b.price);
          }
        }
        for (uint64_t id : closing) {
          auto it = state.find(id);
          if (it == state.end()) continue;
          const Auction& a = it->second.auction;
          emit(ClosedAuction{a.id, a.seller, a.category, it->second.best});
          state.erase(it);
        }
        (void)t;
      },
      detail::MegaConfig<T>(cfg, "Q46Closed"));
}
// [ClosedAuctions-mega-end]

// [Q4-mega-begin]
/// Q4: running average closing price per category.
template <typename T>
StatefulOutput<Q4Out, T> Q4Mega(timely::Stream<ControlInst, T> control,
                                NexmarkStreams<T>& in,
                                const QueryConfig& cfg) {
  auto closed = ClosedAuctionsMega(control, in, cfg);
  // Categories are few and ordered: the sorted backend migrates them as
  // sorted runs with O(1) hinted ingest per entry.
  using State =
      megaphone::state::SortedState<uint32_t, std::pair<uint64_t, uint64_t>>;
  return megaphone::Unary<State, Q4Out>(
      control, closed.stream,
      [](const ClosedAuction& c) { return HashMix64(c.category); },
      [](const T&, State& state, std::vector<ClosedAuction>& cs, auto emit,
         auto&) {
        std::map<uint32_t, std::vector<uint64_t>> by_cat;
        for (auto& c : cs) by_cat[c.category].push_back(c.price);
        for (auto& [cat, prices] : by_cat) {
          auto& [sum, count] = state[cat];
          for (uint64_t p : prices) sum += p;
          count += prices.size();
          emit(Q4Out{cat, sum / count});
        }
      },
      detail::MegaConfig<T>(cfg, "Q4Avg"));
}
// [Q4-mega-end]

// [Q5-mega-begin]
/// Q5: hot items over a sliding window; per-auction slice counts with
/// post-dated flush markers, then a per-window global argmax.
struct Q5PerAuction {
  std::map<uint64_t, uint64_t> slots;  // slice -> bid count
  uint64_t next_flush = 0;             // 0 = no flush scheduled
  MEGA_SERDE_FIELDS(Q5PerAuction, slots, next_flush)
};
template <typename T>
StatefulOutput<Q5Out, T> Q5Mega(timely::Stream<ControlInst, T> control,
                                NexmarkStreams<T>& in,
                                const QueryConfig& cfg) {
  constexpr uint64_t kFlush = ~uint64_t{0};  // marker: bidder = kFlush
  const uint64_t slide = cfg.q5_slide_ms, slices = cfg.q5_slices;
  using Partial = std::tuple<uint64_t, uint64_t, uint64_t>;
  using S1 = megaphone::state::MapState<uint64_t, Q5PerAuction>;
  auto partials = megaphone::Unary<S1, Partial>(
      control, in.bids, [](const Bid& b) { return HashMix64(b.auction); },
      [slide, slices](const T& t, S1& state, std::vector<Bid>& bs, auto emit,
                      auto& sched) {
        std::vector<uint64_t> flushes;
        for (auto& b : bs) {
          if (b.bidder == kFlush) {
            flushes.push_back(b.auction);
            continue;
          }
          auto& s = state[b.auction];
          s.slots[b.date_time / slide]++;
          if (s.next_flush == 0) {
            s.next_flush = (b.date_time / slide + 1) * slide;
            Bid marker{b.auction, kFlush, 0, s.next_flush};
            sched.ScheduleAt(s.next_flush, std::move(marker));
          }
        }
        for (uint64_t auction : flushes) {
          auto it = state.find(auction);
          if (it == state.end()) continue;
          auto& s = it->second;
          uint64_t f = t;
          uint64_t first_slot = f / slide >= slices ? f / slide - slices : 0;
          while (!s.slots.empty() && s.slots.begin()->first < first_slot) {
            s.slots.erase(s.slots.begin());
          }
          uint64_t count = 0;
          for (auto& [slot, c] : s.slots) {
            if (slot < f / slide) count += c;
          }
          if (count > 0) emit(Partial{f, auction, count});
          if (!s.slots.empty()) {
            s.next_flush = f + slide;
            Bid marker{auction, kFlush, 0, s.next_flush};
            sched.ScheduleAt(s.next_flush, std::move(marker));
          } else {
            state.erase(it);
          }
        }
      },
      detail::MegaConfig<T>(cfg, "Q5Count"));
  // Stage 2: all of a window's partials share its timestamp, so a single
  // application per (time, bin) computes the global argmax statelessly.
  return megaphone::Unary<NoState, Q5Out>(
      control, partials.stream,
      [](const Partial& p) { return HashMix64(std::get<0>(p)); },
      [](const T& t, NoState&, std::vector<Partial>& ps, auto emit, auto&) {
        // (count, auction); higher count wins, lowest auction breaks ties.
        std::pair<uint64_t, uint64_t> best{0, ~uint64_t{0}};
        for (auto& [end, auction, count] : ps) {
          if (count > best.first ||
              (count == best.first && auction < best.second)) {
            best = {count, auction};
          }
        }
        if (best.first > 0) emit(Q5Out{t, best.second});
      },
      detail::MegaConfig<T>(cfg, "Q5Max"));
}
// [Q5-mega-end]

// [Q6-mega-begin]
/// Q6: average closing price of each seller's last ten auctions.
template <typename T>
StatefulOutput<Q6Out, T> Q6Mega(timely::Stream<ControlInst, T> control,
                                NexmarkStreams<T>& in,
                                const QueryConfig& cfg) {
  auto closed = ClosedAuctionsMega(control, in, cfg);
  // Seller -> last-ten ring; sorted for the same reason as Q4.
  using State =
      megaphone::state::SortedState<uint64_t, std::vector<uint64_t>>;
  return megaphone::Unary<State, Q6Out>(
      control, closed.stream,
      [](const ClosedAuction& c) { return HashMix64(c.seller); },
      [](const T&, State& state, std::vector<ClosedAuction>& cs, auto emit,
         auto&) {
        std::map<uint64_t, std::vector<ClosedAuction>> by_seller;
        for (auto& c : cs) by_seller[c.seller].push_back(c);
        for (auto& [seller, closures] : by_seller) {
          std::sort(closures.begin(), closures.end());  // by auction id
          auto& ring = state[seller];
          for (auto& c : closures) {
            ring.push_back(c.price);
            if (ring.size() > 10) ring.erase(ring.begin());
          }
          uint64_t sum = 0;
          for (uint64_t p : ring) sum += p;
          emit(Q6Out{seller, sum / ring.size()});
        }
      },
      detail::MegaConfig<T>(cfg, "Q6Avg"));
}
// [Q6-mega-end]

// [Q7-mega-begin]
/// Q7: highest bid per tumbling window. Worker-local pre-aggregation is
/// shared with the native implementation (it holds no keyed state); the
/// windowed global maximum is a migratable Megaphone operator.
template <typename T>
StatefulOutput<Q7Out, T> Q7Mega(timely::Stream<ControlInst, T> control,
                                NexmarkStreams<T>& in,
                                const QueryConfig& cfg) {
  const uint64_t window = cfg.q7_window_ms;
  timely::OperatorBuilder<T> b1(*in.bids.scope(), "Q7MegaLocal");
  auto* b_in = b1.AddInput(in.bids, timely::Pact<Bid>::Pipeline());
  auto [p_out, partials] = b1.template AddOutput<Q7Out>();
  struct S1 {
    std::map<T, uint64_t> local_max;
    timely::FrontierNotificator<T> notif;
  };
  auto s1 = std::make_shared<S1>();
  b1.Build([=](timely::OpCtx<T>& ctx) {
    b_in->ForEach([&](const T&, std::vector<Bid>& bs) {
      for (auto& bd : bs) {
        T end = (bd.date_time / window + 1) * window;
        auto [it, inserted] = s1->local_max.emplace(end, bd.price);
        if (!inserted) it->second = std::max(it->second, bd.price);
        if (inserted) s1->notif.NotifyAt(ctx, end);
      }
    });
    s1->notif.ForEachReady(ctx, {&b_in->frontier()}, [&](const T& end) {
      auto it = s1->local_max.find(end);
      if (it == s1->local_max.end()) return;
      p_out->Send(end, Q7Out{end, it->second});
      s1->local_max.erase(it);
    });
  });
  return megaphone::Unary<NoState, Q7Out>(
      control, partials,
      [](const Q7Out& p) { return HashMix64(p.first); },
      [](const T& t, NoState&, std::vector<Q7Out>& ps, auto emit, auto&) {
        uint64_t best = 0;
        for (auto& [end, price] : ps) best = std::max(best, price);
        emit(Q7Out{t, best});
      },
      detail::MegaConfig<T>(cfg, "Q7Max"));
}
// [Q7-mega-end]

// [Q8-mega-begin]
/// Q8: persons who registered and sold in the same tumbling window.
struct Q8PerPerson {
  uint64_t window = ~uint64_t{0};
  std::string name;
  uint64_t emitted = ~uint64_t{0};
  /// Auction windows seen before this person's record arrived (the
  /// same-time race: an auction bundle can be processed ahead of the
  /// person bundle it joins with). Flushed when the person arrives.
  std::vector<uint64_t> pending;
  MEGA_SERDE_FIELDS(Q8PerPerson, window, name, emitted, pending)
};
template <typename T>
StatefulOutput<Q8Out, T> Q8Mega(timely::Stream<ControlInst, T> control,
                                NexmarkStreams<T>& in,
                                const QueryConfig& cfg) {
  const uint64_t window = cfg.q8_window_ms;
  using State = megaphone::state::MapState<uint64_t, Q8PerPerson>;
  return megaphone::Binary<State, Q8Out>(
      control, in.persons, in.auctions,
      [](const Person& p) { return HashMix64(p.id); },
      [](const Auction& a) { return HashMix64(a.seller); },
      [window](const T&, State& state, std::vector<Person>& ps,
               std::vector<Auction>& as, auto emit, auto&) {
        for (auto& p : ps) {
          auto& s = state[p.id];
          s.window = p.date_time / window;
          s.name = std::move(p.name);
          for (uint64_t w : s.pending) {
            if (w == s.window && s.emitted != w) {
              emit(Q8Out{p.id, s.name});
              s.emitted = w;
            }
          }
          s.pending.clear();
        }
        for (auto& a : as) {
          auto& s = state[a.seller];
          uint64_t w = a.date_time / window;
          if (s.window == w) {
            if (s.emitted != w) {
              emit(Q8Out{a.seller, s.name});
              s.emitted = w;
            }
          } else if (s.window == ~uint64_t{0}) {
            s.pending.push_back(w);  // same-time race: person not yet seen
          }
        }
      },
      detail::MegaConfig<T>(cfg, "Q8"));
}
// [Q8-mega-end]

}  // namespace nexmark
