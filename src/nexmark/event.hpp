// NEXMark event types (Tucker et al., the benchmark the paper evaluates
// on): an auction site's stream of new persons, new auctions, and bids.
#pragma once

#include <cstdint>
#include <string>

#include "common/serde.hpp"

namespace nexmark {

struct Person {
  uint64_t id = 0;
  std::string name;
  std::string city;
  std::string state;
  uint64_t date_time = 0;  // event time, ms

  friend bool operator==(const Person&, const Person&) = default;

  void Serialize(megaphone::Writer& w) const {
    megaphone::Encode(w, id);
    megaphone::Encode(w, name);
    megaphone::Encode(w, city);
    megaphone::Encode(w, state);
    megaphone::Encode(w, date_time);
  }
  static Person Deserialize(megaphone::Reader& r) {
    Person p;
    p.id = megaphone::Decode<uint64_t>(r);
    p.name = megaphone::Decode<std::string>(r);
    p.city = megaphone::Decode<std::string>(r);
    p.state = megaphone::Decode<std::string>(r);
    p.date_time = megaphone::Decode<uint64_t>(r);
    return p;
  }
};

struct Auction {
  uint64_t id = 0;
  uint64_t seller = 0;
  uint32_t category = 0;
  uint64_t initial_bid = 0;
  uint64_t reserve = 0;
  uint64_t date_time = 0;  // event time, ms
  uint64_t expires = 0;    // event time, ms

  friend bool operator==(const Auction&, const Auction&) = default;
};

struct Bid {
  uint64_t auction = 0;
  uint64_t bidder = 0;
  uint64_t price = 0;
  uint64_t date_time = 0;  // event time, ms

  friend bool operator==(const Bid&, const Bid&) = default;
};

/// A demultiplexed event: exactly one of the three payloads is set,
/// according to `kind`.
struct Event {
  enum class Kind : uint8_t { kPerson, kAuction, kBid };
  Kind kind = Kind::kBid;
  Person person;
  Auction auction;
  Bid bid;

  uint64_t time_ms() const {
    switch (kind) {
      case Kind::kPerson: return person.date_time;
      case Kind::kAuction: return auction.date_time;
      case Kind::kBid: return bid.date_time;
    }
    return 0;
  }
};

}  // namespace nexmark
