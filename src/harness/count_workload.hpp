// The counting micro-benchmark workload and its open-loop driver
// (paper §5.2, §5.3): a stream of uniformly random 64-bit identifiers whose
// per-identifier occurrence counts are maintained as operator state.
//
// Operator variants provided:
//   * kHashCount — Megaphone operator, bins hold hash maps ("hash count");
//   * kKeyCount  — Megaphone operator, bins hold dense arrays ("key count");
//   * kNativeHash / kNativeKey — hand-tuned timely operators without
//     migration support, the paper's "Native" baselines;
//   * kPadCount / kSpillCount — counts carrying a configurable byte pad
//     per key, held in the in-memory MapState vs. the spill-to-disk
//     LogState: the fig. 25 memory-bound pair.
//
// The driver is open-loop: records are injected at their scheduled wall
// deadline regardless of system responsiveness, per-epoch completion is
// observed through a probe on the operator output, and latencies are
// recorded into 250 ms timeline buckets — precisely the paper's harness.
#pragma once

#include <atomic>
#include <csignal>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/hash.hpp"
#include "common/rate_limiter.hpp"
#include "common/time_util.hpp"
#include "harness/bench_shard.hpp"
#include "harness/histogram.hpp"
#include "harness/rss.hpp"
#include "megaphone/megaphone.hpp"
#include "state/checkpoint.hpp"
#include "timely/timely.hpp"

namespace megaphone {

enum class CountMode {
  kHashCount,
  kKeyCount,
  kNativeHash,
  kNativeKey,
  kPadCount,
  kSpillCount,
};

inline const char* CountModeName(CountMode m) {
  switch (m) {
    case CountMode::kHashCount: return "hash-count";
    case CountMode::kKeyCount: return "key-count";
    case CountMode::kNativeHash: return "native-hash";
    case CountMode::kNativeKey: return "native-key";
    case CountMode::kPadCount: return "map-state";
    case CountMode::kSpillCount: return "log-state";
  }
  return "?";
}

/// Count plus a configurable byte payload: the value type of the
/// kPadCount / kSpillCount modes, whose point is state *volume* (fig. 25
/// sizes total state well past the RSS cap). The pad is written once, on
/// the key's first touch, so a preload materializes the full footprint
/// before measurement starts.
struct PadCount {
  uint64_t count = 0;
  std::vector<uint8_t> pad;
  MEGA_SERDE_FIELDS(PadCount, count, pad)
};

struct CountBenchConfig {
  /// Total workers across all processes of the run.
  uint32_t workers = 4;
  uint32_t num_bins = 1 << 8;
  uint64_t domain = 1 << 20;  // distinct keys; power of two
  double rate = 500'000;      // records/second, all workers combined
  uint64_t duration_ms = 3000;
  CountMode mode = CountMode::kKeyCount;
  bool preload = true;  // touch every key before measuring
  uint64_t state_bytes_per_sec = 0;
  /// State-chunk frame bound and per-step flow-control budget
  /// (megaphone::Config::chunk_bytes / chunk_bytes_per_step; 0 =
  /// monolithic single-frame migration).
  uint64_t chunk_bytes = 0;
  uint64_t chunk_bytes_per_step = 0;

  struct Migration {
    uint64_t at_ms;  // relative to measurement start
    Assignment to;
  };
  std::vector<Migration> migrations;
  MigrationStrategy strategy = MigrationStrategy::kBatched;
  size_t batch_size = 16;
  uint64_t gap_ms = 0;

  uint64_t seed = 1;
  uint64_t epoch_ns = 1'000'000;  // 1 ms epochs

  /// Byte payload each key's value carries (kPadCount / kSpillCount).
  uint64_t value_pad_bytes = 0;
  /// Spill backend knobs (kSpillCount): segment directory and LogState
  /// thresholds. Empty / 0 keep the process-global defaults.
  std::string state_dir;
  uint64_t spill_memtable_bytes = 0;
  uint64_t spill_segment_bytes = 0;

  /// Closed-loop adaptive control (megaphone modes only): every
  /// `stats_every` epochs each worker ships its per-bin statistics to
  /// global worker 0, which runs AdaptivePolicy and schedules the plans
  /// it accepts — no fixed migration schedule required.
  bool adaptive = false;
  AdaptiveOptions adaptive_opts;
  uint64_t stats_every = 50;  // epochs between reports/decisions
  /// Hot-key flip drill: from `flip_at_ms` (0 = off), `flip_prob_pct`% of
  /// injected records target bins initially owned by `flip_worker`.
  uint64_t flip_at_ms = 0;
  uint32_t flip_worker = 0;
  uint32_t flip_prob_pct = 90;
};

struct CountBenchResult {
  Timeline timeline{250'000'000};
  Histogram per_record;  // per-record latency, steady state and migration
  Histogram steady;      // samples outside migration windows
  std::vector<MigrationStats> migrations;
  /// (t_sec, bytes) RSS samples pooled over every process's shard.
  std::vector<RssSample> rss_samples;
  uint64_t records_sent = 0;
  double duration_sec = 0;
  /// True iff this process hosts global worker 0; only then are the
  /// merged metrics above populated.
  bool root = true;
  /// Per-process shards the merged metrics were pooled from (root only).
  std::vector<BenchShard> shards;

  /// Adaptive-controller outcome (root only; -1 = not observed). The
  /// reaction time runs from the hot-key flip to the first autonomously
  /// scheduled plan; `rebalanced_sec` marks when the last migration the
  /// policy issued finished draining.
  double reaction_ms = -1;
  double flip_sec = -1;
  double rebalanced_sec = -1;
  size_t plans_issued = 0;
  std::vector<std::pair<uint64_t, Assignment>> plans;
};

namespace detail {

inline uint64_t CountKey(uint64_t seed, uint64_t idx, uint64_t domain) {
  return HashMix64(seed ^ (idx * 0x9e3779b97f4a7c15ULL)) & (domain - 1);
}

inline int Log2(uint64_t v) { return 63 - __builtin_clzll(v); }

/// Deterministically decides whether record `idx` is part of the hot-key
/// skew (`pct` percent are, once the skew is active). Independent of the
/// key hash so flipping the skew on never changes the cold keys.
inline bool SkewedRecord(uint64_t seed, uint64_t idx, uint32_t pct) {
  return HashMix64(~seed ^ (idx * 0xbf58476d1ce4e5b9ULL)) % 100 < pct;
}

/// A deterministic hot key for record `idx`: a key whose *hash* bin (the
/// kHashCount / deterministic-harness routing, BinOf ∘ HashMix64) is
/// initially owned by `hot_worker`. Rejection-sampled over reseeded
/// CountKeys — 1/workers of draws hit, so 64 tries miss with probability
/// (1-1/W)^64, negligible for any sane worker count; the last draw is
/// kept regardless so the function stays total.
inline uint64_t HotHashKey(uint64_t seed, uint64_t idx, uint64_t domain,
                           uint32_t num_bins, uint32_t workers,
                           uint32_t hot_worker) {
  uint64_t k = 0;
  for (uint64_t j = 0; j < 64; ++j) {
    k = CountKey(seed ^ ((j + 1) * 0x94d049bb133111ebULL), idx, domain);
    if (BinOf(HashMix64(k), num_bins) % workers == hot_worker) break;
  }
  return k;
}

/// A deterministic hot key for record `idx` under *key-range* binning
/// (kKeyCount: bin = key / keys_per_bin): picks one of `hot_worker`'s
/// initial bins and a uniform slot inside it. Exact, no rejection.
inline uint64_t HotRangeKey(uint64_t seed, uint64_t idx, uint64_t domain,
                            uint32_t num_bins, uint32_t workers,
                            uint32_t hot_worker) {
  uint64_t h = HashMix64(seed ^ (idx * 0x2545f4914f6cdd1dULL));
  uint64_t keys_per_bin = domain / num_bins;
  uint64_t n_hot = (num_bins - 1 - hot_worker) / workers + 1;
  uint64_t bin = hot_worker + workers * (h % n_hot);
  return bin * keys_per_bin + (h >> 32) % keys_per_bin;
}

}  // namespace detail

/// Runs the counting workload; see CountBenchConfig. Each process's local
/// root worker records its own latency shard (against the process's
/// tracker replica, so wire delay is measured where it occurs); the
/// shards are shipped to global worker 0 and merged into the result.
/// `tcfg.workers * tcfg.processes` must equal `cfg.workers`.
inline CountBenchResult RunCountBench(const CountBenchConfig& cfg,
                                      const timely::Config& tcfg) {
  using timely::OpCtx;
  using timely::Scope;
  using timely::Worker;
  using T = uint64_t;

  MEGA_CHECK((cfg.domain & (cfg.domain - 1)) == 0) << "domain: power of two";
  MEGA_CHECK_GE(cfg.domain, cfg.num_bins);
  MEGA_CHECK_EQ(tcfg.workers * std::max(1u, tcfg.processes), cfg.workers);

  CountBenchResult result;
  std::mutex result_mu;
  std::shared_ptr<std::vector<BenchShard>> root_shards;
  std::atomic<uint64_t> t0{0};  // measurement origin (set after preload)
  std::atomic<uint64_t> total_sent{0};

  const int log_domain = detail::Log2(cfg.domain);
  const uint64_t keys_per_bin = cfg.domain / cfg.num_bins;
  const bool is_native = cfg.mode == CountMode::kNativeHash ||
                         cfg.mode == CountMode::kNativeKey;

  // LogState backends are default-constructed inside bins and snapshot
  // the process-global options at construction, so the spill knobs must
  // be published before any worker thread builds a dataflow.
  if (cfg.mode == CountMode::kSpillCount) {
    state::LogStateOptions& o = state::GlobalLogStateOptions();
    if (!cfg.state_dir.empty()) o.dir = cfg.state_dir;
    if (cfg.spill_memtable_bytes != 0) {
      o.memtable_bytes = cfg.spill_memtable_bytes;
    }
    if (cfg.spill_segment_bytes != 0) {
      o.segment_bytes = cfg.spill_segment_bytes;
    }
  }

  timely::Execute(tcfg, [&](Worker& w) {
    struct Handles {
      timely::Input<ControlInst, T> ctrl;
      timely::Input<uint64_t, T> data;
      timely::ProbeHandle<T> probe;
      ShardChannel<T> rep;
      StatsChannel<T> stats;  // adaptive runs only
      std::function<void(BinStats&)> take_stats;
    };
    auto handles = w.Dataflow<T>([&](Scope<T>& s) -> Handles {
      auto [ctrl_in, ctrl_stream] = timely::NewInput<ControlInst>(s);
      auto [data_in, data_stream] = timely::NewInput<uint64_t>(s);
      ShardChannel<T> rep = AddShardChannel(s);
      StatsChannel<T> stats;
      if (cfg.adaptive && !is_native) stats = AddStatsChannel(s);
      std::function<void(BinStats&)> take_stats;
      timely::ProbeHandle<T> probe;
      Config mcfg;
      mcfg.num_bins = cfg.num_bins;
      mcfg.state_bytes_per_sec = cfg.state_bytes_per_sec;
      mcfg.chunk_bytes = cfg.chunk_bytes;
      mcfg.chunk_bytes_per_step = cfg.chunk_bytes_per_step;
      mcfg.name = CountModeName(cfg.mode);
      switch (cfg.mode) {
        case CountMode::kHashCount: {
          using BinState = state::MapState<uint64_t, uint64_t>;
          auto out = Unary<BinState, uint64_t>(
              ctrl_stream, data_stream,
              [](const uint64_t& k) { return HashMix64(k); },
              [](const T&, BinState& state, std::vector<uint64_t>& recs,
                 auto, auto&) {
                for (uint64_t k : recs) state[k]++;
              },
              mcfg);
          probe = out.probe;
          take_stats = out.take_bin_stats;
          break;
        }
        case CountMode::kKeyCount: {
          using DenseBin = state::DenseState<uint64_t>;
          const int shift = 64 - log_domain;
          const uint64_t slot_mask = keys_per_bin - 1;
          auto out = Unary<DenseBin, uint64_t>(
              ctrl_stream, data_stream,
              [shift](const uint64_t& k) { return k << shift; },
              [keys_per_bin, slot_mask](const T&, DenseBin& state,
                                        std::vector<uint64_t>& recs, auto,
                                        auto&) {
                if (state.empty()) state.resize(keys_per_bin);
                for (uint64_t k : recs) state[k & slot_mask]++;
              },
              mcfg);
          probe = out.probe;
          take_stats = out.take_bin_stats;
          break;
        }
        case CountMode::kPadCount:
        case CountMode::kSpillCount: {
          // One fold, two backends: the bin layer treats a ChunkableState
          // type as its own backend, so the map/log pair differs only in
          // the declared state type.
          auto build = [&]<typename BinState>() {
            auto out = Unary<BinState, uint64_t>(
                ctrl_stream, data_stream,
                [](const uint64_t& k) { return HashMix64(k); },
                [pad = cfg.value_pad_bytes](const T&, BinState& state,
                                            std::vector<uint64_t>& recs,
                                            auto, auto&) {
                  for (uint64_t k : recs) {
                    PadCount& v = state[k];
                    if (pad != 0 && v.pad.empty()) v.pad.assign(pad, 0xa5);
                    v.count++;
                  }
                },
                mcfg);
            probe = out.probe;
            take_stats = out.take_bin_stats;
          };
          if (cfg.mode == CountMode::kPadCount) {
            build.template operator()<state::MapState<uint64_t, PadCount>>();
          } else {
            build.template
            operator()<state::LogState<uint64_t, PadCount>>();
          }
          break;
        }
        case CountMode::kNativeHash: {
          using State = std::unordered_map<uint64_t, uint64_t>;
          auto out = timely::StatefulUnary<State, uint64_t>(
              data_stream, "NativeHashCount",
              [](const uint64_t& k) { return HashMix64(k); },
              [](const T&, std::vector<uint64_t>& recs, State& state,
                 OpCtx<T>&, timely::OutputHandle<uint64_t, T>&) {
                for (uint64_t k : recs) state[k]++;
              });
          probe = timely::Probe(out);
          break;
        }
        case CountMode::kNativeKey: {
          struct State {
            std::vector<uint64_t> counts;
          };
          const uint32_t workers = s.peers();
          auto out = timely::StatefulUnary<State, uint64_t>(
              data_stream, "NativeKeyCount",
              [](const uint64_t& k) { return k; },  // worker = key % W
              [workers, domain = cfg.domain](const T&,
                                             std::vector<uint64_t>& recs,
                                             State& state, OpCtx<T>&,
                                             timely::OutputHandle<uint64_t, T>&) {
                if (state.counts.empty()) {
                  state.counts.resize(domain / workers + 1);
                }
                for (uint64_t k : recs) state.counts[k / workers]++;
              });
          probe = timely::Probe(out);
          break;
        }
      }
      return Handles{ctrl_in, data_in, probe, std::move(rep),
                     std::move(stats), std::move(take_stats)};
    });
    auto& [ctrl_in, data_in, probe, rep, stats, take_stats] = handles;

    typename MigrationController<T>::Options mopts;
    mopts.strategy = cfg.strategy;
    mopts.batch_size = cfg.batch_size;
    mopts.gap = cfg.gap_ms;  // epochs are 1 ms by default
    MigrationController<T> controller(ctrl_in, probe, w.index(), mopts);

    // ---- Preload: touch every key once at epoch 0, then wait. ----------
    if (cfg.preload) {
      std::vector<uint64_t> batch;
      for (uint64_t k = w.index(); k < cfg.domain; k += cfg.workers) {
        batch.push_back(k);
        if (batch.size() == 4096) {
          data_in->SendBatch(std::move(batch));
          batch.clear();
          w.Step();
          std::this_thread::yield();
        }
      }
      data_in->SendBatch(std::move(batch));
    }
    if (!is_native) controller.Advance(0, 1);
    data_in->AdvanceTo(1);
    w.StepUntil([&] { return !probe.LessThan(1); });

    // ---- Measurement origin, shared across workers. --------------------
    uint64_t expected = 0;
    t0.compare_exchange_strong(expected, NowNanos());
    const uint64_t start = t0.load();
    const uint64_t end = start + cfg.duration_ms * 1'000'000;
    OpenLoopPacer pacer(cfg.rate, start);

    Assignment current = MakeInitialAssignment(cfg.num_bins, cfg.workers);
    size_t next_mig = 0;

    // Closed loop: reports land on (and plans come from) global worker 0.
    const bool adaptive = cfg.adaptive && !is_native;
    std::optional<AdaptiveController<T>> actrl;
    if (adaptive && w.index() == 0) {
      actrl.emplace(&controller, cfg.workers, current, cfg.adaptive_opts);
    }
    size_t ingested = 0;           // reports folded into the policy so far
    uint64_t next_stats = cfg.stats_every;
    const uint64_t flip_ns =
        cfg.flip_at_ms ? start + cfg.flip_at_ms * 1'000'000 : UINT64_MAX;
    const bool hash_bins = cfg.mode == CountMode::kHashCount ||
                           cfg.mode == CountMode::kNativeHash ||
                           cfg.mode == CountMode::kPadCount ||
                           cfg.mode == CountMode::kSpillCount;
    double reaction_ms = -1;
    double rebalanced_sec = -1;

    // Per-process measurement state, owned by the local root worker.
    Timeline timeline(250'000'000);
    Histogram per_record, steady;
    std::vector<MigrationStats> mig_stats;
    std::vector<std::pair<double, uint64_t>> rss;
    bool was_migrating = false;
    size_t batches_before = 0;
    uint64_t chunk_frames_before = 0;  // chunk_counters() at window start
    uint64_t chunk_bytes_before = 0;
    uint64_t next_ack = 1;       // next epoch awaiting completion
    uint64_t next_tick = 0;      // next 250 ms observation boundary
    const uint64_t weight =
        std::max<uint64_t>(1, static_cast<uint64_t>(cfg.rate * 1e-9 *
                                                    cfg.epoch_ns));

    uint64_t cur_epoch = 1;
    uint64_t sent = w.index();  // global record index, strided by worker
    while (true) {
      uint64_t now = NowNanos();
      if (now >= end) break;
      uint64_t e = 1 + (now - start) / cfg.epoch_ns;
      if (e > cur_epoch) {
        while (next_mig < cfg.migrations.size() &&
               cfg.migrations[next_mig].at_ms * 1'000'000 + start <= now) {
          controller.MigrateTo(current, cfg.migrations[next_mig].to);
          current = cfg.migrations[next_mig].to;
          next_mig++;
        }
        if (adaptive && e >= next_stats) {
          if (actrl) {
            auto& reps = *stats.reports;
            for (; ingested < reps.size(); ++ingested) {
              actrl->Ingest(reps[ingested]);
            }
            if (actrl->Step(e) && reaction_ms < 0 && now >= flip_ns) {
              reaction_ms = static_cast<double>(now - flip_ns) * 1e-6;
            }
          }
          BinStats bs;
          take_stats(bs);
          stats.Send(BinStatsReport::From(w.index(), e, std::move(bs)));
          next_stats += cfg.stats_every;
        }
        if (!is_native) controller.Advance(e, e + 1);
        data_in->AdvanceTo(e);
        if (adaptive) stats.in->AdvanceTo(e);
        cur_epoch = e;
      }
      // Open loop: inject everything due by now, regardless of backlog.
      uint64_t due = pacer.RecordsDueBy(now);
      uint64_t injected = 0;
      const bool flipped = now >= flip_ns;
      while (sent < due && injected < 65536) {
        uint64_t k;
        if (flipped &&
            detail::SkewedRecord(cfg.seed, sent, cfg.flip_prob_pct)) {
          k = hash_bins
                  ? detail::HotHashKey(cfg.seed, sent, cfg.domain,
                                       cfg.num_bins, cfg.workers,
                                       cfg.flip_worker)
                  : detail::HotRangeKey(cfg.seed, sent, cfg.domain,
                                        cfg.num_bins, cfg.workers,
                                        cfg.flip_worker);
        } else {
          k = detail::CountKey(cfg.seed, sent, cfg.domain);
        }
        data_in->Send(k);
        sent += cfg.workers;
        injected++;
      }
      w.Step();
      // With more worker threads than cores the OS must round-robin the
      // workers; yielding after each step keeps the rotation at loop
      // granularity rather than scheduler quanta (which would otherwise
      // put a multi-millisecond floor under every latency).
      std::this_thread::yield();

      if (w.IsLocalRoot()) {
        // Epoch completions -> latency samples.
        while (next_ack < cur_epoch && !probe.LessEqual(next_ack)) {
          uint64_t deadline = start + next_ack * cfg.epoch_ns;
          uint64_t lat = now > deadline ? now - deadline : 0;
          timeline.Add(now - start, lat, 1);
          per_record.Add(lat, weight);
          if (!controller.Migrating()) steady.Add(lat, weight);
          next_ack++;
        }
        if (now - start >= next_tick) {
          // Outstanding (not yet completed) work also registers latency,
          // so stalls are visible while they happen.
          if (next_ack < cur_epoch) {
            uint64_t deadline = start + next_ack * cfg.epoch_ns;
            if (now > deadline) timeline.Add(now - start, now - deadline, 1);
          }
          rss.emplace_back(static_cast<double>(now - start) * 1e-9,
                           CurrentRssBytes());
          next_tick += 250'000'000;
        }
        bool migrating = controller.Migrating();
        if (migrating && !was_migrating) {
          MigrationStats ms;
          ms.start_sec = static_cast<double>(now - start) * 1e-9;
          ms.batches = controller.completed_batches() - batches_before;
          mig_stats.push_back(ms);
          chunk_frames_before = chunk_counters().frames.load();
          chunk_bytes_before = chunk_counters().bytes.load();
        }
        if (!migrating && was_migrating && !mig_stats.empty()) {
          mig_stats.back().end_sec = static_cast<double>(now - start) * 1e-9;
          mig_stats.back().batches =
              controller.completed_batches() - batches_before;
          batches_before = controller.completed_batches();
          mig_stats.back().chunk_frames =
              chunk_counters().frames.load() - chunk_frames_before;
          mig_stats.back().chunk_bytes =
              chunk_counters().bytes.load() - chunk_bytes_before;
          if (actrl && !actrl->plans().empty()) {
            rebalanced_sec = static_cast<double>(now - start) * 1e-9;
          }
        }
        was_migrating = migrating;
      }
    }

    total_sent += (sent - w.index()) / cfg.workers;
    if (!is_native) controller.Close(cur_epoch + 1);
    data_in->Close();
    if (adaptive) stats.in->Close();

    if (w.IsLocalRoot()) {
      // Drain the backlog, acking the remaining epochs. probe.Done()
      // requires every process's inputs closed, so by the time it holds
      // all local workers have added to total_sent.
      w.StepUntil([&] { return probe.Done(); });
      uint64_t now = NowNanos();
      while (next_ack <= cur_epoch) {
        uint64_t deadline = start + next_ack * cfg.epoch_ns;
        if (now > deadline) {
          timeline.Add(now - start, now - deadline, 1);
          per_record.Add(now - deadline, weight);
        }
        next_ack++;
      }
      if (was_migrating && !mig_stats.empty() &&
          mig_stats.back().end_sec == 0) {
        // The run ended mid-migration; the epilogue drain completed it.
        mig_stats.back().end_sec = static_cast<double>(now - start) * 1e-9;
        mig_stats.back().batches =
            controller.completed_batches() - batches_before;
        mig_stats.back().chunk_frames =
            chunk_counters().frames.load() - chunk_frames_before;
        mig_stats.back().chunk_bytes =
            chunk_counters().bytes.load() - chunk_bytes_before;
        if (actrl && !actrl->plans().empty()) {
          rebalanced_sec = static_cast<double>(now - start) * 1e-9;
        }
      }
      for (auto& ms : mig_stats) {
        ms.max_ms = static_cast<double>(timeline.MaxIn(
                        static_cast<uint64_t>(ms.start_sec * 1e9),
                        static_cast<uint64_t>(ms.end_sec * 1e9) +
                            500'000'000)) *
                    1e-6;
      }
      BenchShard shard;
      shard.process_index = tcfg.process_index;
      shard.timeline = std::move(timeline);
      shard.per_record = std::move(per_record);
      shard.steady = std::move(steady);
      shard.migrations = std::move(mig_stats);
      shard.records_sent = total_sent.load();
      shard.duration_sec = static_cast<double>(now - start) * 1e-9;
      shard.rss = std::move(rss);
      rep.Finish(shard);
      if (w.index() == 0) {
        std::lock_guard<std::mutex> lock(result_mu);
        root_shards = rep.shards;
        if (actrl) {
          result.reaction_ms = reaction_ms;
          result.flip_sec = flip_ns == UINT64_MAX
                                ? -1
                                : static_cast<double>(flip_ns - start) * 1e-9;
          result.rebalanced_sec = rebalanced_sec;
          result.plans_issued = actrl->plans().size();
          result.plans = actrl->plans();
        }
      }
    } else {
      rep.in->Close();
    }
  });

  if (root_shards == nullptr) {
    result.root = false;
    return result;
  }
  result.shards = std::move(*root_shards);
  detail::MergeShardsInto(result.shards, &result.timeline,
                          &result.per_record, &result.steady,
                          &result.migrations, &result.records_sent, nullptr,
                          &result.duration_sec, &result.rss_samples);
  return result;
}

/// Single-process convenience overload: `cfg.workers` worker threads.
inline CountBenchResult RunCountBench(const CountBenchConfig& cfg) {
  return RunCountBench(cfg, timely::Config{cfg.workers});
}

// ---------------------------------------------------------------------------
// Deterministic count workload: the multi-process correctness harness.
//
// Unlike the open-loop bench above, every quantity here is independent of
// wall time: a fixed record set (CountKey over a dense global index
// space, strided by global worker), a fixed epoch schedule driven in
// lockstep (each epoch waits for the probe before the next), and a
// migration issued at a fixed epoch. Any run with the same
// (total_workers, bins, records, epochs, migration) — whatever its
// process split — must produce byte-identical final counts and the same
// number of completed migration batches, which is exactly what the
// multi-process integration test asserts.

struct DetCountConfig {
  uint32_t total_workers = 4;
  uint32_t num_bins = 64;
  uint64_t domain = 1 << 12;        // distinct keys; power of two
  uint64_t records_per_epoch = 4096;  // all workers combined
  uint64_t epochs = 8;
  /// Epoch at which every worker schedules the initial->imbalanced
  /// migration; >= epochs disables migration. Ignored when `schedule` is
  /// nonempty.
  uint64_t migrate_at_epoch = 3;
  /// Optional explicit migration schedule: (epoch, target assignment)
  /// pairs in nondecreasing epoch order, overriding migrate_at_epoch —
  /// how the property tests drive *random* reconfiguration sequences.
  std::vector<std::pair<uint64_t, Assignment>> schedule;
  MigrationStrategy strategy = MigrationStrategy::kFluid;
  size_t batch_size = 1;
  /// State-chunk frame bound and per-step budget (0 = monolithic). The
  /// final digest must be byte-identical at every setting.
  uint64_t chunk_bytes = 0;
  uint64_t chunk_bytes_per_step = 0;
  uint64_t seed = 1;

  /// Operator state backend: the in-memory MapState or the spill-to-disk
  /// LogState. The final digest must be byte-identical across backends —
  /// the property tests assert it — and checkpoints of a kLog run store
  /// segment manifests instead of inline values.
  enum class Backend { kMap, kLog };
  Backend backend = Backend::kMap;
  /// Spill knobs (kLog): segment directory and memtable bound. A small
  /// memtable (e.g. 256 bytes) forces real segment traffic even at this
  /// harness's toy state sizes. Empty / 0 keep the global defaults.
  std::string state_dir;
  uint64_t spill_memtable_bytes = 0;

  /// Checkpoint/restore (fault drills). When `checkpoint_dir` is set the
  /// run writes one frontier-aligned checkpoint segment per process every
  /// `checkpoint_every` epochs (skipping boundaries inside a migration);
  /// with `restore` it resumes from the latest *complete* checkpoint in
  /// the directory instead of epoch 0.
  std::string checkpoint_dir;
  uint64_t checkpoint_every = 2;
  bool restore = false;
  /// Deterministic crash: process `die_process` raises SIGKILL at the top
  /// of epoch `die_at_epoch` (multi-process runs only; >= epochs
  /// disables). Used by the recovery tests and the recovery bench figure.
  uint64_t die_at_epoch = UINT64_MAX;
  uint32_t die_process = 1;

  /// Closed-loop adaptive control: every epoch each worker ships its
  /// per-bin stats to global worker 0, which runs AdaptivePolicy and
  /// schedules the plans it accepts — instead of any fixed schedule
  /// (`schedule` must be empty; migrate_at_epoch is ignored). The epoch
  /// lockstep extends to the stats channel, so decisions — and therefore
  /// the emitted control records and the digest — are identical at every
  /// process split.
  bool adaptive = false;
  AdaptiveOptions adaptive_opts;
  /// Deterministic hot-key skew: from `skew_from_epoch` on,
  /// `skew_prob_pct`% of records target bins initially owned by
  /// `skew_worker` (hash binning, like all records here).
  uint64_t skew_from_epoch = UINT64_MAX;
  uint32_t skew_worker = 0;
  uint32_t skew_prob_pct = 90;
};

struct DetCountResult {
  /// Serialized sorted (key -> final count) map; filled only in the
  /// process hosting global worker 0.
  std::vector<uint8_t> digest;
  uint64_t distinct_keys = 0;
  size_t completed_batches = 0;
  /// True iff this process hosted global worker 0 (owns digest/batches).
  bool root = false;
  /// Records injected by this process's workers.
  uint64_t records_sent = 0;
  /// Epoch the run resumed from (0 = fresh run / no usable checkpoint).
  uint64_t start_epoch = 0;
  /// Plans the adaptive controller emitted, in epoch order (root only).
  /// Replaying them as `schedule` must reproduce `digest` byte-for-byte.
  std::vector<std::pair<uint64_t, Assignment>> emitted_plans;
  /// Final bin->worker assignment the adaptive controller converged to
  /// (root only; the initial assignment when no plan was emitted).
  Assignment final_assignment;
};

/// Runs the deterministic count workload under `tcfg` (whose
/// workers * processes must equal cfg.total_workers).
inline DetCountResult RunDeterministicCount(const DetCountConfig& cfg,
                                            const timely::Config& tcfg) {
  using timely::OpCtx;
  using timely::Pact;
  using timely::Scope;
  using timely::Worker;
  using T = uint64_t;
  using KV = std::pair<uint64_t, uint64_t>;

  const uint32_t W = cfg.total_workers;
  MEGA_CHECK_EQ(tcfg.workers * std::max(1u, tcfg.processes), W);
  MEGA_CHECK((cfg.domain & (cfg.domain - 1)) == 0) << "domain: power of two";
  MEGA_CHECK(!cfg.adaptive || cfg.schedule.empty())
      << "adaptive and a fixed schedule are mutually exclusive";
  MEGA_CHECK(!cfg.adaptive || cfg.checkpoint_dir.empty())
      << "adaptive + checkpoint/restore is not supported";

  DetCountResult result;
  std::mutex result_mu;
  std::shared_ptr<std::map<uint64_t, uint64_t>> root_counts;
  std::atomic<uint64_t> total_sent{0};

  // Checkpoint/restore plumbing. The segment is loaded once, before the
  // worker threads spawn, and shared read-only with every build closure.
  const bool ck_enabled = !cfg.checkpoint_dir.empty();
  state::CheckpointSegment seg;
  uint64_t start_epoch = 0;
  if (ck_enabled && cfg.restore &&
      state::LoadLatestSegment(cfg.checkpoint_dir,
                               std::max(1u, tcfg.processes),
                               tcfg.process_index, &seg)) {
    start_epoch = seg.epoch;
  }
  result.start_epoch = start_epoch;

  // Spill backend plumbing. LogState bins are default-constructed and
  // snapshot the process-global options, so publish the knobs before any
  // worker spawns; the checkpoint scope keys LogState::Serialize into
  // manifest mode for the whole run (set here on the harness thread —
  // workers only ever read it).
  std::optional<state::CheckpointDirScope> ck_scope;
  if (cfg.backend == DetCountConfig::Backend::kLog) {
    state::LogStateOptions& o = state::GlobalLogStateOptions();
    if (!cfg.state_dir.empty()) o.dir = cfg.state_dir;
    if (cfg.spill_memtable_bytes != 0) {
      o.memtable_bytes = cfg.spill_memtable_bytes;
    }
    if (ck_enabled) ck_scope.emplace(cfg.checkpoint_dir);
  }

  // Capture rendezvous for this process's workers: each stages its bins,
  // the local root writes the segment, and nobody proceeds into the next
  // epoch until the file is published (temp + rename).
  struct CkShared {
    explicit CkShared(uint32_t n) : barrier(n), staging(n) {}
    timely::Barrier barrier;
    std::vector<state::BinSnapshot> staging;
  };
  auto ck = ck_enabled ? std::make_shared<CkShared>(tcfg.workers) : nullptr;

  timely::Execute(tcfg, [&](Worker& w) {
    struct Handles {
      timely::Input<ControlInst, T> ctrl;
      timely::Input<uint64_t, T> data;
      timely::ProbeHandle<T> probe;
      /// Frontier past the collector's *consumption*: the S-output probe
      /// alone cannot see records still in flight to worker 0's Collect
      /// input (sibling ports do not constrain each other), and a
      /// checkpoint must capture an exact collector.
      timely::ProbeHandle<T> cprobe;
      std::shared_ptr<std::map<uint64_t, uint64_t>> counts;
      std::function<void(state::BinSnapshot&)> capture;
      StatsChannel<T> stats;  // adaptive runs only
      std::function<void(BinStats&)> take_stats;
    };
    auto handles = w.Dataflow<T>([&](Scope<T>& s) -> Handles {
      auto [ctrl_in, ctrl_stream] = timely::NewInput<ControlInst>(s);
      auto [data_in, data_stream] = timely::NewInput<uint64_t>(s);
      Config mcfg;
      mcfg.num_bins = cfg.num_bins;
      mcfg.chunk_bytes = cfg.chunk_bytes;
      mcfg.chunk_bytes_per_step = cfg.chunk_bytes_per_step;
      mcfg.name = "DetCount";
      if (start_epoch > 0) mcfg.initial_owner = seg.assignment;
      // Every record emits its key's running count; the collector below
      // keeps the maximum per key, which equals the final count. One
      // fold, two interchangeable backends — StatefulOutput depends only
      // on the record type, so both instantiations share a type.
      auto build = [&]<typename BinState>() {
        auto out = Unary<BinState, KV>(
            ctrl_stream, data_stream,
            [](const uint64_t& k) { return HashMix64(k); },
            [](const T&, BinState& state, std::vector<uint64_t>& recs,
               auto emit, auto&) {
              for (uint64_t k : recs) emit(KV{k, ++state[k]});
            },
            mcfg);
        // Restore this worker's share of the checkpoint: bins staged
        // into the operator (installed at S's first schedule).
        if (start_epoch > 0) {
          auto it = seg.workers.find(s.worker());
          if (it != seg.workers.end()) out.restore_bins(it->second);
        }
        return out;
      };
      auto out =
          cfg.backend == DetCountConfig::Backend::kLog
              ? build.template
                operator()<state::LogState<uint64_t, uint64_t>>()
              : build.template
                operator()<state::MapState<uint64_t, uint64_t>>();

      // Collector on global worker 0: the single point of truth any
      // process split must agree with. The dummy output (never written)
      // exists so a probe can observe the collector's consumption
      // frontier.
      auto counts = std::make_shared<std::map<uint64_t, uint64_t>>();
      if (start_epoch > 0 && s.worker() == 0 && !seg.collector.empty()) {
        *counts =
            DecodeFromBytes<std::map<uint64_t, uint64_t>>(seg.collector);
      }
      timely::OperatorBuilder<T> cb(s, "Collect");
      auto* cin = cb.AddInput(
          out.stream, Pact<KV>::Exchange([](const KV&) { return uint64_t{0}; }));
      auto [collect_out, collect_stream] = cb.template AddOutput<uint8_t>();
      (void)collect_out;
      cb.Build([cin, counts](OpCtx<T>&) {
        cin->ForEach([&](const T&, std::vector<KV>& recs) {
          for (auto& kc : recs) {
            uint64_t& slot = (*counts)[kc.first];
            if (kc.second > slot) slot = kc.second;
          }
        });
      });
      StatsChannel<T> stats;
      if (cfg.adaptive) stats = AddStatsChannel(s);
      return Handles{ctrl_in, data_in, out.probe,
                     timely::Probe(collect_stream), counts,
                     out.capture_bins, std::move(stats),
                     out.take_bin_stats};
    });
    auto& [ctrl_in, data_in, probe, cprobe, counts, capture, stats,
           take_stats] = handles;

    typename MigrationController<T>::Options mopts;
    mopts.strategy = cfg.strategy;
    mopts.batch_size = cfg.batch_size;
    mopts.gap = 0;
    MigrationController<T> controller(ctrl_in, probe, w.index(), mopts);

    // The effective migration schedule: either the explicit one or the
    // classic single initial->imbalanced step. Adaptive runs schedule
    // nothing up front — worker 0's policy decides as the run unfolds.
    std::vector<std::pair<uint64_t, Assignment>> schedule = cfg.schedule;
    if (!cfg.adaptive && schedule.empty() &&
        cfg.migrate_at_epoch < cfg.epochs) {
      schedule.emplace_back(cfg.migrate_at_epoch,
                            MakeImbalancedAssignment(cfg.num_bins, W));
    }
    Assignment current = MakeInitialAssignment(cfg.num_bins, W);
    size_t next_mig = 0;
    std::optional<AdaptiveController<T>> actrl;
    if (cfg.adaptive && w.index() == 0) {
      actrl.emplace(&controller, W, current, cfg.adaptive_opts);
    }
    size_t ingested = 0;  // reports folded into the policy so far
    // Resuming from a checkpoint: migrations before the checkpoint epoch
    // are already reflected in the restored routing table — skip them,
    // and cross-check the replayed schedule against the checkpointed
    // assignment.
    while (next_mig < schedule.size() &&
           schedule[next_mig].first < start_epoch) {
      current = schedule[next_mig].second;
      next_mig++;
    }
    if (start_epoch > 0) {
      MEGA_CHECK(current == seg.assignment)
          << "checkpoint assignment diverges from the replayed schedule";
      data_in->AdvanceTo(start_epoch);
    }
    const uint32_t me = w.index();
    uint64_t sent = 0;
    std::vector<uint64_t> batch;

    // Lockstep epochs: inject, advance, and wait for global completion of
    // the epoch. The wait makes every worker's controller observe the
    // same probe state at the same epoch, so batch issue/completion — and
    // therefore completed_batches() — is deterministic. The collector
    // probe rides along so an epoch boundary is fully quiescent: exactly
    // the property a frontier-aligned checkpoint needs.
    for (uint64_t e = start_epoch; e < cfg.epochs; ++e) {
      if (e == cfg.die_at_epoch && tcfg.processes > 1 &&
          tcfg.process_index == cfg.die_process) {
        std::raise(SIGKILL);  // deterministic crash for the fault drills
      }
      while (next_mig < schedule.size() && schedule[next_mig].first == e) {
        controller.MigrateTo(current, schedule[next_mig].second);
        current = schedule[next_mig].second;
        next_mig++;
      }
      // Worker 0 decides on stats through epoch e-1 (all ingested — the
      // stats-probe wait below ran before this epoch). Other workers
      // schedule nothing: the control records they observe all originate
      // from worker 0, which is what makes replaying the emitted plans
      // as a fixed schedule byte-identical.
      if (actrl) actrl->Step(e);
      controller.Advance(e, e + 1);
      batch.clear();
      for (uint64_t idx = e * cfg.records_per_epoch;
           idx < (e + 1) * cfg.records_per_epoch; ++idx) {
        if (idx % W == me) {
          batch.push_back(
              e >= cfg.skew_from_epoch &&
                      detail::SkewedRecord(cfg.seed, idx, cfg.skew_prob_pct)
                  ? detail::HotHashKey(cfg.seed, idx, cfg.domain,
                                       cfg.num_bins, W, cfg.skew_worker)
                  : detail::CountKey(cfg.seed, idx, cfg.domain));
        }
      }
      sent += batch.size();
      data_in->SendBatch(std::move(batch));
      batch.clear();
      data_in->AdvanceTo(e + 1);
      w.StepUntil([&] {
        return !probe.LessThan(e + 1) && !cprobe.LessThan(e + 1);
      });

      // Frontier-aligned capture: every record at times < e+1 is in the
      // bins (probe) and the collector (cprobe), nothing is stashed for
      // later times, and no migration is in flight — so the segment is an
      // exact cut of the job at epoch e+1.
      if (ck != nullptr && e + 1 < cfg.epochs &&
          (e + 1) % cfg.checkpoint_every == 0 && !controller.Migrating()) {
        state::BinSnapshot snap;
        capture(snap);
        ck->staging[me % tcfg.workers] = std::move(snap);
        ck->barrier.Wait();  // all local workers staged
        if (w.IsLocalRoot()) {
          state::CheckpointSegment out_seg;
          out_seg.epoch = e + 1;
          out_seg.assignment = current;
          const uint32_t local_begin = tcfg.process_index * tcfg.workers;
          for (uint32_t i = 0; i < tcfg.workers; ++i) {
            out_seg.workers[local_begin + i] = std::move(ck->staging[i]);
          }
          if (me == 0) out_seg.collector = EncodeToBytes(*counts);
          state::WriteSegment(cfg.checkpoint_dir, tcfg.process_index,
                              out_seg);
        }
        ck->barrier.Wait();  // segment published before the next epoch
      }

      // Stats phase: every worker ships its epoch-e bin stats, then waits
      // until worker 0's collector has consumed all of epoch e — so the
      // decision at e+1 sees exactly W reports, at every process split.
      if (cfg.adaptive) {
        BinStats bs;
        take_stats(bs);
        stats.Send(BinStatsReport::From(me, e, std::move(bs)));
        stats.in->AdvanceTo(e + 1);
        w.StepUntil([&] { return !stats.probe.LessThan(e + 1); });
        if (actrl) {
          auto& reps = *stats.reports;
          for (; ingested < reps.size(); ++ingested) {
            actrl->Ingest(reps[ingested]);
          }
        }
      }
    }

    // Drain epochs (no data) until the migration has fully completed, so
    // completed_batches reflects the whole plan.
    uint64_t e = cfg.epochs;
    while (controller.Migrating()) {
      controller.Advance(e, e + 1);
      data_in->AdvanceTo(e + 1);
      w.StepUntil([&] { return !probe.LessThan(e + 1); });
      ++e;
    }
    size_t completed = controller.completed_batches();
    controller.Close(e + 1);
    data_in->Close();
    if (cfg.adaptive) stats.in->Close();

    total_sent += sent;
    if (me == 0) {
      std::lock_guard<std::mutex> lock(result_mu);
      root_counts = counts;  // final after Execute's post-closure drain
      result.completed_batches = completed;
      result.root = true;
      if (actrl) {
        result.emitted_plans = actrl->plans();
        result.final_assignment = actrl->current();
      }
    }
  });

  result.records_sent = total_sent.load();
  if (root_counts) {
    Writer w;
    Encode(w, *root_counts);
    result.digest = w.Take();
    result.distinct_keys = root_counts->size();
  }
  return result;
}

}  // namespace megaphone
