// Resident-set-size sampling for the memory experiment (paper Fig. 20).
#pragma once

#include <cstdint>
#include <cstdio>

namespace megaphone {

/// Current resident set size in bytes (Linux /proc/self/statm), 0 on
/// failure.
inline uint64_t CurrentRssBytes() {
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (!f) return 0;
  unsigned long size = 0, resident = 0;
  int n = std::fscanf(f, "%lu %lu", &size, &resident);
  std::fclose(f);
  if (n != 2) return 0;
  return static_cast<uint64_t>(resident) * 4096;
}

}  // namespace megaphone
