// Log-binned latency histograms, matching the paper's measurement method:
// "We record the observed latency ... in units of nanoseconds, which are
// recorded in a histogram of logarithmically-sized bins."
//
// The histogram uses HDR-style buckets: per power of two, a fixed number
// of linear sub-buckets, giving ~3% relative error across the full
// nanosecond range while staying allocation-free.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/serde.hpp"

namespace megaphone {

class Histogram {
 public:
  static constexpr int kSubBits = 4;  // 16 sub-buckets per power of two
  static constexpr int kBuckets = 64 << kSubBits;

  Histogram() : counts_(kBuckets, 0) {}

  /// Records `weight` observations of `value_ns`.
  void Add(uint64_t value_ns, uint64_t weight = 1) {
    counts_[BucketOf(value_ns)] += weight;
    total_ += weight;
    max_ = std::max(max_, value_ns);
  }

  void Merge(const Histogram& other) {
    for (int i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
    total_ += other.total_;
    max_ = std::max(max_, other.max_);
  }

  void Clear() {
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
    max_ = 0;
  }

  uint64_t total() const { return total_; }
  uint64_t max() const { return max_; }
  bool empty() const { return total_ == 0; }

  /// Value at quantile `q` in [0, 1]; returns the representative value of
  /// the containing bucket (upper edge), 0 if empty.
  uint64_t Quantile(double q) const {
    if (total_ == 0) return 0;
    MEGA_CHECK(q >= 0.0 && q <= 1.0);
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total_));
    if (rank >= total_) rank = total_ - 1;
    uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
      seen += counts_[i];
      if (seen > rank) return BucketUpperEdge(i);
    }
    return max_;
  }

  /// Complementary CDF: fraction of observations strictly greater than
  /// each bucket's upper edge, for every nonempty prefix. Rows are
  /// (latency_ns, fraction_greater) suitable for the paper's CCDF plots
  /// (Figs. 13-15).
  std::vector<std::pair<uint64_t, double>> Ccdf() const {
    std::vector<std::pair<uint64_t, double>> rows;
    if (total_ == 0) return rows;
    uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
      if (counts_[i] == 0) continue;
      seen += counts_[i];
      double frac =
          static_cast<double>(total_ - seen) / static_cast<double>(total_);
      rows.emplace_back(BucketUpperEdge(i), frac);
    }
    return rows;
  }

  /// Bucket index of a value: 16 linear sub-buckets per power of two.
  static int BucketOf(uint64_t v) {
    if (v < (1u << kSubBits)) return static_cast<int>(v);
    int log = 63 - __builtin_clzll(v);
    int sub = static_cast<int>((v >> (log - kSubBits)) & ((1 << kSubBits) - 1));
    int idx = ((log - kSubBits + 1) << kSubBits) + sub;
    return std::min(idx, kBuckets - 1);
  }

  /// Wire format for cross-process report shards: the nonzero buckets as
  /// sparse (index, count) pairs plus the total and the exact max.
  void Serialize(Writer& w) const {
    uint64_t nonzero = 0;
    for (int i = 0; i < kBuckets; ++i) nonzero += counts_[i] != 0;
    Encode(w, nonzero);
    for (int i = 0; i < kBuckets; ++i) {
      if (counts_[i] == 0) continue;
      Encode(w, static_cast<uint32_t>(i));
      Encode(w, counts_[i]);
    }
    Encode(w, total_);
    Encode(w, max_);
  }
  static Histogram Deserialize(Reader& r) {
    Histogram h;
    uint64_t nonzero = r.ReadCount(sizeof(uint32_t) + sizeof(uint64_t));
    // Serialize emits buckets in strictly increasing index order; anything
    // else (duplicates, reordering) is a corrupt shard, as is a decoded
    // total that disagrees with the bucket counts — quantiles computed
    // from such a histogram would be silently wrong.
    int64_t prev = -1;
    uint64_t sum = 0;
    for (uint64_t i = 0; i < nonzero; ++i) {
      uint32_t idx = Decode<uint32_t>(r);
      if (idx >= kBuckets) throw SerdeError("histogram: bucket out of range");
      if (static_cast<int64_t>(idx) <= prev) {
        throw SerdeError("histogram: buckets not strictly increasing");
      }
      prev = idx;
      uint64_t count = Decode<uint64_t>(r);
      h.counts_[idx] = count;
      sum += count;
    }
    h.total_ = Decode<uint64_t>(r);
    if (h.total_ != sum) {
      throw SerdeError("histogram: total disagrees with bucket counts");
    }
    h.max_ = Decode<uint64_t>(r);
    return h;
  }

  /// Largest value mapping to bucket `i` (its representative value).
  static uint64_t BucketUpperEdge(int i) {
    if (i < (1 << kSubBits)) return static_cast<uint64_t>(i);
    int log = (i >> kSubBits) + kSubBits - 1;
    uint64_t sub = static_cast<uint64_t>(i & ((1 << kSubBits) - 1));
    uint64_t base = uint64_t{1} << log;
    uint64_t step = base >> kSubBits;
    return base + (sub + 1) * step - 1;
  }

 private:
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
  uint64_t max_ = 0;
};

/// A wall-clock timeline of histograms in fixed-width buckets (the paper
/// uses 250 ms), supporting the latency-over-time plots (Figs. 1, 5-12).
class Timeline {
 public:
  explicit Timeline(uint64_t bucket_ns = 250'000'000) : bucket_ns_(bucket_ns) {}

  void Add(uint64_t at_ns, uint64_t latency_ns, uint64_t weight = 1) {
    size_t idx = at_ns / bucket_ns_;
    if (buckets_.size() <= idx) buckets_.resize(idx + 1);
    buckets_[idx].Add(latency_ns, weight);
  }

  struct Row {
    double t_sec;
    double max_ms;
    double p99_ms;
    double p50_ms;
    double p25_ms;
    uint64_t samples;
  };

  std::vector<Row> Rows() const {
    std::vector<Row> rows;
    for (size_t i = 0; i < buckets_.size(); ++i) {
      const Histogram& h = buckets_[i];
      if (h.empty()) continue;
      rows.push_back(Row{
          static_cast<double>(i * bucket_ns_) * 1e-9,
          static_cast<double>(h.max()) * 1e-6,
          static_cast<double>(h.Quantile(0.99)) * 1e-6,
          static_cast<double>(h.Quantile(0.50)) * 1e-6,
          static_cast<double>(h.Quantile(0.25)) * 1e-6,
          h.total(),
      });
    }
    return rows;
  }

  /// Maximum latency observed in [from_ns, to_ns).
  uint64_t MaxIn(uint64_t from_ns, uint64_t to_ns) const {
    uint64_t m = 0;
    for (size_t i = from_ns / bucket_ns_;
         i < buckets_.size() && i * bucket_ns_ < to_ns; ++i) {
      m = std::max(m, buckets_[i].max());
    }
    return m;
  }

  /// Pools another timeline's samples into this one, bucket by bucket.
  /// Both timelines must use the same bucket width.
  void Merge(const Timeline& other) {
    MEGA_CHECK_EQ(bucket_ns_, other.bucket_ns_);
    if (buckets_.size() < other.buckets_.size()) {
      buckets_.resize(other.buckets_.size());
    }
    for (size_t i = 0; i < other.buckets_.size(); ++i) {
      buckets_[i].Merge(other.buckets_[i]);
    }
  }

  void Serialize(Writer& w) const {
    Encode(w, bucket_ns_);
    Encode(w, buckets_);
  }
  static Timeline Deserialize(Reader& r) {
    Timeline tl(Decode<uint64_t>(r));
    if (tl.bucket_ns_ == 0) throw SerdeError("timeline: zero bucket width");
    tl.buckets_ = Decode<std::vector<Histogram>>(r);
    return tl;
  }

  uint64_t bucket_ns() const { return bucket_ns_; }
  const std::vector<Histogram>& buckets() const { return buckets_; }

 private:
  uint64_t bucket_ns_;
  std::vector<Histogram> buckets_;
};

}  // namespace megaphone
