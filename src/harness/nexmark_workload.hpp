// Open-loop NEXMark bench driver (paper §5.1, Figs. 5-12): generates the
// event stream at a configured rate with event time equal to injection
// wall time, runs a chosen query (native or Megaphone), migrates the
// stateful operators mid-run, and records the latency timeline.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/rate_limiter.hpp"
#include "common/time_util.hpp"
#include "harness/count_workload.hpp"  // MigrationStats
#include "harness/histogram.hpp"
#include "harness/report.hpp"
#include "megaphone/megaphone.hpp"
#include "nexmark/nexmark.hpp"
#include "timely/timely.hpp"

namespace megaphone {

struct NexmarkBenchConfig {
  int query = 3;             // 1..8
  bool use_megaphone = true;  // false: native baseline
  uint32_t workers = 4;
  double rate = 100'000;  // events/second
  uint64_t duration_ms = 5000;
  nexmark::QueryConfig qcfg;
  nexmark::GeneratorConfig gcfg;

  struct Migration {
    uint64_t at_ms;
    Assignment to;
  };
  std::vector<Migration> migrations;
  MigrationStrategy strategy = MigrationStrategy::kBatched;
  size_t batch_size = 64;
};

struct NexmarkBenchResult {
  Timeline timeline{250'000'000};
  Histogram steady;
  std::vector<MigrationStats> migrations;
  uint64_t outputs = 0;
  uint64_t events_sent = 0;
};

namespace detail {

/// Builds query `q` (native or Megaphone) and returns a probe on its
/// output; outputs are counted into `*counter`.
template <typename T>
timely::ProbeHandle<T> BuildNexmarkQuery(
    int q, bool mega, timely::Stream<ControlInst, T> ctrl,
    nexmark::NexmarkStreams<T>& in, const nexmark::QueryConfig& qcfg,
    std::atomic<uint64_t>* counter) {
  auto count = [counter](auto stream) {
    timely::Sink(stream, [counter](const T&, auto& data) {
      *counter += data.size();
    });
    return timely::Probe(stream);
  };
  if (mega) {
    switch (q) {
      case 1: { auto o = nexmark::Q1Mega(ctrl, in, qcfg); count(o.stream); return o.probe; }
      case 2: { auto o = nexmark::Q2Mega(ctrl, in, qcfg); count(o.stream); return o.probe; }
      case 3: { auto o = nexmark::Q3Mega(ctrl, in, qcfg); count(o.stream); return o.probe; }
      case 4: { auto o = nexmark::Q4Mega(ctrl, in, qcfg); count(o.stream); return o.probe; }
      case 5: { auto o = nexmark::Q5Mega(ctrl, in, qcfg); count(o.stream); return o.probe; }
      case 6: { auto o = nexmark::Q6Mega(ctrl, in, qcfg); count(o.stream); return o.probe; }
      case 7: { auto o = nexmark::Q7Mega(ctrl, in, qcfg); count(o.stream); return o.probe; }
      case 8: { auto o = nexmark::Q8Mega(ctrl, in, qcfg); count(o.stream); return o.probe; }
    }
  } else {
    switch (q) {
      case 1: return count(nexmark::Q1Native(in, qcfg));
      case 2: return count(nexmark::Q2Native(in, qcfg));
      case 3: return count(nexmark::Q3Native(in, qcfg));
      case 4: return count(nexmark::Q4Native(in, qcfg));
      case 5: return count(nexmark::Q5Native(in, qcfg));
      case 6: return count(nexmark::Q6Native(in, qcfg));
      case 7: return count(nexmark::Q7Native(in, qcfg));
      case 8: return count(nexmark::Q8Native(in, qcfg));
    }
  }
  MEGA_CHECK(false) << "unknown query " << q;
  return {};
}

}  // namespace detail

inline NexmarkBenchResult RunNexmarkBench(NexmarkBenchConfig cfg) {
  using T = uint64_t;
  NexmarkBenchResult result;
  std::mutex result_mu;
  std::atomic<uint64_t> outputs{0};
  std::atomic<uint64_t> total_sent{0};
  std::atomic<uint64_t> t0{0};

  // Event time tracks injection deadlines: one generated event stream at
  // `rate` events/second.
  cfg.gcfg.events_per_sec = static_cast<uint64_t>(cfg.rate);
  nexmark::Generator gen(cfg.gcfg);

  timely::Execute(timely::Config{cfg.workers}, [&](timely::Worker& w) {
    struct Handles {
      timely::Input<ControlInst, T> ctrl;
      timely::Input<nexmark::Person, T> persons;
      timely::Input<nexmark::Auction, T> auctions;
      timely::Input<nexmark::Bid, T> bids;
      timely::ProbeHandle<T> probe;
    };
    auto handles = w.Dataflow<T>([&](timely::Scope<T>& s) -> Handles {
      auto [ctrl_in, ctrl_stream] = timely::NewInput<ControlInst>(s);
      auto [p_in, p_stream] = timely::NewInput<nexmark::Person>(s);
      auto [a_in, a_stream] = timely::NewInput<nexmark::Auction>(s);
      auto [b_in, b_stream] = timely::NewInput<nexmark::Bid>(s);
      nexmark::NexmarkStreams<T> streams{p_stream, a_stream, b_stream};
      auto probe = detail::BuildNexmarkQuery(
          cfg.query, cfg.use_megaphone, ctrl_stream, streams, cfg.qcfg,
          &outputs);
      return Handles{ctrl_in, p_in, a_in, b_in, probe};
    });
    auto& [ctrl_in, p_in, a_in, b_in, probe] = handles;

    typename MigrationController<T>::Options mopts;
    mopts.strategy = cfg.strategy;
    mopts.batch_size = cfg.batch_size;
    MigrationController<T> controller(ctrl_in, probe, w.index(), mopts);

    uint64_t expected = 0;
    t0.compare_exchange_strong(expected, NowNanos());
    const uint64_t start = t0.load();
    const uint64_t end = start + cfg.duration_ms * 1'000'000;
    OpenLoopPacer pacer(cfg.rate, start);

    Assignment current =
        MakeInitialAssignment(cfg.qcfg.num_bins, cfg.workers);
    size_t next_mig = 0;

    Timeline timeline(250'000'000);
    Histogram steady;
    std::vector<MigrationStats> mig_stats;
    bool was_migrating = false;
    size_t batches_before = 0;
    uint64_t next_ack = 1, next_tick = 0;

    uint64_t cur_epoch = 0;
    uint64_t idx = w.index();  // event index, strided by worker
    controller.Advance(0, 1);

    // Records are injected *at their deadline's epoch*: the stream
    // timestamp always equals the record's event time, even when the
    // system lags and records are injected in a burst (the open loop).
    // Window markers post-dated off event times therefore always land
    // strictly in the future.
    auto advance_all = [&](uint64_t e) {
      while (next_mig < cfg.migrations.size() &&
             cfg.migrations[next_mig].at_ms < e) {
        controller.MigrateTo(current, cfg.migrations[next_mig].to);
        current = cfg.migrations[next_mig].to;
        next_mig++;
      }
      controller.Advance(e, e + 1);
      p_in->AdvanceTo(e);
      a_in->AdvanceTo(e);
      b_in->AdvanceTo(e);
      cur_epoch = e;
    };
    auto epoch_of = [&](uint64_t record_idx) {
      return (pacer.DeadlineFor(record_idx) - start) / 1'000'000 + 1;
    };

    while (true) {
      uint64_t now = NowNanos();
      if (now >= end) break;
      uint64_t wall_epoch = 1 + (now - start) / 1'000'000;
      uint64_t due = pacer.RecordsDueBy(now);
      uint64_t injected = 0;
      while (idx < due && injected < 65536) {
        uint64_t ems = epoch_of(idx);
        if (ems > cur_epoch) advance_all(ems);
        nexmark::Event ev = gen.At(idx);
        switch (ev.kind) {
          case nexmark::Event::Kind::kPerson:
            ev.person.date_time = cur_epoch;
            p_in->Send(std::move(ev.person));
            break;
          case nexmark::Event::Kind::kAuction:
            ev.auction.date_time = cur_epoch;
            ev.auction.expires = cur_epoch + cfg.gcfg.auction_duration_ms;
            a_in->Send(std::move(ev.auction));
            break;
          case nexmark::Event::Kind::kBid:
            ev.bid.date_time = cur_epoch;
            b_in->Send(std::move(ev.bid));
            break;
        }
        idx += cfg.workers;
        injected++;
      }
      if (injected == 0) {
        // Idle: let event time follow the wall clock, but never past the
        // next record's epoch (its timestamp must still be current when
        // it is injected).
        uint64_t adv = std::min(wall_epoch, epoch_of(idx));
        if (adv > cur_epoch) advance_all(adv);
      }
      w.Step();
      std::this_thread::yield();

      if (w.index() == 0) {
        while (next_ack < cur_epoch && !probe.LessEqual(next_ack)) {
          uint64_t deadline = start + next_ack * 1'000'000;
          uint64_t lat = now > deadline ? now - deadline : 0;
          timeline.Add(now - start, lat, 1);
          if (!controller.Migrating()) steady.Add(lat);
          next_ack++;
        }
        if (now - start >= next_tick) {
          if (next_ack < cur_epoch) {
            uint64_t deadline = start + next_ack * 1'000'000;
            if (now > deadline) timeline.Add(now - start, now - deadline, 1);
          }
          next_tick += 250'000'000;
        }
        bool migrating = controller.Migrating();
        if (migrating && !was_migrating) {
          MigrationStats ms;
          ms.start_sec = static_cast<double>(now - start) * 1e-9;
          mig_stats.push_back(ms);
        }
        if (!migrating && was_migrating && !mig_stats.empty()) {
          mig_stats.back().end_sec = static_cast<double>(now - start) * 1e-9;
          mig_stats.back().batches =
              controller.completed_batches() - batches_before;
          batches_before = controller.completed_batches();
        }
        was_migrating = migrating;
      }
    }

    total_sent += (idx - w.index()) / cfg.workers;
    controller.Close(cur_epoch + 1);
    p_in->Close();
    a_in->Close();
    b_in->Close();

    if (w.index() == 0) {
      w.StepUntil([&] { return probe.Done(); });
      uint64_t now = NowNanos();
      while (next_ack <= cur_epoch) {
        uint64_t deadline = start + next_ack * 1'000'000;
        if (now > deadline) timeline.Add(now - start, now - deadline, 1);
        next_ack++;
      }
      if (was_migrating && !mig_stats.empty() &&
          mig_stats.back().end_sec == 0) {
        mig_stats.back().end_sec = static_cast<double>(now - start) * 1e-9;
      }
      for (auto& ms : mig_stats) {
        ms.max_ms = static_cast<double>(timeline.MaxIn(
                        static_cast<uint64_t>(ms.start_sec * 1e9),
                        static_cast<uint64_t>(ms.end_sec * 1e9) +
                            500'000'000)) *
                    1e-6;
      }
      std::lock_guard<std::mutex> lock(result_mu);
      result.timeline = std::move(timeline);
      result.steady = std::move(steady);
      result.migrations = std::move(mig_stats);
    }
  });
  result.outputs = outputs.load();
  result.events_sent = total_sent.load();
  return result;
}

/// Shared main() body for the Fig. 5-12 benches: runs query `q` with
/// all-at-once and batched migration (plus an optional native panel, as in
/// Fig. 7) and prints the timelines the paper plots.
inline int NexmarkFigureMain(int q, bool with_native, int argc, char** argv) {
  Flags flags(argc, argv);
  NexmarkBenchConfig cfg;
  cfg.query = q;
  cfg.workers = static_cast<uint32_t>(flags.GetInt("workers", 4));
  cfg.rate = flags.GetDouble("rate", 50'000);
  cfg.duration_ms = flags.GetInt("duration_ms", 5000);
  cfg.qcfg.num_bins = static_cast<uint32_t>(flags.GetInt("bins", 256));
  cfg.batch_size = flags.GetInt("batch_size", 16);
  cfg.gcfg.auction_duration_ms = flags.GetInt("auction_ms", 1000);
  cfg.qcfg.q5_slide_ms = flags.GetInt("q5_slide_ms", 250);
  cfg.qcfg.q5_slices = flags.GetInt("q5_slices", 8);
  cfg.qcfg.q7_window_ms = flags.GetInt("q7_window_ms", 1000);
  cfg.qcfg.q8_window_ms = flags.GetInt("q8_window_ms", 2000);
  uint64_t mig1 = flags.GetInt("migrate_at_ms", cfg.duration_ms * 2 / 5);
  uint64_t mig2 = flags.GetInt("migrate2_at_ms", cfg.duration_ms * 7 / 10);

  std::printf("# NEXMark Q%d: rate=%.0f events/s, workers=%u, bins=%u, "
              "migrations at %llu ms and %llu ms\n",
              q, cfg.rate, cfg.workers, cfg.qcfg.num_bins,
              static_cast<unsigned long long>(mig1),
              static_cast<unsigned long long>(mig2));

  auto imbalanced =
      MakeImbalancedAssignment(cfg.qcfg.num_bins, cfg.workers);
  auto balanced = MakeInitialAssignment(cfg.qcfg.num_bins, cfg.workers);

  struct Variant {
    const char* label;
    MigrationStrategy strategy;
  };
  std::vector<Variant> variants = {
      {"all-at-once", MigrationStrategy::kAllAtOnce},
      {"megaphone-batched", MigrationStrategy::kBatched},
  };
  std::vector<double> max_ms;
  for (const auto& v : variants) {
    NexmarkBenchConfig run = cfg;
    run.strategy = v.strategy;
    run.migrations = {{mig1, imbalanced}, {mig2, balanced}};
    auto r = RunNexmarkBench(run);
    PrintTimeline(v.label, r.timeline);
    PrintMigrationSummary(v.label, cfg.qcfg.num_bins, "bins", r.migrations);
    std::printf("# %s: outputs=%llu steady p99=%.3f ms\n\n", v.label,
                static_cast<unsigned long long>(r.outputs),
                static_cast<double>(r.steady.Quantile(0.99)) * 1e-6);
    double m = 0;
    for (auto& ms : r.migrations) m = std::max(m, ms.max_ms);
    max_ms.push_back(m);
  }
  if (with_native) {
    NexmarkBenchConfig run = cfg;
    run.use_megaphone = false;
    auto r = RunNexmarkBench(run);
    PrintTimeline("native", r.timeline);
    std::printf("# native: outputs=%llu steady p99=%.3f ms\n\n",
                static_cast<unsigned long long>(r.outputs),
                static_cast<double>(r.steady.Quantile(0.99)) * 1e-6);
  }
  std::printf("# summary Q%d: max latency during migration: "
              "all-at-once=%.3f ms, megaphone-batched=%.3f ms\n",
              q, max_ms[0], max_ms[1]);
  return 0;
}

}  // namespace megaphone
