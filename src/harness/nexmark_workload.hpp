// Open-loop NEXMark bench driver (paper §5.1, Figs. 5-12): generates the
// event stream at a configured rate with event time equal to injection
// wall time, runs a chosen query (native or Megaphone), migrates the
// stateful operators mid-run, and records the latency timeline.
//
// Multi-process aware: pass the timely::Config of a launched process set
// and each process measures its own latency shard (against its tracker
// replica, so serialization and wire delay are part of the record); the
// shards ship to global worker 0 over the dataflow and merge into one
// result. The deterministic Q3 harness at the bottom is the correctness
// counterpart: a lockstep run whose output digest must be independent of
// the process split, even with a migration mid-run.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/rate_limiter.hpp"
#include "common/time_util.hpp"
#include "harness/bench_shard.hpp"
#include "harness/histogram.hpp"
#include "harness/report.hpp"
#include "harness/rss.hpp"
#include "megaphone/megaphone.hpp"
#include "nexmark/nexmark.hpp"
#include "timely/timely.hpp"

namespace megaphone {

struct NexmarkBenchConfig {
  int query = 3;             // 1..8
  bool use_megaphone = true;  // false: native baseline
  /// Total workers across all processes of the run.
  uint32_t workers = 4;
  double rate = 100'000;  // events/second
  uint64_t duration_ms = 5000;
  nexmark::QueryConfig qcfg;
  nexmark::GeneratorConfig gcfg;

  struct Migration {
    uint64_t at_ms;
    Assignment to;
  };
  std::vector<Migration> migrations;
  MigrationStrategy strategy = MigrationStrategy::kBatched;
  size_t batch_size = 64;
};

struct NexmarkBenchResult {
  Timeline timeline{250'000'000};
  Histogram steady;
  std::vector<MigrationStats> migrations;
  /// (t_sec, bytes) RSS samples pooled over every process's shard.
  std::vector<RssSample> rss_samples;
  uint64_t outputs = 0;
  uint64_t events_sent = 0;
  /// True iff this process hosts global worker 0 (merged metrics live
  /// here).
  bool root = true;
  /// Per-process shards the merged metrics were pooled from (root only).
  std::vector<BenchShard> shards;
};

namespace detail {

/// A probe whose frontier covers the counting consumer itself: counts
/// records at its own input port, and reports the frontier at that port.
/// probe.Done() therefore implies the count is final — which the
/// shard-shipping epilogue relies on — and epoch acks measure true
/// end-to-end completion including sink consumption.
template <typename D, typename T>
timely::ProbeHandle<T> CountingProbe(timely::Stream<D, T> stream,
                                     std::atomic<uint64_t>* counter) {
  timely::Scope<T>& scope = *stream.scope();
  timely::OperatorBuilder<T> b(scope, "CountProbe");
  auto* in = b.AddInput(stream, timely::Pact<D>::Pipeline());
  uint32_t loc = in->loc();
  b.Build([in, counter](timely::OpCtx<T>&) {
    in->ForEach([counter](const T&, std::vector<D>& data) {
      *counter += data.size();
    });
  });
  return timely::ProbeHandle<T>(scope.df()->shared(), loc);
}

/// Builds query `q` (native or Megaphone) and returns a counting probe on
/// its output; outputs are counted into `*counter`.
template <typename T>
timely::ProbeHandle<T> BuildNexmarkQuery(
    int q, bool mega, timely::Stream<ControlInst, T> ctrl,
    nexmark::NexmarkStreams<T>& in, const nexmark::QueryConfig& qcfg,
    std::atomic<uint64_t>* counter) {
  auto count = [counter](auto stream) {
    return CountingProbe(stream, counter);
  };
  if (mega) {
    switch (q) {
      case 1: return count(nexmark::Q1Mega(ctrl, in, qcfg).stream);
      case 2: return count(nexmark::Q2Mega(ctrl, in, qcfg).stream);
      case 3: return count(nexmark::Q3Mega(ctrl, in, qcfg).stream);
      case 4: return count(nexmark::Q4Mega(ctrl, in, qcfg).stream);
      case 5: return count(nexmark::Q5Mega(ctrl, in, qcfg).stream);
      case 6: return count(nexmark::Q6Mega(ctrl, in, qcfg).stream);
      case 7: return count(nexmark::Q7Mega(ctrl, in, qcfg).stream);
      case 8: return count(nexmark::Q8Mega(ctrl, in, qcfg).stream);
    }
  } else {
    switch (q) {
      case 1: return count(nexmark::Q1Native(in, qcfg));
      case 2: return count(nexmark::Q2Native(in, qcfg));
      case 3: return count(nexmark::Q3Native(in, qcfg));
      case 4: return count(nexmark::Q4Native(in, qcfg));
      case 5: return count(nexmark::Q5Native(in, qcfg));
      case 6: return count(nexmark::Q6Native(in, qcfg));
      case 7: return count(nexmark::Q7Native(in, qcfg));
      case 8: return count(nexmark::Q8Native(in, qcfg));
    }
  }
  MEGA_CHECK(false) << "unknown query " << q;
  return {};
}

}  // namespace detail

/// Runs the NEXMark workload; see NexmarkBenchConfig.
/// `tcfg.workers * tcfg.processes` must equal `cfg.workers`.
inline NexmarkBenchResult RunNexmarkBench(NexmarkBenchConfig cfg,
                                          const timely::Config& tcfg) {
  using T = uint64_t;
  MEGA_CHECK_EQ(tcfg.workers * std::max(1u, tcfg.processes), cfg.workers);

  NexmarkBenchResult result;
  std::mutex result_mu;
  std::shared_ptr<std::vector<BenchShard>> root_shards;
  std::atomic<uint64_t> outputs{0};
  std::atomic<uint64_t> total_sent{0};
  std::atomic<uint64_t> t0{0};

  // Event time tracks injection deadlines: one generated event stream at
  // `rate` events/second.
  cfg.gcfg.events_per_sec = static_cast<uint64_t>(cfg.rate);
  nexmark::Generator gen(cfg.gcfg);

  timely::Execute(tcfg, [&](timely::Worker& w) {
    struct Handles {
      timely::Input<ControlInst, T> ctrl;
      timely::Input<nexmark::Person, T> persons;
      timely::Input<nexmark::Auction, T> auctions;
      timely::Input<nexmark::Bid, T> bids;
      timely::ProbeHandle<T> probe;
      ShardChannel<T> rep;
    };
    auto handles = w.Dataflow<T>([&](timely::Scope<T>& s) -> Handles {
      auto [ctrl_in, ctrl_stream] = timely::NewInput<ControlInst>(s);
      auto [p_in, p_stream] = timely::NewInput<nexmark::Person>(s);
      auto [a_in, a_stream] = timely::NewInput<nexmark::Auction>(s);
      auto [b_in, b_stream] = timely::NewInput<nexmark::Bid>(s);
      ShardChannel<T> rep = AddShardChannel(s);
      nexmark::NexmarkStreams<T> streams{p_stream, a_stream, b_stream};
      auto probe = detail::BuildNexmarkQuery(
          cfg.query, cfg.use_megaphone, ctrl_stream, streams, cfg.qcfg,
          &outputs);
      return Handles{ctrl_in, p_in, a_in, b_in, probe, std::move(rep)};
    });
    auto& [ctrl_in, p_in, a_in, b_in, probe, rep] = handles;

    typename MigrationController<T>::Options mopts;
    mopts.strategy = cfg.strategy;
    mopts.batch_size = cfg.batch_size;
    MigrationController<T> controller(ctrl_in, probe, w.index(), mopts);

    uint64_t expected = 0;
    t0.compare_exchange_strong(expected, NowNanos());
    const uint64_t start = t0.load();
    const uint64_t end = start + cfg.duration_ms * 1'000'000;
    OpenLoopPacer pacer(cfg.rate, start);

    Assignment current =
        MakeInitialAssignment(cfg.qcfg.num_bins, cfg.workers);
    size_t next_mig = 0;

    // Per-process measurement state, owned by the local root worker.
    Timeline timeline(250'000'000);
    Histogram steady;
    std::vector<MigrationStats> mig_stats;
    std::vector<RssSample> rss;
    bool was_migrating = false;
    size_t batches_before = 0;
    uint64_t chunk_frames_before = 0;
    uint64_t chunk_bytes_before = 0;
    uint64_t next_ack = 1, next_tick = 0;

    uint64_t cur_epoch = 0;
    uint64_t idx = w.index();  // event index, strided by global worker
    controller.Advance(0, 1);

    // Records are injected *at their deadline's epoch*: the stream
    // timestamp always equals the record's event time, even when the
    // system lags and records are injected in a burst (the open loop).
    // Window markers post-dated off event times therefore always land
    // strictly in the future.
    auto advance_all = [&](uint64_t e) {
      while (next_mig < cfg.migrations.size() &&
             cfg.migrations[next_mig].at_ms < e) {
        controller.MigrateTo(current, cfg.migrations[next_mig].to);
        current = cfg.migrations[next_mig].to;
        next_mig++;
      }
      controller.Advance(e, e + 1);
      p_in->AdvanceTo(e);
      a_in->AdvanceTo(e);
      b_in->AdvanceTo(e);
      cur_epoch = e;
    };
    auto epoch_of = [&](uint64_t record_idx) {
      return (pacer.DeadlineFor(record_idx) - start) / 1'000'000 + 1;
    };

    while (true) {
      uint64_t now = NowNanos();
      if (now >= end) break;
      uint64_t wall_epoch = 1 + (now - start) / 1'000'000;
      uint64_t due = pacer.RecordsDueBy(now);
      uint64_t injected = 0;
      while (idx < due && injected < 65536) {
        uint64_t ems = epoch_of(idx);
        if (ems > cur_epoch) advance_all(ems);
        nexmark::Event ev = gen.At(idx);
        switch (ev.kind) {
          case nexmark::Event::Kind::kPerson:
            ev.person.date_time = cur_epoch;
            p_in->Send(std::move(ev.person));
            break;
          case nexmark::Event::Kind::kAuction:
            ev.auction.date_time = cur_epoch;
            ev.auction.expires = cur_epoch + cfg.gcfg.auction_duration_ms;
            a_in->Send(std::move(ev.auction));
            break;
          case nexmark::Event::Kind::kBid:
            ev.bid.date_time = cur_epoch;
            b_in->Send(std::move(ev.bid));
            break;
        }
        idx += cfg.workers;
        injected++;
      }
      if (injected == 0) {
        // Idle: let event time follow the wall clock, but never past the
        // next record's epoch (its timestamp must still be current when
        // it is injected).
        uint64_t adv = std::min(wall_epoch, epoch_of(idx));
        if (adv > cur_epoch) advance_all(adv);
      }
      w.Step();
      std::this_thread::yield();

      if (w.IsLocalRoot()) {
        while (next_ack < cur_epoch && !probe.LessEqual(next_ack)) {
          uint64_t deadline = start + next_ack * 1'000'000;
          uint64_t lat = now > deadline ? now - deadline : 0;
          timeline.Add(now - start, lat, 1);
          if (!controller.Migrating()) steady.Add(lat);
          next_ack++;
        }
        if (now - start >= next_tick) {
          if (next_ack < cur_epoch) {
            uint64_t deadline = start + next_ack * 1'000'000;
            if (now > deadline) timeline.Add(now - start, now - deadline, 1);
          }
          rss.emplace_back(static_cast<double>(now - start) * 1e-9,
                           CurrentRssBytes());
          next_tick += 250'000'000;
        }
        bool migrating = controller.Migrating();
        if (migrating && !was_migrating) {
          MigrationStats ms;
          ms.start_sec = static_cast<double>(now - start) * 1e-9;
          mig_stats.push_back(ms);
          chunk_frames_before = chunk_counters().frames.load();
          chunk_bytes_before = chunk_counters().bytes.load();
        }
        if (!migrating && was_migrating && !mig_stats.empty()) {
          mig_stats.back().end_sec = static_cast<double>(now - start) * 1e-9;
          mig_stats.back().batches =
              controller.completed_batches() - batches_before;
          batches_before = controller.completed_batches();
          mig_stats.back().chunk_frames =
              chunk_counters().frames.load() - chunk_frames_before;
          mig_stats.back().chunk_bytes =
              chunk_counters().bytes.load() - chunk_bytes_before;
        }
        was_migrating = migrating;
      }
    }

    total_sent += (idx - w.index()) / cfg.workers;
    controller.Close(cur_epoch + 1);
    p_in->Close();
    a_in->Close();
    b_in->Close();

    if (w.IsLocalRoot()) {
      // probe.Done() requires every process's inputs closed and the query
      // fully drained through the counting probe, so outputs/total_sent
      // are final when it holds.
      w.StepUntil([&] { return probe.Done(); });
      uint64_t now = NowNanos();
      while (next_ack <= cur_epoch) {
        uint64_t deadline = start + next_ack * 1'000'000;
        if (now > deadline) timeline.Add(now - start, now - deadline, 1);
        next_ack++;
      }
      if (was_migrating && !mig_stats.empty() &&
          mig_stats.back().end_sec == 0) {
        mig_stats.back().end_sec = static_cast<double>(now - start) * 1e-9;
        mig_stats.back().batches =
            controller.completed_batches() - batches_before;
        mig_stats.back().chunk_frames =
            chunk_counters().frames.load() - chunk_frames_before;
        mig_stats.back().chunk_bytes =
            chunk_counters().bytes.load() - chunk_bytes_before;
      }
      for (auto& ms : mig_stats) {
        ms.max_ms = static_cast<double>(timeline.MaxIn(
                        static_cast<uint64_t>(ms.start_sec * 1e9),
                        static_cast<uint64_t>(ms.end_sec * 1e9) +
                            500'000'000)) *
                    1e-6;
      }
      BenchShard shard;
      shard.process_index = tcfg.process_index;
      shard.timeline = std::move(timeline);
      shard.steady = std::move(steady);
      shard.migrations = std::move(mig_stats);
      shard.outputs = outputs.load();
      shard.records_sent = total_sent.load();
      shard.duration_sec = static_cast<double>(now - start) * 1e-9;
      shard.rss = std::move(rss);
      rep.Finish(shard);
      if (w.index() == 0) {
        std::lock_guard<std::mutex> lock(result_mu);
        root_shards = rep.shards;
      }
    } else {
      rep.in->Close();
    }
  });

  if (root_shards == nullptr) {
    result.root = false;
    return result;
  }
  result.shards = std::move(*root_shards);
  detail::MergeShardsInto(result.shards, &result.timeline, nullptr,
                          &result.steady, &result.migrations,
                          &result.events_sent, &result.outputs, nullptr,
                          &result.rss_samples);
  return result;
}

/// Single-process convenience overload: `cfg.workers` worker threads.
inline NexmarkBenchResult RunNexmarkBench(const NexmarkBenchConfig& cfg) {
  return RunNexmarkBench(cfg, timely::Config{cfg.workers});
}

// ---------------------------------------------------------------------------
// Deterministic NEXMark Q3: the multi-process correctness harness.
//
// Like RunDeterministicCount, every quantity is independent of wall time:
// a fixed event prefix from the pure generator (indices strided by global
// worker), lockstep epochs (each waits for the probe before the next),
// and a fluid reconfiguration issued at a fixed epoch. Any run with the
// same config — whatever its process split — must produce the same
// multiset of Q3 join outputs, which the distributed NEXMark test asserts
// via a sorted digest.

struct DetNexmarkConfig {
  uint32_t total_workers = 4;
  uint32_t num_bins = 32;
  uint64_t events_per_epoch = 2500;  // all workers combined
  uint64_t epochs = 6;
  /// Epoch at which every worker schedules the initial->imbalanced
  /// reconfiguration; >= epochs disables migration.
  uint64_t migrate_at_epoch = 2;
  MigrationStrategy strategy = MigrationStrategy::kFluid;
  size_t batch_size = 1;
  /// State-chunk frame bound and per-step budget (0 = monolithic). The
  /// output digest must be independent of the setting.
  uint64_t chunk_bytes = 0;
  uint64_t chunk_bytes_per_step = 0;
  nexmark::GeneratorConfig gcfg;
};

struct DetNexmarkResult {
  /// Sorted, serialized multiset of Q3Out records; filled only in the
  /// process hosting global worker 0.
  std::vector<uint8_t> digest;
  uint64_t outputs = 0;
  size_t completed_batches = 0;
  /// True iff this process hosted global worker 0 (owns digest/batches).
  bool root = false;
};

inline DetNexmarkResult RunDeterministicNexmarkQ3(const DetNexmarkConfig& cfg,
                                                  const timely::Config& tcfg) {
  using T = uint64_t;
  using nexmark::Q3Out;

  const uint32_t W = cfg.total_workers;
  MEGA_CHECK_EQ(tcfg.workers * std::max(1u, tcfg.processes), W);

  DetNexmarkResult result;
  std::mutex result_mu;
  std::shared_ptr<std::vector<Q3Out>> root_outputs;
  nexmark::Generator gen(cfg.gcfg);

  timely::Execute(tcfg, [&](timely::Worker& w) {
    struct Handles {
      timely::Input<ControlInst, T> ctrl;
      timely::Input<nexmark::Person, T> persons;
      timely::Input<nexmark::Auction, T> auctions;
      timely::Input<nexmark::Bid, T> bids;
      timely::ProbeHandle<T> probe;
      std::shared_ptr<std::vector<Q3Out>> collected;
    };
    auto handles = w.Dataflow<T>([&](timely::Scope<T>& s) -> Handles {
      auto [ctrl_in, ctrl_stream] = timely::NewInput<ControlInst>(s);
      auto [p_in, p_stream] = timely::NewInput<nexmark::Person>(s);
      auto [a_in, a_stream] = timely::NewInput<nexmark::Auction>(s);
      auto [b_in, b_stream] = timely::NewInput<nexmark::Bid>(s);
      nexmark::NexmarkStreams<T> streams{p_stream, a_stream, b_stream};
      nexmark::QueryConfig qcfg;
      qcfg.num_bins = cfg.num_bins;
      qcfg.chunk_bytes = cfg.chunk_bytes;
      qcfg.chunk_bytes_per_step = cfg.chunk_bytes_per_step;
      auto out = nexmark::Q3Mega(ctrl_stream, streams, qcfg);

      // Collector on global worker 0: the single point of truth any
      // process split must agree with.
      auto collected = std::make_shared<std::vector<Q3Out>>();
      timely::OperatorBuilder<T> cb(s, "CollectQ3");
      auto* cin = cb.AddInput(
          out.stream,
          timely::Pact<Q3Out>::Exchange([](const Q3Out&) { return uint64_t{0}; }));
      cb.Build([cin, collected](timely::OpCtx<T>&) {
        cin->ForEach([&](const T&, std::vector<Q3Out>& recs) {
          for (auto& r : recs) collected->push_back(std::move(r));
        });
      });
      return Handles{ctrl_in, p_in, a_in, b_in, out.probe,
                     std::move(collected)};
    });
    auto& [ctrl_in, p_in, a_in, b_in, probe, collected] = handles;

    typename MigrationController<T>::Options mopts;
    mopts.strategy = cfg.strategy;
    mopts.batch_size = cfg.batch_size;
    mopts.gap = 0;
    MigrationController<T> controller(ctrl_in, probe, w.index(), mopts);

    const Assignment initial = MakeInitialAssignment(cfg.num_bins, W);
    const Assignment target = MakeImbalancedAssignment(cfg.num_bins, W);
    const uint32_t me = w.index();

    // Lockstep epochs: inject this worker's stride of the generated event
    // prefix, advance, and wait for global completion of the epoch.
    for (uint64_t e = 0; e < cfg.epochs; ++e) {
      if (e == cfg.migrate_at_epoch) controller.MigrateTo(initial, target);
      controller.Advance(e, e + 1);
      for (uint64_t idx = e * cfg.events_per_epoch;
           idx < (e + 1) * cfg.events_per_epoch; ++idx) {
        if (idx % W != me) continue;
        nexmark::Event ev = gen.At(idx);
        switch (ev.kind) {
          case nexmark::Event::Kind::kPerson:
            p_in->Send(std::move(ev.person));
            break;
          case nexmark::Event::Kind::kAuction:
            a_in->Send(std::move(ev.auction));
            break;
          case nexmark::Event::Kind::kBid:
            // Q3 ignores bids; skipping them keeps the lockstep run lean.
            break;
        }
      }
      p_in->AdvanceTo(e + 1);
      a_in->AdvanceTo(e + 1);
      b_in->AdvanceTo(e + 1);
      w.StepUntil([&] { return !probe.LessThan(e + 1); });
    }

    // Drain epochs (no data) until the migration has fully completed, so
    // completed_batches reflects the whole plan.
    uint64_t e = cfg.epochs;
    while (controller.Migrating()) {
      controller.Advance(e, e + 1);
      p_in->AdvanceTo(e + 1);
      a_in->AdvanceTo(e + 1);
      b_in->AdvanceTo(e + 1);
      w.StepUntil([&] { return !probe.LessThan(e + 1); });
      ++e;
    }
    size_t completed = controller.completed_batches();
    controller.Close(e + 1);
    p_in->Close();
    a_in->Close();
    b_in->Close();

    if (me == 0) {
      std::lock_guard<std::mutex> lock(result_mu);
      root_outputs = collected;  // final after Execute's post-closure drain
      result.completed_batches = completed;
      result.root = true;
    }
  });

  if (root_outputs) {
    std::sort(root_outputs->begin(), root_outputs->end());
    result.outputs = root_outputs->size();
    Writer wr;
    Encode(wr, *root_outputs);
    result.digest = wr.Take();
  }
  return result;
}

}  // namespace megaphone
