// Closed-loop steady-state throughput suite: full multi-worker dataflows,
// native and Megaphone paths, counting keys into dense per-key state so
// the runtime hot path dominates. Each worker injects its share of
// records, advancing epochs as it goes; throughput is records over the
// wall time from spawn to full drain.
//
// This suite produces the machine-readable steady_throughput entries the
// BENCH_*.json baselines record and the CI regression gate
// (tools/bench_check.py) compares against. Shared by `megabench --steady`
// and `micro_steady_state --steady`.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/hash.hpp"
#include "common/time_util.hpp"
#include "harness/report.hpp"
#include "megaphone/megaphone.hpp"
#include "timely/timely.hpp"

namespace megaphone {

struct SteadyConfig {
  std::string name;
  uint32_t workers = 4;
  uint64_t records_per_worker = 1 << 18;
  uint64_t epochs = 8;
  uint32_t num_bins = 4096;   // megaphone path only; the paper's §4.2 pick
  bool use_megaphone = true;  // false: native exchange + stateful unary
};

struct SteadyResult {
  double seconds = 0;
  uint64_t records = 0;
  double recs_per_sec = 0;
};

constexpr uint64_t kSteadyDomain = 1 << 16;  // distinct keys, power of two

inline SteadyResult RunSteadyThroughput(const SteadyConfig& cfg) {
  using T = uint64_t;
  using timely::OpCtx;
  using timely::Scope;
  using timely::Worker;

  const int log_domain = 63 - __builtin_clzll(kSteadyDomain);
  const uint64_t keys_per_bin = kSteadyDomain / cfg.num_bins;
  // Keys are pre-generated per worker and timing starts once every worker
  // is ready to inject, so the measurement covers the dataflow, not the
  // load generator.
  std::atomic<uint32_t> ready{0};
  std::atomic<uint64_t> t_begin{0};

  timely::Execute(timely::Config{cfg.workers}, [&](Worker& w) {
    struct Handles {
      timely::Input<ControlInst, T> ctrl;
      timely::Input<uint64_t, T> data;
      timely::ProbeHandle<T> probe;
    };
    auto handles = w.Dataflow<T>([&](Scope<T>& s) -> Handles {
      auto [ctrl_in, ctrl_stream] = timely::NewInput<ControlInst>(s);
      auto [data_in, data_stream] = timely::NewInput<uint64_t>(s);
      timely::ProbeHandle<T> probe;
      if (cfg.use_megaphone) {
        using DenseBin = state::DenseState<uint64_t>;
        Config mcfg;
        mcfg.num_bins = cfg.num_bins;
        mcfg.name = "SteadyCount";
        const int shift = 64 - log_domain;
        const uint64_t slot_mask = keys_per_bin - 1;
        auto out = Unary<DenseBin, uint64_t>(
            ctrl_stream, data_stream,
            [shift](const uint64_t& k) { return k << shift; },
            [keys_per_bin, slot_mask](const T&, DenseBin& state,
                                      std::vector<uint64_t>& recs, auto,
                                      auto&) {
              if (state.empty()) state.resize(keys_per_bin);
              for (uint64_t k : recs) state[k & slot_mask]++;
            },
            mcfg);
        probe = out.probe;
      } else {
        struct State {
          std::vector<uint64_t> counts;
        };
        const uint32_t workers = s.peers();
        auto out = timely::StatefulUnary<State, uint64_t>(
            data_stream, "NativeCount",
            [](const uint64_t& k) { return k; },  // worker = key % W
            [workers](const T&, std::vector<uint64_t>& recs, State& state,
                      OpCtx<T>&, timely::OutputHandle<uint64_t, T>&) {
              if (state.counts.empty()) {
                state.counts.resize(kSteadyDomain / workers + 1);
              }
              for (uint64_t k : recs) state.counts[k / workers]++;
            });
        probe = timely::Probe(out);
      }
      return Handles{ctrl_in, data_in, probe};
    });
    auto& [ctrl_in, data_in, probe] = handles;

    const uint64_t chunk = 4096;
    const uint64_t per_epoch =
        (cfg.records_per_worker + cfg.epochs - 1) / cfg.epochs;
    std::vector<uint64_t> keys(per_epoch * cfg.epochs);
    uint64_t idx = w.index();
    for (auto& k : keys) {
      k = HashMix64(idx) & (kSteadyDomain - 1);
      idx += cfg.workers;
    }

    // Sense barrier: measurement starts when every worker is ready.
    ready.fetch_add(1);
    while (ready.load() < cfg.workers) std::this_thread::yield();
    uint64_t expected = 0;
    t_begin.compare_exchange_strong(expected, NowNanos());

    std::vector<uint64_t> batch;
    batch.reserve(chunk);
    size_t next = 0;
    uint64_t chunks = 0;
    for (uint64_t e = 0; e < cfg.epochs; ++e) {
      for (uint64_t i = 0; i < per_epoch; i += chunk) {
        uint64_t n = std::min(chunk, per_epoch - i);
        batch.assign(keys.begin() + next, keys.begin() + next + n);
        next += n;
        data_in->SendBatch(std::move(batch));
        w.Step();
        // Rotate oversubscribed workers at a coarse grain: a yield per
        // chunk costs a context switch each, which dominates at high
        // throughput.
        if ((++chunks & 7) == 0) std::this_thread::yield();
      }
      ctrl_in->AdvanceTo(e + 1);
      data_in->AdvanceTo(e + 1);
    }
    ctrl_in->Close();
    data_in->Close();
    (void)probe;
  });

  SteadyResult r;
  r.seconds = static_cast<double>(NowNanos() - t_begin.load()) * 1e-9;
  const uint64_t per_epoch =
      (cfg.records_per_worker + cfg.epochs - 1) / cfg.epochs;
  r.records = per_epoch * cfg.epochs * cfg.workers;
  r.recs_per_sec = static_cast<double>(r.records) / r.seconds;
  return r;
}

/// Runs the four standard steady configurations (native/megaphone x
/// w1/w4) and prints + returns the JSON the BENCH_*.json baselines and
/// the CI regression gate consume. With --out=FILE the JSON is also
/// written to FILE.
inline int RunSteadySuite(const Flags& flags) {
  const uint64_t records =
      flags.GetInt("records", (1 << 18) * 4ull);  // total, all workers
  const uint64_t epochs = flags.GetInt("epochs", 8);
  const uint32_t bins = static_cast<uint32_t>(flags.GetInt("bins", 4096));
  MEGA_CHECK(bins > 0 && bins <= kSteadyDomain)
      << "--bins must be in [1, " << kSteadyDomain
      << "] (the key domain) so every bin holds at least one key";

  std::vector<SteadyConfig> configs;
  for (uint32_t workers : {1u, 4u}) {
    for (bool mega : {false, true}) {
      SteadyConfig c;
      c.name = std::string(mega ? "megaphone" : "native") + "-count-w" +
               std::to_string(workers);
      c.workers = workers;
      c.records_per_worker = records / workers;
      c.epochs = epochs;
      c.num_bins = bins;
      c.use_megaphone = mega;
      configs.push_back(c);
    }
  }

  JsonWriter json;
  json.BeginObject();
  json.Key("bench").Value("steady_throughput");
  json.Key("suite").Value("steady_throughput");
  json.Key("steady").BeginArray();
  for (const auto& c : configs) {
    SteadyResult r = RunSteadyThroughput(c);
    std::printf("%-24s workers=%u records=%llu seconds=%.3f recs_per_sec=%.0f\n",
                c.name.c_str(), c.workers,
                static_cast<unsigned long long>(r.records), r.seconds,
                r.recs_per_sec);
    std::fflush(stdout);
    json.BeginObject();
    json.Key("name").Value(c.name);
    json.Key("workers").Value(static_cast<uint64_t>(c.workers));
    json.Key("records").Value(r.records);
    json.Key("seconds").Value(r.seconds);
    json.Key("recs_per_sec").Value(r.recs_per_sec);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  std::printf("# json\n%s\n", json.Str().c_str());

  std::string out = flags.GetStr("out", "");
  if (!out.empty()) {
    std::FILE* f = std::fopen(out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open --out=%s\n", out.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", json.Str().c_str());
    std::fclose(f);
  }
  return 0;
}

}  // namespace megaphone
