// The unified figure-bench driver behind `megabench` and every fig*
// binary: one flag surface (--fig/--query/--strategy/--workers/
// --processes/--records/--out), one distributed launch path, one merged
// JSON report schema.
//
// Every figure of the paper's evaluation runs through here. With
// --processes=P the driver forks a fresh P-process group per variant run
// (fresh kernel-assigned ports, fresh TCP mesh), each process measures
// its own latency shard, and the shards merge on process 0 — so the
// numbers include the serialization and wire costs the paper is about.
// Manual mode (--process-index, for multi-terminal or multi-machine
// runs) skips the fork: every process must be started with identical
// flags and runs the same variant sequence in lockstep.
//
// Reports: the classic text tables print to stdout (same format as the
// original fig binaries), and one merged JSON report is written to
// --out (default megabench_figN.json). Schema, per variant: label,
// strategy, steady percentiles, achieved rate, latency timeline rows,
// per-migration {start_sec, end_sec, duration_sec, max_latency_ms,
// batches}, and max_latency_during_migration_ms; overhead figures carry
// per-record percentiles + CCDF instead of timelines.
#pragma once

#include <stdlib.h>
#include <unistd.h>
#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <system_error>
#include <vector>

#include "fault/fault.hpp"
#include "harness/count_workload.hpp"
#include "harness/launcher.hpp"
#include "harness/nexmark_workload.hpp"
#include "harness/report.hpp"
#include "harness/steady_workload.hpp"

namespace megaphone {

/// Figure id used for Table 1 (NEXMark LOC comparison).
constexpr int kFigTable1 = 21;
/// Figure id of the chunked-vs-monolithic large-state migration bench
/// (the fig. 15 large-state scenario, measured under migration).
constexpr int kFigChunk = 22;
/// Figure id of the fault drill: kill one process mid-run, recover from
/// the latest checkpoint, report recovery time and digest equality.
constexpr int kFigRecovery = 23;
/// Figure id of the hot-key-flip drill: uniform load flips mid-run onto
/// one worker's bins; the closed-loop adaptive controller must detect
/// the skew and rebalance without any fixed migration schedule.
constexpr int kFigAdaptive = 24;
/// Figure id of the spill drill: an RSS-bounded count run whose total
/// state exceeds the memory cap several times over — the spill-to-disk
/// LogState backend must complete it (chunked migration included) under
/// the cap, where the in-memory MapState baseline cannot.
constexpr int kFigSpill = 25;

/// --chunk-bytes=N / --chunk-step-bytes=N: state-chunk frame bound and
/// per-step flow-control budget (0 = monolithic single-frame migration).
inline uint64_t ChunkBytesFromFlags(const Flags& flags, uint64_t dflt = 0) {
  return flags.GetInt("chunk-bytes", flags.GetInt("chunk_bytes", dflt));
}
inline uint64_t ChunkStepBytesFromFlags(const Flags& flags) {
  return flags.GetInt("chunk-step-bytes",
                      flags.GetInt("chunk_bytes_per_step", 0));
}

// ---------------------------------------------------------------- procs

/// Process topology for bench runs, parsed from the common flags. Owns
/// the launch policy: fork-per-run (fresh ports and mesh each time) or
/// manual lockstep.
class BenchProcs {
 public:
  explicit BenchProcs(const Flags& flags, uint32_t default_workers = 4)
      : processes_(static_cast<uint32_t>(flags.GetInt("processes", 1))),
        workers_(static_cast<uint32_t>(
            flags.GetInt("workers", default_workers))),
        manual_(flags.Has("process-index")),
        fault_(fault::FaultSpec::Parse(flags.GetStr("fault", ""))) {
    MEGA_CHECK_GE(processes_, 1u);
    if (manual_) {
      manual_cfg_ = SetupProcessesFromFlags(flags, default_workers).config;
      manual_cfg_.fault = fault_;
    }
  }

  uint32_t processes() const { return processes_; }
  uint32_t workers_per_process() const { return workers_; }
  uint32_t total_workers() const { return processes_ * workers_; }
  /// True when this process owns the report (fork mode: always — forked
  /// children never return; manual mode: process 0 only).
  bool IsRoot() const { return !manual_ || manual_cfg_.process_index == 0; }

  CountBenchResult RunCount(const CountBenchConfig& cfg) {
    MEGA_CHECK_EQ(cfg.workers, total_workers());
    TrimHeap();
    if (manual_) return RunCountBench(cfg, manual_cfg_);
    if (processes_ <= 1) return RunCountBench(cfg);
    return RunForked(processes_, workers_, [&](timely::Config tc) {
      tc.fault = fault_;
      return RunCountBench(cfg, tc);
    });
  }

  NexmarkBenchResult RunNexmark(const NexmarkBenchConfig& cfg) {
    MEGA_CHECK_EQ(cfg.workers, total_workers());
    TrimHeap();
    if (manual_) return RunNexmarkBench(cfg, manual_cfg_);
    if (processes_ <= 1) return RunNexmarkBench(cfg);
    return RunForked(processes_, workers_, [&](timely::Config tc) {
      tc.fault = fault_;
      return RunNexmarkBench(cfg, tc);
    });
  }

 private:
  /// The driver process is worker 0 of every forked run, so one
  /// variant's allocator high-water would pollute the next variant's
  /// RSS samples (glibc keeps freed pages resident). Return them to the
  /// OS before each run; decisive for the fig-25 RSS-cap comparison.
  static void TrimHeap() {
#if defined(__GLIBC__)
    ::malloc_trim(0);
#endif
  }

  uint32_t processes_;
  uint32_t workers_;
  bool manual_;
  timely::Config manual_cfg_;
  fault::FaultSpec fault_;
};

namespace benchjson {

inline void Timeline_(JsonWriter& j, const Timeline& tl) {
  j.Key("timeline").BeginArray();
  for (const auto& r : tl.Rows()) {
    j.BeginObject();
    j.Key("t_sec").Value(r.t_sec);
    j.Key("max_ms").Value(r.max_ms);
    j.Key("p99_ms").Value(r.p99_ms);
    j.Key("p50_ms").Value(r.p50_ms);
    j.Key("p25_ms").Value(r.p25_ms);
    j.Key("samples").Value(r.samples);
    j.EndObject();
  }
  j.EndArray();
}

inline void HistSummary(JsonWriter& j, const char* key, const Histogram& h) {
  j.Key(key).BeginObject();
  j.Key("p50_ms").Value(static_cast<double>(h.Quantile(0.50)) * 1e-6);
  j.Key("p90_ms").Value(static_cast<double>(h.Quantile(0.90)) * 1e-6);
  j.Key("p99_ms").Value(static_cast<double>(h.Quantile(0.99)) * 1e-6);
  j.Key("p9999_ms").Value(static_cast<double>(h.Quantile(0.9999)) * 1e-6);
  j.Key("max_ms").Value(static_cast<double>(h.max()) * 1e-6);
  j.Key("samples").Value(h.total());
  j.EndObject();
}

inline void Ccdf_(JsonWriter& j, const Histogram& h) {
  j.Key("ccdf").BeginArray();
  for (const auto& [ns, frac] : h.Ccdf()) {
    j.BeginArray();
    j.Value(static_cast<double>(ns) * 1e-6);
    j.Value(frac);
    j.EndArray();
  }
  j.EndArray();
}

/// Migration windows plus the headline number: the maximum latency
/// observed (across every process) during any migration window.
inline void Migrations(JsonWriter& j,
                       const std::vector<MigrationStats>& migs) {
  double overall = 0;
  j.Key("migrations").BeginArray();
  for (const auto& m : migs) {
    j.BeginObject();
    j.Key("start_sec").Value(m.start_sec);
    j.Key("end_sec").Value(m.end_sec);
    j.Key("duration_sec").Value(m.duration_sec());
    j.Key("max_latency_ms").Value(m.max_ms);
    j.Key("batches").Value(static_cast<uint64_t>(m.batches));
    j.Key("chunk_frames").Value(m.chunk_frames);
    j.Key("chunk_bytes").Value(m.chunk_bytes);
    j.EndObject();
    overall = std::max(overall, m.max_ms);
  }
  j.EndArray();
  j.Key("max_latency_during_migration_ms").Value(overall);
}

/// Per-process RSS samples pooled on one time axis, plus the peak. Every
/// figure report carries memory now, not just the paper's Fig. 20 — the
/// spill backend's RSS-bound gate reads `peak_rss_bytes`.
inline void Rss_(JsonWriter& j, const std::vector<RssSample>& rss) {
  uint64_t peak = 0;
  j.Key("rss").BeginArray();
  for (const auto& [t, bytes] : rss) {
    j.BeginArray();
    j.Value(t);
    j.Value(bytes);
    j.EndArray();
    peak = std::max(peak, bytes);
  }
  j.EndArray();
  j.Key("peak_rss_bytes").Value(peak);
}

}  // namespace benchjson

// ---------------------------------------------------------------- flags

/// Resolves the run length: --records (total injected records at --rate)
/// wins over --duration_ms; floor of 250 ms so the timeline has at least
/// one bucket.
inline uint64_t DurationMsFromFlags(const Flags& flags, double rate,
                                    uint64_t dflt_ms) {
  if (flags.Has("records")) {
    uint64_t records = flags.GetInt("records", 0);
    uint64_t ms = static_cast<uint64_t>(
        static_cast<double>(records) * 1000.0 / rate);
    return std::max<uint64_t>(ms, 250);
  }
  return flags.GetInt("duration_ms", dflt_ms);
}

/// --strategy=LABEL filters the variant set; "all" (default) keeps every
/// variant. Matches the variant label or the StrategyName.
inline bool VariantEnabled(const Flags& flags, const char* label,
                           MigrationStrategy strategy) {
  std::string want = flags.GetStr("strategy", "all");
  return want == "all" || want == label || want == StrategyName(strategy);
}

/// The native (non-Megaphone) panel has no migration strategy; it runs
/// only when unfiltered or explicitly requested.
inline bool NativeEnabled(const Flags& flags) {
  std::string want = flags.GetStr("strategy", "all");
  return want == "all" || want == "native";
}

// -------------------------------------------------- count timeline figs

/// Figure 1: migration latency timelines on the key-count workload,
/// all-at-once vs fluid vs optimized.
inline void RunFig01(BenchProcs& procs, const Flags& flags, JsonWriter& j) {
  CountBenchConfig base;
  base.workers = procs.total_workers();
  base.num_bins = static_cast<uint32_t>(flags.GetInt("bins", 1024));
  base.domain = flags.GetInt("domain", 1 << 23);
  base.rate = flags.GetDouble("rate", 400'000);
  base.duration_ms = DurationMsFromFlags(flags, base.rate, 6000);
  base.mode = CountMode::kKeyCount;
  base.batch_size = flags.GetInt("batch_size", 64);
  base.chunk_bytes = ChunkBytesFromFlags(flags);
  base.chunk_bytes_per_step = ChunkStepBytesFromFlags(flags);
  const uint64_t migrate_at =
      flags.GetInt("migrate_at_ms", base.duration_ms / 3);

  std::printf(
      "# Figure 1: migration latency timelines, key-count, domain=%llu "
      "rate=%.0f workers=%u bins=%u processes=%u\n",
      static_cast<unsigned long long>(base.domain), base.rate, base.workers,
      base.num_bins, procs.processes());

  j.Key("config").BeginObject();
  j.Key("workload").Value("key-count");
  j.Key("domain").Value(base.domain);
  j.Key("rate").Value(base.rate);
  j.Key("duration_ms").Value(base.duration_ms);
  j.Key("bins").Value(static_cast<uint64_t>(base.num_bins));
  j.Key("migrate_at_ms").Value(migrate_at);
  j.EndObject();

  struct Variant {
    const char* label;
    MigrationStrategy strategy;
  };
  const Variant variants[] = {
      {"all-at-once", MigrationStrategy::kAllAtOnce},
      {"fluid", MigrationStrategy::kFluid},
      {"optimized", MigrationStrategy::kOptimized},
  };

  std::vector<std::pair<const char*, double>> max_ms;
  j.Key("variants").BeginArray();
  for (const auto& v : variants) {
    if (!VariantEnabled(flags, v.label, v.strategy)) continue;
    CountBenchConfig cfg = base;
    cfg.strategy = v.strategy;
    cfg.migrations.push_back(
        {migrate_at, MakeImbalancedAssignment(cfg.num_bins, cfg.workers)});
    auto r = procs.RunCount(cfg);
    if (!r.root) continue;
    PrintTimeline(v.label, r.timeline);
    PrintMigrationSummary(v.label, cfg.num_bins, "bins", r.migrations);
    std::printf("# %s: steady p99 = %.3f ms\n\n", v.label,
                static_cast<double>(r.steady.Quantile(0.99)) * 1e-6);
    double m = 0;
    for (const auto& ms : r.migrations) m = std::max(m, ms.max_ms);
    max_ms.emplace_back(v.label, m);

    j.BeginObject();
    j.Key("label").Value(v.label);
    j.Key("strategy").Value(StrategyName(v.strategy));
    j.Key("processes_reporting").Value(
        static_cast<uint64_t>(r.shards.size()));
    j.Key("records_sent").Value(r.records_sent);
    j.Key("achieved_rate_per_s")
        .Value(r.duration_sec > 0
                   ? static_cast<double>(r.records_sent) / r.duration_sec
                   : 0.0);
    benchjson::HistSummary(j, "steady", r.steady);
    benchjson::Migrations(j, r.migrations);
    benchjson::Timeline_(j, r.timeline);
    benchjson::Rss_(j, r.rss_samples);
    j.EndObject();
  }
  j.EndArray();

  std::printf("# summary (max latency during migration, ms)\n");
  for (const auto& [label, m] : max_ms) {
    std::printf("%-14s %12.3f\n", label, m);
  }
}

// -------------------------------------------------------- nexmark figs

/// Figures 5-12: NEXMark query latency timelines with two
/// reconfigurations — all-at-once vs Megaphone-batched (+ a native panel
/// for Fig. 7 / Q3).
inline void RunNexmarkFig(BenchProcs& procs, const Flags& flags, int q,
                          bool with_native, JsonWriter& j) {
  NexmarkBenchConfig base;
  base.query = q;
  base.workers = procs.total_workers();
  base.rate = flags.GetDouble("rate", 50'000);
  base.duration_ms = DurationMsFromFlags(flags, base.rate, 5000);
  base.qcfg.num_bins = static_cast<uint32_t>(flags.GetInt("bins", 256));
  base.qcfg.chunk_bytes = ChunkBytesFromFlags(flags);
  base.qcfg.chunk_bytes_per_step = ChunkStepBytesFromFlags(flags);
  base.batch_size = flags.GetInt("batch_size", 16);
  base.gcfg.auction_duration_ms = flags.GetInt("auction_ms", 1000);
  base.qcfg.q5_slide_ms = flags.GetInt("q5_slide_ms", 250);
  base.qcfg.q5_slices = flags.GetInt("q5_slices", 8);
  base.qcfg.q7_window_ms = flags.GetInt("q7_window_ms", 1000);
  base.qcfg.q8_window_ms = flags.GetInt("q8_window_ms", 2000);
  const uint64_t mig1 =
      flags.GetInt("migrate_at_ms", base.duration_ms * 2 / 5);
  const uint64_t mig2 =
      flags.GetInt("migrate2_at_ms", base.duration_ms * 7 / 10);

  std::printf(
      "# NEXMark Q%d: rate=%.0f events/s, workers=%u, bins=%u, "
      "processes=%u, migrations at %llu ms and %llu ms\n",
      q, base.rate, base.workers, base.qcfg.num_bins, procs.processes(),
      static_cast<unsigned long long>(mig1),
      static_cast<unsigned long long>(mig2));

  j.Key("config").BeginObject();
  j.Key("workload").Value("nexmark");
  j.Key("query").Value(q);
  j.Key("rate").Value(base.rate);
  j.Key("duration_ms").Value(base.duration_ms);
  j.Key("bins").Value(static_cast<uint64_t>(base.qcfg.num_bins));
  j.Key("migrate_at_ms").Value(mig1);
  j.Key("migrate2_at_ms").Value(mig2);
  j.EndObject();

  auto imbalanced =
      MakeImbalancedAssignment(base.qcfg.num_bins, base.workers);
  auto balanced = MakeInitialAssignment(base.qcfg.num_bins, base.workers);

  struct Variant {
    const char* label;
    MigrationStrategy strategy;
  };
  const Variant variants[] = {
      {"all-at-once", MigrationStrategy::kAllAtOnce},
      {"megaphone-batched", MigrationStrategy::kBatched},
  };

  std::vector<std::pair<const char*, double>> max_ms;
  j.Key("variants").BeginArray();
  for (const auto& v : variants) {
    if (!VariantEnabled(flags, v.label, v.strategy)) continue;
    NexmarkBenchConfig run = base;
    run.strategy = v.strategy;
    run.migrations = {{mig1, imbalanced}, {mig2, balanced}};
    auto r = procs.RunNexmark(run);
    if (!r.root) continue;
    PrintTimeline(v.label, r.timeline);
    PrintMigrationSummary(v.label, base.qcfg.num_bins, "bins",
                          r.migrations);
    std::printf("# %s: outputs=%llu steady p99=%.3f ms\n\n", v.label,
                static_cast<unsigned long long>(r.outputs),
                static_cast<double>(r.steady.Quantile(0.99)) * 1e-6);
    double m = 0;
    for (const auto& ms : r.migrations) m = std::max(m, ms.max_ms);
    max_ms.emplace_back(v.label, m);

    j.BeginObject();
    j.Key("label").Value(v.label);
    j.Key("strategy").Value(StrategyName(v.strategy));
    j.Key("processes_reporting").Value(
        static_cast<uint64_t>(r.shards.size()));
    j.Key("events_sent").Value(r.events_sent);
    j.Key("outputs").Value(r.outputs);
    benchjson::HistSummary(j, "steady", r.steady);
    benchjson::Migrations(j, r.migrations);
    benchjson::Timeline_(j, r.timeline);
    benchjson::Rss_(j, r.rss_samples);
    j.EndObject();
  }
  if (with_native && NativeEnabled(flags)) {
    NexmarkBenchConfig run = base;
    run.use_megaphone = false;
    auto r = procs.RunNexmark(run);
    if (r.root) {
      PrintTimeline("native", r.timeline);
      std::printf("# native: outputs=%llu steady p99=%.3f ms\n\n",
                  static_cast<unsigned long long>(r.outputs),
                  static_cast<double>(r.steady.Quantile(0.99)) * 1e-6);
      j.BeginObject();
      j.Key("label").Value("native");
      j.Key("strategy").Value("none");
      j.Key("processes_reporting").Value(
          static_cast<uint64_t>(r.shards.size()));
      j.Key("events_sent").Value(r.events_sent);
      j.Key("outputs").Value(r.outputs);
      benchjson::HistSummary(j, "steady", r.steady);
      benchjson::Timeline_(j, r.timeline);
      benchjson::Rss_(j, r.rss_samples);
      j.EndObject();
    }
  }
  j.EndArray();

  if (max_ms.size() >= 2) {
    std::printf("# summary Q%d: max latency during migration: "
                "%s=%.3f ms, %s=%.3f ms\n",
                q, max_ms[0].first, max_ms[0].second, max_ms[1].first,
                max_ms[1].second);
  }
}

// ------------------------------------------------------- overhead figs

/// Figures 13-15: steady-state overhead of the Megaphone interface —
/// per-record latency CCDF and percentile table per bin count, against
/// the native implementation. No migration occurs.
inline void RunOverheadFig(BenchProcs& procs, const Flags& flags, int fig,
                           JsonWriter& j) {
  CountBenchConfig base;
  base.workers = procs.total_workers();
  base.domain = flags.GetInt("domain", fig == 15 ? 1 << 23 : 1 << 20);
  base.rate = flags.GetDouble("rate", 100'000);
  base.duration_ms = DurationMsFromFlags(flags, base.rate, 2000);
  base.mode = fig == 13 ? CountMode::kHashCount : CountMode::kKeyCount;
  const CountMode native_mode =
      fig == 13 ? CountMode::kNativeHash : CountMode::kNativeKey;

  std::vector<uint32_t> log_bins = fig == 15
                                       ? std::vector<uint32_t>{4, 8, 12, 16, 20}
                                       : std::vector<uint32_t>{4, 8, 12, 16, 18};
  if (flags.GetBool("full", false)) {
    log_bins = {4, 6, 8, 10, 12, 14, 16, 18, 20};
  }

  std::printf("# Figure %d: %s overhead, domain=%llu rate=%.0f\n", fig,
              CountModeName(base.mode),
              static_cast<unsigned long long>(base.domain), base.rate);

  j.Key("config").BeginObject();
  j.Key("workload").Value(CountModeName(base.mode));
  j.Key("domain").Value(base.domain);
  j.Key("rate").Value(base.rate);
  j.Key("duration_ms").Value(base.duration_ms);
  j.EndObject();

  struct Row {
    std::string name;
    Histogram hist;
  };
  std::vector<Row> rows;
  j.Key("variants").BeginArray();
  auto add_row = [&](const std::string& name, uint64_t bins,
                     const CountBenchResult& r) {
    j.BeginObject();
    j.Key("label").Value(name);
    if (bins > 0) j.Key("bins").Value(bins);
    j.Key("processes_reporting").Value(
        static_cast<uint64_t>(r.shards.size()));
    benchjson::HistSummary(j, "per_record", r.per_record);
    benchjson::Ccdf_(j, r.per_record);
    benchjson::Rss_(j, r.rss_samples);
    j.EndObject();
    rows.push_back(Row{name, r.per_record});
  };
  for (uint32_t lb : log_bins) {
    CountBenchConfig cfg = base;
    cfg.num_bins = 1u << lb;
    if (cfg.num_bins > cfg.domain) continue;
    auto r = procs.RunCount(cfg);
    if (r.root) add_row(std::to_string(lb), cfg.num_bins, r);
  }
  if (NativeEnabled(flags)) {
    CountBenchConfig cfg = base;
    cfg.mode = native_mode;
    auto r = procs.RunCount(cfg);
    if (r.root) add_row("Native", 0, r);
  }
  j.EndArray();

  PrintPercentileHeader();
  for (const auto& row : rows) PrintPercentileRow(row.name, row.hist);
  std::printf("\n");
  if (flags.GetBool("ccdf", fig != 15)) {
    for (const auto& row : rows) PrintCcdf(row.name.c_str(), row.hist);
  }
}

// ---------------------------------------------------------- sweep figs

/// Figures 16-18: migration max-latency vs duration sweeps (bins, key
/// domain, and proportional growth).
inline void RunSweepFig(BenchProcs& procs, const Flags& flags, int fig,
                        JsonWriter& j) {
  CountBenchConfig base;
  base.workers = procs.total_workers();
  base.rate = flags.GetDouble("rate", 150'000);
  base.duration_ms = DurationMsFromFlags(flags, base.rate, 4000);
  base.mode = CountMode::kKeyCount;
  base.gap_ms = flags.GetInt("gap", 0);
  base.chunk_bytes = ChunkBytesFromFlags(flags);
  base.chunk_bytes_per_step = ChunkStepBytesFromFlags(flags);
  const uint64_t migrate_at =
      flags.GetInt("migrate_at_ms", base.duration_ms / 5);
  const uint64_t keys_per_bin = flags.GetInt("keys_per_bin", 1 << 12);

  const char* sweep_name =
      fig == 16 ? "bins" : (fig == 17 ? "domain" : "bins-proportional");
  std::printf("# Figure %d: latency vs duration sweep over %s, rate=%.0f\n",
              fig, sweep_name, base.rate);

  j.Key("config").BeginObject();
  j.Key("workload").Value("key-count");
  j.Key("sweep").Value(sweep_name);
  j.Key("rate").Value(base.rate);
  j.Key("duration_ms").Value(base.duration_ms);
  j.Key("migrate_at_ms").Value(migrate_at);
  j.EndObject();

  std::vector<uint64_t> params;
  if (fig == 16) {
    params = {16, 256, 4096};
    if (flags.GetBool("full", false)) params = {16, 64, 256, 1024, 4096, 16384};
  } else if (fig == 17) {
    params = {1 << 20, 1 << 22, 1 << 24};
    if (flags.GetBool("full", false)) {
      params = {1 << 20, 1 << 21, 1 << 22, 1 << 23, 1 << 24, 1 << 25};
    }
  } else {
    params = {256, 1024, 4096};
    if (flags.GetBool("full", false)) params = {64, 256, 1024, 4096, 8192};
  }

  const MigrationStrategy strategies[] = {MigrationStrategy::kAllAtOnce,
                                          MigrationStrategy::kFluid,
                                          MigrationStrategy::kBatched};
  j.Key("variants").BeginArray();
  for (auto strat : strategies) {
    if (!VariantEnabled(flags, StrategyName(strat), strat)) continue;
    for (uint64_t p : params) {
      CountBenchConfig cfg = base;
      cfg.strategy = strat;
      if (fig == 16) {
        cfg.num_bins = static_cast<uint32_t>(p);
        cfg.domain = flags.GetInt("domain", 1 << 22);
        cfg.batch_size = p / 16 == 0 ? 1 : p / 16;
      } else if (fig == 17) {
        cfg.num_bins = static_cast<uint32_t>(flags.GetInt("bins", 1024));
        cfg.domain = p;
        cfg.batch_size = flags.GetInt("batch_size", 64);
      } else {
        cfg.num_bins = static_cast<uint32_t>(p);
        cfg.domain = keys_per_bin * p;
        cfg.batch_size = 16;
      }
      cfg.migrations.push_back(
          {migrate_at,
           MakeImbalancedAssignment(cfg.num_bins, cfg.workers)});
      auto r = procs.RunCount(cfg);
      if (!r.root) continue;
      PrintMigrationSummary(StrategyName(strat), p,
                            fig == 17 ? "domain" : "bins", r.migrations);
      j.BeginObject();
      j.Key("label").Value(StrategyName(strat));
      j.Key("strategy").Value(StrategyName(strat));
      j.Key(fig == 17 ? "domain" : "bins").Value(p);
      j.Key("processes_reporting").Value(
          static_cast<uint64_t>(r.shards.size()));
      benchjson::Migrations(j, r.migrations);
      benchjson::Rss_(j, r.rss_samples);
      j.EndObject();
    }
  }
  j.EndArray();
}

// ------------------------------------------------------- fig 19 and 20

/// Figure 19: offered load vs maximum latency for the four
/// configurations (non-migrating, all-at-once, batched, fluid).
inline void RunFig19(BenchProcs& procs, const Flags& flags, JsonWriter& j) {
  CountBenchConfig base;
  base.workers = procs.total_workers();
  base.num_bins = static_cast<uint32_t>(flags.GetInt("bins", 1024));
  base.domain = flags.GetInt("domain", 1 << 22);
  base.duration_ms = flags.GetInt("duration_ms", 2500);
  base.mode = CountMode::kKeyCount;
  base.batch_size = 64;
  base.chunk_bytes = ChunkBytesFromFlags(flags);
  base.chunk_bytes_per_step = ChunkStepBytesFromFlags(flags);

  std::vector<double> rates = {50'000, 100'000, 200'000, 400'000};
  if (flags.GetBool("full", false)) {
    rates = {25'000, 50'000, 100'000, 200'000, 400'000, 800'000, 1'600'000};
  }

  std::printf("# Figure 19: offered load vs max latency; domain=%llu bins=%u\n",
              static_cast<unsigned long long>(base.domain), base.num_bins);
  std::printf("%12s %14s %14s\n", "strategy", "rate_per_s", "max_latency_s");

  j.Key("config").BeginObject();
  j.Key("workload").Value("key-count");
  j.Key("domain").Value(base.domain);
  j.Key("bins").Value(static_cast<uint64_t>(base.num_bins));
  j.Key("duration_ms").Value(base.duration_ms);
  j.EndObject();

  struct V {
    const char* label;
    bool migrate;
    MigrationStrategy strategy;
  };
  const V variants[] = {
      {"non-migrating", false, MigrationStrategy::kAllAtOnce},
      {"all-at-once", true, MigrationStrategy::kAllAtOnce},
      {"batched", true, MigrationStrategy::kBatched},
      {"fluid", true, MigrationStrategy::kFluid},
  };
  j.Key("variants").BeginArray();
  for (const auto& v : variants) {
    if (!VariantEnabled(flags, v.label, v.strategy)) continue;
    for (double rate : rates) {
      CountBenchConfig cfg = base;
      cfg.rate = rate;
      // --records bounds each row's run by its own rate; the migration
      // point scales with the row's duration.
      cfg.duration_ms = DurationMsFromFlags(flags, rate, base.duration_ms);
      if (v.migrate) {
        cfg.migrations.push_back(
            {flags.GetInt("migrate_at_ms", cfg.duration_ms / 4),
             MakeImbalancedAssignment(cfg.num_bins, cfg.workers)});
      }
      cfg.strategy = v.strategy;
      auto r = procs.RunCount(cfg);
      if (!r.root) continue;
      double max_s =
          static_cast<double>(r.timeline.MaxIn(0, ~uint64_t{0})) * 1e-9;
      std::printf("%12s %14.0f %14.4f\n", v.label, rate, max_s);
      j.BeginObject();
      j.Key("label").Value(v.label);
      j.Key("rate").Value(rate);
      j.Key("max_latency_s").Value(max_s);
      j.Key("processes_reporting").Value(
          static_cast<uint64_t>(r.shards.size()));
      benchjson::Rss_(j, r.rss_samples);
      j.EndObject();
    }
  }
  j.EndArray();
}

/// Figure 20: resident set size over time per migration strategy (RSS is
/// sampled in process 0).
inline void RunFig20(BenchProcs& procs, const Flags& flags, JsonWriter& j) {
  CountBenchConfig base;
  base.workers = procs.total_workers();
  base.num_bins = static_cast<uint32_t>(flags.GetInt("bins", 1024));
  base.domain = flags.GetInt("domain", 1 << 24);
  base.rate = flags.GetDouble("rate", 100'000);
  base.duration_ms = DurationMsFromFlags(flags, base.rate, 4000);
  base.mode = CountMode::kKeyCount;
  base.batch_size = 64;
  base.state_bytes_per_sec = flags.GetInt("state_bw", 64ull << 20);
  base.chunk_bytes = ChunkBytesFromFlags(flags);
  base.chunk_bytes_per_step = ChunkStepBytesFromFlags(flags);

  std::printf("# Figure 20: RSS over time; domain=%llu (~%llu MB state), "
              "state_bw=%llu MB/s\n",
              static_cast<unsigned long long>(base.domain),
              static_cast<unsigned long long>(base.domain * 8 >> 20),
              static_cast<unsigned long long>(base.state_bytes_per_sec >> 20));

  j.Key("config").BeginObject();
  j.Key("workload").Value("key-count");
  j.Key("domain").Value(base.domain);
  j.Key("rate").Value(base.rate);
  j.Key("duration_ms").Value(base.duration_ms);
  j.Key("state_bytes_per_sec").Value(base.state_bytes_per_sec);
  j.EndObject();

  const MigrationStrategy strategies[] = {MigrationStrategy::kAllAtOnce,
                                          MigrationStrategy::kBatched,
                                          MigrationStrategy::kFluid};
  j.Key("variants").BeginArray();
  for (auto strat : strategies) {
    if (!VariantEnabled(flags, StrategyName(strat), strat)) continue;
    CountBenchConfig cfg = base;
    cfg.strategy = strat;
    cfg.migrations.push_back(
        {cfg.duration_ms / 4,
         MakeImbalancedAssignment(cfg.num_bins, cfg.workers)});
    cfg.migrations.push_back(
        {cfg.duration_ms * 5 / 8,
         MakeInitialAssignment(cfg.num_bins, cfg.workers)});
    auto r = procs.RunCount(cfg);
    if (!r.root) continue;
    std::printf("# rss %s\n%10s %14s\n", StrategyName(strat), "time_s",
                "rss_mb");
    uint64_t peak = 0, baseline = 0;
    j.BeginObject();
    j.Key("label").Value(StrategyName(strat));
    j.Key("rss").BeginArray();
    for (const auto& [t, rss] : r.rss_samples) {
      std::printf("%10.2f %14.1f\n", t, static_cast<double>(rss) / 1048576.0);
      peak = std::max(peak, rss);
      if (baseline == 0) baseline = rss;
      j.BeginArray();
      j.Value(t);
      j.Value(rss);
      j.EndArray();
    }
    j.EndArray();
    j.Key("baseline_mb").Value(baseline / 1048576.0);
    j.Key("peak_mb").Value(peak / 1048576.0);
    j.Key("spike_mb").Value((peak - baseline) / 1048576.0);
    benchjson::Migrations(j, r.migrations);
    j.EndObject();
    std::printf("# %s: baseline=%.1f MB peak=%.1f MB spike=%.1f MB\n\n",
                StrategyName(strat), baseline / 1048576.0, peak / 1048576.0,
                (peak - baseline) / 1048576.0);
  }
  j.EndArray();
}

// ------------------------------------------------- fig 22 (chunked mig)

/// Figure 22: the fig. 15 large-state scenario measured *under
/// migration* — few bins over a large key domain (multi-megabyte dense
/// bins), one all-at-once reconfiguration, chunked vs monolithic state
/// movement at the same offered load. The headline comparison: chunked
/// migration's per-migration max latency must sit below the monolithic
/// single-frame path at equal steady throughput (tools/bench_check.py
/// --max-latency gates exactly this).
inline void RunFig22(BenchProcs& procs, const Flags& flags, JsonWriter& j) {
  CountBenchConfig base;
  base.workers = procs.total_workers();
  base.num_bins = static_cast<uint32_t>(flags.GetInt("bins", 16));
  base.domain = flags.GetInt("domain", 1 << 22);
  base.rate = flags.GetDouble("rate", 200'000);
  base.duration_ms = DurationMsFromFlags(flags, base.rate, 4000);
  base.mode = CountMode::kKeyCount;
  base.strategy = MigrationStrategy::kAllAtOnce;
  const uint64_t migrate_at =
      flags.GetInt("migrate_at_ms", base.duration_ms / 3);
  const uint64_t chunk = ChunkBytesFromFlags(flags, 64 << 10);
  const uint64_t chunk_step = ChunkStepBytesFromFlags(flags);

  std::printf(
      "# Figure 22: chunked vs monolithic migration, key-count, "
      "domain=%llu (%llu KB/bin) bins=%u rate=%.0f chunk=%llu KB\n",
      static_cast<unsigned long long>(base.domain),
      static_cast<unsigned long long>(base.domain / base.num_bins * 8 >> 10),
      base.num_bins, base.rate, static_cast<unsigned long long>(chunk >> 10));

  j.Key("config").BeginObject();
  j.Key("workload").Value("key-count");
  j.Key("domain").Value(base.domain);
  j.Key("rate").Value(base.rate);
  j.Key("duration_ms").Value(base.duration_ms);
  j.Key("bins").Value(static_cast<uint64_t>(base.num_bins));
  j.Key("migrate_at_ms").Value(migrate_at);
  j.Key("chunk_bytes").Value(chunk);
  j.EndObject();

  struct Variant {
    const char* label;
    uint64_t chunk_bytes;
  };
  const Variant variants[] = {
      {"monolithic", 0},
      {"chunked", chunk},
  };

  std::vector<std::pair<const char*, double>> max_ms;
  j.Key("variants").BeginArray();
  for (const auto& v : variants) {
    std::string want = flags.GetStr("strategy", "all");
    if (want != "all" && want != v.label) continue;
    CountBenchConfig cfg = base;
    cfg.chunk_bytes = v.chunk_bytes;
    cfg.chunk_bytes_per_step = v.chunk_bytes == 0 ? 0 : chunk_step;
    cfg.migrations.push_back(
        {migrate_at, MakeImbalancedAssignment(cfg.num_bins, cfg.workers)});
    auto r = procs.RunCount(cfg);
    if (!r.root) continue;
    PrintTimeline(v.label, r.timeline);
    PrintMigrationSummary(v.label, cfg.num_bins, "bins", r.migrations);
    double m = 0;
    for (const auto& ms : r.migrations) m = std::max(m, ms.max_ms);
    max_ms.emplace_back(v.label, m);
    std::printf("# %s: steady p99 = %.3f ms, max during migration = "
                "%.3f ms\n\n",
                v.label,
                static_cast<double>(r.steady.Quantile(0.99)) * 1e-6, m);

    j.BeginObject();
    j.Key("label").Value(v.label);
    j.Key("strategy").Value(StrategyName(cfg.strategy));
    j.Key("chunk_bytes").Value(v.chunk_bytes);
    j.Key("processes_reporting").Value(
        static_cast<uint64_t>(r.shards.size()));
    j.Key("records_sent").Value(r.records_sent);
    j.Key("achieved_rate_per_s")
        .Value(r.duration_sec > 0
                   ? static_cast<double>(r.records_sent) / r.duration_sec
                   : 0.0);
    benchjson::HistSummary(j, "steady", r.steady);
    benchjson::Migrations(j, r.migrations);
    benchjson::Timeline_(j, r.timeline);
    benchjson::Rss_(j, r.rss_samples);
    j.EndObject();
  }
  j.EndArray();

  std::printf("# summary (max latency during migration, ms)\n");
  for (const auto& [label, m] : max_ms) {
    std::printf("%-14s %12.3f\n", label, m);
  }
}

// ---------------------------------------------- fig 24 (adaptive drill)

/// Figure 24 (not in the paper — the closed-loop drill): key-count under
/// uniform load until --flip_at_ms, when --flip-pct percent of records
/// flip onto bins initially owned by worker 0 (a hot-key event). With
/// --controller=adaptive the per-bin stats channel feeds worker 0's
/// AdaptivePolicy, which detects the skew and rebalances on its own; the
/// report carries the reaction time (flip -> first autonomously issued
/// plan) and the post-rebalance p99, which must return to within 1.5x of
/// the pre-flip p99 (tools/bench_check.py --adaptive gates exactly
/// this). --controller=static runs the same flip with no controller, as
/// the unmitigated baseline; --controller=all runs both.
inline void RunFig24(BenchProcs& procs, const Flags& flags, JsonWriter& j) {
  CountBenchConfig base;
  base.workers = procs.total_workers();
  base.num_bins = static_cast<uint32_t>(flags.GetInt("bins", 256));
  base.domain = flags.GetInt("domain", 1 << 22);
  base.rate = flags.GetDouble("rate", 200'000);
  base.duration_ms = DurationMsFromFlags(flags, base.rate, 6000);
  base.mode = CountMode::kKeyCount;
  base.strategy = MigrationStrategy::kFluid;
  base.batch_size = flags.GetInt("batch_size", 16);
  base.chunk_bytes = ChunkBytesFromFlags(flags);
  base.chunk_bytes_per_step = ChunkStepBytesFromFlags(flags);
  base.flip_at_ms = flags.GetInt("flip_at_ms", base.duration_ms * 2 / 5);
  base.flip_worker = static_cast<uint32_t>(flags.GetInt("flip_worker", 0));
  base.flip_prob_pct = static_cast<uint32_t>(flags.GetInt("flip-pct", 90));
  base.stats_every = flags.GetInt("stats-every", 50);  // 50 ms cadence
  base.adaptive_opts.imbalance_threshold =
      flags.GetDouble("imbalance", 1.25);
  base.adaptive_opts.hysteresis = flags.GetDouble("hysteresis", 0.05);
  // Cooldown is counted in epochs here (decision_every stays 1 and the
  // bench passes real epoch numbers): 4 decision intervals.
  base.adaptive_opts.cooldown_epochs =
      flags.GetInt("cooldown-epochs", 4 * base.stats_every);
  // 0 keeps load-only scoring; >0 makes the policy weigh a bin's
  // resident bytes against its load before shipping it (PR 9's spill
  // backend makes bins far larger than their traffic justifies moving).
  base.adaptive_opts.move_cost_per_byte =
      flags.GetDouble("move-cost-per-byte", 0.0);

  std::printf(
      "# Figure 24: hot-key flip drill, key-count, domain=%llu rate=%.0f "
      "workers=%u bins=%u flip_at=%llu ms (%u%% onto worker %u's bins)\n",
      static_cast<unsigned long long>(base.domain), base.rate, base.workers,
      base.num_bins, static_cast<unsigned long long>(base.flip_at_ms),
      base.flip_prob_pct, base.flip_worker);

  j.Key("config").BeginObject();
  j.Key("workload").Value("key-count");
  j.Key("domain").Value(base.domain);
  j.Key("rate").Value(base.rate);
  j.Key("duration_ms").Value(base.duration_ms);
  j.Key("bins").Value(static_cast<uint64_t>(base.num_bins));
  j.Key("flip_at_ms").Value(base.flip_at_ms);
  j.Key("flip_prob_pct").Value(static_cast<uint64_t>(base.flip_prob_pct));
  j.Key("stats_every_epochs").Value(base.stats_every);
  j.Key("imbalance_threshold").Value(base.adaptive_opts.imbalance_threshold);
  j.EndObject();

  // Pools the fully-contained timeline buckets of [from_ns, to_ns) into
  // one histogram — the pre/post-flip p99s come from the merged timeline,
  // so every process's samples count.
  auto pool = [](const Timeline& tl, uint64_t from_ns, uint64_t to_ns) {
    Histogram h;
    const auto& bk = tl.buckets();
    for (size_t i = 0; i < bk.size(); ++i) {
      uint64_t b0 = i * tl.bucket_ns();
      if (b0 >= from_ns && b0 + tl.bucket_ns() <= to_ns) h.Merge(bk[i]);
    }
    return h;
  };

  const std::string want = flags.GetStr("controller", "adaptive");
  struct Variant {
    const char* label;
    bool adaptive;
  };
  const Variant variants[] = {{"adaptive", true}, {"static", false}};
  j.Key("variants").BeginArray();
  for (const auto& v : variants) {
    if (want != "all" && want != v.label) continue;
    CountBenchConfig cfg = base;
    cfg.adaptive = v.adaptive;
    auto r = procs.RunCount(cfg);
    if (!r.root) continue;

    const uint64_t flip_ns = cfg.flip_at_ms * 1'000'000;
    Histogram pre = pool(r.timeline, 0, flip_ns);
    // Post-rebalance window: after the last policy-issued migration
    // drained (static variant: right after the flip, unmitigated).
    const uint64_t post_from =
        r.rebalanced_sec > 0 ? static_cast<uint64_t>(r.rebalanced_sec * 1e9)
                             : flip_ns;
    Histogram post = pool(r.timeline, post_from, ~uint64_t{0});
    double pre_p99 = static_cast<double>(pre.Quantile(0.99)) * 1e-6;
    double post_p99 = static_cast<double>(post.Quantile(0.99)) * 1e-6;

    PrintTimeline(v.label, r.timeline);
    PrintMigrationSummary(v.label, cfg.num_bins, "bins", r.migrations);
    std::printf("# %s: plans=%zu reaction=%.1f ms pre-flip p99=%.3f ms "
                "post p99=%.3f ms\n\n",
                v.label, r.plans_issued, r.reaction_ms, pre_p99, post_p99);

    j.BeginObject();
    j.Key("label").Value(v.label);
    j.Key("strategy").Value(StrategyName(cfg.strategy));
    j.Key("processes_reporting").Value(
        static_cast<uint64_t>(r.shards.size()));
    j.Key("records_sent").Value(r.records_sent);
    j.Key("achieved_rate_per_s")
        .Value(r.duration_sec > 0
                   ? static_cast<double>(r.records_sent) / r.duration_sec
                   : 0.0);
    j.Key("plans_issued").Value(static_cast<uint64_t>(r.plans_issued));
    j.Key("reaction_ms").Value(r.reaction_ms);
    j.Key("flip_sec").Value(r.flip_sec);
    j.Key("rebalanced_sec").Value(r.rebalanced_sec);
    benchjson::HistSummary(j, "pre_flip", pre);
    benchjson::HistSummary(j, "post_rebalance", post);
    benchjson::HistSummary(j, "steady", r.steady);
    benchjson::Migrations(j, r.migrations);
    benchjson::Timeline_(j, r.timeline);
    benchjson::Rss_(j, r.rss_samples);
    j.EndObject();
  }
  j.EndArray();
}

// -------------------------------------------------- fig 25 (spill drill)

/// Figure 25 (not in the paper — the spill drill): a count run whose
/// per-key values carry a byte pad sized so the total state is several
/// times the RSS cap, with one chunked migration mid-run. Two variants:
/// the in-memory MapState baseline ("map-state") and the log-structured
/// spill-to-disk backend ("log-state"), whose peak RSS must stay under
/// the cap — segments stream during migration, so no bin is ever
/// materialized in memory (tools/bench_check.py --rss-bound gates peak
/// RSS and the cross-backend digest). The digest equivalence itself is
/// established on the deterministic harness (open-loop digests are
/// timing-dependent): a MapState and a LogState run of the same schedule
/// must agree byte-for-byte.
inline void RunFig25(BenchProcs& procs, const Flags& flags, JsonWriter& j) {
  CountBenchConfig base;
  base.workers = procs.total_workers();
  base.num_bins = static_cast<uint32_t>(flags.GetInt("bins", 64));
  base.domain = flags.GetInt("domain", 1 << 14);
  base.rate = flags.GetDouble("rate", 50'000);
  base.duration_ms = DurationMsFromFlags(flags, base.rate, 4000);
  base.value_pad_bytes = flags.GetInt("pad", 1 << 14);
  base.strategy = MigrationStrategy::kFluid;
  base.batch_size = flags.GetInt("batch_size", 16);
  base.chunk_bytes = ChunkBytesFromFlags(flags, 256 << 10);
  base.chunk_bytes_per_step = ChunkStepBytesFromFlags(flags);
  // The memtable bound is per bin: it must sit well under the per-bin
  // state share (total_state / bins) or nothing ever spills and the
  // "bounded RSS" claim is vacuous. 64 KB x 64 bins = 4 MB resident
  // write-back budget per process at the default sizing.
  base.spill_memtable_bytes = flags.GetInt("spill-memtable-bytes", 64 << 10);
  base.spill_segment_bytes = flags.GetInt("spill-segment-bytes", 0);
  const uint64_t migrate_at =
      flags.GetInt("migrate_at_ms", base.duration_ms / 3);
  // Total state ~= every key's pad + count, ignoring container overhead
  // (which only makes the in-memory baseline worse).
  const uint64_t total_state = base.domain * (base.value_pad_bytes + 8);
  const uint64_t rss_cap = flags.GetInt("rss-cap-bytes", total_state / 4);

  char tmpl[] = "/tmp/mega_spill_XXXXXX";
  const char* spill_dir = ::mkdtemp(tmpl);
  MEGA_CHECK(spill_dir != nullptr) << "mkdtemp failed";

  std::printf(
      "# Figure 25: spill-to-disk drill, pad-count, domain=%llu pad=%llu "
      "(~%llu MB state, rss cap %llu MB) rate=%.0f chunk=%llu KB\n",
      static_cast<unsigned long long>(base.domain),
      static_cast<unsigned long long>(base.value_pad_bytes),
      static_cast<unsigned long long>(total_state >> 20),
      static_cast<unsigned long long>(rss_cap >> 20), base.rate,
      static_cast<unsigned long long>(base.chunk_bytes >> 10));

  j.Key("config").BeginObject();
  j.Key("workload").Value("pad-count");
  j.Key("domain").Value(base.domain);
  j.Key("value_pad_bytes").Value(base.value_pad_bytes);
  j.Key("total_state_bytes").Value(total_state);
  j.Key("rss_cap_bytes").Value(rss_cap);
  j.Key("rate").Value(base.rate);
  j.Key("duration_ms").Value(base.duration_ms);
  j.Key("bins").Value(static_cast<uint64_t>(base.num_bins));
  j.Key("migrate_at_ms").Value(migrate_at);
  j.Key("chunk_bytes").Value(base.chunk_bytes);
  j.Key("spill_memtable_bytes").Value(base.spill_memtable_bytes);
  j.EndObject();

  struct Variant {
    const char* label;
    CountMode mode;
  };
  const Variant variants[] = {
      {"map-state", CountMode::kPadCount},
      {"log-state", CountMode::kSpillCount},
  };

  j.Key("variants").BeginArray();
  for (const auto& v : variants) {
    std::string want = flags.GetStr("strategy", "all");
    if (want != "all" && want != v.label) continue;
    CountBenchConfig cfg = base;
    cfg.mode = v.mode;
    if (v.mode == CountMode::kSpillCount) cfg.state_dir = spill_dir;
    cfg.migrations.push_back(
        {migrate_at, MakeImbalancedAssignment(cfg.num_bins, cfg.workers)});
    auto r = procs.RunCount(cfg);
    if (!r.root) continue;
    uint64_t peak = 0;
    for (const auto& [t, bytes] : r.rss_samples) {
      peak = std::max(peak, bytes);
    }
    double m = 0;
    for (const auto& ms : r.migrations) m = std::max(m, ms.max_ms);
    PrintTimeline(v.label, r.timeline);
    PrintMigrationSummary(v.label, cfg.num_bins, "bins", r.migrations);
    std::printf("# %s: peak rss = %llu MB (cap %llu MB%s), max during "
                "migration = %.3f ms\n\n",
                v.label, static_cast<unsigned long long>(peak >> 20),
                static_cast<unsigned long long>(rss_cap >> 20),
                v.mode == CountMode::kSpillCount
                    ? (peak <= rss_cap ? ", UNDER" : ", OVER")
                    : "",
                m);

    j.BeginObject();
    j.Key("label").Value(v.label);
    j.Key("strategy").Value(StrategyName(cfg.strategy));
    j.Key("processes_reporting").Value(
        static_cast<uint64_t>(r.shards.size()));
    j.Key("records_sent").Value(r.records_sent);
    j.Key("achieved_rate_per_s")
        .Value(r.duration_sec > 0
                   ? static_cast<double>(r.records_sent) / r.duration_sec
                   : 0.0);
    j.Key("under_rss_cap").Value(peak <= rss_cap);
    benchjson::HistSummary(j, "steady", r.steady);
    benchjson::Migrations(j, r.migrations);
    benchjson::Timeline_(j, r.timeline);
    benchjson::Rss_(j, r.rss_samples);
    j.EndObject();
  }
  j.EndArray();

  // Backend equivalence: the deterministic harness run twice — MapState
  // vs LogState with a memtable small enough to force real segment
  // traffic — must produce byte-identical digests through a chunked
  // migration.
  bool digest_match = false;
  if (procs.IsRoot()) {
    DetCountConfig dc;
    dc.total_workers = 4;
    dc.num_bins = 32;
    dc.domain = 1 << 10;
    dc.records_per_epoch = 2048;
    dc.epochs = 6;
    dc.migrate_at_epoch = 2;
    dc.strategy = MigrationStrategy::kFluid;
    dc.chunk_bytes = 4096;
    dc.chunk_bytes_per_step = 16384;
    timely::Config single;
    single.workers = dc.total_workers;
    DetCountResult ref = RunDeterministicCount(dc, single);
    DetCountConfig dl = dc;
    dl.backend = DetCountConfig::Backend::kLog;
    dl.state_dir = spill_dir;
    dl.spill_memtable_bytes = 256;
    DetCountResult lg = RunDeterministicCount(dl, single);
    digest_match = ref.root && lg.root && !ref.digest.empty() &&
                   ref.digest == lg.digest;
    std::printf("# digest_match=%d (map vs log, deterministic harness)\n",
                digest_match ? 1 : 0);
  }
  j.Key("digest_match").Value(digest_match);

  std::error_code ec;
  std::filesystem::remove_all(spill_dir, ec);
}

// ------------------------------------------------- fig 23 (fault drill)

/// Figure 23 (not in the paper — the fault drill): run the deterministic
/// count workload on a 2x2 mesh, SIGKILL process 1 mid-run, then relaunch
/// with restore=true from the latest complete checkpoint and time the
/// recovery. The run passes iff the survivor aborted with a clean
/// PeerDownError (no hang) and the post-recovery digest is byte-identical
/// to a fault-free single-process reference.
inline void RunRecovery(const Flags& flags, JsonWriter& j) {
  DetCountConfig base;
  base.total_workers = 4;
  base.num_bins = static_cast<uint32_t>(flags.GetInt("bins", 32));
  base.domain = flags.GetInt("domain", 1 << 10);
  base.records_per_epoch = flags.GetInt("records_per_epoch", 2048);
  base.epochs = flags.GetInt("epochs", 8);
  base.migrate_at_epoch = 2;
  base.strategy = MigrationStrategy::kBatched;
  base.batch_size = base.num_bins;  // whole plan in one batch
  // --state=log runs the whole drill on the spill-to-disk backend: bin
  // checkpoints become segment manifests + memtable deltas, and recovery
  // must relink the manifest segments byte-for-byte.
  const bool log_backend = flags.GetStr("state", "map") == "log";
  if (log_backend) {
    base.backend = DetCountConfig::Backend::kLog;
    base.spill_memtable_bytes = flags.GetInt("spill-memtable-bytes", 256);
  }
  const uint64_t die_at = flags.GetInt("die_at_epoch", 5);

  std::printf("# Figure 23: kill-one-process recovery drill; epochs=%llu "
              "die_at=%llu state=%s\n",
              static_cast<unsigned long long>(base.epochs),
              static_cast<unsigned long long>(die_at),
              log_backend ? "log" : "map");

  timely::Config single;
  single.workers = base.total_workers;
  DetCountResult ref = RunDeterministicCount(base, single);
  MEGA_CHECK(ref.root);

  char tmpl[] = "/tmp/mega_recovery_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  MEGA_CHECK(dir != nullptr) << "mkdtemp failed";
  DetCountConfig cfg = base;
  cfg.checkpoint_dir = dir;
  cfg.checkpoint_every = flags.GetInt("checkpoint_every", 2);
  if (log_backend) cfg.state_dir = std::string(dir) + "/spill";

  // Crash run: process 1 SIGKILLs itself at the top of epoch `die_at`;
  // the surviving root must abort via PeerDownError, not hang.
  bool aborted_cleanly = false;
  {
    DetCountConfig crash = cfg;
    crash.die_at_epoch = die_at;
    crash.die_process = 1;
    MultiProcess mp = LaunchLoopbackProcesses(2, 2);
    mp.config.heartbeat_ms = flags.GetInt("heartbeat_ms", 50);
    mp.config.peer_deadline_ms = flags.GetInt("peer_deadline_ms", 2000);
    if (!mp.IsRoot()) {
      RunDeterministicCount(crash, mp.config);
      ::_exit(9);  // unreachable: the child dies inside the epoch loop
    }
    try {
      RunDeterministicCount(crash, mp.config);
    } catch (const timely::PeerDownError&) {
      aborted_cleanly = true;
    }
    WaitForChildren(mp.children);  // nonzero by design: the child was killed
  }

  const uint64_t latest = state::LatestCompleteEpoch(cfg.checkpoint_dir, 2);

  // Timed recovery: fresh 2x2 launch, restore from the latest checkpoint,
  // replay the tail. recovery_ms covers launch + restore + replay.
  DetCountConfig rec = cfg;
  rec.restore = true;
  auto t0 = std::chrono::steady_clock::now();
  DetCountResult out = RunForked(2, 2, [&](const timely::Config& tc) {
    return RunDeterministicCount(rec, tc);
  });
  double recovery_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();
  const bool digest_match = out.root && out.digest == ref.digest;

  std::printf("# aborted_cleanly=%d checkpoint_epoch=%llu recovery_ms=%.1f "
              "digest_match=%d\n",
              aborted_cleanly ? 1 : 0,
              static_cast<unsigned long long>(latest), recovery_ms,
              digest_match ? 1 : 0);

  j.Key("config").BeginObject();
  j.Key("workload").Value("det-count");
  j.Key("state_backend").Value(log_backend ? "log" : "map");
  j.Key("epochs").Value(base.epochs);
  j.Key("records_per_epoch").Value(base.records_per_epoch);
  j.Key("die_at_epoch").Value(die_at);
  j.Key("checkpoint_every").Value(cfg.checkpoint_every);
  j.EndObject();
  j.Key("variants").BeginArray();
  j.BeginObject();
  j.Key("label").Value("recovery");
  j.Key("aborted_cleanly").Value(aborted_cleanly);
  j.Key("checkpoint_epoch").Value(latest);
  j.Key("recovery_ms").Value(recovery_ms);
  j.Key("resumed_at_epoch").Value(out.start_epoch);
  j.Key("digest_match").Value(digest_match);
  j.EndObject();
  j.EndArray();
}

// -------------------------------------------------------------- table 1

#ifndef MEGA_SOURCE_DIR
#define MEGA_SOURCE_DIR "."
#endif

namespace detail {

/// Non-blank lines between the `begin` and `end` markers of `path`.
inline int CountLocRegion(const std::string& path, const std::string& begin,
                          const std::string& end) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return -1;
  }
  std::string line;
  bool in_region = false;
  int count = 0;
  while (std::getline(f, line)) {
    if (line.find(begin) != std::string::npos) {
      in_region = true;
      continue;
    }
    if (line.find(end) != std::string::npos) in_region = false;
    if (!in_region) continue;
    if (line.find_first_not_of(" \t") != std::string::npos) count++;
  }
  return count;
}

}  // namespace detail

/// Table 1: lines of code of the NEXMark query implementations, native
/// vs Megaphone, counted from the marked regions of the query headers.
inline void RunTable01(const Flags& flags, JsonWriter& j) {
  const std::string dir =
      flags.GetStr("source_dir", MEGA_SOURCE_DIR) + "/src/nexmark/";
  const std::string native = dir + "queries_native.hpp";
  const std::string mega = dir + "queries_megaphone.hpp";

  int shared_native = detail::CountLocRegion(
      native, "[ClosedAuctions-native-begin]", "[ClosedAuctions-native-end]");
  int shared_mega = detail::CountLocRegion(
      mega, "[ClosedAuctions-mega-begin]", "[ClosedAuctions-mega-end]");

  std::printf("# Table 1: NEXMark query implementations, lines of code\n");
  std::printf("# (Q4/Q6 include the shared closed-auctions sub-plan, as in "
              "the paper)\n");
  std::printf("%8s %8s %10s\n", "query", "native", "megaphone");
  j.Key("config").BeginObject();
  j.Key("workload").Value("loc");
  j.EndObject();
  j.Key("variants").BeginArray();
  for (int q = 1; q <= 8; ++q) {
    std::string qs = std::to_string(q);
    int n = detail::CountLocRegion(native, "[Q" + qs + "-native-begin]",
                                   "[Q" + qs + "-native-end]");
    int m = detail::CountLocRegion(mega, "[Q" + qs + "-mega-begin]",
                                   "[Q" + qs + "-mega-end]");
    if (q == 4 || q == 6) {
      n += shared_native;
      m += shared_mega;
    }
    std::printf("%8s %8d %10d\n", ("Q" + qs).c_str(), n, m);
    j.BeginObject();
    j.Key("label").Value("Q" + qs);
    j.Key("native_loc").Value(static_cast<int64_t>(n));
    j.Key("megaphone_loc").Value(static_cast<int64_t>(m));
    j.EndObject();
  }
  j.EndArray();
}

// ----------------------------------------------------------------- main

inline void BenchDriverUsage() {
  std::fprintf(
      stderr,
      "megabench: unified paper-figure bench driver\n"
      "  --fig=N           figure to run (1, 5-20; 21 = Table 1;\n"
      "                    22 = chunked vs monolithic migration;\n"
      "                    23 = kill-one-process recovery drill;\n"
      "                    24 = hot-key-flip adaptive-controller drill;\n"
      "                    25 = spill-to-disk RSS-bound drill)\n"
      "  --controller=C    fig 24 variant: adaptive (default), static\n"
      "                    (no controller), or all\n"
      "  --flip_at_ms=T    fig 24: when the hot-key flip hits\n"
      "  --state=S         fig 23 backend: map (default) or log\n"
      "  --pad=N           fig 25: per-key value pad bytes\n"
      "  --rss-cap-bytes=N fig 25 cap (default: total state / 4)\n"
      "  --spill-memtable-bytes=N  LogState memtable flush threshold\n"
      "  --move-cost-per-byte=C    fig 24: adaptive migration cost per\n"
      "                    resident state byte (default 0)\n"
      "  --query=N         NEXMark query 1-8 (same as --fig=N+4)\n"
      "  --steady          closed-loop steady-throughput suite\n"
      "  --strategy=S      only run variant S (default: all)\n"
      "  --workers=W       worker threads per process (default 4)\n"
      "  --processes=P     processes; P>1 forks a TCP mesh per run\n"
      "  --records=N       total records (overrides --duration_ms)\n"
      "  --rate=R          records/second offered load\n"
      "  --chunk-bytes=N   state-chunk frame bound; 0 = monolithic\n"
      "                    single-frame migration (fig 22 default 64K)\n"
      "  --chunk-step-bytes=N  per-step chunk flow-control budget\n"
      "                    (default 4x chunk-bytes)\n"
      "  --out=PATH        merged JSON report path\n"
      "                    (default megabench_figN.json)\n"
      "  --process-index=I manual multi-process mode (no fork); every\n"
      "                    process must run identical flags\n");
}

/// Shared main() body for megabench and the fig* stub binaries;
/// `forced_fig` pins the figure (stubs), -1 reads --fig/--query.
inline int BenchDriverMain(int argc, char** argv, int forced_fig = -1) {
  Flags flags(argc, argv);
  if (flags.GetBool("help", false)) {
    BenchDriverUsage();
    return 0;
  }
  if (forced_fig < 0 && flags.GetBool("steady", false)) {
    return RunSteadySuite(flags);
  }

  int fig = forced_fig > 0 ? forced_fig
                           : static_cast<int>(flags.GetInt("fig", 0));
  if (fig == 0 && flags.Has("query")) {
    fig = static_cast<int>(flags.GetInt("query", 3)) + 4;
  }
  const bool known = fig == 1 || (fig >= 5 && fig <= 20) ||
                     fig == kFigTable1 || fig == kFigChunk ||
                     fig == kFigRecovery || fig == kFigAdaptive ||
                     fig == kFigSpill;
  if (!known) {
    BenchDriverUsage();
    return 2;
  }

  BenchProcs procs(flags);

  JsonWriter j;
  j.BeginObject();
  j.Key("bench").Value(fig == kFigTable1
                           ? std::string("table01")
                           : "fig" + std::string(fig < 10 ? "0" : "") +
                                 std::to_string(fig));
  j.Key("fig").Value(static_cast<int64_t>(fig));
  j.Key("processes").Value(static_cast<uint64_t>(procs.processes()));
  j.Key("workers_per_process")
      .Value(static_cast<uint64_t>(procs.workers_per_process()));
  j.Key("total_workers").Value(static_cast<uint64_t>(procs.total_workers()));

  if (fig == 1) {
    RunFig01(procs, flags, j);
  } else if (fig >= 5 && fig <= 12) {
    RunNexmarkFig(procs, flags, fig - 4, /*with_native=*/fig == 7, j);
  } else if (fig >= 13 && fig <= 15) {
    RunOverheadFig(procs, flags, fig, j);
  } else if (fig >= 16 && fig <= 18) {
    RunSweepFig(procs, flags, fig, j);
  } else if (fig == 19) {
    RunFig19(procs, flags, j);
  } else if (fig == 20) {
    RunFig20(procs, flags, j);
  } else if (fig == kFigChunk) {
    RunFig22(procs, flags, j);
  } else if (fig == kFigRecovery) {
    RunRecovery(flags, j);
  } else if (fig == kFigAdaptive) {
    RunFig24(procs, flags, j);
  } else if (fig == kFigSpill) {
    RunFig25(procs, flags, j);
  } else {
    RunTable01(flags, j);
  }
  j.EndObject();

  if (!procs.IsRoot()) return 0;  // manual-mode peers: workers only

  std::string out = flags.GetStr(
      "out", fig == kFigTable1
                 ? std::string("megabench_table01.json")
                 : "megabench_fig" + std::to_string(fig) + ".json");
  if (out != "none") {
    std::FILE* f = std::fopen(out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open --out=%s\n", out.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", j.Str().c_str());
    std::fclose(f);
    std::printf("# report written to %s\n", out.c_str());
  }
  return 0;
}

}  // namespace megaphone
