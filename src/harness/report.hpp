// Reporting helpers shared by the bench binaries: the tables and series
// each figure reproduction prints, plus a minimal flag parser.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness/count_workload.hpp"
#include "harness/histogram.hpp"

namespace megaphone {

/// Prints the latency timeline exactly as the paper's figures plot it:
/// time, max, p99, p50, p25 (milliseconds).
inline void PrintTimeline(const char* label, const Timeline& tl) {
  std::printf("# timeline %s\n", label);
  std::printf("%10s %12s %12s %12s %12s %10s\n", "time_s", "max_ms", "p99_ms",
              "p50_ms", "p25_ms", "samples");
  for (const auto& r : tl.Rows()) {
    std::printf("%10.2f %12.3f %12.3f %12.3f %12.3f %10llu\n", r.t_sec,
                r.max_ms, r.p99_ms, r.p50_ms, r.p25_ms,
                static_cast<unsigned long long>(r.samples));
  }
}

/// Prints a CCDF (Figs. 13-15): latency in ms vs fraction of records with
/// larger latency, downsampled to nonzero buckets.
inline void PrintCcdf(const char* label, const Histogram& h) {
  std::printf("# ccdf %s\n", label);
  std::printf("%14s %14s\n", "latency_ms", "ccdf");
  for (const auto& [ns, frac] : h.Ccdf()) {
    std::printf("%14.4f %14.6g\n", static_cast<double>(ns) * 1e-6, frac);
  }
}

/// One row of the paper's percentile tables (Figs. 13b/14b/15b).
inline void PrintPercentileRow(const std::string& name, const Histogram& h) {
  std::printf("%12s %10.2f %10.2f %10.2f %10.2f\n", name.c_str(),
              static_cast<double>(h.Quantile(0.90)) * 1e-6,
              static_cast<double>(h.Quantile(0.99)) * 1e-6,
              static_cast<double>(h.Quantile(0.9999)) * 1e-6,
              static_cast<double>(h.max()) * 1e-6);
}

inline void PrintPercentileHeader() {
  std::printf("%12s %10s %10s %10s %10s\n", "experiment", "90%", "99%",
              "99.99%", "max");
}

/// Summary of a migration for latency-vs-duration plots (Figs. 16-18).
inline void PrintMigrationSummary(const char* strategy, uint64_t param,
                                  const char* param_name,
                                  const std::vector<MigrationStats>& migs) {
  for (size_t i = 0; i < migs.size(); ++i) {
    std::printf("%12s %10llu %-10s mig=%zu duration_s=%10.3f max_latency_s=%10.4f batches=%zu\n",
                strategy, static_cast<unsigned long long>(param), param_name,
                i, migs[i].duration_sec(), migs[i].max_ms * 1e-3,
                migs[i].batches);
  }
}

/// Minimal ordered JSON emitter for machine-readable bench reports
/// (BENCH_*.json). Supports nested objects/arrays with correct comma
/// placement; numbers are printed with enough precision to round-trip.
class JsonWriter {
 public:
  JsonWriter& BeginObject() { return Open('{'); }
  JsonWriter& EndObject() { return Close('}'); }
  JsonWriter& BeginArray() { return Open('['); }
  JsonWriter& EndArray() { return Close(']'); }

  JsonWriter& Key(const std::string& k) {
    Comma();
    AppendString(k);
    out_ += ": ";
    pending_value_ = true;
    return *this;
  }

  JsonWriter& Value(const std::string& v) {
    Comma();
    AppendString(v);
    return *this;
  }
  JsonWriter& Value(const char* v) { return Value(std::string(v)); }
  JsonWriter& Value(double v) {
    Comma();
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out_ += buf;
    return *this;
  }
  JsonWriter& Value(uint64_t v) {
    Comma();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    out_ += buf;
    return *this;
  }
  JsonWriter& Value(int64_t v) {
    Comma();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out_ += buf;
    return *this;
  }
  JsonWriter& Value(int v) { return Value(static_cast<int64_t>(v)); }
  JsonWriter& Value(bool v) {
    Comma();
    out_ += v ? "true" : "false";
    return *this;
  }

  const std::string& Str() const { return out_; }

 private:
  void Comma() {
    if (pending_value_) {
      pending_value_ = false;
      return;  // value directly follows its key
    }
    if (!first_) out_ += ", ";
    first_ = false;
  }
  JsonWriter& Open(char c) {
    Comma();
    out_ += c;
    first_ = true;
    return *this;
  }
  JsonWriter& Close(char c) {
    out_ += c;
    first_ = false;
    return *this;
  }
  void AppendString(const std::string& s) {
    out_ += '"';
    for (char c : s) {
      if (c == '"' || c == '\\') out_ += '\\';
      out_ += c;
    }
    out_ += '"';
  }

  std::string out_;
  bool first_ = true;
  bool pending_value_ = false;
};

/// Minimal command-line flags: --key=value or --key value. Unknown keys
/// are ignored so every bench accepts the common set.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string a = argv[i];
      if (a.rfind("--", 0) != 0) continue;
      a = a.substr(2);
      auto eq = a.find('=');
      if (eq != std::string::npos) {
        kv_.emplace_back(a.substr(0, eq), a.substr(eq + 1));
      } else if (i + 1 < argc && argv[i + 1][0] != '-') {
        kv_.emplace_back(a, argv[++i]);
      } else {
        kv_.emplace_back(a, "1");
      }
    }
  }

  double GetDouble(const std::string& key, double dflt) const {
    for (const auto& [k, v] : kv_) {
      if (k == key) return std::atof(v.c_str());
    }
    return dflt;
  }
  uint64_t GetInt(const std::string& key, uint64_t dflt) const {
    for (const auto& [k, v] : kv_) {
      if (k == key) return std::strtoull(v.c_str(), nullptr, 10);
    }
    return dflt;
  }
  bool GetBool(const std::string& key, bool dflt) const {
    for (const auto& [k, v] : kv_) {
      if (k == key) return v != "0" && v != "false";
    }
    return dflt;
  }
  std::string GetStr(const std::string& key, const std::string& dflt) const {
    for (const auto& [k, v] : kv_) {
      if (k == key) return v;
    }
    return dflt;
  }
  bool Has(const std::string& key) const {
    for (const auto& kv : kv_) {
      if (kv.first == key) return true;
    }
    return false;
  }

 private:
  std::vector<std::pair<std::string, std::string>> kv_;
};

}  // namespace megaphone
