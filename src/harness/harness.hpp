// Umbrella header for the benchmark harness.
#pragma once

#include "harness/count_workload.hpp"  // IWYU pragma: export
#include "harness/histogram.hpp"       // IWYU pragma: export
#include "harness/report.hpp"          // IWYU pragma: export
#include "harness/rss.hpp"             // IWYU pragma: export
