// Per-process bench report shards for distributed runs.
//
// In a multi-process bench each process observes its own latency record:
// the local root worker measures epoch completions against the process's
// tracker replica (so network delay is part of the measurement, exactly
// what the paper's cluster runs see). At shutdown every process encodes
// its observations into a BenchShard and ships it over the dataflow to
// global worker 0 — the wire serde path below — where the shards merge
// into the single report the figure benches print.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/serde.hpp"
#include "harness/histogram.hpp"
#include "timely/timely.hpp"

namespace megaphone {

/// Summary of one migration observed by a bench driver: its window, the
/// maximum latency inside it, the number of completed batches, and the
/// state-chunk traffic the window shipped (frames and wire bytes — this
/// process's share until shards merge, then the sum over all processes).
struct MigrationStats {
  double start_sec = 0;
  double end_sec = 0;
  double duration_sec() const { return end_sec - start_sec; }
  double max_ms = 0;  // max latency observed during the migration window
  size_t batches = 0;
  uint64_t chunk_frames = 0;
  uint64_t chunk_bytes = 0;

  void Serialize(Writer& w) const {
    Encode(w, start_sec);
    Encode(w, end_sec);
    Encode(w, max_ms);
    Encode(w, static_cast<uint64_t>(batches));
    Encode(w, chunk_frames);
    Encode(w, chunk_bytes);
  }
  static MigrationStats Deserialize(Reader& r) {
    MigrationStats ms;
    ms.start_sec = Decode<double>(r);
    ms.end_sec = Decode<double>(r);
    ms.max_ms = Decode<double>(r);
    ms.batches = static_cast<size_t>(Decode<uint64_t>(r));
    ms.chunk_frames = Decode<uint64_t>(r);
    ms.chunk_bytes = Decode<uint64_t>(r);
    return ms;
  }
};

/// One process's share of a bench run's measurements.
/// One (elapsed seconds, resident-set bytes) sample of a process's RSS.
using RssSample = std::pair<double, uint64_t>;

struct BenchShard {
  uint32_t process_index = 0;
  Timeline timeline{250'000'000};
  Histogram per_record;
  Histogram steady;
  std::vector<MigrationStats> migrations;
  uint64_t outputs = 0;
  uint64_t records_sent = 0;
  double duration_sec = 0;
  /// Periodic RSS samples of this process (every figure reports memory,
  /// not just the paper's Fig. 20 — the spill backend's gate needs it).
  std::vector<RssSample> rss;

  void Serialize(Writer& w) const {
    Encode(w, process_index);
    Encode(w, timeline);
    Encode(w, per_record);
    Encode(w, steady);
    Encode(w, migrations);
    Encode(w, outputs);
    Encode(w, records_sent);
    Encode(w, duration_sec);
    Encode(w, rss);
  }
  static BenchShard Deserialize(Reader& r) {
    BenchShard s;
    s.process_index = Decode<uint32_t>(r);
    s.timeline = Decode<Timeline>(r);
    s.per_record = Decode<Histogram>(r);
    s.steady = Decode<Histogram>(r);
    s.migrations = Decode<std::vector<MigrationStats>>(r);
    s.outputs = Decode<uint64_t>(r);
    s.records_sent = Decode<uint64_t>(r);
    s.duration_sec = Decode<double>(r);
    s.rss = Decode<std::vector<RssSample>>(r);
    return s;
  }
};

namespace detail {

/// Pools per-process shards into one merged report. Timelines and
/// histograms merge sample-by-sample; `records`/`outputs` sum and
/// `duration` takes the max across processes (null pointers skip a
/// field). Migration windows come from process 0 (all processes observe
/// the same controller schedule) with each window's max latency
/// recomputed over the *merged* timeline, so a spike seen only by a
/// remote process still registers, and each window's chunk traffic summed
/// over every process's shard. Shards are sorted by process index.
inline void MergeShardsInto(std::vector<BenchShard>& shards,
                            Timeline* timeline, Histogram* per_record,
                            Histogram* steady,
                            std::vector<MigrationStats>* migrations,
                            uint64_t* records, uint64_t* outputs,
                            double* duration,
                            std::vector<RssSample>* rss = nullptr) {
  std::sort(shards.begin(), shards.end(),
            [](const BenchShard& a, const BenchShard& b) {
              return a.process_index < b.process_index;
            });
  for (auto& s : shards) {
    if (timeline) timeline->Merge(s.timeline);
    if (per_record) per_record->Merge(s.per_record);
    if (steady) steady->Merge(s.steady);
    if (records) *records += s.records_sent;
    if (outputs) *outputs += s.outputs;
    if (duration) *duration = std::max(*duration, s.duration_sec);
    if (migrations && s.process_index == 0) *migrations = s.migrations;
    if (rss) rss->insert(rss->end(), s.rss.begin(), s.rss.end());
  }
  if (rss) {
    // All processes' samples pooled on one time axis (per-process RSS,
    // interleaved). Stable so equal timestamps keep process order.
    std::stable_sort(rss->begin(), rss->end(),
                     [](const RssSample& a, const RssSample& b) {
                       return a.first < b.first;
                     });
  }
  if (migrations) {
    // Chunk traffic is observed per process; windows line up across
    // shards because every process runs the same controller schedule.
    for (auto& s : shards) {
      if (s.process_index == 0) continue;
      for (size_t i = 0;
           i < migrations->size() && i < s.migrations.size(); ++i) {
        (*migrations)[i].chunk_frames += s.migrations[i].chunk_frames;
        (*migrations)[i].chunk_bytes += s.migrations[i].chunk_bytes;
      }
    }
  }
  if (migrations && timeline) {
    for (auto& ms : *migrations) {
      ms.max_ms = static_cast<double>(timeline->MaxIn(
                      static_cast<uint64_t>(ms.start_sec * 1e9),
                      static_cast<uint64_t>(ms.end_sec * 1e9) +
                          500'000'000)) *
                  1e-6;
    }
  }
}

}  // namespace detail

/// A side channel in the bench dataflow that carries encoded BenchShards
/// to global worker 0. Every worker holds the input handle (and must
/// close it); only each process's local root sends. The collected shards
/// are complete once the dataflow drains (Execute returns).
template <typename T>
struct ShardChannel {
  timely::Input<std::vector<uint8_t>, T> in;
  std::shared_ptr<std::vector<BenchShard>> shards;  // filled on worker 0

  /// Sends this process's shard and closes the channel.
  void Finish(const BenchShard& shard) {
    in->Send(EncodeToBytes(shard));
    in->Close();
  }
};

/// Adds the shard side channel to a bench dataflow under construction.
/// The collector runs on global worker 0; shards from every process land
/// in `shards` in arrival order.
template <typename T>
ShardChannel<T> AddShardChannel(timely::Scope<T>& s) {
  auto [in, stream] = timely::NewInput<std::vector<uint8_t>>(s);
  auto shards = std::make_shared<std::vector<BenchShard>>();
  timely::OperatorBuilder<T> b(s, "BenchShards");
  auto* cin = b.AddInput(
      stream, timely::Pact<std::vector<uint8_t>>::Exchange(
                  [](const std::vector<uint8_t>&) { return uint64_t{0}; }));
  b.Build([cin, shards](timely::OpCtx<T>&) {
    cin->ForEach([&](const T&, std::vector<std::vector<uint8_t>>& recs) {
      for (auto& bytes : recs) {
        shards->push_back(DecodeFromBytes<BenchShard>(bytes));
      }
    });
  });
  return ShardChannel<T>{std::move(in), std::move(shards)};
}

}  // namespace megaphone
