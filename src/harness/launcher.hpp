// Self-forking single-binary launcher for multi-process runs.
//
// A bench or test asks for P processes x W workers; the launcher binds
// one kernel-assigned loopback listener per process *before* forking (so
// ports are race-free and every process knows the full address list),
// forks P-1 children, and hands each process a timely::Config carrying
// its index and pre-bound listener. The parent is process 0 — the one
// that hosts global worker 0 and therefore produces results — and reaps
// the children with WaitForChildren.
//
// Fork happens before any threads exist (worker threads and mesh threads
// are spawned inside timely::Execute), so the children are clean
// single-threaded images of the launcher state.
//
// Manual mode (multi-terminal or multi-machine-style runs) skips the
// fork: pass --process-index and every process derives the address list
// from --base-port.
#pragma once

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "harness/report.hpp"
#include "net/socket.hpp"
#include "timely/runtime.hpp"

namespace megaphone {

struct MultiProcess {
  /// Fully populated for *this* process (index, addresses, listener).
  timely::Config config;
  /// Child pids; nonempty only in the parent of a forked run.
  std::vector<pid_t> children;

  /// True for the process hosting global worker 0 (results live here).
  bool IsRoot() const { return config.process_index == 0; }
};

/// Binds listeners, forks `processes - 1` children, and returns each
/// process's run configuration. With processes <= 1 no sockets or forks
/// happen at all — the classic thread runtime.
inline MultiProcess LaunchLoopbackProcesses(uint32_t processes,
                                            uint32_t workers_per_process) {
  MEGA_CHECK_GE(processes, 1u);
  MultiProcess mp;
  mp.config.workers = workers_per_process;
  mp.config.processes = processes;
  if (processes <= 1) return mp;

  std::vector<int> listeners(processes);
  for (uint32_t p = 0; p < processes; ++p) {
    listeners[p] =
        net::BindListener("127.0.0.1", 0, static_cast<int>(processes));
    mp.config.addresses.push_back(
        "127.0.0.1:" + std::to_string(net::ListenerPort(listeners[p])));
  }

  uint32_t my_index = 0;
  for (uint32_t p = 1; p < processes; ++p) {
    pid_t pid = ::fork();
    MEGA_CHECK_GE(pid, 0) << "fork failed";
    if (pid == 0) {
      my_index = p;
      mp.children.clear();
      break;
    }
    mp.children.push_back(pid);
  }

  mp.config.process_index = my_index;
  mp.config.listen_fd = listeners[my_index];
  for (uint32_t p = 0; p < processes; ++p) {
    if (p != my_index) ::close(listeners[p]);
  }
  return mp;
}

/// Reaps every child; returns 0 iff all exited cleanly with status 0.
inline int WaitForChildren(const std::vector<pid_t>& children) {
  int rc = 0;
  for (pid_t pid : children) {
    int status = 0;
    if (::waitpid(pid, &status, 0) < 0) {
      rc = 1;
      continue;
    }
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) rc = 1;
  }
  return rc;
}

/// Runs `fn(config)` across `processes` freshly forked processes: the
/// P-1 children run fn and _exit(0) (skipping atexit handlers — they are
/// workers only), the parent runs fn as process 0, reaps the children,
/// and returns fn's result. With processes <= 1, a plain call. The
/// caller must be single-threaded at entry (true between Executes); a
/// fresh fork per run means every run gets fresh kernel-assigned ports
/// and a fresh mesh, so a driver can launch many distributed runs
/// back-to-back.
template <typename Fn>
auto RunForked(uint32_t processes, uint32_t workers_per_process, Fn&& fn) {
  MultiProcess mp = LaunchLoopbackProcesses(processes, workers_per_process);
  if (!mp.IsRoot()) {
    fn(mp.config);
    ::_exit(0);
  }
  auto result = fn(mp.config);
  MEGA_CHECK_EQ(WaitForChildren(mp.children), 0) << "peer process failed";
  return result;
}

/// Builds the run configuration from harness flags:
///   --processes=P [--workers=W]            self-forking loopback launch
///   --processes=P --process-index=I        manual launch, no fork; every
///     [--base-port=B] [--host=H]           process must be started with
///                                          the same P/W/B
inline MultiProcess SetupProcessesFromFlags(const Flags& flags,
                                            uint32_t default_workers) {
  uint32_t processes =
      static_cast<uint32_t>(flags.GetInt("processes", 1));
  uint32_t workers = static_cast<uint32_t>(
      flags.GetInt("workers", default_workers));
  if (!flags.Has("process-index")) {
    return LaunchLoopbackProcesses(processes, workers);
  }
  MultiProcess mp;
  mp.config.workers = workers;
  mp.config.processes = processes;
  mp.config.process_index =
      static_cast<uint32_t>(flags.GetInt("process-index", 0));
  mp.config.base_port =
      static_cast<uint16_t>(flags.GetInt("base-port", 40123));
  std::string host = flags.GetStr("host", "127.0.0.1");
  for (uint32_t p = 0; p < processes; ++p) {
    mp.config.addresses.push_back(
        host + ":" + std::to_string(mp.config.base_port + p));
  }
  return mp;
}

}  // namespace megaphone
