// Configuration updates, the time-versioned routing table, and operator F's
// control-plane bookkeeping.
//
// Megaphone drives migration with a stream of configuration updates
// (paper §3.3): each update (time, bin, worker) declares that from `time`
// on, `bin` lives on `worker`. Updates are ordinary timestamped data; the
// control stream's frontier tells F when the configuration at a time can no
// longer change, and therefore when records at that time may be routed and
// migrations initiated.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/serde.hpp"
#include "timely/antichain.hpp"
#include "timely/operator.hpp"

namespace megaphone {

using BinId = uint32_t;

/// A migrating state chunk in flight on the state channel: one
/// size-bounded frame of a bin's content, tagged with its destination and
/// its position in the bin's chunk sequence. All frames of one bin
/// migration travel at the migration time t (the frontier argument is
/// unchanged: S cannot apply records at ≥ t until F releases t, which
/// happens only after the last frame left).
///
/// The payload is a section stream ([u8 tag][u64 len][bytes]...; tags in
/// bin.hpp): state sections feed the backend's incremental absorb;
/// pending-map sections are reassembled and decoded at the last frame; a
/// whole-bin section carries the monolithic encoding when chunking is off.
///
/// Member serde lets the state channel itself cross process boundaries:
/// a migration to a worker in another process ships these bytes over the
/// mesh, so state genuinely moves over the wire.
struct BinChunk {
  uint32_t target = 0;
  BinId bin = 0;
  uint32_t seq = 0;  // position within the bin's migration, from 0
  uint8_t last = 1;  // nonzero on the final frame of the bin
  std::vector<uint8_t> bytes;

  size_t WireSize() const { return bytes.size() + 3 * sizeof(uint32_t) + 1; }

  void Serialize(Writer& w) const {
    Encode(w, target);
    Encode(w, bin);
    Encode(w, seq);
    Encode(w, last);
    Encode(w, bytes);
  }
  static BinChunk Deserialize(Reader& r) {
    BinChunk c;
    c.target = Decode<uint32_t>(r);
    c.bin = Decode<BinId>(r);
    c.seq = Decode<uint32_t>(r);
    c.last = Decode<uint8_t>(r);
    c.bytes = Decode<std::vector<uint8_t>>(r);
    return c;
  }
};

/// One configuration update: bin -> worker, effective at the update's
/// stream timestamp.
struct ControlInst {
  BinId bin = 0;
  uint32_t worker = 0;

  friend bool operator==(const ControlInst&, const ControlInst&) = default;
};

/// Maps the most significant bits of an exchange value to a bin
/// (paper §4.2: high bits, because low bits feed hash containers).
inline BinId BinOf(uint64_t exchange_value, uint32_t num_bins) {
  MEGA_DCHECK((num_bins & (num_bins - 1)) == 0) << "bins must be power of 2";
  if (num_bins == 1) return 0;
  // __builtin_ctz(num_bins) == log2(num_bins) for powers of two.
  return static_cast<BinId>(exchange_value >> (64 - __builtin_ctz(num_bins)));
}

/// The default (initial) assignment: bin i lives on worker i % workers.
inline uint32_t InitialOwner(BinId bin, uint32_t workers) {
  return bin % workers;
}

/// The configuration function `configuration(time, bin) -> worker`
/// (paper §3.2), stored as a per-bin history of (time, worker) versions.
///
/// Versions must be appended in nondecreasing time order per bin, which is
/// guaranteed because F integrates control updates in frontier order.
template <typename T>
class RoutingTable {
 public:
  RoutingTable(uint32_t num_bins, uint32_t workers)
      : workers_(workers), history_(num_bins), flat_(num_bins),
        max_version_time_(timely::TimestampTraits<T>::Minimum()) {
    MEGA_CHECK_GT(num_bins, 0u);
    MEGA_CHECK((num_bins & (num_bins - 1)) == 0)
        << "bin count must be a power of two";
    for (BinId b = 0; b < num_bins; ++b) {
      history_[b].emplace_back(timely::TimestampTraits<T>::Minimum(),
                               InitialOwner(b, workers));
      flat_[b] = InitialOwner(b, workers);
    }
  }

  uint32_t num_bins() const { return static_cast<uint32_t>(history_.size()); }
  uint32_t workers() const { return workers_; }

  /// Replaces the table's time-minimum base version with an explicit
  /// per-bin assignment (checkpoint restore: the run resumes with the
  /// routing the checkpoint was taken under, not bin % workers). Must be
  /// called before any Apply; note that OwnerBefore still falls back to
  /// InitialOwner for updates at the minimum time, so restored schedules
  /// must not migrate at the minimum timestamp — the harness never does.
  void ResetInitial(const std::vector<uint32_t>& owners) {
    MEGA_CHECK_EQ(owners.size(), history_.size())
        << "restored assignment has the wrong bin count";
    for (BinId b = 0; b < history_.size(); ++b) {
      MEGA_CHECK_LT(owners[b], workers_);
      MEGA_CHECK_EQ(history_[b].size(), size_t{1})
          << "ResetInitial after routing updates";
      history_[b].back().second = owners[b];
      flat_[b] = owners[b];
    }
  }

  /// Owner of `bin` for records at time `t`: the latest version with
  /// effective time ≤ t.
  uint32_t WorkerAt(const T& t, BinId bin) const {
    if (flat_valid_ &&
        timely::TimestampTraits<T>::LessEqual(max_version_time_, t)) {
      return flat_[bin];  // t sees every bin's latest version
    }
    const auto& h = history_[bin];
    for (auto it = h.rbegin(); it != h.rend(); ++it) {
      if (timely::TimestampTraits<T>::LessEqual(it->first, t)) {
        return it->second;
      }
    }
    MEGA_CHECK(false) << "no routing version at or before requested time";
    return 0;
  }

  /// Flat per-bin owner array, valid for routing at `t` iff `t` is at or
  /// past every stored version (the steady state between migrations);
  /// nullptr when some bin has a version in advance of `t` — or when
  /// versions at mutually incomparable times have made the single upper
  /// bound meaningless — in which case callers must take the per-record
  /// WorkerAt path.
  const uint32_t* FlatOwnersAt(const T& t) const {
    return flat_valid_ &&
                   timely::TimestampTraits<T>::LessEqual(max_version_time_, t)
               ? flat_.data()
               : nullptr;
  }

  /// Owner of `bin` just before an update at time `t` takes effect: the
  /// latest version with effective time strictly less than t.
  uint32_t OwnerBefore(const T& t, BinId bin) const {
    const auto& h = history_[bin];
    for (auto it = h.rbegin(); it != h.rend(); ++it) {
      if (timely::TimestampTraits<T>::LessEqual(it->first, t) &&
          !(it->first == t)) {
        return it->second;
      }
    }
    // The initial version is at the minimum time; an update at the minimum
    // time replaces it, in which case the initial owner is "before".
    return InitialOwner(bin, workers_);
  }

  /// Appends a version (time must be ≥ the bin's latest version time).
  void Apply(const T& t, BinId bin, uint32_t worker) {
    auto& h = history_[bin];
    MEGA_CHECK(timely::TimestampTraits<T>::LessEqual(h.back().first, t))
        << "routing versions must be appended in time order";
    if (h.back().first == t) {
      h.back().second = worker;  // later update at the same time wins
    } else {
      h.emplace_back(t, worker);
    }
    flat_[bin] = worker;
    if (timely::TimestampTraits<T>::LessEqual(max_version_time_, t)) {
      max_version_time_ = t;
    } else if (!timely::TimestampTraits<T>::LessEqual(t, max_version_time_)) {
      // `t` is incomparable to the running bound (partially ordered T):
      // no stored single time bounds every version any more, so the flat
      // fast path would misroute queries between the two; disable it.
      flat_valid_ = false;
    }
  }

  /// Drops versions that can no longer be consulted: every version
  /// strictly older than the latest version ≤ `t` when both data and
  /// control frontiers have passed `t`.
  void Compact(const T& t) {
    for (auto& h : history_) {
      size_t keep = 0;
      for (size_t i = 0; i < h.size(); ++i) {
        if (timely::TimestampTraits<T>::LessEqual(h[i].first, t)) keep = i;
      }
      if (keep > 0) h.erase(h.begin(), h.begin() + static_cast<long>(keep));
    }
  }

  /// Total number of stored versions (for tests / introspection).
  size_t TotalVersions() const {
    size_t n = 0;
    for (const auto& h : history_) n += h.size();
    return n;
  }

 private:
  uint32_t workers_;
  std::vector<std::vector<std::pair<T, uint32_t>>> history_;
  std::vector<uint32_t> flat_;  // owner at each bin's latest version
  T max_version_time_;     // upper bound on every version time while valid
  bool flat_valid_ = true;  // false once version times became incomparable
};

/// Operator F's control-plane state: buffered (not yet final) updates, the
/// routing table, and the queue of migrations this worker must perform.
/// Shared by the unary and binary Megaphone operators.
template <typename T>
class ControlState {
 public:
  ControlState(uint32_t num_bins, uint32_t workers, uint32_t my_worker)
      : routing_(num_bins, workers), me_(my_worker) {}

  RoutingTable<T>& routing() { return routing_; }
  const RoutingTable<T>& routing() const { return routing_; }

  /// Buffers control updates received at time `t`; retains a capability at
  /// `t` the first time it is seen (F must be able to emit state at `t`).
  void Enqueue(timely::OpCtx<T>& ctx, const T& t,
               std::vector<ControlInst>& updates) {
    auto [it, inserted] = pending_.emplace(t, std::vector<ControlInst>{});
    if (inserted) ctx.Retain(t);
    it->second.insert(it->second.end(), updates.begin(), updates.end());
  }

  /// Integrates every buffered update whose time is no longer in advance
  /// of the control frontier: applies it to the routing table and, where
  /// this worker loses a bin, queues a migration. Releases capabilities
  /// for times at which this worker has nothing to migrate.
  void IntegrateFinal(timely::OpCtx<T>& ctx,
                      const timely::Antichain<T>& control_frontier) {
    while (!pending_.empty()) {
      auto it = pending_.begin();
      const T& t = it->first;
      if (control_frontier.LessEqual(t)) break;  // still mutable
      std::vector<std::pair<BinId, uint32_t>> mine;
      for (const ControlInst& u : it->second) {
        uint32_t old_owner = routing_.OwnerBefore(t, u.bin);
        routing_.Apply(t, u.bin, u.worker);
        if (old_owner == me_ && u.worker != me_) {
          mine.emplace_back(u.bin, u.worker);
        }
      }
      if (mine.empty()) {
        ctx.Release(t);  // nothing for this worker to migrate at t
      } else {
        migrations_.emplace(t, std::move(mine));
      }
      pending_.erase(it);
    }
  }

  /// Migrations whose time has been reached by the S output frontier, in
  /// time order. `ready(t)` decides readiness (probe check); `extract(t,
  /// bin, target)` uninstalls the bin and returns its chunk frames. The
  /// frames are *queued*, not sent: FlushChunks drains the queue under a
  /// per-step byte budget, and the capability at `t` is released only when
  /// the last frame at `t` has actually been emitted — so the state
  /// frontier cannot pass `t` while chunks are still in flight, which is
  /// what makes incremental installation at S safe.
  template <typename ReadyFn, typename ExtractFn>
  bool RunReadyMigrations(timely::OpCtx<T>& ctx, ReadyFn ready,
                          ExtractFn extract) {
    bool any = false;
    while (!migrations_.empty()) {
      auto it = migrations_.begin();
      const T& t = it->first;
      if (!ready(t)) break;
      size_t before = outgoing_.size();
      for (auto& [bin, target] : it->second) {
        for (auto& frame : extract(t, bin, target)) {
          outgoing_.push_back(OutgoingChunk{t, std::move(frame), false});
        }
      }
      if (outgoing_.size() == before) {
        ctx.Release(t);  // every bin at t was non-resident: nothing moves
      } else {
        outgoing_.back().release_after = true;
      }
      migrations_.erase(it);
      any = true;
    }
    return any;
  }

  /// Emits queued chunk frames in FIFO order, at most ~`budget_bytes` of
  /// wire payload per call (0 = unbounded); at least one frame goes out
  /// whenever any is queued, so progress never stalls on a budget smaller
  /// than a frame. Called once per worker step, this is the flow control
  /// that interleaves state movement with data processing.
  template <typename SendFn>
  bool FlushChunks(timely::OpCtx<T>& ctx, uint64_t budget_bytes,
                   SendFn send) {
    bool any = false;
    uint64_t sent = 0;
    while (!outgoing_.empty()) {
      OutgoingChunk& oc = outgoing_.front();
      uint64_t size = oc.frame.WireSize();
      if (any && budget_bytes != 0 && sent + size > budget_bytes) break;
      T t = oc.t;
      bool release = oc.release_after;
      send(t, std::move(oc.frame));
      outgoing_.pop_front();
      sent += size;
      any = true;
      if (release) ctx.Release(t);
    }
    return any;
  }

  bool idle() const {
    return pending_.empty() && migrations_.empty() && outgoing_.empty();
  }
  size_t pending_updates() const { return pending_.size(); }
  size_t pending_migrations() const { return migrations_.size(); }
  size_t queued_chunks() const { return outgoing_.size(); }

 private:
  /// A chunk frame awaiting emission at time t; `release_after` marks the
  /// final frame of everything migrating at t.
  struct OutgoingChunk {
    T t;
    BinChunk frame;
    bool release_after;
  };

  RoutingTable<T> routing_;
  uint32_t me_;
  std::map<T, std::vector<ControlInst>> pending_;
  std::map<T, std::vector<std::pair<BinId, uint32_t>>> migrations_;
  std::deque<OutgoingChunk> outgoing_;
};

}  // namespace megaphone
