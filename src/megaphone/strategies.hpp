// Migration strategies: turning a reconfiguration into a sequence of
// timed control batches (paper §3.3).
//
// To migrate from configuration C1 to C2 a user reveals the diff as
// control records:
//   * all-at-once — every change at one common time (the partial
//     pause-and-resume of existing systems);
//   * fluid       — one bin at a time, awaiting completion in between;
//   * batched     — B bins at a time, awaiting completion in between;
//   * optimized   — batches grouped by bipartite matching so that no two
//     migrations in a batch share a source or destination worker
//     (paper §4.4), reducing steps without raising the maximum latency.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <set>
#include <vector>

#include "common/check.hpp"
#include "megaphone/control.hpp"

namespace megaphone {

enum class MigrationStrategy {
  kAllAtOnce,
  kFluid,
  kBatched,
  kOptimized,
};

inline const char* StrategyName(MigrationStrategy s) {
  switch (s) {
    case MigrationStrategy::kAllAtOnce: return "all-at-once";
    case MigrationStrategy::kFluid: return "fluid";
    case MigrationStrategy::kBatched: return "batched";
    case MigrationStrategy::kOptimized: return "optimized";
  }
  return "?";
}

/// A full assignment of bins to workers.
using Assignment = std::vector<uint32_t>;

/// The engine's initial assignment: bin i on worker i % W.
inline Assignment MakeInitialAssignment(uint32_t num_bins, uint32_t workers) {
  Assignment a(num_bins);
  for (uint32_t b = 0; b < num_bins; ++b) a[b] = InitialOwner(b, workers);
  return a;
}

/// The paper's evaluation reconfiguration (§5): half of the bins owned by
/// the first half of the workers move to the corresponding worker in the
/// second half (25% of total state), producing an imbalanced assignment.
inline Assignment MakeImbalancedAssignment(uint32_t num_bins,
                                           uint32_t workers) {
  Assignment a = MakeInitialAssignment(num_bins, workers);
  MEGA_CHECK_GE(workers, 2u);
  uint32_t half = workers / 2;
  // Move every other bin of each lower-half worker to its upper-half
  // counterpart (per-worker alternation, so every source worker loses
  // half of its bins).
  std::vector<uint32_t> seen(workers, 0);
  for (uint32_t b = 0; b < num_bins; ++b) {
    if (a[b] < half) {
      if (seen[a[b]]++ % 2 == 0) a[b] = a[b] + half;
    }
  }
  return a;
}

/// The control records revealing the change from `from` to `to`.
inline std::vector<ControlInst> DiffAssignments(const Assignment& from,
                                                const Assignment& to) {
  MEGA_CHECK_EQ(from.size(), to.size());
  std::vector<ControlInst> moves;
  for (uint32_t b = 0; b < from.size(); ++b) {
    if (from[b] != to[b]) moves.push_back(ControlInst{b, to[b]});
  }
  return moves;
}

/// Splits `moves` into the batch sequence a strategy issues. `from` is the
/// assignment before the migration (needed to know each move's source
/// worker for the optimized grouping); `batch_size` applies to kBatched.
inline std::deque<std::vector<ControlInst>> PlanBatches(
    MigrationStrategy strategy, const std::vector<ControlInst>& moves,
    const Assignment& from, size_t batch_size) {
  std::deque<std::vector<ControlInst>> batches;
  switch (strategy) {
    case MigrationStrategy::kAllAtOnce: {
      if (!moves.empty()) batches.emplace_back(moves);
      break;
    }
    case MigrationStrategy::kFluid: {
      for (const auto& m : moves) batches.push_back({m});
      break;
    }
    case MigrationStrategy::kBatched: {
      MEGA_CHECK_GT(batch_size, 0u);
      for (size_t i = 0; i < moves.size(); i += batch_size) {
        batches.emplace_back(
            moves.begin() + static_cast<long>(i),
            moves.begin() +
                static_cast<long>(std::min(i + batch_size, moves.size())));
      }
      break;
    }
    case MigrationStrategy::kOptimized: {
      // Greedy bipartite matching rounds: within a batch every worker
      // appears at most once as a source and at most once as a
      // destination, so batched migrations do not contend on any worker.
      std::vector<ControlInst> remaining = moves;
      Assignment current = from;
      while (!remaining.empty()) {
        std::vector<ControlInst> batch;
        std::set<uint32_t> used_src, used_dst;
        std::vector<ControlInst> deferred;
        for (const auto& m : remaining) {
          uint32_t src = current[m.bin];
          if (!used_src.count(src) && !used_dst.count(m.worker)) {
            used_src.insert(src);
            used_dst.insert(m.worker);
            batch.push_back(m);
          } else {
            deferred.push_back(m);
          }
        }
        for (const auto& m : batch) current[m.bin] = m.worker;
        batches.push_back(std::move(batch));
        remaining = std::move(deferred);
      }
      break;
    }
  }
  return batches;
}

}  // namespace megaphone
