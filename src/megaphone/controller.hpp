// The migration controller: an external driver of the control stream.
//
// Megaphone deliberately leaves *when* to migrate to an external
// controller (paper §4.4 — DS2, Dhalion, or Chi could supply the stream).
// This controller implements the paper's evaluation protocol: it issues a
// strategy's batches one at a time, awaiting completion of each batch
// (the S output frontier passing the batch's timestamp) before issuing the
// next, optionally inserting a drain gap between batches (§4.4).
//
// Every worker owns one controller instance and calls Advance() once per
// driver round; this keeps the control input's frontier ahead of the data
// frontier on every worker (a requirement for routing to proceed — see
// stateful.hpp). Only worker 0 actually emits the control records.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "megaphone/strategies.hpp"
#include "timely/input.hpp"
#include "timely/probe.hpp"

namespace megaphone {

/// Drives one control input for one worker. `T` must be an integral epoch
/// type (the evaluation uses nanoseconds or round counters).
template <typename T>
class MigrationController {
 public:
  struct Options {
    MigrationStrategy strategy = MigrationStrategy::kBatched;
    /// Bins per batch (kBatched only).
    size_t batch_size = 64;
    /// Epochs to wait after a batch completes before issuing the next one,
    /// letting the system drain enqueued records (paper §4.4). The gap is
    /// in timestamp units.
    T gap = 0;
  };

  MigrationController(timely::Input<ControlInst, T> control,
                      timely::ProbeHandle<T> probe, uint32_t worker,
                      Options options)
      : control_(std::move(control)), probe_(std::move(probe)),
        worker_(worker), options_(options) {}

  /// Schedules a migration described by its batch sequence. All workers
  /// must schedule identical migrations in the same order.
  void Migrate(std::deque<std::vector<ControlInst>> batches) {
    for (auto& b : batches) pending_batches_.push_back(std::move(b));
  }

  /// Convenience: plan and schedule the diff from `from` to `to` with the
  /// configured strategy.
  void MigrateTo(const Assignment& from, const Assignment& to) {
    Migrate(PlanBatches(options_.strategy, DiffAssignments(from, to), from,
                        options_.batch_size));
  }

  /// Called once per driver round, before data for epoch `now` is sent.
  /// Issues a due batch at `now` and advances the control epoch to `next`
  /// (which must satisfy now < next) so records at `now` can be routed.
  void Advance(const T& now, const T& next) {
    MEGA_CHECK_LT(now, next);
    control_->AdvanceTo(std::max(control_->epoch(), now));

    // Completion check for the in-flight batch: the S output frontier has
    // passed its timestamp.
    if (in_flight_ && !probe_.LessEqual(*in_flight_)) {
      in_flight_.reset();
      not_before_ = SaturatingAdd(now, options_.gap);
      completed_batches_++;
    }

    if (!in_flight_ && !pending_batches_.empty() && now >= not_before_) {
      if (worker_ == 0) {
        std::vector<ControlInst> batch = pending_batches_.front();
        control_->SendBatch(std::move(batch));
      }
      in_flight_ = now;
      pending_batches_.pop_front();
    }

    control_->AdvanceTo(next);
  }

  /// Flushes all queued batches and closes the control input; call when
  /// the driver is done. Remaining batches are issued immediately at the
  /// final epoch (they will complete as the dataflow drains).
  void Close(const T& now) {
    control_->AdvanceTo(std::max(control_->epoch(), now));
    if (worker_ == 0) {
      while (!pending_batches_.empty()) {
        std::vector<ControlInst> batch = pending_batches_.front();
        control_->SendBatch(std::move(batch));
        pending_batches_.pop_front();
      }
    } else {
      pending_batches_.clear();
    }
    control_->Close();
  }

  /// True while batches remain queued or in flight.
  bool Migrating() const { return in_flight_ || !pending_batches_.empty(); }
  size_t completed_batches() const { return completed_batches_; }
  size_t queued_batches() const { return pending_batches_.size(); }
  std::optional<T> in_flight_time() const { return in_flight_; }

 private:
  timely::Input<ControlInst, T> control_;
  timely::ProbeHandle<T> probe_;
  uint32_t worker_;
  Options options_;

  std::deque<std::vector<ControlInst>> pending_batches_;
  std::optional<T> in_flight_;
  T not_before_ = TimestampTraits_Minimum();
  size_t completed_batches_ = 0;

  static T TimestampTraits_Minimum() {
    return timely::TimestampTraits<T>::Minimum();
  }

  /// `now + gap` with saturation: a gap near the epoch type's max must pin
  /// `not_before_` at max ("never again"), not wrap around and issue the
  /// next batch immediately.
  static T SaturatingAdd(const T& now, const T& gap) {
    if (now > std::numeric_limits<T>::max() - gap) {
      return std::numeric_limits<T>::max();
    }
    return now + gap;
  }
};

}  // namespace megaphone
