// Umbrella header for the Megaphone library: latency-conscious state
// migration for distributed streaming dataflows (Hoffmann et al., VLDB'19),
// implemented as a library over the timely engine in src/timely/.
#pragma once

#include "megaphone/adaptive.hpp"    // IWYU pragma: export
#include "megaphone/bin.hpp"         // IWYU pragma: export
#include "megaphone/control.hpp"     // IWYU pragma: export
#include "megaphone/controller.hpp"  // IWYU pragma: export
#include "megaphone/stateful.hpp"    // IWYU pragma: export
#include "megaphone/strategies.hpp"  // IWYU pragma: export
#include "state/state.hpp"           // IWYU pragma: export
