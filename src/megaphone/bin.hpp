// Bins: the unit of state migration.
//
// Megaphone groups keys into a fixed power-of-two number of bins
// (paper §4.2); a bin holds the user state for its keys plus all pending
// post-dated records ("the list of pending (val, time) records produced by
// the operator for future times", §3.4), so that a migration moves both.
//
// The user state inside a bin sits on the migratable-state layer
// (src/state/): a backend exposing whole-value serde *and* a chunk
// interface, so a bin can leave its worker either as one monolithic frame
// or as a sequence of size-bounded chunk frames (BinChunk) absorbed
// incrementally at the destination. Bin and BinaryBin share one
// serde/chunk implementation (detail::SerializeParts and friends) that is
// variadic over the pending maps.
//
// The F and S operator instances on the same worker share the bin
// container through a shared pointer — they run on the same thread, so no
// synchronization is needed, exactly as the paper describes.
#pragma once

#include <array>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/serde.hpp"
#include "megaphone/control.hpp"
#include "state/state.hpp"

namespace megaphone {

namespace detail {

/// Section tags inside a BinChunk payload.
constexpr uint8_t kSecWhole = 0;     // monolithic whole-bin encoding
constexpr uint8_t kSecState = 1;     // one backend state chunk
constexpr uint8_t kSecPending0 = 2;  // pending map i at tag kSecPending0+i

/// Whole-value serde shared by Bin and BinaryBin: the state backend
/// followed by each pending map, in declaration order.
template <typename Backend, typename... Pending>
void SerializeParts(Writer& w, const Backend& backend,
                    const Pending&... pending) {
  Encode(w, backend);
  (Encode(w, pending), ...);
}

template <typename Backend, typename... Pending>
void DeserializeParts(Reader& r, Backend& backend, Pending&... pending) {
  backend = Decode<Backend>(r);
  ((pending = Decode<Pending>(r)), ...);
}

/// Chunked extraction shared by Bin and BinaryBin: state sections from the
/// backend's enumerator, then each pending map's encoding sliced into
/// bounded sections. `max_bytes == 0` produces the monolithic form — one
/// frame holding a single whole-bin section.
template <typename Backend, typename... Pending>
void DrainPartsChunks(size_t max_bytes,
                      std::vector<std::vector<uint8_t>>& out,
                      const Backend& backend, const Pending&... pending) {
  state::ChunkBuilder cb(max_bytes, &out);
  if (max_bytes == 0) {
    Writer w;
    SerializeParts(w, backend, pending...);
    cb.AddSectionSliced(kSecWhole, w.Take());
  } else {
    backend.EnumerateChunks(max_bytes, [&](std::vector<uint8_t>&& sec) {
      cb.AddSection(kSecState, sec);
    });
    uint8_t tag = kSecPending0;
    auto add_pending = [&](const auto& p) {
      if (!p.empty()) cb.AddSectionSliced(tag, EncodeToBytes(p));
      ++tag;
    };
    (add_pending(pending), ...);
  }
  cb.Finish();
}

/// Incremental absorption shared by Bin and BinaryBin. Pending-map
/// sections accumulate into `bufs` (one buffer per map) until the last
/// frame, whose arrival finalizes the backend and decodes the maps.
template <size_t N, typename Backend, typename... Pending>
void AbsorbPartsChunk(Reader& r, bool last,
                      std::array<std::vector<uint8_t>, N>& bufs,
                      Backend& backend, Pending&... pending) {
  static_assert(sizeof...(Pending) == N);
  state::ForEachSection(r, [&](uint8_t tag, Reader& sec) {
    if (tag == kSecWhole) {
      DeserializeParts(sec, backend, pending...);
    } else if (tag == kSecState) {
      backend.AbsorbChunk(sec);
      // Malformed wire input surfaces as SerdeError, never UB or abort.
      if (!sec.AtEnd()) {
        throw SerdeError("bin chunk: state section not fully absorbed");
      }
    } else {
      size_t i = tag - kSecPending0;
      if (i >= N) throw SerdeError("bin chunk: unknown section tag");
      size_t n = sec.remaining();
      size_t old = bufs[i].size();
      bufs[i].resize(old + n);
      sec.ReadBytes(bufs[i].data() + old, n);
    }
  });
  if (last) {
    backend.FinishAbsorb();
    size_t i = 0;
    auto finish_pending = [&](auto& p) {
      if (!bufs[i].empty()) {
        p = DecodeFromBytes<std::remove_reference_t<decltype(p)>>(bufs[i]);
        bufs[i].clear();
        bufs[i].shrink_to_fit();
      }
      ++i;
    };
    (finish_pending(pending), ...);
  }
}

}  // namespace detail

/// State and pending records of one bin for a unary operator.
template <typename S, typename D, typename T>
struct Bin {
  using Backend = state::BackendFor<S>;

  Backend state{};
  std::map<T, std::vector<D>> pending;  // post-dated records by time

  /// The state reference the operator logic sees: the declared type S.
  S& user_state() { return state::BackendSel<S>::user(state); }

  template <typename Fn>
  void ForEachPendingTime(Fn fn) const {
    for (const auto& [t, _] : pending) fn(t);
  }

  /// Cheap size estimate for load statistics: state entries (when the
  /// backend exposes a count) plus pending records, scaled by the record
  /// size. Relative weight only — the adaptive controller compares bins
  /// against each other, it never bills exact bytes.
  uint64_t ApproxBytes() const {
    uint64_t n = 0;
    if constexpr (requires { state.size(); }) n = state.size();
    for (const auto& [t, v] : pending) n += v.size();
    return n * sizeof(D);
  }

  void Serialize(Writer& w) const {
    detail::SerializeParts(w, state, pending);
  }
  static Bin Deserialize(Reader& r) {
    Bin b;
    detail::DeserializeParts(r, b.state, b.pending);
    return b;
  }

  void DrainChunks(size_t max_bytes,
                   std::vector<std::vector<uint8_t>>& out) const {
    detail::DrainPartsChunks(max_bytes, out, state, pending);
  }
  void AbsorbChunk(Reader& r, bool last) {
    detail::AbsorbPartsChunk(r, last, absorb_bufs_, state, pending);
  }

 private:
  std::array<std::vector<uint8_t>, 1> absorb_bufs_;
};

/// State and pending records of one bin for a binary operator.
template <typename S, typename D1, typename D2, typename T>
struct BinaryBin {
  using Backend = state::BackendFor<S>;

  Backend state{};
  std::map<T, std::vector<D1>> pending1;
  std::map<T, std::vector<D2>> pending2;

  S& user_state() { return state::BackendSel<S>::user(state); }

  template <typename Fn>
  void ForEachPendingTime(Fn fn) const {
    for (const auto& [t, _] : pending1) fn(t);
    for (const auto& [t, _] : pending2) fn(t);
  }

  /// See Bin::ApproxBytes.
  uint64_t ApproxBytes() const {
    uint64_t n = 0;
    if constexpr (requires { state.size(); }) n = state.size();
    for (const auto& [t, v] : pending1) n += v.size();
    for (const auto& [t, v] : pending2) n += v.size();
    return n * ((sizeof(D1) + sizeof(D2)) / 2);
  }

  void Serialize(Writer& w) const {
    detail::SerializeParts(w, state, pending1, pending2);
  }
  static BinaryBin Deserialize(Reader& r) {
    BinaryBin b;
    detail::DeserializeParts(r, b.state, b.pending1, b.pending2);
    return b;
  }

  void DrainChunks(size_t max_bytes,
                   std::vector<std::vector<uint8_t>>& out) const {
    detail::DrainPartsChunks(max_bytes, out, state, pending1, pending2);
  }
  void AbsorbChunk(Reader& r, bool last) {
    detail::AbsorbPartsChunk(r, last, absorb_bufs_, state, pending1,
                             pending2);
  }

 private:
  std::array<std::vector<uint8_t>, 2> absorb_bufs_;
};

/// The per-worker bin container shared between co-located F and S
/// instances. `bins[b] == nullptr` means bin b is not (or not yet)
/// resident on this worker; S creates bins lazily on first use.
///
/// `pending_bins` indexes, per time, the resident bins holding pending
/// records at that time — the "extended notificator" of §4.3, kept as an
/// ordered map so S can replay pending times in order and F can unregister
/// the times of a bin it extracts for migration.
template <typename BinT, typename T>
struct BinsShared {
  explicit BinsShared(uint32_t n) : bins(n) {}

  std::vector<std::unique_ptr<BinT>> bins;
  std::map<T, std::set<BinId>> pending_bins;
  /// Checkpoint-restore staging: (bin, whole-value bytes) deposited by
  /// StatefulOutput::restore_bins before stepping begins; S installs
  /// them (deserializing and re-registering pending times under its
  /// capability hold) at its first schedule, then clears this.
  std::vector<std::pair<BinId, std::vector<uint8_t>>> restore_staging;

  /// Registers that `bin` has pending records at time `t`. Returns true if
  /// `t` is newly pending for this worker (caller retains a capability).
  bool RegisterPending(const T& t, BinId bin) {
    auto [it, inserted] = pending_bins.emplace(t, std::set<BinId>{});
    it->second.insert(bin);
    return inserted;
  }

  /// Number of resident bins (for tests and load introspection).
  size_t ResidentBins() const {
    size_t n = 0;
    for (const auto& b : bins) {
      if (b) n++;
    }
    return n;
  }
};

/// Per-time stash of incoming records grouped by destination bin: a flat
/// vector indexed by BinId — the per-time bin queues of §4.3 without any
/// per-(time, bin) hashing. The record path is a single indexed push;
/// occupancy is recovered by scanning the (small, cache-resident) bin
/// index at apply time. Slots keep their capacity when cleared, and whole
/// stashes are recycled through BinStashPool, so the steady state
/// allocates nothing per (time, bin).
template <typename D>
struct BinStash {
  std::vector<std::vector<D>> by_bin;

  void EnsureBins(uint32_t n) {
    if (by_bin.size() < n) by_bin.resize(n);
  }

  bool Has(BinId b) const { return !by_bin[b].empty(); }

  /// Record vector of `b`.
  std::vector<D>& SlotRef(BinId b) { return by_bin[b]; }

  /// Appends every nonempty bin id to `out`, in increasing order.
  void AppendOccupied(std::vector<BinId>& out) const {
    for (BinId b = 0; b < by_bin.size(); ++b) {
      if (!by_bin[b].empty()) out.push_back(b);
    }
  }

  /// Clears every slot (keeping capacity).
  void Reset() {
    for (auto& v : by_bin) {
      if (!v.empty()) v.clear();
    }
  }
};

/// Free list of BinStash instances. Single-threaded: each S operator owns
/// one pool, and F/S co-located on a worker run on that worker's thread.
template <typename D>
class BinStashPool {
 public:
  BinStash<D> Acquire(uint32_t num_bins) {
    if (free_.empty()) {
      BinStash<D> s;
      s.EnsureBins(num_bins);
      return s;
    }
    BinStash<D> s = std::move(free_.back());
    free_.pop_back();
    s.EnsureBins(num_bins);
    return s;
  }

  void Recycle(BinStash<D>&& s) {
    s.Reset();
    free_.push_back(std::move(s));
  }

  size_t size() const { return free_.size(); }

 private:
  std::vector<BinStash<D>> free_;
};

namespace detail {

/// Extracts `bin` from the shared container for migration: unregisters its
/// pending times, drains it into chunk frames for `target` (monolithic
/// when `chunk_bytes == 0`), and clears the slot. Returns an empty vector
/// for non-resident bins — there is nothing to move; the target creates
/// the bin lazily. A resident bin always yields at least one frame (the
/// final one), so residency itself transfers even when the bin is empty.
template <typename BinT, typename T>
std::vector<BinChunk> ExtractBinChunks(BinsShared<BinT, T>& shared,
                                       BinId bin, uint32_t target,
                                       uint64_t chunk_bytes) {
  auto& slot = shared.bins[bin];
  if (!slot) return {};
  slot->ForEachPendingTime([&](const T& t) {
    auto it = shared.pending_bins.find(t);
    if (it != shared.pending_bins.end()) it->second.erase(bin);
    // Empty sets are left for S to erase and release its capability.
  });
  std::vector<std::vector<uint8_t>> payloads;
  slot->DrainChunks(static_cast<size_t>(chunk_bytes), payloads);
  slot.reset();
  if (payloads.empty()) payloads.emplace_back();  // residency-only bin
  std::vector<BinChunk> frames;
  frames.reserve(payloads.size());
  for (uint32_t i = 0; i < payloads.size(); ++i) {
    BinChunk c;
    c.target = target;
    c.bin = bin;
    c.seq = i;
    c.last = (i + 1 == payloads.size()) ? 1 : 0;
    c.bytes = std::move(payloads[i]);
    frames.push_back(std::move(c));
  }
  return frames;
}

}  // namespace detail

}  // namespace megaphone
