// Bins: the unit of state migration.
//
// Megaphone groups keys into a fixed power-of-two number of bins
// (paper §4.2); a bin holds the user state for its keys plus all pending
// post-dated records ("the list of pending (val, time) records produced by
// the operator for future times", §3.4), so that a migration moves both.
//
// The F and S operator instances on the same worker share the bin
// container through a shared pointer — they run on the same thread, so no
// synchronization is needed, exactly as the paper describes.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/check.hpp"
#include "common/serde.hpp"
#include "megaphone/control.hpp"

namespace megaphone {

/// State and pending records of one bin for a unary operator.
template <typename S, typename D, typename T>
struct Bin {
  S state{};
  std::map<T, std::vector<D>> pending;  // post-dated records by time

  void Serialize(Writer& w) const {
    Encode(w, state);
    Encode(w, pending);
  }
  static Bin Deserialize(Reader& r) {
    Bin b;
    b.state = Decode<S>(r);
    b.pending = Decode<std::map<T, std::vector<D>>>(r);
    return b;
  }
};

/// State and pending records of one bin for a binary operator.
template <typename S, typename D1, typename D2, typename T>
struct BinaryBin {
  S state{};
  std::map<T, std::vector<D1>> pending1;
  std::map<T, std::vector<D2>> pending2;

  void Serialize(Writer& w) const {
    Encode(w, state);
    Encode(w, pending1);
    Encode(w, pending2);
  }
  static BinaryBin Deserialize(Reader& r) {
    BinaryBin b;
    b.state = Decode<S>(r);
    b.pending1 = Decode<std::map<T, std::vector<D1>>>(r);
    b.pending2 = Decode<std::map<T, std::vector<D2>>>(r);
    return b;
  }
};

/// The per-worker bin container shared between co-located F and S
/// instances. `bins[b] == nullptr` means bin b is not (or not yet)
/// resident on this worker; S creates bins lazily on first use.
///
/// `pending_bins` indexes, per time, the resident bins holding pending
/// records at that time — the "extended notificator" of §4.3, kept as an
/// ordered map so S can replay pending times in order and F can unregister
/// the times of a bin it extracts for migration.
template <typename BinT, typename T>
struct BinsShared {
  explicit BinsShared(uint32_t n) : bins(n) {}

  std::vector<std::unique_ptr<BinT>> bins;
  std::map<T, std::set<BinId>> pending_bins;

  /// Registers that `bin` has pending records at time `t`. Returns true if
  /// `t` is newly pending for this worker (caller retains a capability).
  bool RegisterPending(const T& t, BinId bin) {
    auto [it, inserted] = pending_bins.emplace(t, std::set<BinId>{});
    it->second.insert(bin);
    return inserted;
  }

  /// Number of resident bins (for tests and load introspection).
  size_t ResidentBins() const {
    size_t n = 0;
    for (const auto& b : bins) {
      if (b) n++;
    }
    return n;
  }
};

/// Per-time stash of incoming records grouped by destination bin: a flat
/// vector indexed by BinId — the per-time bin queues of §4.3 without any
/// per-(time, bin) hashing. The record path is a single indexed push;
/// occupancy is recovered by scanning the (small, cache-resident) bin
/// index at apply time. Slots keep their capacity when cleared, and whole
/// stashes are recycled through BinStashPool, so the steady state
/// allocates nothing per (time, bin).
template <typename D>
struct BinStash {
  std::vector<std::vector<D>> by_bin;

  void EnsureBins(uint32_t n) {
    if (by_bin.size() < n) by_bin.resize(n);
  }

  bool Has(BinId b) const { return !by_bin[b].empty(); }

  /// Record vector of `b`.
  std::vector<D>& SlotRef(BinId b) { return by_bin[b]; }

  /// Appends every nonempty bin id to `out`, in increasing order.
  void AppendOccupied(std::vector<BinId>& out) const {
    for (BinId b = 0; b < by_bin.size(); ++b) {
      if (!by_bin[b].empty()) out.push_back(b);
    }
  }

  /// Clears every slot (keeping capacity).
  void Reset() {
    for (auto& v : by_bin) {
      if (!v.empty()) v.clear();
    }
  }
};

/// Free list of BinStash instances. Single-threaded: each S operator owns
/// one pool, and F/S co-located on a worker run on that worker's thread.
template <typename D>
class BinStashPool {
 public:
  BinStash<D> Acquire(uint32_t num_bins) {
    if (free_.empty()) {
      BinStash<D> s;
      s.EnsureBins(num_bins);
      return s;
    }
    BinStash<D> s = std::move(free_.back());
    free_.pop_back();
    s.EnsureBins(num_bins);
    return s;
  }

  void Recycle(BinStash<D>&& s) {
    s.Reset();
    free_.push_back(std::move(s));
  }

  size_t size() const { return free_.size(); }

 private:
  std::vector<BinStash<D>> free_;
};

/// A migrating bin in flight on the state channel: the serialized payload
/// plus its destination. Serialization is deliberate — its cost is
/// proportional to the state size, which is what makes migration duration
/// and memory behave as in the paper's evaluation.
///
/// Member serde lets the state channel itself cross process boundaries:
/// a migration to a worker in another process ships these bytes over the
/// mesh, so state genuinely moves over the wire.
struct BinMigration {
  uint32_t target = 0;
  BinId bin = 0;
  std::vector<uint8_t> bytes;

  size_t WireSize() const { return bytes.size() + sizeof(uint32_t) * 2; }

  void Serialize(Writer& w) const {
    Encode(w, target);
    Encode(w, bin);
    Encode(w, bytes);
  }
  static BinMigration Deserialize(Reader& r) {
    BinMigration m;
    m.target = Decode<uint32_t>(r);
    m.bin = Decode<BinId>(r);
    m.bytes = Decode<std::vector<uint8_t>>(r);
    return m;
  }
};

}  // namespace megaphone
