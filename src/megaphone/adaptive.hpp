// The closed-loop adaptive migration controller.
//
// Megaphone externalizes *when* to migrate (paper §4.4: "DS2, Dhalion, or
// Chi could supply the control stream"); until now this repository only
// migrated on fixed benchmark schedules. This header closes the loop:
//
//   * every worker's S instance counts records applied per bin and knows
//     which bins it hosts (StatefulOutput::take_bin_stats, stateful.hpp);
//   * each worker periodically ships those counters to global worker 0 as
//     a BinStatsReport over a stats side channel (AddStatsChannel — the
//     same Exchange-to-worker-0 pattern as the bench-shard channel, plus a
//     dummy probed output so a lockstep driver can await consumption);
//   * worker 0 runs a DS2/Dhalion-style policy (AdaptivePolicy): per-bin
//     EWMA load, skew detection against an imbalance threshold, greedy
//     rebalance to a new bin→worker Assignment, hysteresis and a cooldown
//     so plans don't thrash;
//   * accepted plans drive the existing MigrationController::MigrateTo
//     with fluid batches (AdaptiveController).
//
// Only worker 0 runs the policy — emitted control records depend on no
// other worker's controller state, so a run replaying the emitted plans as
// a fixed schedule produces byte-identical output (adaptive_test proves
// it, at one and two processes).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/serde.hpp"
#include "megaphone/controller.hpp"
#include "megaphone/stateful.hpp"
#include "megaphone/strategies.hpp"
#include "timely/timely.hpp"

namespace megaphone {

/// One worker's per-bin statistics for one reporting interval, shipped to
/// worker 0 over the stats channel. Aggregation across workers is purely
/// additive (records sum; only the hosting worker reports a bin's bytes
/// and residency), so arrival order cannot affect the policy.
struct BinStatsReport {
  uint32_t worker = 0;
  uint64_t epoch = 0;
  std::vector<uint64_t> records;      // records applied per bin
  std::vector<uint64_t> state_bytes;  // approx bytes per resident bin
  std::vector<uint8_t> resident;      // 1 if the bin is hosted there

  void Serialize(Writer& w) const {
    Encode(w, worker);
    Encode(w, epoch);
    Encode(w, records);
    Encode(w, state_bytes);
    Encode(w, resident);
  }
  static BinStatsReport Deserialize(Reader& r) {
    BinStatsReport rep;
    rep.worker = Decode<uint32_t>(r);
    rep.epoch = Decode<uint64_t>(r);
    rep.records = Decode<std::vector<uint64_t>>(r);
    rep.state_bytes = Decode<std::vector<uint64_t>>(r);
    rep.resident = Decode<std::vector<uint8_t>>(r);
    return rep;
  }

  /// Builds a report from a worker's BinStats snapshot.
  static BinStatsReport From(uint32_t worker, uint64_t epoch, BinStats&& s) {
    BinStatsReport rep;
    rep.worker = worker;
    rep.epoch = epoch;
    rep.records = std::move(s.records);
    rep.state_bytes = std::move(s.state_bytes);
    rep.resident = std::move(s.resident);
    return rep;
  }
};

/// The stats side channel: every worker holds the input (and must advance
/// and close it); reports Exchange to global worker 0, where the collector
/// appends them to `reports`. The dummy probed output exposes the
/// collector's consumption frontier, so a lockstep driver can guarantee
/// worker 0 has seen every worker's epoch-e report before deciding at e+1.
template <typename T>
struct StatsChannel {
  timely::Input<std::vector<uint8_t>, T> in;
  std::shared_ptr<std::vector<BinStatsReport>> reports;  // worker 0 only
  timely::ProbeHandle<T> probe;

  /// Encodes and ships one report at the input's current epoch.
  void Send(const BinStatsReport& rep) { in->Send(EncodeToBytes(rep)); }
};

/// Adds the stats side channel to a dataflow under construction.
template <typename T>
StatsChannel<T> AddStatsChannel(timely::Scope<T>& s) {
  auto [in, stream] = timely::NewInput<std::vector<uint8_t>>(s);
  auto reports = std::make_shared<std::vector<BinStatsReport>>();
  timely::OperatorBuilder<T> b(s, "BinStatsCollect");
  auto* cin = b.AddInput(
      stream, timely::Pact<std::vector<uint8_t>>::Exchange(
                  [](const std::vector<uint8_t>&) { return uint64_t{0}; }));
  auto [out, out_stream] = b.template AddOutput<uint8_t>();
  (void)out;  // never written: exists only so the probe below is possible
  b.Build([cin, reports](timely::OpCtx<T>&) {
    cin->ForEach([&](const T&, std::vector<std::vector<uint8_t>>& recs) {
      for (auto& bytes : recs) {
        reports->push_back(DecodeFromBytes<BinStatsReport>(bytes));
      }
    });
  });
  return StatsChannel<T>{std::move(in), std::move(reports),
                         timely::Probe(out_stream)};
}

/// Policy thresholds. Defaults suit epoch-granularity decisions; the
/// open-loop bench stretches them over its stats cadence.
struct AdaptiveOptions {
  /// Decide only at epochs divisible by this (1 = every epoch).
  uint64_t decision_every = 1;
  /// EWMA weight of the newest window (1 = no smoothing).
  double ewma_alpha = 0.5;
  /// A plan is considered once max worker load > threshold * average.
  double imbalance_threshold = 1.25;
  /// A plan is accepted only if it shrinks the max worker load by at
  /// least this fraction — rejecting churn that would barely help.
  double hysteresis = 0.05;
  /// Decision epochs to wait after an accepted plan before the next one,
  /// letting the migration finish and the EWMA re-converge.
  uint64_t cooldown_epochs = 4;
  /// Cost charged against a bin's load for every reported state byte when
  /// picking which bin to move ("To Migrate or not to Migrate": migration
  /// cost scales with state volume). A bin is only a candidate while
  /// load - move_cost_per_byte * state_bytes > 0, so huge cold bins stop
  /// being proposed even when they would balance the load. 0 (default)
  /// keeps the pure load-greedy behavior.
  double move_cost_per_byte = 0.0;
};

/// The skew-detection / rebalance policy. Deterministic: ties in worker
/// and bin selection break toward the lowest index, and ingestion is
/// additive, so any report arrival order yields the same plans.
class AdaptivePolicy {
 public:
  AdaptivePolicy(uint32_t num_bins, uint32_t workers,
                 AdaptiveOptions opts = {})
      : opts_(opts), workers_(workers), load_(num_bins, 0.0),
        window_(num_bins, 0), bytes_(num_bins, 0) {}

  /// Folds one worker's report into the current observation window.
  void Ingest(const BinStatsReport& rep) {
    size_t n = std::min(window_.size(), rep.records.size());
    for (size_t b = 0; b < n; ++b) window_[b] += rep.records[b];
    size_t m = std::min(bytes_.size(), rep.state_bytes.size());
    for (size_t b = 0; b < m; ++b) {
      if (b < rep.resident.size() && rep.resident[b]) {
        bytes_[b] = rep.state_bytes[b];
      }
    }
  }

  /// Closes the window at `epoch` (folding it into the EWMA) and returns
  /// a rebalanced assignment if the load is skewed enough to justify one.
  std::optional<Assignment> Decide(uint64_t epoch,
                                   const Assignment& current) {
    if (opts_.decision_every > 1 && epoch % opts_.decision_every != 0) {
      return std::nullopt;
    }
    double total = 0;
    for (size_t b = 0; b < load_.size(); ++b) {
      load_[b] = opts_.ewma_alpha * static_cast<double>(window_[b]) +
                 (1.0 - opts_.ewma_alpha) * load_[b];
      window_[b] = 0;
      total += load_[b];
    }
    if (total <= 0 || workers_ < 2) return std::nullopt;
    if (planned_ &&
        epoch < last_plan_epoch_ +
                    opts_.cooldown_epochs * opts_.decision_every) {
      return std::nullopt;
    }

    std::vector<double> wl(workers_, 0.0);
    for (size_t b = 0; b < current.size(); ++b) wl[current[b]] += load_[b];
    double old_max = *std::max_element(wl.begin(), wl.end());
    double avg = total / static_cast<double>(workers_);
    if (old_max <= opts_.imbalance_threshold * avg) return std::nullopt;

    // Greedy rebalance: repeatedly move the hottest bin of the most
    // loaded worker to the least loaded one, while the move strictly
    // shrinks that pair's spread. argmax/argmin and the bin scan all
    // break ties toward the lowest index — determinism over elegance.
    Assignment plan = current;
    for (size_t iter = 0; iter < load_.size(); ++iter) {
      uint32_t src = static_cast<uint32_t>(
          std::max_element(wl.begin(), wl.end()) - wl.begin());
      uint32_t dst = static_cast<uint32_t>(
          std::min_element(wl.begin(), wl.end()) - wl.begin());
      if (src == dst) break;
      double spread = wl[src] - wl[dst];
      int64_t best = -1;
      double best_load = 0;
      double best_score = 0;
      for (size_t b = 0; b < plan.size(); ++b) {
        if (plan[b] != src) continue;
        double l = load_[b];
        if (l >= spread) continue;
        // Net benefit of moving the bin: its load minus the byte-weighted
        // migration cost. With move_cost_per_byte == 0 the score is the
        // load itself, reproducing the original selection exactly.
        double score =
            l - opts_.move_cost_per_byte * static_cast<double>(bytes_[b]);
        if (score > best_score && score > 0) {
          best = static_cast<int64_t>(b);
          best_load = l;
          best_score = score;
        }
      }
      if (best < 0) break;
      plan[static_cast<size_t>(best)] = dst;
      wl[src] -= best_load;
      wl[dst] += best_load;
    }
    if (plan == current) return std::nullopt;
    double new_max = *std::max_element(wl.begin(), wl.end());
    if (new_max > (1.0 - opts_.hysteresis) * old_max) return std::nullopt;

    planned_ = true;
    last_plan_epoch_ = epoch;
    return plan;
  }

  const std::vector<double>& loads() const { return load_; }
  const std::vector<uint64_t>& state_bytes() const { return bytes_; }

 private:
  AdaptiveOptions opts_;
  uint32_t workers_;
  std::vector<double> load_;      // per-bin EWMA
  std::vector<uint64_t> window_;  // per-bin records since last Decide
  std::vector<uint64_t> bytes_;   // last reported bytes per bin
  bool planned_ = false;
  uint64_t last_plan_epoch_ = 0;
};

/// Worker 0's closed loop: owns the authoritative assignment, runs the
/// policy over ingested reports, and drives the migration controller with
/// the plans it accepts. Records every emitted plan so a verification run
/// can replay them as a fixed schedule.
template <typename T>
class AdaptiveController {
 public:
  AdaptiveController(MigrationController<T>* ctrl, uint32_t workers,
                     Assignment initial, AdaptiveOptions opts = {})
      : ctrl_(ctrl), current_(std::move(initial)),
        policy_(static_cast<uint32_t>(current_.size()), workers, opts) {}

  void Ingest(const BinStatsReport& rep) { policy_.Ingest(rep); }

  /// Decides at `epoch`; on an accepted plan schedules the migration and
  /// returns true. Call before MigrationController::Advance for the epoch.
  bool Step(uint64_t epoch) {
    auto plan = policy_.Decide(epoch, current_);
    if (!plan) return false;
    ctrl_->MigrateTo(current_, *plan);
    plans_.emplace_back(epoch, *plan);
    current_ = std::move(*plan);
    return true;
  }

  const Assignment& current() const { return current_; }
  const std::vector<std::pair<uint64_t, Assignment>>& plans() const {
    return plans_;
  }
  AdaptivePolicy& policy() { return policy_; }

 private:
  MigrationController<T>* ctrl_;
  Assignment current_;
  AdaptivePolicy policy_;
  std::vector<std::pair<uint64_t, Assignment>> plans_;
};

}  // namespace megaphone
