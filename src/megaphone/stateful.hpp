// Megaphone's migratable stateful operators (paper §3.4, §4).
//
// Each stateful operator L is realized as a pair of dataflow operators:
//
//   * F takes the data stream plus the control stream of configuration
//     updates. It routes records to the worker owning their bin *at the
//     record's timestamp*, buffering records whose time is still in
//     advance of the control frontier (the configuration there could still
//     change). F also initiates migrations: a configuration update at time
//     t is executed once the S output frontier reaches t — at that point
//     every record before t has been applied — by uninstalling the bin
//     from the co-located S and shipping it at time t on the state
//     channel. With Config::chunk_bytes set, the bin leaves as a sequence
//     of size-bounded BinChunk frames metered out across worker steps
//     under Config::chunk_bytes_per_step (flow control), interleaved with
//     data processing; F keeps its capability at t until the last frame
//     has gone out, so the frontier argument is unchanged.
//
//   * S hosts the bins. It installs received state immediately — chunked
//     state incrementally, frame by frame, through the migratable-state
//     layer (src/state/) — stashes incoming records per (time, bin), and
//     applies them in timestamp order once the time is in advance of
//     neither the data-input nor the state-input frontier. Post-dated
//     records scheduled by the user logic live inside the bin and migrate
//     with it.
//
// Capability discipline: F retains a capability at every buffered control
// or data time (so S frontiers cannot outrun a planned migration), and S
// retains one per distinct pending time (so its own output frontier cannot
// outrun unapplied records). Migration correctness then follows from the
// frontier conditions alone — there are no locks and no pauses, which is
// the paper's central claim.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/serde.hpp"
#include "megaphone/bin.hpp"
#include "megaphone/control.hpp"
#include "timely/operator.hpp"
#include "timely/probe.hpp"
#include "timely/stream.hpp"

namespace megaphone {

#ifdef MEGA_PROF_HOT
struct HotProf {
  std::atomic<uint64_t> f_route{0}, s_ingest{0}, s_apply{0};
};
inline HotProf& hot_prof() {
  static HotProf p;
  return p;
}
#define MEGA_PROF_BEGIN(v) uint64_t prof_##v = NowNanos()
#define MEGA_PROF_END(v) hot_prof().v += NowNanos() - prof_##v
#else
#define MEGA_PROF_BEGIN(v)
#define MEGA_PROF_END(v)
#endif

/// Configuration of a Megaphone stateful operator.
struct Config {
  /// Number of bins; must be a power of two, fixed at construction
  /// (paper §4.2). 2^12 is the paper's sweet spot.
  uint32_t num_bins = 256;
  /// Byte throttle on the state channel, modelling network bandwidth
  /// (0 = unthrottled). See DESIGN.md substitutions.
  uint64_t state_bytes_per_sec = 0;
  /// Maximum payload bytes per state chunk frame. 0 = monolithic: each
  /// migrating bin ships as one frame, the pre-chunking behavior. With a
  /// bound, F ships every bin as a sequence of ~chunk_bytes frames and S
  /// installs them incrementally (src/state/), so the per-frame stall on
  /// worker and wire is bounded by the chunk size, not the bin size.
  uint64_t chunk_bytes = 0;
  /// Per-worker-step budget on chunk payload bytes leaving F — the flow
  /// control that interleaves state movement with data processing. 0 =
  /// default 4 * chunk_bytes (unbounded when chunking is off).
  uint64_t chunk_bytes_per_step = 0;
  /// Operator name (diagnostics).
  std::string name = "Stateful";
  /// Checkpoint restore: per-bin initial owner overriding the default
  /// `bin % workers` assignment. Must be empty or exactly `num_bins`
  /// entries, and may only be set on a routing table that has seen no
  /// updates yet — restored runs resume with the checkpointed assignment
  /// and must not migrate at the minimum timestamp.
  std::vector<uint32_t> initial_owner;
  /// Spill-to-disk knobs for operators whose declared state is a
  /// LogState (state/log_state.hpp). Bin backends are default-constructed
  /// deep inside the dataflow, so ApplySpillConfig() publishes these into
  /// the process-global LogStateOptions — call it (or let the harness
  /// entry points call it) on the driving thread before workers start.
  /// `state_dir` is the segment-file root (empty = LogState's default);
  /// `spill_memtable_bytes`/`spill_segment_bytes` override the memtable
  /// flush threshold and segment cap when nonzero.
  std::string state_dir;
  uint64_t spill_memtable_bytes = 0;
  uint64_t spill_segment_bytes = 0;

  /// Publishes the spill knobs above into GlobalLogStateOptions().
  void ApplySpillConfig() const {
    state::LogStateOptions& o = state::GlobalLogStateOptions();
    if (!state_dir.empty()) o.dir = state_dir;
    if (spill_memtable_bytes != 0) o.memtable_bytes = spill_memtable_bytes;
    if (spill_segment_bytes != 0) o.segment_bytes = spill_segment_bytes;
  }

  uint64_t ChunkStepBudget() const {
    if (chunk_bytes_per_step != 0) return chunk_bytes_per_step;
    return chunk_bytes == 0 ? 0 : 4 * chunk_bytes;
  }
};

/// Process-wide counters of state-chunk frames emitted by every F
/// instance; the bench harness snapshots them around migration windows to
/// report per-migration chunk traffic.
struct ChunkCounters {
  std::atomic<uint64_t> frames{0};
  std::atomic<uint64_t> bytes{0};
};
inline ChunkCounters& chunk_counters() {
  static ChunkCounters c;
  return c;
}

/// A record in flight from F to S, tagged with its destination worker and
/// bin. Carrying the bin id saves S from recomputing the key function on
/// every record. Member serde (usable whenever D itself is serializable)
/// lets the F→S channel span processes, so routed records reach bins
/// hosted by workers of other processes.
template <typename D>
struct Routed {
  uint32_t target = 0;
  BinId bin = 0;
  D payload{};

  // Gated so a non-serializable D keeps Routed<D> out of Serde entirely:
  // single-process dataflows over such types still compile, and only a
  // remote push trips the runtime "cannot cross process boundaries" check.
  void Serialize(Writer& w) const
    requires Serializable<D>
  {
    Encode(w, target);
    Encode(w, bin);
    Encode(w, payload);
  }
  static Routed Deserialize(Reader& r)
    requires Serializable<D>
  {
    Routed out;
    out.target = Decode<uint32_t>(r);
    out.bin = Decode<BinId>(r);
    out.payload = Decode<D>(r);
    return out;
  }
};

/// Same-thread F→S handoff for self-routed records. Co-located F and S
/// run on one worker thread (paper §3.4: they share the bin container
/// without synchronization), so bundles routed to the own worker skip the
/// channel, and their produced/consumed progress deltas — which would net
/// to zero inside the worker step's consolidated batch — are never staged
/// at all. S notes the input time instead, which grants the same
/// capability basis as a channel delivery.
template <typename D, typename T>
struct SelfInbox {
  std::vector<std::pair<T, std::vector<Routed<D>>>> bundles;
  std::vector<std::vector<Routed<D>>> pool;  // recycled group buffers

  std::vector<Routed<D>> TakeBuffer() {
    if (pool.empty()) return {};
    std::vector<Routed<D>> v = std::move(pool.back());
    pool.pop_back();
    return v;
  }
};

/// Per-bin load statistics snapshot taken from one worker's S instance:
/// the raw input to the adaptive migration controller (see adaptive.hpp).
/// `records` counts records applied per bin since the previous snapshot
/// (and resets on take); `state_bytes` and `resident` describe the bins
/// currently hosted by this worker.
struct BinStats {
  std::vector<uint64_t> records;      // applied per bin since last take
  std::vector<uint64_t> state_bytes;  // approx bytes per resident bin
  std::vector<uint8_t> resident;      // 1 if the bin is hosted here
};

/// Result of constructing a stateful operator: its output stream plus a
/// probe on the S output frontier. The probe is what controllers use to
/// await migration completion ("the migration at time t has completed once
/// the frontier has passed t").
template <typename R, typename T>
struct StatefulOutput {
  timely::Stream<R, T> stream;
  timely::ProbeHandle<T> probe;

  /// Snapshots this worker's per-bin load statistics into `out` and resets
  /// the applied-record counters. Call from the worker's own driver loop
  /// (same thread as S, like the checkpoint hooks below).
  std::function<void(BinStats&)> take_bin_stats;

  /// Checkpoint hooks over this worker's bin container. `capture_bins`
  /// appends every resident bin as (bin id, whole-value serialization) —
  /// call it only at a frontier-aligned quiescent point (no stashed
  /// records, no in-flight migration). `restore_bins` stages such pairs
  /// for installation at S's next schedule, before any data is ingested;
  /// see BinsShared::restore_staging.
  std::function<void(std::vector<std::pair<uint32_t, std::vector<uint8_t>>>&)>
      capture_bins;
  std::function<void(std::vector<std::pair<uint32_t, std::vector<uint8_t>>>)>
      restore_bins;
};

namespace detail {

/// Schedules post-dated records for the bin currently being applied; they
/// are stored in the bin (and therefore migrate with it).
template <typename BinT, typename D, typename T,
          std::map<T, std::vector<D>> BinT::* PendingField>
class SchedulerImpl {
 public:
  SchedulerImpl(BinsShared<BinT, T>* shared, BinT* bin, BinId bin_id,
                const T* now, timely::OpCtx<T>* ctx, std::set<T>* held)
      : shared_(shared), bin_(bin), bin_id_(bin_id), now_(now), ctx_(ctx),
        held_(held) {}

  /// Presents `rec` to the operator again at time `t`, which must be
  /// strictly in the future.
  void ScheduleAt(const T& t, D rec) {
    MEGA_CHECK(timely::InAdvanceOf(t, *now_) && !(t == *now_))
        << "post-dated records must be strictly in the future";
    ((*bin_).*PendingField)[t].push_back(std::move(rec));
    shared_->RegisterPending(t, bin_id_);
    if (!held_->count(t)) {
      ctx_->Retain(t);
      held_->insert(t);
    }
  }

 private:
  BinsShared<BinT, T>* shared_;
  BinT* bin_;
  BinId bin_id_;
  const T* now_;
  timely::OpCtx<T>* ctx_;
  std::set<T>* held_;
};

/// Picks the compaction horizon: the smaller of two frontier minima, if
/// both are nonempty (totally ordered timestamps assumed for routing-table
/// compaction, which holds for every dataflow in this repository).
template <typename T>
std::optional<T> CompactionHorizon(const timely::Antichain<T>& a,
                                   const timely::Antichain<T>& b) {
  if (a.empty() || b.empty()) return std::nullopt;
  const T& ta = a.elements().front();
  const T& tb = b.elements().front();
  return timely::TimestampTraits<T>::LessEqual(ta, tb) ? ta : tb;
}

/// One bin mid-absorption at S: the partially installed bin plus the next
/// expected chunk sequence number (frames of one migration arrive in
/// order on the FIFO state channel).
template <typename BinT>
struct AbsorbingBin {
  std::unique_ptr<BinT> bin;
  uint32_t next_seq = 0;
};

/// Installs one received chunk frame into the partial-bin set, finalizing
/// residency — and registering the bin's pending times through `hold` —
/// at the last frame. Shared by the unary and binary S.
template <typename BinT, typename T, typename HoldFn>
void AbsorbChunkFrame(BinsShared<BinT, T>& shared,
                      std::map<BinId, AbsorbingBin<BinT>>& absorbing,
                      BinChunk& m, uint32_t worker, HoldFn hold) {
  MEGA_CHECK_EQ(m.target, worker);
  auto& ab = absorbing[m.bin];
  if (!ab.bin) {
    MEGA_CHECK(!shared.bins[m.bin])
        << "received state for an already-resident bin";
    ab.bin = std::make_unique<BinT>();
    ab.next_seq = 0;
  }
  MEGA_CHECK_EQ(m.seq, ab.next_seq) << "state chunk out of order";
  ab.next_seq++;
  Reader r(m.bytes);
  ab.bin->AbsorbChunk(r, m.last != 0);
  if (m.last != 0) {
    ab.bin->ForEachPendingTime([&](const T& tp) {
      shared.RegisterPending(tp, m.bin);
      hold(tp);
    });
    shared.bins[m.bin] = std::move(ab.bin);
    absorbing.erase(m.bin);
  }
}

/// Emits F's queued chunk frames under the per-step flow-control budget,
/// counting them into the process-wide chunk counters. Shared by the
/// unary and binary F.
template <typename T>
void FlushStateChunks(ControlState<T>& cs, timely::OpCtx<T>& ctx,
                      const Config& cfg,
                      timely::OutputHandle<BinChunk, T>* state_out) {
  cs.FlushChunks(ctx, cfg.ChunkStepBudget(),
                 [&](const T& t, BinChunk&& frame) {
                   chunk_counters().frames.fetch_add(
                       1, std::memory_order_relaxed);
                   chunk_counters().bytes.fetch_add(
                       frame.WireSize(), std::memory_order_relaxed);
                   state_out->Send(t, std::move(frame));
                 });
}

}  // namespace detail

/// Builds a migratable unary stateful operator (paper Listing 1, `unary`).
///
///   * `S` — per-bin user state; default-constructible and serde-able.
///   * `R` — output record type.
///   * `control` — stream of configuration updates; broadcast to all
///     workers. Its frontier must be advanced by every worker for routing
///     to proceed (see MigrationController).
///   * `key_fn(const D&) -> uint64_t` — the exchange function; the bin is
///     its most significant bits.
///   * `fold(time, state, records, emit, scheduler)` — the operator logic,
///     invoked per (time, bin) with all records for that bin at that time
///     (input records first, then post-dated records), an `emit(R)`
///     callable, and a scheduler for post-dated records.
///
/// Migration is transparent to `fold`.
template <typename S, typename R, typename D, typename T, typename KeyFn,
          typename Fold>
StatefulOutput<R, T> Unary(timely::Stream<ControlInst, T> control,
                           timely::Stream<D, T> data, KeyFn key_fn, Fold fold,
                           const Config& cfg) {
  using BinT = Bin<S, D, T>;
  using timely::OpCtx;
  using timely::OperatorBuilder;
  using timely::Pact;

  timely::Scope<T>& scope = *data.scope();
  const uint32_t num_bins = cfg.num_bins;
  MEGA_CHECK((num_bins & (num_bins - 1)) == 0 && num_bins > 0)
      << "num_bins must be a power of two";

  auto shared = std::make_shared<BinsShared<BinT, T>>(num_bins);
  auto probe_slot = std::make_shared<timely::ProbeHandle<T>>();
  auto inbox = std::make_shared<SelfInbox<D, T>>();

  // ------------------------------------------------------------------ F
  OperatorBuilder<T> fb(scope, cfg.name + "_F");
  auto* ctrl_in = fb.AddInput(control, Pact<ControlInst>::Broadcast());
  auto* data_in = fb.AddInput(data, Pact<D>::Pipeline());
  auto [routed_out, routed_stream] = fb.template AddOutput<Routed<D>>();
  auto [state_out, state_stream] = fb.template AddOutput<BinChunk>();
  if (cfg.state_bytes_per_sec != 0) {
    state_out->SetThrottle(cfg.state_bytes_per_sec,
                           [](const BinChunk& m) { return m.WireSize(); });
  }

  struct FState {
    FState(uint32_t bins, uint32_t workers, uint32_t me)
        : cs(bins, workers, me), route_scratch(workers) {}
    ControlState<T> cs;
    std::map<T, std::vector<D>> stash;
    std::vector<std::vector<Routed<D>>> route_scratch;  // per target worker
    uint64_t steps = 0;
  };
  auto fs = std::make_shared<FState>(num_bins, scope.peers(), scope.worker());
  if (!cfg.initial_owner.empty()) {
    fs->cs.routing().ResetInitial(cfg.initial_owner);
  }

  fb.Build([=](OpCtx<T>& ctx) {
    // Routes a whole batch: records are grouped per destination worker in
    // pooled scratch buffers, then each group leaves as one zero-copy
    // bundle. In the steady state between migrations the owner lookup is
    // a flat array load per record.
    auto route_batch = [&](const T& t, std::vector<D>& recs) {
      MEGA_PROF_BEGIN(f_route);
      auto& per_target = fs->route_scratch;
      const auto& routing = fs->cs.routing();
      if (const uint32_t* owners = routing.FlatOwnersAt(t)) {
        auto* groups = per_target.data();
        for (auto& r : recs) {
          BinId b = BinOf(key_fn(r), num_bins);
          uint32_t w = owners[b];
          groups[w].push_back(Routed<D>{w, b, std::move(r)});
        }
      } else {
        for (auto& r : recs) {
          BinId b = BinOf(key_fn(r), num_bins);
          uint32_t w = routing.WorkerAt(t, b);
          per_target[w].push_back(Routed<D>{w, b, std::move(r)});
        }
      }
      const uint32_t me = ctx.worker();
      for (uint32_t w = 0; w < per_target.size(); ++w) {
        if (per_target[w].empty()) continue;
        if (w == me) {
          // Same-thread handoff: S (scheduled after F in this very step)
          // drains the inbox; no channel, no progress counts.
          inbox->bundles.emplace_back(t, std::move(per_target[w]));
          per_target[w] = inbox->TakeBuffer();
        } else {
          routed_out->SendBundle(t, w, per_target[w]);
        }
      }
      MEGA_PROF_END(f_route);
    };

    // 1. Ingest configuration updates (retain a capability per time: F
    //    must be able to emit state at that time later).
    ctrl_in->ForEach([&](const T& t, std::vector<ControlInst>& us) {
      fs->cs.Enqueue(ctx, t, us);
    });

    // 2. Updates not in advance of the control frontier are final:
    //    integrate them into the routing table and queue migrations.
    fs->cs.IntegrateFinal(ctx, ctrl_in->frontier());

    // 3. Route data; buffer records whose time is in advance of the
    //    control frontier (their configuration is not yet certain).
    data_in->ForEach([&](const T& t, std::vector<D>& recs) {
      if (ctrl_in->frontier().LessEqual(t)) {
        auto [it, inserted] = fs->stash.emplace(t, std::vector<D>{});
        if (inserted) ctx.Retain(t);
        auto& vec = it->second;
        vec.insert(vec.end(), std::make_move_iterator(recs.begin()),
                   std::make_move_iterator(recs.end()));
      } else {
        route_batch(t, recs);
      }
    });

    // 4. Flush buffered records whose configuration has become final.
    while (!fs->stash.empty()) {
      auto it = fs->stash.begin();
      if (ctrl_in->frontier().LessEqual(it->first)) break;
      route_batch(it->first, it->second);
      ctx.Release(it->first);
      fs->stash.erase(it);
    }

    // 5. Initiate migrations whose time has been reached by the S output
    //    frontier: every record before that time has been applied. The
    //    extracted bins become queued chunk frames; the flush below meters
    //    them onto the state channel under the per-step byte budget, so a
    //    large bin never stalls a worker step for its full size.
    fs->cs.RunReadyMigrations(
        ctx,
        [&](const T& t) {
          MEGA_CHECK(probe_slot->valid());
          return !probe_slot->LessThan(t);
        },
        [&](const T&, BinId b, uint32_t target) {
          return detail::ExtractBinChunks(*shared, b, target,
                                          cfg.chunk_bytes);
        });
    detail::FlushStateChunks(fs->cs, ctx, cfg, state_out);

    // 6. Periodically drop routing-table versions behind both frontiers.
    if ((++fs->steps & 63) == 0) {
      auto horizon = detail::CompactionHorizon(ctrl_in->frontier(),
                                               data_in->frontier());
      if (horizon) fs->cs.routing().Compact(*horizon);
    }
  });

  // ------------------------------------------------------------------ S
  OperatorBuilder<T> sb(scope, cfg.name + "_S");
  auto* s_data_in = sb.AddInput(
      routed_stream,
      Pact<Routed<D>>::Route([](const Routed<D>& r) { return r.target; }));
  auto* s_state_in = sb.AddInput(
      state_stream,
      Pact<BinChunk>::Route([](const BinChunk& m) { return m.target; }));
  auto [out, out_stream] = sb.template AddOutput<R>();

  struct SState {
    std::map<T, BinStash<D>> queue;  // per-time flat stash, pooled
    BinStashPool<D> pool;
    std::set<T> held;
    std::vector<BinId> bins_scratch;
    std::vector<D> recs_scratch;  // bins with only post-dated records
    std::map<BinId, detail::AbsorbingBin<BinT>> absorbing;
    std::vector<uint64_t> records_applied;  // per bin, since last stats take
  };
  auto ss = std::make_shared<SState>();
  ss->records_applied.assign(num_bins, 0);

  sb.Build([=](OpCtx<T>& ctx) {
    auto hold = [&](const T& t) {
      if (!ss->held.count(t)) {
        ctx.Retain(t);
        ss->held.insert(t);
      }
    };

    // 0. Install checkpoint-restored bins staged before stepping began:
    //    deserialize each whole-value payload and re-register its pending
    //    times under a capability hold — exactly as if the bin had just
    //    migrated in. Runs on S's first schedule, before any input.
    if (!shared->restore_staging.empty()) {
      for (auto& [rb, rbytes] : shared->restore_staging) {
        MEGA_CHECK(!shared->bins[rb]) << "restore into resident bin " << rb;
        Reader rr(rbytes);
        auto rbin = std::make_unique<BinT>(BinT::Deserialize(rr));
        rbin->ForEachPendingTime([&](const T& t) {
          shared->RegisterPending(t, rb);
          hold(t);
        });
        shared->bins[rb] = std::move(rbin);
      }
      shared->restore_staging.clear();
      shared->restore_staging.shrink_to_fit();
    }

    // 1. Install migrated state immediately (paper §3.4: "S immediately
    //    installs any received state") — chunk by chunk: each frame is
    //    absorbed on arrival, and the bin becomes resident (its pending
    //    times registered) at the final frame. Safe because records for
    //    the bin at ≥ t stay stashed until the state frontier passes t,
    //    which cannot happen before F releases t after the last frame.
    s_state_in->ForEach([&](const T&, std::vector<BinChunk>& ms) {
      for (auto& m : ms) {
        detail::AbsorbChunkFrame(*shared, ss->absorbing, m, ctx.worker(),
                                 hold);
      }
    });

    // 2. Stash incoming records per time, flat by bin (F already computed
    //    each record's bin): first bundles handed over by the co-located
    //    F this very step, then channel deliveries from remote workers.
    auto stash_records = [&](const T& t, std::vector<Routed<D>>& recs) {
      MEGA_PROF_BEGIN(s_ingest);
      hold(t);
      auto it = ss->queue.find(t);
      if (it == ss->queue.end()) {
        it = ss->queue.emplace(t, ss->pool.Acquire(num_bins)).first;
      }
      auto* slots = it->second.by_bin.data();
      for (auto& r : recs) {
        MEGA_DCHECK(r.target == ctx.worker()) << "misrouted record";
        slots[r.bin].push_back(std::move(r.payload));
      }
      MEGA_PROF_END(s_ingest);
    };
    if (!inbox->bundles.empty()) {
      for (auto& [t, recs] : inbox->bundles) {
        ctx.NoteInputTime(t);
        stash_records(t, recs);
        recs.clear();
        inbox->pool.push_back(std::move(recs));
      }
      inbox->bundles.clear();
    }
    s_data_in->ForEach(stash_records);

    // 3. Apply, in timestamp order, every time in advance of neither the
    //    data-input nor the state-input frontier.
    MEGA_PROF_BEGIN(s_apply);
    const auto& f_data = s_data_in->frontier();
    const auto& f_state = s_state_in->frontier();
    while (true) {
      std::optional<T> t;
      if (!ss->queue.empty()) t = ss->queue.begin()->first;
      if (!shared->pending_bins.empty()) {
        const T& tp = shared->pending_bins.begin()->first;
        if (!t || tp < *t) t = tp;
      }
      if (!t || f_data.LessEqual(*t) || f_state.LessEqual(*t)) break;

      // Bins with work at *t: stashed input records (the occupancy list)
      // and/or pending post-dated records; sorted for deterministic
      // application order.
      auto qit = ss->queue.find(*t);
      BinStash<D>* stash = qit != ss->queue.end() ? &qit->second : nullptr;
      auto& bins_at_t = ss->bins_scratch;
      bins_at_t.clear();
      if (stash) stash->AppendOccupied(bins_at_t);  // increasing order
      size_t sorted_prefix = bins_at_t.size();
      auto pit = shared->pending_bins.find(*t);
      if (pit != shared->pending_bins.end()) {
        for (BinId b : pit->second) {
          if (!stash || !stash->Has(b)) bins_at_t.push_back(b);
        }
      }
      if (bins_at_t.size() != sorted_prefix) {
        std::sort(bins_at_t.begin(), bins_at_t.end());
      }
      for (BinId b : bins_at_t) {
        auto& slot = shared->bins[b];
        if (!slot) slot = std::make_unique<BinT>();  // first touch
        std::vector<D>* recs = &ss->recs_scratch;
        if (stash && stash->Has(b)) {
          recs = &stash->SlotRef(b);
        } else {
          recs->clear();
        }
        auto pf = slot->pending.find(*t);
        if (pf != slot->pending.end()) {
          recs->insert(recs->end(),
                       std::make_move_iterator(pf->second.begin()),
                       std::make_move_iterator(pf->second.end()));
          slot->pending.erase(pf);
        }
        ss->records_applied[b] += recs->size();
        detail::SchedulerImpl<BinT, D, T, &BinT::pending> sched(
            shared.get(), slot.get(), b, &*t, &ctx, &ss->held);
        fold(*t, slot->user_state(), *recs,
             [&](R r) { out->Send(*t, std::move(r)); }, sched);
        recs->clear();  // slot capacity stays with the pooled stash
      }
      if (qit != ss->queue.end()) {
        ss->pool.Recycle(std::move(qit->second));
        ss->queue.erase(qit);
      }
      pit = shared->pending_bins.find(*t);
      if (pit != shared->pending_bins.end()) shared->pending_bins.erase(pit);
      if (ss->held.count(*t)) {
        ctx.Release(*t);
        ss->held.erase(*t);
      }
    }
    MEGA_PROF_END(s_apply);

    // 4. Release capabilities whose pending work vanished because F
    //    extracted the bins holding it (the records migrated away).
    for (auto it = ss->held.begin(); it != ss->held.end();) {
      const T& t = *it;
      bool has_queue = ss->queue.count(t) > 0;
      auto pit = shared->pending_bins.find(t);
      bool has_pending =
          pit != shared->pending_bins.end() && !pit->second.empty();
      if (pit != shared->pending_bins.end() && pit->second.empty()) {
        shared->pending_bins.erase(pit);
      }
      if (!has_queue && !has_pending) {
        ctx.Release(t);
        it = ss->held.erase(it);
      } else {
        ++it;
      }
    }
  });

  auto probe = timely::Probe(out_stream);
  *probe_slot = probe;
  StatefulOutput<R, T> result;
  result.stream = out_stream;
  result.probe = probe;
  result.take_bin_stats = [shared, ss, num_bins](BinStats& out) {
    out.records = std::move(ss->records_applied);
    ss->records_applied.assign(num_bins, 0);
    out.state_bytes.assign(num_bins, 0);
    out.resident.assign(num_bins, 0);
    for (BinId b = 0; b < shared->bins.size(); ++b) {
      if (!shared->bins[b]) continue;
      out.resident[b] = 1;
      out.state_bytes[b] = shared->bins[b]->ApproxBytes();
    }
  };
  result.capture_bins =
      [shared](std::vector<std::pair<uint32_t, std::vector<uint8_t>>>& out) {
        for (BinId b = 0; b < shared->bins.size(); ++b) {
          if (!shared->bins[b]) continue;
          Writer w;
          shared->bins[b]->Serialize(w);
          out.emplace_back(b, w.Take());
        }
      };
  result.restore_bins =
      [shared](std::vector<std::pair<uint32_t, std::vector<uint8_t>>> staged) {
        shared->restore_staging = std::move(staged);
      };
  return result;
}

/// Builds a migratable binary stateful operator (paper Listing 1,
/// `binary`): two data inputs share one binned state, and the migration
/// mechanism acts on both inputs at the same time (paper §3.4).
///
/// `fold(time, state, records1, records2, emit, scheduler)` receives both
/// inputs' records for the (time, bin) pair; `scheduler.Schedule1/2`
/// post-date records for either input.
template <typename S, typename R, typename D1, typename D2, typename T,
          typename KeyFn1, typename KeyFn2, typename Fold>
StatefulOutput<R, T> Binary(timely::Stream<ControlInst, T> control,
                            timely::Stream<D1, T> data1,
                            timely::Stream<D2, T> data2, KeyFn1 key_fn1,
                            KeyFn2 key_fn2, Fold fold, const Config& cfg) {
  using BinT = BinaryBin<S, D1, D2, T>;
  using timely::OpCtx;
  using timely::OperatorBuilder;
  using timely::Pact;

  timely::Scope<T>& scope = *data1.scope();
  const uint32_t num_bins = cfg.num_bins;
  MEGA_CHECK((num_bins & (num_bins - 1)) == 0 && num_bins > 0)
      << "num_bins must be a power of two";

  auto shared = std::make_shared<BinsShared<BinT, T>>(num_bins);
  auto probe_slot = std::make_shared<timely::ProbeHandle<T>>();
  auto inbox1 = std::make_shared<SelfInbox<D1, T>>();
  auto inbox2 = std::make_shared<SelfInbox<D2, T>>();

  // ------------------------------------------------------------------ F
  OperatorBuilder<T> fb(scope, cfg.name + "_F");
  auto* ctrl_in = fb.AddInput(control, Pact<ControlInst>::Broadcast());
  auto* data1_in = fb.AddInput(data1, Pact<D1>::Pipeline());
  auto* data2_in = fb.AddInput(data2, Pact<D2>::Pipeline());
  auto [routed1_out, routed1_stream] = fb.template AddOutput<Routed<D1>>();
  auto [routed2_out, routed2_stream] = fb.template AddOutput<Routed<D2>>();
  auto [state_out, state_stream] = fb.template AddOutput<BinChunk>();
  if (cfg.state_bytes_per_sec != 0) {
    state_out->SetThrottle(cfg.state_bytes_per_sec,
                           [](const BinChunk& m) { return m.WireSize(); });
  }

  struct FState {
    FState(uint32_t bins, uint32_t workers, uint32_t me)
        : cs(bins, workers, me), scratch1(workers), scratch2(workers) {}
    ControlState<T> cs;
    std::map<T, std::pair<std::vector<D1>, std::vector<D2>>> stash;
    std::vector<std::vector<Routed<D1>>> scratch1;  // per target worker
    std::vector<std::vector<Routed<D2>>> scratch2;
    uint64_t steps = 0;
  };
  auto fs = std::make_shared<FState>(num_bins, scope.peers(), scope.worker());
  if (!cfg.initial_owner.empty()) {
    fs->cs.routing().ResetInitial(cfg.initial_owner);
  }

  fb.Build([=](OpCtx<T>& ctx) {
    // Per-target grouping with flat owner lookups and the same-thread
    // inbox handoff, as in the unary F.
    auto route_any = [&](const T& t, auto& recs, auto key, auto& per_target,
                         auto* routed_out_handle, auto& self_inbox) {
      const auto& routing = fs->cs.routing();
      using RecT = typename std::decay_t<decltype(recs)>::value_type;
      if (const uint32_t* owners = routing.FlatOwnersAt(t)) {
        for (auto& r : recs) {
          BinId b = BinOf(key(r), num_bins);
          uint32_t w = owners[b];
          per_target[w].push_back(Routed<RecT>{w, b, std::move(r)});
        }
      } else {
        for (auto& r : recs) {
          BinId b = BinOf(key(r), num_bins);
          uint32_t w = routing.WorkerAt(t, b);
          per_target[w].push_back(Routed<RecT>{w, b, std::move(r)});
        }
      }
      const uint32_t me = ctx.worker();
      for (uint32_t w = 0; w < per_target.size(); ++w) {
        if (per_target[w].empty()) continue;
        if (w == me) {
          self_inbox.bundles.emplace_back(t, std::move(per_target[w]));
          per_target[w] = self_inbox.TakeBuffer();
        } else {
          routed_out_handle->SendBundle(t, w, per_target[w]);
        }
      }
    };
    auto route1 = [&](const T& t, std::vector<D1>& recs) {
      route_any(t, recs, key_fn1, fs->scratch1, routed1_out, *inbox1);
    };
    auto route2 = [&](const T& t, std::vector<D2>& recs) {
      route_any(t, recs, key_fn2, fs->scratch2, routed2_out, *inbox2);
    };
    auto stash_at = [&](const T& t)
        -> std::pair<std::vector<D1>, std::vector<D2>>& {
      auto [it, inserted] = fs->stash.emplace(
          t, std::pair<std::vector<D1>, std::vector<D2>>{});
      if (inserted) ctx.Retain(t);
      return it->second;
    };

    ctrl_in->ForEach([&](const T& t, std::vector<ControlInst>& us) {
      fs->cs.Enqueue(ctx, t, us);
    });
    fs->cs.IntegrateFinal(ctx, ctrl_in->frontier());

    data1_in->ForEach([&](const T& t, std::vector<D1>& recs) {
      if (ctrl_in->frontier().LessEqual(t)) {
        auto& slot = stash_at(t).first;
        slot.insert(slot.end(), std::make_move_iterator(recs.begin()),
                    std::make_move_iterator(recs.end()));
      } else {
        route1(t, recs);
      }
    });
    data2_in->ForEach([&](const T& t, std::vector<D2>& recs) {
      if (ctrl_in->frontier().LessEqual(t)) {
        auto& slot = stash_at(t).second;
        slot.insert(slot.end(), std::make_move_iterator(recs.begin()),
                    std::make_move_iterator(recs.end()));
      } else {
        route2(t, recs);
      }
    });

    while (!fs->stash.empty()) {
      auto it = fs->stash.begin();
      if (ctrl_in->frontier().LessEqual(it->first)) break;
      route1(it->first, it->second.first);
      route2(it->first, it->second.second);
      ctx.Release(it->first);
      fs->stash.erase(it);
    }

    fs->cs.RunReadyMigrations(
        ctx,
        [&](const T& t) {
          MEGA_CHECK(probe_slot->valid());
          return !probe_slot->LessThan(t);
        },
        [&](const T&, BinId b, uint32_t target) {
          return detail::ExtractBinChunks(*shared, b, target,
                                          cfg.chunk_bytes);
        });
    detail::FlushStateChunks(fs->cs, ctx, cfg, state_out);

    if ((++fs->steps & 63) == 0) {
      auto horizon = detail::CompactionHorizon(ctrl_in->frontier(),
                                               data1_in->frontier());
      if (horizon) {
        horizon = detail::CompactionHorizon(
            timely::Antichain<T>({*horizon}), data2_in->frontier());
      }
      if (horizon) fs->cs.routing().Compact(*horizon);
    }
  });

  // ------------------------------------------------------------------ S
  OperatorBuilder<T> sb(scope, cfg.name + "_S");
  auto* s1_in = sb.AddInput(
      routed1_stream,
      Pact<Routed<D1>>::Route([](const Routed<D1>& r) { return r.target; }));
  auto* s2_in = sb.AddInput(
      routed2_stream,
      Pact<Routed<D2>>::Route([](const Routed<D2>& r) { return r.target; }));
  auto* s_state_in = sb.AddInput(
      state_stream,
      Pact<BinChunk>::Route([](const BinChunk& m) { return m.target; }));
  auto [out, out_stream] = sb.template AddOutput<R>();

  struct SState {
    std::map<T, BinStash<D1>> queue1;
    std::map<T, BinStash<D2>> queue2;
    BinStashPool<D1> pool1;
    BinStashPool<D2> pool2;
    std::set<T> held;
    std::vector<BinId> bins_scratch;
    std::vector<D1> recs1_scratch;
    std::vector<D2> recs2_scratch;
    std::map<BinId, detail::AbsorbingBin<BinT>> absorbing;
    std::vector<uint64_t> records_applied;  // per bin, since last stats take
  };
  auto ss = std::make_shared<SState>();
  ss->records_applied.assign(num_bins, 0);

  sb.Build([=](OpCtx<T>& ctx) {
    auto hold = [&](const T& t) {
      if (!ss->held.count(t)) {
        ctx.Retain(t);
        ss->held.insert(t);
      }
    };

    // 0. Install checkpoint-restored bins staged before stepping began:
    //    deserialize each whole-value payload and re-register its pending
    //    times under a capability hold — exactly as if the bin had just
    //    migrated in. Runs on S's first schedule, before any input.
    if (!shared->restore_staging.empty()) {
      for (auto& [rb, rbytes] : shared->restore_staging) {
        MEGA_CHECK(!shared->bins[rb]) << "restore into resident bin " << rb;
        Reader rr(rbytes);
        auto rbin = std::make_unique<BinT>(BinT::Deserialize(rr));
        rbin->ForEachPendingTime([&](const T& t) {
          shared->RegisterPending(t, rb);
          hold(t);
        });
        shared->bins[rb] = std::move(rbin);
      }
      shared->restore_staging.clear();
      shared->restore_staging.shrink_to_fit();
    }

    // Chunk-by-chunk installation, shared with the unary S.
    s_state_in->ForEach([&](const T&, std::vector<BinChunk>& ms) {
      for (auto& m : ms) {
        detail::AbsorbChunkFrame(*shared, ss->absorbing, m, ctx.worker(),
                                 hold);
      }
    });

    auto stash_into = [&](auto& queue, auto& pool, const auto& t,
                          auto& recs) {
      hold(t);
      auto it = queue.find(t);
      if (it == queue.end()) {
        it = queue.emplace(t, pool.Acquire(num_bins)).first;
      }
      auto* slots = it->second.by_bin.data();
      for (auto& r : recs) {
        MEGA_DCHECK(r.target == ctx.worker()) << "misrouted record";
        slots[r.bin].push_back(std::move(r.payload));
      }
    };
    auto drain_inbox = [&](auto& self_inbox, auto& queue, auto& pool) {
      if (self_inbox.bundles.empty()) return;
      for (auto& [t, recs] : self_inbox.bundles) {
        ctx.NoteInputTime(t);
        stash_into(queue, pool, t, recs);
        recs.clear();
        self_inbox.pool.push_back(std::move(recs));
      }
      self_inbox.bundles.clear();
    };
    drain_inbox(*inbox1, ss->queue1, ss->pool1);
    drain_inbox(*inbox2, ss->queue2, ss->pool2);
    s1_in->ForEach([&](const T& t, std::vector<Routed<D1>>& recs) {
      stash_into(ss->queue1, ss->pool1, t, recs);
    });
    s2_in->ForEach([&](const T& t, std::vector<Routed<D2>>& recs) {
      stash_into(ss->queue2, ss->pool2, t, recs);
    });

    const auto& f1 = s1_in->frontier();
    const auto& f2 = s2_in->frontier();
    const auto& fstate = s_state_in->frontier();
    while (true) {
      std::optional<T> t;
      auto consider = [&](const T& cand) {
        if (!t || cand < *t) t = cand;
      };
      if (!ss->queue1.empty()) consider(ss->queue1.begin()->first);
      if (!ss->queue2.empty()) consider(ss->queue2.begin()->first);
      if (!shared->pending_bins.empty())
        consider(shared->pending_bins.begin()->first);
      if (!t || f1.LessEqual(*t) || f2.LessEqual(*t) || fstate.LessEqual(*t))
        break;

      auto q1 = ss->queue1.find(*t);
      auto q2 = ss->queue2.find(*t);
      BinStash<D1>* stash1 = q1 != ss->queue1.end() ? &q1->second : nullptr;
      BinStash<D2>* stash2 = q2 != ss->queue2.end() ? &q2->second : nullptr;
      auto& bins_at_t = ss->bins_scratch;
      bins_at_t.clear();
      if (stash1) stash1->AppendOccupied(bins_at_t);
      if (stash2) stash2->AppendOccupied(bins_at_t);
      auto pit = shared->pending_bins.find(*t);
      if (pit != shared->pending_bins.end()) {
        bins_at_t.insert(bins_at_t.end(), pit->second.begin(),
                         pit->second.end());
      }
      std::sort(bins_at_t.begin(), bins_at_t.end());
      bins_at_t.erase(std::unique(bins_at_t.begin(), bins_at_t.end()),
                      bins_at_t.end());

      for (BinId b : bins_at_t) {
        auto& slot = shared->bins[b];
        if (!slot) slot = std::make_unique<BinT>();
        std::vector<D1>* recs1 = &ss->recs1_scratch;
        std::vector<D2>* recs2 = &ss->recs2_scratch;
        if (stash1 && stash1->Has(b)) {
          recs1 = &stash1->SlotRef(b);
        } else {
          recs1->clear();
        }
        if (stash2 && stash2->Has(b)) {
          recs2 = &stash2->SlotRef(b);
        } else {
          recs2->clear();
        }
        auto move_pending = [&](auto& pending, auto& recs) {
          auto pf = pending.find(*t);
          if (pf != pending.end()) {
            recs.insert(recs.end(),
                        std::make_move_iterator(pf->second.begin()),
                        std::make_move_iterator(pf->second.end()));
            pending.erase(pf);
          }
        };
        move_pending(slot->pending1, *recs1);
        move_pending(slot->pending2, *recs2);
        ss->records_applied[b] += recs1->size() + recs2->size();
        detail::SchedulerImpl<BinT, D1, T, &BinT::pending1> sched1(
            shared.get(), slot.get(), b, &*t, &ctx, &ss->held);
        detail::SchedulerImpl<BinT, D2, T, &BinT::pending2> sched2(
            shared.get(), slot.get(), b, &*t, &ctx, &ss->held);
        struct BothScheds {
          decltype(sched1)& s1;
          decltype(sched2)& s2;
          void Schedule1(const T& t2, D1 r) { s1.ScheduleAt(t2, std::move(r)); }
          void Schedule2(const T& t2, D2 r) { s2.ScheduleAt(t2, std::move(r)); }
        } scheds{sched1, sched2};
        fold(*t, slot->user_state(), *recs1, *recs2,
             [&](R r) { out->Send(*t, std::move(r)); }, scheds);
        recs1->clear();
        recs2->clear();
      }
      if (q1 != ss->queue1.end()) {
        ss->pool1.Recycle(std::move(q1->second));
        ss->queue1.erase(q1);
      }
      if (q2 != ss->queue2.end()) {
        ss->pool2.Recycle(std::move(q2->second));
        ss->queue2.erase(q2);
      }
      pit = shared->pending_bins.find(*t);
      if (pit != shared->pending_bins.end()) shared->pending_bins.erase(pit);
      if (ss->held.count(*t)) {
        ctx.Release(*t);
        ss->held.erase(*t);
      }
    }

    for (auto it = ss->held.begin(); it != ss->held.end();) {
      const T& t = *it;
      bool has_queue = ss->queue1.count(t) > 0 || ss->queue2.count(t) > 0;
      auto pit = shared->pending_bins.find(t);
      bool has_pending =
          pit != shared->pending_bins.end() && !pit->second.empty();
      if (pit != shared->pending_bins.end() && pit->second.empty()) {
        shared->pending_bins.erase(pit);
      }
      if (!has_queue && !has_pending) {
        ctx.Release(t);
        it = ss->held.erase(it);
      } else {
        ++it;
      }
    }
  });

  auto probe = timely::Probe(out_stream);
  *probe_slot = probe;
  StatefulOutput<R, T> result;
  result.stream = out_stream;
  result.probe = probe;
  result.take_bin_stats = [shared, ss, num_bins](BinStats& out) {
    out.records = std::move(ss->records_applied);
    ss->records_applied.assign(num_bins, 0);
    out.state_bytes.assign(num_bins, 0);
    out.resident.assign(num_bins, 0);
    for (BinId b = 0; b < shared->bins.size(); ++b) {
      if (!shared->bins[b]) continue;
      out.resident[b] = 1;
      out.state_bytes[b] = shared->bins[b]->ApproxBytes();
    }
  };
  result.capture_bins =
      [shared](std::vector<std::pair<uint32_t, std::vector<uint8_t>>>& out) {
        for (BinId b = 0; b < shared->bins.size(); ++b) {
          if (!shared->bins[b]) continue;
          Writer w;
          shared->bins[b]->Serialize(w);
          out.emplace_back(b, w.Take());
        }
      };
  result.restore_bins =
      [shared](std::vector<std::pair<uint32_t, std::vector<uint8_t>>> staged) {
        shared->restore_staging = std::move(staged);
      };
  return result;
}

/// Builds the simplest Megaphone interface (paper Listing 1,
/// `state_machine`): input pairs (key, val), per-key state, and
/// `fold(key, val, per_key_state, emit)` applied per record. The bin state
/// is a hash map from key to per-key state, as in the paper's "hash count"
/// workloads.
template <typename PerKey, typename R, typename K, typename V, typename T,
          typename KeyHash, typename Fold>
StatefulOutput<R, T> StateMachine(timely::Stream<ControlInst, T> control,
                                  timely::Stream<std::pair<K, V>, T> data,
                                  KeyHash key_hash, Fold fold,
                                  const Config& cfg) {
  using KV = std::pair<K, V>;
  using BinState = std::unordered_map<K, PerKey>;
  return Unary<BinState, R>(
      control, data, [key_hash](const KV& kv) { return key_hash(kv.first); },
      [fold](const T&, BinState& state, std::vector<KV>& recs, auto emit,
             auto&) {
        for (auto& [k, v] : recs) {
          fold(k, std::move(v), state[k], emit);
        }
      },
      cfg);
}

}  // namespace megaphone
