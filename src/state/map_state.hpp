// MapState: the flat hash-map state backend — the organization the paper's
// "hash count" workloads and most NEXMark queries use. Migration chunks
// are runs of (key, value) entries cut at ~max_bytes, absorbed by plain
// insertion, so a receiving worker installs a bin incrementally with no
// end-of-transfer decode spike.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/serde.hpp"
#include "state/migratable.hpp"

namespace megaphone {
namespace state {

template <typename K, typename V, typename Hash = std::hash<K>,
          typename Eq = std::equal_to<K>>
class MapState {
 public:
  using Raw = std::unordered_map<K, V, Hash, Eq>;
  using iterator = typename Raw::iterator;
  using const_iterator = typename Raw::const_iterator;

  // Container interface: a drop-in for the unordered_map it wraps.
  V& operator[](const K& k) { return map_[k]; }
  iterator find(const K& k) { return map_.find(k); }
  const_iterator find(const K& k) const { return map_.find(k); }
  iterator begin() { return map_.begin(); }
  iterator end() { return map_.end(); }
  const_iterator begin() const { return map_.begin(); }
  const_iterator end() const { return map_.end(); }
  iterator erase(iterator it) { return map_.erase(it); }
  size_t erase(const K& k) { return map_.erase(k); }
  template <typename... Args>
  auto emplace(Args&&... args) {
    return map_.emplace(std::forward<Args>(args)...);
  }
  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  size_t count(const K& k) const { return map_.count(k); }
  void clear() { map_.clear(); }
  Raw& raw() { return map_; }
  const Raw& raw() const { return map_; }

  friend bool operator==(const MapState& a, const MapState& b) {
    return a.map_ == b.map_;
  }

  // Serde (monolithic path): identical to the wrapped map's encoding.
  void Serialize(Writer& w) const { Encode(w, map_); }
  static MapState Deserialize(Reader& r) {
    MapState s;
    s.map_ = Decode<Raw>(r);
    return s;
  }

  // Migratable-state chunk interface.
  void EnumerateChunks(size_t max_bytes, const ChunkEmit& emit) const {
    Writer w;
    for (const auto& [k, v] : map_) {
      Encode(w, k);
      Encode(w, v);
      if (max_bytes != 0 && w.size() >= max_bytes) {
        emit(w.Take());
        w = Writer();
      }
    }
    if (w.size() > 0) emit(w.Take());
  }
  void AbsorbChunk(Reader& r) {
    while (!r.AtEnd()) {
      K k = Decode<K>(r);
      V v = Decode<V>(r);
      map_.emplace(std::move(k), std::move(v));
    }
  }
  void FinishAbsorb() {}

 private:
  Raw map_;
};

}  // namespace state
}  // namespace megaphone
