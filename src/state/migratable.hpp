// The migratable-state layer: what a bin's user state must provide so the
// runtime can move it latency-consciously.
//
// Megaphone's migration unit is the bin (paper §4.2), but the *cost* of
// moving a bin is set by how its state serializes: a monolithic blob
// stalls the worker and the wire for the whole bin size (the fig. 15
// large-state spike). A MigratableState instead exposes its content as a
// stream of size-bounded, independently absorbable chunks, so operator F
// can ship a bin as many small frames interleaved with data processing and
// operator S can install it incrementally.
//
// A state backend provides:
//
//   void Serialize(Writer&) const / static S Deserialize(Reader&)
//       — whole-value serde, used by the monolithic path (chunking off)
//         and by tests comparing backends;
//   void EnumerateChunks(size_t max_bytes, const ChunkEmit& emit) const
//       — emit the content as payloads of ~max_bytes each, cut only at
//         entry boundaries (a chunk may exceed max_bytes by one entry);
//   void AbsorbChunk(Reader& r)
//       — install one previously emitted payload (chunks of one
//         extraction arrive exactly once, in emission order);
//   void FinishAbsorb()
//       — called after the last chunk; backends that buffer (BlobState)
//         decode here, entry-granular backends do nothing.
//
// Backends shipped here: MapState (flat hash map, the current default),
// SortedState (ordered map migrating as sorted runs), DenseState (dense
// vector migrating as offset-tagged slices), and BlobState (adapter giving
// any serde-able type the chunk interface by slicing its encoding).
// BackendFor<S> picks the backend for a user-declared state type S, so
// existing operators over std::unordered_map / std::map / std::vector
// become chunk-aware without source changes.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/serde.hpp"

namespace megaphone {
namespace state {

/// Receives one chunk payload during EnumerateChunks.
using ChunkEmit = std::function<void(std::vector<uint8_t>&&)>;

/// A state type the runtime can migrate chunk by chunk.
template <typename S>
concept ChunkableState =
    Serializable<S> && std::default_initializable<S> &&
    requires(const S cs, S s, size_t n, const ChunkEmit& emit, Reader& r) {
      { cs.EnumerateChunks(n, emit) };
      { s.AbsorbChunk(r) };
      { s.FinishAbsorb() };
    };

/// Assembles section-framed chunk payloads: a frame is a sequence of
/// [u8 tag][u64 len][len bytes] sections, cut into frames of roughly
/// `max_bytes` (0 = unbounded: everything lands in one frame). Sections
/// are never split — the slicing helper below bounds section size first —
/// so a frame exceeds the bound by at most one section.
class ChunkBuilder {
 public:
  ChunkBuilder(size_t max_bytes, std::vector<std::vector<uint8_t>>* out)
      : max_(max_bytes == 0 ? std::numeric_limits<size_t>::max() : max_bytes),
        out_(out) {}

  void AddSection(uint8_t tag, const uint8_t* data, size_t n) {
    if (w_.size() > 0 && w_.size() + n + kSectionHeader > max_) Cut();
    w_.WriteBytes(&tag, 1);
    uint64_t len = n;
    w_.WriteBytes(&len, sizeof(len));
    w_.WriteBytes(data, n);
    if (w_.size() >= max_) Cut();
  }
  void AddSection(uint8_t tag, const std::vector<uint8_t>& bytes) {
    AddSection(tag, bytes.data(), bytes.size());
  }

  /// Adds an opaque byte stream as a run of sections of at most max_bytes
  /// each; the absorber reassembles them by concatenation. Empty streams
  /// add nothing.
  void AddSectionSliced(uint8_t tag, const std::vector<uint8_t>& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      size_t take = std::min(bytes.size() - off, max_);
      AddSection(tag, bytes.data() + off, take);
      off += take;
    }
  }

  /// Seals the final frame.
  void Finish() { Cut(); }

  static constexpr size_t kSectionHeader = 1 + sizeof(uint64_t);

 private:
  void Cut() {
    if (w_.size() > 0) {
      out_->push_back(w_.Take());
      w_ = Writer();
    }
  }

  size_t max_;
  std::vector<std::vector<uint8_t>>* out_;
  Writer w_;
};

/// Reads the section stream of one frame payload: calls
/// `on_section(tag, sub_reader)` per section, where the sub-reader covers
/// exactly that section's bytes.
template <typename Fn>
void ForEachSection(Reader& r, Fn on_section) {
  while (!r.AtEnd()) {
    uint8_t tag;
    r.ReadBytes(&tag, 1);
    uint64_t len = r.ReadCount(1);
    Reader sec = r.Sub(static_cast<size_t>(len));
    on_section(tag, sec);
  }
}

/// Adapter giving any serde-able S the chunk interface: chunks are slices
/// of the whole-value encoding, buffered on the receiver and decoded once
/// the last chunk has arrived. Wire frames stay size-bounded (the flow
///-control property), but installation is deferred — entry-granular
/// backends are strictly better when the type allows one.
template <typename S>
struct BlobState {
  S value{};

  void Serialize(Writer& w) const { Encode(w, value); }
  static BlobState Deserialize(Reader& r) {
    BlobState b;
    b.value = Decode<S>(r);
    return b;
  }

  void EnumerateChunks(size_t max_bytes, const ChunkEmit& emit) const {
    std::vector<uint8_t> bytes = EncodeToBytes(value);
    size_t cap = max_bytes == 0 ? bytes.size() : max_bytes;
    size_t off = 0;
    while (off < bytes.size()) {
      size_t take = std::min(bytes.size() - off, cap);
      emit(std::vector<uint8_t>(bytes.begin() + static_cast<long>(off),
                                bytes.begin() + static_cast<long>(off + take)));
      off += take;
    }
  }
  void AbsorbChunk(Reader& r) {
    size_t n = r.remaining();
    size_t old = absorb_buf_.size();
    absorb_buf_.resize(old + n);
    r.ReadBytes(absorb_buf_.data() + old, n);
  }
  void FinishAbsorb() {
    if (!absorb_buf_.empty()) {
      value = DecodeFromBytes<S>(absorb_buf_);
      absorb_buf_.clear();
      absorb_buf_.shrink_to_fit();
    }
  }

 private:
  std::vector<uint8_t> absorb_buf_;  // chunk bytes awaiting the last chunk
};

}  // namespace state
}  // namespace megaphone
