// Frontier-aligned checkpoint segments: per-process files holding every
// local bin's whole-value serialization at an epoch boundary.
//
// A checkpoint of the whole job at epoch E is one segment file per
// process, written independently (no cross-process coordination beyond
// the fact that every process checkpoints at the same frontier-aligned
// epochs — the deterministic harness loop guarantees that). A checkpoint
// is *complete* only when all P segment files for E exist; restore picks
// the largest such E. Segment writes go through a temp file + rename, so
// a crash mid-write can never produce a segment that parses (the
// "checkpoint-based recovery" pattern from the state-management survey:
// atomically published, all-or-nothing units).
//
// The bin payloads are the exact bytes `Bin::Serialize` produces — the
// same whole-value serde migration uses — so restore is "absorb these
// bins as if they had just migrated in", and a restored run continues
// byte-identically (proven by tests/recovery_test.cpp).
#pragma once

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/serde.hpp"

namespace megaphone {
namespace state {

/// One worker's share of a checkpoint: (bin id, whole-value bin bytes).
using BinSnapshot = std::vector<std::pair<uint32_t, std::vector<uint8_t>>>;

/// One process's segment of a job-wide checkpoint at `epoch`.
struct CheckpointSegment {
  /// Every record with time < epoch is reflected in the bins below.
  uint64_t epoch = 0;
  /// The routing table at the checkpoint: owner worker per bin. Restore
  /// must resume with this assignment or the bins land on the wrong
  /// workers.
  std::vector<uint32_t> assignment;
  /// Resident bins per *global* worker index (only workers this process
  /// hosts appear).
  std::map<uint32_t, BinSnapshot> workers;
  /// Harness-defined sink state (e.g. the collector map on worker 0);
  /// empty for processes that host no sink.
  std::vector<uint8_t> collector;

  MEGA_SERDE_FIELDS(CheckpointSegment, epoch, assignment, workers, collector)
};

constexpr uint64_t kSegmentMagic = 0x4d454741434b5054ULL;  // "MEGACKPT"

inline std::string SegmentPath(const std::string& dir, uint64_t epoch,
                               uint32_t process) {
  return dir + "/ckpt_e" + std::to_string(epoch) + "_p" +
         std::to_string(process) + ".bin";
}

/// Writes one segment atomically (temp file + rename). Creates `dir` if
/// missing.
inline void WriteSegment(const std::string& dir, uint32_t process,
                         const CheckpointSegment& seg) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  Writer w;
  Encode(w, kSegmentMagic);
  Encode(w, seg);
  std::vector<uint8_t> bytes = w.Take();
  const std::string final_path = SegmentPath(dir, seg.epoch, process);
  const std::string tmp_path = final_path + ".tmp";
  std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
  MEGA_CHECK(f != nullptr) << "cannot open checkpoint temp " << tmp_path;
  size_t n = std::fwrite(bytes.data(), 1, bytes.size(), f);
  MEGA_CHECK_EQ(n, bytes.size()) << "short checkpoint write " << tmp_path;
  MEGA_CHECK_EQ(std::fflush(f), 0) << "checkpoint flush " << tmp_path;
  MEGA_CHECK_EQ(std::fclose(f), 0) << "checkpoint close " << tmp_path;
  std::filesystem::rename(tmp_path, final_path, ec);
  MEGA_CHECK(!ec) << "checkpoint rename " << final_path << ": "
                  << ec.message();
}

/// Loads one segment file; throws SerdeError on truncation/corruption,
/// aborts on a wrong magic (that file is not a checkpoint at all).
inline CheckpointSegment LoadSegment(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  MEGA_CHECK(f != nullptr) << "cannot open checkpoint " << path;
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  MEGA_CHECK_GE(size, 0) << "cannot size checkpoint " << path;
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  size_t n = bytes.empty() ? 0 : std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  MEGA_CHECK_EQ(n, bytes.size()) << "short checkpoint read " << path;
  Reader r(bytes);
  uint64_t magic = Decode<uint64_t>(r);
  MEGA_CHECK_EQ(magic, kSegmentMagic) << "not a checkpoint segment: " << path;
  return Decode<CheckpointSegment>(r);
}

/// The largest epoch for which all `processes` segment files exist in
/// `dir`, or 0 if there is no complete checkpoint. (Epoch 0 is never a
/// checkpoint: it is the initial state, recoverable by just starting
/// over.)
inline uint64_t LatestCompleteEpoch(const std::string& dir,
                                    uint32_t processes) {
  std::error_code ec;
  std::map<uint64_t, uint32_t> present;  // epoch -> segment count
  for (const auto& entry :
       std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    uint64_t epoch = 0;
    uint32_t process = 0;
    if (std::sscanf(name.c_str(), "ckpt_e%" SCNu64 "_p%" SCNu32 ".bin",
                    &epoch, &process) == 2 &&
        name == SegmentPath("", epoch, process).substr(1)) {
      ++present[epoch];
    }
  }
  uint64_t best = 0;
  for (const auto& [epoch, count] : present) {
    if (count >= processes && epoch > best) best = epoch;
  }
  return best;
}

/// Loads this process's segment of the latest complete checkpoint.
/// Returns false when no complete checkpoint exists.
inline bool LoadLatestSegment(const std::string& dir, uint32_t processes,
                              uint32_t process, CheckpointSegment* out) {
  uint64_t epoch = LatestCompleteEpoch(dir, processes);
  if (epoch == 0) return false;
  *out = LoadSegment(SegmentPath(dir, epoch, process));
  MEGA_CHECK_EQ(out->epoch, epoch);
  return true;
}

/// Marks "a checkpoint capture is in progress, publishing into `dir`".
///
/// Backends with out-of-core representations (LogState) key their
/// whole-value Serialize on this: inside a scope they publish sealed
/// segment files into a subdirectory of `dir` (hard link or copy) and
/// serialize a manifest + memtable delta instead of materializing every
/// key — the point of a log-structured checkpoint. Outside any scope they
/// serialize inline, which is what migration's monolithic path needs.
///
/// The scope is process-global (bin backends are default-constructed
/// inside the dataflow, so there is no per-instance plumbing) and is only
/// read/written from the harness thread bracketing a capture plus the
/// worker threads inside it, which the capture barrier already orders.
/// LatestCompleteEpoch ignores the published subdirectories: their names
/// never match the ckpt_e*_p*.bin segment pattern.
class CheckpointDirScope {
 public:
  explicit CheckpointDirScope(std::string dir) { Current() = std::move(dir); }
  ~CheckpointDirScope() { Current().clear(); }
  CheckpointDirScope(const CheckpointDirScope&) = delete;
  CheckpointDirScope& operator=(const CheckpointDirScope&) = delete;

  static bool active() { return !Current().empty(); }
  static const std::string& dir() { return Current(); }

 private:
  static std::string& Current() {
    static std::string d;
    return d;
  }
};

}  // namespace state
}  // namespace megaphone
