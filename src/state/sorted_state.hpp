// SortedState: the ordered / log-structured state backend. Content lives
// in key order, so migration chunks are *sorted runs*: contiguous key
// ranges cut at ~max_bytes, emitted smallest key first. The receiver
// absorbs each run with an end-hinted insert — the log-structured ingest
// path: appending a sorted run to a sorted store is O(run), never a
// rehash or a sort — which keeps per-chunk install cost flat no matter
// how large the bin is. Prefer it over MapState when keys are small
// integers (categories, sellers) or when deterministic iteration and
// cheap bulk ingest matter more than O(1) point lookups.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/serde.hpp"
#include "state/migratable.hpp"

namespace megaphone {
namespace state {

template <typename K, typename V, typename Cmp = std::less<K>>
class SortedState {
 public:
  using Raw = std::map<K, V, Cmp>;
  using iterator = typename Raw::iterator;
  using const_iterator = typename Raw::const_iterator;

  // Container interface: a drop-in for the ordered map it wraps.
  V& operator[](const K& k) { return map_[k]; }
  iterator find(const K& k) { return map_.find(k); }
  const_iterator find(const K& k) const { return map_.find(k); }
  iterator begin() { return map_.begin(); }
  iterator end() { return map_.end(); }
  const_iterator begin() const { return map_.begin(); }
  const_iterator end() const { return map_.end(); }
  iterator erase(iterator it) { return map_.erase(it); }
  size_t erase(const K& k) { return map_.erase(k); }
  iterator lower_bound(const K& k) { return map_.lower_bound(k); }
  template <typename... Args>
  auto emplace(Args&&... args) {
    return map_.emplace(std::forward<Args>(args)...);
  }
  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  size_t count(const K& k) const { return map_.count(k); }
  void clear() { map_.clear(); }
  Raw& raw() { return map_; }
  const Raw& raw() const { return map_; }

  friend bool operator==(const SortedState& a, const SortedState& b) {
    return a.map_ == b.map_;
  }

  // Serde (monolithic path): identical to the wrapped map's encoding.
  void Serialize(Writer& w) const { Encode(w, map_); }
  static SortedState Deserialize(Reader& r) {
    SortedState s;
    s.map_ = Decode<Raw>(r);
    return s;
  }

  // Migratable-state chunk interface: sorted runs out, hinted ingest in.
  void EnumerateChunks(size_t max_bytes, const ChunkEmit& emit) const {
    Writer w;
    for (const auto& [k, v] : map_) {
      Encode(w, k);
      Encode(w, v);
      if (max_bytes != 0 && w.size() >= max_bytes) {
        emit(w.Take());
        w = Writer();
      }
    }
    if (w.size() > 0) emit(w.Take());
  }
  void AbsorbChunk(Reader& r) {
    while (!r.AtEnd()) {
      K k = Decode<K>(r);
      V v = Decode<V>(r);
      // Runs arrive in key order, so the end hint makes each insert O(1).
      map_.emplace_hint(map_.end(), std::move(k), std::move(v));
    }
  }
  void FinishAbsorb() {}

 private:
  Raw map_;
};

}  // namespace state
}  // namespace megaphone
