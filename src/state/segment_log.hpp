// On-disk format of the log-structured state backend (log_state.hpp):
// append-only segment files holding magic-tagged, CRC'd put/tombstone
// records, plus the manifest a checkpoint of a LogState bin serializes
// instead of a whole-value snapshot.
//
//   segment file := u64 file_magic | record*
//   record       := u32 rec_magic | u8 type | u64 key_len | u64 val_len
//                 | key bytes | val bytes | u32 crc
//   type         := 1 put | 2 tombstone (val_len must be 0)
//   crc          := FNV-1a/32 over [type .. val bytes] (same fold as the
//                   mesh frame checksum — torn writes and injected
//                   corruption, not adversaries)
//
// Key and value bytes are the serde encodings of K and V, so replaying a
// segment needs no schema beyond the backend's own type parameters. Every
// malformed input — truncation anywhere, a flipped bit, a bad magic —
// decodes to SerdeError, never UB: segment files cross process lifetimes
// (checkpoints) and machines' crash behavior, so they get the same
// hostile-input discipline as network frames.
//
// File management: segments are written through POSIX fds (append via
// write(), point lookups via pread()) so reads need no seek state and no
// stdio buffering; compaction and checkpoint copies publish files with
// the tmp+rename ritual of checkpoint.hpp, so a reader never observes a
// half-written published file.
#pragma once

#include <fcntl.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/serde.hpp"

namespace megaphone {
namespace state {

constexpr uint64_t kSegmentFileMagic = 0x31474f4c4147454dULL;  // "MEGALOG1"
constexpr uint32_t kSegmentRecordMagic = 0x4345524cu;          // "LREC"
constexpr uint8_t kSegmentRecordPut = 1;
constexpr uint8_t kSegmentRecordTombstone = 2;
/// u32 magic + u8 type + u64 key_len + u64 val_len.
constexpr size_t kSegmentRecordHeaderBytes = 21;
constexpr size_t kSegmentFileHeaderBytes = 8;

/// FNV-1a folded to 32 bits, incrementally updatable (the record decoder
/// reads fields through a Reader and cannot see them as one span).
class SegmentChecksum {
 public:
  void Update(const void* data, size_t n) {
    const auto* p = static_cast<const uint8_t*>(data);
    for (size_t i = 0; i < n; ++i) {
      h_ ^= p[i];
      h_ *= 0x100000001b3ULL;
    }
  }
  uint32_t Final() const {
    uint64_t h = h_;
    h ^= h >> 32;
    return static_cast<uint32_t>(h);
  }

 private:
  uint64_t h_ = 0xcbf29ce484222325ULL;
};

/// One decoded segment record. `key`/`value` hold the serde encodings of
/// K and V (the value is empty for tombstones).
struct SegmentRecord {
  uint8_t type = kSegmentRecordPut;
  std::vector<uint8_t> key;
  std::vector<uint8_t> value;
};

/// Total on-disk footprint of a record with the given payload sizes.
inline uint64_t SegmentRecordBytes(size_t key_len, size_t val_len) {
  return kSegmentRecordHeaderBytes + key_len + val_len + sizeof(uint32_t);
}

/// Encodes one record (header, payload, CRC) into a contiguous buffer
/// appended to `out`. Returns the offset of the value bytes relative to
/// the start of this record.
inline uint64_t AppendSegmentRecord(std::vector<uint8_t>& out, uint8_t type,
                                    const std::vector<uint8_t>& key,
                                    const std::vector<uint8_t>& value) {
  MEGA_DCHECK(type != kSegmentRecordTombstone || value.empty());
  size_t base = out.size();
  out.resize(base + SegmentRecordBytes(key.size(), value.size()));
  uint8_t* p = out.data() + base;
  std::memcpy(p, &kSegmentRecordMagic, 4);
  p[4] = type;
  uint64_t klen = key.size(), vlen = value.size();
  std::memcpy(p + 5, &klen, 8);
  std::memcpy(p + 13, &vlen, 8);
  if (klen) std::memcpy(p + 21, key.data(), klen);
  if (vlen) std::memcpy(p + 21 + klen, value.data(), vlen);
  SegmentChecksum ck;
  ck.Update(p + 4, kSegmentRecordHeaderBytes - 4 + klen + vlen);
  uint32_t crc = ck.Final();
  std::memcpy(p + 21 + klen + vlen, &crc, 4);
  return kSegmentRecordHeaderBytes + klen;
}

/// Decodes one record off `r`, validating magic, type, lengths and CRC.
/// Throws SerdeError on any malformation (a torn tail, a flipped bit).
inline SegmentRecord DecodeSegmentRecord(Reader& r) {
  uint32_t magic;
  r.ReadBytes(&magic, 4);
  if (magic != kSegmentRecordMagic) {
    throw SerdeError("segment: bad record magic");
  }
  SegmentRecord rec;
  uint64_t klen, vlen;
  r.ReadBytes(&rec.type, 1);
  r.ReadBytes(&klen, 8);
  r.ReadBytes(&vlen, 8);
  if (rec.type != kSegmentRecordPut && rec.type != kSegmentRecordTombstone) {
    throw SerdeError("segment: unknown record type");
  }
  if (rec.type == kSegmentRecordTombstone && vlen != 0) {
    throw SerdeError("segment: tombstone with value bytes");
  }
  if (klen > r.remaining() || vlen > r.remaining() - klen ||
      r.remaining() - klen - vlen < sizeof(uint32_t)) {
    throw SerdeError("segment: truncated record");
  }
  rec.key.resize(klen);
  r.ReadBytes(rec.key.data(), klen);
  rec.value.resize(vlen);
  r.ReadBytes(rec.value.data(), vlen);
  uint32_t crc;
  r.ReadBytes(&crc, 4);
  SegmentChecksum ck;
  ck.Update(&rec.type, 1);
  ck.Update(&klen, 8);
  ck.Update(&vlen, 8);
  ck.Update(rec.key.data(), klen);
  ck.Update(rec.value.data(), vlen);
  if (crc != ck.Final()) {
    throw SerdeError("segment: record checksum mismatch");
  }
  return rec;
}

/// Scans a whole segment file image, invoking `fn(record, value_off)` per
/// record with `value_off` the absolute file offset of the value bytes.
/// Throws SerdeError on a bad file magic or any malformed record —
/// rejecting a torn segment outright rather than replaying a prefix.
template <typename Fn>
void ForEachSegmentRecord(const std::vector<uint8_t>& file, Fn&& fn) {
  if (file.size() < kSegmentFileHeaderBytes) {
    throw SerdeError("segment: file shorter than header");
  }
  uint64_t magic;
  std::memcpy(&magic, file.data(), 8);
  if (magic != kSegmentFileMagic) throw SerdeError("segment: bad file magic");
  Reader r(file.data() + kSegmentFileHeaderBytes,
           file.size() - kSegmentFileHeaderBytes);
  while (!r.AtEnd()) {
    size_t start = file.size() - r.remaining();
    SegmentRecord rec = DecodeSegmentRecord(r);
    fn(rec, static_cast<uint64_t>(start + kSegmentRecordHeaderBytes +
                                  rec.key.size()));
  }
}

/// An open segment file: appends through write(), point reads through
/// pread(). Move-only; closes (but never deletes) its fd on destruction —
/// file deletion is the owner's (LogState's) business.
class SegmentFile {
 public:
  SegmentFile() = default;
  SegmentFile(const SegmentFile&) = delete;
  SegmentFile& operator=(const SegmentFile&) = delete;
  SegmentFile(SegmentFile&& o) noexcept
      : fd_(o.fd_), size_(o.size_), path_(std::move(o.path_)) {
    o.fd_ = -1;
    o.size_ = 0;
  }
  SegmentFile& operator=(SegmentFile&& o) noexcept {
    if (this != &o) {
      Close();
      fd_ = o.fd_;
      size_ = o.size_;
      path_ = std::move(o.path_);
      o.fd_ = -1;
      o.size_ = 0;
    }
    return *this;
  }
  ~SegmentFile() { Close(); }

  /// Creates (truncating) a fresh segment file and writes the file magic.
  static SegmentFile Create(const std::string& path) {
    SegmentFile f;
    f.path_ = path;
    f.fd_ = ::open(path.c_str(), O_CREAT | O_RDWR | O_TRUNC | O_CLOEXEC,
                   0644);
    MEGA_CHECK(f.fd_ >= 0) << "segment: cannot create " << path;
    uint64_t magic = kSegmentFileMagic;
    f.Append(&magic, sizeof(magic));
    return f;
  }

  /// Opens an existing segment read-only (the restore path). Throws
  /// SerdeError when the file cannot be opened — a missing checkpoint
  /// file is malformed input, not a programming error.
  static SegmentFile OpenRead(const std::string& path) {
    SegmentFile f;
    f.path_ = path;
    f.fd_ = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (f.fd_ < 0) throw SerdeError("segment: cannot open " + path);
    off_t end = ::lseek(f.fd_, 0, SEEK_END);
    MEGA_CHECK(end >= 0) << "segment: lseek failed on " << path;
    f.size_ = static_cast<uint64_t>(end);
    return f;
  }

  /// Appends raw bytes; returns the file offset they start at.
  uint64_t Append(const void* data, size_t n) {
    uint64_t at = size_;
    const auto* p = static_cast<const uint8_t*>(data);
    size_t done = 0;
    while (done < n) {
      ssize_t w = ::write(fd_, p + done, n - done);
      MEGA_CHECK(w > 0) << "segment: write failed on " << path_;
      done += static_cast<size_t>(w);
    }
    size_ += n;
    return at;
  }

  /// Reads exactly [off, off+n) into `out`. A short read means the file
  /// is torn relative to the index that produced the offset: SerdeError.
  void Pread(uint64_t off, size_t n, std::vector<uint8_t>* out) const {
    out->resize(n);
    size_t done = 0;
    while (done < n) {
      ssize_t r = ::pread(fd_, out->data() + done, n - done,
                          static_cast<off_t>(off + done));
      if (r <= 0) throw SerdeError("segment: short read from " + path_);
      done += static_cast<size_t>(r);
    }
  }

  /// Renames the file (the tmp+rename publish of a compaction output);
  /// the open fd survives the rename.
  void PublishAs(const std::string& final_path) {
    std::filesystem::rename(path_, final_path);
    path_ = final_path;
  }

  uint64_t size() const { return size_; }
  const std::string& path() const { return path_; }
  bool open() const { return fd_ >= 0; }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
  uint64_t size_ = 0;
  std::string path_;
};

/// Reads a whole file into memory; SerdeError when it cannot be read
/// (restore from a damaged checkpoint must be catchable, not fatal).
inline std::vector<uint8_t> ReadSegmentBytes(const std::string& path) {
  SegmentFile f = SegmentFile::OpenRead(path);
  std::vector<uint8_t> bytes;
  f.Pread(0, static_cast<size_t>(f.size()), &bytes);
  return bytes;
}

/// Publishes `src`'s current content at `dst`: hard link when the
/// filesystem allows (sealed segments are immutable, so sharing the inode
/// is safe), byte copy otherwise. The copy goes through tmp+rename so a
/// crash never leaves a half-written published file.
inline void LinkOrCopyFile(const std::string& src, const std::string& dst) {
  if (::link(src.c_str(), dst.c_str()) == 0) return;
  std::string tmp = dst + ".tmp";
  std::filesystem::copy_file(src, tmp,
                             std::filesystem::copy_options::overwrite_existing);
  std::filesystem::rename(tmp, dst);
}

/// What a checkpoint of a LogState bin serializes instead of a whole-value
/// snapshot: the directory its segment files were published into, the
/// published segments (id, file name, expected size — a size mismatch at
/// restore rejects a torn link target), and the encoded memtable delta.
struct LogManifest {
  struct Entry {
    uint64_t segment = 0;
    std::string file;
    uint64_t bytes = 0;
    MEGA_SERDE_FIELDS(Entry, segment, file, bytes)
  };
  std::string dir;
  std::vector<Entry> segments;
  std::vector<uint8_t> delta;
  MEGA_SERDE_FIELDS(LogManifest, dir, segments, delta)
};

}  // namespace state
}  // namespace megaphone
