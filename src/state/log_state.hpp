// LogState: the spill-to-disk, log-structured state backend.
//
// Every other backend in src/state/ is RAM-resident, so bin size is
// bounded by memory and a whole-value checkpoint materializes every key.
// LogState bounds memory instead: keys and values live in append-only
// segment files (format in segment_log.hpp), RAM holds only
//
//   * a bounded write-back memtable (key -> optional value; nullopt is a
//     tombstone) that flushes to the active segment when its encoded size
//     crosses `memtable_bytes`, and
//   * the key -> (segment, offset, length) index over everything flushed.
//
// Overwritten and deleted records become garbage accounted per segment;
// when the garbage share of the on-disk footprint crosses
// `compact_garbage_ratio` (and the footprint is worth the work),
// compaction rewrites the live records into fresh segments — published
// via tmp+rename — and unlinks the old files. There is no background
// thread: flush and compaction run at the start of mutating calls, so a
// reference returned by operator[] stays valid until the next mutating
// call on the same container (the fold loops' one-key-at-a-time usage).
//
// Migration never materializes the bin: EnumerateChunks merge-iterates
// the memtable and the index in key order and streams bounded sorted runs
// straight from the segments (pread per indexed value); AbsorbChunk
// appends the incoming run directly to a fresh segment on the
// destination, bypassing the memtable. Whole-value serde is dual-mode:
// inline (tag 0 — what monolithic migration ships) or, inside a
// CheckpointDirScope, a LogManifest (tag 1) that hard-links/copies the
// segment files into the checkpoint directory and serializes only the
// manifest + memtable delta — a checkpoint costs O(delta), not O(state).
//
// Bin backends are default-constructed deep inside the dataflow, so
// configuration is process-global: set GlobalLogStateOptions() before
// workers start (the harness entry points do). Each instance owns a
// unique directory under options.dir and removes it on destruction.
#pragma once

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/serde.hpp"
#include "state/checkpoint.hpp"
#include "state/migratable.hpp"
#include "state/segment_log.hpp"

namespace megaphone {
namespace state {

struct LogStateOptions {
  /// Root directory for segment files; empty means
  /// <system temp>/mega_logstate. Each LogState instance creates (and on
  /// destruction removes) a unique subdirectory of it.
  std::string dir;
  /// Flush the memtable once its encoded size reaches this.
  uint64_t memtable_bytes = 1ull << 20;
  /// Seal the active segment and start a new one past this size (a soft
  /// cap: one flush batch may overshoot it).
  uint64_t segment_bytes = 8ull << 20;
  /// Compact when garbage exceeds this share of the on-disk footprint...
  double compact_garbage_ratio = 0.5;
  /// ...and the footprint is at least this (tiny logs aren't worth it).
  uint64_t compact_min_bytes = 1ull << 20;
};

/// Process-global options snapshot new LogState instances copy at
/// construction. Set it on the harness thread before workers start.
inline LogStateOptions& GlobalLogStateOptions() {
  static LogStateOptions opts;
  return opts;
}

template <typename K, typename V>
class LogState {
 public:
  LogState() : opts_(GlobalLogStateOptions()) {}
  explicit LogState(LogStateOptions opts) : opts_(std::move(opts)) {}

  LogState(const LogState&) = delete;
  LogState& operator=(const LogState&) = delete;
  LogState(LogState&& o) noexcept { Adopt(std::move(o)); }
  LogState& operator=(LogState&& o) noexcept {
    if (this != &o) {
      DestroyStorage();
      Adopt(std::move(o));
    }
    return *this;
  }
  ~LogState() { DestroyStorage(); }

  /// The MapState-compatible accessor `fold` logic uses (`state[k]++`).
  /// May flush/compact first, which invalidates references returned by
  /// earlier calls — a returned reference is valid only until the next
  /// mutating call on this container.
  V& operator[](const K& k) {
    RefreshLastTouched();
    if (mem_bytes_ >= opts_.memtable_bytes) {
      Flush();
      MaybeCompact();
    }
    auto it = mem_.find(k);
    if (it == mem_.end()) {
      MemEntry e;
      auto ix = index_.find(k);
      if (ix != index_.end()) {
        e.v = LoadValue(ix->second);
      } else {
        e.v.emplace();
        ++live_;
      }
      e.sz = EntryBytes(k, e.v);
      mem_bytes_ += e.sz;
      it = mem_.emplace(k, std::move(e)).first;
    } else if (!it->second.v) {
      it->second.v.emplace();  // revive a pending tombstone
      ++live_;
    }
    last_key_ = k;
    has_last_ = true;
    return *it->second.v;
  }

  size_t erase(const K& k) {
    RefreshLastTouched();
    auto it = mem_.find(k);
    bool on_disk = index_.count(k) > 0;
    if (it != mem_.end()) {
      if (!it->second.v) return 0;  // already deleted, tombstone pending
      --live_;
      mem_bytes_ -= it->second.sz;
      if (on_disk) {
        it->second.v.reset();
        it->second.sz = EntryBytes(k, it->second.v);
        mem_bytes_ += it->second.sz;
      } else {
        mem_.erase(it);  // never flushed: no tombstone needed
      }
      return 1;
    }
    if (!on_disk) return 0;
    --live_;
    MemEntry e;  // tombstone
    e.sz = EntryBytes(k, e.v);
    mem_bytes_ += e.sz;
    mem_.emplace(k, std::move(e));
    return 1;
  }

  bool contains(const K& k) const {
    auto it = mem_.find(k);
    if (it != mem_.end()) return it->second.v.has_value();
    return index_.count(k) > 0;
  }

  /// Point lookup without pulling the key into the memtable.
  std::optional<V> Get(const K& k) const {
    auto it = mem_.find(k);
    if (it != mem_.end()) return it->second.v;
    auto ix = index_.find(k);
    if (ix == index_.end()) return std::nullopt;
    return LoadValue(ix->second);
  }

  size_t size() const { return static_cast<size_t>(live_); }
  bool empty() const { return live_ == 0; }

  // --- chunk interface (ChunkableState) --------------------------------

  /// Streams the live key range in key order as bounded Encode(k);
  /// Encode(v) runs, values pread straight from their segments — the bin
  /// is never materialized. Chunk-cut discipline matches SortedState.
  void EnumerateChunks(size_t max_bytes, const ChunkEmit& emit) const {
    Writer w;
    std::vector<uint8_t> vb;
    ForEachLive([&](const K& k, const V* mv, const ValueLoc* loc) {
      Encode(w, k);
      if (mv) {
        Encode(w, *mv);
      } else {
        ReadValueBytes(*loc, &vb);  // already the serde encoding of V
        w.WriteBytes(vb.data(), vb.size());
      }
      if (max_bytes > 0 && w.size() >= max_bytes) emit(w.Take());
    });
    if (w.size() > 0) emit(w.Take());
  }

  /// Appends one incoming sorted run straight to the active segment,
  /// bypassing the memtable — absorption is disk-bounded, not
  /// RAM-bounded. Intended for fresh (empty) destination bins, but a
  /// duplicate key is handled as an overwrite.
  void AbsorbChunk(Reader& r) {
    std::vector<uint8_t> batch;
    uint64_t seg = kNoSegment;
    uint64_t base = 0;
    while (!r.AtEnd()) {
      K k = Decode<K>(r);
      std::vector<uint8_t> vb = EncodeToBytes(Decode<V>(r));
      std::vector<uint8_t> kb = EncodeToBytes(k);
      if (seg == kNoSegment) {
        seg = ActiveSegmentId();
        base = segs_.at(seg).file.size();
      }
      uint64_t rec_start = batch.size();
      uint64_t voff = AppendSegmentRecord(batch, kSegmentRecordPut, kb, vb);
      ValueLoc loc{seg, base + rec_start + voff, vb.size(),
                   SegmentRecordBytes(kb.size(), vb.size())};
      auto [it, inserted] = index_.insert({k, loc});
      if (inserted) {
        ++live_;
      } else {
        AddGarbage(it->second);
        it->second = loc;
      }
    }
    if (seg != kNoSegment) segs_.at(seg).file.Append(batch.data(), batch.size());
  }

  void FinishAbsorb() { MaybeCompact(); }

  // --- whole-value serde -----------------------------------------------

  void Serialize(Writer& w) const {
    if (CheckpointDirScope::active() && !segs_.empty()) {
      SerializeManifest(w);
      return;
    }
    uint8_t tag = 0;
    w.WriteBytes(&tag, 1);
    Encode(w, static_cast<uint64_t>(live_));
    std::vector<uint8_t> vb;
    ForEachLive([&](const K& k, const V* mv, const ValueLoc* loc) {
      Encode(w, k);
      if (mv) {
        Encode(w, *mv);
      } else {
        ReadValueBytes(*loc, &vb);
        w.WriteBytes(vb.data(), vb.size());
      }
    });
  }

  static LogState Deserialize(Reader& r) {
    uint8_t tag;
    r.ReadBytes(&tag, 1);
    LogState s;
    if (tag == 0) {
      uint64_t n = r.ReadCount(1);
      for (uint64_t i = 0; i < n; ++i) {
        K k = Decode<K>(r);
        s[k] = Decode<V>(r);  // memtable path: flushes stay bounded
      }
    } else if (tag == 1) {
      s.RestoreFromManifest(Decode<LogManifest>(r));
    } else {
      throw SerdeError("log state: unknown serialization tag");
    }
    return s;
  }

  // --- maintenance and introspection -----------------------------------

  /// Flushes the memtable to the active segment (public for tests and for
  /// pre-checkpoint shrinking of the delta).
  void FlushNow() {
    RefreshLastTouched();
    Flush();
  }

  /// Unconditionally rewrites live records into fresh segments and drops
  /// the old files (the automatic trigger is MaybeCompact's thresholds).
  void CompactNow() {
    if (segs_.empty()) return;
    std::map<uint64_t, Seg> nsegs;
    std::map<K, ValueLoc> nindex;
    std::vector<uint8_t> batch;
    struct Out {
      const K* k;
      uint64_t rel_off;  // value offset relative to the batch start
      uint64_t len;
      uint64_t rec_bytes;
    };
    std::vector<Out> outs;
    auto seal = [&] {
      if (batch.empty()) return;
      uint64_t id = next_seg_++;
      std::string path = SegPath(id);
      Seg s;
      s.file = SegmentFile::Create(path + ".tmp");
      s.file.Append(batch.data(), batch.size());
      s.file.PublishAs(path);
      for (const Out& o : outs) {
        nindex.emplace_hint(
            nindex.end(), *o.k,
            ValueLoc{id, kSegmentFileHeaderBytes + o.rel_off, o.len,
                     o.rec_bytes});
      }
      nsegs.emplace(id, std::move(s));
      batch.clear();
      outs.clear();
    };
    std::vector<uint8_t> vb;
    for (const auto& [k, loc] : index_) {
      ReadValueBytes(loc, &vb);
      std::vector<uint8_t> kb = EncodeToBytes(k);
      uint64_t rec_start = batch.size();
      uint64_t voff = AppendSegmentRecord(batch, kSegmentRecordPut, kb, vb);
      outs.push_back(Out{&k, rec_start + voff, vb.size(),
                         SegmentRecordBytes(kb.size(), vb.size())});
      if (batch.size() >= opts_.segment_bytes) seal();
    }
    seal();
    for (auto& [id, s] : segs_) {
      std::string path = s.file.path();
      s.file.Close();
      std::error_code ec;
      std::filesystem::remove(path, ec);
    }
    segs_ = std::move(nsegs);
    index_ = std::move(nindex);
    garbage_bytes_ = 0;
    active_ = kNoSegment;  // compaction outputs are sealed
  }

  /// Full materialization — test/debug only, O(state).
  std::map<K, V> Snapshot() const {
    std::map<K, V> out;
    ForEachLive([&](const K& k, const V* mv, const ValueLoc* loc) {
      out.emplace_hint(out.end(), k, mv ? *mv : LoadValue(*loc));
    });
    return out;
  }

  size_t segment_count() const { return segs_.size(); }
  uint64_t disk_bytes() const {
    uint64_t total = 0;
    for (const auto& [id, s] : segs_) total += s.file.size();
    return total;
  }
  uint64_t garbage_bytes() const { return garbage_bytes_; }
  uint64_t memtable_bytes() const { return mem_bytes_; }
  size_t memtable_entries() const { return mem_.size(); }
  const LogStateOptions& options() const { return opts_; }

 private:
  static constexpr uint64_t kNoSegment = ~0ull;
  /// Rough per-entry memtable bookkeeping overhead (map node, optional).
  static constexpr uint64_t kMemEntryOverheadBytes = 48;

  struct ValueLoc {
    uint64_t segment = 0;
    uint64_t off = 0;       // file offset of the value bytes
    uint64_t len = 0;       // value byte length
    uint64_t rec_bytes = 0; // full record footprint (garbage accounting)
  };
  struct MemEntry {
    std::optional<V> v;  // nullopt = tombstone
    uint64_t sz = 0;     // last measured encoded footprint
  };
  struct Seg {
    SegmentFile file;
    uint64_t garbage = 0;
  };

  static uint64_t NextInstanceId() {
    static std::atomic<uint64_t> next{1};
    return next.fetch_add(1);
  }

  void Adopt(LogState&& o) {
    opts_ = std::move(o.opts_);
    dir_ = std::move(o.dir_);
    segs_ = std::move(o.segs_);
    index_ = std::move(o.index_);
    mem_ = std::move(o.mem_);
    mem_bytes_ = o.mem_bytes_;
    garbage_bytes_ = o.garbage_bytes_;
    live_ = o.live_;
    active_ = o.active_;
    next_seg_ = o.next_seg_;
    has_last_ = false;
    o.dir_.clear();
    o.segs_.clear();
    o.index_.clear();
    o.mem_.clear();
    o.mem_bytes_ = 0;
    o.garbage_bytes_ = 0;
    o.live_ = 0;
    o.active_ = kNoSegment;
    o.has_last_ = false;
  }

  void DestroyStorage() {
    segs_.clear();  // closes fds
    if (!dir_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(dir_, ec);
      dir_.clear();
    }
  }

  void EnsureDir() {
    if (!dir_.empty()) return;
    std::string root =
        opts_.dir.empty()
            ? (std::filesystem::temp_directory_path() / "mega_logstate")
                  .string()
            : opts_.dir;
    dir_ = root + "/ls_p" + std::to_string(::getpid()) + "_" +
           std::to_string(NextInstanceId());
    std::filesystem::create_directories(dir_);
  }

  std::string SegPath(uint64_t id) const {
    return dir_ + "/seg_" + std::to_string(id) + ".log";
  }

  uint64_t ActiveSegmentId() {
    if (active_ != kNoSegment) {
      if (segs_.at(active_).file.size() < opts_.segment_bytes) return active_;
      active_ = kNoSegment;  // sealed
    }
    EnsureDir();
    uint64_t id = next_seg_++;
    Seg s;
    s.file = SegmentFile::Create(SegPath(id));
    segs_.emplace(id, std::move(s));
    active_ = id;
    return active_;
  }

  void AddGarbage(const ValueLoc& loc) {
    auto it = segs_.find(loc.segment);
    if (it != segs_.end()) it->second.garbage += loc.rec_bytes;
    garbage_bytes_ += loc.rec_bytes;
  }

  static uint64_t EntryBytes(const K& k, const std::optional<V>& v) {
    Writer w;
    Encode(w, k);
    if (v) Encode(w, *v);
    return w.size() + kMemEntryOverheadBytes;
  }

  /// Values mutate through the reference operator[] returned, after the
  /// entry's footprint was measured; re-measure the previously touched
  /// entry at the start of the next access, so mem_bytes_ lags the truth
  /// by at most one entry.
  void RefreshLastTouched() {
    if (!has_last_) return;
    has_last_ = false;
    auto it = mem_.find(last_key_);
    if (it == mem_.end()) return;
    uint64_t nsz = EntryBytes(last_key_, it->second.v);
    mem_bytes_ += nsz;
    mem_bytes_ -= it->second.sz;
    it->second.sz = nsz;
  }

  void Flush() {
    has_last_ = false;
    if (mem_.empty()) {
      mem_bytes_ = 0;
      return;
    }
    uint64_t seg = kNoSegment;
    uint64_t base = 0;
    std::vector<uint8_t> batch;
    const std::vector<uint8_t> empty;
    for (const auto& [k, e] : mem_) {
      auto ix = index_.find(k);
      if (!e.v) {
        if (ix == index_.end()) continue;  // never flushed: no record needed
        std::vector<uint8_t> kb = EncodeToBytes(k);
        if (seg == kNoSegment) {
          seg = ActiveSegmentId();
          base = segs_.at(seg).file.size();
        }
        AppendSegmentRecord(batch, kSegmentRecordTombstone, kb, empty);
        AddGarbage(ix->second);
        index_.erase(ix);
        // The tombstone record itself is reclaimable dead weight too.
        uint64_t tomb = SegmentRecordBytes(kb.size(), 0);
        segs_.at(seg).garbage += tomb;
        garbage_bytes_ += tomb;
      } else {
        std::vector<uint8_t> kb = EncodeToBytes(k);
        std::vector<uint8_t> vb = EncodeToBytes(*e.v);
        if (seg == kNoSegment) {
          seg = ActiveSegmentId();
          base = segs_.at(seg).file.size();
        }
        uint64_t rec_start = batch.size();
        uint64_t voff = AppendSegmentRecord(batch, kSegmentRecordPut, kb, vb);
        ValueLoc loc{seg, base + rec_start + voff, vb.size(),
                     SegmentRecordBytes(kb.size(), vb.size())};
        if (ix != index_.end()) {
          AddGarbage(ix->second);
          ix->second = loc;
        } else {
          index_.emplace(k, loc);
        }
      }
    }
    if (seg != kNoSegment) {
      segs_.at(seg).file.Append(batch.data(), batch.size());
    }
    mem_.clear();
    mem_bytes_ = 0;
  }

  void MaybeCompact() {
    uint64_t total = disk_bytes();
    if (total < opts_.compact_min_bytes) return;
    if (static_cast<double>(garbage_bytes_) <=
        opts_.compact_garbage_ratio * static_cast<double>(total)) {
      return;
    }
    CompactNow();
  }

  V LoadValue(const ValueLoc& loc) const {
    std::vector<uint8_t> vb;
    ReadValueBytes(loc, &vb);
    return DecodeFromBytes<V>(vb);
  }

  void ReadValueBytes(const ValueLoc& loc, std::vector<uint8_t>* out) const {
    segs_.at(loc.segment).file.Pread(loc.off, static_cast<size_t>(loc.len),
                                     out);
  }

  /// Merge-iterates memtable and index in key order, the memtable
  /// shadowing the index; tombstones (and the disk entries they shadow)
  /// are skipped. `fn(key, mem_value_or_null, loc_or_null)` — exactly one
  /// of the two pointers is non-null.
  template <typename Fn>
  void ForEachLive(Fn&& fn) const {
    auto mi = mem_.begin();
    auto ii = index_.begin();
    while (mi != mem_.end() || ii != index_.end()) {
      bool take_mem;
      if (mi == mem_.end()) {
        take_mem = false;
      } else if (ii == index_.end()) {
        take_mem = true;
      } else if (mi->first < ii->first) {
        take_mem = true;
      } else if (ii->first < mi->first) {
        take_mem = false;
      } else {  // same key: the memtable entry shadows the indexed one
        if (mi->second.v) fn(mi->first, &*mi->second.v, nullptr);
        ++mi;
        ++ii;
        continue;
      }
      if (take_mem) {
        if (mi->second.v) fn(mi->first, &*mi->second.v, nullptr);
        ++mi;
      } else {
        fn(ii->first, nullptr, &ii->second);
        ++ii;
      }
    }
  }

  void SerializeManifest(Writer& w) const {
    uint8_t tag = 1;
    w.WriteBytes(&tag, 1);
    LogManifest m;
    m.dir = CheckpointDirScope::dir() + "/lsck_p" +
            std::to_string(::getpid()) + "_" +
            std::to_string(NextInstanceId());
    std::filesystem::create_directories(m.dir);
    for (const auto& [id, s] : segs_) {
      std::string name = "seg_" + std::to_string(id) + ".log";
      std::string dst = m.dir + "/" + name;
      if (id == active_) {
        // The active segment keeps growing after the checkpoint: publish
        // a point-in-time copy instead of sharing the inode.
        std::string tmp = dst + ".tmp";
        std::filesystem::copy_file(
            s.file.path(), tmp,
            std::filesystem::copy_options::overwrite_existing);
        std::filesystem::rename(tmp, dst);
      } else {
        LinkOrCopyFile(s.file.path(), dst);
      }
      m.segments.push_back(LogManifest::Entry{id, name, s.file.size()});
    }
    Writer dw;
    Encode(dw, static_cast<uint64_t>(mem_.size()));
    for (const auto& [k, e] : mem_) {
      Encode(dw, k);
      Encode(dw, e.v);  // optional<V>: nullopt is a tombstone
    }
    m.delta = dw.Take();
    Encode(w, m);
  }

  void RestoreFromManifest(const LogManifest& m) {
    EnsureDir();
    std::map<uint64_t, uint64_t> garbage;  // applied after all segs open
    for (const auto& e : m.segments) {
      std::string own = SegPath(e.segment);
      LinkOrCopyFile(m.dir + "/" + e.file, own);
      SegmentFile f = SegmentFile::OpenRead(own);
      if (f.size() != e.bytes) {
        throw SerdeError("log state: torn segment " + e.file);
      }
      std::vector<uint8_t> bytes;
      f.Pread(0, static_cast<size_t>(f.size()), &bytes);
      ForEachSegmentRecord(bytes, [&](const SegmentRecord& rec,
                                      uint64_t voff) {
        K k = DecodeFromBytes<K>(rec.key);
        if (rec.type == kSegmentRecordPut) {
          ValueLoc loc{e.segment, voff, rec.value.size(),
                       SegmentRecordBytes(rec.key.size(), rec.value.size())};
          auto [it, inserted] = index_.insert({std::move(k), loc});
          if (!inserted) {
            garbage[it->second.segment] += it->second.rec_bytes;
            garbage_bytes_ += it->second.rec_bytes;
            it->second = loc;
          }
        } else {
          uint64_t tomb = SegmentRecordBytes(rec.key.size(), 0);
          garbage[e.segment] += tomb;
          garbage_bytes_ += tomb;
          auto it = index_.find(k);
          if (it != index_.end()) {
            garbage[it->second.segment] += it->second.rec_bytes;
            garbage_bytes_ += it->second.rec_bytes;
            index_.erase(it);
          }
        }
      });
      Seg s;
      s.file = std::move(f);
      segs_.emplace(e.segment, std::move(s));
      next_seg_ = std::max(next_seg_, e.segment + 1);
    }
    for (const auto& [id, g] : garbage) {
      auto it = segs_.find(id);
      if (it != segs_.end()) it->second.garbage += g;
    }
    live_ = index_.size();
    active_ = kNoSegment;  // restored segments are sealed (read-only fds)
    Reader dr(m.delta);
    uint64_t n = dr.ReadCount(1);
    for (uint64_t i = 0; i < n; ++i) {
      K k = Decode<K>(dr);
      std::optional<V> v = Decode<std::optional<V>>(dr);
      bool on_disk = index_.count(k) > 0;
      if (v && !on_disk) ++live_;
      if (!v && on_disk) --live_;
      if (!v && !on_disk) continue;  // tombstone for an unknown key
      MemEntry e;
      e.v = std::move(v);
      e.sz = EntryBytes(k, e.v);
      mem_bytes_ += e.sz;
      mem_.emplace(std::move(k), std::move(e));
    }
    if (!dr.AtEnd()) throw SerdeError("log state: trailing delta bytes");
  }

  LogStateOptions opts_;
  std::string dir_;  // empty until the first spill
  std::map<uint64_t, Seg> segs_;
  std::map<K, ValueLoc> index_;
  std::map<K, MemEntry> mem_;
  uint64_t mem_bytes_ = 0;
  uint64_t garbage_bytes_ = 0;
  uint64_t live_ = 0;
  uint64_t active_ = kNoSegment;
  uint64_t next_seg_ = 1;
  bool has_last_ = false;
  K last_key_{};
};

}  // namespace state
}  // namespace megaphone
