// DenseState: the dense-vector state backend behind the paper's "key
// count" workloads — per-slot values indexed by the key's low bits.
// Migration chunks are offset-tagged slices ([u64 offset][values...]), so
// a multi-megabyte bin ships as many bounded frames and the receiver
// reassembles in place with no decode spike at the end.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/serde.hpp"
#include "state/migratable.hpp"

namespace megaphone {
namespace state {

template <typename V>
class DenseState {
 public:
  using Raw = std::vector<V>;

  // Container interface: a drop-in for the vector it wraps. operator[]
  // stays a bare indexed load — this backend sits on the key-count hot
  // path.
  V& operator[](size_t i) { return values_[i]; }
  const V& operator[](size_t i) const { return values_[i]; }
  void resize(size_t n) { values_.resize(n); }
  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  V* data() { return values_.data(); }
  const V* data() const { return values_.data(); }
  void clear() { values_.clear(); }
  Raw& raw() { return values_; }
  const Raw& raw() const { return values_; }

  friend bool operator==(const DenseState& a, const DenseState& b) {
    return a.values_ == b.values_;
  }

  // Serde (monolithic path): identical to the wrapped vector's encoding.
  void Serialize(Writer& w) const { Encode(w, values_); }
  static DenseState Deserialize(Reader& r) {
    DenseState s;
    s.values_ = Decode<Raw>(r);
    return s;
  }

  // Migratable-state chunk interface: [u64 offset][entries to end].
  void EnumerateChunks(size_t max_bytes, const ChunkEmit& emit) const {
    size_t off = 0;
    while (off < values_.size()) {
      Writer w;
      uint64_t off64 = off;
      w.WriteBytes(&off64, sizeof(off64));
      while (off < values_.size()) {
        Encode(w, values_[off]);
        ++off;
        if (max_bytes != 0 && w.size() >= max_bytes) break;
      }
      emit(w.Take());
    }
  }
  void AbsorbChunk(Reader& r) {
    uint64_t off;
    r.ReadBytes(&off, sizeof(off));
    size_t idx = static_cast<size_t>(off);
    // Chunks arrive in offset order; a gap means a corrupt frame.
    if (idx > values_.size()) {
      throw SerdeError("dense state chunk leaves a gap");
    }
    while (!r.AtEnd()) {
      V v = Decode<V>(r);
      if (idx < values_.size()) {
        values_[idx] = std::move(v);
      } else {
        values_.push_back(std::move(v));  // geometric growth amortizes
      }
      ++idx;
    }
  }
  void FinishAbsorb() {}

 private:
  Raw values_;
};

}  // namespace state
}  // namespace megaphone
