// Umbrella header for the migratable-state layer, plus the backend
// selection trait the bin layer uses: BackendFor<S> maps a user-declared
// state type onto the backend that will hold it inside a bin.
//
//   * a type satisfying ChunkableState (the backends here, or a user
//     type implementing the interface) is used as-is;
//   * std::unordered_map / std::map / std::vector are transparently
//     upgraded to MapState / SortedState / DenseState — operators keep
//     their declared state type in `fold`, but migration becomes chunked
//     and incrementally absorbable;
//   * anything else serde-able falls back to BlobState, which keeps wire
//     frames bounded but defers installation to the last chunk.
#pragma once

#include <map>
#include <unordered_map>
#include <vector>

#include "state/dense_state.hpp"   // IWYU pragma: export
#include "state/log_state.hpp"     // IWYU pragma: export
#include "state/map_state.hpp"     // IWYU pragma: export
#include "state/migratable.hpp"    // IWYU pragma: export
#include "state/sorted_state.hpp"  // IWYU pragma: export

namespace megaphone {
namespace state {

/// Maps a user-declared state type to its bin backend and exposes the
/// user-visible reference `fold` receives (the declared type itself).
template <typename S>
struct BackendSel {
  using type = BlobState<S>;
  static S& user(type& b) { return b.value; }
};

template <ChunkableState S>
struct BackendSel<S> {
  using type = S;
  static S& user(S& s) { return s; }
};

template <typename K, typename V, typename H, typename E>
struct BackendSel<std::unordered_map<K, V, H, E>> {
  using type = MapState<K, V, H, E>;
  static std::unordered_map<K, V, H, E>& user(type& m) { return m.raw(); }
};

template <typename K, typename V, typename C>
struct BackendSel<std::map<K, V, C>> {
  using type = SortedState<K, V, C>;
  static std::map<K, V, C>& user(type& m) { return m.raw(); }
};

template <typename V>
struct BackendSel<std::vector<V>> {
  using type = DenseState<V>;
  static std::vector<V>& user(type& d) { return d.raw(); }
};

template <typename S>
using BackendFor = typename BackendSel<S>::type;

static_assert(ChunkableState<MapState<uint64_t, uint64_t>>);
static_assert(ChunkableState<SortedState<uint64_t, uint64_t>>);
static_assert(ChunkableState<DenseState<uint64_t>>);
static_assert(ChunkableState<BlobState<uint64_t>>);
static_assert(ChunkableState<LogState<uint64_t, uint64_t>>);

}  // namespace state
}  // namespace megaphone
