// Compiled standalone with -Wall -Wextra -Werror (see CMakeLists.txt) so
// any new warning introduced in the src/net/ header set fails the build,
// even though the headers are otherwise only pulled in by test and bench
// binaries with laxer warning settings.
#include "net/net.hpp"

namespace megaphone {
namespace net {

// Anchor so the object file is never empty.
int NetHeadersWarningCheckAnchor() { return 0; }

}  // namespace net
}  // namespace megaphone
