// Wire format of the process mesh: length-prefixed, checksummed frames.
//
//   frame     := header payload
//   header    := u32 kind | u32 target | u64 key | u64 payload_len
//              | u64 seq | u32 payload_crc | u32 header_crc
//   kind      := 1 data | 2 progress | 3 goodbye | 4 heartbeat
//                | 5 ack | 6 nack
//   key       := (dataflow_id << 32) | channel_id   for data frames
//                dataflow_id                        for progress frames
//                final seq (exclusive)              for goodbye frames
//                cumulative ack (next expected)     for ack frames
//                first missing seq                  for nack frames
//   target    := destination global worker index    (data frames only)
//   seq       := per-link sequence number of data/progress frames, from 1;
//                0 on unsequenced frames (goodbye/heartbeat/ack/nack)
//   payload   := serde bytes (bundle: T time, vector<D> records;
//                progress: u64 n, n * Change{u32 loc, T time, i64 delta};
//                heartbeat: HeartbeatBody)
//
// The two checksums split the failure modes: a bad header_crc means the
// stream itself is unframeable (desync or truncation) and the peer is
// declared down; a bad payload_crc on a sequenced frame is recoverable —
// the receiver discards the frame and nacks, and the sender retransmits
// from its go-back-N buffer.
//
// Header fields are fixed-width host-endian integers: every process of a
// run executes the same binary on the same machine (the self-forking
// launcher), which is the deployment this reproduction models. A
// connection opens with a handshake (magic, protocol version, sender's
// process index) so misconfigured meshes fail loudly instead of
// misrouting frames.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/check.hpp"
#include "common/serde.hpp"

namespace megaphone {
namespace net {

enum class FrameKind : uint32_t {
  kData = 1,
  kProgress = 2,
  kGoodbye = 3,
  kHeartbeat = 4,
  kAck = 5,
  kNack = 6,
};

/// Only data and progress frames carry sequence numbers and flow through
/// the retransmit buffer; protocol frames are idempotent or cumulative.
inline bool IsSequencedKind(uint32_t kind) {
  return kind == static_cast<uint32_t>(FrameKind::kData) ||
         kind == static_cast<uint32_t>(FrameKind::kProgress);
}

struct FrameHeader {
  uint32_t kind = 0;
  uint32_t target = 0;
  uint64_t key = 0;
  uint64_t payload_len = 0;
  uint64_t seq = 0;
  uint32_t payload_crc = 0;
};

constexpr size_t kFrameHeaderBytes = 40;
constexpr size_t kFrameHeaderCrcOffset = 36;
/// Upper bound on a single frame payload: far above any real bundle or
/// progress batch (the largest legitimate payloads are migrating bins),
/// far below what a corrupted length prefix could use to exhaust memory.
constexpr uint64_t kMaxFramePayload = 1ull << 30;

/// FNV-1a folded to 32 bits. Not cryptographic — it guards against
/// injected corruption in tests and torn writes, not adversaries.
inline uint32_t FrameChecksum(const uint8_t* data, size_t n) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  h ^= h >> 32;
  return static_cast<uint32_t>(h);
}

inline void EncodeFrameHeader(uint8_t* out, const FrameHeader& h) {
  std::memcpy(out, &h.kind, 4);
  std::memcpy(out + 4, &h.target, 4);
  std::memcpy(out + 8, &h.key, 8);
  std::memcpy(out + 16, &h.payload_len, 8);
  std::memcpy(out + 24, &h.seq, 8);
  std::memcpy(out + 32, &h.payload_crc, 4);
  uint32_t crc = FrameChecksum(out, kFrameHeaderCrcOffset);
  std::memcpy(out + kFrameHeaderCrcOffset, &crc, 4);
}

/// Graceful decode: returns false when the header checksum does not match
/// (the stream is desynced or corrupted beyond frame recovery).
inline bool TryDecodeFrameHeader(const uint8_t* in, FrameHeader* h) {
  uint32_t crc = 0;
  std::memcpy(&crc, in + kFrameHeaderCrcOffset, 4);
  if (crc != FrameChecksum(in, kFrameHeaderCrcOffset)) return false;
  std::memcpy(&h->kind, in, 4);
  std::memcpy(&h->target, in + 4, 4);
  std::memcpy(&h->key, in + 8, 8);
  std::memcpy(&h->payload_len, in + 16, 8);
  std::memcpy(&h->seq, in + 24, 8);
  std::memcpy(&h->payload_crc, in + 32, 4);
  return true;
}

inline FrameHeader DecodeFrameHeader(const uint8_t* in) {
  FrameHeader h;
  MEGA_CHECK(TryDecodeFrameHeader(in, &h)) << "frame header checksum mismatch";
  return h;
}

/// Builds a ready-to-write frame (header + payload in one buffer).
inline std::vector<uint8_t> BuildFrame(FrameKind kind, uint32_t target,
                                       uint64_t key,
                                       const std::vector<uint8_t>& payload,
                                       uint64_t seq = 0) {
  FrameHeader h;
  h.kind = static_cast<uint32_t>(kind);
  h.target = target;
  h.key = key;
  h.payload_len = payload.size();
  h.seq = seq;
  h.payload_crc = FrameChecksum(payload.data(), payload.size());
  std::vector<uint8_t> frame(kFrameHeaderBytes + payload.size());
  EncodeFrameHeader(frame.data(), h);
  if (!payload.empty()) {
    std::memcpy(frame.data() + kFrameHeaderBytes, payload.data(),
                payload.size());
  }
  return frame;
}

inline uint64_t DataKey(uint64_t dataflow_id, uint64_t channel_id) {
  MEGA_DCHECK(dataflow_id < (1ull << 32) && channel_id < (1ull << 32));
  return (dataflow_id << 32) | channel_id;
}

/// Payload of a kHeartbeat frame. Heartbeats double as keepalive and as
/// the idle-path acknowledgement carrier: `next_seq` lets the receiver
/// detect a tail gap (frames written but lost with no later traffic to
/// reveal them), `ack` prunes the sender's retransmit buffer.
struct HeartbeatBody {
  /// Sender has written every sequenced frame with seq < next_seq.
  uint64_t next_seq = 1;
  /// Sender has delivered every incoming sequenced frame with seq < ack.
  uint64_t ack = 1;
  MEGA_SERDE_FIELDS(HeartbeatBody, next_seq, ack)
};

// --- connection handshake -------------------------------------------------

constexpr uint64_t kHandshakeMagic = 0x4d45474150484f4eULL;  // "MEGAPHON"
constexpr uint32_t kProtocolVersion = 2;
constexpr size_t kHandshakeBytes = 16;

struct Handshake {
  uint64_t magic = kHandshakeMagic;
  uint32_t version = kProtocolVersion;
  uint32_t process = 0;
};

inline void EncodeHandshake(uint8_t* out, const Handshake& h) {
  std::memcpy(out, &h.magic, 8);
  std::memcpy(out + 8, &h.version, 4);
  std::memcpy(out + 12, &h.process, 4);
}

inline Handshake DecodeHandshake(const uint8_t* in) {
  Handshake h;
  std::memcpy(&h.magic, in, 8);
  std::memcpy(&h.version, in + 8, 4);
  std::memcpy(&h.process, in + 12, 4);
  return h;
}

}  // namespace net
}  // namespace megaphone
