// Wire format of the process mesh: length-prefixed frames.
//
//   frame     := header payload
//   header    := u32 kind | u32 target | u64 key | u64 payload_len
//   kind      := 1 data | 2 progress | 3 goodbye
//   key       := (dataflow_id << 32) | channel_id   for data frames
//                dataflow_id                        for progress frames
//   target    := destination global worker index    (data frames only)
//   payload   := serde bytes (bundle: T time, vector<D> records;
//                progress: u64 n, n * Change{u32 loc, T time, i64 delta})
//
// Header fields are fixed-width host-endian integers: every process of a
// run executes the same binary on the same machine (the self-forking
// launcher), which is the deployment this reproduction models. A
// connection opens with a handshake (magic, protocol version, sender's
// process index) so misconfigured meshes fail loudly instead of
// misrouting frames.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/check.hpp"

namespace megaphone {
namespace net {

enum class FrameKind : uint32_t {
  kData = 1,
  kProgress = 2,
  kGoodbye = 3,
};

struct FrameHeader {
  uint32_t kind = 0;
  uint32_t target = 0;
  uint64_t key = 0;
  uint64_t payload_len = 0;
};

constexpr size_t kFrameHeaderBytes = 24;
/// Upper bound on a single frame payload: far above any real bundle or
/// progress batch (the largest legitimate payloads are migrating bins),
/// far below what a corrupted length prefix could use to exhaust memory.
constexpr uint64_t kMaxFramePayload = 1ull << 30;

inline void EncodeFrameHeader(uint8_t* out, const FrameHeader& h) {
  std::memcpy(out, &h.kind, 4);
  std::memcpy(out + 4, &h.target, 4);
  std::memcpy(out + 8, &h.key, 8);
  std::memcpy(out + 16, &h.payload_len, 8);
}

inline FrameHeader DecodeFrameHeader(const uint8_t* in) {
  FrameHeader h;
  std::memcpy(&h.kind, in, 4);
  std::memcpy(&h.target, in + 4, 4);
  std::memcpy(&h.key, in + 8, 8);
  std::memcpy(&h.payload_len, in + 16, 8);
  return h;
}

/// Builds a ready-to-write frame (header + payload in one buffer).
inline std::vector<uint8_t> BuildFrame(FrameKind kind, uint32_t target,
                                       uint64_t key,
                                       const std::vector<uint8_t>& payload) {
  FrameHeader h;
  h.kind = static_cast<uint32_t>(kind);
  h.target = target;
  h.key = key;
  h.payload_len = payload.size();
  std::vector<uint8_t> frame(kFrameHeaderBytes + payload.size());
  EncodeFrameHeader(frame.data(), h);
  if (!payload.empty()) {
    std::memcpy(frame.data() + kFrameHeaderBytes, payload.data(),
                payload.size());
  }
  return frame;
}

inline uint64_t DataKey(uint64_t dataflow_id, uint64_t channel_id) {
  MEGA_DCHECK(dataflow_id < (1ull << 32) && channel_id < (1ull << 32));
  return (dataflow_id << 32) | channel_id;
}

// --- connection handshake -------------------------------------------------

constexpr uint64_t kHandshakeMagic = 0x4d45474150484f4eULL;  // "MEGAPHON"
constexpr uint32_t kProtocolVersion = 1;
constexpr size_t kHandshakeBytes = 16;

struct Handshake {
  uint64_t magic = kHandshakeMagic;
  uint32_t version = kProtocolVersion;
  uint32_t process = 0;
};

inline void EncodeHandshake(uint8_t* out, const Handshake& h) {
  std::memcpy(out, &h.magic, 8);
  std::memcpy(out + 8, &h.version, 4);
  std::memcpy(out + 12, &h.process, 4);
}

inline Handshake DecodeHandshake(const uint8_t* in) {
  Handshake h;
  std::memcpy(&h.magic, in, 8);
  std::memcpy(&h.version, in + 8, 4);
  std::memcpy(&h.process, in + 12, 4);
  return h;
}

}  // namespace net
}  // namespace megaphone
