// Thin POSIX TCP helpers for the process mesh: loopback/NIC listeners,
// connect-with-retry, and full-buffer reads/writes over nonblocking
// sockets (poll-driven, with a cooperative stop flag so shutdown never
// hangs on a dead peer).
#pragma once

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/check.hpp"
#include "common/time_util.hpp"

namespace megaphone {
namespace net {

struct Endpoint {
  std::string host;
  uint16_t port = 0;
};

/// Parses "host:port"; fails loudly on a malformed or out-of-range port
/// (silently mapping it to 0 would mean "kernel-assigned" and turn a typo
/// into a connect-timeout mystery).
inline Endpoint ParseEndpoint(const std::string& s) {
  auto colon = s.rfind(':');
  MEGA_CHECK(colon != std::string::npos) << "endpoint must be host:port: "
                                         << s;
  Endpoint ep;
  ep.host = s.substr(0, colon);
  const char* port_str = s.c_str() + colon + 1;
  char* end = nullptr;
  unsigned long port = std::strtoul(port_str, &end, 10);
  MEGA_CHECK(end != port_str && *end == '\0' && port > 0 && port <= 65535)
      << "bad port in endpoint: " << s;
  ep.port = static_cast<uint16_t>(port);
  return ep;
}

inline void SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  MEGA_CHECK_GE(flags, 0) << "fcntl(F_GETFL): " << std::strerror(errno);
  MEGA_CHECK_GE(::fcntl(fd, F_SETFL, flags | O_NONBLOCK), 0)
      << "fcntl(F_SETFL): " << std::strerror(errno);
}

inline void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

inline sockaddr_in MakeAddr(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  MEGA_CHECK_EQ(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr), 1)
      << "bad IPv4 address: " << host;
  return addr;
}

/// Binds a listening socket on host:port (port 0 = kernel-assigned) and
/// returns its fd. `backlog` should cover every peer that may connect.
inline int BindListener(const std::string& host, uint16_t port,
                        int backlog = 64) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  MEGA_CHECK_GE(fd, 0) << "socket: " << std::strerror(errno);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = MakeAddr(host, port);
  MEGA_CHECK_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
                0)
      << "bind " << host << ":" << port << ": " << std::strerror(errno);
  MEGA_CHECK_EQ(::listen(fd, backlog), 0)
      << "listen: " << std::strerror(errno);
  return fd;
}

/// The port a listener is actually bound to (resolves port 0).
inline uint16_t ListenerPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  MEGA_CHECK_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len),
                0)
      << "getsockname: " << std::strerror(errno);
  return ntohs(addr.sin_port);
}

/// Connects to `ep`, retrying (the peer may not be listening yet) until
/// `timeout_ms` elapses. Returns a connected, nonblocking, NODELAY fd.
inline int ConnectWithRetry(const Endpoint& ep, uint64_t timeout_ms) {
  uint64_t deadline = NowNanos() + timeout_ms * 1'000'000;
  sockaddr_in addr = MakeAddr(ep.host, ep.port);
  for (;;) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    MEGA_CHECK_GE(fd, 0) << "socket: " << std::strerror(errno);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      SetNonBlocking(fd);
      SetNoDelay(fd);
      return fd;
    }
    ::close(fd);
    MEGA_CHECK(NowNanos() < deadline)
        << "connect to " << ep.host << ":" << ep.port
        << " timed out: " << std::strerror(errno);
    ::usleep(2000);
  }
}

/// Accepts one connection, polling until `timeout_ms` elapses. Returns a
/// nonblocking, NODELAY fd.
inline int AcceptWithTimeout(int listen_fd, uint64_t timeout_ms) {
  uint64_t deadline = NowNanos() + timeout_ms * 1'000'000;
  for (;;) {
    pollfd p{listen_fd, POLLIN, 0};
    int rc = ::poll(&p, 1, 100);
    if (rc > 0) {
      int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd >= 0) {
        SetNonBlocking(fd);
        SetNoDelay(fd);
        return fd;
      }
      MEGA_CHECK(errno == EAGAIN || errno == EWOULDBLOCK ||
                 errno == ECONNABORTED || errno == EINTR)
          << "accept: " << std::strerror(errno);
    }
    MEGA_CHECK(NowNanos() < deadline) << "accept timed out";
  }
}

/// Writes a two-part (header, payload) message fully, using gathered
/// sendmsg so the frame needs no contiguous copy and small frames still
/// leave as one segment. Returns false on error, close, or stop.
inline bool WritevFull(int fd, const uint8_t* a, size_t an, const uint8_t* b,
                       size_t bn, const std::atomic<bool>& stop) {
  size_t off = 0;
  const size_t total = an + bn;
  while (off < total) {
    iovec iov[2];
    int iovcnt = 0;
    if (off < an) {
      iov[iovcnt++] = {const_cast<uint8_t*>(a) + off, an - off};
      if (bn > 0) iov[iovcnt++] = {const_cast<uint8_t*>(b), bn};
    } else {
      iov[iovcnt++] = {const_cast<uint8_t*>(b) + (off - an), bn - (off - an)};
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<size_t>(iovcnt);
    ssize_t w = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (w > 0) {
      off += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (stop.load(std::memory_order_relaxed)) return false;
      pollfd p{fd, POLLOUT, 0};
      ::poll(&p, 1, 100);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return false;  // error or closed
  }
  return true;
}

/// Writes all `n` bytes to a nonblocking fd, polling for writability.
/// Returns false on error, peer close, or `stop` becoming true.
inline bool WriteFull(int fd, const uint8_t* data, size_t n,
                      const std::atomic<bool>& stop) {
  size_t off = 0;
  while (off < n) {
    ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w > 0) {
      off += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (stop.load(std::memory_order_relaxed)) return false;
      pollfd p{fd, POLLOUT, 0};
      ::poll(&p, 1, 100);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return false;  // error or closed
  }
  return true;
}

/// Reads exactly `n` bytes from a nonblocking fd, polling for
/// readability. Returns false on EOF, error, or `stop` becoming true —
/// `partial` (if nonnull) reports whether any bytes had been consumed.
inline bool ReadFull(int fd, uint8_t* data, size_t n,
                     const std::atomic<bool>& stop,
                     bool* partial = nullptr) {
  size_t off = 0;
  if (partial != nullptr) *partial = false;
  while (off < n) {
    ssize_t r = ::recv(fd, data + off, n - off, 0);
    if (r > 0) {
      off += static_cast<size_t>(r);
      if (partial != nullptr) *partial = true;
      continue;
    }
    if (r == 0) return false;  // EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (stop.load(std::memory_order_relaxed)) return false;
      pollfd p{fd, POLLIN, 0};
      ::poll(&p, 1, 100);
      continue;
    }
    if (errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace net
}  // namespace megaphone
