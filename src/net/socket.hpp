// Thin POSIX TCP helpers for the process mesh: loopback/NIC listeners,
// connect-with-retry, and full-buffer reads/writes over nonblocking
// sockets (poll-driven, with a cooperative stop flag so shutdown never
// hangs on a dead peer).
#pragma once

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/time_util.hpp"

namespace megaphone {
namespace net {

/// Exponential backoff with jitter for connect/handshake retry loops.
/// Sleeps between cur/2 and cur, then doubles cur up to the cap — the
/// jitter desynchronizes the P processes of a mesh hammering the same
/// not-yet-listening endpoint (ISSUE 6 mesh hardening).
class RetryBackoff {
 public:
  explicit RetryBackoff(uint64_t base_us = 1'000, uint64_t cap_us = 100'000)
      : rng_(NowNanos() ^ 0x6261636b6f6666ULL),
        cur_us_(base_us),
        cap_us_(cap_us) {}

  void Sleep() {
    uint64_t half = cur_us_ / 2;
    uint64_t us = half + rng_.NextBelow(half + 1);
    ::usleep(static_cast<useconds_t>(us));
    cur_us_ = std::min<uint64_t>(cur_us_ * 2, cap_us_);
  }

 private:
  Xoshiro256 rng_;
  uint64_t cur_us_;
  uint64_t cap_us_;
};

struct Endpoint {
  std::string host;
  uint16_t port = 0;
};

/// Parses "host:port"; fails loudly on a malformed or out-of-range port
/// (silently mapping it to 0 would mean "kernel-assigned" and turn a typo
/// into a connect-timeout mystery).
inline Endpoint ParseEndpoint(const std::string& s) {
  auto colon = s.rfind(':');
  MEGA_CHECK(colon != std::string::npos) << "endpoint must be host:port: "
                                         << s;
  Endpoint ep;
  ep.host = s.substr(0, colon);
  const char* port_str = s.c_str() + colon + 1;
  char* end = nullptr;
  unsigned long port = std::strtoul(port_str, &end, 10);
  MEGA_CHECK(end != port_str && *end == '\0' && port > 0 && port <= 65535)
      << "bad port in endpoint: " << s;
  ep.port = static_cast<uint16_t>(port);
  return ep;
}

inline void SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  MEGA_CHECK_GE(flags, 0) << "fcntl(F_GETFL): " << std::strerror(errno);
  MEGA_CHECK_GE(::fcntl(fd, F_SETFL, flags | O_NONBLOCK), 0)
      << "fcntl(F_SETFL): " << std::strerror(errno);
}

inline void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

inline sockaddr_in MakeAddr(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  MEGA_CHECK_EQ(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr), 1)
      << "bad IPv4 address: " << host;
  return addr;
}

/// Binds a listening socket on host:port (port 0 = kernel-assigned) and
/// returns its fd. `backlog` should cover every peer that may connect.
inline int BindListener(const std::string& host, uint16_t port,
                        int backlog = 64) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  MEGA_CHECK_GE(fd, 0) << "socket: " << std::strerror(errno);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = MakeAddr(host, port);
  MEGA_CHECK_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
                0)
      << "bind " << host << ":" << port << ": " << std::strerror(errno);
  MEGA_CHECK_EQ(::listen(fd, backlog), 0)
      << "listen: " << std::strerror(errno);
  return fd;
}

/// The port a listener is actually bound to (resolves port 0).
inline uint16_t ListenerPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  MEGA_CHECK_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len),
                0)
      << "getsockname: " << std::strerror(errno);
  return ntohs(addr.sin_port);
}

/// Connects to `ep`, retrying (the peer may not be listening yet) until
/// `timeout_ms` elapses. Returns a connected, nonblocking, NODELAY fd.
inline int ConnectWithRetry(const Endpoint& ep, uint64_t timeout_ms) {
  uint64_t deadline = NowNanos() + timeout_ms * 1'000'000;
  sockaddr_in addr = MakeAddr(ep.host, ep.port);
  RetryBackoff backoff;
  for (;;) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    MEGA_CHECK_GE(fd, 0) << "socket: " << std::strerror(errno);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      SetNonBlocking(fd);
      SetNoDelay(fd);
      return fd;
    }
    ::close(fd);
    MEGA_CHECK(NowNanos() < deadline)
        << "connect to " << ep.host << ":" << ep.port
        << " timed out: " << std::strerror(errno);
    backoff.Sleep();
  }
}

/// Accepts one connection, polling until `timeout_ms` elapses. Returns a
/// nonblocking, NODELAY fd.
inline int AcceptWithTimeout(int listen_fd, uint64_t timeout_ms) {
  uint64_t deadline = NowNanos() + timeout_ms * 1'000'000;
  for (;;) {
    pollfd p{listen_fd, POLLIN, 0};
    int rc = ::poll(&p, 1, 100);
    if (rc > 0) {
      int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd >= 0) {
        SetNonBlocking(fd);
        SetNoDelay(fd);
        return fd;
      }
      MEGA_CHECK(errno == EAGAIN || errno == EWOULDBLOCK ||
                 errno == ECONNABORTED || errno == EINTR)
          << "accept: " << std::strerror(errno);
    }
    MEGA_CHECK(NowNanos() < deadline) << "accept timed out";
  }
}

/// Writes a two-part (header, payload) message fully, using gathered
/// sendmsg so the frame needs no contiguous copy and small frames still
/// leave as one segment. Returns false on error, close, or stop.
inline bool WritevFull(int fd, const uint8_t* a, size_t an, const uint8_t* b,
                       size_t bn, const std::atomic<bool>& stop) {
  size_t off = 0;
  const size_t total = an + bn;
  while (off < total) {
    iovec iov[2];
    int iovcnt = 0;
    if (off < an) {
      iov[iovcnt++] = {const_cast<uint8_t*>(a) + off, an - off};
      if (bn > 0) iov[iovcnt++] = {const_cast<uint8_t*>(b), bn};
    } else {
      iov[iovcnt++] = {const_cast<uint8_t*>(b) + (off - an), bn - (off - an)};
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<size_t>(iovcnt);
    ssize_t w = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (w > 0) {
      off += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (stop.load(std::memory_order_relaxed)) return false;
      pollfd p{fd, POLLOUT, 0};
      ::poll(&p, 1, 100);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return false;  // error or closed
  }
  return true;
}

/// Writes all `n` bytes to a nonblocking fd, polling for writability.
/// Returns false on error, peer close, or `stop` becoming true.
inline bool WriteFull(int fd, const uint8_t* data, size_t n,
                      const std::atomic<bool>& stop) {
  size_t off = 0;
  while (off < n) {
    ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w > 0) {
      off += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (stop.load(std::memory_order_relaxed)) return false;
      pollfd p{fd, POLLOUT, 0};
      ::poll(&p, 1, 100);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return false;  // error or closed
  }
  return true;
}

/// Reads exactly `n` bytes from a nonblocking fd, polling for
/// readability. Returns false on EOF, error, or `stop` becoming true —
/// `partial` (if nonnull) reports whether any bytes had been consumed.
inline bool ReadFull(int fd, uint8_t* data, size_t n,
                     const std::atomic<bool>& stop,
                     bool* partial = nullptr) {
  size_t off = 0;
  if (partial != nullptr) *partial = false;
  while (off < n) {
    ssize_t r = ::recv(fd, data + off, n - off, 0);
    if (r > 0) {
      off += static_cast<size_t>(r);
      if (partial != nullptr) *partial = true;
      continue;
    }
    if (r == 0) return false;  // EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (stop.load(std::memory_order_relaxed)) return false;
      pollfd p{fd, POLLIN, 0};
      ::poll(&p, 1, 100);
      continue;
    }
    if (errno == EINTR) continue;
    return false;
  }
  return true;
}

/// Outcome of ReadFullIdle, splitting the failure modes the mesh treats
/// differently: orderly close vs stop-requested vs peer-silence deadline.
enum class ReadStatus {
  kOk,
  kClosed,       // EOF or socket error
  kStop,         // cooperative stop flag observed
  kIdleTimeout,  // no bytes for longer than the idle budget
};

/// Like ReadFull, but fails with kIdleTimeout when the link has been
/// silent (zero bytes received) for more than `idle_ns`. Silence is
/// measured from `*last_rx_ns`, which the caller owns and which is
/// refreshed on every byte received — so the budget spans calls and a
/// heartbeat on any frame boundary keeps the link alive. `idle_ns == 0`
/// disables the deadline.
inline ReadStatus ReadFullIdle(int fd, uint8_t* data, size_t n,
                               const std::atomic<bool>& stop,
                               uint64_t idle_ns, uint64_t* last_rx_ns,
                               bool* partial = nullptr) {
  size_t off = 0;
  if (partial != nullptr) *partial = false;
  while (off < n) {
    ssize_t r = ::recv(fd, data + off, n - off, 0);
    if (r > 0) {
      off += static_cast<size_t>(r);
      *last_rx_ns = NowNanos();
      if (partial != nullptr) *partial = true;
      continue;
    }
    if (r == 0) return ReadStatus::kClosed;  // EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (stop.load(std::memory_order_relaxed)) return ReadStatus::kStop;
      if (idle_ns != 0 && NowNanos() - *last_rx_ns > idle_ns) {
        return ReadStatus::kIdleTimeout;
      }
      pollfd p{fd, POLLIN, 0};
      ::poll(&p, 1, 100);
      continue;
    }
    if (errno == EINTR) continue;
    return ReadStatus::kClosed;
  }
  return ReadStatus::kOk;
}

}  // namespace net
}  // namespace megaphone
