// Umbrella header for the process-mesh transport.
#pragma once

#include "net/frame.hpp"   // IWYU pragma: export
#include "net/mesh.hpp"    // IWYU pragma: export
#include "net/socket.hpp"  // IWYU pragma: export
