// The process mesh: one TCP connection per peer process, a send thread
// draining a bounded byte-budgeted queue and a receive thread parsing
// frames per peer.
//
// Topology: process i accepts connections from every j > i and initiates
// connections to every j < i (the standard full-mesh bring-up; the listen
// backlog absorbs arbitrary arrival order). Every connection opens with a
// handshake carrying the initiator's process index so the acceptor knows
// which peer it is talking to. Connect and handshake retries back off
// exponentially with jitter.
//
// Ordering: the per-peer send queue is FIFO and frames are written whole,
// so everything a process enqueues for one peer arrives in order. The
// engine's cross-process safety protocol rests on exactly this: a
// worker's progress batch (carrying `produced` counts) is enqueued before
// the data bundles it covers, so no receiving process can observe a
// bundle whose production its tracker replica has not yet counted.
//
// Reliability: data and progress frames carry per-link sequence numbers
// and a payload checksum, and stay in a go-back-N retransmit buffer until
// cumulatively acked. The receiver delivers exactly the sequence 1,2,3…:
// a gap (injected drop) or checksum mismatch (injected corruption)
// triggers a nack, and the sender replays from its buffer; duplicates are
// discarded by sequence. This exists to make the deterministic fault
// injector (src/fault/) a no-op on *results*: a seeded drop/dup/corrupt
// schedule must perturb timing only. Protocol frames (ack/nack/heartbeat/
// goodbye) are never injected against, so every fault schedule heals.
//
// Liveness: the send thread emits a heartbeat whenever the link has been
// idle for heartbeat_ms; the receive thread declares the peer down after
// peer_deadline_ms of total silence, on EOF without a goodbye, or on an
// unframeable byte stream. PeerDown does not throw from the mesh's own
// threads: it marks the mesh failed and wakes every blocked producer, and
// the worker loops (timely::Worker::StepUntil) observe the flag and raise
// timely::PeerDownError — a clean reported abort instead of a deadlock.
//
// Delivery before registration: data and progress handlers are registered
// while workers build their dataflows, but a faster peer may ship frames
// earlier. The dispatcher buffers frames per key and replays them, in
// order, when the handler arrives.
//
// Shutdown: each send thread drains its queue, emits a goodbye frame
// carrying its final sequence number, keeps servicing acks/nacks and
// heartbeats until the peer has acked everything and the receive side has
// finished, then half-closes. The receive thread finishes once it has the
// peer's goodbye, has delivered everything up to it, and our own goodbye
// is fully acked. Shutdown() therefore still acts as a global termination
// barrier, but one that a dead peer cannot hold forever: silence past the
// deadline turns the barrier into PeerDown. `force` (error paths) skips
// waiting via the stop flag.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/serde.hpp"
#include "fault/fault.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "timely/remote.hpp"

namespace megaphone {
namespace net {

struct MeshOptions {
  uint32_t processes = 1;
  uint32_t process_index = 0;
  uint32_t workers_per_process = 1;
  /// One "host:port" per process. Required when processes > 1.
  std::vector<std::string> addresses;
  /// Pre-bound listener for this process (the self-forking launcher binds
  /// port-0 listeners before forking, so ports are race-free); -1 means
  /// the mesh binds addresses[process_index] itself.
  int listen_fd = -1;
  uint64_t connect_timeout_ms = 30'000;
  /// Bound on bytes queued per peer; producers block when exceeded
  /// (backpressure toward the worker that is flooding the link).
  size_t max_queue_bytes = 64u << 20;
  /// Idle-link keepalive cadence per peer (also carries acks).
  uint64_t heartbeat_ms = 500;
  /// A peer silent for this long is declared down. Must comfortably
  /// exceed heartbeat_ms; 0 disables the deadline (not recommended).
  uint64_t peer_deadline_ms = 10'000;
  /// Deterministic transport-fault schedule (off by default).
  fault::FaultSpec fault;
};

class NetMesh final : public timely::NetRuntime {
 public:
  explicit NetMesh(MeshOptions opts) : opts_(std::move(opts)) {
    MEGA_CHECK_GE(opts_.processes, 2u) << "mesh needs at least 2 processes";
    MEGA_CHECK_LT(opts_.process_index, opts_.processes);
    MEGA_CHECK_EQ(opts_.addresses.size(), opts_.processes)
        << "one address per process required";

    const uint32_t me = opts_.process_index;
    listen_fd_ = opts_.listen_fd;
    if (listen_fd_ < 0) {
      Endpoint ep = ParseEndpoint(opts_.addresses[me]);
      listen_fd_ = BindListener(ep.host, ep.port,
                                static_cast<int>(opts_.processes));
    }
    SetNonBlocking(listen_fd_);

    peers_.resize(opts_.processes);
    // One deadline bounds the whole bring-up.
    const uint64_t deadline =
        NowNanos() + opts_.connect_timeout_ms * 1'000'000;
    auto remaining_ms = [&]() -> uint64_t {
      uint64_t now = NowNanos();
      MEGA_CHECK(now < deadline) << "mesh bring-up timed out";
      return (deadline - now) / 1'000'000 + 1;
    };
    // Initiate to lower-indexed peers; their listeners exist (the caller
    // bound every address before starting, or the launcher pre-bound all
    // listeners before forking) and their backlog holds us until they
    // accept. On fixed ports (manual mode) a connection can also land in
    // the backlog of the peer's *previous* run when processes launch
    // meshes back-to-back: that listener closes without ever replying,
    // so a failed handshake exchange means "peer not ready yet", not a
    // fatal error — drop the connection and retry until the deadline.
    RetryBackoff backoff;
    for (uint32_t j = 0; j < me; ++j) {
      for (;;) {
        int fd = ConnectWithRetry(ParseEndpoint(opts_.addresses[j]),
                                  remaining_ms());
        uint8_t buf[kHandshakeBytes];
        EncodeHandshake(buf,
                        Handshake{kHandshakeMagic, kProtocolVersion, me});
        if (!WriteFull(fd, buf, kHandshakeBytes, stop_) ||
            !ReadFull(fd, buf, kHandshakeBytes, stop_)) {
          ::close(fd);
          (void)remaining_ms();
          backoff.Sleep();
          continue;
        }
        Handshake peer = DecodeHandshake(buf);
        MEGA_CHECK(peer.magic == kHandshakeMagic &&
                   peer.version == kProtocolVersion && peer.process == j)
            << "bad handshake from process " << j;
        InstallPeer(j, fd);
        break;
      }
    }
    // Accept from higher-indexed peers, identifying each by handshake. An
    // accepted connection whose initiator hung up before completing the
    // handshake (it was aiming at a previous run on this port and has
    // already retried) is dropped and does not count.
    for (uint32_t remaining = opts_.processes - me - 1; remaining > 0;) {
      int fd = AcceptWithTimeout(listen_fd_, remaining_ms());
      uint8_t buf[kHandshakeBytes];
      if (!ReadFull(fd, buf, kHandshakeBytes, stop_)) {
        ::close(fd);
        continue;
      }
      Handshake peer = DecodeHandshake(buf);
      MEGA_CHECK(peer.magic == kHandshakeMagic &&
                 peer.version == kProtocolVersion && peer.process > me &&
                 peer.process < opts_.processes && !peers_[peer.process])
          << "bad handshake on accepted connection";
      EncodeHandshake(buf, Handshake{kHandshakeMagic, kProtocolVersion, me});
      MEGA_CHECK(WriteFull(fd, buf, kHandshakeBytes, stop_))
          << "handshake write on accepted connection failed";
      InstallPeer(peer.process, fd);
      --remaining;
    }
    // Threads start only after the full mesh is up. A receive thread that
    // throws (SerdeError from corrupted bytes, unexpected frame) reports
    // the peer down instead of escaping into std::terminate.
    for (auto& p : peers_) {
      if (!p) continue;
      Peer* peer = p.get();
      peer->send_thread = std::thread([this, peer] { SendLoop(*peer); });
      peer->recv_thread = std::thread([this, peer] {
        try {
          RecvLoop(*peer);
        } catch (const std::exception& e) {
          MarkPeerDown(*peer, std::string("receive failed: ") + e.what());
          peer->recv_done.store(true, std::memory_order_release);
          peer->cv_pop.notify_all();
        }
      });
    }
  }

  ~NetMesh() override { Shutdown(/*force=*/true); }

  NetMesh(const NetMesh&) = delete;
  NetMesh& operator=(const NetMesh&) = delete;

  /// Flushes every queue, exchanges goodbyes and final acks, joins
  /// threads, and closes sockets. The normal (non-forced) path returns
  /// only after every live peer has finished sending — a clean global
  /// teardown; a dead peer is bounded by the peer deadline instead of
  /// blocking forever. Idempotent.
  void Shutdown(bool force = false) {
    bool expected = false;
    if (!shut_.compare_exchange_strong(expected, true)) return;
    if (force) stop_.store(true, std::memory_order_relaxed);
    for (auto& p : peers_) {
      if (!p) continue;
      {
        std::lock_guard<std::mutex> lock(p->mu);
        p->closing = true;
      }
      p->cv_pop.notify_all();
      p->cv_push.notify_all();
    }
    for (auto& p : peers_) {
      if (!p) continue;
      if (p->send_thread.joinable()) p->send_thread.join();
      if (p->recv_thread.joinable()) p->recv_thread.join();
      ::close(p->fd);
      p->fd = -1;
    }
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
  }

  // --- timely::NetRuntime ----------------------------------------------

  uint32_t processes() const override { return opts_.processes; }
  uint32_t process_index() const override { return opts_.process_index; }
  uint32_t workers_per_process() const override {
    return opts_.workers_per_process;
  }

  bool PeerFailed() const override {
    return failed_.load(std::memory_order_acquire);
  }

  std::string FailureReason() const override {
    std::lock_guard<std::mutex> lock(fail_mu_);
    return fail_reason_;
  }

  void SendData(uint64_t dataflow_id, uint64_t channel_id,
                uint32_t target_worker,
                std::vector<uint8_t> payload) override {
    uint32_t proc = ProcessOfWorker(target_worker);
    MEGA_CHECK(proc != opts_.process_index && proc < opts_.processes)
        << "SendData target is not a remote worker";
    Enqueue(*peers_[proc],
            MakeOutFrame(FrameKind::kData, target_worker,
                         DataKey(dataflow_id, channel_id),
                         std::move(payload)));
  }

  void BroadcastProgress(uint64_t dataflow_id,
                         std::vector<uint8_t> payload) override {
    // Copy for all peers but the last, which takes the payload itself —
    // with P=2 (one peer) the per-step broadcast never copies.
    Peer* last = nullptr;
    for (auto& p : peers_) {
      if (!p) continue;
      if (last != nullptr) {
        Enqueue(*last, MakeOutFrame(FrameKind::kProgress, 0, dataflow_id,
                                    std::vector<uint8_t>(payload)));
      }
      last = p.get();
    }
    if (last != nullptr) {
      Enqueue(*last, MakeOutFrame(FrameKind::kProgress, 0, dataflow_id,
                                  std::move(payload)));
    }
  }

  void RegisterDataHandler(uint64_t dataflow_id, uint64_t channel_id,
                           DataHandler handler) override {
    std::lock_guard<std::mutex> lock(dispatch_mu_);
    uint64_t key = DataKey(dataflow_id, channel_id);
    auto pending = pending_data_.find(key);
    if (pending != pending_data_.end()) {
      for (auto& [target, bytes] : pending->second) {
        megaphone::Reader r(bytes);
        handler(target, r);
      }
      pending_data_.erase(pending);
    }
    data_handlers_[key] = std::move(handler);
  }

  void RegisterProgressHandler(uint64_t dataflow_id,
                               ProgressHandler handler) override {
    std::lock_guard<std::mutex> lock(dispatch_mu_);
    auto pending = pending_progress_.find(dataflow_id);
    if (pending != pending_progress_.end()) {
      for (auto& bytes : pending->second) {
        megaphone::Reader r(bytes);
        handler(r);
      }
      pending_progress_.erase(pending);
    }
    progress_handlers_[dataflow_id] = std::move(handler);
  }

  /// Bytes currently queued toward `process` (introspection for tests).
  size_t QueuedBytes(uint32_t process) const {
    const auto& p = peers_[process];
    if (!p) return 0;
    std::lock_guard<std::mutex> lock(p->mu);
    return p->queued_bytes;
  }

 private:
  /// Cumulative-ack cadence: one explicit ack per this many delivered
  /// frames (heartbeats carry acks on idle links, and the goodbye
  /// exchange forces a final one).
  static constexpr uint64_t kAckEvery = 256;

  /// An outbound frame kept as (header struct, payload) so payload bytes
  /// are never copied into a contiguous frame buffer; the send thread
  /// encodes the 40-byte header at write time and writes both parts with
  /// one gathered sendmsg.
  struct OutFrame {
    FrameHeader h;
    std::vector<uint8_t> payload;
    /// Replay from the retransmit buffer: exempt from fault injection
    /// and not re-appended to the buffer.
    bool retransmit = false;

    size_t size() const { return kFrameHeaderBytes + payload.size(); }
  };

  static OutFrame MakeOutFrame(FrameKind kind, uint32_t target, uint64_t key,
                               std::vector<uint8_t> payload) {
    OutFrame f;
    f.h.kind = static_cast<uint32_t>(kind);
    f.h.target = target;
    f.h.key = key;
    f.h.payload_len = payload.size();
    f.h.payload_crc = FrameChecksum(payload.data(), payload.size());
    f.payload = std::move(payload);
    return f;
  }

  struct Peer {
    uint32_t process = 0;
    int fd = -1;
    std::thread send_thread;
    std::thread recv_thread;

    mutable std::mutex mu;
    std::condition_variable cv_push;  // space available
    std::condition_variable cv_pop;   // frames/acks/closing available
    std::deque<OutFrame> queue;
    size_t queued_bytes = 0;
    bool closing = false;

    // Reliability state. Sequenced frames are assigned seq at enqueue
    // (under mu, so queue order == seq order) and copied into `retx`
    // just before their first write; `retx` always holds the contiguous
    // range [retx_base, retx_base + retx.size()).
    uint64_t next_seq = 1;      // under mu
    std::deque<OutFrame> retx;  // under mu
    uint64_t retx_base = 1;     // under mu
    /// Peer has delivered every sequenced frame with seq < acked.
    std::atomic<uint64_t> acked{1};
    /// We have delivered every incoming sequenced frame with seq <
    /// expected_in (mirrors the receive thread's counter for heartbeats).
    std::atomic<uint64_t> expected_in{1};
    /// Send thread has written (or blackholed) every seq < written_next.
    std::atomic<uint64_t> written_next{1};
    std::atomic<bool> dead{false};
    std::atomic<bool> recv_done{false};
    /// Fault schedule for this link direction (null = fault-free).
    std::unique_ptr<fault::FaultInjector> injector;
  };

  void InstallPeer(uint32_t process, int fd) {
    auto p = std::make_unique<Peer>();
    p->process = process;
    p->fd = fd;
    if (opts_.fault.Enabled()) {
      p->injector = std::make_unique<fault::FaultInjector>(
          opts_.fault, opts_.process_index, process);
    }
    peers_[process] = std::move(p);
  }

  /// Declares the peer dead: unblocks every producer and both link
  /// threads, and raises the mesh-wide failure flag that the worker
  /// loops poll. First reason wins.
  void MarkPeerDown(Peer& p, const std::string& why) {
    {
      std::lock_guard<std::mutex> lock(p.mu);
      p.dead.store(true, std::memory_order_relaxed);
      p.queue.clear();
      p.queued_bytes = 0;
    }
    p.cv_push.notify_all();
    p.cv_pop.notify_all();
    {
      std::lock_guard<std::mutex> lock(fail_mu_);
      if (fail_reason_.empty()) {
        fail_reason_ = "peer process " + std::to_string(p.process) + " down: " + why;
      }
    }
    failed_.store(true, std::memory_order_release);
  }

  void Enqueue(Peer& p, OutFrame frame) {
    std::unique_lock<std::mutex> lock(p.mu);
    p.cv_push.wait(lock, [&] {
      return p.queued_bytes < opts_.max_queue_bytes || p.closing ||
             p.dead.load(std::memory_order_relaxed) ||
             stop_.load(std::memory_order_relaxed);
    });
    // Frames toward a dead peer are dropped silently: the mesh is already
    // marked failed and the worker loop is about to raise PeerDownError —
    // blocking here (or aborting) would turn a reported failure into a
    // deadlock inside the failure path itself.
    if (p.dead.load(std::memory_order_relaxed) ||
        stop_.load(std::memory_order_relaxed)) {
      return;
    }
    // Enqueueing after Shutdown would silently lose the frame (the send
    // thread may already have drained and said goodbye): a loud failure
    // beats a mesh that claims "all frames delivered" while dropping one.
    MEGA_CHECK(!p.closing) << "send to peer " << p.process
                           << " after Shutdown";
    if (IsSequencedKind(frame.h.kind)) frame.h.seq = p.next_seq++;
    p.queued_bytes += frame.size();
    p.queue.push_back(std::move(frame));
    p.cv_pop.notify_one();
  }

  /// Enqueue for protocol frames (ack/nack) issued by the receive
  /// thread. Exempt from backpressure and allowed during closing: the
  /// goodbye exchange depends on them.
  void EnqueueControl(Peer& p, OutFrame frame) {
    {
      std::lock_guard<std::mutex> lock(p.mu);
      if (p.dead.load(std::memory_order_relaxed)) return;
      p.queued_bytes += frame.size();
      p.queue.push_back(std::move(frame));
    }
    p.cv_pop.notify_one();
  }

  /// Cumulative ack from the peer: prune the retransmit buffer and wake
  /// the send thread (it may be waiting on this to finish shutdown).
  void HandleAck(Peer& p, uint64_t ack) {
    uint64_t cur = p.acked.load(std::memory_order_relaxed);
    while (ack > cur &&
           !p.acked.compare_exchange_weak(cur, ack,
                                          std::memory_order_release)) {
    }
    {
      std::lock_guard<std::mutex> lock(p.mu);
      while (!p.retx.empty() && p.retx_base < ack) {
        p.retx.pop_front();
        ++p.retx_base;
      }
    }
    p.cv_pop.notify_all();
  }

  /// Go-back-N: replay every written-but-unacked frame from `from_seq`
  /// on, ahead of whatever is queued (their seqs are all larger).
  void ScheduleRetransmit(Peer& p, uint64_t from_seq) {
    {
      std::lock_guard<std::mutex> lock(p.mu);
      if (p.retx.empty()) return;
      uint64_t base = p.retx_base;
      if (from_seq < base) from_seq = base;  // that prefix is acked
      if (from_seq >= base + p.retx.size()) return;  // not written yet
      for (size_t i = p.retx.size(); i-- > from_seq - base;) {
        OutFrame copy = p.retx[i];
        copy.retransmit = true;
        p.queued_bytes += copy.size();
        p.queue.push_front(std::move(copy));
      }
    }
    p.cv_pop.notify_one();
  }

  /// Writes one frame, applying the fault schedule to first
  /// transmissions of sequenced frames (retransmissions and protocol
  /// frames are exempt, so every schedule heals). Returns false on
  /// socket failure.
  bool WriteFrame(Peer& p, const OutFrame& f) {
    const bool first_tx = IsSequencedKind(f.h.kind) && !f.retransmit;
    fault::FaultDecision d;
    if (first_tx) {
      {
        std::lock_guard<std::mutex> lock(p.mu);
        if (p.retx.empty()) p.retx_base = f.h.seq;
        p.retx.push_back(f);  // pristine copy, before any write
      }
      if (p.injector) {
        d = p.injector->OnFrame();
        if (p.injector->KillDue()) {
          std::raise(SIGKILL);  // crash drill: die mid-stream, no goodbye
        }
      }
    }
    bool ok = true;
    const bool blackhole =
        d.drop || (p.injector && p.injector->PartitionActive());
    if (!blackhole) {
      if (d.delay_us > 0) ::usleep(static_cast<useconds_t>(d.delay_us));
      uint8_t hdr[kFrameHeaderBytes];
      EncodeFrameHeader(hdr, f.h);
      if (d.corrupt && !f.payload.empty()) {
        // Flip one payload byte in a copy; the retransmit buffer keeps
        // the pristine frame, so the nack-triggered replay heals this.
        std::vector<uint8_t> bad = f.payload;
        bad[d.corrupt_pos % bad.size()] ^=
            static_cast<uint8_t>(d.corrupt_xor);
        ok = WritevFull(p.fd, hdr, kFrameHeaderBytes, bad.data(),
                        bad.size(), stop_);
      } else {
        ok = WritevFull(p.fd, hdr, kFrameHeaderBytes, f.payload.data(),
                        f.payload.size(), stop_);
        if (ok && d.dup) {
          ok = WritevFull(p.fd, hdr, kFrameHeaderBytes, f.payload.data(),
                          f.payload.size(), stop_);
        }
      }
    }
    if (first_tx) {
      // Advances even when the write was blackholed: written_next tells
      // the peer (via heartbeat) what it *should* have, which is exactly
      // how a dropped tail frame gets discovered and nacked.
      p.written_next.store(f.h.seq + 1, std::memory_order_release);
    }
    return ok;
  }

  void SendLoop(Peer& p) {
    const auto hb_interval =
        std::chrono::milliseconds(std::max<uint64_t>(1, opts_.heartbeat_ms));
    bool goodbye_sent = false;
    uint64_t final_seq = 0;
    for (;;) {
      enum class Next { kFrame, kGoodbye, kHeartbeat, kExit };
      Next next = Next::kHeartbeat;
      OutFrame frame;
      {
        std::unique_lock<std::mutex> lock(p.mu);
        auto exit_ready = [&] {
          return goodbye_sent && p.queue.empty() &&
                 p.recv_done.load(std::memory_order_acquire) &&
                 p.acked.load(std::memory_order_acquire) >= final_seq;
        };
        p.cv_pop.wait_for(lock, hb_interval, [&] {
          return !p.queue.empty() || (p.closing && !goodbye_sent) ||
                 p.dead.load(std::memory_order_relaxed) ||
                 stop_.load(std::memory_order_relaxed) || exit_ready();
        });
        if (p.dead.load(std::memory_order_relaxed) ||
            stop_.load(std::memory_order_relaxed)) {
          p.queue.clear();
          p.queued_bytes = 0;
          p.cv_push.notify_all();
          return;
        }
        if (exit_ready()) {
          next = Next::kExit;
        } else if (!p.queue.empty()) {
          frame = std::move(p.queue.front());
          p.queue.pop_front();
          p.queued_bytes -= frame.size();
          p.cv_push.notify_all();
          next = Next::kFrame;
        } else if (p.closing && !goodbye_sent) {
          next = Next::kGoodbye;
          final_seq = p.next_seq;
        } else {
          next = Next::kHeartbeat;  // idle link: keepalive + ack carrier
        }
      }
      switch (next) {
        case Next::kExit:
          ::shutdown(p.fd, SHUT_WR);
          return;
        case Next::kFrame:
          if (!WriteFrame(p, frame)) {
            MarkPeerDown(p, "frame write failed");
            return;
          }
          break;
        case Next::kGoodbye: {
          OutFrame bye =
              MakeOutFrame(FrameKind::kGoodbye, 0, final_seq, {});
          if (!WriteFrame(p, bye)) {
            MarkPeerDown(p, "goodbye write failed");
            return;
          }
          goodbye_sent = true;
          break;
        }
        case Next::kHeartbeat: {
          HeartbeatBody body;
          body.next_seq = p.written_next.load(std::memory_order_acquire);
          body.ack = p.expected_in.load(std::memory_order_acquire);
          OutFrame hb = MakeOutFrame(FrameKind::kHeartbeat, 0, 0,
                                     EncodeToBytes(body));
          if (!WriteFrame(p, hb)) {
            MarkPeerDown(p, "heartbeat write failed");
            return;
          }
          break;
        }
      }
    }
  }

  void RecvLoop(Peer& p) {
    uint8_t header[kFrameHeaderBytes];
    uint64_t last_rx = NowNanos();
    const uint64_t idle_ns = opts_.peer_deadline_ms * 1'000'000;
    uint64_t expected = 1;          // next sequenced frame to deliver
    uint64_t delivered_since_ack = 0;
    uint64_t nacked_at = 0;         // suppression: last expected we nacked
    bool peer_goodbye = false;
    uint64_t peer_final = 0;
    bool final_ack_sent = false;

    auto finish = [&](bool clean, const std::string& why) {
      if (!clean) MarkPeerDown(p, why);
      p.recv_done.store(true, std::memory_order_release);
      p.cv_pop.notify_all();
    };
    auto send_ack = [&] {
      EnqueueControl(p, MakeOutFrame(FrameKind::kAck, 0, expected, {}));
    };
    auto nack_gap = [&] {
      if (nacked_at == expected) return;  // already asked for this one
      nacked_at = expected;
      EnqueueControl(p, MakeOutFrame(FrameKind::kNack, 0, expected, {}));
    };

    for (;;) {
      bool partial = false;
      ReadStatus st = ReadFullIdle(p.fd, header, kFrameHeaderBytes, stop_,
                                   idle_ns, &last_rx, &partial);
      if (st != ReadStatus::kOk) {
        if (st == ReadStatus::kStop) {
          finish(/*clean=*/true, "");
          return;
        }
        if (st == ReadStatus::kIdleTimeout) {
          finish(false, "silent past the " +
                            std::to_string(opts_.peer_deadline_ms) +
                            "ms deadline (no heartbeat)");
          return;
        }
        // EOF. Clean only when the whole goodbye protocol completed:
        // peer's goodbye seen and delivered up to it, our goodbye sent
        // (closing) and fully acked. Anything else is a dead peer.
        bool clean;
        {
          std::lock_guard<std::mutex> lock(p.mu);
          clean = !partial && peer_goodbye && expected >= peer_final &&
                  p.closing &&
                  p.acked.load(std::memory_order_relaxed) >= p.next_seq;
        }
        finish(clean, partial ? "closed mid-frame"
                              : "disconnected before goodbye");
        return;
      }
      FrameHeader h;
      if (!TryDecodeFrameHeader(header, &h)) {
        // An unframeable stream cannot be nacked back to health: frame
        // boundaries themselves are gone.
        finish(false, "frame header checksum mismatch (stream desync)");
        return;
      }
      if (h.payload_len > kMaxFramePayload) {
        finish(false, "oversized frame");
        return;
      }
      std::vector<uint8_t> payload(h.payload_len);
      if (h.payload_len > 0) {
        st = ReadFullIdle(p.fd, payload.data(), h.payload_len, stop_,
                          idle_ns, &last_rx, nullptr);
        if (st != ReadStatus::kOk) {
          finish(st == ReadStatus::kStop, "closed mid-frame");
          return;
        }
      }
      const bool payload_ok =
          FrameChecksum(payload.data(), payload.size()) == h.payload_crc;
      switch (static_cast<FrameKind>(h.kind)) {
        case FrameKind::kHeartbeat: {
          if (!payload_ok) break;  // next heartbeat is 500ms away
          auto body = DecodeFromBytes<HeartbeatBody>(payload);
          HandleAck(p, body.ack);
          // A tail gap: the peer wrote frames we never saw and the link
          // has gone quiet — no later data frame will reveal the loss.
          if (body.next_seq > expected) nack_gap();
          break;
        }
        case FrameKind::kAck:
          HandleAck(p, h.key);
          break;
        case FrameKind::kNack:
          ScheduleRetransmit(p, h.key);
          break;
        case FrameKind::kGoodbye:
          peer_goodbye = true;
          peer_final = h.key;
          break;
        case FrameKind::kData:
        case FrameKind::kProgress:
          if (!payload_ok) {
            nack_gap();  // corrupt in transit: replay from seq `expected`
            break;
          }
          if (h.seq == expected) {
            ++expected;
            p.expected_in.store(expected, std::memory_order_release);
            if (static_cast<FrameKind>(h.kind) == FrameKind::kData) {
              DispatchData(h.key, h.target, std::move(payload));
            } else {
              DispatchProgress(h.key, std::move(payload));
            }
            if (++delivered_since_ack >= kAckEvery) {
              delivered_since_ack = 0;
              send_ack();
            }
          } else if (h.seq > expected) {
            nack_gap();  // gap: dropped frame(s); go-back-N replays
          }
          // h.seq < expected: duplicate of something delivered; discard.
          break;
        default:
          finish(false, "unknown frame kind " + std::to_string(h.kind));
          return;
      }
      // Post-goodbye: once caught up, send the final cumulative ack (the
      // peer's send thread waits on it), and exit as soon as our own
      // goodbye is acked too. Driven by the peer's acks/heartbeats.
      if (peer_goodbye && expected >= peer_final) {
        if (!final_ack_sent) {
          final_ack_sent = true;
          send_ack();
        }
        bool done;
        {
          std::lock_guard<std::mutex> lock(p.mu);
          done = p.closing &&
                 p.acked.load(std::memory_order_relaxed) >= p.next_seq;
        }
        if (done) {
          finish(/*clean=*/true, "");
          return;
        }
      }
    }
  }

  // Handlers run *outside* dispatch_mu_ so peers' receive threads decode
  // concurrently: the lock only covers the lookup/buffering decision.
  // Safe because a found handler implies its registration (including the
  // buffered replay) fully completed, handlers are never replaced, and
  // per-peer ordering is carried by each peer's single receive thread.
  void DispatchData(uint64_t key, uint32_t target,
                    std::vector<uint8_t> payload) {
    const DataHandler* handler = nullptr;
    {
      std::lock_guard<std::mutex> lock(dispatch_mu_);
      auto it = data_handlers_.find(key);
      if (it == data_handlers_.end()) {
        pending_data_[key].emplace_back(target, std::move(payload));
        return;
      }
      handler = &it->second;
    }
    megaphone::Reader r(payload);
    (*handler)(target, r);
  }

  void DispatchProgress(uint64_t key, std::vector<uint8_t> payload) {
    const ProgressHandler* handler = nullptr;
    {
      std::lock_guard<std::mutex> lock(dispatch_mu_);
      auto it = progress_handlers_.find(key);
      if (it == progress_handlers_.end()) {
        pending_progress_[key].push_back(std::move(payload));
        return;
      }
      handler = &it->second;
    }
    megaphone::Reader r(payload);
    (*handler)(r);
  }

  MeshOptions opts_;
  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::atomic<bool> shut_{false};
  std::atomic<bool> failed_{false};
  mutable std::mutex fail_mu_;
  std::string fail_reason_;
  std::vector<std::unique_ptr<Peer>> peers_;  // [process]; self is null

  std::mutex dispatch_mu_;
  std::unordered_map<uint64_t, DataHandler> data_handlers_;
  std::unordered_map<uint64_t, ProgressHandler> progress_handlers_;
  std::unordered_map<uint64_t,
                     std::vector<std::pair<uint32_t, std::vector<uint8_t>>>>
      pending_data_;
  std::unordered_map<uint64_t, std::vector<std::vector<uint8_t>>>
      pending_progress_;
};

}  // namespace net
}  // namespace megaphone
