// The process mesh: one TCP connection per peer process, a send thread
// draining a bounded byte-budgeted queue and a receive thread parsing
// frames per peer.
//
// Topology: process i accepts connections from every j > i and initiates
// connections to every j < i (the standard full-mesh bring-up; the listen
// backlog absorbs arbitrary arrival order). Every connection opens with a
// handshake carrying the initiator's process index so the acceptor knows
// which peer it is talking to.
//
// Ordering: the per-peer send queue is FIFO and frames are written whole,
// so everything a process enqueues for one peer arrives in order. The
// engine's cross-process safety protocol rests on exactly this: a
// worker's progress batch (carrying `produced` counts) is enqueued before
// the data bundles it covers, so no receiving process can observe a
// bundle whose production its tracker replica has not yet counted.
//
// Delivery before registration: data and progress handlers are registered
// while workers build their dataflows, but a faster peer may ship frames
// earlier. The dispatcher buffers frames per key and replays them, in
// order, when the handler arrives.
//
// Shutdown: each send thread emits a goodbye frame after draining its
// queue; each receive thread runs until it has seen the peer's goodbye
// (or EOF). Shutdown() therefore acts as a global termination barrier —
// a process only tears down its sockets after every peer has said it is
// done sending. `force` (error paths) skips waiting via the stop flag.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/serde.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "timely/remote.hpp"

namespace megaphone {
namespace net {

struct MeshOptions {
  uint32_t processes = 1;
  uint32_t process_index = 0;
  uint32_t workers_per_process = 1;
  /// One "host:port" per process. Required when processes > 1.
  std::vector<std::string> addresses;
  /// Pre-bound listener for this process (the self-forking launcher binds
  /// port-0 listeners before forking, so ports are race-free); -1 means
  /// the mesh binds addresses[process_index] itself.
  int listen_fd = -1;
  uint64_t connect_timeout_ms = 30'000;
  /// Bound on bytes queued per peer; producers block when exceeded
  /// (backpressure toward the worker that is flooding the link).
  size_t max_queue_bytes = 64u << 20;
};

class NetMesh final : public timely::NetRuntime {
 public:
  explicit NetMesh(MeshOptions opts) : opts_(std::move(opts)) {
    MEGA_CHECK_GE(opts_.processes, 2u) << "mesh needs at least 2 processes";
    MEGA_CHECK_LT(opts_.process_index, opts_.processes);
    MEGA_CHECK_EQ(opts_.addresses.size(), opts_.processes)
        << "one address per process required";

    const uint32_t me = opts_.process_index;
    listen_fd_ = opts_.listen_fd;
    if (listen_fd_ < 0) {
      Endpoint ep = ParseEndpoint(opts_.addresses[me]);
      listen_fd_ = BindListener(ep.host, ep.port,
                                static_cast<int>(opts_.processes));
    }
    SetNonBlocking(listen_fd_);

    peers_.resize(opts_.processes);
    // One deadline bounds the whole bring-up.
    const uint64_t deadline =
        NowNanos() + opts_.connect_timeout_ms * 1'000'000;
    auto remaining_ms = [&]() -> uint64_t {
      uint64_t now = NowNanos();
      MEGA_CHECK(now < deadline) << "mesh bring-up timed out";
      return (deadline - now) / 1'000'000 + 1;
    };
    // Initiate to lower-indexed peers; their listeners exist (the caller
    // bound every address before starting, or the launcher pre-bound all
    // listeners before forking) and their backlog holds us until they
    // accept. On fixed ports (manual mode) a connection can also land in
    // the backlog of the peer's *previous* run when processes launch
    // meshes back-to-back: that listener closes without ever replying,
    // so a failed handshake exchange means "peer not ready yet", not a
    // fatal error — drop the connection and retry until the deadline.
    for (uint32_t j = 0; j < me; ++j) {
      for (;;) {
        int fd = ConnectWithRetry(ParseEndpoint(opts_.addresses[j]),
                                  remaining_ms());
        uint8_t buf[kHandshakeBytes];
        EncodeHandshake(buf,
                        Handshake{kHandshakeMagic, kProtocolVersion, me});
        if (!WriteFull(fd, buf, kHandshakeBytes, stop_) ||
            !ReadFull(fd, buf, kHandshakeBytes, stop_)) {
          ::close(fd);
          (void)remaining_ms();
          ::usleep(2000);
          continue;
        }
        Handshake peer = DecodeHandshake(buf);
        MEGA_CHECK(peer.magic == kHandshakeMagic &&
                   peer.version == kProtocolVersion && peer.process == j)
            << "bad handshake from process " << j;
        InstallPeer(j, fd);
        break;
      }
    }
    // Accept from higher-indexed peers, identifying each by handshake. An
    // accepted connection whose initiator hung up before completing the
    // handshake (it was aiming at a previous run on this port and has
    // already retried) is dropped and does not count.
    for (uint32_t remaining = opts_.processes - me - 1; remaining > 0;) {
      int fd = AcceptWithTimeout(listen_fd_, remaining_ms());
      uint8_t buf[kHandshakeBytes];
      if (!ReadFull(fd, buf, kHandshakeBytes, stop_)) {
        ::close(fd);
        continue;
      }
      Handshake peer = DecodeHandshake(buf);
      MEGA_CHECK(peer.magic == kHandshakeMagic &&
                 peer.version == kProtocolVersion && peer.process > me &&
                 peer.process < opts_.processes && !peers_[peer.process])
          << "bad handshake on accepted connection";
      EncodeHandshake(buf, Handshake{kHandshakeMagic, kProtocolVersion, me});
      MEGA_CHECK(WriteFull(fd, buf, kHandshakeBytes, stop_))
          << "handshake write on accepted connection failed";
      InstallPeer(peer.process, fd);
      --remaining;
    }
    // Threads start only after the full mesh is up. A receive thread that
    // fails (malformed frame, decode error from corrupted bytes) aborts
    // with a diagnostic rather than escaping into std::terminate.
    for (auto& p : peers_) {
      if (!p) continue;
      Peer* peer = p.get();
      peer->send_thread = std::thread([this, peer] { SendLoop(*peer); });
      peer->recv_thread = std::thread([this, peer] {
        try {
          RecvLoop(*peer);
        } catch (const std::exception& e) {
          MEGA_CHECK(false) << "mesh receive thread for peer "
                            << peer->process << " failed: " << e.what();
        }
      });
    }
  }

  ~NetMesh() override { Shutdown(/*force=*/true); }

  NetMesh(const NetMesh&) = delete;
  NetMesh& operator=(const NetMesh&) = delete;

  /// Flushes every queue, exchanges goodbyes, joins threads, and closes
  /// sockets. The normal (non-forced) path returns only after every peer
  /// has finished sending — a clean global teardown. Idempotent.
  void Shutdown(bool force = false) {
    bool expected = false;
    if (!shut_.compare_exchange_strong(expected, true)) return;
    if (force) stop_.store(true, std::memory_order_relaxed);
    for (auto& p : peers_) {
      if (!p) continue;
      {
        std::lock_guard<std::mutex> lock(p->mu);
        p->closing = true;
      }
      p->cv_pop.notify_all();
      p->cv_push.notify_all();
    }
    for (auto& p : peers_) {
      if (!p) continue;
      if (p->send_thread.joinable()) p->send_thread.join();
      if (p->recv_thread.joinable()) p->recv_thread.join();
      ::close(p->fd);
      p->fd = -1;
    }
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
  }

  // --- timely::NetRuntime ----------------------------------------------

  uint32_t processes() const override { return opts_.processes; }
  uint32_t process_index() const override { return opts_.process_index; }
  uint32_t workers_per_process() const override {
    return opts_.workers_per_process;
  }

  void SendData(uint64_t dataflow_id, uint64_t channel_id,
                uint32_t target_worker,
                std::vector<uint8_t> payload) override {
    uint32_t proc = ProcessOfWorker(target_worker);
    MEGA_CHECK(proc != opts_.process_index && proc < opts_.processes)
        << "SendData target is not a remote worker";
    Enqueue(*peers_[proc],
            MakeOutFrame(FrameKind::kData, target_worker,
                         DataKey(dataflow_id, channel_id),
                         std::move(payload)));
  }

  void BroadcastProgress(uint64_t dataflow_id,
                         std::vector<uint8_t> payload) override {
    // Copy for all peers but the last, which takes the payload itself —
    // with P=2 (one peer) the per-step broadcast never copies.
    Peer* last = nullptr;
    for (auto& p : peers_) {
      if (!p) continue;
      if (last != nullptr) {
        Enqueue(*last, MakeOutFrame(FrameKind::kProgress, 0, dataflow_id,
                                    std::vector<uint8_t>(payload)));
      }
      last = p.get();
    }
    if (last != nullptr) {
      Enqueue(*last, MakeOutFrame(FrameKind::kProgress, 0, dataflow_id,
                                  std::move(payload)));
    }
  }

  void RegisterDataHandler(uint64_t dataflow_id, uint64_t channel_id,
                           DataHandler handler) override {
    std::lock_guard<std::mutex> lock(dispatch_mu_);
    uint64_t key = DataKey(dataflow_id, channel_id);
    auto pending = pending_data_.find(key);
    if (pending != pending_data_.end()) {
      for (auto& [target, bytes] : pending->second) {
        megaphone::Reader r(bytes);
        handler(target, r);
      }
      pending_data_.erase(pending);
    }
    data_handlers_[key] = std::move(handler);
  }

  void RegisterProgressHandler(uint64_t dataflow_id,
                               ProgressHandler handler) override {
    std::lock_guard<std::mutex> lock(dispatch_mu_);
    auto pending = pending_progress_.find(dataflow_id);
    if (pending != pending_progress_.end()) {
      for (auto& bytes : pending->second) {
        megaphone::Reader r(bytes);
        handler(r);
      }
      pending_progress_.erase(pending);
    }
    progress_handlers_[dataflow_id] = std::move(handler);
  }

  /// Bytes currently queued toward `process` (introspection for tests).
  size_t QueuedBytes(uint32_t process) const {
    const auto& p = peers_[process];
    if (!p) return 0;
    std::lock_guard<std::mutex> lock(p->mu);
    return p->queued_bytes;
  }

 private:
  /// An outbound frame kept as (header, payload) so payload bytes are
  /// never copied into a contiguous frame buffer; the send thread writes
  /// both parts with one gathered sendmsg.
  struct OutFrame {
    std::array<uint8_t, kFrameHeaderBytes> header;
    std::vector<uint8_t> payload;

    size_t size() const { return header.size() + payload.size(); }
  };

  static OutFrame MakeOutFrame(FrameKind kind, uint32_t target, uint64_t key,
                               std::vector<uint8_t> payload) {
    OutFrame f;
    FrameHeader h;
    h.kind = static_cast<uint32_t>(kind);
    h.target = target;
    h.key = key;
    h.payload_len = payload.size();
    EncodeFrameHeader(f.header.data(), h);
    f.payload = std::move(payload);
    return f;
  }

  struct Peer {
    uint32_t process = 0;
    int fd = -1;
    std::thread send_thread;
    std::thread recv_thread;

    mutable std::mutex mu;
    std::condition_variable cv_push;  // space available
    std::condition_variable cv_pop;   // frames (or closing) available
    std::deque<OutFrame> queue;
    size_t queued_bytes = 0;
    bool closing = false;
  };

  void InstallPeer(uint32_t process, int fd) {
    auto p = std::make_unique<Peer>();
    p->process = process;
    p->fd = fd;
    peers_[process] = std::move(p);
  }

  void Enqueue(Peer& p, OutFrame frame) {
    std::unique_lock<std::mutex> lock(p.mu);
    p.cv_push.wait(lock, [&] {
      return p.queued_bytes < opts_.max_queue_bytes || p.closing ||
             stop_.load(std::memory_order_relaxed);
    });
    // Enqueueing after Shutdown would silently lose the frame (the send
    // thread may already have drained and said goodbye): a loud failure
    // beats a mesh that claims "all frames delivered" while dropping one.
    MEGA_CHECK(!p.closing) << "send to peer " << p.process
                           << " after Shutdown";
    p.queued_bytes += frame.size();
    p.queue.push_back(std::move(frame));
    p.cv_pop.notify_one();
  }

  void SendLoop(Peer& p) {
    for (;;) {
      OutFrame frame;
      {
        std::unique_lock<std::mutex> lock(p.mu);
        p.cv_pop.wait(lock, [&] { return !p.queue.empty() || p.closing; });
        if (p.queue.empty()) break;  // closing, fully drained
        frame = std::move(p.queue.front());
        p.queue.pop_front();
        p.queued_bytes -= frame.size();
        p.cv_push.notify_all();
      }
      if (!WritevFull(p.fd, frame.header.data(), frame.header.size(),
                      frame.payload.data(), frame.payload.size(), stop_)) {
        return;
      }
    }
    OutFrame bye = MakeOutFrame(FrameKind::kGoodbye, 0, 0, {});
    WriteFull(p.fd, bye.header.data(), bye.header.size(), stop_);
    ::shutdown(p.fd, SHUT_WR);
  }

  void RecvLoop(Peer& p) {
    uint8_t header[kFrameHeaderBytes];
    for (;;) {
      bool partial = false;
      if (!ReadFull(p.fd, header, kFrameHeaderBytes, stop_, &partial)) {
        if (stop_.load(std::memory_order_relaxed)) return;  // forced stop
        // A healthy peer always says goodbye before closing (even on its
        // error path). EOF without one means the peer died — fail fast
        // here rather than letting the local workers wait forever for
        // progress counts that will never arrive.
        MEGA_CHECK(!partial) << "peer " << p.process << " closed mid-frame";
        MEGA_CHECK(false) << "peer " << p.process
                          << " disconnected before goodbye";
      }
      FrameHeader h = DecodeFrameHeader(header);
      MEGA_CHECK(h.payload_len <= kMaxFramePayload)
          << "oversized frame from peer " << p.process;
      std::vector<uint8_t> payload(h.payload_len);
      if (h.payload_len > 0 &&
          !ReadFull(p.fd, payload.data(), h.payload_len, stop_)) {
        MEGA_CHECK(stop_.load(std::memory_order_relaxed))
            << "peer " << p.process << " closed mid-frame";
        return;
      }
      switch (static_cast<FrameKind>(h.kind)) {
        case FrameKind::kGoodbye:
          return;  // peer finished sending; our send side drains on its own
        case FrameKind::kData:
          DispatchData(h.key, h.target, std::move(payload));
          break;
        case FrameKind::kProgress:
          DispatchProgress(h.key, std::move(payload));
          break;
        default:
          MEGA_CHECK(false) << "unknown frame kind " << h.kind
                            << " from peer " << p.process;
      }
    }
  }

  // Handlers run *outside* dispatch_mu_ so peers' receive threads decode
  // concurrently: the lock only covers the lookup/buffering decision.
  // Safe because a found handler implies its registration (including the
  // buffered replay) fully completed, handlers are never replaced, and
  // per-peer ordering is carried by each peer's single receive thread.
  void DispatchData(uint64_t key, uint32_t target,
                    std::vector<uint8_t> payload) {
    const DataHandler* handler = nullptr;
    {
      std::lock_guard<std::mutex> lock(dispatch_mu_);
      auto it = data_handlers_.find(key);
      if (it == data_handlers_.end()) {
        pending_data_[key].emplace_back(target, std::move(payload));
        return;
      }
      handler = &it->second;
    }
    megaphone::Reader r(payload);
    (*handler)(target, r);
  }

  void DispatchProgress(uint64_t key, std::vector<uint8_t> payload) {
    const ProgressHandler* handler = nullptr;
    {
      std::lock_guard<std::mutex> lock(dispatch_mu_);
      auto it = progress_handlers_.find(key);
      if (it == progress_handlers_.end()) {
        pending_progress_[key].push_back(std::move(payload));
        return;
      }
      handler = &it->second;
    }
    megaphone::Reader r(payload);
    (*handler)(r);
  }

  MeshOptions opts_;
  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::atomic<bool> shut_{false};
  std::vector<std::unique_ptr<Peer>> peers_;  // [process]; self is null

  std::mutex dispatch_mu_;
  std::unordered_map<uint64_t, DataHandler> data_handlers_;
  std::unordered_map<uint64_t, ProgressHandler> progress_handlers_;
  std::unordered_map<uint64_t,
                     std::vector<std::pair<uint32_t, std::vector<uint8_t>>>>
      pending_data_;
  std::unordered_map<uint64_t, std::vector<std::vector<uint8_t>>>
      pending_progress_;
};

}  // namespace net
}  // namespace megaphone
