// Deterministic fault injection for the process mesh.
//
// A FaultSpec is a *seeded schedule* of transport faults — drop, delay,
// duplicate, corrupt, partition, crash — applied by the mesh send path to
// first transmissions of sequenced frames. Retransmissions and protocol
// frames (ack/nack/heartbeat/goodbye) are exempt, so any run whose
// processes stay alive terminates: the reliability layer can always
// repair what the injector breaks. Partition additionally blackholes
// heartbeats, which is exactly what turns it into a PeerDown at the
// receiver's deadline.
//
// Each link direction gets its own FaultInjector seeded from
// (spec.seed, self process, peer process), so a given configuration
// replays the identical fault schedule on every run — failures are
// reproducible test inputs, not flakes (ISSUE 6; the recovery-latency
// framing follows "Toward Reliable and Rapid Elasticity for Streaming
// Dataflows on Clouds").
#pragma once

#include <cstdint>
#include <string>

#include "common/check.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"
#include "common/serde.hpp"

namespace megaphone {
namespace fault {

/// Parsed form of the megabench `--fault=` knob / timely::Config field.
struct FaultSpec {
  uint64_t seed = 1;
  /// Per-frame probabilities, independent draws per first transmission.
  double drop_p = 0.0;
  double dup_p = 0.0;
  double delay_p = 0.0;
  uint64_t delay_us = 200;
  double corrupt_p = 0.0;
  /// After this many first transmissions on a link, the link blackholes
  /// every write — including heartbeats — so the peer's deadline fires
  /// and reports PeerDown. 0 = off.
  uint64_t partition_after = 0;
  /// After this many first transmissions on a link, the process raises
  /// SIGKILL (a crash mid-run, for recovery drills). 0 = off.
  uint64_t kill_after = 0;

  bool Enabled() const {
    return drop_p > 0 || dup_p > 0 || delay_p > 0 || corrupt_p > 0 ||
           partition_after > 0 || kill_after > 0;
  }

  MEGA_SERDE_FIELDS(FaultSpec, seed, drop_p, dup_p, delay_p, delay_us,
                    corrupt_p, partition_after, kill_after)

  /// Parses "key=value[,key=value...]", e.g.
  ///   drop=0.01,dup=0.01,delay=0.02,delay-us=500,corrupt=0.001,seed=7
  ///   partition=5000        (blackhole the link after 5000 frames)
  ///   kill=2000             (SIGKILL the process after 2000 frames)
  /// Unknown keys abort: a typo'd fault drill must not silently run
  /// fault-free.
  static FaultSpec Parse(const std::string& text) {
    FaultSpec spec;
    size_t pos = 0;
    while (pos < text.size()) {
      size_t end = text.find(',', pos);
      if (end == std::string::npos) end = text.size();
      std::string item = text.substr(pos, end - pos);
      pos = end + 1;
      if (item.empty()) continue;
      size_t eq = item.find('=');
      MEGA_CHECK(eq != std::string::npos)
          << "--fault item without '=': " << item;
      std::string key = item.substr(0, eq);
      std::string val = item.substr(eq + 1);
      if (key == "seed") {
        spec.seed = std::stoull(val);
      } else if (key == "drop") {
        spec.drop_p = std::stod(val);
      } else if (key == "dup") {
        spec.dup_p = std::stod(val);
      } else if (key == "delay") {
        spec.delay_p = std::stod(val);
      } else if (key == "delay-us") {
        spec.delay_us = std::stoull(val);
      } else if (key == "corrupt") {
        spec.corrupt_p = std::stod(val);
      } else if (key == "partition") {
        spec.partition_after = std::stoull(val);
      } else if (key == "kill") {
        spec.kill_after = std::stoull(val);
      } else {
        MEGA_CHECK(false) << "unknown --fault key: " << key;
      }
    }
    return spec;
  }

  std::string ToString() const {
    std::string s = "seed=" + std::to_string(seed);
    auto prob = [&](const char* key, double p) {
      if (p > 0) s += std::string(",") + key + "=" + std::to_string(p);
    };
    prob("drop", drop_p);
    prob("dup", dup_p);
    prob("delay", delay_p);
    if (delay_p > 0) s += ",delay-us=" + std::to_string(delay_us);
    prob("corrupt", corrupt_p);
    if (partition_after > 0) {
      s += ",partition=" + std::to_string(partition_after);
    }
    if (kill_after > 0) s += ",kill=" + std::to_string(kill_after);
    return s;
  }
};

/// What the injector decided for one first transmission.
struct FaultDecision {
  bool drop = false;
  bool dup = false;
  bool corrupt = false;
  uint64_t delay_us = 0;
  /// Corruption site: byte index (mod payload size) and a nonzero xor.
  uint64_t corrupt_pos = 0;
  uint8_t corrupt_xor = 1;
};

/// One injector per link direction. Deterministic: the decision stream
/// is a pure function of (spec, self, peer).
class FaultInjector {
 public:
  FaultInjector(const FaultSpec& spec, uint32_t self, uint32_t peer)
      : spec_(spec),
        rng_(HashMix64(spec.seed ^ (uint64_t{self} << 32) ^ peer ^
                       0x6d656761666c74ULL)) {}

  /// Advances the schedule by one first transmission.
  FaultDecision OnFrame() {
    ++frames_;
    if (spec_.kill_after > 0 && frames_ >= spec_.kill_after) {
      kill_due_ = true;
    }
    FaultDecision d;
    if (PartitionActive()) return d;  // blackholed at a higher level
    if (spec_.drop_p > 0 && rng_.NextDouble() < spec_.drop_p) {
      d.drop = true;
      return d;
    }
    if (spec_.dup_p > 0 && rng_.NextDouble() < spec_.dup_p) d.dup = true;
    if (spec_.delay_p > 0 && rng_.NextDouble() < spec_.delay_p) {
      d.delay_us = spec_.delay_us;
    }
    if (spec_.corrupt_p > 0 && rng_.NextDouble() < spec_.corrupt_p) {
      d.corrupt = true;
      d.corrupt_pos = rng_.Next();
      d.corrupt_xor = static_cast<uint8_t>(1 + rng_.NextBelow(255));
    }
    return d;
  }

  /// True once the partition threshold has been crossed: from here on
  /// the link writes nothing at all (callers check before every write).
  bool PartitionActive() const {
    return spec_.partition_after > 0 && frames_ > spec_.partition_after;
  }

  /// True once the kill threshold has been crossed; the caller raises
  /// SIGKILL (the injector cannot, portably, from a header).
  bool KillDue() const { return kill_due_; }

  uint64_t frames() const { return frames_; }

 private:
  FaultSpec spec_;
  Xoshiro256 rng_;
  uint64_t frames_ = 0;
  bool kill_due_ = false;
};

}  // namespace fault
}  // namespace megaphone
