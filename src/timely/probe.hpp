// Probes: passive observation of a stream's frontier.
//
// Megaphone's F operators monitor the output frontier of the S operators
// through a probe (paper §4.3); the probe reports, for any time t, whether
// records at times earlier than t might still appear on the probed stream.
#pragma once

#include <memory>
#include <utility>

#include "timely/operator.hpp"
#include "timely/stream.hpp"
#include "timely/worker.hpp"

namespace timely {

/// Shared handle onto the frontier of a probed stream. Cheap to copy;
/// reads are cached against the tracker's version counter.
template <typename T>
class ProbeHandle {
 public:
  ProbeHandle() = default;
  ProbeHandle(std::shared_ptr<DataflowShared<T>> shared, uint32_t loc)
      : state_(std::make_shared<State>()), shared_(std::move(shared)),
        loc_(loc) {}

  /// Current frontier of the probed stream.
  Antichain<T> Read() const {
    Refresh();
    return state_->cached;
  }

  /// True iff a record with time strictly less than `t` may still appear.
  bool LessThan(const T& t) const {
    Refresh();
    return state_->cached.LessThan(t);
  }

  /// True iff a record with time ≤ `t` may still appear.
  bool LessEqual(const T& t) const {
    Refresh();
    return state_->cached.LessEqual(t);
  }

  /// True iff no record can ever appear again (stream complete).
  bool Done() const {
    Refresh();
    return state_->cached.empty();
  }

  bool valid() const { return shared_ != nullptr; }

 private:
  struct State {
    mutable uint64_t seen_version = ~uint64_t{0};
    mutable Antichain<T> cached;
  };

  void Refresh() const {
    uint64_t v = shared_->tracker.version();
    if (v != state_->seen_version) {
      state_->cached = shared_->tracker.FrontierAt(loc_);
      state_->seen_version = v;
    }
  }

  std::shared_ptr<State> state_;
  std::shared_ptr<DataflowShared<T>> shared_;
  uint32_t loc_ = 0;
};

/// Attaches a probe to `stream`; the returned handle reports the frontier
/// at the probe's input, i.e. the global completion state of the stream.
template <typename D, typename T>
ProbeHandle<T> Probe(Stream<D, T> stream) {
  Scope<T>& scope = *stream.scope();
  OperatorBuilder<T> b(scope, "Probe");
  auto* in = b.AddInput(stream, Pact<D>::Pipeline());
  uint32_t loc = in->loc();
  b.Build([in](OpCtx<T>&) {
    in->ForEach([](const T&, std::vector<D>&) {});
  });
  return ProbeHandle<T>(scope.df()->shared(), loc);
}

}  // namespace timely
