// Operator construction: parallelization contracts, typed input/output
// handles, capability management, and the operator builder.
//
// The shapes here mirror timely dataflow's generic operator interface: a
// builder on which typed inputs (each with a parallelization contract
// deciding which worker receives each record) and typed outputs are
// declared, then a logic closure that is scheduled repeatedly. Capabilities
// follow timely's discipline: a message at time t received this scheduling
// step grants the right to send at times ≥ t and to retain an explicit
// capability at times ≥ t; explicit capabilities must be retained to defer
// output to a later step and released when done, which is what lets
// downstream frontiers advance.
//
// The record path is batch-first: SendBatch dispatches on the contract
// once per batch (the concrete routing functor is devirtualized into a
// single type-erased call computing every record's target), input handles
// drain whole channel queues with one lock, bundle buffers are recycled
// through the channel's pool, and each scheduling step publishes ONE
// consolidated progress batch — produced counts, consumed counts, and
// capability changes together — before staged bundles become visible.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/rate_limiter.hpp"
#include "common/time_util.hpp"
#include "timely/channel.hpp"
#include "timely/node.hpp"
#include "timely/stream.hpp"
#include "timely/worker.hpp"

namespace timely {

/// Parallelization contract: decides the receiving worker for each record
/// on a channel.
///
/// Exchange and Route are constructed from arbitrary callables; the
/// concrete functor is captured twice — once per-record (for Send) and
/// once inside `batch_targets`, which computes the targets of a whole
/// batch in one type-erased call so the per-record loop is devirtualized.
template <typename D>
struct Pact {
  enum class Kind { kPipeline, kExchange, kBroadcast, kRoute };

  Kind kind = Kind::kPipeline;
  std::function<uint64_t(const D&)> hash;   // kExchange: target = hash % W
  std::function<uint32_t(const D&)> route;  // kRoute: explicit worker id
  /// Batch fast path (kExchange/kRoute): fills `targets[0..n)` with the
  /// destination worker of each record.
  std::function<void(const D* data, size_t n, uint32_t peers,
                     uint32_t* targets)>
      batch_targets;

  /// Records stay on the sending worker.
  static Pact Pipeline() { return Pact{}; }

  /// Records are partitioned by a hash of their content.
  template <typename H>
  static Pact Exchange(H h) {
    Pact p;
    p.kind = Kind::kExchange;
    p.hash = h;
    p.batch_targets = [h](const D* data, size_t n, uint32_t peers,
                          uint32_t* targets) {
      for (size_t i = 0; i < n; ++i) {
        targets[i] = static_cast<uint32_t>(h(data[i]) % peers);
      }
    };
    return p;
  }

  /// Every record is delivered to every worker (requires copyable D).
  static Pact Broadcast() {
    Pact p;
    p.kind = Kind::kBroadcast;
    return p;
  }

  /// Records carry their destination worker explicitly.
  template <typename R>
  static Pact Route(R r) {
    Pact p;
    p.kind = Kind::kRoute;
    p.route = r;
    p.batch_targets = [r](const D* data, size_t n, uint32_t /*peers*/,
                          uint32_t* targets) {
      for (size_t i = 0; i < n; ++i) targets[i] = r(data[i]);
    };
    return p;
  }
};

template <typename T>
class OpCtx;

/// Step-scoped flushing protocol implemented by output handles. A node
/// first *stages* every non-empty buffer (bundles move out of the
/// buffers, produced counts append to the step's change batch), then the
/// batch is applied to the tracker in one consolidated call, and only
/// then are staged bundles *committed* (made visible in channels) — the
/// safety order, with one tracker acquisition per step instead of one per
/// buffer plus one per step.
template <typename T>
class StepFlushable : public Flushable {
 public:
  /// Moves full buffers into the staging area; appends their produced
  /// counts to `changes`. Returns true if anything was staged.
  virtual bool StageFlush(std::vector<Change<T>>& changes) = 0;
  /// Publishes staged bundles to their channels (and drains any byte
  /// throttle). Must be called after `changes` has been applied.
  virtual bool CommitFlush() = 0;
};

/// Typed output port handle. Owns per-channel, per-target buffers; flushing
/// a buffer first applies the `produced` count to the progress tracker and
/// only then makes the bundle visible in the channel (the safety order).
///
/// An optional byte throttle models network bandwidth: flushed bundles are
/// counted immediately (they occupy sender memory, as serialized state does
/// in the paper's Fig. 20) but enter the channel only as the token bucket
/// admits them.
template <typename D, typename T>
class OutputHandle final : public StepFlushable<T> {
 public:
  OutputHandle(ProgressTracker<T>* tracker, uint32_t worker, uint32_t peers,
               OpCtx<T>* cap_ctx)
      : tracker_(tracker), worker_(worker), peers_(peers), cap_ctx_(cap_ctx) {}

  /// Build-time: connect a consumer channel with its contract and the
  /// location of the consumer's input port.
  void Attach(std::shared_ptr<Channel<D, T>> chan, Pact<D> pact,
              uint32_t dst_loc) {
    attachments_.push_back(Attachment{std::move(chan), std::move(pact),
                                      dst_loc,
                                      std::vector<Bundle<D, T>>(peers_)});
  }

  /// Enables byte throttling (bytes_per_sec == 0 disables). `size_of`
  /// estimates the wire size of one record.
  void SetThrottle(uint64_t bytes_per_sec,
                   std::function<size_t(const D&)> size_of) {
    throttle_.emplace(bytes_per_sec);
    size_of_ = std::move(size_of);
  }

  void Send(const T& time, D item) {
    DebugCheckMaySend(time);
    for (size_t a = 0; a < attachments_.size(); ++a) {
      bool last = (a + 1 == attachments_.size());
      RouteIntoBuffers(attachments_[a], time, item, last);
    }
  }

  /// Sends every element of `items` at `time`. The contract dispatch runs
  /// once per attachment, not once per record; `items` is left empty (its
  /// capacity is retained for the caller to reuse).
  void SendBatch(const T& time, std::vector<D>&& items) {
    if (items.empty()) return;
    DebugCheckMaySend(time);
    for (size_t a = 0; a < attachments_.size(); ++a) {
      bool last = (a + 1 == attachments_.size());
      RouteBatchIntoBuffers(attachments_[a], time, items, last);
    }
    items.clear();
  }

  /// Zero-copy send of a pre-routed batch: `items` is adopted as one
  /// bundle for `target` and replaced with an empty pooled buffer, so the
  /// caller's partitioning buffer cycles through the channel's pool. Only
  /// valid on single-attachment outputs whose contract delivers each of
  /// `items` to `target` (the caller's guarantee — e.g. a Route contract
  /// reading a target the caller just wrote). Inside an operator step the
  /// bundle is staged and becomes visible with the step's consolidated
  /// progress batch; outside one it is published immediately.
  void SendBundle(const T& time, uint32_t target, std::vector<D>& items) {
    if (items.empty()) return;
    DebugCheckMaySend(time);
    MEGA_DCHECK(attachments_.size() == 1);
    Attachment& att = attachments_[0];
    if (throttle_) {
      if (!att.buffers[target].data.empty()) FlushBuffer(att, target);
      tracker_->ApplyOne(att.dst_loc, time,
                         static_cast<int64_t>(items.size()));
      Bundle<D, T> bundle;
      bundle.time = time;
      bundle.data = std::move(items);
      items = att.chan->AcquireBuffer(worker_);
      size_t bytes = 0;
      for (const auto& d : bundle.data) bytes += size_of_(d);
      pending_bytes_ += bytes;
      pending_.push_back(PendingBundle{0, target, bytes, std::move(bundle)});
      DrainPending();
    } else {
      AdoptAsBundle(att, target, time, items);
    }
  }

  /// Immediate flush (input handles, step-external senders): stage, apply
  /// the consolidated batch, commit.
  bool Flush() override {
    flush_scratch_.clear();
    bool any = StageFlush(flush_scratch_);
    ConsolidateChanges(flush_scratch_);
    if (!flush_scratch_.empty()) {
      tracker_->Apply(std::span<const Change<T>>(flush_scratch_.data(),
                                                 flush_scratch_.size()));
    }
    any |= CommitFlush();
    return any;
  }

  bool StageFlush(std::vector<Change<T>>& changes) override {
    bool any = false;
    for (auto& att : attachments_) {
      for (uint32_t w = 0; w < peers_; ++w) {
        if (!att.buffers[w].data.empty()) {
          StageBuffer(att, w, changes);
          any = true;
        }
      }
    }
    return any;
  }

  bool CommitFlush() override {
    bool any = !staged_.empty();
    // Consecutive staged bundles for the same channel and target (e.g. a
    // partial buffer staged ahead of an adopted bundle) publish under one
    // lock via PushMany.
    size_t i = 0;
    while (i < staged_.size()) {
      size_t j = i + 1;
      while (j < staged_.size() && staged_[j].att_idx == staged_[i].att_idx &&
             staged_[j].target == staged_[i].target) {
        ++j;
      }
      Channel<D, T>* chan = attachments_[staged_[i].att_idx].chan.get();
      if (j - i == 1) {
        chan->Push(staged_[i].target, std::move(staged_[i].bundle));
      } else {
        commit_scratch_.clear();
        for (size_t k = i; k < j; ++k) {
          commit_scratch_.push_back(std::move(staged_[k].bundle));
        }
        chan->PushMany(staged_[i].target, commit_scratch_);
      }
      i = j;
    }
    staged_.clear();
    any |= DrainPending();
    return any;
  }

  /// Bytes currently held by the throttle queue (sender-side memory).
  size_t PendingThrottledBytes() const { return pending_bytes_; }

 private:
  struct Attachment {
    std::shared_ptr<Channel<D, T>> chan;
    Pact<D> pact;
    uint32_t dst_loc;
    std::vector<Bundle<D, T>> buffers;  // per target worker
  };

  // Maximum records per bundle. Since every step flushes its partial
  // buffers, this only caps bundles mid-step; larger bundles amortize
  // channel and tracker synchronization without a latency cost.
  static constexpr size_t kBatch = 4096;
  // Below this batch size the shuffle fast path's per-target bundles get
  // too small to amortize their bookkeeping; records append into the
  // accumulating buffers instead.
  static constexpr size_t kScatterMin = 512;

  void DebugCheckMaySend(const T& time);

  void RouteIntoBuffers(Attachment& att, const T& time, D& item, bool may_move) {
    switch (att.pact.kind) {
      case Pact<D>::Kind::kPipeline:
        Append(att, worker_, time, item, may_move);
        break;
      case Pact<D>::Kind::kExchange: {
        uint32_t w = static_cast<uint32_t>(att.pact.hash(item) % peers_);
        Append(att, w, time, item, may_move);
        break;
      }
      case Pact<D>::Kind::kBroadcast:
        for (uint32_t w = 0; w < peers_; ++w) {
          Append(att, w, time, item, may_move && (w + 1 == peers_));
        }
        break;
      case Pact<D>::Kind::kRoute: {
        uint32_t w = att.pact.route(item);
        MEGA_DCHECK(w < peers_);
        Append(att, w, time, item, may_move);
        break;
      }
    }
  }

  /// Batch routing: one contract dispatch per call. Pipeline and
  /// Broadcast bulk-append; Exchange and Route compute all targets with a
  /// single type-erased call, then run a dispatch-free per-record loop.
  void RouteBatchIntoBuffers(Attachment& att, const T& time,
                             std::vector<D>& items, bool may_move) {
    switch (att.pact.kind) {
      case Pact<D>::Kind::kPipeline:
        if (may_move && !throttle_ && items.size() >= kScatterMin) {
          AdoptAsBundle(att, worker_, time, items);
        } else {
          AppendRange(att, worker_, time, items, may_move);
        }
        break;
      case Pact<D>::Kind::kBroadcast:
        for (uint32_t w = 0; w < peers_; ++w) {
          AppendRange(att, w, time, items, may_move && (w + 1 == peers_));
        }
        break;
      case Pact<D>::Kind::kExchange:
      case Pact<D>::Kind::kRoute: {
        targets_scratch_.resize(items.size());
        att.pact.batch_targets(items.data(), items.size(), peers_,
                               targets_scratch_.data());
        if (may_move && !throttle_ && items.size() >= kScatterMin) {
          ScatterAdopt(att, time, items);
          break;
        }
        for (size_t i = 0; i < items.size(); ++i) {
          uint32_t w = targets_scratch_[i];
          MEGA_DCHECK(w < peers_);
          Append(att, w, time, items[i], may_move);
        }
        break;
      }
    }
  }

  /// Large-batch pipeline fast path: adopt the whole batch as one bundle
  /// for `target` — zero copy; `items` is replaced with a pooled buffer.
  void AdoptAsBundle(Attachment& att, uint32_t target, const T& time,
                     std::vector<D>& items) {
    const bool staged = cap_ctx_ != nullptr;
    if (!att.buffers[target].data.empty()) {
      // Earlier per-record Sends stay ahead in FIFO order.
      if (staged) {
        StageBuffer(att, target, cap_ctx_->step_changes());
      } else {
        FlushBuffer(att, target);
      }
    }
    Bundle<D, T> bundle;
    bundle.time = time;
    bundle.data = std::move(items);
    items = att.chan->AcquireBuffer(worker_);
    size_t att_idx = static_cast<size_t>(&att - attachments_.data());
    if (staged) {
      cap_ctx_->step_changes().push_back(Change<T>{
          att.dst_loc, time, static_cast<int64_t>(bundle.data.size())});
      staged_.push_back(StagedBundle{att_idx, target, std::move(bundle)});
    } else {
      tracker_->ApplyOne(att.dst_loc, time,
                         static_cast<int64_t>(bundle.data.size()));
      att.chan->Push(target, std::move(bundle));
    }
  }

  /// Large-batch shuffle fast path: partition records into per-target
  /// pooled buffers (one branch-light pass, `targets_scratch_` already
  /// filled), then adopt each nonempty partition directly as a bundle —
  /// no per-record buffer bookkeeping and no second copy. Production is
  /// counted in one tracker batch (or folded into the step's batch inside
  /// an operator) before any bundle becomes visible.
  void ScatterAdopt(Attachment& att, const T& time, std::vector<D>& items) {
    if (scatter_scratch_.size() < peers_) scatter_scratch_.resize(peers_);
    for (size_t i = 0; i < items.size(); ++i) {
      uint32_t w = targets_scratch_[i];
      MEGA_DCHECK(w < peers_);
      scatter_scratch_[w].push_back(std::move(items[i]));
    }
    const bool staged = cap_ctx_ != nullptr;
    size_t first_staged = staged_.size();
    flush_scratch_.clear();
    for (uint32_t w = 0; w < peers_; ++w) {
      auto& part = scatter_scratch_[w];
      if (part.empty()) continue;
      auto& changes = staged ? cap_ctx_->step_changes() : flush_scratch_;
      // Keep earlier per-record Sends ahead of the adopted bundle: stage
      // them first (or, on the immediate path, push them right away).
      if (!att.buffers[w].data.empty()) {
        if (staged) {
          StageBuffer(att, w, changes);
        } else {
          FlushBuffer(att, w);
        }
      }
      changes.push_back(
          Change<T>{att.dst_loc, time, static_cast<int64_t>(part.size())});
      Bundle<D, T> bundle;
      bundle.time = time;
      bundle.data = std::move(part);
      part = att.chan->AcquireBuffer(worker_);
      size_t att_idx = static_cast<size_t>(&att - attachments_.data());
      staged_.push_back(StagedBundle{att_idx, w, std::move(bundle)});
    }
    if (!staged) {
      // Immediate context (e.g. a dataflow input): count production now,
      // then publish the adopted bundles.
      if (!flush_scratch_.empty()) {
        tracker_->Apply(std::span<const Change<T>>(flush_scratch_.data(),
                                                   flush_scratch_.size()));
        flush_scratch_.clear();
      }
      for (size_t i = first_staged; i < staged_.size(); ++i) {
        attachments_[staged_[i].att_idx].chan->Push(
            staged_[i].target, std::move(staged_[i].bundle));
      }
      staged_.resize(first_staged);
    }
  }

  void Append(Attachment& att, uint32_t target, const T& time, D& item,
              bool may_move) {
    auto& buf = att.buffers[target];
    if (!buf.data.empty() && !(buf.time == time)) FlushOrStage(att, target);
    if (buf.data.empty()) {
      buf.time = time;
      if (buf.data.capacity() == 0) buf.data = att.chan->AcquireBuffer(worker_);
    }
    if (may_move) {
      buf.data.push_back(std::move(item));
    } else {
      buf.data.push_back(item);
    }
    if (buf.data.size() >= kBatch) FlushOrStage(att, target);
  }

  /// Bulk append of a whole batch to one target, flushing at bundle
  /// boundaries. Insertion is ranged, so trivially copyable records
  /// memcpy instead of pushing one at a time.
  void AppendRange(Attachment& att, uint32_t target, const T& time,
                   std::vector<D>& items, bool may_move) {
    auto& buf = att.buffers[target];
    if (!buf.data.empty() && !(buf.time == time)) FlushOrStage(att, target);
    size_t i = 0;
    const size_t n = items.size();
    while (i < n) {
      if (buf.data.empty()) {
        buf.time = time;
        if (buf.data.capacity() == 0) buf.data = att.chan->AcquireBuffer(worker_);
      }
      size_t room = buf.data.size() < kBatch ? kBatch - buf.data.size() : 0;
      size_t take = std::min(room, n - i);
      if (may_move) {
        buf.data.insert(buf.data.end(),
                        std::make_move_iterator(items.begin() + i),
                        std::make_move_iterator(items.begin() + i + take));
      } else {
        buf.data.insert(buf.data.end(), items.begin() + i,
                        items.begin() + i + take);
      }
      i += take;
      if (buf.data.size() >= kBatch) FlushOrStage(att, target);
    }
  }

  /// Mid-step bundle boundary. Inside an operator step the full buffer
  /// must go through the step's staged batch — a direct Push would let it
  /// overtake earlier staged bundles for the same target; outside one
  /// (input handles) it publishes immediately.
  void FlushOrStage(Attachment& att, uint32_t target) {
    if (cap_ctx_ != nullptr) {
      StageBuffer(att, target, cap_ctx_->step_changes());
    } else {
      FlushBuffer(att, target);
    }
  }

  /// Moves a full buffer out as a bundle: the produced count goes into
  /// `changes` (applied before the bundle becomes visible), the bundle
  /// into the staging area — or the throttle queue, which counts
  /// production immediately as well.
  void StageBuffer(Attachment& att, uint32_t target,
                   std::vector<Change<T>>& changes) {
    auto& buf = att.buffers[target];
    changes.push_back(Change<T>{att.dst_loc, buf.time,
                                static_cast<int64_t>(buf.data.size())});
    Bundle<D, T> bundle;
    bundle.time = buf.time;
    bundle.data = std::move(buf.data);
    buf.data.clear();
    size_t att_idx = static_cast<size_t>(&att - attachments_.data());
    if (!throttle_) {
      staged_.push_back(StagedBundle{att_idx, target, std::move(bundle)});
    } else {
      size_t bytes = 0;
      for (const auto& d : bundle.data) bytes += size_of_(d);
      pending_bytes_ += bytes;
      pending_.push_back(PendingBundle{att_idx, target, bytes,
                                       std::move(bundle)});
    }
  }

  /// Immediate flush of one buffer (mid-step bundle boundary): count
  /// production, then publish, without waiting for step end.
  void FlushBuffer(Attachment& att, uint32_t target) {
    auto& buf = att.buffers[target];
    if (buf.data.empty()) return;
    // Count production before the bundle becomes visible anywhere.
    tracker_->ApplyOne(att.dst_loc, buf.time,
                       static_cast<int64_t>(buf.data.size()));
    Bundle<D, T> bundle;
    bundle.time = buf.time;
    bundle.data = std::move(buf.data);
    buf.data.clear();
    if (!throttle_) {
      att.chan->Push(target, std::move(bundle));
    } else {
      size_t bytes = 0;
      for (const auto& d : bundle.data) bytes += size_of_(d);
      pending_bytes_ += bytes;
      size_t att_idx = static_cast<size_t>(&att - attachments_.data());
      pending_.push_back(PendingBundle{att_idx, target, bytes,
                                       std::move(bundle)});
      DrainPending();
    }
  }

  bool DrainPending() {
    if (!throttle_) return false;
    bool any = false;
    uint64_t now = megaphone::NowNanos();
    while (!pending_.empty() &&
           throttle_->Admit(pending_.front().bytes, now)) {
      auto& p = pending_.front();
      pending_bytes_ -= p.bytes;
      attachments_[p.att_idx].chan->Push(p.target, std::move(p.bundle));
      pending_.pop_front();
      any = true;
    }
    return any;
  }

  struct StagedBundle {
    size_t att_idx;
    uint32_t target;
    Bundle<D, T> bundle;
  };

  struct PendingBundle {
    size_t att_idx;
    uint32_t target;
    size_t bytes;
    Bundle<D, T> bundle;
  };

  ProgressTracker<T>* tracker_;
  uint32_t worker_;
  uint32_t peers_;
  OpCtx<T>* cap_ctx_;  // nullable (input handles have no operator context)
  std::vector<Attachment> attachments_;
  std::vector<uint32_t> targets_scratch_;
  std::vector<std::vector<D>> scatter_scratch_;  // per target worker
  std::vector<StagedBundle> staged_;
  std::deque<Bundle<D, T>> commit_scratch_;
  std::vector<Change<T>> flush_scratch_;
  std::optional<megaphone::ByteThrottle> throttle_;
  std::function<size_t(const D&)> size_of_;
  std::deque<PendingBundle> pending_;
  size_t pending_bytes_ = 0;
};

/// Typed input port handle: drains queued bundles and exposes the port's
/// frontier.
template <typename D, typename T>
class InputHandle {
 public:
  InputHandle(std::shared_ptr<Channel<D, T>> chan, uint32_t loc,
              int32_t port_idx, DataflowInstance<T>* df, OpCtx<T>* ctx)
      : chan_(std::move(chan)),
        loc_(loc),
        port_idx_(port_idx),
        df_(df),
        ctx_(ctx) {}

  /// Calls `f(time, data)` for every queued bundle, recording consumption.
  /// The whole queue is drained with one lock acquisition; `data` may be
  /// consumed destructively, and buffers left behind are recycled into the
  /// channel's pool. Returns true if any bundle was delivered.
  template <typename F>
  bool ForEach(F f) {
    if (chan_->PullAll(df_->worker_index(), drained_) == 0) return false;
    for (auto& bundle : drained_) {
      ctx_->RecordConsumed(loc_, bundle.time,
                           static_cast<int64_t>(bundle.data.size()));
      f(bundle.time, bundle.data);
      chan_->RecycleBuffer(std::move(bundle.data), df_->worker_index());
    }
    drained_.clear();
    return true;
  }

  /// The frontier of this input: timestamps that may still arrive here.
  const Antichain<T>& frontier() const {
    return df_->FrontierOfPort(port_idx_);
  }

  uint32_t loc() const { return loc_; }

 private:
  std::shared_ptr<Channel<D, T>> chan_;
  uint32_t loc_;
  int32_t port_idx_;
  DataflowInstance<T>* df_;
  OpCtx<T>* ctx_;
  std::deque<Bundle<D, T>> drained_;
};

/// Per-node operator context: capability accounting and the end-of-step
/// progress batch.
template <typename T>
class OpCtx {
 public:
  OpCtx(DataflowInstance<T>* df, std::string name)
      : df_(df), name_(std::move(name)) {}

  uint32_t worker() const { return df_->worker_index(); }
  uint32_t peers() const { return df_->peers(); }
  const std::string& name() const { return name_; }

  /// Retains an explicit capability at `t` on every output of this node.
  /// Legal if `t` is in advance of a held capability or of a message time
  /// consumed this step.
  void Retain(const T& t) {
    MEGA_DCHECK(MaySend(t)) << "Retain at non-capable time in " << name_;
    caps_[t]++;
    for (uint32_t loc : output_locs_) {
      end_changes_.push_back(Change<T>{loc, t, +1});
    }
  }

  /// Releases one previously retained capability at `t`.
  void Release(const T& t) {
    auto it = caps_.find(t);
    MEGA_CHECK(it != caps_.end() && it->second > 0)
        << "Release without capability in " << name_;
    if (--it->second == 0) caps_.erase(it);
    for (uint32_t loc : output_locs_) {
      end_changes_.push_back(Change<T>{loc, t, -1});
    }
  }

  bool HasCap(const T& t) const { return caps_.count(t) > 0; }
  const std::map<T, int64_t>& caps() const { return caps_; }
  const std::vector<uint32_t>& output_locs() const { return output_locs_; }

  /// True if the node may currently produce output at time `t`.
  bool MaySend(const T& t) const {
    for (const auto& [ct, n] : caps_) {
      if (n > 0 && TimestampTraits<T>::LessEqual(ct, t)) return true;
    }
    for (const auto& st : step_times_) {
      if (TimestampTraits<T>::LessEqual(st, t)) return true;
    }
    return false;
  }

  // --- engine internals -----------------------------------------------

  void RecordConsumed(uint32_t loc, const T& time, int64_t count) {
    if (step_times_.empty() || !(step_times_.back() == time)) {
      step_times_.push_back(time);
    }
    end_changes_.push_back(Change<T>{loc, time, -count});
    consumed_any_ = true;
  }

  /// Registers that a message at `time` was received this step without a
  /// count change — used for same-worker handoffs whose produced and
  /// consumed deltas cancel within the step. Grants the same capability
  /// basis as RecordConsumed (the right to send and retain at ≥ time).
  void NoteInputTime(const T& time) {
    if (step_times_.empty() || !(step_times_.back() == time)) {
      step_times_.push_back(time);
    }
    consumed_any_ = true;
  }

  void AddOutputLoc(uint32_t loc) { output_locs_.push_back(loc); }
  DataflowInstance<T>* df() { return df_; }

  void BeginStep() {
    consumed_any_ = false;
  }

  /// The step's accumulated change batch; output handles stage their
  /// produced counts into it, and EndStepInto hands the whole batch to
  /// the dataflow step for one consolidated Apply.
  std::vector<Change<T>>& step_changes() { return end_changes_; }

  /// Hands the step's progress batch — consumed counts, capability
  /// changes, and staged produced counts — to `out` (the dataflow's
  /// per-step batch, applied once for all nodes). Returns whether the
  /// step did work.
  bool EndStepInto(std::vector<Change<T>>& out) {
    bool active = consumed_any_ || !end_changes_.empty();
    if (!end_changes_.empty()) {
      out.insert(out.end(), end_changes_.begin(), end_changes_.end());
      end_changes_.clear();
    }
    step_times_.clear();
    consumed_any_ = false;
    return active;
  }

 private:
  DataflowInstance<T>* df_;
  std::string name_;
  std::vector<uint32_t> output_locs_;
  std::map<T, int64_t> caps_;
  std::vector<T> step_times_;
  std::vector<Change<T>> end_changes_;
  bool consumed_any_ = false;
};

template <typename D, typename T>
void OutputHandle<D, T>::DebugCheckMaySend(const T& time) {
  MEGA_DCHECK(cap_ctx_ == nullptr || cap_ctx_->MaySend(time))
      << "Send at non-capable time";
  (void)time;
}

/// The generic operator node: runs user logic, stages its outputs and
/// progress changes into the dataflow step's batch (applied once for all
/// nodes), then CommitStep publishes the staged bundles (the safety
/// order: counts first).
template <typename T>
class OperatorNode final : public NodeBase<T> {
 public:
  OperatorNode(DataflowInstance<T>* df, std::string name)
      : ctx_(df, std::move(name)) {}

  bool Schedule(DataflowInstance<T>& df) override {
    ctx_.BeginStep();
    if (logic_) logic_(ctx_);
    bool active = false;
    for (auto* f : flushables_) active |= f->StageFlush(ctx_.step_changes());
    active |= ctx_.EndStepInto(df.step_changes());
    return active;
  }

  bool CommitStep() override {
    bool any = false;
    for (auto* f : flushables_) any |= f->CommitFlush();
    return any;
  }

  OpCtx<T>& ctx() { return ctx_; }
  void set_logic(std::function<void(OpCtx<T>&)> logic) {
    logic_ = std::move(logic);
  }
  void AddFlushable(StepFlushable<T>* f) { flushables_.push_back(f); }
  void Own(std::shared_ptr<void> p) { owned_.push_back(std::move(p)); }

 private:
  OpCtx<T> ctx_;
  std::function<void(OpCtx<T>&)> logic_;
  std::vector<StepFlushable<T>*> flushables_;
  std::vector<std::shared_ptr<void>> owned_;
};

/// Declarative construction of one operator node.
///
///   OperatorBuilder<uint64_t> b(scope, "WordCount");
///   auto* in = b.AddInput(words, Pact<Word>::Exchange(hash));
///   auto [out, stream] = b.AddOutput<Count>();
///   b.Build([=](OpCtx<uint64_t>& ctx) { ... in->ForEach(...) ... });
template <typename T>
class OperatorBuilder {
 public:
  OperatorBuilder(Scope<T>& scope, std::string name) : scope_(&scope) {
    node_id_ = scope_->ReserveNode(name);
    node_ = std::make_unique<OperatorNode<T>>(scope_->df(), std::move(name));
  }

  /// Declares a typed input fed from `stream` under contract `pact`. All
  /// inputs must be declared before any output.
  template <typename D>
  InputHandle<D, T>* AddInput(Stream<D, T> stream, Pact<D> pact) {
    MEGA_CHECK(stream.valid());
    auto [loc, port_idx] = scope_->AddInputPort(node_id_);
    scope_->AddEdge(stream.loc(), loc);
    auto chan =
        scope_->template GetChannel<Channel<D, T>>();
    stream.output()->Attach(chan, std::move(pact), loc);
    auto handle = std::make_shared<InputHandle<D, T>>(
        std::move(chan), loc, port_idx, scope_->df(), &node_->ctx());
    auto* raw = handle.get();
    node_->Own(std::move(handle));
    return raw;
  }

  /// Declares a typed output; returns the handle (for the logic closure)
  /// and the stream (for downstream consumers).
  template <typename D>
  std::pair<OutputHandle<D, T>*, Stream<D, T>> AddOutput() {
    uint32_t loc = scope_->AddOutputPort(node_id_);
    node_->ctx().AddOutputLoc(loc);
    auto handle = std::make_shared<OutputHandle<D, T>>(
        &scope_->df()->tracker(), scope_->worker(), scope_->peers(),
        &node_->ctx());
    auto* raw = handle.get();
    node_->AddFlushable(raw);
    node_->Own(std::move(handle));
    return {raw, Stream<D, T>(scope_, raw, loc)};
  }

  /// Finalizes the node with its logic closure and installs it.
  void Build(std::function<void(OpCtx<T>&)> logic) {
    if (node_->ctx().output_locs().empty()) {
      // Output-less nodes (sinks) still need their retained capabilities
      // visible to the progress tracker, or the dataflow could be declared
      // complete while a notification is pending. A phantom output port
      // that feeds no channel counts capabilities without affecting any
      // frontier.
      uint32_t loc = scope_->AddOutputPort(node_id_);
      node_->ctx().AddOutputLoc(loc);
    }
    node_->set_logic(std::move(logic));
    scope_->df()->AddNode(std::move(node_));
  }

 private:
  Scope<T>* scope_;
  uint32_t node_id_;
  std::unique_ptr<OperatorNode<T>> node_;
};

}  // namespace timely
