// Operator construction: parallelization contracts, typed input/output
// handles, capability management, and the operator builder.
//
// The shapes here mirror timely dataflow's generic operator interface: a
// builder on which typed inputs (each with a parallelization contract
// deciding which worker receives each record) and typed outputs are
// declared, then a logic closure that is scheduled repeatedly. Capabilities
// follow timely's discipline: a message at time t received this scheduling
// step grants the right to send at times ≥ t and to retain an explicit
// capability at times ≥ t; explicit capabilities must be retained to defer
// output to a later step and released when done, which is what lets
// downstream frontiers advance.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/rate_limiter.hpp"
#include "common/time_util.hpp"
#include "timely/channel.hpp"
#include "timely/node.hpp"
#include "timely/stream.hpp"
#include "timely/worker.hpp"

namespace timely {

/// Parallelization contract: decides the receiving worker for each record
/// on a channel.
template <typename D>
struct Pact {
  enum class Kind { kPipeline, kExchange, kBroadcast, kRoute };

  Kind kind = Kind::kPipeline;
  std::function<uint64_t(const D&)> hash;   // kExchange: target = hash % W
  std::function<uint32_t(const D&)> route;  // kRoute: explicit worker id

  /// Records stay on the sending worker.
  static Pact Pipeline() { return Pact{Kind::kPipeline, nullptr, nullptr}; }
  /// Records are partitioned by a hash of their content.
  static Pact Exchange(std::function<uint64_t(const D&)> h) {
    return Pact{Kind::kExchange, std::move(h), nullptr};
  }
  /// Every record is delivered to every worker (requires copyable D).
  static Pact Broadcast() { return Pact{Kind::kBroadcast, nullptr, nullptr}; }
  /// Records carry their destination worker explicitly.
  static Pact Route(std::function<uint32_t(const D&)> r) {
    return Pact{Kind::kRoute, nullptr, std::move(r)};
  }
};

template <typename T>
class OpCtx;

/// Typed output port handle. Owns per-channel, per-target buffers; flushing
/// a buffer first applies the `produced` count to the progress tracker and
/// only then makes the bundle visible in the channel (the safety order).
///
/// An optional byte throttle models network bandwidth: flushed bundles are
/// counted immediately (they occupy sender memory, as serialized state does
/// in the paper's Fig. 20) but enter the channel only as the token bucket
/// admits them.
template <typename D, typename T>
class OutputHandle final : public Flushable {
 public:
  OutputHandle(ProgressTracker<T>* tracker, uint32_t worker, uint32_t peers,
               OpCtx<T>* cap_ctx)
      : tracker_(tracker), worker_(worker), peers_(peers), cap_ctx_(cap_ctx) {}

  /// Build-time: connect a consumer channel with its contract and the
  /// location of the consumer's input port.
  void Attach(std::shared_ptr<Channel<D, T>> chan, Pact<D> pact,
              uint32_t dst_loc) {
    attachments_.push_back(Attachment{std::move(chan), std::move(pact),
                                      dst_loc,
                                      std::vector<Bundle<D, T>>(peers_)});
  }

  /// Enables byte throttling (bytes_per_sec == 0 disables). `size_of`
  /// estimates the wire size of one record.
  void SetThrottle(uint64_t bytes_per_sec,
                   std::function<size_t(const D&)> size_of) {
    throttle_.emplace(bytes_per_sec);
    size_of_ = std::move(size_of);
  }

  void Send(const T& time, D item) {
    DebugCheckMaySend(time);
    for (size_t a = 0; a < attachments_.size(); ++a) {
      bool last = (a + 1 == attachments_.size());
      RouteIntoBuffers(attachments_[a], time, item, last);
    }
  }

  /// Sends every element of `items` at `time`.
  void SendBatch(const T& time, std::vector<D>&& items) {
    DebugCheckMaySend(time);
    for (size_t i = 0; i < items.size(); ++i) {
      for (size_t a = 0; a < attachments_.size(); ++a) {
        bool last = (a + 1 == attachments_.size());
        if (last && i + 1 == items.size()) {
          RouteIntoBuffers(attachments_[a], time, items[i], true);
        } else {
          RouteIntoBuffers(attachments_[a], time, items[i], false);
        }
      }
    }
    items.clear();
  }

  bool Flush() override {
    bool any = false;
    for (auto& att : attachments_) {
      for (uint32_t w = 0; w < peers_; ++w) {
        if (!att.buffers[w].data.empty()) {
          FlushBuffer(att, w);
          any = true;
        }
      }
    }
    any |= DrainPending();
    return any;
  }

  /// Bytes currently held by the throttle queue (sender-side memory).
  size_t PendingThrottledBytes() const { return pending_bytes_; }

 private:
  struct Attachment {
    std::shared_ptr<Channel<D, T>> chan;
    Pact<D> pact;
    uint32_t dst_loc;
    std::vector<Bundle<D, T>> buffers;  // per target worker
  };

  static constexpr size_t kBatch = 1024;

  void DebugCheckMaySend(const T& time);

  void RouteIntoBuffers(Attachment& att, const T& time, D& item, bool may_move) {
    switch (att.pact.kind) {
      case Pact<D>::Kind::kPipeline:
        Append(att, worker_, time, item, may_move);
        break;
      case Pact<D>::Kind::kExchange: {
        uint32_t w = static_cast<uint32_t>(att.pact.hash(item) % peers_);
        Append(att, w, time, item, may_move);
        break;
      }
      case Pact<D>::Kind::kBroadcast:
        for (uint32_t w = 0; w < peers_; ++w) {
          Append(att, w, time, item, may_move && (w + 1 == peers_));
        }
        break;
      case Pact<D>::Kind::kRoute: {
        uint32_t w = att.pact.route(item);
        MEGA_DCHECK(w < peers_);
        Append(att, w, time, item, may_move);
        break;
      }
    }
  }

  void Append(Attachment& att, uint32_t target, const T& time, D& item,
              bool may_move) {
    auto& buf = att.buffers[target];
    if (!buf.data.empty() && !(buf.time == time)) FlushBuffer(att, target);
    if (buf.data.empty()) buf.time = time;
    if (may_move) {
      buf.data.push_back(std::move(item));
    } else {
      buf.data.push_back(item);
    }
    if (buf.data.size() >= kBatch) FlushBuffer(att, target);
  }

  void FlushBuffer(Attachment& att, uint32_t target) {
    auto& buf = att.buffers[target];
    if (buf.data.empty()) return;
    // Count production before the bundle becomes visible anywhere.
    tracker_->ApplyOne(att.dst_loc, buf.time,
                       static_cast<int64_t>(buf.data.size()));
    Bundle<D, T> bundle;
    bundle.time = buf.time;
    bundle.data = std::move(buf.data);
    buf.data.clear();
    if (!throttle_) {
      att.chan->Push(target, std::move(bundle));
    } else {
      size_t bytes = 0;
      for (const auto& d : bundle.data) bytes += size_of_(d);
      pending_bytes_ += bytes;
      size_t att_idx = static_cast<size_t>(&att - attachments_.data());
      pending_.push_back(PendingBundle{att_idx, target, bytes,
                                       std::move(bundle)});
      DrainPending();
    }
  }

  bool DrainPending() {
    if (!throttle_) return false;
    bool any = false;
    uint64_t now = megaphone::NowNanos();
    while (!pending_.empty() &&
           throttle_->Admit(pending_.front().bytes, now)) {
      auto& p = pending_.front();
      pending_bytes_ -= p.bytes;
      attachments_[p.att_idx].chan->Push(p.target, std::move(p.bundle));
      pending_.pop_front();
      any = true;
    }
    return any;
  }

  struct PendingBundle {
    size_t att_idx;
    uint32_t target;
    size_t bytes;
    Bundle<D, T> bundle;
  };

  ProgressTracker<T>* tracker_;
  uint32_t worker_;
  uint32_t peers_;
  OpCtx<T>* cap_ctx_;  // nullable (input handles have no operator context)
  std::vector<Attachment> attachments_;
  std::optional<megaphone::ByteThrottle> throttle_;
  std::function<size_t(const D&)> size_of_;
  std::deque<PendingBundle> pending_;
  size_t pending_bytes_ = 0;
};

/// Typed input port handle: drains queued bundles and exposes the port's
/// frontier.
template <typename D, typename T>
class InputHandle {
 public:
  InputHandle(std::shared_ptr<Channel<D, T>> chan, uint32_t loc,
              int32_t port_idx, DataflowInstance<T>* df, OpCtx<T>* ctx)
      : chan_(std::move(chan)),
        loc_(loc),
        port_idx_(port_idx),
        df_(df),
        ctx_(ctx) {}

  /// Calls `f(time, data)` for every queued bundle, recording consumption.
  /// `data` may be consumed destructively. Returns true if any bundle was
  /// delivered.
  template <typename F>
  bool ForEach(F f) {
    Bundle<D, T> bundle;
    bool any = false;
    while (chan_->Pull(df_->worker_index(), bundle)) {
      ctx_->RecordConsumed(loc_, bundle.time,
                           static_cast<int64_t>(bundle.data.size()));
      f(bundle.time, bundle.data);
      any = true;
    }
    return any;
  }

  /// The frontier of this input: timestamps that may still arrive here.
  const Antichain<T>& frontier() const {
    return df_->FrontierOfPort(port_idx_);
  }

  uint32_t loc() const { return loc_; }

 private:
  std::shared_ptr<Channel<D, T>> chan_;
  uint32_t loc_;
  int32_t port_idx_;
  DataflowInstance<T>* df_;
  OpCtx<T>* ctx_;
};

/// Per-node operator context: capability accounting and the end-of-step
/// progress batch.
template <typename T>
class OpCtx {
 public:
  OpCtx(DataflowInstance<T>* df, std::string name)
      : df_(df), name_(std::move(name)) {}

  uint32_t worker() const { return df_->worker_index(); }
  uint32_t peers() const { return df_->peers(); }
  const std::string& name() const { return name_; }

  /// Retains an explicit capability at `t` on every output of this node.
  /// Legal if `t` is in advance of a held capability or of a message time
  /// consumed this step.
  void Retain(const T& t) {
    MEGA_DCHECK(MaySend(t)) << "Retain at non-capable time in " << name_;
    caps_[t]++;
    for (uint32_t loc : output_locs_) {
      end_changes_.push_back(Change<T>{loc, t, +1});
    }
  }

  /// Releases one previously retained capability at `t`.
  void Release(const T& t) {
    auto it = caps_.find(t);
    MEGA_CHECK(it != caps_.end() && it->second > 0)
        << "Release without capability in " << name_;
    if (--it->second == 0) caps_.erase(it);
    for (uint32_t loc : output_locs_) {
      end_changes_.push_back(Change<T>{loc, t, -1});
    }
  }

  bool HasCap(const T& t) const { return caps_.count(t) > 0; }
  const std::map<T, int64_t>& caps() const { return caps_; }
  const std::vector<uint32_t>& output_locs() const { return output_locs_; }

  /// True if the node may currently produce output at time `t`.
  bool MaySend(const T& t) const {
    for (const auto& [ct, n] : caps_) {
      if (n > 0 && TimestampTraits<T>::LessEqual(ct, t)) return true;
    }
    for (const auto& st : step_times_) {
      if (TimestampTraits<T>::LessEqual(st, t)) return true;
    }
    return false;
  }

  // --- engine internals -----------------------------------------------

  void RecordConsumed(uint32_t loc, const T& time, int64_t count) {
    step_times_.push_back(time);
    end_changes_.push_back(Change<T>{loc, time, -count});
    consumed_any_ = true;
  }

  void AddOutputLoc(uint32_t loc) { output_locs_.push_back(loc); }
  DataflowInstance<T>* df() { return df_; }

  void BeginStep() {
    consumed_any_ = false;
  }

  /// Applies the step's progress batch; returns whether the step did work.
  bool EndStep() {
    bool active = consumed_any_ || !end_changes_.empty();
    if (!end_changes_.empty()) {
      df_->tracker().Apply(std::span<const Change<T>>(end_changes_.data(),
                                                      end_changes_.size()));
      end_changes_.clear();
    }
    step_times_.clear();
    consumed_any_ = false;
    return active;
  }

 private:
  DataflowInstance<T>* df_;
  std::string name_;
  std::vector<uint32_t> output_locs_;
  std::map<T, int64_t> caps_;
  std::vector<T> step_times_;
  std::vector<Change<T>> end_changes_;
  bool consumed_any_ = false;
};

template <typename D, typename T>
void OutputHandle<D, T>::DebugCheckMaySend(const T& time) {
  MEGA_DCHECK(cap_ctx_ == nullptr || cap_ctx_->MaySend(time))
      << "Send at non-capable time";
  (void)time;
}

/// The generic operator node: runs user logic, then flushes outputs, then
/// publishes the progress batch.
template <typename T>
class OperatorNode final : public NodeBase<T> {
 public:
  OperatorNode(DataflowInstance<T>* df, std::string name)
      : ctx_(df, std::move(name)) {}

  bool Schedule(DataflowInstance<T>&) override {
    ctx_.BeginStep();
    if (logic_) logic_(ctx_);
    bool active = false;
    for (auto* f : flushables_) active |= f->Flush();
    active |= ctx_.EndStep();
    return active;
  }

  OpCtx<T>& ctx() { return ctx_; }
  void set_logic(std::function<void(OpCtx<T>&)> logic) {
    logic_ = std::move(logic);
  }
  void AddFlushable(Flushable* f) { flushables_.push_back(f); }
  void Own(std::shared_ptr<void> p) { owned_.push_back(std::move(p)); }

 private:
  OpCtx<T> ctx_;
  std::function<void(OpCtx<T>&)> logic_;
  std::vector<Flushable*> flushables_;
  std::vector<std::shared_ptr<void>> owned_;
};

/// Declarative construction of one operator node.
///
///   OperatorBuilder<uint64_t> b(scope, "WordCount");
///   auto* in = b.AddInput(words, Pact<Word>::Exchange(hash));
///   auto [out, stream] = b.AddOutput<Count>();
///   b.Build([=](OpCtx<uint64_t>& ctx) { ... in->ForEach(...) ... });
template <typename T>
class OperatorBuilder {
 public:
  OperatorBuilder(Scope<T>& scope, std::string name) : scope_(&scope) {
    node_id_ = scope_->ReserveNode(name);
    node_ = std::make_unique<OperatorNode<T>>(scope_->df(), std::move(name));
  }

  /// Declares a typed input fed from `stream` under contract `pact`. All
  /// inputs must be declared before any output.
  template <typename D>
  InputHandle<D, T>* AddInput(Stream<D, T> stream, Pact<D> pact) {
    MEGA_CHECK(stream.valid());
    auto [loc, port_idx] = scope_->AddInputPort(node_id_);
    scope_->AddEdge(stream.loc(), loc);
    auto chan =
        scope_->template GetChannel<Channel<D, T>>();
    stream.output()->Attach(chan, std::move(pact), loc);
    auto handle = std::make_shared<InputHandle<D, T>>(
        std::move(chan), loc, port_idx, scope_->df(), &node_->ctx());
    auto* raw = handle.get();
    node_->Own(std::move(handle));
    return raw;
  }

  /// Declares a typed output; returns the handle (for the logic closure)
  /// and the stream (for downstream consumers).
  template <typename D>
  std::pair<OutputHandle<D, T>*, Stream<D, T>> AddOutput() {
    uint32_t loc = scope_->AddOutputPort(node_id_);
    node_->ctx().AddOutputLoc(loc);
    auto handle = std::make_shared<OutputHandle<D, T>>(
        &scope_->df()->tracker(), scope_->worker(), scope_->peers(),
        &node_->ctx());
    auto* raw = handle.get();
    node_->AddFlushable(raw);
    node_->Own(std::move(handle));
    return {raw, Stream<D, T>(scope_, raw, loc)};
  }

  /// Finalizes the node with its logic closure and installs it.
  void Build(std::function<void(OpCtx<T>&)> logic) {
    if (node_->ctx().output_locs().empty()) {
      // Output-less nodes (sinks) still need their retained capabilities
      // visible to the progress tracker, or the dataflow could be declared
      // complete while a notification is pending. A phantom output port
      // that feeds no channel counts capabilities without affecting any
      // frontier.
      uint32_t loc = scope_->AddOutputPort(node_id_);
      node_->ctx().AddOutputLoc(loc);
    }
    node_->set_logic(std::move(logic));
    scope_->df()->AddNode(std::move(node_));
  }

 private:
  Scope<T>* scope_;
  uint32_t node_id_;
  std::unique_ptr<OperatorNode<T>> node_;
};

}  // namespace timely
