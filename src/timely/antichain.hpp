// Antichains and counted multisets of timestamps.
//
// A frontier (paper Definition 1) is an antichain: a set of mutually
// incomparable timestamps such that every message still in flight is in
// advance of some element. Antichain stores such a set; MutableAntichain
// maintains a multiset of timestamps with (possibly transiently negative)
// counts and exposes the antichain of its positively counted elements,
// which is how the progress tracker aggregates pointstamp counts.
#pragma once

#include <algorithm>
#include <map>
#include <vector>

#include "common/check.hpp"
#include "timely/timestamp.hpp"

namespace timely {

/// A minimal set of mutually incomparable timestamps.
///
/// The empty antichain means "no timestamps can ever arrive" — i.e. the
/// stream is complete.
template <typename T>
class Antichain {
 public:
  Antichain() = default;
  explicit Antichain(std::vector<T> elements) {
    for (auto& t : elements) Insert(std::move(t));
  }

  /// Inserts `t` unless an existing element is ≤ t; removes elements
  /// dominated by `t`. Returns true if `t` was inserted.
  bool Insert(T t) {
    for (const auto& e : elements_) {
      if (TimestampTraits<T>::LessEqual(e, t) && !(e == t)) return false;
      if (e == t) return false;
    }
    std::erase_if(elements_, [&](const T& e) {
      return TimestampTraits<T>::LessEqual(t, e);
    });
    elements_.push_back(std::move(t));
    return true;
  }

  /// True iff `t` is in advance of this frontier: some element e ≤ t.
  /// For the empty frontier this is false for every t.
  bool LessEqual(const T& t) const {
    return std::any_of(elements_.begin(), elements_.end(), [&](const T& e) {
      return TimestampTraits<T>::LessEqual(e, t);
    });
  }

  /// True iff some element is strictly less than `t`.
  bool LessThan(const T& t) const {
    return std::any_of(elements_.begin(), elements_.end(), [&](const T& e) {
      return TimestampTraits<T>::LessEqual(e, t) && !(e == t);
    });
  }

  bool empty() const { return elements_.empty(); }
  const std::vector<T>& elements() const { return elements_; }
  void Clear() { elements_.clear(); }

  friend bool operator==(const Antichain& a, const Antichain& b) {
    if (a.elements_.size() != b.elements_.size()) return false;
    for (const auto& t : a.elements_) {
      if (std::find(b.elements_.begin(), b.elements_.end(), t) ==
          b.elements_.end())
        return false;
    }
    return true;
  }

 private:
  std::vector<T> elements_;
};

/// A multiset of timestamps with signed counts whose positively counted
/// elements define a frontier.
///
/// Counts may be transiently negative while progress updates from different
/// workers are interleaved (a consumption can be applied before the
/// corresponding production); the multiset must tolerate this and converge
/// once all updates are applied. This mirrors timely dataflow's
/// MutableAntichain.
template <typename T>
class MutableAntichain {
 public:
  /// Adjusts the count of `t` by `delta`. Returns true if the frontier may
  /// have changed (callers may then recompute with Frontier()).
  bool Update(const T& t, int64_t delta) {
    if (delta == 0) return false;
    auto it = counts_.find(t);
    int64_t before = (it == counts_.end()) ? 0 : it->second;
    int64_t after = before + delta;
    if (it == counts_.end()) {
      counts_.emplace(t, after);
    } else if (after == 0) {
      counts_.erase(it);
    } else {
      it->second = after;
    }
    // The frontier can only change when the support of positive counts
    // changes at t.
    bool support_changed = (before > 0) != (after > 0);
    if (support_changed) positive_ += (after > 0) ? +1 : -1;
    return support_changed;
  }

  /// The antichain of minimal elements with positive count.
  Antichain<T> Frontier() const {
    Antichain<T> result;
    for (const auto& [t, c] : counts_) {
      if (c > 0) result.Insert(t);
    }
    return result;
  }

  /// True iff no element has positive count. O(1): the support size is
  /// maintained by Update.
  bool Empty() const { return positive_ == 0; }

  /// True iff every count is exactly zero (fully drained and consistent).
  bool AllZero() const { return counts_.empty(); }

  int64_t CountOf(const T& t) const {
    auto it = counts_.find(t);
    return it == counts_.end() ? 0 : it->second;
  }

  const std::map<T, int64_t>& counts() const { return counts_; }

 private:
  // std::map requires a total order; for Product timestamps the tie-break
  // operator< is used purely as a container key order.
  std::map<T, int64_t> counts_;
  int64_t positive_ = 0;  // entries with positive count
};

}  // namespace timely
