// Stock dataflow operators: map, filter, flat_map, inspect, sink, concat,
// exchange, and a generic stateful unary operator.
//
// These mirror timely dataflow's stream extension methods and are the
// building blocks for the "native" NEXMark query implementations that the
// paper compares Megaphone against.
#pragma once

#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "timely/operator.hpp"
#include "timely/stream.hpp"

namespace timely {

/// Applies `f` to every record (worker-local).
template <typename D, typename T, typename F>
auto Map(Stream<D, T> stream, F f) -> Stream<std::invoke_result_t<F, D>, T> {
  using R = std::invoke_result_t<F, D>;
  OperatorBuilder<T> b(*stream.scope(), "Map");
  auto* in = b.AddInput(stream, Pact<D>::Pipeline());
  auto [out, result] = b.template AddOutput<R>();
  b.Build([in, out, f = std::move(f)](OpCtx<T>&) {
    in->ForEach([&](const T& t, std::vector<D>& data) {
      for (auto& d : data) out->Send(t, f(std::move(d)));
    });
  });
  return result;
}

/// Keeps records satisfying `pred` (worker-local).
template <typename D, typename T, typename P>
Stream<D, T> Filter(Stream<D, T> stream, P pred) {
  OperatorBuilder<T> b(*stream.scope(), "Filter");
  auto* in = b.AddInput(stream, Pact<D>::Pipeline());
  auto [out, result] = b.template AddOutput<D>();
  b.Build([in, out, pred = std::move(pred)](OpCtx<T>&) {
    in->ForEach([&](const T& t, std::vector<D>& data) {
      for (auto& d : data) {
        if (pred(d)) out->Send(t, std::move(d));
      }
    });
  });
  return result;
}

/// Applies `f(record, emit)` to every record; `emit(r)` may be called any
/// number of times.
template <typename R, typename D, typename T, typename F>
Stream<R, T> FlatMap(Stream<D, T> stream, F f) {
  OperatorBuilder<T> b(*stream.scope(), "FlatMap");
  auto* in = b.AddInput(stream, Pact<D>::Pipeline());
  auto [out, result] = b.template AddOutput<R>();
  b.Build([in, out, f = std::move(f)](OpCtx<T>&) {
    in->ForEach([&](const T& t, std::vector<D>& data) {
      for (auto& d : data) {
        f(std::move(d), [&](R r) { out->Send(t, std::move(r)); });
      }
    });
  });
  return result;
}

/// Invokes `f(time, record)` on every record and passes it through.
template <typename D, typename T, typename F>
Stream<D, T> Inspect(Stream<D, T> stream, F f) {
  OperatorBuilder<T> b(*stream.scope(), "Inspect");
  auto* in = b.AddInput(stream, Pact<D>::Pipeline());
  auto [out, result] = b.template AddOutput<D>();
  b.Build([in, out, f = std::move(f)](OpCtx<T>&) {
    in->ForEach([&](const T& t, std::vector<D>& data) {
      for (auto& d : data) {
        f(t, d);
        out->Send(t, std::move(d));
      }
    });
  });
  return result;
}

/// Terminal consumer: calls `f(time, data)` per bundle.
template <typename D, typename T, typename F>
void Sink(Stream<D, T> stream, F f) {
  OperatorBuilder<T> b(*stream.scope(), "Sink");
  auto* in = b.AddInput(stream, Pact<D>::Pipeline());
  b.Build([in, f = std::move(f)](OpCtx<T>&) {
    in->ForEach([&](const T& t, std::vector<D>& data) { f(t, data); });
  });
}

/// Repartitions the stream by `hash(record) % workers`.
template <typename D, typename T, typename H>
Stream<D, T> Exchange(Stream<D, T> stream, H hash) {
  OperatorBuilder<T> b(*stream.scope(), "Exchange");
  auto* in = b.AddInput(
      stream, Pact<D>::Exchange([hash](const D& d) { return hash(d); }));
  auto [out, result] = b.template AddOutput<D>();
  b.Build([in, out](OpCtx<T>&) {
    in->ForEach([&](const T& t, std::vector<D>& data) {
      out->SendBatch(t, std::move(data));
    });
  });
  return result;
}

/// Merges two streams of the same type.
template <typename D, typename T>
Stream<D, T> Concat(Stream<D, T> a, Stream<D, T> b_stream) {
  OperatorBuilder<T> b(*a.scope(), "Concat");
  auto* in_a = b.AddInput(a, Pact<D>::Pipeline());
  auto* in_b = b.AddInput(b_stream, Pact<D>::Pipeline());
  auto [out, result] = b.template AddOutput<D>();
  b.Build([in_a, in_b, out](OpCtx<T>&) {
    in_a->ForEach([&](const T& t, std::vector<D>& data) {
      out->SendBatch(t, std::move(data));
    });
    in_b->ForEach([&](const T& t, std::vector<D>& data) {
      out->SendBatch(t, std::move(data));
    });
  });
  return result;
}

/// Generic exchanged stateful unary operator: records are partitioned by
/// `hash`, and `logic(time, data, state, ctx, out)` runs per bundle with
/// worker-local state of type S. This is the shape hand-tuned ("native")
/// stateful operators take without Megaphone: state lives in the operator
/// closure and cannot migrate.
template <typename S, typename R, typename D, typename T, typename H,
          typename L>
Stream<R, T> StatefulUnary(Stream<D, T> stream, const char* name, H hash,
                           L logic) {
  OperatorBuilder<T> b(*stream.scope(), name);
  auto* in = b.AddInput(
      stream, Pact<D>::Exchange([hash](const D& d) { return hash(d); }));
  auto [out, result] = b.template AddOutput<R>();
  auto state = std::make_shared<S>();
  b.Build([in, out, state, logic = std::move(logic)](OpCtx<T>& ctx) {
    in->ForEach([&](const T& t, std::vector<D>& data) {
      logic(t, data, *state, ctx, *out);
    });
  });
  return result;
}

}  // namespace timely
