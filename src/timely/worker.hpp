// Workers, dataflow instances, and the construction scope.
//
// A Worker is one thread executing every operator of every dataflow it has
// built (Figure 2 of the paper: all operators are multiplexed on all
// workers, data is partitioned). Every worker runs the same user closure
// and must build the same dataflows in the same order; deterministic node
// and channel id assignment during construction is what lets workers agree
// on the graph without further coordination.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <typeindex>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "timely/antichain.hpp"
#include "timely/channel.hpp"
#include "timely/node.hpp"
#include "timely/progress.hpp"
#include "timely/remote.hpp"

namespace timely {

/// Reusable (generation-counting) thread barrier.
class Barrier {
 public:
  explicit Barrier(uint32_t n) : n_(n) {}

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    uint64_t gen = gen_;
    if (++count_ == n_) {
      count_ = 0;
      gen_++;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return gen != gen_; });
    }
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  uint32_t n_;
  uint32_t count_ = 0;
  uint64_t gen_ = 0;
};

/// State shared by all workers of one runtime — in a multi-process run,
/// by the workers of *this* process. `workers` is the global worker count
/// across every process; this process's worker threads carry the global
/// indices [local_begin, local_begin + local_workers).
struct RuntimeShared {
  explicit RuntimeShared(uint32_t w) : RuntimeShared(w, 0, w, nullptr) {}
  RuntimeShared(uint32_t total, uint32_t begin, uint32_t local,
                NetRuntime* n)
      : workers(total),
        local_begin(begin),
        local_workers(local),
        net(n),
        build_barrier(local) {}

  uint32_t workers;        // global worker count (all processes)
  uint32_t local_begin;    // first global worker index of this process
  uint32_t local_workers;  // worker threads in this process
  NetRuntime* net;         // null in single-process runs
  ChannelRegistry channels;
  Barrier build_barrier;

  std::mutex df_mu;
  struct DfEntry {
    std::type_index type = std::type_index(typeid(void));
    std::shared_ptr<void> ptr;
  };
  std::vector<DfEntry> df_shared;

  /// Returns the per-dataflow shared state, creating it on first request.
  /// `created` (optional) reports whether this call created it — the
  /// creating worker wires the distributed-progress hooks exactly once.
  template <typename Shared>
  std::shared_ptr<Shared> GetOrCreateDataflowShared(uint64_t df_id,
                                                    bool* created = nullptr) {
    std::lock_guard<std::mutex> lock(df_mu);
    if (df_shared.size() <= df_id) df_shared.resize(df_id + 1);
    auto& entry = df_shared[df_id];
    bool fresh = !entry.ptr;
    if (fresh) {
      entry.type = std::type_index(typeid(Shared));
      entry.ptr = std::make_shared<Shared>();
    }
    MEGA_CHECK(entry.type == std::type_index(typeid(Shared)))
        << "dataflow timestamp type mismatch between workers";
    if (created != nullptr) *created = fresh;
    return std::static_pointer_cast<Shared>(entry.ptr);
  }
};

/// Per-dataflow state shared by all workers (one progress tracker — in a
/// multi-process run, this process's replica of the global counts).
template <typename T>
struct DataflowShared {
  ProgressTracker<T> tracker;
};

/// Connects one dataflow's tracker replica to the mesh: locally
/// originated batches are encoded and broadcast to every peer process,
/// and incoming progress frames decode into ApplyUnbroadcast (no echo).
/// Called exactly once per dataflow, by the worker whose
/// GetOrCreateDataflowShared call created the shared state — before any
/// other worker can observe it, and before the creator's own build
/// applies its first changes.
template <typename T>
inline void WireDistributedProgress(
    NetRuntime* net, uint64_t df_id,
    const std::shared_ptr<DataflowShared<T>>& shared) {
  net->RegisterProgressHandler(df_id, [shared](megaphone::Reader& r) {
    // The wire format is exactly Serde<vector<Change<T>>> (count prefix,
    // field-wise elements), whose decode bounds-checks the count and
    // clamps the speculative reserve.
    auto changes = megaphone::Decode<std::vector<Change<T>>>(r);
    shared->tracker.ApplyUnbroadcast(
        std::span<const Change<T>>(changes.data(), changes.size()));
  });
  shared->tracker.SetBroadcast(
      [net, df_id](std::span<const Change<T>> changes) {
        megaphone::Writer w;
        megaphone::Encode(w, static_cast<uint64_t>(changes.size()));
        for (const auto& c : changes) megaphone::Encode(w, c);
        net->BroadcastProgress(df_id, w.Take());
      });
}

class DataflowInstanceBase {
 public:
  virtual ~DataflowInstanceBase() = default;
  virtual bool Step() = 0;
  virtual bool Complete() const = 0;
};

/// One worker's instance of a dataflow: its local operator nodes plus a
/// cached snapshot of all input-port frontiers.
template <typename T>
class DataflowInstance final : public DataflowInstanceBase {
 public:
  DataflowInstance(uint64_t id, uint32_t worker, uint32_t peers,
                   std::shared_ptr<DataflowShared<T>> shared,
                   RuntimeShared* runtime)
      : id_(id),
        worker_(worker),
        peers_(peers),
        shared_(std::move(shared)),
        runtime_(runtime) {}

  bool Step() override {
    RefreshFrontiers();
    bool active = false;
    for (auto& node : nodes_) active |= node->Schedule(*this);
    // One consolidated tracker transaction for the whole step: every
    // node's consumed counts, capability changes, and staged produced
    // counts. Changes from a producer and its same-worker consumer at the
    // same (location, time) net to zero here and never touch the tracker.
    if (!step_changes_.empty()) {
      ConsolidateChanges(step_changes_);
      if (!step_changes_.empty()) {
        shared_->tracker.Apply(std::span<const Change<T>>(
            step_changes_.data(), step_changes_.size()));
      }
      step_changes_.clear();
    }
    for (auto& node : nodes_) active |= node->CommitStep();
    return active;
  }

  /// The step's accumulated progress batch; nodes append during Schedule.
  std::vector<Change<T>>& step_changes() { return step_changes_; }

  bool Complete() const override { return shared_->tracker.Complete(); }

  /// Frontier of the dense input-port index `idx`, as of the last refresh.
  const Antichain<T>& FrontierOfPort(int32_t idx) const {
    MEGA_CHECK_GE(idx, 0);
    MEGA_CHECK_LT(static_cast<size_t>(idx), frontiers_.size());
    return frontiers_[static_cast<size_t>(idx)];
  }

  void RefreshFrontiers() {
    uint64_t v = shared_->tracker.version();
    if (v != seen_version_) {
      seen_version_ = shared_->tracker.SnapshotFrontiers(frontiers_);
    }
  }

  ProgressTracker<T>& tracker() { return shared_->tracker; }
  std::shared_ptr<DataflowShared<T>> shared() { return shared_; }
  uint64_t id() const { return id_; }
  uint32_t worker_index() const { return worker_; }
  uint32_t peers() const { return peers_; }
  RuntimeShared* runtime() { return runtime_; }

  void AddNode(std::unique_ptr<NodeBase<T>> node) {
    nodes_.push_back(std::move(node));
  }
  void KeepAlive(std::shared_ptr<void> p) {
    keepalive_.push_back(std::move(p));
  }

 private:
  uint64_t id_;
  uint32_t worker_;
  uint32_t peers_;
  std::shared_ptr<DataflowShared<T>> shared_;
  RuntimeShared* runtime_;
  std::vector<std::unique_ptr<NodeBase<T>>> nodes_;
  std::vector<std::shared_ptr<void>> keepalive_;
  uint64_t seen_version_ = ~uint64_t{0};
  std::vector<Antichain<T>> frontiers_;
  std::vector<Change<T>> step_changes_;
};

/// Handed to the dataflow-construction closure; assigns node, port, and
/// channel ids deterministically and records the graph structure.
template <typename T>
class Scope {
 public:
  using Timestamp = T;

  Scope(DataflowInstance<T>* df, GraphSpec* spec)
      : df_(df), spec_(spec) {}

  uint32_t worker() const { return df_->worker_index(); }
  uint32_t peers() const { return df_->peers(); }
  DataflowInstance<T>* df() { return df_; }
  GraphSpec* spec() { return spec_; }

  uint32_t ReserveNode(std::string name) {
    return spec_->AddNode(std::move(name));
  }
  /// Adds an input port; returns {location, dense port index}.
  std::pair<uint32_t, int32_t> AddInputPort(uint32_t node) {
    uint32_t loc = spec_->AddInputPort(node);
    return {loc, input_port_counter_++};
  }
  uint32_t AddOutputPort(uint32_t node) {
    return spec_->AddOutputPort(node);
  }
  void AddEdge(uint32_t src_loc, uint32_t dst_loc) {
    spec_->AddEdge(src_loc, dst_loc);
  }

  template <typename C>
  std::shared_ptr<C> GetChannel() {
    uint64_t cid = channel_counter_++;
    return df_->runtime()->channels.template GetOrCreate<C>(df_->id(), cid,
                                                            peers());
  }

  /// Registers initial capability changes applied after the tracker is
  /// finalized (used by input handles for their initial epoch capability).
  void AddInitialChange(uint32_t loc, const T& time, int64_t delta) {
    initial_changes_.push_back(Change<T>{loc, time, delta});
  }
  const std::vector<Change<T>>& initial_changes() const {
    return initial_changes_;
  }

 private:
  DataflowInstance<T>* df_;
  GraphSpec* spec_;
  uint64_t channel_counter_ = 0;
  int32_t input_port_counter_ = 0;
  std::vector<Change<T>> initial_changes_;
};

/// One worker thread's interface: build dataflows, then step them.
class Worker {
 public:
  Worker(uint32_t index, std::shared_ptr<RuntimeShared> runtime)
      : index_(index), runtime_(std::move(runtime)) {}

  uint32_t index() const { return index_; }
  uint32_t peers() const { return runtime_->workers; }
  /// First global worker index hosted by this process.
  uint32_t local_begin() const { return runtime_->local_begin; }
  /// Worker threads in this process.
  uint32_t local_workers() const { return runtime_->local_workers; }
  /// True for the first worker of this process — the one that owns
  /// per-process measurement state in the bench harness.
  bool IsLocalRoot() const { return index_ == runtime_->local_begin; }

  /// Builds a dataflow with timestamp type T. Every worker must call
  /// Dataflow the same number of times with structurally identical builds;
  /// this call blocks on a barrier until all workers finish building.
  /// Returns whatever the build closure returns (handles, probes, ...).
  template <typename T, typename BuildFn>
  decltype(auto) Dataflow(BuildFn&& build) {
    uint64_t df_id = next_dataflow_id_++;
    bool created = false;
    auto shared = runtime_->GetOrCreateDataflowShared<DataflowShared<T>>(
        df_id, &created);
    if (created && runtime_->net != nullptr) {
      WireDistributedProgress<T>(runtime_->net, df_id, shared);
    }
    auto inst = std::make_unique<DataflowInstance<T>>(
        df_id, index_, peers(), shared, runtime_.get());
    GraphSpec spec;
    Scope<T> scope(inst.get(), &spec);

    if constexpr (std::is_void_v<decltype(build(scope))>) {
      build(scope);
      FinishBuild(scope, spec, *shared);
      dataflows_.push_back(std::move(inst));
      runtime_->build_barrier.Wait();
      return;
    } else {
      decltype(auto) result = build(scope);
      FinishBuild(scope, spec, *shared);
      dataflows_.push_back(std::move(inst));
      runtime_->build_barrier.Wait();
      return result;
    }
  }

  /// Schedules every node of every dataflow once. Returns true if any node
  /// did work.
  bool Step() {
    bool active = false;
    for (auto& df : dataflows_) active |= df->Step();
    return active;
  }

  /// Steps until `pred()` becomes true, with idle backoff. In a
  /// multi-process run, a dead peer means the predicate may never turn
  /// true (its progress counts are gone), so the loop polls the mesh
  /// health flag and raises PeerDownError — a clean, reported abort
  /// instead of a silent spin. The predicate is checked first: if the
  /// goal was already reached, a concurrently detected failure does not
  /// retract it.
  template <typename Pred>
  void StepUntil(Pred pred) {
    uint32_t idle = 0;
    while (!pred()) {
      if (runtime_->net != nullptr && runtime_->net->PeerFailed()) {
        throw PeerDownError(runtime_->net->FailureReason());
      }
      if (Step()) {
        idle = 0;
      } else {
        Backoff(++idle);
      }
    }
  }

  /// Steps until every dataflow has completed (all counts drained).
  void StepUntilComplete() {
    StepUntil([&] {
      for (auto& df : dataflows_) {
        if (!df->Complete()) return false;
      }
      return true;
    });
  }

 private:
  template <typename T>
  void FinishBuild(Scope<T>& scope, GraphSpec& spec,
                   DataflowShared<T>& shared) {
    shared.tracker.Finalize(spec);
    const auto& init = scope.initial_changes();
    if (init.empty()) return;
    // Initial capabilities are statically known (every worker builds the
    // same dataflow and registers the same changes), so they are never
    // broadcast: each worker applies its own share locally, and in a
    // multi-process run the first local worker additionally applies the
    // remote workers' shares — every process's tracker replica starts
    // with the full W-worker initial state, with no startup race against
    // in-flight progress frames.
    shared.tracker.ApplyUnbroadcast(
        std::span<const Change<T>>(init.data(), init.size()));
    uint32_t remote = runtime_->workers - runtime_->local_workers;
    if (remote > 0 && index_ == runtime_->local_begin) {
      std::vector<Change<T>> scaled(init.begin(), init.end());
      for (auto& c : scaled) c.delta *= static_cast<int64_t>(remote);
      shared.tracker.ApplyUnbroadcast(
          std::span<const Change<T>>(scaled.data(), scaled.size()));
    }
  }

  static void Backoff(uint32_t idle) {
    if (idle < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }

  uint32_t index_;
  std::shared_ptr<RuntimeShared> runtime_;
  std::vector<std::unique_ptr<DataflowInstanceBase>> dataflows_;
  uint64_t next_dataflow_id_ = 0;
};

}  // namespace timely
