// Logical timestamps for timely dataflow.
//
// Timely dataflow timestamps are elements of a partially ordered set with a
// minimum element. The engine is generic over the timestamp type; most of
// this repository uses uint64_t (event time in nanoseconds or epoch
// counters), but Product timestamps are provided to exercise — and test —
// the genuinely partially ordered case that makes frontiers set-valued
// (paper §3.1, Definition 1).
#pragma once

#include <cstdint>
#include <limits>
#include <ostream>
#include <tuple>

namespace timely {

/// Traits every timestamp type must provide. The primary template covers
/// totally ordered integral types.
template <typename T>
struct TimestampTraits {
  /// Partial-order comparison: a ≤ b.
  static bool LessEqual(const T& a, const T& b) { return a <= b; }
  /// The minimum element of the order.
  static T Minimum() { return std::numeric_limits<T>::min(); }
};

/// `a` is *in advance of* `b` iff b ≤ a (paper Definition 2, clause 1).
template <typename T>
bool InAdvanceOf(const T& a, const T& b) {
  return TimestampTraits<T>::LessEqual(b, a);
}

/// Pairwise-ordered product timestamp (partially ordered):
/// (a1,b1) ≤ (a2,b2) iff a1 ≤ a2 and b1 ≤ b2.
template <typename TOuter, typename TInner>
struct Product {
  TOuter outer{};
  TInner inner{};

  friend bool operator==(const Product&, const Product&) = default;
  // A total "tie-break" order used only for container keys; the *partial*
  // order lives in TimestampTraits.
  friend bool operator<(const Product& a, const Product& b) {
    return std::tie(a.outer, a.inner) < std::tie(b.outer, b.inner);
  }
  friend std::ostream& operator<<(std::ostream& os, const Product& p) {
    return os << "(" << p.outer << "," << p.inner << ")";
  }
};

template <typename TOuter, typename TInner>
struct TimestampTraits<Product<TOuter, TInner>> {
  using P = Product<TOuter, TInner>;
  static bool LessEqual(const P& a, const P& b) {
    return TimestampTraits<TOuter>::LessEqual(a.outer, b.outer) &&
           TimestampTraits<TInner>::LessEqual(a.inner, b.inner);
  }
  static P Minimum() {
    return P{TimestampTraits<TOuter>::Minimum(),
             TimestampTraits<TInner>::Minimum()};
  }
};

}  // namespace timely
