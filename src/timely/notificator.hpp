// Frontier-driven notifications for native operators.
//
// An operator that must act "once all input up to time t has arrived"
// (window triggers, deferred aggregation) requests a notification at t.
// The notificator retains a capability so downstream frontiers cannot
// advance past t, and delivers t once no input frontier could still
// produce records at times ≤ t.
#pragma once

#include <map>
#include <vector>

#include "timely/antichain.hpp"
#include "timely/operator.hpp"

namespace timely {

template <typename T>
class FrontierNotificator {
 public:
  /// Requests a notification at `t`. Must be called while capable of `t`
  /// (i.e. while processing a message at time ≤ t or holding a capability).
  void NotifyAt(OpCtx<T>& ctx, const T& t) {
    auto [it, inserted] = pending_.emplace(t, 0);
    if (inserted) ctx.Retain(t);
    it->second++;
  }

  /// Delivers `f(t)` once per requested time whose delivery is enabled by
  /// all supplied input frontiers, releasing the capability afterwards.
  template <typename F>
  void ForEachReady(OpCtx<T>& ctx,
                    const std::vector<const Antichain<T>*>& frontiers, F f) {
    // Collect first: f may request further notifications.
    std::vector<T> ready;
    for (const auto& [t, n] : pending_) {
      bool blocked = false;
      for (const auto* fr : frontiers) {
        if (fr->LessEqual(t)) {
          blocked = true;
          break;
        }
      }
      if (!blocked) ready.push_back(t);
    }
    for (const T& t : ready) {
      pending_.erase(t);
      f(t);
      ctx.Release(t);
    }
  }

  bool empty() const { return pending_.empty(); }
  size_t size() const { return pending_.size(); }

 private:
  std::map<T, int64_t> pending_;
};

}  // namespace timely
