// Dataflow node interfaces.
#pragma once

#include <cstdint>

namespace timely {

template <typename T>
class DataflowInstance;

/// A worker-local operator instance. Workers repeatedly call Schedule on
/// every node; a node drains its inputs, runs user logic, flushes outputs,
/// and atomically publishes its progress changes.
template <typename T>
class NodeBase {
 public:
  virtual ~NodeBase() = default;
  /// Returns true if the node did any work (used for idle backoff).
  virtual bool Schedule(DataflowInstance<T>& df) = 0;
};

/// Anything with buffered output that must be flushed at step end (output
/// handles, throttled senders).
class Flushable {
 public:
  virtual ~Flushable() = default;
  /// Flushes buffers; returns true if anything moved.
  virtual bool Flush() = 0;
};

}  // namespace timely
