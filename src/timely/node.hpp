// Dataflow node interfaces.
#pragma once

#include <cstdint>

namespace timely {

template <typename T>
class DataflowInstance;

/// A worker-local operator instance. Workers repeatedly call Schedule on
/// every node of a dataflow; each node drains its inputs, runs user
/// logic, and stages its outputs and progress changes into the step.
/// After every node has been scheduled the dataflow applies the step's
/// consolidated progress batch once, then calls CommitStep so staged
/// bundles become visible (the safety order: counts first).
template <typename T>
class NodeBase {
 public:
  virtual ~NodeBase() = default;
  /// Returns true if the node did any work (used for idle backoff).
  virtual bool Schedule(DataflowInstance<T>& df) = 0;
  /// Publishes bundles staged by Schedule; runs after the step's progress
  /// batch has been applied. Returns true if anything moved.
  virtual bool CommitStep() { return false; }
};

/// Anything with buffered output that must be flushed at step end (output
/// handles, throttled senders).
class Flushable {
 public:
  virtual ~Flushable() = default;
  /// Flushes buffers; returns true if anything moved.
  virtual bool Flush() = 0;
};

}  // namespace timely
