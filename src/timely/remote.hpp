// The engine-side interface onto a process mesh.
//
// When `timely::Execute` runs W workers split across P processes, the
// engine needs exactly four things from the transport: ship an encoded
// data bundle to the process owning a worker, broadcast an encoded
// progress batch to every other process, and register the decode handlers
// the receive path invokes for each. This interface keeps `src/timely/`
// free of socket code; `src/net/` provides the TCP implementation
// (`megaphone::net::NetMesh`), and single-process runs never construct
// one (a null NetRuntime* is the "everything is local" fast path).
//
// Delivery contract the engine relies on (see DESIGN.md "Process model"):
//   * frames from one process to another are delivered in FIFO order,
//   * a handler registered for a (dataflow, channel) or dataflow key also
//     receives, in order, any frames that arrived before registration,
//   * handlers run on the transport's receive threads and must be
//     thread-safe against worker threads (channel queues and the progress
//     tracker already are).
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/serde.hpp"

namespace timely {

/// Raised by worker loops when the transport reports a dead peer: the
/// run cannot make progress (remote `produced` counts will never arrive)
/// and aborts cleanly instead of spinning on a frontier that never
/// advances. Callers that own checkpoints may catch this and recover.
class PeerDownError : public std::runtime_error {
 public:
  explicit PeerDownError(const std::string& reason)
      : std::runtime_error(reason.empty() ? "mesh peer down" : reason) {}
};

class NetRuntime {
 public:
  virtual ~NetRuntime() = default;

  virtual uint32_t processes() const = 0;
  virtual uint32_t process_index() const = 0;
  /// Workers are split evenly: process p owns global worker indices
  /// [p * workers_per_process, (p + 1) * workers_per_process).
  virtual uint32_t workers_per_process() const = 0;

  /// True once any peer has been declared down (heartbeat deadline, EOF
  /// without goodbye, unframeable stream). Sticky. Worker step loops
  /// poll this and raise PeerDownError.
  virtual bool PeerFailed() const { return false; }
  /// Human-readable reason for the first failure ("" while healthy).
  virtual std::string FailureReason() const { return std::string(); }

  uint32_t ProcessOfWorker(uint32_t worker) const {
    return worker / workers_per_process();
  }
  bool IsLocalWorker(uint32_t worker) const {
    return ProcessOfWorker(worker) == process_index();
  }

  /// Ships one encoded bundle to the process owning `target_worker`.
  virtual void SendData(uint64_t dataflow_id, uint64_t channel_id,
                        uint32_t target_worker,
                        std::vector<uint8_t> payload) = 0;

  /// Ships one encoded progress-change batch to every other process.
  virtual void BroadcastProgress(uint64_t dataflow_id,
                                 std::vector<uint8_t> payload) = 0;

  using DataHandler =
      std::function<void(uint32_t target_worker, megaphone::Reader&)>;
  using ProgressHandler = std::function<void(megaphone::Reader&)>;

  /// Installs the decoder for data frames of (dataflow, channel); frames
  /// that arrived earlier are replayed through it first, in order.
  virtual void RegisterDataHandler(uint64_t dataflow_id, uint64_t channel_id,
                                   DataHandler handler) = 0;

  /// Installs the decoder for progress frames of a dataflow; frames that
  /// arrived earlier are replayed through it first, in order.
  virtual void RegisterProgressHandler(uint64_t dataflow_id,
                                       ProgressHandler handler) = 0;
};

}  // namespace timely
