// Inter-worker data channels.
//
// Workers communicate exclusively through channels of timestamped bundles
// (the shared-nothing discipline of Figure 2 in the paper). A channel has
// one logical producer port and, per receiving worker, a FIFO queue of
// bundles. Senders batch records into bundles so queue and progress-tracker
// synchronization is amortized over ~hundreds of records.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <typeindex>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"

namespace timely {

/// A batch of records sharing one logical timestamp.
template <typename D, typename T>
struct Bundle {
  T time{};
  std::vector<D> data;
};

/// A multi-producer channel with one FIFO queue per receiving worker.
template <typename D, typename T>
class Channel {
 public:
  explicit Channel(uint32_t workers) : queues_(workers) {
    for (auto& q : queues_) q = std::make_unique<Queue>();
  }

  void Push(uint32_t target, Bundle<D, T>&& bundle) {
    MEGA_DCHECK(target < queues_.size());
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    queues_[target]->q.push_back(std::move(bundle));
  }

  /// Pops the next bundle for `worker`; returns false if none queued.
  bool Pull(uint32_t worker, Bundle<D, T>& out) {
    MEGA_DCHECK(worker < queues_.size());
    std::lock_guard<std::mutex> lock(queues_[worker]->mu);
    if (queues_[worker]->q.empty()) return false;
    out = std::move(queues_[worker]->q.front());
    queues_[worker]->q.pop_front();
    return true;
  }

  uint32_t workers() const { return static_cast<uint32_t>(queues_.size()); }

 private:
  struct Queue {
    std::mutex mu;
    std::deque<Bundle<D, T>> q;
  };
  std::vector<std::unique_ptr<Queue>> queues_;
};

/// Process-wide registry mapping (dataflow, channel) ids to shared channel
/// instances. Every worker builds the same dataflow, allocating the same
/// channel ids in the same order; the first to ask creates the channel.
class ChannelRegistry {
 public:
  template <typename C>
  std::shared_ptr<C> GetOrCreate(uint64_t dataflow_id, uint64_t channel_id,
                                 uint32_t workers) {
    uint64_t key = (dataflow_id << 32) | channel_id;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = channels_.find(key);
    if (it != channels_.end()) {
      MEGA_CHECK(it->second.type == std::type_index(typeid(C)))
          << "channel type mismatch between workers";
      return std::static_pointer_cast<C>(it->second.ptr);
    }
    auto ch = std::make_shared<C>(workers);
    channels_.emplace(key,
                      Entry{std::type_index(typeid(C)), ch});
    return ch;
  }

 private:
  struct Entry {
    std::type_index type;
    std::shared_ptr<void> ptr;
  };
  std::mutex mu_;
  std::unordered_map<uint64_t, Entry> channels_;
};

}  // namespace timely
