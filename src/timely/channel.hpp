// Inter-worker data channels.
//
// Workers communicate exclusively through channels of timestamped bundles
// (the shared-nothing discipline of Figure 2 in the paper). A channel has
// one logical producer port and, per receiving worker, a FIFO queue of
// bundles. Senders batch records into bundles so queue and progress-tracker
// synchronization is amortized over ~hundreds of records.
//
// The hot path is batch-first: receivers drain a whole queue with one lock
// acquisition (PullAll swaps the deque), senders can publish several
// bundles under one lock (PushMany), and drained bundle buffers are
// recycled through a per-channel pool so vector capacity flows from
// receiver back to sender instead of being reallocated per bundle.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <typeindex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/serde.hpp"
#include "timely/remote.hpp"

namespace timely {

/// A batch of records sharing one logical timestamp. Member serde (valid
/// whenever D and T are serializable) is the bundle's wire format on the
/// process mesh: time, then the record vector.
template <typename D, typename T>
struct Bundle {
  T time{};
  std::vector<D> data;

  void Serialize(megaphone::Writer& w) const
    requires(megaphone::Serializable<D> && megaphone::Serializable<T>)
  {
    megaphone::Encode(w, time);
    megaphone::Encode(w, data);
  }
  static Bundle Deserialize(megaphone::Reader& r)
    requires(megaphone::Serializable<D> && megaphone::Serializable<T>)
  {
    Bundle b;
    b.time = megaphone::Decode<T>(r);
    b.data = megaphone::Decode<std::vector<D>>(r);
    return b;
  }
};

/// A multi-producer channel with one FIFO queue per receiving worker.
template <typename D, typename T>
class Channel {
 public:
  explicit Channel(uint32_t workers) : queues_(workers) {
    for (auto& q : queues_) q = std::make_unique<Queue>();
  }

  void Push(uint32_t target, Bundle<D, T>&& bundle) {
    MEGA_DCHECK(target < queues_.size());
    if (net_ != nullptr && !IsLocal(target)) {
      SendRemote(target, std::move(bundle));
      return;
    }
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    queues_[target]->q.push_back(std::move(bundle));
  }

  /// Publishes every bundle of `bundles` (in order) under one lock
  /// acquisition; `bundles` is left empty.
  void PushMany(uint32_t target, std::deque<Bundle<D, T>>& bundles) {
    MEGA_DCHECK(target < queues_.size());
    if (bundles.empty()) return;
    if (net_ != nullptr && !IsLocal(target)) {
      for (auto& b : bundles) SendRemote(target, std::move(b));
      bundles.clear();
      return;
    }
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    auto& q = queues_[target]->q;
    if (q.empty()) {
      q.swap(bundles);
    } else {
      for (auto& b : bundles) q.push_back(std::move(b));
      bundles.clear();
    }
  }

  /// Pops the next bundle for `worker`; returns false if none queued.
  bool Pull(uint32_t worker, Bundle<D, T>& out) {
    MEGA_DCHECK(worker < queues_.size());
    std::lock_guard<std::mutex> lock(queues_[worker]->mu);
    if (queues_[worker]->q.empty()) return false;
    out = std::move(queues_[worker]->q.front());
    queues_[worker]->q.pop_front();
    return true;
  }

  /// Drains every queued bundle for `worker` into `out` (FIFO order) with
  /// a single lock acquisition — `out` is swapped with the live queue when
  /// empty, so the drain itself moves no bundles. Returns the number of
  /// bundles delivered.
  size_t PullAll(uint32_t worker, std::deque<Bundle<D, T>>& out) {
    MEGA_DCHECK(worker < queues_.size());
    std::lock_guard<std::mutex> lock(queues_[worker]->mu);
    auto& q = queues_[worker]->q;
    size_t drained = q.size();
    if (drained == 0) return 0;
    if (out.empty()) {
      out.swap(q);
    } else {
      while (!q.empty()) {
        out.push_back(std::move(q.front()));
        q.pop_front();
      }
    }
    return drained;
  }

  /// Takes a recycled record buffer (empty, with capacity) from the
  /// calling worker's pool shard, or an empty vector if the shard is dry.
  /// Shards keep workers off each other's pool locks.
  std::vector<D> AcquireBuffer(uint32_t worker = 0) {
    MEGA_DCHECK(worker < queues_.size());
    auto& shard = *queues_[worker];
    std::lock_guard<std::mutex> lock(shard.pool_mu);
    if (shard.pool.empty()) return {};
    std::vector<D> buf = std::move(shard.pool.back());
    shard.pool.pop_back();
    return buf;
  }

  /// Returns a drained bundle buffer to the calling worker's pool shard
  /// so its capacity is reused by a later flush. Buffers without capacity
  /// are dropped.
  void RecycleBuffer(std::vector<D>&& buf, uint32_t worker = 0) {
    if (buf.capacity() == 0) return;
    MEGA_DCHECK(worker < queues_.size());
    buf.clear();
    auto& shard = *queues_[worker];
    std::lock_guard<std::mutex> lock(shard.pool_mu);
    if (shard.pool.size() < kMaxPooled) shard.pool.push_back(std::move(buf));
  }

  /// Buffers currently pooled across all shards (introspection for tests).
  size_t PooledBuffers() const {
    size_t n = 0;
    for (const auto& q : queues_) {
      std::lock_guard<std::mutex> lock(q->pool_mu);
      n += q->pool.size();
    }
    return n;
  }

  uint32_t workers() const { return static_cast<uint32_t>(queues_.size()); }

  // --- multi-process extension -----------------------------------------
  //
  // With a mesh attached, a push whose target worker lives in another
  // process serializes the bundle (one encode) and hands the bytes to the
  // transport; the owning process decodes it (one decode) straight into
  // the target's ordinary queue via DecodeAndPush. Pushes between
  // co-located workers are untouched — with no mesh the only cost on the
  // hot path is one null check.

  /// Attaches the mesh; pushed bundles for non-local workers serialize
  /// and ship. Called once at channel creation, before any worker steps.
  void EnableRemote(NetRuntime* net, uint64_t dataflow_id,
                    uint64_t channel_id) {
    net_ = net;
    df_id_ = dataflow_id;
    chan_id_ = channel_id;
    local_begin_ = net->process_index() * net->workers_per_process();
    local_end_ = local_begin_ + net->workers_per_process();
  }

  /// Decodes one wire bundle and publishes it locally (transport receive
  /// path). The sender guaranteed `target` is one of our workers.
  void DecodeAndPush(uint32_t target, megaphone::Reader& r) {
    if constexpr (megaphone::Serializable<T> && megaphone::Serializable<D>) {
      Bundle<D, T> bundle = Bundle<D, T>::Deserialize(r);
      MEGA_CHECK(IsLocal(target)) << "wire bundle routed to a remote worker";
      std::lock_guard<std::mutex> lock(queues_[target]->mu);
      queues_[target]->q.push_back(std::move(bundle));
    } else {
      MEGA_CHECK(false) << "received wire bundle for a non-serializable type";
    }
  }

 private:
  bool IsLocal(uint32_t worker) const {
    return worker >= local_begin_ && worker < local_end_;
  }

  void SendRemote(uint32_t target, Bundle<D, T>&& bundle) {
    if constexpr (megaphone::Serializable<T> && megaphone::Serializable<D>) {
      megaphone::Writer w;
      bundle.Serialize(w);
      net_->SendData(df_id_, chan_id_, target, w.Take());
    } else {
      MEGA_CHECK(false)
          << "bundle type is not serializable; channel cannot cross "
             "process boundaries";
    }
  }

  // Enough for every worker to have a few bundles in flight per direction;
  // beyond that, extra capacity is better returned to the allocator.
  static constexpr size_t kMaxPooled = 64;

  struct Queue {
    std::mutex mu;
    std::deque<Bundle<D, T>> q;
    // Per-worker buffer-pool shard (worker i recycles into and acquires
    // from shard i; capacity migrates between shards with the bundles).
    mutable std::mutex pool_mu;
    std::vector<std::vector<D>> pool;
  };
  std::vector<std::unique_ptr<Queue>> queues_;

  // Remote extension; null in single-process runs.
  NetRuntime* net_ = nullptr;
  uint64_t df_id_ = 0;
  uint64_t chan_id_ = 0;
  uint32_t local_begin_ = 0;
  uint32_t local_end_ = ~uint32_t{0};
};

/// Process-wide registry mapping (dataflow, channel) ids to shared channel
/// instances. Every worker builds the same dataflow, allocating the same
/// channel ids in the same order; the first to ask creates the channel.
class ChannelRegistry {
 public:
  /// Attaches the mesh (multi-process runs): channels created afterwards
  /// ship non-local pushes over it and register their wire decoder with
  /// the transport. Must be called before any worker builds a dataflow.
  void SetNet(NetRuntime* net) { net_ = net; }

  template <typename C>
  std::shared_ptr<C> GetOrCreate(uint64_t dataflow_id, uint64_t channel_id,
                                 uint32_t workers) {
    uint64_t key = (dataflow_id << 32) | channel_id;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = channels_.find(key);
    if (it != channels_.end()) {
      MEGA_CHECK(it->second.type == std::type_index(typeid(C)))
          << "channel type mismatch between workers";
      return std::static_pointer_cast<C>(it->second.ptr);
    }
    auto ch = std::make_shared<C>(workers);
    if (net_ != nullptr) {
      ch->EnableRemote(net_, dataflow_id, channel_id);
      net_->RegisterDataHandler(
          dataflow_id, channel_id,
          [ch](uint32_t target, megaphone::Reader& r) {
            ch->DecodeAndPush(target, r);
          });
    }
    channels_.emplace(key,
                      Entry{std::type_index(typeid(C)), ch});
    return ch;
  }

 private:
  struct Entry {
    std::type_index type;
    std::shared_ptr<void> ptr;
  };
  std::mutex mu_;
  std::unordered_map<uint64_t, Entry> channels_;
  NetRuntime* net_ = nullptr;
};

}  // namespace timely
