// Progress tracking: pointstamp counts, reachability, and frontiers.
//
// Timely dataflow coordination rests on a single piece of shared knowledge:
// for every (location, timestamp) pair, how many messages or capabilities
// are still outstanding. From these counts and the dataflow graph's
// reachability relation, each input port's frontier (paper Definition 1) is
// derived: the antichain of timestamps that may still arrive there.
//
// The original system broadcasts count deltas between workers; since this
// reproduction runs workers as threads of one process, the tracker is a
// shared structure with a short-critical-section mutex. The safety protocol
// is the standard one:
//   * a producer applies its `produced` increment BEFORE a message becomes
//     visible in a channel queue,
//   * a consumer applies its `consumed` decrement and any capability
//     changes in one atomic batch at the end of an operator scheduling
//     step, after flushing everything the step produced.
// Under this discipline counts never go transiently negative and frontiers
// never advance past live work.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/serde.hpp"
#include "timely/antichain.hpp"
#include "timely/timestamp.hpp"

namespace timely {

/// A single pointstamp count delta at a graph location. Field-wise serde
/// (rather than the trivially-copyable memcpy fallback) keeps the wire
/// format free of struct padding, so progress frames are well-defined
/// bytes across processes.
template <typename T>
struct Change {
  uint32_t loc;
  T time;
  int64_t delta;

  void Serialize(megaphone::Writer& w) const
    requires megaphone::Serializable<T>
  {
    megaphone::Encode(w, loc);
    megaphone::Encode(w, time);
    megaphone::Encode(w, delta);
  }
  static Change Deserialize(megaphone::Reader& r)
    requires megaphone::Serializable<T>
  {
    Change c;
    c.loc = megaphone::Decode<uint32_t>(r);
    c.time = megaphone::Decode<T>(r);
    c.delta = megaphone::Decode<int64_t>(r);
    return c;
  }
};

/// Consolidates a change batch in place: deltas at the same (location,
/// time) are summed and entries netting to zero are dropped, so one
/// tracker acquisition applies the whole batch — or none at all when a
/// step's changes cancel out. Sound because Apply is atomic: counts are
/// only ever observed after the entire batch, where order and transient
/// zero-sum pairs are unobservable. Uses the timestamp's total tie-break
/// `operator<` (the same order std::map keys rely on throughout).
template <typename T>
void ConsolidateChanges(std::vector<Change<T>>& changes) {
  if (changes.size() == 1) {
    if (changes[0].delta == 0) changes.clear();
    return;
  }
  if (changes.empty()) return;
  std::sort(changes.begin(), changes.end(),
            [](const Change<T>& a, const Change<T>& b) {
              if (a.loc != b.loc) return a.loc < b.loc;
              return a.time < b.time;
            });
  size_t out = 0;
  for (size_t i = 0; i < changes.size();) {
    int64_t sum = 0;
    size_t j = i;
    while (j < changes.size() && changes[j].loc == changes[i].loc &&
           changes[j].time == changes[i].time) {
      sum += changes[j].delta;
      ++j;
    }
    if (sum != 0) {
      changes[out] = changes[i];
      changes[out].delta = sum;
      ++out;
    }
    i = j;
  }
  changes.resize(out);
}

/// Structural description of a dataflow graph, built identically by every
/// worker during dataflow construction.
///
/// Locations are dense ids: node `i`'s input port `j` is at
/// `node_base[i] + j`, and its output port `j` at
/// `node_base[i] + inputs_i + j`. Ports must be added inputs-first and one
/// node at a time so bases never shift.
class GraphSpec {
 public:
  struct NodeSpec {
    std::string name;
    uint32_t inputs = 0;
    uint32_t outputs = 0;
    bool sealed = false;
  };

  /// Starts a new node; the previous node (if any) is sealed.
  uint32_t AddNode(std::string name) {
    if (!nodes_.empty()) nodes_.back().sealed = true;
    nodes_.push_back(NodeSpec{std::move(name), 0, 0, false});
    node_base_.push_back(next_loc_);
    return static_cast<uint32_t>(nodes_.size() - 1);
  }

  /// Adds an input port to the (latest) node; returns its location.
  uint32_t AddInputPort(uint32_t node) {
    MEGA_CHECK_EQ(node, nodes_.size() - 1) << "ports on latest node only";
    MEGA_CHECK(!nodes_[node].sealed);
    MEGA_CHECK_EQ(nodes_[node].outputs, 0u)
        << "all inputs must be added before any output";
    uint32_t loc = node_base_[node] + nodes_[node].inputs;
    nodes_[node].inputs++;
    next_loc_++;
    loc_is_input_.push_back(1);
    return loc;
  }

  /// Adds an output port to the (latest) node; returns its location.
  uint32_t AddOutputPort(uint32_t node) {
    MEGA_CHECK_EQ(node, nodes_.size() - 1) << "ports on latest node only";
    MEGA_CHECK(!nodes_[node].sealed);
    uint32_t loc = node_base_[node] + nodes_[node].inputs +
                   nodes_[node].outputs;
    nodes_[node].outputs++;
    next_loc_++;
    loc_is_input_.push_back(0);
    return loc;
  }

  /// Records a channel edge from an output-port location to an input-port
  /// location.
  void AddEdge(uint32_t src_loc, uint32_t dst_loc) {
    edges_.emplace_back(src_loc, dst_loc);
  }

  uint32_t num_locations() const { return next_loc_; }
  const std::vector<NodeSpec>& nodes() const { return nodes_; }
  const std::vector<uint32_t>& node_base() const { return node_base_; }
  const std::vector<std::pair<uint32_t, uint32_t>>& edges() const {
    return edges_;
  }

  /// True if `loc` is an input port of some node. O(1): the kind table is
  /// maintained as ports are added (locations are dense and append-only).
  bool IsInputLoc(uint32_t loc) const {
    return loc < loc_is_input_.size() && loc_is_input_[loc] != 0;
  }

 private:
  std::vector<NodeSpec> nodes_;
  std::vector<uint32_t> node_base_;
  std::vector<std::pair<uint32_t, uint32_t>> edges_;
  std::vector<uint8_t> loc_is_input_;  // per-location kind table
  uint32_t next_loc_ = 0;
};

/// Shared pointstamp accounting and frontier computation for one dataflow.
template <typename T>
class ProgressTracker {
 public:
  /// Installs the graph. The first caller wins; later callers must present
  /// a structurally identical spec (all workers build the same dataflow).
  void Finalize(const GraphSpec& spec) {
    std::lock_guard<std::mutex> lock(mu_);
    if (finalized_) {
      MEGA_CHECK_EQ(spec.num_locations(), num_locs_)
          << "workers built structurally different dataflows";
      return;
    }
    num_locs_ = spec.num_locations();
    counts_.resize(num_locs_);
    loc_frontier_.resize(num_locs_);
    port_index_of_loc_.assign(num_locs_, -1);

    // Adjacency: internal edges input->outputs plus channel edges.
    std::vector<std::vector<uint32_t>> adj(num_locs_);
    const auto& nodes = spec.nodes();
    const auto& base = spec.node_base();
    for (size_t n = 0; n < nodes.size(); ++n) {
      for (uint32_t i = 0; i < nodes[n].inputs; ++i) {
        for (uint32_t o = 0; o < nodes[n].outputs; ++o) {
          adj[base[n] + i].push_back(base[n] + nodes[n].inputs + o);
        }
      }
    }
    for (const auto& [src, dst] : spec.edges()) {
      MEGA_CHECK_LT(src, num_locs_);
      MEGA_CHECK_LT(dst, num_locs_);
      adj[src].push_back(dst);
    }
    CheckAcyclic(adj);

    // Dense indices for input-port locations.
    for (size_t n = 0; n < nodes.size(); ++n) {
      for (uint32_t i = 0; i < nodes[n].inputs; ++i) {
        uint32_t loc = base[n] + i;
        port_index_of_loc_[loc] =
            static_cast<int32_t>(input_port_locs_.size());
        input_port_locs_.push_back(loc);
      }
    }
    port_frontier_.resize(input_port_locs_.size());

    // Reverse reachability: for each input port, all locations that can
    // reach it (reflexively), i.e. whose pointstamps constrain its frontier.
    std::vector<std::vector<uint32_t>> radj(num_locs_);
    for (uint32_t u = 0; u < num_locs_; ++u)
      for (uint32_t v : adj[u]) radj[v].push_back(u);
    reaching_.resize(input_port_locs_.size());
    affects_.resize(num_locs_);
    for (size_t p = 0; p < input_port_locs_.size(); ++p) {
      std::vector<bool> seen(num_locs_, false);
      std::vector<uint32_t> stack{input_port_locs_[p]};
      seen[input_port_locs_[p]] = true;
      while (!stack.empty()) {
        uint32_t u = stack.back();
        stack.pop_back();
        reaching_[p].push_back(u);
        affects_[u].push_back(static_cast<uint32_t>(p));
        for (uint32_t v : radj[u]) {
          if (!seen[v]) {
            seen[v] = true;
            stack.push_back(v);
          }
        }
      }
    }
    finalized_ = true;
    // Remote progress batches that raced ahead of our own finalize were
    // stashed by ApplyUnbroadcast; merge them now that the graph exists.
    if (!pre_finalize_remote_.empty()) {
      std::vector<Change<T>> stashed = std::move(pre_finalize_remote_);
      pre_finalize_remote_.clear();
      ApplyLocked(std::span<const Change<T>>(stashed.data(), stashed.size()));
    }
  }

  bool finalized() const {
    std::lock_guard<std::mutex> lock(mu_);
    return finalized_;
  }

  /// Installs the hook that forwards locally originated batches to remote
  /// tracker replicas. Must be installed before any post-build Apply; the
  /// runtime wires it when a dataflow's shared state is first created.
  void SetBroadcast(std::function<void(std::span<const Change<T>>)> fn) {
    std::lock_guard<std::mutex> lock(mu_);
    broadcast_ = std::move(fn);
  }

  /// Applies a batch of count deltas atomically and refreshes affected
  /// frontiers. Batches applied through this entry point are *locally
  /// originated*: in a multi-process run they are also forwarded to every
  /// remote tracker replica, after the local apply and outside the lock —
  /// still before the caller can make any corresponding bundle visible,
  /// which is the cross-process safety order (counts travel ahead of data
  /// on the same FIFO peer stream).
  void Apply(std::span<const Change<T>> changes) {
    if (changes.empty()) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      MEGA_CHECK(finalized_);
      ApplyLocked(changes);
    }
    if (broadcast_) broadcast_(changes);
  }

  /// Applies a batch without forwarding it: remote-originated merges (the
  /// sender already owns the batch) and the statically replicated initial
  /// capabilities. Before Finalize the batch is stashed and merged when
  /// the graph is installed — remote processes may finish building first.
  void ApplyUnbroadcast(std::span<const Change<T>> changes) {
    if (changes.empty()) return;
    std::lock_guard<std::mutex> lock(mu_);
    if (!finalized_) {
      pre_finalize_remote_.insert(pre_finalize_remote_.end(), changes.begin(),
                                  changes.end());
      return;
    }
    ApplyLocked(changes);
  }

 private:
  /// Count/frontier update; callers hold mu_ and guarantee finalized_.
  void ApplyLocked(std::span<const Change<T>> changes) {
    dirty_scratch_.clear();
    for (const auto& c : changes) {
      MEGA_CHECK_LT(c.loc, num_locs_);
      bool was_empty = counts_[c.loc].Empty();
      if (counts_[c.loc].Update(c.time, c.delta)) {
        Antichain<T> f = counts_[c.loc].Frontier();
        if (!(f == loc_frontier_[c.loc])) {
          loc_frontier_[c.loc] = std::move(f);
          dirty_scratch_.push_back(c.loc);
        }
      }
      bool now_empty = counts_[c.loc].Empty();
      if (was_empty && !now_empty) nonempty_locs_++;
      if (!was_empty && now_empty) nonempty_locs_--;
    }
    if (dirty_scratch_.empty()) return;

    // Recompute the port frontier of every input port affected by a dirty
    // location.
    port_scratch_.clear();
    for (uint32_t loc : dirty_scratch_) {
      for (uint32_t p : affects_[loc]) {
        if (std::find(port_scratch_.begin(), port_scratch_.end(), p) ==
            port_scratch_.end())
          port_scratch_.push_back(p);
      }
    }
    bool any_changed = false;
    for (uint32_t p : port_scratch_) {
      Antichain<T> f;
      for (uint32_t loc : reaching_[p]) {
        for (const T& t : loc_frontier_[loc].elements()) f.Insert(t);
      }
      if (!(f == port_frontier_[p])) {
        port_frontier_[p] = std::move(f);
        any_changed = true;
      }
    }
    if (any_changed)
      version_.fetch_add(1, std::memory_order_release);
  }

 public:
  void ApplyOne(uint32_t loc, const T& time, int64_t delta) {
    Change<T> c{loc, time, delta};
    Apply(std::span<const Change<T>>(&c, 1));
  }

  /// Monotone version counter; bumped whenever any port frontier changes.
  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  /// Copies all input-port frontiers (indexed by dense port index) into
  /// `out` and returns the version they correspond to.
  uint64_t SnapshotFrontiers(std::vector<Antichain<T>>& out) const {
    std::lock_guard<std::mutex> lock(mu_);
    out = port_frontier_;
    return version_.load(std::memory_order_relaxed);
  }

  /// Frontier at a single input-port location (used by probes).
  Antichain<T> FrontierAt(uint32_t loc) const {
    std::lock_guard<std::mutex> lock(mu_);
    MEGA_CHECK_LT(loc, num_locs_);
    int32_t p = port_index_of_loc_[loc];
    MEGA_CHECK_GE(p, 0) << "FrontierAt requires an input-port location";
    return port_frontier_[static_cast<size_t>(p)];
  }

  /// Dense port index of an input-port location, or -1.
  int32_t PortIndexOf(uint32_t loc) const {
    std::lock_guard<std::mutex> lock(mu_);
    MEGA_CHECK_LT(loc, num_locs_);
    return port_index_of_loc_[loc];
  }

  /// True when no pointstamps remain anywhere: the dataflow has completed.
  bool Complete() const {
    std::lock_guard<std::mutex> lock(mu_);
    return finalized_ && nonempty_locs_ == 0;
  }

  size_t num_input_ports() const {
    std::lock_guard<std::mutex> lock(mu_);
    return input_port_locs_.size();
  }

 private:
  static void CheckAcyclic(const std::vector<std::vector<uint32_t>>& adj) {
    // Kahn's algorithm; the engine supports acyclic dataflows only (all of
    // Megaphone's dataflows are acyclic).
    std::vector<uint32_t> indeg(adj.size(), 0);
    for (const auto& out : adj)
      for (uint32_t v : out) indeg[v]++;
    std::vector<uint32_t> queue;
    for (uint32_t u = 0; u < adj.size(); ++u)
      if (indeg[u] == 0) queue.push_back(u);
    size_t seen = 0;
    while (!queue.empty()) {
      uint32_t u = queue.back();
      queue.pop_back();
      seen++;
      for (uint32_t v : adj[u])
        if (--indeg[v] == 0) queue.push_back(v);
    }
    MEGA_CHECK_EQ(seen, adj.size()) << "dataflow graph must be acyclic";
  }

  mutable std::mutex mu_;
  bool finalized_ = false;
  uint32_t num_locs_ = 0;
  int64_t nonempty_locs_ = 0;
  std::atomic<uint64_t> version_{0};
  std::function<void(std::span<const Change<T>>)> broadcast_;  // distributed
  std::vector<Change<T>> pre_finalize_remote_;  // stashed remote batches

  std::vector<MutableAntichain<T>> counts_;   // per location
  std::vector<Antichain<T>> loc_frontier_;    // cached per location
  std::vector<uint32_t> input_port_locs_;     // port index -> location
  std::vector<int32_t> port_index_of_loc_;    // location -> port index
  std::vector<std::vector<uint32_t>> reaching_;  // port -> reaching locs
  std::vector<std::vector<uint32_t>> affects_;   // loc -> affected ports
  std::vector<Antichain<T>> port_frontier_;      // per port index

  // Scratch (guarded by mu_).
  std::vector<uint32_t> dirty_scratch_;
  std::vector<uint32_t> port_scratch_;
};

}  // namespace timely
