// User-facing dataflow inputs.
//
// Every worker creates an input handle during dataflow construction and
// holds a capability at its current epoch; the input stream's frontier is
// the minimum epoch across workers. Closing (or dropping) the handle
// releases the capability, which is what eventually completes the dataflow.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "timely/operator.hpp"
#include "timely/stream.hpp"
#include "timely/worker.hpp"

namespace timely {

/// Worker-local handle feeding a dataflow input. Obtain via NewInput().
template <typename D, typename T>
class InputCore {
 public:
  InputCore(std::shared_ptr<OutputHandle<D, T>> out, uint32_t out_loc,
            DataflowInstance<T>* df)
      : out_(std::move(out)),
        out_loc_(out_loc),
        df_(df),
        epoch_(TimestampTraits<T>::Minimum()) {}

  ~InputCore() { Close(); }

  InputCore(const InputCore&) = delete;
  InputCore& operator=(const InputCore&) = delete;

  /// Sends one record at the current epoch.
  void Send(D item) {
    MEGA_CHECK(!closed_) << "Send on closed input";
    out_->Send(epoch_, std::move(item));
  }

  /// Sends a batch of records at the current epoch.
  void SendBatch(std::vector<D>&& items) {
    MEGA_CHECK(!closed_) << "Send on closed input";
    out_->SendBatch(epoch_, std::move(items));
  }

  /// Advances this worker's epoch to `t` (must be ≥ the current epoch),
  /// flushing buffered records and downgrading the capability.
  void AdvanceTo(const T& t) {
    MEGA_CHECK(!closed_) << "AdvanceTo on closed input";
    MEGA_CHECK(TimestampTraits<T>::LessEqual(epoch_, t))
        << "input epochs must be monotone";
    if (epoch_ == t) return;
    out_->Flush();
    Change<T> changes[2] = {{out_loc_, t, +1}, {out_loc_, epoch_, -1}};
    df_->tracker().Apply(std::span<const Change<T>>(changes, 2));
    epoch_ = t;
  }

  /// Flushes and releases the capability; the input can send no more.
  /// Idempotent; also invoked by the destructor.
  void Close() {
    if (closed_) return;
    out_->Flush();
    df_->tracker().ApplyOne(out_loc_, epoch_, -1);
    closed_ = true;
  }

  const T& epoch() const { return epoch_; }
  bool closed() const { return closed_; }

 private:
  std::shared_ptr<OutputHandle<D, T>> out_;
  uint32_t out_loc_;
  DataflowInstance<T>* df_;
  T epoch_;
  bool closed_ = false;
};

template <typename D, typename T>
using Input = std::shared_ptr<InputCore<D, T>>;

/// Creates a dataflow input; returns the worker-local handle and the
/// stream of records it feeds.
template <typename D, typename T>
std::pair<Input<D, T>, Stream<D, T>> NewInput(Scope<T>& scope) {
  uint32_t node = scope.ReserveNode("Input");
  uint32_t loc = scope.AddOutputPort(node);
  auto out = std::make_shared<OutputHandle<D, T>>(
      &scope.df()->tracker(), scope.worker(), scope.peers(), nullptr);
  // Each worker contributes one capability at the minimum time; applied
  // after the tracker is finalized, before any worker proceeds.
  scope.AddInitialChange(loc, TimestampTraits<T>::Minimum(), +1);
  auto core = std::make_shared<InputCore<D, T>>(out, loc, scope.df());
  scope.df()->KeepAlive(out);
  return {core, Stream<D, T>(&scope, out.get(), loc)};
}

}  // namespace timely
