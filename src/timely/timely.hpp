// Umbrella header for the timely dataflow engine substrate.
#pragma once

#include "timely/antichain.hpp"      // IWYU pragma: export
#include "timely/channel.hpp"        // IWYU pragma: export
#include "timely/input.hpp"          // IWYU pragma: export
#include "timely/node.hpp"           // IWYU pragma: export
#include "timely/notificator.hpp"    // IWYU pragma: export
#include "timely/operator.hpp"       // IWYU pragma: export
#include "timely/operators.hpp"      // IWYU pragma: export
#include "timely/probe.hpp"          // IWYU pragma: export
#include "timely/progress.hpp"       // IWYU pragma: export
#include "timely/remote.hpp"         // IWYU pragma: export
#include "timely/runtime.hpp"        // IWYU pragma: export
#include "timely/stream.hpp"         // IWYU pragma: export
#include "timely/timestamp.hpp"      // IWYU pragma: export
#include "timely/worker.hpp"         // IWYU pragma: export
