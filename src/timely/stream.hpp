// Streams: build-time references to an operator's output.
#pragma once

#include <cstdint>

namespace timely {

template <typename D, typename T>
class OutputHandle;

template <typename T>
class Scope;

/// A typed reference to the output port of some node, valid during
/// dataflow construction. Consumers attach channels to the underlying
/// output handle.
template <typename D, typename T>
class Stream {
 public:
  using Data = D;
  using Timestamp = T;

  Stream() = default;
  Stream(Scope<T>* scope, OutputHandle<D, T>* out, uint32_t loc)
      : scope_(scope), out_(out), loc_(loc) {}

  Scope<T>* scope() const { return scope_; }
  OutputHandle<D, T>* output() const { return out_; }
  uint32_t loc() const { return loc_; }
  bool valid() const { return out_ != nullptr; }

 private:
  Scope<T>* scope_ = nullptr;
  OutputHandle<D, T>* out_ = nullptr;
  uint32_t loc_ = 0;
};

}  // namespace timely
