// Runtime entry point: spawn workers and run a user closure on each.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "timely/worker.hpp"

namespace timely {

struct Config {
  /// Number of worker threads. The paper runs 4 workers per process.
  uint32_t workers = 4;
};

/// Runs `fn(worker)` on `config.workers` threads. After the closure
/// returns, each worker keeps stepping until every dataflow completes
/// (inputs closed and all pointstamps drained), then the call returns.
///
/// Exceptions thrown by any worker closure are rethrown on the caller
/// after all threads join.
template <typename Fn>
void Execute(const Config& config, Fn fn) {
  MEGA_CHECK_GE(config.workers, 1u);
  auto shared = std::make_shared<RuntimeShared>(config.workers);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(config.workers);
  threads.reserve(config.workers);
  for (uint32_t i = 0; i < config.workers; ++i) {
    threads.emplace_back([i, shared, &fn, &errors] {
      Worker worker(i, shared);
      try {
        fn(worker);
        worker.StepUntilComplete();
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace timely
