// Runtime entry point: spawn workers and run a user closure on each.
//
// A run is W = workers * processes workers total. With processes == 1
// (the default) everything matches the original thread runtime exactly:
// no mesh, no serialization, in-memory channels only. With processes > 1
// each process runs `workers` threads carrying global worker indices
// [process_index * workers, ...), connected to its peers by the TCP mesh
// in src/net/: bundles for non-local workers serialize and ship, and
// every worker step's consolidated progress batch is broadcast so each
// process's tracker replica converges on the global counts.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "net/mesh.hpp"
#include "timely/worker.hpp"

namespace timely {

struct Config {
  Config() = default;
  /// `Config{w}` keeps working as it did when workers was the only field.
  explicit Config(uint32_t w) : workers(w) {}

  /// Number of worker threads **per process**. The paper runs 4 workers
  /// per process.
  uint32_t workers = 4;
  /// Number of processes; 1 = the classic single-process thread runtime.
  uint32_t processes = 1;
  /// This process's index in [0, processes).
  uint32_t process_index = 0;
  /// One "host:port" per process. Empty = loopback on consecutive ports
  /// starting at base_port (process i listens on base_port + i).
  std::vector<std::string> addresses;
  uint16_t base_port = 40123;
  /// Pre-bound listening socket for this process (the self-forking
  /// launcher binds kernel-assigned ports before forking); -1 = the mesh
  /// binds its own from `addresses`.
  int listen_fd = -1;
  /// Mesh keepalive: idle-link heartbeat cadence, and the silence
  /// deadline after which a peer is declared down (PeerDownError).
  uint64_t heartbeat_ms = 500;
  uint64_t peer_deadline_ms = 10'000;
  /// Deterministic transport-fault schedule (tests and fault drills;
  /// disabled by default). See src/fault/fault.hpp.
  megaphone::fault::FaultSpec fault;
};

/// Runs `fn(worker)` on `config.workers` threads. After the closure
/// returns, each worker keeps stepping until every dataflow completes
/// (inputs closed and all pointstamps drained), then the call returns.
///
/// Exceptions thrown by any worker closure are rethrown on the caller
/// after all threads join (and, in a multi-process run, after the mesh is
/// torn down).
template <typename Fn>
void Execute(const Config& config, Fn fn) {
  MEGA_CHECK_GE(config.workers, 1u);

  // Bring up the mesh first (multi-process runs only): worker threads and
  // the shared runtime state are created against a fully connected mesh.
  std::unique_ptr<megaphone::net::NetMesh> mesh;
  uint32_t local_begin = 0;
  if (config.processes > 1) {
    MEGA_CHECK_LT(config.process_index, config.processes);
    megaphone::net::MeshOptions mopts;
    mopts.processes = config.processes;
    mopts.process_index = config.process_index;
    mopts.workers_per_process = config.workers;
    mopts.listen_fd = config.listen_fd;
    mopts.heartbeat_ms = config.heartbeat_ms;
    mopts.peer_deadline_ms = config.peer_deadline_ms;
    mopts.fault = config.fault;
    if (config.addresses.empty()) {
      for (uint32_t p = 0; p < config.processes; ++p) {
        mopts.addresses.push_back(
            "127.0.0.1:" + std::to_string(config.base_port + p));
      }
    } else {
      mopts.addresses = config.addresses;
    }
    mesh = std::make_unique<megaphone::net::NetMesh>(std::move(mopts));
    local_begin = config.process_index * config.workers;
  }

  auto shared = std::make_shared<RuntimeShared>(
      config.workers * std::max(config.processes, 1u), local_begin,
      config.workers, mesh.get());
  if (mesh) shared->channels.SetNet(mesh.get());

  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(config.workers);
  threads.reserve(config.workers);
  for (uint32_t i = 0; i < config.workers; ++i) {
    threads.emplace_back([i, local_begin, shared, &fn, &errors] {
      Worker worker(local_begin + i, shared);
      try {
        fn(worker);
        worker.StepUntilComplete();
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (mesh) {
    bool failed = false;
    for (auto& e : errors) failed |= (e != nullptr);
    // Clean teardown waits for every peer's goodbye (all frames
    // delivered); on failure, force so a wedged peer cannot hang the
    // error report.
    mesh->Shutdown(/*force=*/failed);
  }
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  // A peer that died after the workers finished but before the goodbye
  // exchange still aborts the run: "completed" against a half-dead mesh
  // is not a clean result.
  if (mesh && mesh->PeerFailed()) {
    throw PeerDownError(mesh->FailureReason());
  }
}

}  // namespace timely
