// Hashing utilities used for key exchange and bin assignment.
//
// Megaphone assigns keys to bins using the *most significant* bits of the
// hashed key (paper §4.2), so the hash function must mix well in the high
// bits. We use a Murmur3-style 64-bit finalizer, which does.
#pragma once

#include <cstdint>
#include <string_view>

namespace megaphone {

/// Murmur3 64-bit finalizer: a fast, well-mixing bijection on uint64_t.
inline uint64_t HashMix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// FNV-1a for byte strings (used for hashing names and composite keys).
inline uint64_t HashBytes(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  // Finalize so that the high bits are well distributed too.
  return HashMix64(h);
}

/// Combines two hashes (boost::hash_combine style, 64-bit).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

}  // namespace megaphone
