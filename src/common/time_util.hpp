// Wall-clock helpers shared by the open-loop harness and benches.
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

namespace megaphone {

/// Monotonic wall-clock in nanoseconds since an arbitrary epoch.
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

inline void SleepNanos(uint64_t ns) {
  std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
}

/// Abstract clock so tests can drive time deterministically.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual uint64_t Nanos() = 0;
};

class SteadyClock final : public Clock {
 public:
  uint64_t Nanos() override { return NowNanos(); }
};

/// Manually advanced clock for tests.
class ManualClock final : public Clock {
 public:
  uint64_t Nanos() override { return now_; }
  void Advance(uint64_t ns) { now_ += ns; }
  void Set(uint64_t ns) { now_ = ns; }

 private:
  uint64_t now_ = 0;
};

}  // namespace megaphone
