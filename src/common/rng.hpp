// Deterministic pseudo-random number generation.
//
// All workload generators in this repository must be reproducible across
// runs and across worker counts, so they use explicitly seeded generators
// from this header rather than std::random_device.
#pragma once

#include <cstdint>

#include "common/check.hpp"

namespace megaphone {

/// SplitMix64: tiny, fast generator; also used to seed Xoshiro.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Xoshiro256**: the workhorse generator for workloads.
class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift reduction.
  uint64_t NextBelow(uint64_t bound) {
    MEGA_DCHECK(bound > 0);
    // 128-bit multiply keeps the distribution close to uniform without a
    // rejection loop; bias is < 2^-64 * bound which is negligible here.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(Next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t state_[4];
};

}  // namespace megaphone
