// Binary serialization for migrating state across dataflow channels.
//
// The Rust Megaphone uses Abomonation to serialize bins when they migrate
// between workers. This archive plays the same role: when operator F
// uninstalls a bin it encodes it to a byte vector, ships the bytes through
// an ordinary dataflow channel, and operator S decodes it on arrival. The
// encode/decode cost is proportional to the state size, which is essential
// for reproducing the paper's migration-duration and memory experiments.
//
// Types participate either by being trivially copyable, by being one of the
// supported standard containers, or by providing:
//
//   void Serialize(megaphone::Writer& w) const;
//   static T Deserialize(megaphone::Reader& r);
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <cstring>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <tuple>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace megaphone {

/// Thrown when a decode would read past the end of its buffer, when a
/// length prefix exceeds what the remaining bytes could possibly hold, or
/// when a full-buffer decode leaves trailing bytes. Malformed input —
/// a truncated network frame, a corrupted migration payload — surfaces as
/// a catchable error instead of an out-of-bounds read or a giant
/// allocation.
class SerdeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Append-only byte sink used when encoding.
class Writer {
 public:
  void WriteBytes(const void* data, size_t n) {
    if (n == 0) return;  // data may be null (e.g. an empty vector's data())
    const auto* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  std::vector<uint8_t> Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::vector<uint8_t> buf_;
};

/// Sequential byte source used when decoding.
class Reader {
 public:
  Reader(const uint8_t* data, size_t n) : data_(data), size_(n) {}
  explicit Reader(const std::vector<uint8_t>& v)
      : Reader(v.data(), v.size()) {}

  void ReadBytes(void* out, size_t n) {
    if (n > size_ - pos_) throw SerdeError("serde: read past end of buffer");
    if (n == 0) return;  // out may be null (e.g. an empty vector's data())
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }

  /// Reads a u64 element count for a container whose elements occupy at
  /// least `min_elem_bytes` each, and verifies the remaining bytes could
  /// hold that many elements — so a corrupted or truncated length prefix
  /// fails cleanly instead of driving a multi-gigabyte reserve.
  uint64_t ReadCount(size_t min_elem_bytes) {
    uint64_t n;
    ReadBytes(&n, sizeof(n));
    if (min_elem_bytes > 0 && n > remaining() / min_elem_bytes) {
      throw SerdeError("serde: length prefix exceeds remaining buffer");
    }
    return n;
  }

  bool AtEnd() const { return pos_ == size_; }
  size_t remaining() const { return size_ - pos_; }

  /// Splits off a reader over the next `n` bytes (zero copy) and advances
  /// this reader past them — how section-framed payloads (state chunks)
  /// hand each section to its own decoder without slicing buffers.
  Reader Sub(size_t n) {
    if (n > size_ - pos_) throw SerdeError("serde: sub-reader past end");
    Reader sub(data_ + pos_, n);
    pos_ += n;
    return sub;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Serde<T> dispatch. Specializations below cover scalars, strings, pairs,
// vectors, maps, optionals, and any type exposing Serialize/Deserialize.
// ---------------------------------------------------------------------------

template <typename T, typename Enable = void>
struct Serde;

template <typename T>
void Encode(Writer& w, const T& value) {
  Serde<T>::Encode(w, value);
}

template <typename T>
T Decode(Reader& r) {
  return Serde<T>::Decode(r);
}

/// Convenience: encode a value into a fresh byte vector.
template <typename T>
std::vector<uint8_t> EncodeToBytes(const T& value) {
  Writer w;
  Encode(w, value);
  return w.Take();
}

/// Convenience: decode a full byte vector into a value.
template <typename T>
T DecodeFromBytes(const std::vector<uint8_t>& bytes) {
  Reader r(bytes);
  T value = Decode<T>(r);
  if (!r.AtEnd()) throw SerdeError("serde: trailing bytes after decode");
  return value;
}

namespace detail {
template <typename T>
concept HasMemberSerde = requires(const T& t, Writer& w, Reader& r) {
  { t.Serialize(w) };
  { T::Deserialize(r) } -> std::same_as<T>;
};

// Standard wrappers with dedicated specializations below; excluded from the
// trivially-copyable fallback even when they happen to be trivially
// copyable (e.g. std::pair<int, int>).
template <typename T>
struct IsStdWrapper : std::false_type {};
template <typename A, typename B>
struct IsStdWrapper<std::pair<A, B>> : std::true_type {};
template <typename T>
struct IsStdWrapper<std::optional<T>> : std::true_type {};
template <typename... Ts>
struct IsStdWrapper<std::tuple<Ts...>> : std::true_type {};
}  // namespace detail

/// Cap on up-front container reserves while decoding: length prefixes are
/// only loosely validated (>= 1 byte per element), so reserves beyond this
/// are left to organic growth as elements actually decode.
constexpr uint64_t kMaxSpeculativeReserve = 1ull << 16;

/// True when Serde<T> has a usable specialization — the gate the remote
/// channel path uses to decide (at compile time) whether a bundle type can
/// cross process boundaries.
template <typename T>
concept Serializable = requires(Writer& w, Reader& r, const T& v) {
  Serde<std::remove_cvref_t<T>>::Encode(w, v);
  {
    Serde<std::remove_cvref_t<T>>::Decode(r)
  } -> std::same_as<std::remove_cvref_t<T>>;
};

// Trivially copyable scalars and PODs without member serde.
template <typename T>
struct Serde<T, std::enable_if_t<std::is_trivially_copyable_v<T> &&
                                 !detail::IsStdWrapper<T>::value &&
                                 !detail::HasMemberSerde<T>>> {
  static void Encode(Writer& w, const T& v) { w.WriteBytes(&v, sizeof(T)); }
  static T Decode(Reader& r) {
    T v;
    r.ReadBytes(&v, sizeof(T));
    return v;
  }
};

// Types providing Serialize/Deserialize members.
template <typename T>
struct Serde<T, std::enable_if_t<detail::HasMemberSerde<T>>> {
  static void Encode(Writer& w, const T& v) { v.Serialize(w); }
  static T Decode(Reader& r) { return T::Deserialize(r); }
};

template <>
struct Serde<std::string> {
  static void Encode(Writer& w, const std::string& s) {
    uint64_t n = s.size();
    w.WriteBytes(&n, sizeof(n));
    w.WriteBytes(s.data(), s.size());
  }
  static std::string Decode(Reader& r) {
    uint64_t n = r.ReadCount(1);
    std::string s(n, '\0');
    r.ReadBytes(s.data(), n);
    return s;
  }
};

template <typename A, typename B>
struct Serde<std::pair<A, B>> {
  static void Encode(Writer& w, const std::pair<A, B>& p) {
    megaphone::Encode(w, p.first);
    megaphone::Encode(w, p.second);
  }
  static std::pair<A, B> Decode(Reader& r) {
    A a = megaphone::Decode<A>(r);
    B b = megaphone::Decode<B>(r);
    return {std::move(a), std::move(b)};
  }
};

template <typename... Ts>
struct Serde<std::tuple<Ts...>> {
  static void Encode(Writer& w, const std::tuple<Ts...>& t) {
    std::apply([&](const Ts&... vs) { (megaphone::Encode(w, vs), ...); }, t);
  }
  static std::tuple<Ts...> Decode(Reader& r) {
    // Braced init guarantees left-to-right evaluation order.
    return std::tuple<Ts...>{megaphone::Decode<Ts>(r)...};
  }
};

template <typename T>
struct Serde<std::optional<T>> {
  static void Encode(Writer& w, const std::optional<T>& o) {
    uint8_t has = o.has_value() ? 1 : 0;
    w.WriteBytes(&has, 1);
    if (has) megaphone::Encode(w, *o);
  }
  static std::optional<T> Decode(Reader& r) {
    uint8_t has;
    r.ReadBytes(&has, 1);
    if (!has) return std::nullopt;
    return megaphone::Decode<T>(r);
  }
};

template <typename T>
struct Serde<std::vector<T>> {
  static void Encode(Writer& w, const std::vector<T>& v) {
    uint64_t n = v.size();
    w.WriteBytes(&n, sizeof(n));
    if constexpr (std::is_trivially_copyable_v<T> &&
                  !detail::HasMemberSerde<T>) {
      w.WriteBytes(v.data(), v.size() * sizeof(T));
    } else {
      for (const auto& e : v) megaphone::Encode(w, e);
    }
  }
  static std::vector<T> Decode(Reader& r) {
    std::vector<T> v;
    if constexpr (std::is_trivially_copyable_v<T> &&
                  !detail::HasMemberSerde<T>) {
      uint64_t n = r.ReadCount(sizeof(T));
      v.resize(n);
      r.ReadBytes(v.data(), n * sizeof(T));
    } else {
      uint64_t n = r.ReadCount(1);
      // Reserve is speculative (ReadCount only bounds n by remaining
      // bytes at >= 1 byte/element); clamp it so a corrupt count cannot
      // drive a huge up-front allocation — growth past the clamp just
      // reallocates as elements actually decode.
      v.reserve(std::min<uint64_t>(n, kMaxSpeculativeReserve));
      for (uint64_t i = 0; i < n; ++i) v.push_back(megaphone::Decode<T>(r));
    }
    return v;
  }
};

template <typename K, typename V, typename C>
struct Serde<std::map<K, V, C>> {
  static void Encode(Writer& w, const std::map<K, V, C>& m) {
    uint64_t n = m.size();
    w.WriteBytes(&n, sizeof(n));
    for (const auto& [k, v] : m) {
      megaphone::Encode(w, k);
      megaphone::Encode(w, v);
    }
  }
  static std::map<K, V, C> Decode(Reader& r) {
    uint64_t n = r.ReadCount(1);
    std::map<K, V, C> m;
    for (uint64_t i = 0; i < n; ++i) {
      K k = megaphone::Decode<K>(r);
      V v = megaphone::Decode<V>(r);
      m.emplace_hint(m.end(), std::move(k), std::move(v));
    }
    return m;
  }
};

namespace detail {

/// Field-list helpers behind MEGA_SERDE_FIELDS: encode/decode members in
/// declaration order (comma folds are sequenced left to right).
template <typename... Fs>
void EncodeMany(Writer& w, const Fs&... fields) {
  (megaphone::Encode(w, fields), ...);
}
template <typename... Fs>
void DecodeMany(Reader& r, Fs&... fields) {
  ((fields = megaphone::Decode<std::remove_reference_t<Fs>>(r)), ...);
}

}  // namespace detail

/// Declares member serde from a field list, in order:
///
///   struct PerKey { uint64_t window; std::string name;
///                   MEGA_SERDE_FIELDS(PerKey, window, name) };
///
/// Every listed field must itself be serde-able. This replaces hand-rolled
/// Serialize/Deserialize pairs for plain aggregate state types.
#define MEGA_SERDE_FIELDS(Type, ...)                       \
  void Serialize(::megaphone::Writer& w) const {           \
    ::megaphone::detail::EncodeMany(w, __VA_ARGS__);       \
  }                                                        \
  void DeserializeFieldsInto(::megaphone::Reader& r) {     \
    ::megaphone::detail::DecodeMany(r, __VA_ARGS__);       \
  }                                                        \
  static Type Deserialize(::megaphone::Reader& r) {        \
    Type out;                                              \
    out.DeserializeFieldsInto(r);                          \
    return out;                                            \
  }

template <typename K, typename V, typename H, typename E>
struct Serde<std::unordered_map<K, V, H, E>> {
  static void Encode(Writer& w, const std::unordered_map<K, V, H, E>& m) {
    uint64_t n = m.size();
    w.WriteBytes(&n, sizeof(n));
    for (const auto& [k, v] : m) {
      megaphone::Encode(w, k);
      megaphone::Encode(w, v);
    }
  }
  static std::unordered_map<K, V, H, E> Decode(Reader& r) {
    uint64_t n = r.ReadCount(1);
    std::unordered_map<K, V, H, E> m;
    // Clamped for the same reason as the vector path: a corrupt count
    // must not drive a multi-gigabyte bucket-array allocation up front.
    m.reserve(std::min<uint64_t>(n, kMaxSpeculativeReserve));
    for (uint64_t i = 0; i < n; ++i) {
      K k = megaphone::Decode<K>(r);
      V v = megaphone::Decode<V>(r);
      m.emplace(std::move(k), std::move(v));
    }
    return m;
  }
};

}  // namespace megaphone
