// Open-loop pacing primitives.
//
// The paper's harness is open-loop: input arrives at a configured rate even
// when the system becomes unresponsive (e.g. during a migration), which is
// what exposes latency spikes. OpenLoopPacer computes, for a given record
// index, the nanosecond deadline at which that record *should* enter the
// system; callers inject all records whose deadline has passed, never
// slowing down because the system lags.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/check.hpp"

namespace megaphone {

/// Maps record indices to injection deadlines at a fixed records/second rate.
class OpenLoopPacer {
 public:
  /// `rate` is records per second; `start_nanos` the experiment origin.
  OpenLoopPacer(double rate, uint64_t start_nanos)
      : nanos_per_record_(1e9 / rate), start_nanos_(start_nanos) {
    MEGA_CHECK_GT(rate, 0.0);
  }

  /// Deadline for record `i` (0-based).
  uint64_t DeadlineFor(uint64_t i) const {
    return start_nanos_ +
           static_cast<uint64_t>(nanos_per_record_ * static_cast<double>(i));
  }

  /// Number of records that should have been injected by wall time `now`.
  /// Record 0's deadline is `start_nanos_` itself, so at `now == start`
  /// exactly one record is already due.
  uint64_t RecordsDueBy(uint64_t now) const {
    if (now < start_nanos_) return 0;
    return static_cast<uint64_t>(static_cast<double>(now - start_nanos_) /
                                 nanos_per_record_) +
           1;
  }

  uint64_t start_nanos() const { return start_nanos_; }

 private:
  double nanos_per_record_;
  uint64_t start_nanos_;
};

/// Token-bucket byte throttle used to model network bandwidth on the state
/// channel (see DESIGN.md, Fig. 20 substitution). Single-producer use.
class ByteThrottle {
 public:
  /// `bytes_per_sec == 0` disables throttling.
  explicit ByteThrottle(uint64_t bytes_per_sec)
      : bytes_per_sec_(bytes_per_sec) {}

  /// Returns true if `n` bytes may be sent at time `now_nanos`; on success
  /// the tokens are consumed. The bucket holds at most one second of credit
  /// and starts full, so a burst up to `bytes_per_sec` passes immediately.
  bool Admit(uint64_t n, uint64_t now_nanos) {
    if (bytes_per_sec_ == 0) return true;
    Refill(now_nanos);
    if (tokens_ >= static_cast<double>(n)) {
      tokens_ -= static_cast<double>(n);
      return true;
    }
    return false;
  }

  uint64_t bytes_per_sec() const { return bytes_per_sec_; }

 private:
  void Refill(uint64_t now_nanos) {
    // `primed_` (not a timestamp sentinel) marks the first refill: clocks
    // may legitimately start at 0, so `last_nanos_ == 0` cannot mean
    // "never refilled". The first call fills the bucket.
    if (!primed_) {
      primed_ = true;
      last_nanos_ = now_nanos;
      tokens_ = static_cast<double>(bytes_per_sec_);
      return;
    }
    double credit = static_cast<double>(now_nanos - last_nanos_) * 1e-9 *
                    static_cast<double>(bytes_per_sec_);
    tokens_ = std::min(tokens_ + credit, static_cast<double>(bytes_per_sec_));
    last_nanos_ = now_nanos;
  }

  uint64_t bytes_per_sec_;
  double tokens_ = 0;
  uint64_t last_nanos_ = 0;
  bool primed_ = false;
};

}  // namespace megaphone
