// Lightweight invariant-checking macros in the spirit of glog/RocksDB
// assertions. CHECK-style macros are always on (they guard dataflow
// correctness invariants whose violation would silently corrupt results);
// DCHECK-style macros compile out in release builds.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace megaphone {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& msg) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s %s\n", file, line, expr,
               msg.c_str());
  std::fflush(stderr);
  std::abort();
}

namespace detail {
// Builds the optional streamed message for MEGA_CHECK(...) << "context".
class CheckMessage {
 public:
  CheckMessage(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}
  [[noreturn]] ~CheckMessage() { CheckFailed(file_, line_, expr_, os_.str()); }
  template <typename V>
  CheckMessage& operator<<(const V& v) {
    os_ << v;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace megaphone

#define MEGA_CHECK(expr)                                            \
  if (expr) {                                                       \
  } else                                                            \
    ::megaphone::detail::CheckMessage(__FILE__, __LINE__, #expr)

#define MEGA_CHECK_EQ(a, b) MEGA_CHECK((a) == (b))
#define MEGA_CHECK_NE(a, b) MEGA_CHECK((a) != (b))
#define MEGA_CHECK_LT(a, b) MEGA_CHECK((a) < (b))
#define MEGA_CHECK_LE(a, b) MEGA_CHECK((a) <= (b))
#define MEGA_CHECK_GT(a, b) MEGA_CHECK((a) > (b))
#define MEGA_CHECK_GE(a, b) MEGA_CHECK((a) >= (b))

#ifndef NDEBUG
#define MEGA_DCHECK(expr) MEGA_CHECK(expr)
#else
#define MEGA_DCHECK(expr) \
  if (true) {             \
  } else                  \
    ::megaphone::detail::CheckMessage(__FILE__, __LINE__, #expr)
#endif
