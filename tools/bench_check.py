#!/usr/bin/env python3
"""CI bench gates for the megabench driver.

Three modes, combinable:

  --report FILE [FILE ...]
      Sanity-check merged figure reports: each must parse as JSON, carry a
      non-empty "variants" array, and (for timeline figures) each variant
      must report max_latency_during_migration_ms plus a non-empty latency
      timeline aggregated from every launched process
      (processes_reporting == the report's "processes").

  --steady FILE --baseline BENCH_PR2.json [--min-ratio R]
      Regression gate: compare the current steady-throughput suite run
      against the committed baseline's post_recs_per_sec for matching row
      names (megaphone-count-w4 is the headline). The floor R is
      deliberately generous (default 0.15): CI machines differ wildly
      from the baseline machine, so the gate only catches catastrophic
      regressions — e.g. the single-process hot path accidentally paying
      serialization — not noise.

  --max-latency FILE [--max-latency-margin M]
      Chunked-migration gate on a fig-22-style report (megabench
      --fig=22): validates the report schema (both the "monolithic" and
      "chunked" variants present, each with steady percentiles, a
      sampled timeline, migration windows carrying batches and chunk
      traffic, and the chunked variant actually shipping >1 chunk frame
      per migrated bin), checks the two variants ran at comparable
      achieved throughput, and asserts the chunked variant's
      per-migration max latency <= max(monolithic * (1 + M),
      monolithic + floor). M defaults to 0.25 and the floor
      (--max-latency-floor-ms) to 15 ms — noise-safe: on quiet machines
      chunked sits well below monolithic, and the margin/floor only
      absorb scheduler jitter on busy CI runners, not a real regression
      (a regression flips the sign by far more than the floor).

  --rss-bound FILE
      Spill gate on a fig-25 report (megabench --fig=25): the log-state
      variant's peak RSS (merged over every process) must sit at or under
      the run's configured rss_cap_bytes — the whole point of spilling —
      while the in-memory map-state baseline must exceed the cap (it
      exists to prove the cap actually bites at this sizing), and the
      deterministic map-vs-log digest comparison embedded in the report
      must have matched byte-for-byte.

  --recovery FILE
      Fault-drill gate on a fig-23 report (megabench --fig=23): the
      surviving process must have aborted cleanly (PeerDownError, not a
      hang), at least one complete checkpoint must have existed before
      the crash (checkpoint_epoch >= 1), the recovery run must have
      resumed from it (resumed_at_epoch == checkpoint_epoch), its digest
      must be byte-identical to the fault-free reference, and recovery_ms
      must be a positive number.

  --adaptive FILE [--adaptive-margin M] [--adaptive-floor-ms F]
      Hot-key-flip gate on a fig-24 report (megabench --fig=24
      --controller=adaptive): the adaptive variant must have issued at
      least one rebalance plan with no fixed schedule, reacted after the
      flip (reaction_ms > 0), and its post-rebalance p99 must sit within
      max(pre-flip p99 * (1 + M), pre-flip p99 + F) — M defaults to 0.5
      (the paper-style "within 1.5x" criterion) and F to 20 ms of
      absolute noise headroom for busy CI runners.

Exit status 0 iff every requested check passes.
"""

import argparse
import json
import sys


def fail(msg: str) -> None:
    print(f"bench_check: FAIL: {msg}")
    sys.exit(1)


def check_report(path: str) -> None:
    with open(path) as f:
        report = json.load(f)
    variants = report.get("variants")
    if not isinstance(variants, list) or not variants:
        fail(f"{path}: no variants in report")
    processes = int(report.get("processes", 1))
    for v in variants:
        label = v.get("label", "?")
        if "timeline" in v:
            if not v["timeline"]:
                fail(f"{path}: variant {label} has an empty timeline")
            samples = sum(int(r.get("samples", 0)) for r in v["timeline"])
            if samples <= 0:
                fail(f"{path}: variant {label} timeline has no samples")
        if "migrations" in v and "max_latency_during_migration_ms" not in v:
            fail(f"{path}: variant {label} lacks max-latency-during-migration")
        if "processes_reporting" in v:
            reporting = int(v["processes_reporting"])
            if reporting != processes:
                fail(
                    f"{path}: variant {label} merged {reporting} process "
                    f"shards, expected {processes}"
                )
    print(
        f"bench_check: OK: {path}: {len(variants)} variants, "
        f"{processes} process(es) merged"
    )


def check_max_latency(path: str, margin: float, floor_ms: float) -> None:
    """Schema-validate a fig-22 report and gate chunked vs monolithic."""
    with open(path) as f:
        report = json.load(f)
    variants = {v.get("label"): v for v in report.get("variants", [])}
    for label in ("monolithic", "chunked"):
        if label not in variants:
            fail(f"{path}: missing variant {label}")
        v = variants[label]
        for key in ("steady", "timeline", "migrations",
                    "max_latency_during_migration_ms",
                    "achieved_rate_per_s", "chunk_bytes"):
            if key not in v:
                fail(f"{path}: variant {label} lacks {key}")
        if not v["migrations"]:
            fail(f"{path}: variant {label} observed no migration window")
        for m in v["migrations"]:
            for key in ("start_sec", "end_sec", "duration_sec",
                        "max_latency_ms", "batches", "chunk_frames",
                        "chunk_bytes"):
                if key not in m:
                    fail(f"{path}: {label} migration window lacks {key}")
        for key in ("p50_ms", "p99_ms", "max_ms", "samples"):
            if key not in v["steady"]:
                fail(f"{path}: variant {label} steady summary lacks {key}")

    mono, chunked = variants["monolithic"], variants["chunked"]
    if int(chunked["chunk_bytes"]) <= 0:
        fail(f"{path}: chunked variant ran with chunk_bytes=0")
    mono_frames = sum(int(m["chunk_frames"]) for m in mono["migrations"])
    chunk_frames = sum(int(m["chunk_frames"]) for m in chunked["migrations"])
    if chunk_frames <= mono_frames:
        fail(
            f"{path}: chunked variant shipped {chunk_frames} frames vs "
            f"monolithic {mono_frames} — chunking never engaged"
        )

    rate_mono = float(mono["achieved_rate_per_s"])
    rate_chunk = float(chunked["achieved_rate_per_s"])
    if rate_mono <= 0 or rate_chunk <= 0:
        fail(f"{path}: zero achieved rate")
    rate_ratio = rate_chunk / rate_mono
    if not 0.8 <= rate_ratio <= 1.25:
        fail(
            f"{path}: variants ran at different loads "
            f"(chunked/monolithic achieved rate = {rate_ratio:.3f}) — "
            f"max-latency comparison would be meaningless"
        )

    mono_ms = float(mono["max_latency_during_migration_ms"])
    chunk_ms = float(chunked["max_latency_during_migration_ms"])
    # Relative margin plus an absolute floor: on small smoke configs the
    # monolithic baseline is only a few ms, so a pure ratio bound leaves
    # less headroom than one scheduler stall on a shared CI runner. A
    # real regression inverts the sign by much more than the floor.
    bound = max(mono_ms * (1.0 + margin), mono_ms + floor_ms)
    status = "OK" if chunk_ms <= bound else "FAIL"
    print(
        f"bench_check: {status}: {path}: max latency during migration "
        f"chunked {chunk_ms:.3f} ms vs monolithic {mono_ms:.3f} ms "
        f"(bound {bound:.3f} ms, margin {margin}); chunked shipped "
        f"{chunk_frames} chunk frames (monolithic {mono_frames})"
    )
    if chunk_ms > bound:
        sys.exit(1)


def check_rss_bound(path: str) -> None:
    """Gate a fig-25 spill-drill report: the log-state variant stays under
    the RSS cap the in-memory baseline blows through, and the backends
    agree byte-for-byte on the deterministic digest."""
    with open(path) as f:
        report = json.load(f)
    cap = int(report.get("config", {}).get("rss_cap_bytes", 0))
    if cap <= 0:
        fail(f"{path}: report carries no rss_cap_bytes")
    variants = {v.get("label"): v for v in report.get("variants", [])}
    for label in ("map-state", "log-state"):
        if label not in variants:
            fail(f"{path}: missing variant {label}")
        v = variants[label]
        for key in ("peak_rss_bytes", "rss", "migrations", "timeline"):
            if key not in v:
                fail(f"{path}: variant {label} lacks {key}")
        if not v["rss"]:
            fail(f"{path}: variant {label} sampled no RSS")
        if not v["migrations"]:
            fail(f"{path}: variant {label} observed no migration window")

    log_peak = int(variants["log-state"]["peak_rss_bytes"])
    map_peak = int(variants["map-state"]["peak_rss_bytes"])
    if not variants["log-state"].get("under_rss_cap") or log_peak > cap:
        fail(
            f"{path}: log-state peaked at {log_peak} bytes, over the "
            f"{cap}-byte cap — the spill backend did not bound memory"
        )
    if map_peak <= cap:
        fail(
            f"{path}: map-state baseline peaked at {map_peak} bytes, "
            f"under the {cap}-byte cap — the sizing proves nothing; "
            f"raise --pad/--domain or lower --rss-cap-bytes"
        )
    if not report.get("digest_match"):
        fail(f"{path}: map-vs-log deterministic digests diverged")
    print(
        f"bench_check: OK: {path}: log-state peak rss {log_peak} <= cap "
        f"{cap} (map-state baseline {map_peak}), digests byte-identical"
    )


def check_recovery(path: str) -> None:
    """Gate a fig-23 fault-drill report: clean abort, real checkpoint,
    resumed exactly there, byte-identical digest, positive recovery time."""
    with open(path) as f:
        report = json.load(f)
    variants = {v.get("label"): v for v in report.get("variants", [])}
    if "recovery" not in variants:
        fail(f"{path}: missing variant recovery")
    v = variants["recovery"]
    for key in ("aborted_cleanly", "checkpoint_epoch", "recovery_ms",
                "resumed_at_epoch", "digest_match"):
        if key not in v:
            fail(f"{path}: recovery variant lacks {key}")
    if not v["aborted_cleanly"]:
        fail(f"{path}: survivor did not abort with a clean PeerDownError")
    epoch = int(v["checkpoint_epoch"])
    if epoch < 1:
        fail(f"{path}: no complete checkpoint existed before the crash")
    if int(v["resumed_at_epoch"]) != epoch:
        fail(
            f"{path}: recovery resumed at epoch {v['resumed_at_epoch']}, "
            f"checkpoint was at {epoch}"
        )
    recovery_ms = float(v["recovery_ms"])
    if not recovery_ms > 0:
        fail(f"{path}: recovery_ms = {recovery_ms} is not positive")
    if not v["digest_match"]:
        fail(f"{path}: post-recovery digest diverged from the fault-free run")
    print(
        f"bench_check: OK: {path}: recovered from epoch {epoch} in "
        f"{recovery_ms:.1f} ms, digest byte-identical"
    )


def check_adaptive(path: str, margin: float, floor_ms: float) -> None:
    """Gate a fig-24 hot-key-flip report: the adaptive controller must
    have reacted on its own and restored latency after the flip."""
    with open(path) as f:
        report = json.load(f)
    variants = {v.get("label"): v for v in report.get("variants", [])}
    if "adaptive" not in variants:
        fail(f"{path}: missing variant adaptive")
    v = variants["adaptive"]
    for key in ("plans_issued", "reaction_ms", "pre_flip", "post_rebalance",
                "migrations", "timeline", "achieved_rate_per_s"):
        if key not in v:
            fail(f"{path}: adaptive variant lacks {key}")
    for summary in ("pre_flip", "post_rebalance"):
        for key in ("p50_ms", "p99_ms", "max_ms", "samples"):
            if key not in v[summary]:
                fail(f"{path}: adaptive {summary} summary lacks {key}")
        if int(v[summary]["samples"]) <= 0:
            fail(f"{path}: adaptive {summary} window has no samples")
    plans = int(v["plans_issued"])
    if plans < 1:
        fail(f"{path}: adaptive controller never issued a plan")
    if not v["migrations"]:
        fail(f"{path}: plans were issued but no migration window closed")
    reaction_ms = float(v["reaction_ms"])
    if not reaction_ms > 0:
        fail(f"{path}: reaction_ms = {reaction_ms} — the controller did "
             f"not react after the flip")

    pre_ms = float(v["pre_flip"]["p99_ms"])
    post_ms = float(v["post_rebalance"]["p99_ms"])
    # Same shape as the fig-22 gate: relative margin plus an absolute
    # floor, because on quiet smoke configs the pre-flip p99 is a few ms
    # and a pure ratio leaves less headroom than one scheduler stall.
    bound = max(pre_ms * (1.0 + margin), pre_ms + floor_ms)
    status = "OK" if post_ms <= bound else "FAIL"
    print(
        f"bench_check: {status}: {path}: post-rebalance p99 {post_ms:.3f} ms "
        f"vs pre-flip {pre_ms:.3f} ms (bound {bound:.3f} ms, margin "
        f"{margin}); {plans} plan(s), reaction {reaction_ms:.1f} ms"
    )
    if post_ms > bound:
        sys.exit(1)


def steady_rows(doc: dict, key: str) -> dict:
    rows = {}
    for row in doc.get(key, []):
        rows[row["name"]] = row
    return rows


def check_steady(current_path: str, baseline_path: str, min_ratio: float,
                 names: list) -> None:
    with open(current_path) as f:
        current = steady_rows(json.load(f), "steady")
    with open(baseline_path) as f:
        baseline = steady_rows(json.load(f), "steady_throughput")
    if not current:
        fail(f"{current_path}: no steady rows")
    for name in names:
        if name not in current:
            fail(f"{current_path}: missing steady row {name}")
        if name not in baseline:
            fail(f"{baseline_path}: missing baseline row {name}")
        now = float(current[name]["recs_per_sec"])
        base = float(baseline[name]["post_recs_per_sec"])
        ratio = now / base if base > 0 else 0.0
        status = "OK" if ratio >= min_ratio else "FAIL"
        print(
            f"bench_check: {status}: {name}: {now:.3e} recs/s vs baseline "
            f"{base:.3e} (ratio {ratio:.3f}, floor {min_ratio})"
        )
        if ratio < min_ratio:
            sys.exit(1)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--report", nargs="+", default=[],
                    help="merged figure reports to sanity-check")
    ap.add_argument("--steady", help="current steady-suite JSON")
    ap.add_argument("--baseline", help="committed BENCH_*.json baseline")
    ap.add_argument("--min-ratio", type=float, default=0.15,
                    help="throughput floor vs baseline (default 0.15)")
    ap.add_argument("--name", action="append", default=None,
                    help="steady row(s) to gate (default megaphone-count-w4)")
    ap.add_argument("--max-latency",
                    help="fig-22 chunked-vs-monolithic report to gate")
    ap.add_argument("--max-latency-margin", type=float, default=0.25,
                    help="chunked may exceed monolithic max latency by "
                         "this fraction (default 0.25)")
    ap.add_argument("--max-latency-floor-ms", type=float, default=15.0,
                    help="absolute noise headroom added to the bound "
                         "(default 15 ms)")
    ap.add_argument("--rss-bound",
                    help="fig-25 spill-to-disk report to gate")
    ap.add_argument("--recovery",
                    help="fig-23 kill-one-process fault-drill report to gate")
    ap.add_argument("--adaptive",
                    help="fig-24 hot-key-flip adaptive-controller report "
                         "to gate")
    ap.add_argument("--adaptive-margin", type=float, default=0.5,
                    help="post-rebalance p99 may exceed pre-flip p99 by "
                         "this fraction (default 0.5, i.e. within 1.5x)")
    ap.add_argument("--adaptive-floor-ms", type=float, default=20.0,
                    help="absolute noise headroom added to the adaptive "
                         "bound (default 20 ms)")
    args = ap.parse_args()

    if (not args.report and not args.steady and not args.max_latency
            and not args.recovery and not args.adaptive
            and not args.rss_bound):
        ap.error("nothing to check: pass --report, --steady, --max-latency, "
                 "--recovery, --adaptive and/or --rss-bound")
    for path in args.report:
        check_report(path)
    if args.max_latency:
        check_max_latency(args.max_latency, args.max_latency_margin,
                          args.max_latency_floor_ms)
    if args.rss_bound:
        check_rss_bound(args.rss_bound)
    if args.recovery:
        check_recovery(args.recovery)
    if args.adaptive:
        check_adaptive(args.adaptive, args.adaptive_margin,
                       args.adaptive_floor_ms)
    if args.steady:
        if not args.baseline:
            ap.error("--steady requires --baseline")
        names = args.name or ["megaphone-count-w4"]
        check_steady(args.steady, args.baseline, args.min_ratio, names)


if __name__ == "__main__":
    main()
