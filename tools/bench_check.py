#!/usr/bin/env python3
"""CI bench gates for the megabench driver.

Two modes, combinable:

  --report FILE [FILE ...]
      Sanity-check merged figure reports: each must parse as JSON, carry a
      non-empty "variants" array, and (for timeline figures) each variant
      must report max_latency_during_migration_ms plus a non-empty latency
      timeline aggregated from every launched process
      (processes_reporting == the report's "processes").

  --steady FILE --baseline BENCH_PR2.json [--min-ratio R]
      Regression gate: compare the current steady-throughput suite run
      against the committed baseline's post_recs_per_sec for matching row
      names (megaphone-count-w4 is the headline). The floor R is
      deliberately generous (default 0.15): CI machines differ wildly
      from the baseline machine, so the gate only catches catastrophic
      regressions — e.g. the single-process hot path accidentally paying
      serialization — not noise.

Exit status 0 iff every requested check passes.
"""

import argparse
import json
import sys


def fail(msg: str) -> None:
    print(f"bench_check: FAIL: {msg}")
    sys.exit(1)


def check_report(path: str) -> None:
    with open(path) as f:
        report = json.load(f)
    variants = report.get("variants")
    if not isinstance(variants, list) or not variants:
        fail(f"{path}: no variants in report")
    processes = int(report.get("processes", 1))
    for v in variants:
        label = v.get("label", "?")
        if "timeline" in v:
            if not v["timeline"]:
                fail(f"{path}: variant {label} has an empty timeline")
            samples = sum(int(r.get("samples", 0)) for r in v["timeline"])
            if samples <= 0:
                fail(f"{path}: variant {label} timeline has no samples")
        if "migrations" in v and "max_latency_during_migration_ms" not in v:
            fail(f"{path}: variant {label} lacks max-latency-during-migration")
        if "processes_reporting" in v:
            reporting = int(v["processes_reporting"])
            if reporting != processes:
                fail(
                    f"{path}: variant {label} merged {reporting} process "
                    f"shards, expected {processes}"
                )
    print(
        f"bench_check: OK: {path}: {len(variants)} variants, "
        f"{processes} process(es) merged"
    )


def steady_rows(doc: dict, key: str) -> dict:
    rows = {}
    for row in doc.get(key, []):
        rows[row["name"]] = row
    return rows


def check_steady(current_path: str, baseline_path: str, min_ratio: float,
                 names: list) -> None:
    with open(current_path) as f:
        current = steady_rows(json.load(f), "steady")
    with open(baseline_path) as f:
        baseline = steady_rows(json.load(f), "steady_throughput")
    if not current:
        fail(f"{current_path}: no steady rows")
    for name in names:
        if name not in current:
            fail(f"{current_path}: missing steady row {name}")
        if name not in baseline:
            fail(f"{baseline_path}: missing baseline row {name}")
        now = float(current[name]["recs_per_sec"])
        base = float(baseline[name]["post_recs_per_sec"])
        ratio = now / base if base > 0 else 0.0
        status = "OK" if ratio >= min_ratio else "FAIL"
        print(
            f"bench_check: {status}: {name}: {now:.3e} recs/s vs baseline "
            f"{base:.3e} (ratio {ratio:.3f}, floor {min_ratio})"
        )
        if ratio < min_ratio:
            sys.exit(1)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--report", nargs="+", default=[],
                    help="merged figure reports to sanity-check")
    ap.add_argument("--steady", help="current steady-suite JSON")
    ap.add_argument("--baseline", help="committed BENCH_*.json baseline")
    ap.add_argument("--min-ratio", type=float, default=0.15,
                    help="throughput floor vs baseline (default 0.15)")
    ap.add_argument("--name", action="append", default=None,
                    help="steady row(s) to gate (default megaphone-count-w4)")
    args = ap.parse_args()

    if not args.report and not args.steady:
        ap.error("nothing to check: pass --report and/or --steady")
    for path in args.report:
        check_report(path)
    if args.steady:
        if not args.baseline:
            ap.error("--steady requires --baseline")
        names = args.name or ["megaphone-count-w4"]
        check_steady(args.steady, args.baseline, args.min_ratio, names)


if __name__ == "__main__":
    main()
